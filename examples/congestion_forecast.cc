// Congestion forecasting — the application the paper's conclusion names as
// future work: "apply our framework for data analysis tasks over
// spatio-temporal data (e.g. find areas that are expected to become
// congested together with the time periods of this expectation)".
//
// A fleet moves through a corridor-shaped synthetic road network. The
// example:
//   1. computes the expected-count field E[# vehicles at junction j at
//      minute t] for the next half hour,
//   2. reports the top congestion hotspots (junction, minute) pairs,
//   3. watches one specific bottleneck junction over time,
//   4. uses forward-backward smoothing to reconstruct where the worst
//      offender most likely was between its two GPS fixes, and Viterbi to
//      name its single most probable route.
//
// Run:  ./build/examples/congestion_forecast

#include <cstdio>

#include "ustdb.h"

using namespace ustdb;

int main() {
  // --- Network and fleet. -------------------------------------------------
  network::RoadGenConfig road_config;
  road_config.num_nodes = 2'000;
  road_config.num_edges = 2'500;
  road_config.locality_window = 12;
  road_config.seed = 99;
  auto roads = network::GenerateRoadNetwork(road_config).ValueOrDie();

  util::Rng rng(17);
  core::Database db;
  const ChainId model = db.AddChain(roads.ToMarkovChain(&rng).ValueOrDie());

  // 250 vehicles clustered near one end of the corridor (morning commute).
  workload::SyntheticConfig obj_config;
  obj_config.num_states = roads.num_nodes();
  for (int i = 0; i < 250; ++i) {
    const uint32_t anchor = static_cast<uint32_t>(rng.NextBounded(400));
    auto pdf = sparse::ProbVector::FromPairs(
                   roads.num_nodes(),
                   {{anchor, 0.6}, {std::min(anchor + 1, roads.num_nodes() - 1),
                                    0.4}},
                   /*normalize=*/true)
                   .ValueOrDie();
    (void)db.AddObjectAt(model, std::move(pdf)).ValueOrDie();
  }
  std::printf("fleet: %u vehicles on %u junctions\n\n", db.num_objects(),
              roads.num_nodes());

  // --- 1. The expected-count field. --------------------------------------
  const Timestamp horizon = 30;  // minutes
  util::Stopwatch timer;
  const auto field = core::ExpectedCounts(db, horizon).ValueOrDie();
  std::printf("expected-count field over %u minutes computed in %.1f ms\n",
              horizon, timer.ElapsedMillis());

  // --- 2. Hotspots. --------------------------------------------------------
  std::printf("\ntop 8 congestion hotspots (junction @ minute):\n");
  for (const core::Hotspot& h : core::TopHotspots(field, 8)) {
    std::printf("  junction %4u @ t=%2u  E[count] = %.2f\n", h.state,
                h.time, h.expected_count);
  }

  // --- 3. A bottleneck watch. ----------------------------------------------
  const auto hotspots = core::TopHotspots(field, 1);
  const StateIndex bottleneck = hotspots[0].state;
  std::vector<uint32_t> around = {bottleneck};
  for (uint32_t n : roads.Neighbors(bottleneck)) around.push_back(n);
  auto region =
      sparse::IndexSet::FromIndices(roads.num_nodes(), around).ValueOrDie();
  const auto series = field.RegionSeries(region);
  std::printf("\nexpected vehicles around junction %u (radius 1):\n  ",
              bottleneck);
  for (Timestamp t = 0; t <= horizon; t += 5) {
    std::printf("t=%u: %.2f   ", t, series[t]);
  }
  std::printf("\n");

  // --- 4. The bottleneck dashboard: one batched refresh. -------------------
  // Three widgets watch the same window — the "worst offender" ranking, the
  // τ-alert list, and the per-vehicle presence panel. Submitting them as
  // one RunBatch shares a single query-based backward pass across all
  // three instead of paying one per widget.
  auto window = core::QueryWindow::Create(
                    region, {10, 11, 12, 13, 14, 15})
                    .ValueOrDie();
  core::QueryExecutor executor(&db);
  std::vector<core::QueryRequest> refresh;
  refresh.push_back({.predicate = core::PredicateKind::kTopKExists,
                     .window = window,
                     .k = 1});
  refresh.push_back({.predicate = core::PredicateKind::kThresholdExists,
                     .window = window,
                     .tau = 0.5});
  refresh.push_back(
      {.predicate = core::PredicateKind::kExists, .window = window});
  const auto dashboard = executor.RunBatch(refresh);

  const auto& top = dashboard[0].value().probabilities;
  const ObjectId suspect = top[0].id;
  std::printf("\nbottleneck dashboard (one batch, %u widgets sharing the "
              "window's backward pass):\n",
              dashboard[0]->stats.batch_group_members);
  std::printf("  vehicle %u has the highest probability (%.3f) of being at "
              "the bottleneck in minutes 10-15\n",
              suspect, top[0].probability);
  std::printf("  %zu vehicles trip the P >= 0.5 congestion alert\n",
              dashboard[1]->probabilities.size());
  double expected_inside = 0.0;
  for (const auto& p : dashboard[2]->probabilities) {
    expected_inside += p.probability;
  }
  std::printf("  expected number of distinct vehicles touching the area: "
              "%.2f\n",
              expected_inside);

  // Suppose it reports a second GPS fix at t=20; reconstruct its route.
  const auto& chain = db.chain(model);
  // Simulate the fix: propagate its true pdf and pick a plausible state.
  const sparse::ProbVector at20 =
      chain.Distribution(db.object(suspect).initial_pdf(), 20);
  StateIndex fix = 0;
  double best = -1.0;
  at20.ForEachNonZero([&](uint32_t s, double p) {
    if (p > best) {
      best = p;
      fix = s;
    }
  });
  std::vector<core::Observation> history;
  history.push_back({0, db.object(suspect).initial_pdf()});
  history.push_back({20, sparse::ProbVector::Delta(roads.num_nodes(), fix)});

  const auto smoothed =
      core::SmoothedMarginals(chain, history, 20).ValueOrDie();
  std::printf("\nsmoothed position of vehicle %u given fixes at t=0 and "
              "t=20 (junction %u):\n",
              suspect, fix);
  for (Timestamp t = 0; t <= 20; t += 4) {
    // Report the posterior mode at each sampled timestamp.
    StateIndex mode = 0;
    double mode_p = -1.0;
    smoothed.marginals[t].ForEachNonZero([&](uint32_t s, double p) {
      if (p > mode_p) {
        mode_p = p;
        mode = s;
      }
    });
    std::printf("  t=%2u: junction %4u (posterior %.2f, support %u)\n", t,
                mode, mode_p, smoothed.marginals[t].Support());
  }

  const auto route =
      core::MostLikelyTrajectory(chain, history, 20).ValueOrDie();
  std::printf("\nmost probable route (Viterbi, posterior %.3f):\n  ",
              route.posterior_probability);
  for (size_t i = 0; i < route.path.size(); i += 2) {
    std::printf("%u ", route.path[i]);
  }
  std::printf("\n");
  return 0;
}
