// Multi-observation interpolation — a faithful walk-through of Section VI.
//
// Reproduces the paper's two-observation example step by step (the doubled
// state space, the class-A/B/C world bookkeeping, Lemma 1 conditioning),
// then demonstrates the claim that observations *after* the query window
// still carry information, and how contradictory observations are detected.
//
// Run:  ./build/examples/multi_observation_interpolation

#include <cstdio>

#include "ustdb.h"

using namespace ustdb;

namespace {

void PrintVector(const char* label, const sparse::ProbVector& v) {
  std::printf("%s(", label);
  for (uint32_t i = 0; i < v.size(); ++i) {
    std::printf("%s%.3f", i ? ", " : "", v.Get(i));
  }
  std::printf(")\n");
}

}  // namespace

int main() {
  // Section VI's chain: row s2 = (0.5, 0, 0.5).
  auto chain = markov::MarkovChain::FromDense({
                   {0.0, 0.0, 1.0},
                   {0.5, 0.0, 0.5},
                   {0.0, 0.8, 0.2},
               })
                   .ValueOrDie();
  // Window: S□ = {s1, s2}, T□ = {1, 2}.
  auto window = core::QueryWindow::FromRanges(3, 0, 1, 1, 2).ValueOrDie();

  std::printf("=== Section VI worked example ===\n");
  std::printf("object observed at s1@t=0 and s2@t=3; window S=[s1,s2], "
              "T=[1,2]\n\n");

  // The doubled-state matrices (printed for comparison with the paper).
  core::AugmentedMatrices aug =
      core::BuildDoubledMatrices(chain, window.region());
  std::printf("doubled state space: %u states (s1,s2,s3, s1',s2',s3' where "
              "' = already hit)\n",
              aug.plus.rows());

  // Forward pass with intermediate vectors, exactly as in the paper.
  sparse::VecMatWorkspace ws;
  sparse::ProbVector v =
      core::ExtendInitialDoubled(sparse::ProbVector::Delta(3, 0), window);
  PrintVector("P(o,0) = ", v);
  ws.Multiply(v, aug.plus, &v);   // t=1 in T□
  PrintVector("P(o,1) = ", v);    // paper: (0,0,1,0,0,0)
  ws.Multiply(v, aug.plus, &v);   // t=2 in T□
  PrintVector("P(o,2) = ", v);    // paper: (0,0,0.2,0,0.8,0)
  ws.Multiply(v, aug.minus, &v);  // t=3 not in T□
  PrintVector("P(o,3) = ", v);    // paper: (0,0.16,0.04,0.4,0,0.4)

  // The engine does all of the above plus Lemma-1 conditioning:
  core::MultiObservationEngine engine(&chain, window);
  std::vector<core::Observation> obs;
  obs.push_back({0, sparse::ProbVector::Delta(3, 0)});
  obs.push_back({3, sparse::ProbVector::Delta(3, 1)});
  const core::MultiObsResult r = engine.Evaluate(obs).ValueOrDie();
  std::printf("\nafter conditioning on the t=3 sighting (Lemma 1):\n");
  PrintVector("posterior at t=3 = ", r.posterior);  // paper: (0,1,0)
  std::printf("P-exists = %.3f   (paper: 0 — the only path consistent with "
              "both sightings is s1->s3->s3->s2, which reaches s2 only at "
              "t=3, outside T=[1,2])\n",
              r.exists_probability);

  // --- Observations after the window still matter. ------------------------
  // Three objects on the same motion model, differing only in their
  // observation history, all answered by the one executor pipeline — it
  // routes single-observation objects through the Section V plans and
  // multi-observation ones through the Section VI engine automatically.
  std::printf("\n=== information content of a later observation ===\n");
  std::vector<core::Observation> obs2;
  obs2.push_back({0, sparse::ProbVector::Delta(3, 0)});
  obs2.push_back(
      {3, sparse::ProbVector::FromPairs(3, {{1, 0.5}, {2, 0.5}})
              .ValueOrDie()});

  core::Database db;
  const ChainId cls = db.AddChain(chain);
  const ObjectId only_t0 =
      db.AddObjectAt(cls, sparse::ProbVector::Delta(3, 0)).ValueOrDie();
  const ObjectId certain_t3 = db.AddObject(cls, obs).ValueOrDie();
  const ObjectId uncertain_t3 = db.AddObject(cls, obs2).ValueOrDie();

  // A two-widget refresh on one window, submitted as a batch: the exists
  // panel and the τ-alert share the group's single backward pass.
  core::QueryExecutor executor(&db);
  std::vector<core::QueryRequest> refresh;
  refresh.push_back(
      {.predicate = core::PredicateKind::kExists, .window = window});
  refresh.push_back({.predicate = core::PredicateKind::kThresholdExists,
                     .window = window,
                     .tau = 0.5});
  const auto dashboard = executor.RunBatch(refresh);
  const auto& exists = dashboard[0].value();

  std::printf("P-exists with only the t=0 sighting  : %.3f\n",
              exists.probabilities[only_t0].probability);
  std::printf("P-exists adding the t=3 sighting     : %.3f\n",
              exists.probabilities[certain_t3].probability);
  std::printf("the later sighting eliminated every window-hitting world "
              "(class A worlds of Fig. 6)\n");

  // A different second sighting keeps both world classes alive:
  const auto r2 = engine.Evaluate(obs2).ValueOrDie();
  std::printf("with an *uncertain* t=3 sighting (s2 or s3 equally likely): "
              "P-exists = %.3f, surviving mass = %.3f\n",
              exists.probabilities[uncertain_t3].probability,
              r2.surviving_mass);

  std::printf("pipeline routing: %u object(s) via the Section V plans, %u "
              "via the Section VI engine; %zu object(s) above τ=0.5; both "
              "widgets shared one group of %u requests\n",
              exists.stats.objects_evaluated,
              exists.stats.objects_multi_observation,
              dashboard[1]->probabilities.size(),
              exists.stats.batch_group_members);

  // --- Contradiction detection. -------------------------------------------
  std::printf("\n=== contradictory observations ===\n");
  std::vector<core::Observation> bad;
  bad.push_back({0, sparse::ProbVector::Delta(3, 0)});
  bad.push_back({1, sparse::ProbVector::Delta(3, 0)});  // s1 cannot stay
  const auto status = engine.Evaluate(bad);
  std::printf("observing s1@t=0 then s1@t=1: %s\n",
              status.status().ToString().c_str());
  return 0;
}
