// Multi-observation interpolation — a faithful walk-through of Section VI.
//
// Reproduces the paper's two-observation example step by step (the doubled
// state space, the class-A/B/C world bookkeeping, Lemma 1 conditioning),
// then demonstrates the claim that observations *after* the query window
// still carry information, and how contradictory observations are detected.
//
// Run:  ./build/examples/multi_observation_interpolation

#include <cstdio>

#include "ustdb.h"

using namespace ustdb;

namespace {

void PrintVector(const char* label, const sparse::ProbVector& v) {
  std::printf("%s(", label);
  for (uint32_t i = 0; i < v.size(); ++i) {
    std::printf("%s%.3f", i ? ", " : "", v.Get(i));
  }
  std::printf(")\n");
}

}  // namespace

int main() {
  // Section VI's chain: row s2 = (0.5, 0, 0.5).
  auto chain = markov::MarkovChain::FromDense({
                   {0.0, 0.0, 1.0},
                   {0.5, 0.0, 0.5},
                   {0.0, 0.8, 0.2},
               })
                   .ValueOrDie();
  // Window: S□ = {s1, s2}, T□ = {1, 2}.
  auto window = core::QueryWindow::FromRanges(3, 0, 1, 1, 2).ValueOrDie();

  std::printf("=== Section VI worked example ===\n");
  std::printf("object observed at s1@t=0 and s2@t=3; window S=[s1,s2], "
              "T=[1,2]\n\n");

  // The doubled-state matrices (printed for comparison with the paper).
  core::AugmentedMatrices aug =
      core::BuildDoubledMatrices(chain, window.region());
  std::printf("doubled state space: %u states (s1,s2,s3, s1',s2',s3' where "
              "' = already hit)\n",
              aug.plus.rows());

  // Forward pass with intermediate vectors, exactly as in the paper.
  sparse::VecMatWorkspace ws;
  sparse::ProbVector v =
      core::ExtendInitialDoubled(sparse::ProbVector::Delta(3, 0), window);
  PrintVector("P(o,0) = ", v);
  ws.Multiply(v, aug.plus, &v);   // t=1 in T□
  PrintVector("P(o,1) = ", v);    // paper: (0,0,1,0,0,0)
  ws.Multiply(v, aug.plus, &v);   // t=2 in T□
  PrintVector("P(o,2) = ", v);    // paper: (0,0,0.2,0,0.8,0)
  ws.Multiply(v, aug.minus, &v);  // t=3 not in T□
  PrintVector("P(o,3) = ", v);    // paper: (0,0.16,0.04,0.4,0,0.4)

  // The engine does all of the above plus Lemma-1 conditioning:
  core::MultiObservationEngine engine(&chain, window);
  std::vector<core::Observation> obs;
  obs.push_back({0, sparse::ProbVector::Delta(3, 0)});
  obs.push_back({3, sparse::ProbVector::Delta(3, 1)});
  const core::MultiObsResult r = engine.Evaluate(obs).ValueOrDie();
  std::printf("\nafter conditioning on the t=3 sighting (Lemma 1):\n");
  PrintVector("posterior at t=3 = ", r.posterior);  // paper: (0,1,0)
  std::printf("P-exists = %.3f   (paper: 0 — the only path consistent with "
              "both sightings is s1->s3->s3->s2, which reaches s2 only at "
              "t=3, outside T=[1,2])\n",
              r.exists_probability);

  // --- Observations after the window still matter. ------------------------
  std::printf("\n=== information content of a later observation ===\n");
  core::QueryBasedEngine single(&chain, window);
  const double p_single =
      single.ExistsProbability(sparse::ProbVector::Delta(3, 0));
  std::printf("P-exists with only the t=0 sighting  : %.3f\n", p_single);
  std::printf("P-exists adding the t=3 sighting     : %.3f\n",
              r.exists_probability);
  std::printf("the later sighting eliminated every window-hitting world "
              "(class A worlds of Fig. 6)\n");

  // A different second sighting keeps both world classes alive:
  std::vector<core::Observation> obs2;
  obs2.push_back({0, sparse::ProbVector::Delta(3, 0)});
  obs2.push_back(
      {3, sparse::ProbVector::FromPairs(3, {{1, 0.5}, {2, 0.5}})
              .ValueOrDie()});
  const auto r2 = engine.Evaluate(obs2).ValueOrDie();
  std::printf("with an *uncertain* t=3 sighting (s2 or s3 equally likely): "
              "P-exists = %.3f, surviving mass = %.3f\n",
              r2.exists_probability, r2.surviving_mass);

  // --- Contradiction detection. -------------------------------------------
  std::printf("\n=== contradictory observations ===\n");
  std::vector<core::Observation> bad;
  bad.push_back({0, sparse::ProbVector::Delta(3, 0)});
  bad.push_back({1, sparse::ProbVector::Delta(3, 0)});  // s1 cannot stay
  const auto status = engine.Evaluate(bad);
  std::printf("observing s1@t=0 then s1@t=1: %s\n",
              status.status().ToString().c_str());
  return 0;
}
