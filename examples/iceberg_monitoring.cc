// Iceberg monitoring — the paper's motivating application (Section I).
//
// The International Ice Patrol tracks icebergs drifting with the Labrador
// Current near the Grand Banks. Observations (from ships, aircraft, buoys)
// are sparse and uncertain; between observations the position must be
// inferred from a drift model. This example:
//
//   1. builds a 2-D ocean grid whose transition kernel follows a
//      south-eastward current that strengthens offshore,
//   2. registers several icebergs with uncertain initial sightings,
//   3. answers the paper's example queries:
//        - "which icebergs have non-zero probability to enter the shipping
//           lane during the crossing window?"          (PST∃Q, Def. 2)
//        - "which icebergs will stay inside a survey region long enough
//           for measurements?"                          (PST∀Q, Def. 3)
//        - "for how many of the crossing days will iceberg B sit inside
//           the lane?"                                  (PSTkQ, Def. 4)
//   4. shows how a second sighting (Section VI) revises a prediction.
//
// Run:  ./build/examples/iceberg_monitoring

#include <cstdio>

#include "ustdb.h"

using namespace ustdb;

namespace {

/// Labrador-current-like field: everything drifts south-east; the drift is
/// stronger in the east (offshore), dispersion higher near the coast.
geo::Drift Current(geo::Cell c) {
  const double offshore = static_cast<double>(c.x) / 40.0;
  return {0.4 + 0.4 * offshore, 0.5, 0.7 + 0.2 * offshore};
}

}  // namespace

int main() {
  // --- The ocean: a 40 x 30 raster, one state per cell. -----------------
  geo::Grid2D ocean = geo::Grid2D::Create(40, 30).ValueOrDie();
  auto chain = geo::BuildDriftChain(ocean, Current, /*radius=*/2)
                   .ValueOrDie();
  std::printf("ocean grid: %ux%u cells -> %u states, drift chain nnz=%llu\n",
              ocean.width(), ocean.height(), ocean.num_states(),
              static_cast<unsigned long long>(chain.matrix().nnz()));

  // --- The fleet database: icebergs with uncertain sightings. -----------
  core::Database db;
  const ChainId drift = db.AddChain(std::move(chain));
  const markov::MarkovChain& model = db.chain(drift);

  // Sightings are uncertain: a disk of cells around the reported position.
  auto sighting = [&](geo::Cell at, double radius) {
    return sparse::ProbVector::UniformOver(
               ocean.Disk(at, radius).ValueOrDie())
        .ValueOrDie();
  };
  const ObjectId berg_a =
      db.AddObjectAt(drift, sighting({6, 4}, 1.5)).ValueOrDie();
  const ObjectId berg_b =
      db.AddObjectAt(drift, sighting({14, 8}, 2.0)).ValueOrDie();
  const ObjectId berg_c =
      db.AddObjectAt(drift, sighting({30, 24}, 1.0)).ValueOrDie();
  std::printf("registered icebergs A=%u B=%u C=%u\n\n", berg_a, berg_b,
              berg_c);

  // --- Query 1: PST∃Q against the shipping lane. -------------------------
  // The great-circle lane crosses the grid as a horizontal band; a convoy
  // transits during timestamps 8..14.
  auto lane_states = ocean.Rectangle(10, 12, 34, 15).ValueOrDie();
  auto lane_window =
      core::QueryWindow::Create(lane_states, {8, 9, 10, 11, 12, 13, 14})
          .ValueOrDie();
  // One executor serves every query of the monitoring session; repeated
  // windows (the lane is re-checked on every refresh) hit its engine cache.
  core::QueryExecutor executor(&db);
  std::printf("PST-Exists: P(iceberg in shipping lane during t=8..14)\n");
  const auto lane_result =
      executor
          .Run({.predicate = core::PredicateKind::kExists,
                .window = lane_window})
          .ValueOrDie();
  for (const auto& r : lane_result.probabilities) {
    std::printf("  iceberg %c: %.4f%s\n", 'A' + r.id, r.probability,
                r.probability > 1e-4 ? "  << alert the convoy" : "");
  }

  // --- Query 2: PST∀Q for a survey region. -------------------------------
  // The IIP wants icebergs that will *remain* inside a survey box for all
  // of t = 5..8 so a research vessel can take measurements (Section III's
  // example use-case for the for-all query).
  auto survey_states = ocean.Rectangle(12, 8, 24, 18).ValueOrDie();
  auto survey_window =
      core::QueryWindow::Create(survey_states, {5, 6, 7, 8}).ValueOrDie();
  std::printf("\nPST-ForAll: P(stay in survey box for all t=5..8)\n");
  const auto survey_result =
      executor
          .Run({.predicate = core::PredicateKind::kForAll,
                .window = survey_window})
          .ValueOrDie();
  for (const auto& r : survey_result.probabilities) {
    std::printf("  iceberg %c: %.4f%s\n", 'A' + r.id, r.probability,
                r.probability > 0.5 ? "  << schedule measurements" : "");
  }

  // --- Query 3: PSTkQ — exposure duration of iceberg B. ------------------
  std::printf("\nPST-k-Times: days iceberg B spends in the lane (t=8..14)\n");
  const auto ktimes =
      executor
          .Run({.predicate = core::PredicateKind::kKTimes,
                .window = lane_window})
          .ValueOrDie();
  const auto& dist = ktimes.distributions[berg_b].distribution;
  for (size_t k = 0; k < dist.size(); ++k) {
    if (dist[k] > 5e-4) std::printf("  P(%zu days) = %.4f\n", k, dist[k]);
  }

  // --- Query 4: a second sighting revises the forecast (Section VI). -----
  // An aircraft re-sights iceberg B at t=6, further north than the drift
  // model expected. Interpolation re-weights the possible worlds.
  core::MultiObservationEngine multi(&model, lane_window);
  std::vector<core::Observation> history;
  history.push_back({0, db.object(berg_b).initial_pdf()});
  history.push_back({6, sighting({18, 9}, 1.5)});
  const auto revised = multi.Evaluate(history).ValueOrDie();
  core::QueryBasedEngine single(&model, lane_window);
  std::printf("\nSection VI interpolation for iceberg B:\n");
  std::printf("  P-exists with sighting at t=0 only : %.4f\n",
              single.ExistsProbability(db.object(berg_b).initial_pdf()));
  std::printf("  P-exists with re-sighting at t=6   : %.4f\n",
              revised.exists_probability);
  std::printf("  surviving world mass               : %.4f\n",
              revised.surviving_mass);
  return 0;
}
