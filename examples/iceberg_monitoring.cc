// Iceberg monitoring — the paper's motivating application (Section I),
// run the way a monitoring deployment actually runs it: a QueryService
// with a *standing* lane-watch query, fed by observation ingest.
//
// The International Ice Patrol tracks icebergs drifting with the Labrador
// Current near the Grand Banks. Observations (from ships, aircraft, buoys)
// are sparse and uncertain; between observations the position must be
// inferred from a drift model. This example:
//
//   1. builds a 2-D ocean grid whose transition kernel follows a
//      south-eastward current that strengthens offshore,
//   2. registers several icebergs with uncertain initial sightings,
//   3. subscribes a standing PST∃Q watch on the shipping lane —
//        - "which icebergs have non-zero probability to enter the shipping
//           lane during the crossing window?"          (PST∃Q, Def. 2)
//      delivered as answer-set deltas instead of re-polled answers,
//   4. answers the one-shot companions through the same service:
//        - "which icebergs will stay inside a survey region long enough
//           for measurements?"                          (PST∀Q, Def. 3)
//        - "for how many of the crossing days will iceberg B sit inside
//           the lane?"                                  (PSTkQ, Def. 4)
//   5. ingests a second sighting of iceberg B (Section VI) and lets the
//      refresh round deliver the revised forecast as a `changed` delta —
//      no cache flush, no re-subscription, no client-side diffing.
//
// Run:  ./build/examples/iceberg_monitoring

#include <cstdio>

#include "ustdb.h"

using namespace ustdb;

namespace {

/// Labrador-current-like field: everything drifts south-east; the drift is
/// stronger in the east (offshore), dispersion higher near the coast.
geo::Drift Current(geo::Cell c) {
  const double offshore = static_cast<double>(c.x) / 40.0;
  return {0.4 + 0.4 * offshore, 0.5, 0.7 + 0.2 * offshore};
}

/// Prints one delivered delta the way an alerting pipeline would consume
/// it: sequence + data epoch, then each membership transition.
void PrintDelta(const service::SubscriptionDelta& delta) {
  std::printf("  [delta seq=%llu epoch=%llu]\n",
              static_cast<unsigned long long>(delta.sequence),
              static_cast<unsigned long long>(delta.epoch));
  for (const auto& p : delta.entered) {
    std::printf("    iceberg %c entered the watch set: P = %.4f%s\n",
                'A' + p.id, p.probability,
                p.probability > 1e-4 ? "  << alert the convoy" : "");
  }
  for (const auto& p : delta.changed) {
    std::printf("    iceberg %c forecast revised:      P = %.4f\n",
                'A' + p.id, p.probability);
  }
  for (const ObjectId id : delta.left) {
    std::printf("    iceberg %c left the watch set\n", 'A' + id);
  }
  if (delta.entered.empty() && delta.changed.empty() && delta.left.empty()) {
    std::printf("    (no membership change)\n");
  }
}

}  // namespace

int main() {
  // --- The ocean: a 40 x 30 raster, one state per cell. -----------------
  geo::Grid2D ocean = geo::Grid2D::Create(40, 30).ValueOrDie();
  auto chain = geo::BuildDriftChain(ocean, Current, /*radius=*/2)
                   .ValueOrDie();
  std::printf("ocean grid: %ux%u cells -> %u states, drift chain nnz=%llu\n",
              ocean.width(), ocean.height(), ocean.num_states(),
              static_cast<unsigned long long>(chain.matrix().nnz()));

  // --- The fleet database: icebergs with uncertain sightings. -----------
  core::Database db;
  const ChainId drift = db.AddChain(std::move(chain));

  // Sightings are uncertain: a disk of cells around the reported position.
  auto sighting = [&](geo::Cell at, double radius) {
    return sparse::ProbVector::UniformOver(
               ocean.Disk(at, radius).ValueOrDie())
        .ValueOrDie();
  };
  const ObjectId berg_a =
      db.AddObjectAt(drift, sighting({6, 4}, 1.5)).ValueOrDie();
  const ObjectId berg_b =
      db.AddObjectAt(drift, sighting({14, 8}, 2.0)).ValueOrDie();
  const ObjectId berg_c =
      db.AddObjectAt(drift, sighting({30, 24}, 1.0)).ValueOrDie();
  std::printf("registered icebergs A=%u B=%u C=%u\n\n", berg_a, berg_b,
              berg_c);

  // One service owns the whole monitoring session: the executor + engine
  // cache behind it, the ingest path (mutable Database pointer), and the
  // standing subscriptions. Repeated and slid windows hit its cache.
  service::QueryService service(&db);

  // --- Standing query: PST∃Q watch on the shipping lane. -----------------
  // The great-circle lane crosses the grid as a horizontal band; a convoy
  // transits during timestamps 8..14. WindowPolicy{.slide = 0} pins the
  // window to the crossing — the subscription refreshes when ingest
  // touches its answer, not on a clock.
  auto lane_states = ocean.Rectangle(10, 12, 34, 15).ValueOrDie();
  auto lane_window =
      core::QueryWindow::Create(lane_states, {8, 9, 10, 11, 12, 13, 14})
          .ValueOrDie();
  core::QueryRequest lane_watch;
  lane_watch.predicate = core::PredicateKind::kExists;
  lane_watch.window = lane_window;
  service::Subscription watch =
      service
          .Subscribe(lane_watch, service::WindowPolicy{.slide = 0},
                     PrintDelta)
          .ValueOrDie();

  std::printf("PST-Exists lane watch (t=8..14), first refresh:\n");
  service.RefreshSubscriptions();  // first delivery: full set as `entered`

  // --- One-shot 1: PST∀Q for a survey region. ---------------------------
  // The IIP wants icebergs that will *remain* inside a survey box for all
  // of t = 5..8 so a research vessel can take measurements (Section III's
  // example use-case for the for-all query). One-shots ride the same
  // service: submit, hold the ticket, block on Get().
  auto survey_states = ocean.Rectangle(12, 8, 24, 18).ValueOrDie();
  auto survey_window =
      core::QueryWindow::Create(survey_states, {5, 6, 7, 8}).ValueOrDie();
  std::printf("\nPST-ForAll: P(stay in survey box for all t=5..8)\n");
  const auto survey_result =
      service
          .Submit({.predicate = core::PredicateKind::kForAll,
                   .window = survey_window})
          .Get()
          .ValueOrDie();
  for (const auto& r : survey_result.probabilities) {
    std::printf("  iceberg %c: %.4f%s\n", 'A' + r.id, r.probability,
                r.probability > 0.5 ? "  << schedule measurements" : "");
  }

  // --- One-shot 2: PSTkQ — exposure duration of iceberg B. --------------
  std::printf("\nPST-k-Times: days iceberg B spends in the lane (t=8..14)\n");
  const auto ktimes =
      service
          .Submit({.predicate = core::PredicateKind::kKTimes,
                   .window = lane_window})
          .Get()
          .ValueOrDie();
  const auto& dist = ktimes.distributions[berg_b].distribution;
  for (size_t k = 0; k < dist.size(); ++k) {
    if (dist[k] > 5e-4) std::printf("  P(%zu days) = %.4f\n", k, dist[k]);
  }

  // --- Ingest: a second sighting revises the forecast (Section VI). -----
  // An aircraft re-sights iceberg B at t=6, further north than the drift
  // model expected. AppendObservation re-weights B's possible worlds
  // (interpolation happens inside the engine), bumps the data version,
  // lazily invalidates exactly the cached passes B's chain backs, and
  // marks the lane watch dirty — the next refresh round delivers the
  // revision as a `changed` delta against the previous answer set.
  const DataVersion version =
      service.AppendObservation(berg_b, {6, sighting({18, 9}, 1.5)})
          .ValueOrDie();
  std::printf("\nre-sighting of iceberg B at t=6 ingested"
              " (data version %llu)\n",
              static_cast<unsigned long long>(version));
  std::printf("lane watch after ingest:\n");
  service.RefreshSubscriptions();

  watch.Cancel();
  return 0;
}
