// Urban traffic monitoring — the paper's road-network scenario
// (Sections I, V-C, VIII).
//
// Vehicles move on a road network; the transition matrix is the
// row-normalized adjacency matrix exactly as in the paper's experimental
// setup. Different vehicle classes (cars / delivery trucks) follow
// different chains, which exercises the per-class query-based plan and the
// interval-Markov-chain cluster pruning of Section V-C. The headline query
// is the paper's own: "predict the number of cars that will be in a
// congested road segment after 10-15 minutes".
//
// Run:  ./build/examples/traffic_monitoring

#include <cstdio>

#include "ustdb.h"

using namespace ustdb;

int main() {
  // --- A mid-size urban road network (scaled-down Munich-like). ----------
  network::RoadGenConfig road_config;
  road_config.num_nodes = 4'000;
  road_config.num_edges = 5'100;     // urban density, avg degree ~2.55
  road_config.locality_window = 24;
  road_config.seed = 2026;
  auto roads = network::GenerateRoadNetwork(road_config).ValueOrDie();
  std::printf("road network: %u junctions, %u road segments (avg degree "
              "%.2f, connected=%s)\n",
              roads.num_nodes(), roads.num_edges(), roads.AverageDegree(),
              roads.IsConnected() ? "yes" : "no");

  // --- Motion models: cars and trucks turn with different preferences. ---
  util::Rng rng(7);
  core::Database db;
  const ChainId cars = db.AddChain(roads.ToMarkovChain(&rng).ValueOrDie());
  // Trucks follow a perturbed version of the car model (same streets,
  // different turning probabilities) — the Section V-C class setting.
  const ChainId trucks = db.AddChain(
      workload::PerturbChain(db.chain(cars), 0.4, &rng).ValueOrDie());

  // --- The fleet: 300 cars + 100 trucks with GPS-uncertain positions. ----
  auto gps_fix = [&](uint32_t junction) {
    // A GPS fix places the vehicle at the junction or one of its
    // neighbours (measurement uncertainty).
    std::vector<std::pair<uint32_t, double>> pairs = {{junction, 3.0}};
    for (uint32_t n : roads.Neighbors(junction)) pairs.emplace_back(n, 1.0);
    return sparse::ProbVector::FromPairs(roads.num_nodes(), pairs,
                                         /*normalize=*/true)
        .ValueOrDie();
  };
  for (int i = 0; i < 300; ++i) {
    const uint32_t at =
        static_cast<uint32_t>(rng.NextBounded(roads.num_nodes()));
    (void)db.AddObjectAt(cars, gps_fix(at)).ValueOrDie();
  }
  for (int i = 0; i < 100; ++i) {
    const uint32_t at =
        static_cast<uint32_t>(rng.NextBounded(roads.num_nodes()));
    (void)db.AddObjectAt(trucks, gps_fix(at)).ValueOrDie();
  }
  std::printf("fleet: %u vehicles in %u classes\n\n", db.num_objects(),
              db.num_chains());

  // --- The congested segment and the 10-15 minute horizon. ---------------
  // One timestep = one minute. The congested area is a cluster of
  // junctions around a hotspot.
  const uint32_t hotspot = 1'500;
  std::vector<uint32_t> congested = {hotspot};
  for (uint32_t n : roads.Neighbors(hotspot)) {
    congested.push_back(n);
    for (uint32_t m : roads.Neighbors(n)) congested.push_back(m);
  }
  auto region =
      sparse::IndexSet::FromIndices(roads.num_nodes(), congested)
          .ValueOrDie();
  auto window =
      core::QueryWindow::Create(region, {10, 11, 12, 13, 14, 15})
          .ValueOrDie();
  std::printf("congested region: %u junctions, horizon t=10..15 min\n",
              region.size());

  // --- Paper query: expected number of vehicles in the segment. ----------
  // The executor picks the plan per vehicle class (both classes are large,
  // so the cost model lands on the amortized query-based pass) and fans the
  // per-object work across the hardware threads.
  core::QueryExecutor executor(&db);
  util::Stopwatch timer;
  const auto result =
      executor.Run({.predicate = core::PredicateKind::kExists,
                    .window = window})
          .ValueOrDie();
  double expected_vehicles = 0.0;
  uint32_t possibly_there = 0;
  for (const auto& r : result.probabilities) {
    expected_vehicles += r.probability;
    possibly_there += (r.probability > 0.0);
  }
  std::printf("\nPST-Exists over the whole fleet (%u QB classes, %u threads, "
              "%.1f ms):\n",
              result.stats.chains_query_based, result.stats.threads_used,
              timer.ElapsedMillis());
  std::printf("  vehicles with non-zero probability : %u\n", possibly_there);
  std::printf("  expected vehicles in segment       : %.2f\n",
              expected_vehicles);

  // --- Threshold query with cluster pruning (Section V-C). ----------------
  // kBoundsThenRefine bounds whole chain clusters (the database's
  // similarity registry) with interval envelopes and refines only the
  // undecided vehicles; under kAuto the planner engages it on its own
  // once chain classes are numerous and similar.
  timer.Restart();
  const auto threshold_result =
      executor
          .Run({.predicate = core::PredicateKind::kThresholdExists,
                .window = window,
                .tau = 0.10,
                .plan = core::PlanChoice::kBoundsThenRefine})
          .ValueOrDie();
  const core::PruneStats& stats = threshold_result.stats.prune;
  std::printf("\nthreshold query tau=0.10 with interval-chain clustering "
              "(%.1f ms):\n",
              timer.ElapsedMillis());
  std::printf("  qualifying vehicles: %zu\n",
              threshold_result.probabilities.size());
  std::printf("  clusters pruned wholesale: %u / %u, objects decided by "
              "bounds: %u, refined: %u\n",
              stats.clusters_pruned, stats.clusters_total,
              stats.objects_decided_by_bounds, stats.objects_refined);

  // --- Top-k: which vehicles to reroute first. ----------------------------
  // Same pipeline, different predicate — and the backward passes computed
  // for the exists query above are served from the executor's engine cache.
  const auto top = executor
                       .Run({.predicate = core::PredicateKind::kTopKExists,
                             .window = window,
                             .k = 5})
                       .ValueOrDie()
                       .probabilities;
  std::printf("\ntop-5 vehicles by congestion probability (cache hits so "
              "far: %llu):\n",
              static_cast<unsigned long long>(executor.cache_stats().hits));
  for (const auto& r : top) {
    std::printf("  vehicle %3u (%s): %.4f\n", r.id,
                db.object(r.id).chain == cars ? "car  " : "truck",
                r.probability);
  }

  // --- Dwell time in the jam (PSTkQ). -------------------------------------
  if (!top.empty()) {
    const auto ktimes =
        executor
            .Run({.predicate = core::PredicateKind::kKTimes, .window = window})
            .ValueOrDie();
    const auto& dist = ktimes.distributions[top[0].id].distribution;
    std::printf("\ndwell-time distribution of vehicle %u (minutes inside "
                "during t=10..15):\n",
                top[0].id);
    for (size_t k = 0; k < dist.size(); ++k) {
      if (dist[k] > 5e-4) std::printf("  P(%zu min) = %.4f\n", k, dist[k]);
    }
  }

  // --- Observability: where did a slow request's time go? -----------------
  // A monitoring deployment serves these queries through the async
  // QueryService, which traces every Nth request and keeps the slowest in
  // a ring. The warm dashboard windows are served from the engine cache;
  // a dispatcher moving the watch region (a cache-cold window) pays the
  // full backward pass — the trace shows exactly where.
  std::printf("\n=== observability walkthrough ===\n");
  obs::MetricsRegistry registry;
  service::ServiceOptions service_options;
  service_options.obs.registry = &registry;
  service_options.obs.trace_sample_every = 1;  // trace everything (demo)
  service_options.obs.slow_query_ring = 4;
  service::QueryService service(&db, service_options);

  // Warm traffic: the dashboard re-issuing its watch window.
  for (int i = 0; i < 8; ++i) {
    (void)service
        .Submit({.predicate = core::PredicateKind::kExists, .window = window})
        .Get();
  }

  // The induced cache-cold request: a new hotspot, never queried before,
  // with an explicitly attached trace.
  std::vector<uint32_t> moved;
  const uint32_t new_hotspot = 2'700;
  moved.push_back(new_hotspot);
  for (uint32_t n : roads.Neighbors(new_hotspot)) moved.push_back(n);
  auto cold_window =
      core::QueryWindow::Create(
          sparse::IndexSet::FromIndices(roads.num_nodes(), moved)
              .ValueOrDie(),
          {10, 11, 12, 13, 14, 15})
          .ValueOrDie();
  auto cold_trace = std::make_shared<obs::QueryTrace>();
  core::QueryRequest cold_request;
  cold_request.predicate = core::PredicateKind::kExists;
  cold_request.window = cold_window;
  cold_request.trace = cold_trace;
  (void)service.Submit(std::move(cold_request)).Get();

  std::printf("\ncache-cold request trace (moved watch region, full "
              "backward pass):\n%s",
              cold_trace->Format().c_str());

  std::printf("\nslow-query ring (the %zu slowest traced requests):\n",
              service.slow_queries().size());
  for (const service::SlowQuery& slow : service.slow_queries()) {
    double evaluate_s = 0.0;
    double build_s = 0.0;
    for (const obs::TraceSpan& span : slow.spans) {
      if (span.stage == obs::Stage::kEvaluate) evaluate_s += span.seconds();
      if (span.stage == obs::Stage::kEngineBuild) build_s += span.seconds();
    }
    std::printf("  %.2f ms  spans=%zu  build=%.2f ms  evaluate=%.2f ms\n",
                slow.latency_ms, slow.spans.size(), build_s * 1e3,
                evaluate_s * 1e3);
  }

  // Full exposition includes per-bucket histogram series; elide them
  // here so the demo output stays readable (a scrape endpoint would
  // serve the string unfiltered).
  std::printf("\nmetrics snapshot (Prometheus exposition, buckets "
              "elided):\n");
  const std::string exposition =
      obs::WritePrometheusText(registry.Snapshot());
  size_t line_start = 0;
  while (line_start < exposition.size()) {
    size_t line_end = exposition.find('\n', line_start);
    if (line_end == std::string::npos) line_end = exposition.size();
    const std::string line =
        exposition.substr(line_start, line_end - line_start);
    if (line.find("_bucket{") == std::string::npos) {
      std::printf("%s\n", line.c_str());
    }
    line_start = line_end + 1;
  }
  return 0;
}
