// Quickstart: the paper's running example end to end.
//
// Builds the 3-state Markov chain of Section V, asks the spatio-temporal
// window query S□ = {s1, s2}, T□ = {2, 3} for an object last observed at
// state s2 at time 0, and answers it with every engine in the library. All
// exact engines print 0.864 — the fraction of possible worlds intersecting
// the window.
//
// Run:  ./build/examples/quickstart

#include <cstdio>

#include "ustdb.h"

using namespace ustdb;

int main() {
  // 1. The motion model: a homogeneous Markov chain (Definition 5/6).
  //    Row i = transition probabilities out of state s_{i+1}.
  auto chain = markov::MarkovChain::FromDense({
                   {0.0, 0.0, 1.0},    // s1 -> s3
                   {0.6, 0.0, 0.4},    // s2 -> s1 (60%) or s3 (40%)
                   {0.0, 0.8, 0.2},    // s3 -> s2 (80%) or s3 (20%)
               })
                   .ValueOrDie();

  // 2. The query window Q□ = S□ × T□ (Definition 2): states {s1, s2} at
  //    times {2, 3}. 0-based state indices.
  auto window = core::QueryWindow::FromRanges(/*num_states=*/3,
                                              /*s_lo=*/0, /*s_hi=*/1,
                                              /*t_lo=*/2, /*t_hi=*/3)
                    .ValueOrDie();

  // 3. The object: observed at s2 at time t = 0 with certainty.
  const sparse::ProbVector initial = sparse::ProbVector::Delta(3, 1);

  std::printf("PST-Exists query: S=[s1,s2], T=[2,3], object at s2@t0\n");
  std::printf("------------------------------------------------------\n");

  // Object-based processing (Section V-A): forward transitions with the
  // absorbing true-hit state folded into the matrices.
  core::ObjectBasedEngine ob(&chain, window);
  std::printf("object-based  (forward)  P-exists = %.4f\n",
              ob.ExistsProbability(initial));

  // Query-based processing (Section V-B): one backward pass, then a dot
  // product per object — the plan that scales to large databases.
  core::QueryBasedEngine qb(&chain, window);
  std::printf("query-based   (backward) P-exists = %.4f\n",
              qb.ExistsProbability(initial));
  std::printf("  start vector v(t=0) = (%.3f, %.3f, %.3f)  [paper: "
              "(0.96, 0.864, 0.928)]\n",
              qb.start_vector().Get(0), qb.start_vector().Get(1),
              qb.start_vector().Get(2));

  // Monte-Carlo baseline (Section VIII): approximate, with Bernoulli error.
  mc::MonteCarloEngine mc_engine(&chain, window,
                                 {.num_samples = 100, .seed = 42});
  const mc::McEstimate est = mc_engine.ExistsProbability(initial);
  std::printf("monte-carlo   (100 paths) P-exists ~ %.2f +/- %.2f\n",
              est.probability, est.std_error);

  // PST-ForAll (Definition 3): stay inside S□ at *all* window times.
  core::ForAllQueryBased forall(&chain, window);
  std::printf("\nPST-ForAll   P(in window at all of T) = %.4f\n",
              forall.ForAllProbability(initial));

  // PSTkQ (Definition 4): distribution of the number of window visits.
  core::KTimesEngine ktimes(&chain, window);
  const std::vector<double> dist = ktimes.Distribution(initial);
  std::printf("PST-k-Times  P(k visits):");
  for (size_t k = 0; k < dist.size(); ++k) {
    std::printf("  k=%zu: %.3f", k, dist[k]);
  }
  std::printf("   [paper: 0.136 / 0.672 / 0.192]\n");

  // The production entry point: register the model and object in a
  // Database and let the planner/executor pipeline serve any predicate —
  // plan auto-selection, parallelism, and engine caching included.
  core::Database db;
  const ChainId cls = db.AddChain(chain);
  (void)db.AddObjectAt(cls, initial).ValueOrDie();
  core::QueryExecutor executor(&db);
  const auto answer =
      executor
          .Run({.predicate = core::PredicateKind::kExists, .window = window})
          .ValueOrDie();
  std::printf("\nQueryExecutor pipeline (auto plan)    P-exists = %.4f\n",
              answer.probabilities[0].probability);

  // Ground truth by exhaustive possible-worlds enumeration (tractable only
  // because the model is tiny — O(|S|^T) in general).
  const double truth =
      exact::ExistsByEnumeration(chain, initial, window).ValueOrDie();
  std::printf("\npossible-worlds enumeration (oracle): %.4f\n", truth);
  return 0;
}
