// §V-C — amortization of the query-based plan over the database size.
//
// QB's complexity is O(|D| + |S_reach|²·δt): one backward pass independent
// of |D|, then a dot product per object. OB is O(|D|·|S_reach|²·δt). This
// bench sweeps |D| (Table I's range 1,000..100,000) and reports both, plus
// the per-object cost of QB (series qb_per_object_us) which should be flat
// and tiny — the "total CPU cost of O(1) per object" claim.
//
// Usage: bench_db_size [--full]

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"
#include "core/object_based.h"
#include "core/query_based.h"
#include "workload/synthetic.h"

namespace {

using namespace ustdb;

bool g_full = false;

struct Fixture {
  core::Database db;
  core::QueryWindow window;
};

Fixture& GetFixture(uint32_t num_objects) {
  static std::map<uint32_t, Fixture> cache;
  auto it = cache.find(num_objects);
  if (it == cache.end()) {
    workload::SyntheticConfig config;
    config.num_states = g_full ? 100'000 : 20'000;
    config.num_objects = num_objects;
    config.seed = 29;
    Fixture f{workload::GenerateDatabase(config).ValueOrDie(),
              workload::DefaultWindow(config).ValueOrDie()};
    it = cache.emplace(num_objects, std::move(f)).first;
  }
  return it->second;
}

void BM_QB(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<uint32_t>(state.range(0)));
  double seconds = 0.0;
  for (auto _ : state) {
    util::Stopwatch sw;
    core::QueryBasedEngine engine(&f.db.chain(0), f.window);
    double total = 0.0;
    for (const auto& obj : f.db.objects()) {
      total += engine.ExistsProbability(obj.initial_pdf());
    }
    benchmark::DoNotOptimize(total);
    seconds = sw.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  benchutil::Recorder::Instance().Record("QB", state.range(0), seconds);
  benchutil::Recorder::Instance().Record(
      "qb_per_object_us", state.range(0),
      seconds * 1e6 / static_cast<double>(state.range(0)));
}

void BM_OB(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<uint32_t>(state.range(0)));
  benchutil::TimedIterations(state, "OB", state.range(0), [&] {
    core::ObjectBasedEngine engine(&f.db.chain(0), f.window);
    double total = 0.0;
    for (const auto& obj : f.db.objects()) {
      total += engine.ExistsProbability(obj.initial_pdf());
    }
    benchmark::DoNotOptimize(total);
  });
}

void Register() {
  const std::vector<int64_t> sizes =
      g_full ? std::vector<int64_t>{1'000, 5'000, 10'000, 50'000, 100'000}
             : std::vector<int64_t>{1'000, 5'000, 10'000, 30'000};
  for (int64_t d : sizes) {
    benchmark::RegisterBenchmark("db_size/QB", BM_QB)
        ->Arg(d)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    // OB at 100k objects takes minutes; cap it below the largest setting
    // unless --full is given.
    if (g_full || d <= 30'000) {
      benchmark::RegisterBenchmark("db_size/OB", BM_OB)
          ->Arg(d)
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  g_full = ustdb::benchutil::ExtractFlag(&argc, argv, "--full");
  Register();
  return ustdb::benchutil::RunBenchMain(argc, argv, "db_size",
                                        "num_objects",
                                        "whole-database runtime [s]");
}
