// Extension — microbenchmark of the regime-specialized SpMV kernels.
//
// Every predicate of the paper reduces to repeated row-vector × CSR
// products, so the innermost kernels of VecMatWorkspace are where nearly
// all query time goes. This bench sweeps the input vector's support
// density across the sparse→dense transition and times, per product:
//
//   legacy          — the pre-overhaul single-path kernel
//                     (MultiplyLegacy: stamp bookkeeping in every regime)
//   multiply        — the regime-dispatching kernel (Multiply), scatter
//   multiply_gather — Multiply with the memoized transpose supplied
//                     (sequential gather; only meaningful in the dense
//                     regime, where engines actually use it)
//   legacy_extract  — legacy product followed by the separate
//                     ExtractMassIn sweep (the old engine inner loop)
//   fused_extract   — MultiplyAndExtract: product + ◆-redirection in one
//                     pass (the new engine inner loop)
//
// plus derived ratio series (higher is better, machine-independent-ish):
//
//   speedup_multiply = legacy / multiply
//   speedup_gather   = legacy / multiply_gather
//   speedup_fused    = legacy_extract / fused_extract
//
// A banded fixture (consecutive-column rows, the shape of the paper's
// road-network and spatial-grid models) contributes banded_legacy /
// banded_gather / speedup_banded_gather at the dense end of the sweep.
// On hosts with AVX2, in-process isa_speedup_* series additionally time
// the same body under the scalar-baseline and the AVX2 kernel tables
// (kernels::SetActiveIsa) and report baseline/avx2 ratios:
//
//   isa_speedup_gather         — random fixture, transposed gather
//   isa_speedup_scatter        — random fixture, dense scatter
//   isa_speedup_banded_gather  — banded fixture, dense-dot gather
//
// Before timing, every kernel's output is checked against the legacy
// path (max-abs diff <= 1e-12; the non-clamped kernels are in fact
// bit-identical by construction).
//
// Usage: bench_spmv_kernels [--smoke] [--json <path>] [--isa <name>]
//   --smoke shrinks the model so the bench finishes in seconds; CI's
//   perf-smoke job runs this mode and compares the speedup series against
//   bench/baselines/spmv_smoke.<isa>.json.
//   --isa baseline|avx2 forces the dispatched kernel table (exits
//   non-zero when the host cannot run it); the selected ISA is printed
//   and recorded in the --json output's "meta" object either way.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "kernels/isa.h"
#include "sparse/csr_matrix.h"
#include "sparse/index_set.h"
#include "sparse/prob_vector.h"
#include "util/rng.h"

namespace {

using namespace ustdb;
using sparse::CsrMatrix;
using sparse::IndexSet;
using sparse::ProbVector;
using sparse::VecMatWorkspace;

bool g_smoke = false;

struct Fixture {
  CsrMatrix matrix;
  CsrMatrix transposed;
  // Banded variant: consecutive-column rows (road networks, spatial
  // grids). Its transpose's gather blocks are whole contiguous runs, the
  // dense-dot fast path of the AVX2 gather.
  CsrMatrix banded;
  CsrMatrix banded_transposed;
  IndexSet region;  // ~10% of states, the ◆-redirection target
  // One input vector per swept density, in the representation the
  // adaptive ProbVector would actually be using at that support.
  std::vector<double> densities;
  std::vector<ProbVector> vectors;
};

// Smoke stays cache-resident (the regime where the kernel, not DRAM
// bandwidth, is measured — and the regime of the paper's state spaces);
// full additionally streams from memory.
uint32_t NumStates() { return g_smoke ? 1'500 : 6'000; }
constexpr uint32_t kNnzPerRow = 12;

Fixture& GetFixture() {
  static std::optional<Fixture> cache;
  if (!cache.has_value()) {
    const uint32_t n = NumStates();
    util::Rng rng(20260728);

    // Random sub-stochastic matrix: kNnzPerRow random columns per row,
    // row sums scaled to 0.97 (augmented M' matrices are sub-stochastic).
    std::vector<sparse::Triplet> triplets;
    triplets.reserve(static_cast<size_t>(n) * kNnzPerRow);
    for (uint32_t r = 0; r < n; ++r) {
      double sum = 0.0;
      std::vector<std::pair<uint32_t, double>> row;
      for (uint32_t k = 0; k < kNnzPerRow; ++k) {
        row.emplace_back(static_cast<uint32_t>(rng.NextBounded(n)),
                         0.05 + rng.NextDouble());
      }
      for (const auto& [c, v] : row) sum += v;
      for (const auto& [c, v] : row) {
        triplets.push_back({r, c, 0.97 * v / sum});
      }
    }
    Fixture f;
    f.matrix = CsrMatrix::FromTriplets(n, n, std::move(triplets))
                   .ValueOrDie();
    f.transposed = f.matrix.Transposed();

    std::vector<sparse::Triplet> banded_triplets;
    banded_triplets.reserve(static_cast<size_t>(n) * kNnzPerRow);
    for (uint32_t r = 0; r < n; ++r) {
      uint32_t c0 = r >= kNnzPerRow / 2 ? r - kNnzPerRow / 2 : 0;
      c0 = std::min(c0, n - kNnzPerRow);
      double sum = 0.0;
      std::vector<double> w(kNnzPerRow);
      for (double& v : w) {
        v = 0.05 + rng.NextDouble();
        sum += v;
      }
      for (uint32_t k = 0; k < kNnzPerRow; ++k) {
        banded_triplets.push_back({r, c0 + k, 0.97 * w[k] / sum});
      }
    }
    f.banded =
        CsrMatrix::FromTriplets(n, n, std::move(banded_triplets))
            .ValueOrDie();
    f.banded_transposed = f.banded.Transposed();

    std::vector<uint32_t> region_members;
    for (uint32_t s = 0; s < n / 10; ++s) {
      region_members.push_back(static_cast<uint32_t>(rng.NextBounded(n)));
    }
    f.region =
        IndexSet::FromIndices(n, std::move(region_members)).ValueOrDie();

    f.densities = {0.01, 0.05, 0.15, 0.30, 0.60, 1.00};
    std::vector<uint32_t> perm(n);
    for (uint32_t i = 0; i < n; ++i) perm[i] = i;
    for (uint32_t i = n; i > 1; --i) {  // Fisher–Yates, exact support sizes
      std::swap(perm[i - 1],
                perm[static_cast<uint32_t>(rng.NextBounded(i))]);
    }
    for (double d : f.densities) {
      const auto support = static_cast<uint32_t>(d * n);
      std::vector<std::pair<uint32_t, double>> pairs;
      for (uint32_t k = 0; k < support; ++k) {
        pairs.emplace_back(perm[k], rng.NextDouble() + 1e-3);
      }
      f.vectors.push_back(
          ProbVector::FromPairs(n, std::move(pairs), /*normalize=*/true)
              .ValueOrDie());
    }
    cache.emplace(std::move(f));
  }
  return *cache;
}

/// Parity gate: refuse to time kernels whose answers drift from legacy.
void VerifyParity(const Fixture& f) {
  VecMatWorkspace ws;
  for (size_t i = 0; i < f.vectors.size(); ++i) {
    const ProbVector& x = f.vectors[i];
    ProbVector ref;
    ws.MultiplyLegacy(x, f.matrix, &ref);

    ProbVector got;
    ws.Multiply(x, f.matrix, &got);
    double diff = got.MaxAbsDiff(ref);
    ws.Multiply(x, f.matrix, &got, &f.transposed);
    diff = std::max(diff, got.MaxAbsDiff(ref));

    ProbVector ref_extract = ref;
    const double ref_mass = ref_extract.ExtractMassIn(f.region);
    const double fused_mass =
        ws.MultiplyAndExtract(x, f.matrix, f.region, &got, &f.transposed);
    diff = std::max(diff, got.MaxAbsDiff(ref_extract));
    diff = std::max(diff, std::abs(fused_mass - ref_mass));

    const double massin =
        ws.MultiplyAndMassIn(x, f.matrix, f.region, &got, &f.transposed);
    diff = std::max(diff, got.MaxAbsDiff(ref));
    diff = std::max(diff, std::abs(massin - ref_mass));

    std::vector<std::pair<uint32_t, double>> moved;
    const double entries_mass = ws.MultiplyAndExtractEntries(
        x, f.matrix, f.region, &got, &moved, &f.transposed);
    diff = std::max(diff, got.MaxAbsDiff(ref_extract));
    diff = std::max(diff, std::abs(entries_mass - ref_mass));

    // Clamp: reference is the unfused extract + re-insert + multiply.
    ProbVector clamped = x;
    clamped.ExtractMassIn(f.region);
    std::vector<std::pair<uint32_t, double>> ones;
    for (uint32_t s : f.region) ones.emplace_back(s, 1.0);
    clamped.AddEntries(ones);
    ProbVector clamp_ref;
    ws.MultiplyLegacy(clamped, f.matrix, &clamp_ref);
    ws.MultiplyClamped(x, f.matrix, f.region, &got, &f.transposed);
    diff = std::max(diff, got.MaxAbsDiff(clamp_ref));

    // Banded fixture: the gather must agree there too (it takes the
    // contiguous dense-dot fast path instead of the indexed one).
    ProbVector banded_ref;
    ws.MultiplyLegacy(x, f.banded, &banded_ref);
    ws.Multiply(x, f.banded, &got, &f.banded_transposed);
    diff = std::max(diff, got.MaxAbsDiff(banded_ref));

    if (diff > 1e-12) {
      std::fprintf(stderr,
                   "kernel parity failure at density %g: max diff %.3e\n",
                   f.densities[i], diff);
      std::exit(1);
    }
  }
  std::printf("parity: all kernels within 1e-12 of the legacy path\n");
}

int Reps() { return g_smoke ? 200 : 60; }
constexpr int kTrials = 3;  // record the fastest trial: noise is one-sided

// Per-product seconds of the base kernels, kept to derive the speedup
// series without re-measuring.
std::map<double, double> g_legacy_seconds;
std::map<double, double> g_legacy_extract_seconds;
std::map<double, double> g_legacy_clamp_seconds;

template <typename Body>
void TimePerProduct(benchmark::State& state, const std::string& series,
                    double density, Body&& body) {
  const int reps = Reps();
  double seconds = 0.0;
  for (auto _ : state) {
    double best = 1e300;
    for (int trial = 0; trial < kTrials; ++trial) {
      util::Stopwatch sw;
      for (int r = 0; r < reps; ++r) body();
      best = std::min(best, sw.ElapsedSeconds() / reps);
    }
    seconds = best;
    state.SetIterationTime(seconds * reps * kTrials);
  }
  benchutil::Recorder::Instance().Record(series, density * 100.0, seconds);
  if (series == "legacy") g_legacy_seconds[density] = seconds;
  if (series == "legacy_extract") {
    g_legacy_extract_seconds[density] = seconds;
  }
  if (series == "legacy_clamp") g_legacy_clamp_seconds[density] = seconds;
}

void RecordRatio(const std::string& series, double density, double base,
                 double mine) {
  if (base > 0.0 && mine > 0.0) {
    benchutil::Recorder::Instance().Record(series, density * 100.0,
                                           base / mine);
  }
}

void BM_Legacy(benchmark::State& state) {
  Fixture& f = GetFixture();
  const double d = f.densities[state.range(0)];
  const ProbVector& x = f.vectors[state.range(0)];
  VecMatWorkspace ws;
  ProbVector out;
  TimePerProduct(state, "legacy", d, [&] {
    ws.MultiplyLegacy(x, f.matrix, &out);
    benchmark::DoNotOptimize(out);
  });
}

void BM_Multiply(benchmark::State& state) {
  Fixture& f = GetFixture();
  const double d = f.densities[state.range(0)];
  const ProbVector& x = f.vectors[state.range(0)];
  VecMatWorkspace ws;
  ProbVector out;
  TimePerProduct(state, "multiply", d, [&] {
    ws.Multiply(x, f.matrix, &out);
    benchmark::DoNotOptimize(out);
  });
  RecordRatio("speedup_multiply", d, g_legacy_seconds[d],
              benchutil::Recorder::Instance().Get("multiply", d * 100.0));
}

void BM_MultiplyGather(benchmark::State& state) {
  Fixture& f = GetFixture();
  const double d = f.densities[state.range(0)];
  const ProbVector& x = f.vectors[state.range(0)];
  VecMatWorkspace ws;
  ProbVector out;
  TimePerProduct(state, "multiply_gather", d, [&] {
    ws.Multiply(x, f.matrix, &out, &f.transposed);
    benchmark::DoNotOptimize(out);
  });
  RecordRatio(
      "speedup_gather", d, g_legacy_seconds[d],
      benchutil::Recorder::Instance().Get("multiply_gather", d * 100.0));
}

void BM_LegacyExtract(benchmark::State& state) {
  Fixture& f = GetFixture();
  const double d = f.densities[state.range(0)];
  const ProbVector& x = f.vectors[state.range(0)];
  VecMatWorkspace ws;
  ProbVector out;
  TimePerProduct(state, "legacy_extract", d, [&] {
    ws.MultiplyLegacy(x, f.matrix, &out);
    benchmark::DoNotOptimize(out.ExtractMassIn(f.region));
  });
}

void BM_FusedExtract(benchmark::State& state) {
  Fixture& f = GetFixture();
  const double d = f.densities[state.range(0)];
  const ProbVector& x = f.vectors[state.range(0)];
  VecMatWorkspace ws;
  ProbVector out;
  TimePerProduct(state, "fused_extract", d, [&] {
    benchmark::DoNotOptimize(
        ws.MultiplyAndExtract(x, f.matrix, f.region, &out, &f.transposed));
  });
  RecordRatio(
      "speedup_fused", d, g_legacy_extract_seconds[d],
      benchutil::Recorder::Instance().Get("fused_extract", d * 100.0));
}

// The query-based backward step before the overhaul: clamp the region to
// ones (extract + merge re-insert — a full vector rebuild) and multiply.
void BM_LegacyClamp(benchmark::State& state) {
  Fixture& f = GetFixture();
  const double d = f.densities[state.range(0)];
  const ProbVector& x = f.vectors[state.range(0)];
  VecMatWorkspace ws;
  ProbVector out;
  std::vector<std::pair<uint32_t, double>> ones;
  ones.reserve(f.region.size());
  for (uint32_t s : f.region) ones.emplace_back(s, 1.0);
  TimePerProduct(state, "legacy_clamp", d, [&] {
    ProbVector g = x;
    g.ExtractMassIn(f.region);
    g.AddEntries(ones);
    ws.MultiplyLegacy(g, f.matrix, &out);
    benchmark::DoNotOptimize(out);
  });
}

void BM_FusedClamp(benchmark::State& state) {
  Fixture& f = GetFixture();
  const double d = f.densities[state.range(0)];
  const ProbVector& x = f.vectors[state.range(0)];
  VecMatWorkspace ws;
  ProbVector out;
  TimePerProduct(state, "fused_clamp", d, [&] {
    ws.MultiplyClamped(x, f.matrix, f.region, &out, &f.transposed);
    benchmark::DoNotOptimize(out);
  });
  RecordRatio(
      "speedup_clamp", d, g_legacy_clamp_seconds[d],
      benchutil::Recorder::Instance().Get("fused_clamp", d * 100.0));
}

// Banded fixture at the dense end of the sweep: the regime where banded
// models (road networks, grids) actually run, and where the gather's
// contiguous dense-dot path pays off.
void BM_BandedLegacy(benchmark::State& state) {
  Fixture& f = GetFixture();
  const ProbVector& x = f.vectors.back();
  VecMatWorkspace ws;
  ProbVector out;
  TimePerProduct(state, "banded_legacy", 1.0, [&] {
    ws.MultiplyLegacy(x, f.banded, &out);
    benchmark::DoNotOptimize(out);
  });
}

void BM_BandedGather(benchmark::State& state) {
  Fixture& f = GetFixture();
  const ProbVector& x = f.vectors.back();
  VecMatWorkspace ws;
  ProbVector out;
  TimePerProduct(state, "banded_gather", 1.0, [&] {
    ws.Multiply(x, f.banded, &out, &f.banded_transposed);
    benchmark::DoNotOptimize(out);
  });
  RecordRatio("speedup_banded_gather", 1.0,
              benchutil::Recorder::Instance().Get("banded_legacy", 100.0),
              benchutil::Recorder::Instance().Get("banded_gather", 100.0));
}

// ---- In-process ISA comparison ---------------------------------------
// Times the same body under the scalar-baseline and the AVX2 kernel
// tables and records the baseline/avx2 ratio. Registered only on hosts
// whose CPU supports AVX2; the active table is restored afterwards, so
// these series compose with a --isa forced run.

template <typename Body>
double BestSecondsPerProduct(int reps, Body&& body) {
  double best = 1e300;
  for (int trial = 0; trial < kTrials; ++trial) {
    util::Stopwatch sw;
    for (int r = 0; r < reps; ++r) body();
    best = std::min(best, sw.ElapsedSeconds() / reps);
  }
  return best;
}

template <typename Body>
void TimeIsaRatio(benchmark::State& state, const std::string& series,
                  double density, Body&& body) {
  const kernels::Isa prev = kernels::ActiveIsa();
  const int reps = Reps();
  double scalar_s = 0.0;
  double avx2_s = 0.0;
  for (auto _ : state) {
    kernels::SetActiveIsa(kernels::Isa::kBaseline);
    scalar_s = BestSecondsPerProduct(reps, body);
    kernels::SetActiveIsa(kernels::Isa::kAvx2);
    avx2_s = BestSecondsPerProduct(reps, body);
    state.SetIterationTime((scalar_s + avx2_s) * reps * kTrials);
  }
  kernels::SetActiveIsa(prev);
  if (scalar_s > 0.0 && avx2_s > 0.0) {
    benchutil::Recorder::Instance().Record(series, density * 100.0,
                                           scalar_s / avx2_s);
  }
}

void BM_IsaGather(benchmark::State& state) {
  Fixture& f = GetFixture();
  const double d = f.densities[state.range(0)];
  const ProbVector& x = f.vectors[state.range(0)];
  VecMatWorkspace ws;
  ProbVector out;
  TimeIsaRatio(state, "isa_speedup_gather", d, [&] {
    ws.Multiply(x, f.matrix, &out, &f.transposed);
    benchmark::DoNotOptimize(out);
  });
}

void BM_IsaScatter(benchmark::State& state) {
  Fixture& f = GetFixture();
  const double d = f.densities[state.range(0)];
  const ProbVector& x = f.vectors[state.range(0)];
  VecMatWorkspace ws;
  ProbVector out;
  TimeIsaRatio(state, "isa_speedup_scatter", d, [&] {
    ws.Multiply(x, f.matrix, &out);
    benchmark::DoNotOptimize(out);
  });
}

void BM_IsaBandedGather(benchmark::State& state) {
  Fixture& f = GetFixture();
  const ProbVector& x = f.vectors.back();
  VecMatWorkspace ws;
  ProbVector out;
  TimeIsaRatio(state, "isa_speedup_banded_gather", 1.0, [&] {
    ws.Multiply(x, f.banded, &out, &f.banded_transposed);
    benchmark::DoNotOptimize(out);
  });
}

void Register() {
  Fixture& f = GetFixture();
  VerifyParity(f);
  for (size_t i = 0; i < f.densities.size(); ++i) {
    const auto arg = static_cast<int64_t>(i);
    benchmark::RegisterBenchmark("spmv/legacy", BM_Legacy)
        ->Arg(arg)->Iterations(1)->UseManualTime()
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark("spmv/multiply", BM_Multiply)
        ->Arg(arg)->Iterations(1)->UseManualTime()
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark("spmv/multiply_gather", BM_MultiplyGather)
        ->Arg(arg)->Iterations(1)->UseManualTime()
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark("spmv/legacy_extract", BM_LegacyExtract)
        ->Arg(arg)->Iterations(1)->UseManualTime()
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark("spmv/fused_extract", BM_FusedExtract)
        ->Arg(arg)->Iterations(1)->UseManualTime()
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark("spmv/legacy_clamp", BM_LegacyClamp)
        ->Arg(arg)->Iterations(1)->UseManualTime()
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark("spmv/fused_clamp", BM_FusedClamp)
        ->Arg(arg)->Iterations(1)->UseManualTime()
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::RegisterBenchmark("spmv/banded_legacy", BM_BandedLegacy)
      ->Iterations(1)->UseManualTime()->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("spmv/banded_gather", BM_BandedGather)
      ->Iterations(1)->UseManualTime()->Unit(benchmark::kMicrosecond);
  if (kernels::IsaSupported(kernels::Isa::kAvx2)) {
    for (size_t i = 0; i < f.densities.size(); ++i) {
      const auto arg = static_cast<int64_t>(i);
      benchmark::RegisterBenchmark("spmv/isa_gather", BM_IsaGather)
          ->Arg(arg)->Iterations(1)->UseManualTime()
          ->Unit(benchmark::kMicrosecond);
      benchmark::RegisterBenchmark("spmv/isa_scatter", BM_IsaScatter)
          ->Arg(arg)->Iterations(1)->UseManualTime()
          ->Unit(benchmark::kMicrosecond);
    }
    benchmark::RegisterBenchmark("spmv/isa_banded_gather",
                                 BM_IsaBandedGather)
        ->Iterations(1)->UseManualTime()->Unit(benchmark::kMicrosecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  g_smoke = ustdb::benchutil::ExtractFlag(&argc, argv, "--smoke");
  const std::string isa_name =
      ustdb::benchutil::ExtractOption(&argc, argv, "--isa");
  if (!isa_name.empty()) {
    kernels::Isa isa;
    if (isa_name == "baseline") {
      isa = kernels::Isa::kBaseline;
    } else if (isa_name == "avx2") {
      isa = kernels::Isa::kAvx2;
    } else {
      std::fprintf(stderr, "unknown --isa '%s' (baseline|avx2)\n",
                   isa_name.c_str());
      return 2;
    }
    if (!kernels::SetActiveIsa(isa)) {
      std::fprintf(stderr, "--isa %s not supported on this host\n",
                   isa_name.c_str());
      return 2;
    }
  }
  std::printf("kernel isa: %s\n",
              kernels::IsaName(kernels::ActiveIsa()));
  ustdb::benchutil::Recorder::Instance().SetMeta(
      "isa", kernels::IsaName(kernels::ActiveIsa()));
  Register();
  return ustdb::benchutil::RunBenchMain(
      argc, argv, "spmv_kernels", "support_density_pct",
      "seconds per product / speedup vs legacy kernel");
}
