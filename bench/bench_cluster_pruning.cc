// §V-C — cluster pruning as a first-class executor plan.
//
// When every object follows its own (similar) chain, the query-based plan
// loses its amortization: one backward pass per distinct chain *per
// window*. The kBoundsThenRefine plan bounds whole similarity clusters
// with one interval-Markov-chain envelope — window-independent, memoized
// in the EngineCache — and per window pays one interval bound pass plus
// refinement of only the objects whose bound straddles τ.
//
// The bench models a monitoring deployment: one long-lived executor
// serves a stream of shifted threshold windows (fig9-style start-time
// sweep). Every window is distinct, so neither plan ever re-uses a
// window-keyed backward pass — but the envelope is window-independent
// and stays cached, exactly the asymmetry Section V-C exploits. A short
// untimed warm-up stream first populates the window-independent state
// both plans amortize in steady serving (memoized transposes; the
// envelope), then kWindows fresh windows are timed. Sweeping the number
// of distinct chains (jittered copies of one base, one registry cluster)
// reports:
//
//   per_chain_qb   — the pure query-based plan: chains × windows passes
//   bounds_refine  — the executor's kBoundsThenRefine plan (kAuto-selected
//                    on the prunable sweep points)
//   speedup_bounds — per_chain_qb / bounds_refine (machine-independent;
//                    checked against bench/baselines/cluster_pruning.json)
//   refined_frac   — fraction of object evaluations that needed refinement
//
// Result sets are asserted bit-identical between the two plans for every
// window before anything is timed. Each series takes the minimum of
// kTrials trials (container timing is noisy); every trial starts from a
// fresh executor (cold caches).
//
// Usage: bench_cluster_pruning [--full] [--smoke] [--json <path>]

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "bench_common.h"
#include "core/executor.h"
#include "workload/synthetic.h"

namespace {

using namespace ustdb;

bool g_full = false;
bool g_smoke = false;

constexpr double kTau = 0.30;
constexpr int kTrials = 3;
constexpr int kWarmup = 2;
constexpr int kWindows = 6;

struct Fixture {
  core::Database db;
  std::vector<core::QueryWindow> warmup;  // untimed; distinct from timed
  std::vector<core::QueryWindow> windows;
};

Fixture& GetFixture(uint32_t num_chains) {
  static std::map<uint32_t, Fixture> cache;
  auto it = cache.find(num_chains);
  if (it == cache.end()) {
    workload::SyntheticConfig config;
    config.num_states = g_full ? 20'000 : (g_smoke ? 2'000 : 5'000);
    config.num_objects = g_full ? 2'000 : (g_smoke ? 300 : 400);
    config.state_spread = 4;
    config.max_step = 20;
    config.seed = 41;
    Fixture f;
    f.db = workload::GenerateMultiChainDatabase(config, num_chains,
                                                /*jitter=*/0.05)
               .ValueOrDie();
    // Shifted monitoring windows: same region, sliding time range. The
    // warm-up windows precede the timed ones, like a dashboard that has
    // been ticking for a while.
    for (int w = 0; w < kWarmup + kWindows; ++w) {
      auto window =
          core::QueryWindow::FromRanges(config.num_states, 100, 160,
                                        8 + static_cast<Timestamp>(w),
                                        14 + static_cast<Timestamp>(w))
              .ValueOrDie();
      (w < kWarmup ? f.warmup : f.windows).push_back(std::move(window));
    }
    it = cache.emplace(num_chains, std::move(f)).first;
  }
  return it->second;
}

core::QueryRequest ThresholdRequest(const core::QueryWindow& window,
                                    core::PlanChoice plan) {
  core::QueryRequest request;
  request.predicate = core::PredicateKind::kThresholdExists;
  request.window = window;
  request.tau = kTau;
  request.plan = plan;
  return request;
}

/// One trial: fresh executor, untimed warm-up stream (window-independent
/// state: transposes, the cluster envelope), then the timed stream of
/// distinct windows. Accumulates refined/evaluated object counts over the
/// timed windows.
double StreamSeconds(const Fixture& f, core::PlanChoice plan,
                     uint64_t* refined, uint64_t* evaluated) {
  core::QueryExecutor executor(&f.db, {.num_threads = 1});
  for (const core::QueryWindow& window : f.warmup) {
    auto result = executor.Run(ThresholdRequest(window, plan)).ValueOrDie();
    benchmark::DoNotOptimize(result);
  }
  util::Stopwatch sw;
  for (const core::QueryWindow& window : f.windows) {
    auto result = executor.Run(ThresholdRequest(window, plan)).ValueOrDie();
    if (refined != nullptr) {
      *refined += result.stats.prune.objects_refined;
      *evaluated += f.db.num_objects();
    }
    benchmark::DoNotOptimize(result);
  }
  return sw.ElapsedSeconds();
}

/// Asserts both plans answer every window of the stream with the same ids
/// and bit-identical probabilities; aborts otherwise (a perf number for a
/// wrong answer is worse than no number). Returns how many cluster bound
/// passes the kAuto stream ran.
uint64_t AssertBitIdenticalStream(const Fixture& f, uint32_t num_chains) {
  core::QueryExecutor qb_exec(&f.db, {.num_threads = 1});
  core::QueryExecutor auto_exec(&f.db, {.num_threads = 1});
  uint64_t clusters_bounded = 0;
  std::vector<core::QueryWindow> all_windows = f.warmup;
  all_windows.insert(all_windows.end(), f.windows.begin(), f.windows.end());
  for (const core::QueryWindow& window : all_windows) {
    const auto qb =
        qb_exec.Run(ThresholdRequest(window, core::PlanChoice::kQueryBased))
            .ValueOrDie();
    const auto bounds =
        auto_exec.Run(ThresholdRequest(window, core::PlanChoice::kAuto))
            .ValueOrDie();
    clusters_bounded += bounds.stats.prune.clusters_bounded;
    if (qb.probabilities.size() != bounds.probabilities.size()) {
      std::fprintf(stderr,
                   "FATAL: plans disagree on result count at %u chains "
                   "(%zu vs %zu)\n",
                   num_chains, qb.probabilities.size(),
                   bounds.probabilities.size());
      std::abort();
    }
    for (size_t i = 0; i < qb.probabilities.size(); ++i) {
      if (qb.probabilities[i].id != bounds.probabilities[i].id ||
          qb.probabilities[i].probability !=
              bounds.probabilities[i].probability) {
        std::fprintf(stderr, "FATAL: plans disagree at %u chains, index %zu\n",
                     num_chains, i);
        std::abort();
      }
    }
  }
  return clusters_bounded;
}

void BM_ClusterPruning(benchmark::State& state) {
  const uint32_t num_chains = static_cast<uint32_t>(state.range(0));
  Fixture& f = GetFixture(num_chains);

  // Correctness gate, off the clock.
  const uint64_t clusters_bounded = AssertBitIdenticalStream(f, num_chains);

  double qb_seconds = 0.0;
  double bounds_seconds = 0.0;
  uint64_t refined = 0;
  uint64_t evaluated = 0;
  for (auto _ : state) {
    for (int trial = 0; trial < kTrials; ++trial) {
      const double qb = StreamSeconds(f, core::PlanChoice::kQueryBased,
                                      nullptr, nullptr);
      if (trial == 0 || qb < qb_seconds) qb_seconds = qb;
      refined = 0;
      evaluated = 0;
      const double bounds = StreamSeconds(f, core::PlanChoice::kAuto,
                                          &refined, &evaluated);
      if (trial == 0 || bounds < bounds_seconds) bounds_seconds = bounds;
    }
    state.SetIterationTime(qb_seconds + bounds_seconds);
  }

  auto& recorder = benchutil::Recorder::Instance();
  recorder.Record("per_chain_qb", num_chains, qb_seconds);
  recorder.Record("bounds_refine", num_chains, bounds_seconds);
  recorder.Record("speedup_bounds", num_chains, qb_seconds / bounds_seconds);
  recorder.Record("refined_frac", num_chains,
                  static_cast<double>(refined) /
                      static_cast<double>(evaluated == 0 ? 1 : evaluated));
  recorder.Record("clusters_bounded", num_chains,
                  static_cast<double>(clusters_bounded));
}

void Register() {
  for (int64_t chains : {1, 2, 4, 8, 16, 32}) {
    if (g_smoke && chains != 1 && chains != 8 && chains != 32) continue;
    benchmark::RegisterBenchmark("cluster/bounds_vs_qb", BM_ClusterPruning)
        ->Arg(chains)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  g_full = ustdb::benchutil::ExtractFlag(&argc, argv, "--full");
  g_smoke = ustdb::benchutil::ExtractFlag(&argc, argv, "--smoke");
  Register();
  return ustdb::benchutil::RunBenchMain(argc, argv, "cluster_pruning",
                                        "distinct_chains",
                                        "threshold-query runtime [s]");
}
