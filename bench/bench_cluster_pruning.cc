// §V-C — interval-Markov-chain cluster pruning for multi-chain databases.
//
// When every object follows its own (similar) chain, the query-based plan
// loses its amortization: one backward pass per distinct chain. Section
// V-C proposes clustering similar chains, bounding each cluster with a
// probability-interval chain, deciding whole clusters against the
// threshold, and refining only the undecided objects. This bench sweeps
// the number of distinct chains and reports, for a threshold query:
//
//   per_chain_qb  — the naive plan: one QB backward pass per chain
//   clustered     — interval-chain pruning + refinement
//   refined_frac  — fraction of objects that needed individual refinement
//
// Expected shape: clustered wins when chains are numerous and similar
// (high jitter destroys the bounds and forces refinement).
//
// Usage: bench_cluster_pruning [--full]

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"
#include "core/threshold.h"
#include "workload/synthetic.h"

namespace {

using namespace ustdb;

bool g_full = false;

struct Fixture {
  core::Database db;
  core::QueryWindow window;
};

Fixture& GetFixture(uint32_t num_chains) {
  static std::map<uint32_t, Fixture> cache;
  auto it = cache.find(num_chains);
  if (it == cache.end()) {
    workload::SyntheticConfig config;
    config.num_states = g_full ? 20'000 : 5'000;
    config.num_objects = g_full ? 2'000 : 400;
    config.state_spread = 4;
    config.max_step = 20;
    config.seed = 41;
    Fixture f{workload::GenerateMultiChainDatabase(config, num_chains,
                                                   /*jitter=*/0.05)
                  .ValueOrDie(),
              core::QueryWindow::FromRanges(config.num_states, 100, 160, 8,
                                            14)
                  .ValueOrDie()};
    it = cache.emplace(num_chains, std::move(f)).first;
  }
  return it->second;
}

constexpr double kTau = 0.30;

void BM_PerChainQb(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<uint32_t>(state.range(0)));
  benchutil::TimedIterations(state, "per_chain_qb", state.range(0), [&] {
    auto r = core::ThresholdExistsQueryBased(f.db, f.window, kTau);
    benchmark::DoNotOptimize(r);
  });
}

void BM_Clustered(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<uint32_t>(state.range(0)));
  core::PruneStats stats;
  double seconds = 0.0;
  for (auto _ : state) {
    util::Stopwatch sw;
    stats = core::PruneStats{};
    auto r = core::ThresholdExistsClustered(
        f.db, f.window, kTau, /*num_clusters=*/4, &stats);
    benchmark::DoNotOptimize(r);
    seconds = sw.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  benchutil::Recorder::Instance().Record("clustered", state.range(0),
                                         seconds);
  benchutil::Recorder::Instance().Record(
      "refined_frac", state.range(0),
      static_cast<double>(stats.objects_refined) / f.db.num_objects());
}

void Register() {
  for (int64_t chains : {1, 2, 4, 8, 16, 32}) {
    benchmark::RegisterBenchmark("cluster/per_chain_qb", BM_PerChainQb)
        ->Arg(chains)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("cluster/clustered", BM_Clustered)
        ->Arg(chains)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  g_full = ustdb::benchutil::ExtractFlag(&argc, argv, "--full");
  Register();
  return ustdb::benchutil::RunBenchMain(argc, argv, "cluster_pruning",
                                        "distinct_chains",
                                        "threshold-query runtime [s]");
}
