// Extension — QueryService under open-loop traffic.
//
// The batch benchmark (bench_batch_refresh) measures the executor when a
// caller hands it a ready-made batch; this one measures the *service*,
// which must build those batches itself from an arrival stream. Two
// scenarios, each run with coalescing on and off (off = strict
// one-request-per-dispatch, the no-batching admission layer):
//
//   burst    — a 64-request single-window bulk burst submitted while
//              background interactive traffic (Poisson over other windows,
//              cache sized to thrash) keeps evicting the burst's backward
//              pass. Uncoalesced, burst members interleave with background
//              requests and re-pay the pass; coalesced, the whole burst
//              drains as one RunBatch group and pays it once. Reported as
//              burst makespan [ms] at x = 64.
//   idle_burst — the same burst on an otherwise idle service (the warm
//              cache rescues solo mode here; reported for honesty about
//              where coalescing does and does not matter).
//   sustained — Poisson arrivals over a Zipf-repeating window pool for two
//              seconds per offered rate; reports achieved qps and p99
//              latency [ms] per submission mode at x = offered qps.
//   tracing_overhead — the observability overhead contract: the same
//              closed-loop warm-cache stream of cheap exists requests
//              pushed through an uncoalesced single-thread service with
//              observability fully on (metrics + trace sampling + slow
//              ring) and fully off, alternating, best of 3 per side.
//              Reports tracing_on_qps / tracing_off_qps plus the gated
//              machine-independent ratio tracing_qps_ratio (>= 0.95
//              required: tracing may cost at most 5% qps). Run with
//              --tracing to register only this series.
//   sharded_scaling — the same contended mixed stream (single-chain
//              requests over 8 independent chains, windows cycling faster
//              than the engine cache can hold, mixed exists/forall/k-times
//              predicates) pushed through a sharded service at 1, 2, and 4
//              shards under a FIXED total worker budget. Each shard owns a
//              lane, an executor, and a cache slice, so throughput scales
//              with lanes on a multi-core host. Reports achieved qps at
//              x = shard count plus the machine-independent ratio
//              sharded_speedup (qps at N shards / qps at 1 shard, both
//              measured in this process) that the perf-smoke baseline
//              gates. Run with --sharded to register only this series.
//
// Before any timing, the fixture asserts that a coalesced 64-request
// single-window burst answers bit-identically to a direct
// QueryExecutor::RunBatch of the same requests.
//
// Usage: bench_service_throughput [--full] [--sharded] [--tracing]

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/executor.h"
#include "core/shard_router.h"
#include "service/query_service.h"
#include "workload/query_gen.h"
#include "workload/synthetic.h"

namespace {

using namespace ustdb;
using Clock = std::chrono::steady_clock;

bool g_full = false;
bool g_sharded_only = false;
bool g_tracing_only = false;

constexpr size_t kBurst = 64;
constexpr auto kResolveTimeout = std::chrono::milliseconds(60'000);

struct Fixture {
  core::Database db;
  core::QueryWindow burst_window;
  std::vector<core::QueryWindow> noise_windows;
  std::vector<core::QueryWindow> sustained_pool;  // Zipf-repeating stream
};

core::QueryRequest ExistsRequest(const core::QueryWindow& w) {
  core::QueryRequest request;
  request.predicate = core::PredicateKind::kExists;
  request.window = w;
  return request;
}

/// Bit-identity guard (acceptance): the service's coalesced burst answers
/// must equal a direct RunBatch of the same 64 requests, bit for bit.
void VerifyCoalescedBurstParity(const Fixture& f) {
  service::ServiceOptions options;
  options.executor.num_threads = 1;
  options.start_paused = true;
  options.queue_capacity = 2 * kBurst;
  options.max_batch = kBurst;
  service::QueryService svc(&f.db, options);
  std::vector<core::QueryRequest> burst(kBurst,
                                        ExistsRequest(f.burst_window));
  std::vector<service::QueryTicket> tickets = svc.SubmitBurst(burst);
  svc.Resume();

  // Drain the service before running the twin: two executors may share a
  // Database only when they do not touch it concurrently.
  std::vector<util::Result<core::QueryResult>> answers;
  for (service::QueryTicket& t : tickets) answers.push_back(t.Get());

  core::QueryExecutor twin(&f.db, {.num_threads = 1});
  const auto expected = twin.RunBatch(
      std::vector<core::QueryRequest>(kBurst, ExistsRequest(f.burst_window)));

  for (size_t i = 0; i < answers.size(); ++i) {
    const auto& got = answers[i];
    if (!got.ok() || !expected[i].ok()) {
      std::fprintf(stderr, "burst parity: request %zu failed\n", i);
      std::exit(1);
    }
    const auto& a = got.value().probabilities;
    const auto& b = expected[i].value().probabilities;
    if (a.size() != b.size()) {
      std::fprintf(stderr, "burst parity: size mismatch at %zu\n", i);
      std::exit(1);
    }
    for (size_t j = 0; j < a.size(); ++j) {
      if (a[j].id != b[j].id || a[j].probability != b[j].probability) {
        std::fprintf(stderr,
                     "burst parity: request %zu object %zu differs "
                     "(service %.17g vs RunBatch %.17g)\n",
                     i, j, a[j].probability, b[j].probability);
        std::exit(1);
      }
    }
  }
  const service::ServiceStats stats = svc.stats();
  if (stats.coalesced_requests != kBurst) {
    std::fprintf(stderr, "burst parity: expected one coalesced drain, got "
                 "%llu coalesced requests\n",
                 static_cast<unsigned long long>(stats.coalesced_requests));
    std::exit(1);
  }
  std::printf(
      "parity: coalesced 64-burst bit-identical to RunBatch (1 batch)\n");
}

Fixture& GetFixture() {
  static std::optional<Fixture> cache;
  if (!cache.has_value()) {
    workload::SyntheticConfig config;
    config.num_states = g_full ? 50'000 : 10'000;
    config.num_objects = g_full ? 5'000 : 1'000;
    config.seed = 51;
    Fixture f{workload::GenerateDatabase(config).ValueOrDie(), {}, {}, {}};

    workload::QueryGenConfig qconfig;
    qconfig.num_states = config.num_states;
    qconfig.t_min = 10;
    qconfig.t_max = 30;
    qconfig.seed = 52;
    util::Rng rng(qconfig.seed);
    f.burst_window = workload::RandomWindow(qconfig, &rng).ValueOrDie();
    for (int i = 0; i < 3; ++i) {
      f.noise_windows.push_back(
          workload::RandomWindow(qconfig, &rng).ValueOrDie());
    }
    f.sustained_pool =
        workload::RepeatingWorkload(qconfig, /*distinct_windows=*/8,
                                    /*count=*/4096)
            .ValueOrDie();
    (void)f.db.chain(0).transposed();  // pre-warm the shared transpose
    VerifyCoalescedBurstParity(f);
    cache.emplace(std::move(f));
  }
  return *cache;
}

/// Submits `count` interactive noise requests at Poisson arrivals until
/// stopped, cycling the noise windows (cache capacity 1 → every one
/// evicts). Joined before the service dies.
class BackgroundTraffic {
 public:
  BackgroundTraffic(service::QueryService* svc, const Fixture& f,
                    double rate_qps, uint64_t seed)
      : thread_([this, svc, &f, rate_qps, seed] {
          workload::ArrivalProcess arrivals =
              workload::ArrivalProcess::Create(
                  {.rate_qps = rate_qps, .seed = seed})
                  .ValueOrDie();
          const Clock::time_point start = Clock::now();
          double offset_s = 0.0;
          std::vector<service::QueryTicket> tickets;
          size_t i = 0;
          while (!stop_.load(std::memory_order_relaxed)) {
            offset_s += arrivals.NextGap();
            std::this_thread::sleep_until(
                start + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(offset_s)));
            if (stop_.load(std::memory_order_relaxed)) break;
            tickets.push_back(svc->Submit(
                ExistsRequest(f.noise_windows[i % f.noise_windows.size()]),
                service::Priority::kInteractive));
            ++i;
          }
          for (service::QueryTicket& t : tickets) {
            (void)t.WaitFor(kResolveTimeout);
          }
        }) {}

  void Stop() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// Burst makespan [s]: submit 64 bulk same-window requests at once, wait
/// for all of them, optionally under interactive background traffic.
double MeasureBurst(const Fixture& f, bool coalesce, bool contended) {
  service::ServiceOptions options;
  options.executor.num_threads = 1;
  // One cache slot: background traffic over several windows evicts the
  // burst's backward pass between uncoalesced burst members.
  options.executor.cache_capacity = 1;
  options.coalesce = coalesce;
  options.max_batch = 2 * kBurst;
  options.queue_capacity = 1024;
  service::QueryService svc(&f.db, options);

  std::optional<BackgroundTraffic> background;
  if (contended) {
    background.emplace(&svc, f, /*rate_qps=*/1000.0, /*seed=*/61);
    // Let the background stream occupy the cache before the burst lands.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::vector<core::QueryRequest> burst(kBurst,
                                        ExistsRequest(f.burst_window));
  util::Stopwatch sw;
  std::vector<service::QueryTicket> tickets =
      svc.SubmitBurst(std::move(burst), service::Priority::kBulk);
  for (service::QueryTicket& t : tickets) {
    if (!t.WaitFor(kResolveTimeout)) {
      std::fprintf(stderr, "burst ticket timed out\n");
      std::exit(1);
    }
  }
  const double seconds = sw.ElapsedSeconds();
  if (background.has_value()) background->Stop();
  svc.Shutdown();
  return seconds;
}

struct SustainedResult {
  double achieved_qps = 0.0;
  double p99_ms = 0.0;
};

/// Two seconds of Poisson arrivals at `offered_qps` over the Zipf pool.
SustainedResult MeasureSustained(const Fixture& f, bool coalesce,
                                 double offered_qps) {
  service::ServiceOptions options;
  options.executor.num_threads = 1;
  options.executor.cache_capacity = 4;  // pool has 8 distinct windows
  options.coalesce = coalesce;
  options.max_batch = kBurst;
  options.queue_capacity = 4096;
  service::QueryService svc(&f.db, options);

  workload::ArrivalProcess arrivals =
      workload::ArrivalProcess::Create({.rate_qps = offered_qps, .seed = 62})
          .ValueOrDie();
  const auto count =
      static_cast<size_t>(offered_qps * (g_full ? 4.0 : 2.0));

  util::Stopwatch sw;
  const Clock::time_point start = Clock::now();
  double offset_s = 0.0;
  std::vector<service::QueryTicket> tickets;
  tickets.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    offset_s += arrivals.NextGap();
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(offset_s)));
    tickets.push_back(svc.Submit(
        ExistsRequest(f.sustained_pool[i % f.sustained_pool.size()]),
        service::Priority::kInteractive));
  }
  for (service::QueryTicket& t : tickets) {
    if (!t.WaitFor(kResolveTimeout)) {
      std::fprintf(stderr, "sustained ticket timed out\n");
      std::exit(1);
    }
  }
  const double seconds = sw.ElapsedSeconds();
  const service::ServiceStats stats = svc.stats();
  svc.Shutdown();
  return {static_cast<double>(stats.completed) / seconds,
          stats.latency_p99_ms};
}

// ---------------------------------------------------------------------------
// Tracing-overhead series (the ≤5% observability contract).

/// Closed-loop qps of `count` cheap same-window exists requests through an
/// uncoalesced single-thread service with observability fully on or fully
/// off. Warm cache + cheap evaluation is the adversarial regime: the
/// per-request instrumentation (counter adds, stage clock reads, the
/// sampled traces) is largest relative to the work it measures.
double MeasureTracingQps(const Fixture& f, bool obs_on, size_t count) {
  service::ServiceOptions options;
  options.executor.num_threads = 1;
  options.coalesce = false;  // per-request dispatch: max instrumented edges
  options.queue_capacity = count + 1;
  options.obs.enabled = obs_on;
  options.obs.trace_sample_every = 16;
  options.obs.slow_query_ring = 16;
  service::QueryService svc(&f.db, options);

  // Warm the engine cache so every measured request is admission +
  // dispatch + a cache-hit evaluation.
  (void)svc.Submit(ExistsRequest(f.burst_window)).Get();

  std::vector<core::QueryRequest> stream(count,
                                         ExistsRequest(f.burst_window));
  util::Stopwatch sw;
  std::vector<service::QueryTicket> tickets =
      svc.SubmitBurst(std::move(stream));
  for (service::QueryTicket& t : tickets) {
    if (!t.WaitFor(kResolveTimeout) || !t.Get().ok()) {
      std::fprintf(stderr, "tracing stream request failed or timed out\n");
      std::exit(1);
    }
  }
  const double seconds = sw.ElapsedSeconds();
  svc.Shutdown();
  return static_cast<double>(count) / seconds;
}

void BM_TracingOverhead(benchmark::State& state) {
  Fixture& f = GetFixture();
  const size_t count = g_full ? 1024 : 384;
  double best_on = 0.0;
  double best_off = 0.0;
  for (auto _ : state) {
    util::Stopwatch sw;
    // Alternate sides, best of 3 each: scheduler noise hits both equally
    // and the max filters one-off stalls, so the RATIO transfers across
    // machines even though the absolute qps does not.
    for (int round = 0; round < 3; ++round) {
      best_off = std::max(best_off, MeasureTracingQps(f, false, count));
      best_on = std::max(best_on, MeasureTracingQps(f, true, count));
    }
    state.SetIterationTime(sw.ElapsedSeconds());
  }
  benchutil::Recorder::Instance().Record("tracing_off_qps", 1.0, best_off);
  benchutil::Recorder::Instance().Record("tracing_on_qps", 1.0, best_on);
  benchutil::Recorder::Instance().Record("tracing_qps_ratio", 1.0,
                                         best_on / best_off);
}

// ---------------------------------------------------------------------------
// Sharded scaling series.

constexpr uint32_t kShardChains = 8;
constexpr uint32_t kShardWindows = 8;  // distinct windows per chain

/// Raw materials of the sharded fixture, kept outside any Database so the
/// SAME chain/object stream can be loaded into a ShardedDatabase per shard
/// count (and into the unsharded parity twin) with bit-identical content.
struct ShardMaterials {
  workload::SyntheticConfig config;
  std::vector<markov::MarkovChain> chains;
  std::vector<sparse::ProbVector> pdfs;  // object i follows chain i % kShardChains
  size_t num_requests = 0;
};

workload::SyntheticConfig ShardChainConfig() {
  workload::SyntheticConfig config;
  config.num_states = g_full ? 20'000 : 10'000;
  config.num_objects = g_full ? 2'000 : 800;
  return config;
}

ShardMaterials MakeShardMaterials() {
  ShardMaterials m;
  m.config = ShardChainConfig();
  m.num_requests = g_full ? 512 : 256;
  for (uint32_t c = 0; c < kShardChains; ++c) {
    // Independent seeds: each chain draws its own support pattern, founds
    // its own similarity cluster, and therefore lands on its own shard
    // (clusters never split; founding picks the least loaded shard).
    util::Rng rng(71 + c);
    m.chains.push_back(
        workload::GenerateChain(m.config, &rng).ValueOrDie());
  }
  util::Rng rng(72);
  for (uint32_t i = 0; i < m.config.num_objects; ++i) {
    m.pdfs.push_back(workload::GenerateObjectPdf(m.config, &rng));
  }
  return m;
}

std::unique_ptr<core::ShardedDatabase> BuildSharded(const ShardMaterials& m,
                                                    uint32_t num_shards) {
  auto db = std::make_unique<core::ShardedDatabase>(
      core::ShardingOptions{.num_shards = num_shards});
  for (const markov::MarkovChain& chain : m.chains) db->AddChain(chain);
  for (size_t i = 0; i < m.pdfs.size(); ++i) {
    db->AddObjectAt(static_cast<ChainId>(i % kShardChains), m.pdfs[i])
        .ValueOrDie();
  }
  return db;
}

/// Request `i` of the contended stream: single-chain (chain i mod 8, so
/// consecutive requests hit different shards), windows cycling through 8
/// distinct placements per chain — far more than the 2-slot engine cache
/// holds, so every dispatch pays an engine build, the serial per-request
/// cost that shard lanes parallelize — and predicates cycling
/// exists/forall/k-times.
core::QueryRequest ShardRequest(const ShardMaterials& m, size_t i) {
  const auto chain = static_cast<uint32_t>(i % kShardChains);
  const auto window = static_cast<uint32_t>((i / kShardChains) % kShardWindows);

  core::QueryRequest request;
  switch (i % 3) {
    case 0: request.predicate = core::PredicateKind::kExists; break;
    case 1: request.predicate = core::PredicateKind::kForAll; break;
    default: request.predicate = core::PredicateKind::kKTimes; break;
  }
  const uint32_t n = m.config.num_states;
  const uint32_t s_lo = (window * 997 + chain * 131) % (n - 40);
  const uint32_t t_lo = 10 + (window % 4) * 3;
  request.window =
      core::QueryWindow::FromRanges(n, s_lo, s_lo + 30, t_lo, t_lo + 5)
          .ValueOrDie();
  std::vector<ObjectId> filter;
  for (ObjectId g = chain; g < m.config.num_objects; g += kShardChains) {
    filter.push_back(g);
  }
  request.object_filter = std::move(filter);
  return request;
}

service::ServiceOptions ShardedServiceOptions(const ShardMaterials& m) {
  service::ServiceOptions options;
  // FIXED total worker budget, divided across the shard executors: the
  // 1-shard run gets one 4-thread executor, the 4-shard run four 1-thread
  // executors. The comparison is lanes vs one lane, not extra threads.
  options.executor.num_threads = 4;
  // Two engine slots per shard against 8 distinct windows per resident
  // chain: the stream thrashes every configuration's cache, so throughput
  // is bounded by engine builds — work a single dispatcher serializes and
  // shard lanes overlap.
  options.executor.cache_capacity = 2;
  options.coalesce = false;  // strict per-request dispatch on every lane
  options.queue_capacity = m.num_requests;  // whole burst stages at once
  return options;
}

/// Bit-identity guard: the sharded service must answer the stream head
/// exactly like the legacy single-executor service over the equivalent
/// unsharded Database.
void VerifyShardedParity(const ShardMaterials& m) {
  core::Database unsharded;
  for (const markov::MarkovChain& chain : m.chains) {
    unsharded.AddChain(chain);
  }
  for (size_t i = 0; i < m.pdfs.size(); ++i) {
    unsharded.AddObjectAt(static_cast<ChainId>(i % kShardChains), m.pdfs[i])
        .ValueOrDie();
  }
  std::unique_ptr<core::ShardedDatabase> sharded = BuildSharded(m, 4);

  service::ServiceOptions options;
  options.executor.num_threads = 1;
  service::QueryService legacy(&unsharded, options);
  service::QueryService routed(sharded.get(), options);

  for (size_t i = 0; i < 24; ++i) {
    auto expected = legacy.Submit(ShardRequest(m, i)).Get();
    auto got = routed.Submit(ShardRequest(m, i)).Get();
    if (!expected.ok() || !got.ok()) {
      std::fprintf(stderr, "sharded parity: request %zu failed\n", i);
      std::exit(1);
    }
    const auto& a = got.value().probabilities;
    const auto& b = expected.value().probabilities;
    bool same = a.size() == b.size();
    for (size_t j = 0; same && j < a.size(); ++j) {
      same = a[j].id == b[j].id && a[j].probability == b[j].probability;
    }
    const auto& da = got.value().distributions;
    const auto& db = expected.value().distributions;
    same = same && da.size() == db.size();
    for (size_t j = 0; same && j < da.size(); ++j) {
      same = da[j].id == db[j].id && da[j].distribution == db[j].distribution;
    }
    if (!same) {
      std::fprintf(stderr,
                   "sharded parity: request %zu differs from the "
                   "single-executor pipeline\n",
                   i);
      std::exit(1);
    }
  }
  std::printf(
      "parity: sharded(4) bit-identical to single-executor pipeline "
      "(24-request stream head)\n");
}

ShardMaterials& GetShardMaterials() {
  static std::optional<ShardMaterials> cache;
  if (!cache.has_value()) {
    ShardMaterials m = MakeShardMaterials();
    VerifyShardedParity(m);
    cache.emplace(std::move(m));
  }
  return *cache;
}

/// Closed-loop makespan of the whole contended stream at `num_shards`:
/// burst-submit every request (they stage across the shard lanes), wait
/// for all, report completed requests per second.
double MeasureShardedQps(const ShardMaterials& m, uint32_t num_shards) {
  std::unique_ptr<core::ShardedDatabase> db = BuildSharded(m, num_shards);
  service::QueryService svc(db.get(), ShardedServiceOptions(m));

  std::vector<core::QueryRequest> stream;
  stream.reserve(m.num_requests);
  for (size_t i = 0; i < m.num_requests; ++i) {
    stream.push_back(ShardRequest(m, i));
  }
  util::Stopwatch sw;
  std::vector<service::QueryTicket> tickets =
      svc.SubmitBurst(std::move(stream));
  for (service::QueryTicket& t : tickets) {
    if (!t.WaitFor(kResolveTimeout) || !t.Get().ok()) {
      std::fprintf(stderr, "sharded stream request failed or timed out\n");
      std::exit(1);
    }
  }
  const double seconds = sw.ElapsedSeconds();
  svc.Shutdown();
  return static_cast<double>(m.num_requests) / seconds;
}

void BM_ShardedScaling(benchmark::State& state) {
  ShardMaterials& m = GetShardMaterials();
  for (auto _ : state) {
    util::Stopwatch sw;
    double qps_at_one = 0.0;
    for (uint32_t shards : {1u, 2u, 4u}) {
      const double qps = MeasureShardedQps(m, shards);
      benchutil::Recorder::Instance().Record(
          "sharded_qps", static_cast<double>(shards), qps);
      if (shards == 1) {
        qps_at_one = qps;
      } else {
        // Both runs measured in this process on the same stream: the
        // ratio transfers across machines (given >= `shards` cores).
        benchutil::Recorder::Instance().Record(
            "sharded_speedup", static_cast<double>(shards),
            qps / qps_at_one);
      }
    }
    state.SetIterationTime(sw.ElapsedSeconds());
  }
}

void BM_Burst(benchmark::State& state) {
  Fixture& f = GetFixture();
  const bool coalesce = state.range(0) != 0;
  const bool contended = state.range(1) != 0;
  double seconds = 0.0;
  for (auto _ : state) {
    seconds = MeasureBurst(f, coalesce, contended);
    state.SetIterationTime(seconds);
  }
  const char* series = contended
                           ? (coalesce ? "burst_coalesced_ms" : "burst_solo_ms")
                           : (coalesce ? "idle_burst_coalesced_ms"
                                       : "idle_burst_solo_ms");
  benchutil::Recorder::Instance().Record(series,
                                         static_cast<double>(kBurst),
                                         seconds * 1e3);
}

void BM_Sustained(benchmark::State& state) {
  Fixture& f = GetFixture();
  const bool coalesce = state.range(0) != 0;
  const double offered = static_cast<double>(state.range(1));
  SustainedResult result;
  for (auto _ : state) {
    util::Stopwatch sw;
    result = MeasureSustained(f, coalesce, offered);
    state.SetIterationTime(sw.ElapsedSeconds());
  }
  benchutil::Recorder::Instance().Record(
      coalesce ? "coalesced_qps" : "solo_qps", offered, result.achieved_qps);
  benchutil::Recorder::Instance().Record(
      coalesce ? "coalesced_p99_ms" : "solo_p99_ms", offered, result.p99_ms);
}

void Register() {
  if (g_tracing_only) {
    benchmark::RegisterBenchmark("service/tracing_overhead",
                                 BM_TracingOverhead)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    return;
  }
  benchmark::RegisterBenchmark("service/sharded_scaling", BM_ShardedScaling)
      ->Iterations(1)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond);
  if (g_sharded_only) return;
  benchmark::RegisterBenchmark("service/tracing_overhead",
                               BM_TracingOverhead)
      ->Iterations(1)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond);
  for (int64_t contended : {int64_t{1}, int64_t{0}}) {
    for (int64_t coalesce : {int64_t{0}, int64_t{1}}) {
      benchmark::RegisterBenchmark("service/burst", BM_Burst)
          ->Args({coalesce, contended})
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
  std::vector<int64_t> rates = {500, 1500};
  if (g_full) rates = {250, 500, 1000, 2000};
  for (int64_t qps : rates) {
    for (int64_t coalesce : {int64_t{0}, int64_t{1}}) {
      benchmark::RegisterBenchmark("service/sustained", BM_Sustained)
          ->Args({coalesce, qps})
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  g_full = ustdb::benchutil::ExtractFlag(&argc, argv, "--full");
  g_sharded_only = ustdb::benchutil::ExtractFlag(&argc, argv, "--sharded");
  g_tracing_only = ustdb::benchutil::ExtractFlag(&argc, argv, "--tracing");
  Register();
  return ustdb::benchutil::RunBenchMain(
      argc, argv, "service_throughput", "x (burst size / offered qps)",
      "burst makespan [ms] / achieved qps / p99 [ms]");
}
