// Extension — engine caching under a repeating monitoring workload.
//
// The paper evaluates single queries; a monitoring deployment re-issues a
// fixed set of watch windows continuously. This bench replays a Zipf-like
// stream of windows (workload::RepeatingWorkload) through the
// QueryExecutor pipeline and sweeps its engine-cache capacity:
//
//   no_cache  — a cold executor per query: every backward pass rebuilt
//   cached    — one long-lived executor, LRU cache of backward passes
//   hit_rate  — the corresponding cache hit rate
//   batched   — the same stream submitted refresh-wise through RunBatch
//               (one executor): within a refresh identical windows share
//               one pass, across refreshes the cache carries them
//
// Expected shape: runtime falls sharply once the capacity covers the hot
// windows; at capacity >= distinct windows every repeat is a pure
// dot-product pass, and batching matches or beats solo submission at
// every capacity because in-batch repeats never even consult the cache.
//
// Usage: bench_query_cache [--full]

#include <benchmark/benchmark.h>

#include <optional>

#include "bench_common.h"
#include "core/executor.h"
#include "workload/query_gen.h"
#include "workload/synthetic.h"

namespace {

using namespace ustdb;

bool g_full = false;

struct Fixture {
  core::Database db;
  std::vector<core::QueryWindow> stream;
};

constexpr uint32_t kDistinctWindows = 12;

Fixture& GetFixture() {
  static std::optional<Fixture> cache;
  if (!cache.has_value()) {
    workload::SyntheticConfig config;
    config.num_states = g_full ? 50'000 : 10'000;
    config.num_objects = g_full ? 5'000 : 1'000;
    config.seed = 43;
    Fixture f{workload::GenerateDatabase(config).ValueOrDie(), {}};
    workload::QueryGenConfig qconfig;
    qconfig.num_states = config.num_states;
    qconfig.t_min = 10;
    qconfig.t_max = 30;
    qconfig.seed = 44;
    f.stream = workload::RepeatingWorkload(qconfig, kDistinctWindows,
                                           g_full ? 400 : 120)
                   .ValueOrDie();
    (void)f.db.chain(0).transposed();  // pre-warm the shared transpose
    cache.emplace(std::move(f));
  }
  return *cache;
}

core::QueryRequest ExistsRequest(const core::QueryWindow& w) {
  core::QueryRequest request;
  request.predicate = core::PredicateKind::kExists;
  request.window = w;
  request.plan = core::PlanChoice::kQueryBased;
  return request;
}

double SumProbabilities(const core::QueryResult& result) {
  double total = 0.0;
  for (const auto& r : result.probabilities) total += r.probability;
  return total;
}

/// Replays the stream through one long-lived executor (the monitoring
/// deployment shape); with `executor` null, a cold executor per query
/// models the no-cache baseline.
double RunStream(const Fixture& f, core::QueryExecutor* executor) {
  double total = 0.0;
  for (const core::QueryWindow& w : f.stream) {
    if (executor != nullptr) {
      total += SumProbabilities(executor->Run(ExistsRequest(w)).ValueOrDie());
    } else {
      core::QueryExecutor cold(&f.db, {.num_threads = 1});
      total += SumProbabilities(cold.Run(ExistsRequest(w)).ValueOrDie());
    }
  }
  return total;
}

void BM_NoCache(benchmark::State& state) {
  Fixture& f = GetFixture();
  benchutil::TimedIterations(state, "no_cache", state.range(0), [&] {
    benchmark::DoNotOptimize(RunStream(f, nullptr));
  });
}

void BM_Cached(benchmark::State& state) {
  Fixture& f = GetFixture();
  const uint32_t capacity = static_cast<uint32_t>(state.range(0));
  double seconds = 0.0;
  core::EngineCacheStats stats;
  for (auto _ : state) {
    util::Stopwatch sw;
    core::QueryExecutor executor(&f.db,
                                 {.num_threads = 1, .cache_capacity = capacity});
    benchmark::DoNotOptimize(RunStream(f, &executor));
    seconds = sw.ElapsedSeconds();
    state.SetIterationTime(seconds);
    stats = executor.cache_stats();
  }
  benchutil::Recorder::Instance().Record("cached", capacity, seconds);
  benchutil::Recorder::Instance().Record(
      "hit_rate", capacity,
      static_cast<double>(stats.hits) /
          static_cast<double>(stats.hits + stats.misses));
}

/// The batched submission path: the same stream, cut into refresh-sized
/// batches of consecutive windows and submitted through RunBatch.
void BM_Batched(benchmark::State& state) {
  Fixture& f = GetFixture();
  const uint32_t capacity = static_cast<uint32_t>(state.range(0));
  constexpr size_t kRefreshSize = 24;
  double seconds = 0.0;
  for (auto _ : state) {
    util::Stopwatch sw;
    core::QueryExecutor executor(
        &f.db, {.num_threads = 1, .cache_capacity = capacity});
    double total = 0.0;
    std::vector<core::QueryRequest> refresh;
    for (size_t begin = 0; begin < f.stream.size(); begin += kRefreshSize) {
      const size_t end = std::min(f.stream.size(), begin + kRefreshSize);
      refresh.clear();
      for (size_t i = begin; i < end; ++i) {
        refresh.push_back(ExistsRequest(f.stream[i]));
      }
      for (const auto& r : executor.RunBatch(refresh)) {
        total += SumProbabilities(r.value());
      }
    }
    benchmark::DoNotOptimize(total);
    seconds = sw.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  benchutil::Recorder::Instance().Record("batched", capacity, seconds);
}

void Register() {
  for (int64_t cap : {1, 2, 4, 8, 12, 16}) {
    benchmark::RegisterBenchmark("cache/no_cache", BM_NoCache)
        ->Arg(cap)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("cache/cached", BM_Cached)
        ->Arg(cap)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("cache/batched", BM_Batched)
        ->Arg(cap)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  g_full = ustdb::benchutil::ExtractFlag(&argc, argv, "--full");
  Register();
  return ustdb::benchutil::RunBenchMain(argc, argv, "query_cache",
                                        "cache_capacity",
                                        "workload runtime [s] / hit rate");
}
