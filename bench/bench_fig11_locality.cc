// Figure 11 — impact of the locality parameters of the synthetic model.
//
//   11(a) max_step ∈ {10, ..., 100}: widening the transition band thickens
//         the reachable frontier per step.
//   11(b) state_spread ∈ {2, ..., 20}: more non-zeros per matrix row.
//
// The paper: "Both algorithms scale at most linearly with those
// parameters", with OB and QB on very different absolute scales (they are
// plotted on different axes in the paper; the CSV keeps both series).
//
// Usage: bench_fig11_locality [--state-spread] [--full]

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"
#include "core/object_based.h"
#include "core/query_based.h"
#include "workload/synthetic.h"

namespace {

using namespace ustdb;

bool g_state_spread_mode = false;
bool g_full = false;

struct Fixture {
  core::Database db;
  core::QueryWindow window;
};

Fixture& GetFixture(uint32_t max_step, uint32_t state_spread) {
  static std::map<std::pair<uint32_t, uint32_t>, Fixture> cache;
  const auto key = std::make_pair(max_step, state_spread);
  auto it = cache.find(key);
  if (it == cache.end()) {
    workload::SyntheticConfig config;
    config.num_states = g_full ? 100'000 : 20'000;
    config.num_objects = g_full ? 10'000 : 1'000;
    config.max_step = max_step;
    config.state_spread = state_spread;
    config.seed = 19;
    Fixture f{workload::GenerateDatabase(config).ValueOrDie(),
              workload::DefaultWindow(config).ValueOrDie()};
    it = cache.emplace(key, std::move(f)).first;
  }
  return it->second;
}

Fixture& FixtureForArg(int64_t x) {
  return g_state_spread_mode
             ? GetFixture(/*max_step=*/40, static_cast<uint32_t>(x))
             : GetFixture(static_cast<uint32_t>(x), /*state_spread=*/5);
}

void BM_OB(benchmark::State& state) {
  Fixture& f = FixtureForArg(state.range(0));
  benchutil::TimedIterations(state, "OB", state.range(0), [&] {
    core::ObjectBasedEngine engine(&f.db.chain(0), f.window);
    double total = 0.0;
    for (const auto& obj : f.db.objects()) {
      total += engine.ExistsProbability(obj.initial_pdf());
    }
    benchmark::DoNotOptimize(total);
  });
}

void BM_QB(benchmark::State& state) {
  Fixture& f = FixtureForArg(state.range(0));
  benchutil::TimedIterations(state, "QB", state.range(0), [&] {
    core::QueryBasedEngine engine(&f.db.chain(0), f.window);
    double total = 0.0;
    for (const auto& obj : f.db.objects()) {
      total += engine.ExistsProbability(obj.initial_pdf());
    }
    benchmark::DoNotOptimize(total);
  });
}

void Register() {
  std::vector<int64_t> xs;
  if (g_state_spread_mode) {
    for (int64_t s = 2; s <= 20; s += 2) xs.push_back(s);
  } else {
    for (int64_t s = 10; s <= 100; s += 10) xs.push_back(s);
  }
  for (int64_t x : xs) {
    benchmark::RegisterBenchmark("fig11/OB", BM_OB)
        ->Arg(x)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("fig11/QB", BM_QB)
        ->Arg(x)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  g_state_spread_mode =
      ustdb::benchutil::ExtractFlag(&argc, argv, "--state-spread");
  g_full = ustdb::benchutil::ExtractFlag(&argc, argv, "--full");
  Register();
  return ustdb::benchutil::RunBenchMain(
      argc, argv,
      g_state_spread_mode ? "fig11b_state_spread" : "fig11a_max_step",
      g_state_spread_mode ? "state_spread" : "max_step",
      "whole-database PST-Exists runtime [s]");
}
