// Shared infrastructure for the paper-reproduction benchmarks.
//
// Every bench binary uses google-benchmark for execution/timing and, on top
// of that, records one (series, x, value) triple per sweep point so that
// after the run it can print the figure's series exactly the way the paper
// plots them (x column + one column per algorithm) and write
// bench/out/<figure>.csv for downstream plotting.

#ifndef USTDB_BENCH_BENCH_COMMON_H_
#define USTDB_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace ustdb {
namespace benchutil {

/// Collects series points and renders the paper-style table + CSV.
class Recorder {
 public:
  static Recorder& Instance() {
    static Recorder instance;
    return instance;
  }

  /// Records the value of `series` at sweep position `x`. Re-recording the
  /// same point overwrites (google-benchmark may re-run an iteration).
  void Record(const std::string& series, double x, double value) {
    data_[series][x] = value;
    if (std::find(series_order_.begin(), series_order_.end(), series) ==
        series_order_.end()) {
      series_order_.push_back(series);
    }
  }

  /// \brief Attaches a (key, value) annotation to the run — e.g. the
  /// kernel ISA the dispatcher selected. Meta entries are emitted as a
  /// top-level "meta" object in WriteJson output and printed with the
  /// table; baseline checkers ignore keys they do not know.
  void SetMeta(const std::string& key, const std::string& value) {
    meta_[key] = value;
  }

  /// \brief Merges the shared environment meta block (obs::CommonMeta:
  /// host, nproc, active kernel ISA, USTDB_SHARDS, git sha, UTC
  /// timestamp) into this run's annotations without overwriting keys a
  /// bench set explicitly. Called by RunBenchMain so every BENCH_*.json
  /// and every metrics snapshot share one meta schema.
  void SetDefaultMeta() {
    for (const auto& [key, value] : obs::CommonMeta()) {
      meta_.emplace(key, value);
    }
  }

  /// Last recorded value of (series, x); 0 when the point is absent.
  double Get(const std::string& series, double x) const {
    auto it = data_.find(series);
    if (it == data_.end()) return 0.0;
    auto jt = it->second.find(x);
    return jt == it->second.end() ? 0.0 : jt->second;
  }

  /// Prints the pivot table to stdout and writes bench/out/<name>.csv.
  /// \param x_label  column header for the sweep variable.
  /// \param value_label unit note shown in the header (e.g. "runtime [s]").
  void PrintAndWrite(const std::string& name, const std::string& x_label,
                     const std::string& value_label) const {
    // Collect the union of x positions.
    std::vector<double> xs;
    for (const auto& [series, points] : data_) {
      for (const auto& [x, v] : points) {
        if (std::find(xs.begin(), xs.end(), x) == xs.end()) xs.push_back(x);
      }
    }
    std::sort(xs.begin(), xs.end());

    std::printf("\n=== %s (%s) ===\n", name.c_str(), value_label.c_str());
    for (const auto& [key, value] : meta_) {
      std::printf("%s: %s\n", key.c_str(), value.c_str());
    }
    std::printf("%14s", x_label.c_str());
    for (const auto& s : series_order_) std::printf(" %14s", s.c_str());
    std::printf("\n");
    for (double x : xs) {
      std::printf("%14g", x);
      for (const auto& s : series_order_) {
        const auto& points = data_.at(s);
        auto it = points.find(x);
        if (it == points.end()) {
          std::printf(" %14s", "-");
        } else {
          std::printf(" %14.6g", it->second);
        }
      }
      std::printf("\n");
    }

    std::filesystem::create_directories("bench/out");
    const std::string path = "bench/out/" + name + ".csv";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "%s", x_label.c_str());
    for (const auto& s : series_order_) std::fprintf(f, ",%s", s.c_str());
    std::fprintf(f, "\n");
    for (double x : xs) {
      std::fprintf(f, "%g", x);
      for (const auto& s : series_order_) {
        const auto& points = data_.at(s);
        auto it = points.find(x);
        if (it == points.end()) {
          std::fprintf(f, ",");
        } else {
          std::fprintf(f, ",%.9g", it->second);
        }
      }
      std::fprintf(f, "\n");
    }
    std::fclose(f);
    std::printf("written: %s\n", path.c_str());
  }

  /// \brief Writes the recorded series as machine-readable JSON so the
  /// perf trajectory of a PR can be captured as a BENCH_*.json artifact
  /// and diffed against a checked-in baseline (see
  /// bench/check_perf_baseline.py). Schema:
  /// { "name": ..., "x_label": ..., "value_label": ...,
  ///   "series": { series: { x-as-string: value } } }.
  void WriteJson(const std::string& path, const std::string& name,
                 const std::string& x_label,
                 const std::string& value_label) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"name\": \"%s\",\n  \"x_label\": \"%s\",\n",
                 name.c_str(), x_label.c_str());
    std::fprintf(f, "  \"value_label\": \"%s\",\n", value_label.c_str());
    if (!meta_.empty()) {
      std::fprintf(f, "  \"meta\": {");
      bool first_meta = true;
      for (const auto& [key, value] : meta_) {
        std::fprintf(f, "%s\n    \"%s\": \"%s\"", first_meta ? "" : ",",
                     key.c_str(), value.c_str());
        first_meta = false;
      }
      std::fprintf(f, "\n  },\n");
    }
    std::fprintf(f, "  \"series\": {");
    bool first_series = true;
    for (const auto& s : series_order_) {
      std::fprintf(f, "%s\n    \"%s\": {", first_series ? "" : ",",
                   s.c_str());
      first_series = false;
      bool first_point = true;
      for (const auto& [x, v] : data_.at(s)) {
        std::fprintf(f, "%s\n      \"%g\": %.17g", first_point ? "" : ",",
                     x, v);
        first_point = false;
      }
      std::fprintf(f, "\n    }");
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    std::printf("written: %s\n", path.c_str());
  }

 private:
  Recorder() = default;
  std::map<std::string, std::map<double, double>> data_;
  std::vector<std::string> series_order_;
  std::map<std::string, std::string> meta_;
};

/// Runs `body` once per benchmark iteration under manual timing and records
/// the last iteration's wall time for series `series` at `x`.
template <typename Body>
void TimedIterations(benchmark::State& state, const std::string& series,
                     double x, Body&& body) {
  double seconds = 0.0;
  for (auto _ : state) {
    util::Stopwatch sw;
    body();
    seconds = sw.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  Recorder::Instance().Record(series, x, seconds);
}

/// Removes `flag` from argv if present; returns whether it was there.
inline bool ExtractFlag(int* argc, char** argv, const std::string& flag) {
  for (int i = 1; i < *argc; ++i) {
    if (argv[i] == flag) {
      for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
      --*argc;
      return true;
    }
  }
  return false;
}

/// Removes `flag <value>` from argv if present; returns the value, or ""
/// when the flag is absent (or has no value following it).
inline std::string ExtractOption(int* argc, char** argv,
                                 const std::string& flag) {
  for (int i = 1; i + 1 < *argc; ++i) {
    if (argv[i] == flag) {
      std::string value = argv[i + 1];
      for (int j = i; j + 2 < *argc; ++j) argv[j] = argv[j + 2];
      *argc -= 2;
      return value;
    }
  }
  return std::string();
}

/// \brief Standard main body: initialize google-benchmark, run, print the
/// figure. Every bench accepts `--json <path>` to additionally emit the
/// recorded series as machine-readable JSON (Recorder::WriteJson), so CI
/// and the per-PR perf trajectory can consume BENCH_*.json files instead
/// of scraping stdout.
inline int RunBenchMain(int argc, char** argv, const std::string& fig_name,
                        const std::string& x_label,
                        const std::string& value_label) {
  const std::string json_path = ExtractOption(&argc, argv, "--json");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  Recorder::Instance().SetDefaultMeta();
  Recorder::Instance().PrintAndWrite(fig_name, x_label, value_label);
  if (!json_path.empty()) {
    Recorder::Instance().WriteJson(json_path, fig_name, x_label,
                                   value_label);
  }
  return 0;
}

}  // namespace benchutil
}  // namespace ustdb

#endif  // USTDB_BENCH_BENCH_COMMON_H_
