// Ablation — explicit augmented matrices vs implicit folding.
//
// The paper's framework materializes M−/M+ and runs plain vector-matrix
// products (the MATLAB-friendly formulation). ustdb also implements the
// same semantics implicitly (transition with M, fold the window mass by
// hand). This bench quantifies the trade for all three constructions:
//
//   exists:  OB_implicit / OB_explicit / QB_implicit / QB_explicit
//   k-times (--ktimes): Ct_algorithm (the memory-efficient C(t) shift) vs
//            block_matrix (the (|T□|+1)·|S| construction), plus the block
//            matrix's memory blow-up factor (series block_memory_ratio).
//
// Explicit timings include matrix construction — that is the actual cost a
// MATLAB-style deployment pays per query.
//
// Usage: bench_ablation_matrices [--ktimes] [--full]

#include <benchmark/benchmark.h>

#include <optional>

#include "bench_common.h"
#include "core/absorbing.h"
#include "core/k_times.h"
#include "core/object_based.h"
#include "core/query_based.h"
#include "workload/synthetic.h"

namespace {

using namespace ustdb;

bool g_ktimes = false;
bool g_full = false;

core::Database& GetDb() {
  static std::optional<core::Database> db;
  if (!db.has_value()) {
    workload::SyntheticConfig config;
    config.num_states = g_full ? 50'000 : 10'000;
    config.num_objects = g_full ? 1'000 : 200;
    config.seed = 37;
    db = workload::GenerateDatabase(config).ValueOrDie();
  }
  return *db;
}

core::QueryWindow MakeWindow(const core::Database& db, uint32_t window_len) {
  const uint32_t n = db.chain(0).num_states();
  return core::QueryWindow::FromRanges(n, std::min(100u, n - 21),
                                       std::min(120u, n - 1), 10,
                                       10 + window_len - 1)
      .ValueOrDie();
}

template <core::MatrixMode mode>
void BM_ObExists(benchmark::State& state) {
  core::Database& db = GetDb();
  const auto window = MakeWindow(db, static_cast<uint32_t>(state.range(0)));
  const char* series =
      mode == core::MatrixMode::kImplicit ? "OB_implicit" : "OB_explicit";
  benchutil::TimedIterations(state, series, state.range(0), [&] {
    core::ObjectBasedEngine engine(&db.chain(0), window, {.mode = mode});
    double total = 0.0;
    for (const auto& obj : db.objects()) {
      total += engine.ExistsProbability(obj.initial_pdf());
    }
    benchmark::DoNotOptimize(total);
  });
}

template <core::MatrixMode mode>
void BM_QbExists(benchmark::State& state) {
  core::Database& db = GetDb();
  const auto window = MakeWindow(db, static_cast<uint32_t>(state.range(0)));
  const char* series =
      mode == core::MatrixMode::kImplicit ? "QB_implicit" : "QB_explicit";
  benchutil::TimedIterations(state, series, state.range(0), [&] {
    core::QueryBasedEngine engine(&db.chain(0), window, {.mode = mode});
    double total = 0.0;
    for (const auto& obj : db.objects()) {
      total += engine.ExistsProbability(obj.initial_pdf());
    }
    benchmark::DoNotOptimize(total);
  });
}

template <core::MatrixMode mode>
void BM_KTimes(benchmark::State& state) {
  core::Database& db = GetDb();
  const auto window = MakeWindow(db, static_cast<uint32_t>(state.range(0)));
  const char* series = mode == core::MatrixMode::kImplicit ? "Ct_algorithm"
                                                           : "block_matrix";
  benchutil::TimedIterations(state, series, state.range(0), [&] {
    core::KTimesEngine engine(&db.chain(0), window, {.mode = mode});
    double total = 0.0;
    for (const auto& obj : db.objects()) {
      total += engine.Distribution(obj.initial_pdf()).back();
    }
    benchmark::DoNotOptimize(total);
  });
  if (mode == core::MatrixMode::kExplicit) {
    // Memory blow-up of the block construction relative to M itself.
    const auto aug = core::BuildKTimesMatrices(
        db.chain(0), window.region(), window.num_times());
    const double ratio =
        static_cast<double>(aug.minus.MemoryBytes() + aug.plus.MemoryBytes()) /
        static_cast<double>(db.chain(0).matrix().MemoryBytes());
    benchutil::Recorder::Instance().Record("block_memory_ratio",
                                           state.range(0), ratio);
  }
}

void Register() {
  for (int64_t len = 1; len <= 6; ++len) {
    if (g_ktimes) {
      benchmark::RegisterBenchmark(
          "ablation/ktimes_ct", BM_KTimes<core::MatrixMode::kImplicit>)
          ->Arg(len)
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          "ablation/ktimes_block", BM_KTimes<core::MatrixMode::kExplicit>)
          ->Arg(len)
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    } else {
      benchmark::RegisterBenchmark(
          "ablation/ob_implicit", BM_ObExists<core::MatrixMode::kImplicit>)
          ->Arg(len)
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          "ablation/ob_explicit", BM_ObExists<core::MatrixMode::kExplicit>)
          ->Arg(len)
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          "ablation/qb_implicit", BM_QbExists<core::MatrixMode::kImplicit>)
          ->Arg(len)
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          "ablation/qb_explicit", BM_QbExists<core::MatrixMode::kExplicit>)
          ->Arg(len)
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  g_ktimes = ustdb::benchutil::ExtractFlag(&argc, argv, "--ktimes");
  g_full = ustdb::benchutil::ExtractFlag(&argc, argv, "--full");
  Register();
  return ustdb::benchutil::RunBenchMain(
      argc, argv,
      g_ktimes ? "ablation_ktimes_matrices" : "ablation_exists_matrices",
      "query_window_timeslots", "whole-database runtime [s]");
}
