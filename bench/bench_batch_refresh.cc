// Extension — batched query execution under a dashboard-refresh workload.
//
// A dashboard refresh issues many requests against the same watch window
// (different widgets, alerts, rankings). Run serially on a cold cache,
// every request pays its own query-based backward pass; submitted as one
// QueryExecutor::RunBatch, the group pays a single pass and fans the
// start vector out to every member. This bench sweeps the batch size and
// reports:
//
//   sequential_cold — N solo Run calls, a fresh executor per call (every
//                     backward pass rebuilt: the no-batching baseline)
//   sequential_warm — N solo Run calls on one long-lived executor (the
//                     engine cache absorbs repeats after the first call)
//   run_batch       — one RunBatch of the N requests on a cold executor
//   speedup_cold    — sequential_cold / run_batch at the same N
//
// plus one mixed series (mixed_sequential / mixed_batch) replaying
// workload::RefreshBatches — multi-window refreshes with the full
// predicate mix — through both submission paths.
//
// The fixture asserts that run_batch probabilities are bit-identical to
// the sequential results before any timing happens.
//
// Usage: bench_batch_refresh [--full]

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <optional>
#include <span>
#include <vector>

#include "bench_common.h"
#include "core/executor.h"
#include "workload/query_gen.h"
#include "workload/synthetic.h"

namespace {

using namespace ustdb;

bool g_full = false;

constexpr int64_t kMaxBatch = 128;

struct Fixture {
  core::Database db;
  core::QueryWindow window;  // the single watch window of the sweep
  std::vector<core::QueryRequest> requests;  // kMaxBatch × same window
  std::vector<std::vector<core::QueryRequest>> refreshes;  // mixed batches
};

core::QueryRequest ExistsRequest(const core::QueryWindow& w) {
  core::QueryRequest request;
  request.predicate = core::PredicateKind::kExists;
  request.window = w;
  return request;
}

/// Bit-identity guard: a 64-request single-window batch must answer
/// exactly what 64 cold solo runs answer — on a sequential executor AND
/// on a multi-threaded one whose intra-group splitting spreads the
/// members' object ranges across workers — or the amortization is buying
/// speed with correctness.
void VerifyBatchParity(const Fixture& f) {
  std::vector<core::QueryRequest> requests(f.requests.begin(),
                                           f.requests.begin() + 64);
  core::QueryExecutor batch_exec(&f.db, {.num_threads = 1});
  core::QueryExecutor batch_mt(&f.db, {.num_threads = 4});
  const auto batch = batch_exec.RunBatch(requests);
  const auto batch_split = batch_mt.RunBatch(requests);
  uint64_t subtasks = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    core::QueryExecutor cold(&f.db, {.num_threads = 1});
    const auto solo = cold.Run(requests[i]).ValueOrDie();
    for (const auto* result : {&batch[i], &batch_split[i]}) {
      if (!result->ok()) {
        std::fprintf(stderr, "batch parity: request %zu failed: %s\n", i,
                     result->status().ToString().c_str());
        std::exit(1);
      }
      const auto& got = result->value();
      if (got.probabilities.size() != solo.probabilities.size()) {
        std::fprintf(stderr, "batch parity: size mismatch at request %zu\n",
                     i);
        std::exit(1);
      }
      for (size_t j = 0; j < solo.probabilities.size(); ++j) {
        if (got.probabilities[j].id != solo.probabilities[j].id ||
            got.probabilities[j].probability !=
                solo.probabilities[j].probability) {
          std::fprintf(stderr,
                       "batch parity: request %zu object %zu differs "
                       "(batch %.17g vs solo %.17g)\n",
                       i, j, got.probabilities[j].probability,
                       solo.probabilities[j].probability);
          std::exit(1);
        }
      }
    }
    subtasks += batch_split[i].value().stats.group_subtasks;
  }
  std::printf(
      "parity: 64-request batch bit-identical to 64 solo runs, with and "
      "without intra-group splitting (%llu subtasks taken)\n",
      static_cast<unsigned long long>(subtasks));
  if (subtasks < 64) {
    std::fprintf(stderr,
                 "expected the intra-group scheduler to take >= 1 subtask "
                 "per member\n");
    std::exit(1);
  }
}

Fixture& GetFixture() {
  static std::optional<Fixture> cache;
  if (!cache.has_value()) {
    workload::SyntheticConfig config;
    config.num_states = g_full ? 50'000 : 10'000;
    config.num_objects = g_full ? 5'000 : 1'000;
    config.seed = 47;
    Fixture f{workload::GenerateDatabase(config).ValueOrDie(), {}, {}, {}};

    workload::QueryGenConfig qconfig;
    qconfig.num_states = config.num_states;
    qconfig.t_min = 10;
    qconfig.t_max = 30;
    qconfig.seed = 48;
    util::Rng rng(qconfig.seed);
    f.window = workload::RandomWindow(qconfig, &rng).ValueOrDie();
    for (int64_t i = 0; i < kMaxBatch; ++i) {
      f.requests.push_back(ExistsRequest(f.window));
    }
    f.refreshes = workload::RefreshBatches(qconfig, /*distinct_windows=*/8,
                                           /*batch_size=*/64,
                                           /*num_batches=*/g_full ? 12 : 4)
                      .ValueOrDie();
    (void)f.db.chain(0).transposed();  // pre-warm the shared transpose
    VerifyBatchParity(f);
    cache.emplace(std::move(f));
  }
  return *cache;
}

double SumProbabilities(const core::QueryResult& result) {
  double total = 0.0;
  for (const auto& r : result.probabilities) total += r.probability;
  return total;
}

// Timings of the single-window sweep, kept so the speedup series can be
// derived without re-measuring.
std::map<int64_t, double> g_cold_seconds;

void BM_SequentialCold(benchmark::State& state) {
  Fixture& f = GetFixture();
  const int64_t n = state.range(0);
  double seconds = 0.0;
  for (auto _ : state) {
    util::Stopwatch sw;
    double total = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      core::QueryExecutor cold(&f.db, {.num_threads = 1});
      total += SumProbabilities(cold.Run(f.requests[i]).ValueOrDie());
    }
    benchmark::DoNotOptimize(total);
    seconds = sw.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  g_cold_seconds[n] = seconds;
  benchutil::Recorder::Instance().Record("sequential_cold",
                                         static_cast<double>(n), seconds);
}

void BM_SequentialWarm(benchmark::State& state) {
  Fixture& f = GetFixture();
  const int64_t n = state.range(0);
  benchutil::TimedIterations(state, "sequential_warm", static_cast<double>(n),
                             [&] {
    core::QueryExecutor executor(&f.db, {.num_threads = 1});
    double total = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      total += SumProbabilities(executor.Run(f.requests[i]).ValueOrDie());
    }
    benchmark::DoNotOptimize(total);
  });
}

void BM_RunBatch(benchmark::State& state) {
  Fixture& f = GetFixture();
  const int64_t n = state.range(0);
  std::span<const core::QueryRequest> requests(f.requests.data(),
                                               static_cast<size_t>(n));
  double seconds = 0.0;
  for (auto _ : state) {
    util::Stopwatch sw;
    core::QueryExecutor executor(&f.db, {.num_threads = 1});
    const auto results = executor.RunBatch(requests);
    double total = 0.0;
    for (const auto& r : results) total += SumProbabilities(r.value());
    benchmark::DoNotOptimize(total);
    seconds = sw.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  benchutil::Recorder::Instance().Record("run_batch", static_cast<double>(n),
                                         seconds);
  const auto cold = g_cold_seconds.find(n);
  if (cold != g_cold_seconds.end() && seconds > 0.0) {
    benchutil::Recorder::Instance().Record(
        "speedup_cold", static_cast<double>(n), cold->second / seconds);
  }
}

// RunBatch on a multi-threaded executor: the intra-group scheduler splits
// the single group's member × object ranges across the pool, so the
// backward pass amortization AND all hardware contexts apply at once.
// (On a single-hardware-context host the pool degrades gracefully and
// this tracks run_batch; the speedup shows on multi-core CI.)
void BM_RunBatchSplit(benchmark::State& state) {
  Fixture& f = GetFixture();
  const int64_t n = state.range(0);
  std::span<const core::QueryRequest> requests(f.requests.data(),
                                               static_cast<size_t>(n));
  double seconds = 0.0;
  for (auto _ : state) {
    util::Stopwatch sw;
    core::QueryExecutor executor(&f.db, {.num_threads = 0});  // hw default
    const auto results = executor.RunBatch(requests);
    double total = 0.0;
    for (const auto& r : results) total += SumProbabilities(r.value());
    benchmark::DoNotOptimize(total);
    seconds = sw.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  benchutil::Recorder::Instance().Record("run_batch_split",
                                         static_cast<double>(n), seconds);
  const auto cold = g_cold_seconds.find(n);
  if (cold != g_cold_seconds.end() && seconds > 0.0) {
    benchutil::Recorder::Instance().Record(
        "speedup_split", static_cast<double>(n), cold->second / seconds);
  }
}

void BM_MixedSequential(benchmark::State& state) {
  Fixture& f = GetFixture();
  benchutil::TimedIterations(state, "mixed_sequential", 64, [&] {
    core::QueryExecutor executor(&f.db, {.num_threads = 1});
    for (const auto& refresh : f.refreshes) {
      for (const core::QueryRequest& request : refresh) {
        benchmark::DoNotOptimize(executor.Run(request).ValueOrDie());
      }
    }
  });
}

void BM_MixedBatch(benchmark::State& state) {
  Fixture& f = GetFixture();
  benchutil::TimedIterations(state, "mixed_batch", 64, [&] {
    core::QueryExecutor executor(&f.db, {.num_threads = 1});
    for (const auto& refresh : f.refreshes) {
      benchmark::DoNotOptimize(executor.RunBatch(refresh));
    }
  });
}

void Register() {
  for (int64_t n : {int64_t{8}, int64_t{16}, int64_t{32}, int64_t{64},
                    kMaxBatch}) {
    benchmark::RegisterBenchmark("refresh/sequential_cold", BM_SequentialCold)
        ->Arg(n)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("refresh/sequential_warm", BM_SequentialWarm)
        ->Arg(n)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("refresh/run_batch", BM_RunBatch)
        ->Arg(n)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("refresh/run_batch_split", BM_RunBatchSplit)
        ->Arg(n)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("refresh/mixed_sequential", BM_MixedSequential)
      ->Iterations(1)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("refresh/mixed_batch", BM_MixedBatch)
      ->Iterations(1)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  g_full = ustdb::benchutil::ExtractFlag(&argc, argv, "--full");
  Register();
  return ustdb::benchutil::RunBenchMain(
      argc, argv, "batch_refresh", "batch_size",
      "refresh runtime [s] / speedup vs cold sequential");
}
