// Figure 10 — runtime of the three query predicates (∃, ∀, k-times) as the
// query window grows from 1 to 10 timeslots.
//
//   10(a) object-based processing: PSTkQ is clearly the most expensive
//         (it maintains |T□|+1 vectors per object); PST∃Q and PST∀Q are
//         nearly identical (the paper: "equal runtime in all settings").
//   10(b) query-based processing: ∃ and ∀ run in a fraction of the OB time;
//         PSTkQ has no backward formulation in the paper, so its curve is
//         the memory-efficient C(t) algorithm (see EXPERIMENTS.md).
//
// Usage: bench_fig10_predicates [--qb] [--full]

#include <benchmark/benchmark.h>

#include <optional>

#include "bench_common.h"
#include "core/forall.h"
#include "core/k_times.h"
#include "core/object_based.h"
#include "core/query_based.h"
#include "workload/synthetic.h"

namespace {

using namespace ustdb;

bool g_full = false;
bool g_qb = false;

core::Database& GetDb() {
  static std::optional<core::Database> db;
  if (!db.has_value()) {
    workload::SyntheticConfig config;
    config.num_states = g_full ? 100'000 : 20'000;
    config.num_objects = g_full ? 10'000 : 500;
    config.seed = 17;
    db = workload::GenerateDatabase(config).ValueOrDie();
  }
  return *db;
}

core::QueryWindow MakeWindow(const core::Database& db, uint32_t window_len) {
  const uint32_t n = db.chain(0).num_states();
  return core::QueryWindow::FromRanges(n, std::min(100u, n - 21),
                                       std::min(120u, n - 1), 20,
                                       20 + window_len - 1)
      .ValueOrDie();
}

void BM_Exists(benchmark::State& state) {
  core::Database& db = GetDb();
  const auto window = MakeWindow(db, static_cast<uint32_t>(state.range(0)));
  benchutil::TimedIterations(state, "exists", state.range(0), [&] {
    double total = 0.0;
    if (g_qb) {
      core::QueryBasedEngine engine(&db.chain(0), window);
      for (const auto& obj : db.objects()) {
        total += engine.ExistsProbability(obj.initial_pdf());
      }
    } else {
      core::ObjectBasedEngine engine(&db.chain(0), window);
      for (const auto& obj : db.objects()) {
        total += engine.ExistsProbability(obj.initial_pdf());
      }
    }
    benchmark::DoNotOptimize(total);
  });
}

void BM_ForAll(benchmark::State& state) {
  core::Database& db = GetDb();
  const auto window = MakeWindow(db, static_cast<uint32_t>(state.range(0)));
  benchutil::TimedIterations(state, "forall", state.range(0), [&] {
    double total = 0.0;
    if (g_qb) {
      core::ForAllQueryBased engine(&db.chain(0), window);
      for (const auto& obj : db.objects()) {
        total += engine.ForAllProbability(obj.initial_pdf());
      }
    } else {
      core::ForAllObjectBased engine(&db.chain(0), window);
      for (const auto& obj : db.objects()) {
        total += engine.ForAllProbability(obj.initial_pdf());
      }
    }
    benchmark::DoNotOptimize(total);
  });
}

void BM_KTimes(benchmark::State& state) {
  core::Database& db = GetDb();
  const auto window = MakeWindow(db, static_cast<uint32_t>(state.range(0)));
  benchutil::TimedIterations(state, "k_times", state.range(0), [&] {
    core::KTimesEngine engine(&db.chain(0), window);
    double total = 0.0;
    for (const auto& obj : db.objects()) {
      total += engine.Distribution(obj.initial_pdf()).back();
    }
    benchmark::DoNotOptimize(total);
  });
}

void Register() {
  for (int64_t len = 1; len <= 10; ++len) {
    benchmark::RegisterBenchmark("fig10/exists", BM_Exists)
        ->Arg(len)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("fig10/forall", BM_ForAll)
        ->Arg(len)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("fig10/k_times", BM_KTimes)
        ->Arg(len)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  g_qb = ustdb::benchutil::ExtractFlag(&argc, argv, "--qb");
  g_full = ustdb::benchutil::ExtractFlag(&argc, argv, "--full");
  Register();
  return ustdb::benchutil::RunBenchMain(
      argc, argv,
      g_qb ? "fig10b_predicates_qb" : "fig10a_predicates_ob",
      "query_window_timeslots", "whole-database runtime [s]");
}
