// Extension — thread scaling of the object-based plan.
//
// Both plans are embarrassingly parallel across objects (the paper runs
// single-threaded MATLAB). This bench sweeps the executor's pool size for a
// whole-database PST∃Q under the OB plan — the plan with enough per-object
// work to amortize threading — and reports the speedup over one thread.
// The persistent QueryExecutor pool is what a serving deployment would
// reuse across queries, so the executor is built outside the timed region.
//
// Usage: bench_parallel_scaling [--full]

#include <benchmark/benchmark.h>

#include <optional>

#include "bench_common.h"
#include "core/executor.h"
#include "workload/synthetic.h"

namespace {

using namespace ustdb;

bool g_full = false;

struct Fixture {
  core::Database db;
  core::QueryWindow window;
  double single_thread_seconds = 0.0;
};

Fixture& GetFixture() {
  static std::optional<Fixture> cache;
  if (!cache.has_value()) {
    workload::SyntheticConfig config;
    config.num_states = g_full ? 100'000 : 20'000;
    config.num_objects = g_full ? 5'000 : 1'000;
    config.seed = 47;
    Fixture f{workload::GenerateDatabase(config).ValueOrDie(),
              workload::DefaultWindow(config).ValueOrDie(), 0.0};
    cache.emplace(std::move(f));
  }
  return *cache;
}

void BM_Parallel(benchmark::State& state) {
  Fixture& f = GetFixture();
  const unsigned threads = static_cast<unsigned>(state.range(0));
  core::QueryExecutor executor(&f.db, {.num_threads = threads});
  core::QueryRequest request;
  request.predicate = core::PredicateKind::kExists;
  request.window = f.window;
  request.plan = core::PlanChoice::kObjectBased;
  double seconds = 0.0;
  for (auto _ : state) {
    util::Stopwatch sw;
    auto r = executor.Run(request);
    benchmark::DoNotOptimize(r);
    seconds = sw.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  benchutil::Recorder::Instance().Record("ob_runtime", threads, seconds);
  if (threads == 1) {
    GetFixture().single_thread_seconds = seconds;
  }
  const double base = GetFixture().single_thread_seconds;
  if (base > 0.0) {
    benchutil::Recorder::Instance().Record("speedup", threads,
                                           base / seconds);
  }
}

void Register() {
  for (int64_t threads : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark("parallel/ob", BM_Parallel)
        ->Arg(threads)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  g_full = ustdb::benchutil::ExtractFlag(&argc, argv, "--full");
  Register();
  return ustdb::benchutil::RunBenchMain(argc, argv, "parallel_scaling",
                                        "threads",
                                        "whole-database OB runtime [s]");
}
