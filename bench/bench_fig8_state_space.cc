// Figure 8 — PST∃Q runtime versus the number of states |S|.
//
//   8(a) "small state space": MC vs OB vs QB, |D| = 1,000,
//        |S| ∈ {2k, 6k, 10k, 14k, 18k}.
//   8(b) "large state space": OB vs QB, |S| ∈ {10k, ..., 90k}
//        (pass --large; pass --full for the paper's |D| as well).
//
// Expected shape (paper): MC orders of magnitude above OB, OB clearly above
// QB, all growing with |S|.
//
// Usage: bench_fig8_state_space [--large] [--full]

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"
#include "core/object_based.h"
#include "core/query_based.h"
#include "mc/monte_carlo.h"
#include "workload/synthetic.h"

namespace {

using namespace ustdb;

struct Fixture {
  core::Database db;
  core::QueryWindow window;
};

Fixture& GetFixture(uint32_t num_states, uint32_t num_objects) {
  static std::map<std::pair<uint32_t, uint32_t>, Fixture> cache;
  auto key = std::make_pair(num_states, num_objects);
  auto it = cache.find(key);
  if (it == cache.end()) {
    workload::SyntheticConfig config;
    config.num_states = num_states;
    config.num_objects = num_objects;
    config.seed = 7;
    Fixture f{workload::GenerateDatabase(config).ValueOrDie(),
              workload::DefaultWindow(config).ValueOrDie()};
    it = cache.emplace(key, std::move(f)).first;
  }
  return it->second;
}

double RunObjectBased(const Fixture& f) {
  core::ObjectBasedEngine engine(&f.db.chain(0), f.window);
  double total = 0.0;
  for (const core::UncertainObject& obj : f.db.objects()) {
    total += engine.ExistsProbability(obj.initial_pdf());
  }
  return total;
}

double RunQueryBased(const Fixture& f) {
  core::QueryBasedEngine engine(&f.db.chain(0), f.window);
  double total = 0.0;
  for (const core::UncertainObject& obj : f.db.objects()) {
    total += engine.ExistsProbability(obj.initial_pdf());
  }
  return total;
}

double RunMonteCarlo(const Fixture& f, uint32_t num_samples) {
  // The paper's MC competitor uses 100 sampled paths per object. In native
  // code 100 paths are cheap but useless (sigma >= 5% — §VIII-A), so the
  // bench also reports MC at 10,000 paths, the minimum for parity with the
  // exact engines' first two digits. See EXPERIMENTS.md for the discussion.
  mc::MonteCarloEngine engine(&f.db.chain(0), f.window,
                              {.num_samples = num_samples, .seed = 99});
  double total = 0.0;
  for (const core::UncertainObject& obj : f.db.objects()) {
    total += engine.ExistsProbability(obj.initial_pdf()).probability;
  }
  return total;
}

void BM_MC(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<uint32_t>(state.range(0)),
                          static_cast<uint32_t>(state.range(1)));
  benchutil::TimedIterations(state, "MC100", state.range(0), [&] {
    benchmark::DoNotOptimize(RunMonteCarlo(f, 100));
  });
}

void BM_MCParity(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<uint32_t>(state.range(0)),
                          static_cast<uint32_t>(state.range(1)));
  benchutil::TimedIterations(state, "MC10k", state.range(0), [&] {
    benchmark::DoNotOptimize(RunMonteCarlo(f, 10'000));
  });
}

void BM_OB(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<uint32_t>(state.range(0)),
                          static_cast<uint32_t>(state.range(1)));
  benchutil::TimedIterations(state, "OB", state.range(0), [&] {
    benchmark::DoNotOptimize(RunObjectBased(f));
  });
}

void BM_QB(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<uint32_t>(state.range(0)),
                          static_cast<uint32_t>(state.range(1)));
  benchutil::TimedIterations(state, "QB", state.range(0), [&] {
    benchmark::DoNotOptimize(RunQueryBased(f));
  });
}

void Register(bool large, bool full) {
  std::vector<int64_t> sizes;
  int64_t num_objects;
  if (large) {
    num_objects = full ? 100'000 : 10'000;
    for (int64_t s = 10'000; s <= 90'000; s += full ? 10'000 : 20'000) {
      sizes.push_back(s);
    }
  } else {
    num_objects = 1'000;
    for (int64_t s = 2'000; s <= 18'000; s += 4'000) sizes.push_back(s);
  }
  for (int64_t s : sizes) {
    if (!large) {
      benchmark::RegisterBenchmark("fig8/MC100", BM_MC)
          ->Args({s, num_objects})
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark("fig8/MC10k", BM_MCParity)
          ->Args({s, num_objects})
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark("fig8/OB", BM_OB)
        ->Args({s, num_objects})
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("fig8/QB", BM_QB)
        ->Args({s, num_objects})
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool large = ustdb::benchutil::ExtractFlag(&argc, argv, "--large");
  const bool full = ustdb::benchutil::ExtractFlag(&argc, argv, "--full");
  Register(large, full);
  return ustdb::benchutil::RunBenchMain(
      argc, argv, large ? "fig8b_state_space_large" : "fig8a_state_space_small",
      "states", "whole-database PST-Exists runtime [s]");
}
