// Extension — continuous queries: incremental subscription refresh vs
// cold recompute.
//
// A monitoring deployment keeps N standing queries (sliding windows, one
// per watched region) open against a database that ingests observation
// updates. Each round the windows slide one step and a few objects
// receive a new observation. The subscription layer refreshes by
// extending memoized query-based backward passes (engine-cache
// shift-extension) and rebuilding only the passes the ingest invalidated
// (epoch-precise, per chain); the no-continuous-queries baseline re-runs
// every standing query from scratch, the way a polling client would.
//
// Sweep: standing-query count N x update rate u (objects mutated per
// round). Series:
//
//   cold_ms_uU        — milliseconds per round of cold recompute (fresh
//                       executor each round), N on the x axis
//   incremental_ms_uU — milliseconds per round of TickWindows +
//                       RefreshSubscriptions on the long-lived service
//   speedup_uU        — cold / incremental at the same (N, u)
//
// Higher update rates invalidate more chains per round and erode the
// incremental advantage — that erosion curve is the point of the u
// dimension. The perf gate (bench/baselines/continuous_queries.json)
// floors speedup_u1 at N = 64.
//
// Before any timing, the fixture verifies that every subscription's
// answer set — reconstructed purely from the delivered deltas — matches a
// cold executor's answer for the final slid window within the 1e-12
// kernel-parity margin.
//
// Usage: bench_continuous_queries [--full]

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/database.h"
#include "core/executor.h"
#include "core/query_request.h"
#include "core/query_window.h"
#include "service/query_service.h"
#include "sparse/prob_vector.h"
#include "util/stopwatch.h"
#include "workload/synthetic.h"

namespace {

using namespace ustdb;

bool g_full = false;

constexpr uint32_t kChains = 24;
constexpr uint32_t kWindowSteps = 16;   // backward-pass length per window
constexpr uint32_t kRegionWidth = 24;
constexpr int kRounds = 6;
constexpr double kParityMargin = 1e-12;

workload::SyntheticConfig Config() {
  workload::SyntheticConfig config;
  config.num_states = g_full ? 8'000 : 2'000;
  config.num_objects = 32;
  config.object_spread = 5;
  config.state_spread = 3;
  config.max_step = 24;
  config.seed = 53;
  return config;
}

/// The i-th standing query: kExists over a distinct region, explicit
/// query-based plan (the shift-extension path is QB-only).
core::QueryRequest StandingRequest(const workload::SyntheticConfig& config,
                                   uint32_t i) {
  const uint32_t stride =
      (config.num_states - kRegionWidth - 16) / 64;  // 64 = max N swept
  const uint32_t s_lo = 8 + i * stride;
  core::QueryRequest request;
  request.predicate = core::PredicateKind::kExists;
  request.plan = core::PlanChoice::kQueryBased;
  request.window = core::QueryWindow::FromRanges(config.num_states, s_lo,
                                                 s_lo + kRegionWidth, 2,
                                                 2 + kWindowSteps - 1)
                       .ValueOrDie();
  return request;
}

/// An observation guaranteed consistent with `id`'s possible worlds one
/// step after its latest observation: uniform over a band covering the
/// full one-step reachable set of that pdf (band transitions move at
/// most max_step/2 per step).
core::Observation ReachableObs(const core::Database& db, ObjectId id,
                               const workload::SyntheticConfig& config) {
  const core::Observation& last = db.object(id).observations.back();
  uint32_t lo = config.num_states;
  uint32_t hi = 0;
  last.pdf.ForEachNonZero([&](uint32_t index, double) {
    lo = std::min(lo, index);
    hi = std::max(hi, index);
  });
  const uint32_t half = config.max_step / 2;
  const uint32_t band_lo = lo > half ? lo - half : 0;
  const uint32_t band_hi = std::min(config.num_states - 1, hi + half);
  std::vector<std::pair<uint32_t, double>> pairs;
  for (uint32_t s = band_lo; s <= band_hi; ++s) pairs.emplace_back(s, 1.0);
  return {last.time + 1, sparse::ProbVector::FromPairs(config.num_states,
                                                       std::move(pairs),
                                                       /*normalize=*/true)
                             .ValueOrDie()};
}

struct RoundCost {
  double cold_seconds = 0.0;
  double incremental_seconds = 0.0;
};

/// One full configuration: N subscriptions at update rate u, kRounds
/// rounds of {ingest, slide, refresh} vs cold recompute of the same slid
/// requests. Also runs the delta-reconstruction parity check.
RoundCost RunConfig(uint32_t num_queries, uint32_t updates_per_round) {
  const workload::SyntheticConfig config = Config();
  core::Database db =
      workload::GenerateMultiChainDatabase(config, kChains, 0.05)
          .ValueOrDie();

  service::ServiceOptions options;
  options.executor.num_threads = 1;
  // Room for two rounds of (N windows x kChains passes) so extension
  // bases survive until the next slide.
  options.executor.cache_capacity = 2 * num_queries * kChains + 64;
  service::QueryService service(&db, options);

  auto mirrors =
      std::make_shared<std::vector<std::map<ObjectId, double>>>(num_queries);
  std::vector<service::Subscription> subs;
  for (uint32_t i = 0; i < num_queries; ++i) {
    auto sub = service.Subscribe(
        StandingRequest(config, i), service::WindowPolicy{.slide = 1},
        [mirrors, i](const service::SubscriptionDelta& delta) {
          std::map<ObjectId, double>& mirror = (*mirrors)[i];
          for (ObjectId id : delta.left) mirror.erase(id);
          for (const auto& p : delta.entered) mirror[p.id] = p.probability;
          for (const auto& p : delta.changed) mirror[p.id] = p.probability;
        });
    if (!sub.ok()) {
      std::fprintf(stderr, "Subscribe failed: %s\n",
                   sub.status().ToString().c_str());
      std::exit(1);
    }
    subs.push_back(sub.value());
  }
  // Warmup refresh builds every backward pass once (untimed — the
  // steady state is what the bench measures).
  if (service.RefreshSubscriptions() != num_queries) {
    std::fprintf(stderr, "warmup refresh did not deliver every delta\n");
    std::exit(1);
  }

  RoundCost cost;
  std::vector<std::vector<core::ObjectProbability>> final_cold(num_queries);
  for (int round = 1; round <= kRounds; ++round) {
    // Ingest one observation on each of the u hot objects (untimed: both
    // paths see the same post-append database) — the paper's Section VI
    // story, an object reporting positions continuously. Consecutive ids
    // walk the round-robin chain assignment, so u hot objects dirty
    // min(u, kChains) chains every round.
    for (uint32_t j = 0; j < updates_per_round; ++j) {
      const ObjectId id =
          static_cast<ObjectId>(j % config.num_objects);
      const auto version =
          service.AppendObservation(id, ReachableObs(db, id, config));
      if (!version.ok()) {
        std::fprintf(stderr, "append failed: %s\n",
                     version.status().ToString().c_str());
        std::exit(1);
      }
    }

    {
      util::Stopwatch sw;
      service.TickWindows();
      if (service.RefreshSubscriptions() != num_queries) {
        std::fprintf(stderr, "refresh round %d dropped a delta\n", round);
        std::exit(1);
      }
      cost.incremental_seconds += sw.ElapsedSeconds();
    }

    {
      util::Stopwatch sw;
      core::QueryExecutor cold(&db, {.num_threads = 1});
      for (uint32_t i = 0; i < num_queries; ++i) {
        core::QueryRequest request = StandingRequest(config, i);
        request.window = request.window.ShiftedBy(round);
        const auto result = cold.Run(request);
        if (!result.ok()) {
          std::fprintf(stderr, "cold run failed: %s\n",
                       result.status().ToString().c_str());
          std::exit(1);
        }
        if (round == kRounds) {
          final_cold[i] = result.value().probabilities;
        }
      }
      cost.cold_seconds += sw.ElapsedSeconds();
    }
  }

  // Parity: every subscription's delta-reconstructed answer set matches
  // the cold recompute of its final window.
  for (uint32_t i = 0; i < num_queries; ++i) {
    const std::map<ObjectId, double>& mirror = (*mirrors)[i];
    if (mirror.size() != final_cold[i].size()) {
      std::fprintf(stderr,
                   "parity: query %u answer-set size %zu vs cold %zu\n", i,
                   mirror.size(), final_cold[i].size());
      std::exit(1);
    }
    for (const core::ObjectProbability& want : final_cold[i]) {
      const auto it = mirror.find(want.id);
      if (it == mirror.end() ||
          std::fabs(it->second - want.probability) > kParityMargin) {
        std::fprintf(stderr,
                     "parity: query %u object %u drifted beyond 1e-12\n", i,
                     want.id);
        std::exit(1);
      }
    }
  }
  // Engagement guard: at low update rates the refreshes must actually
  // ride the cache's shift-extension path, or the "incremental" series
  // is mislabeled. (At u >= kChains every chain is invalidated every
  // round, so zero extends is the expected full-erosion endpoint.)
  if (updates_per_round < kChains / 2 &&
      service.stats().cache.shift_extends <
          static_cast<uint64_t>(kRounds) * num_queries) {
    std::fprintf(stderr,
                 "expected >= %d shift-extends (got %llu): the refresh "
                 "path is rebuilding instead of extending\n",
                 kRounds * num_queries,
                 static_cast<unsigned long long>(
                     service.stats().cache.shift_extends));
    std::exit(1);
  }

  cost.cold_seconds /= kRounds;
  cost.incremental_seconds /= kRounds;
  return cost;
}

void BM_Continuous(benchmark::State& state) {
  const uint32_t num_queries = static_cast<uint32_t>(state.range(0));
  const uint32_t updates = static_cast<uint32_t>(state.range(1));
  RoundCost cost;
  for (auto _ : state) {
    util::Stopwatch sw;
    cost = RunConfig(num_queries, updates);
    state.SetIterationTime(sw.ElapsedSeconds());
  }
  const std::string suffix = "_u" + std::to_string(updates);
  auto& recorder = benchutil::Recorder::Instance();
  recorder.Record("cold_ms" + suffix, num_queries,
                  cost.cold_seconds * 1e3);
  recorder.Record("incremental_ms" + suffix, num_queries,
                  cost.incremental_seconds * 1e3);
  if (cost.incremental_seconds > 0.0) {
    recorder.Record("speedup" + suffix, num_queries,
                    cost.cold_seconds / cost.incremental_seconds);
  }
}

void Register() {
  for (const int64_t n : {16, 64}) {
    for (const int64_t u : {1, 4, 16}) {
      benchmark::RegisterBenchmark("continuous/refresh", BM_Continuous)
          ->Args({n, u})
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  g_full = ustdb::benchutil::ExtractFlag(&argc, argv, "--full");
  Register();
  return ustdb::benchutil::RunBenchMain(
      argc, argv, "continuous_queries", "standing_queries",
      "per-round refresh [ms] / speedup vs cold recompute");
}
