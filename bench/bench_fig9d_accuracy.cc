// Figure 9(d) — the accuracy experiment justifying the model.
//
// For a growing query time window (1..10 timestamps), compare the average
// PST∃Q probability of candidate objects under
//   (i)  the paper's Markov model, which honours temporal dependence, and
//   (ii) the snapshot model that treats timestamps as independent.
// The paper's finding: ignoring temporal dependence biases the probability
// upward, and the error *grows* with the window length.
//
// The reported value is the mean probability over objects with non-zero
// probability ("average probability of objects having a non-zero
// probability to fulfill the query predicate").
//
// Usage: bench_fig9d_accuracy [--full]

#include <benchmark/benchmark.h>

#include <optional>

#include "bench_common.h"
#include "core/independent_baseline.h"
#include "core/query_based.h"
#include "workload/synthetic.h"

namespace {

using namespace ustdb;

bool g_full = false;

core::Database& GetDb() {
  static std::optional<core::Database> db;
  if (!db.has_value()) {
    workload::SyntheticConfig config;
    config.num_states = g_full ? 100'000 : 20'000;
    config.num_objects = g_full ? 10'000 : 2'000;
    // A narrow band keeps consecutive positions strongly correlated — the
    // regime where the snapshot model's bias is visible.
    config.max_step = 10;
    config.seed = 13;
    db = workload::GenerateDatabase(config).ValueOrDie();
  }
  return *db;
}

core::QueryWindow MakeWindow(const core::Database& db, uint32_t window_len) {
  const uint32_t n = db.chain(0).num_states();
  return core::QueryWindow::FromRanges(n, std::min(100u, n - 21),
                                       std::min(120u, n - 1), 20,
                                       20 + window_len - 1)
      .ValueOrDie();
}

/// Average probability over objects with non-zero probability.
template <typename Prob>
double AverageNonZero(const core::Database& db, Prob&& prob) {
  double total = 0.0;
  uint32_t candidates = 0;
  for (const core::UncertainObject& obj : db.objects()) {
    const double p = prob(obj.initial_pdf());
    if (p > 0.0) {
      total += p;
      ++candidates;
    }
  }
  return candidates == 0 ? 0.0 : total / candidates;
}

void BM_WithCorrelation(benchmark::State& state) {
  core::Database& db = GetDb();
  const auto window = MakeWindow(db, static_cast<uint32_t>(state.range(0)));
  double avg = 0.0;
  for (auto _ : state) {
    core::QueryBasedEngine engine(&db.chain(0), window);
    avg = AverageNonZero(db, [&](const sparse::ProbVector& pdf) {
      return engine.ExistsProbability(pdf);
    });
    benchmark::DoNotOptimize(avg);
  }
  benchutil::Recorder::Instance().Record("with_temporal_correlation",
                                         state.range(0), avg);
}

void BM_WithoutCorrelation(benchmark::State& state) {
  core::Database& db = GetDb();
  const auto window = MakeWindow(db, static_cast<uint32_t>(state.range(0)));
  double avg = 0.0;
  for (auto _ : state) {
    core::IndependentBaseline baseline(&db.chain(0), window);
    avg = AverageNonZero(db, [&](const sparse::ProbVector& pdf) {
      return baseline.ExistsProbability(pdf);
    });
    benchmark::DoNotOptimize(avg);
  }
  benchutil::Recorder::Instance().Record("without_temporal_correlation",
                                         state.range(0), avg);
}

void Register() {
  for (int64_t len = 1; len <= 10; ++len) {
    benchmark::RegisterBenchmark("fig9d/with_correlation", BM_WithCorrelation)
        ->Arg(len)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("fig9d/without_correlation",
                                 BM_WithoutCorrelation)
        ->Arg(len)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  g_full = ustdb::benchutil::ExtractFlag(&argc, argv, "--full");
  Register();
  return ustdb::benchutil::RunBenchMain(argc, argv, "fig9d_accuracy",
                                        "query_window_timeslots",
                                        "average probability");
}
