// Figure 9(a)-(c) — PST∃Q runtime versus the query start time.
//
// The query window has fixed spatial extent and a 5-timestamp duration;
// its start slides from 5 to 50. OB degrades with the start time (vectors
// densify along the longer propagation) while QB grows far more slowly —
// the paper's headline scaling result, shown on synthetic data (9a), the
// Munich road network (9b) and the North America road network (9c).
//
// The real road datasets are replaced by synthetic graphs with matched
// node/edge counts (see DESIGN.md §2).
//
// Usage: bench_fig9_starttime [--munich | --na] [--full]
//   --full uses the paper's |D| = 10,000 (default here: 1,000 objects).

#include <benchmark/benchmark.h>

#include <optional>

#include "bench_common.h"
#include "core/object_based.h"
#include "core/query_based.h"
#include "network/generators.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace {

using namespace ustdb;

enum class Dataset { kSynthetic, kMunich, kNorthAmerica };

struct Fixture {
  core::Database db;
};

Dataset g_dataset = Dataset::kSynthetic;
bool g_full = false;

Fixture& GetFixture() {
  static std::optional<Fixture> cache;
  if (!cache.has_value()) {
    const uint32_t num_objects = g_full ? 10'000 : 1'000;
    core::Database db;
    if (g_dataset == Dataset::kSynthetic) {
      workload::SyntheticConfig config;
      config.num_states = g_full ? 100'000 : 20'000;
      config.num_objects = num_objects;
      config.seed = 11;
      db = workload::GenerateDatabase(config).ValueOrDie();
    } else {
      auto road = (g_dataset == Dataset::kMunich
                       ? network::GenerateUrbanNetwork(11)
                       : network::GenerateContinentalNetwork(11))
                      .ValueOrDie();
      util::Rng rng(11);
      const ChainId c = db.AddChain(road.ToMarkovChain(&rng).ValueOrDie());
      // Objects: GPS-like fixes spread over `object spread` nodes.
      workload::SyntheticConfig obj_config;
      obj_config.num_states = road.num_nodes();
      for (uint32_t i = 0; i < num_objects; ++i) {
        (void)db.AddObjectAt(c, workload::GenerateObjectPdf(obj_config, &rng))
            .ValueOrDie();
      }
    }
    // Pre-build the transpose so the first QB sweep point does not pay the
    // one-time per-chain cost (it is shared across all queries).
    (void)db.chain(0).transposed();
    cache.emplace(Fixture{std::move(db)});
  }
  return *cache;
}

core::QueryWindow MakeWindow(const core::Database& db, Timestamp start) {
  const uint32_t n = db.chain(0).num_states();
  return core::QueryWindow::FromRanges(n, std::min(100u, n - 21),
                                       std::min(120u, n - 1), start,
                                       start + 5)
      .ValueOrDie();
}

void BM_OB(benchmark::State& state) {
  Fixture& f = GetFixture();
  const auto window = MakeWindow(f.db, static_cast<Timestamp>(state.range(0)));
  benchutil::TimedIterations(state, "OB", state.range(0), [&] {
    core::ObjectBasedEngine engine(&f.db.chain(0), window);
    double total = 0.0;
    for (const core::UncertainObject& obj : f.db.objects()) {
      total += engine.ExistsProbability(obj.initial_pdf());
    }
    benchmark::DoNotOptimize(total);
  });
}

void BM_QB(benchmark::State& state) {
  Fixture& f = GetFixture();
  const auto window = MakeWindow(f.db, static_cast<Timestamp>(state.range(0)));
  benchutil::TimedIterations(state, "QB", state.range(0), [&] {
    core::QueryBasedEngine engine(&f.db.chain(0), window);
    double total = 0.0;
    for (const core::UncertainObject& obj : f.db.objects()) {
      total += engine.ExistsProbability(obj.initial_pdf());
    }
    benchmark::DoNotOptimize(total);
  });
}

void Register() {
  for (int64_t start = 5; start <= 50; start += 5) {
    benchmark::RegisterBenchmark("fig9/OB", BM_OB)
        ->Arg(start)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("fig9/QB", BM_QB)
        ->Arg(start)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string name = "fig9a_starttime_synthetic";
  if (ustdb::benchutil::ExtractFlag(&argc, argv, "--munich")) {
    g_dataset = Dataset::kMunich;
    name = "fig9b_starttime_munich";
  } else if (ustdb::benchutil::ExtractFlag(&argc, argv, "--na")) {
    g_dataset = Dataset::kNorthAmerica;
    name = "fig9c_starttime_north_america";
  }
  g_full = ustdb::benchutil::ExtractFlag(&argc, argv, "--full");
  Register();
  return ustdb::benchutil::RunBenchMain(
      argc, argv, name, "query_starttime",
      "whole-database PST-Exists runtime [s]");
}
