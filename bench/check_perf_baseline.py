#!/usr/bin/env python3
"""Compares a bench --json output against a checked-in perf baseline.

Usage: check_perf_baseline.py BASELINE.json CURRENT.json [--tolerance T]

The baseline lists (series, x, value) points for *higher-is-better*
series (the bench's machine-independent speedup ratios). The check fails
when any listed point regresses by more than the tolerance (default 0.25,
i.e. current < baseline * 0.75) or is missing from the current output.
Absolute timings are deliberately not checked — they do not transfer
across machines; ratios of two kernels measured on the same machine do.

Baseline schema:
  { "tolerance": 0.25,
    "series": { "speedup_gather": { "100": 2.0 }, ... } }

CURRENT is the bench's --json output (bench_common.h WriteJson schema).
"""

import argparse
import json
import sys


def load_json(path: str, label: str):
    """Loads one input, distinguishing 'not there' from 'not JSON'.

    Returns (doc, error): exactly one is None. A malformed file is an
    error string; a missing file is reported by the caller (a missing
    BASELINE is a skip, a missing CURRENT is a failure).
    """
    try:
        with open(path) as f:
            return json.load(f), None
    except FileNotFoundError:
        return None, None
    except OSError as e:
        return None, f"cannot read {label} {path}: {e}"
    except json.JSONDecodeError as e:
        return None, f"malformed JSON in {label} {path}: {e}"


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="override the baseline's tolerance")
    args = parser.parse_args()

    baseline, error = load_json(args.baseline, "baseline")
    if error:
        print(f"FAIL: {error}", file=sys.stderr)
        return 1
    if baseline is None:
        # No baseline checked in (yet) is not a regression: new platforms
        # and fresh clones must not fail CI before a baseline exists.
        print(f"SKIP: baseline not found: {args.baseline}")
        return 0
    current, error = load_json(args.current, "current output")
    if error:
        print(f"FAIL: {error}", file=sys.stderr)
        return 1
    if current is None:
        # The bench was supposed to have just produced this file.
        print(f"FAIL: current bench output not found: {args.current}",
              file=sys.stderr)
        return 1
    if not isinstance(baseline, dict) or not isinstance(current, dict):
        print("FAIL: baseline and current must be JSON objects",
              file=sys.stderr)
        return 1

    tolerance = args.tolerance
    if tolerance is None:
        tolerance = baseline.get("tolerance", 0.25)
    if not isinstance(tolerance, (int, float)):
        print(f"FAIL: tolerance must be a number, got {tolerance!r}",
              file=sys.stderr)
        return 1
    current_series = current.get("series", {})

    # Benches annotate runs with a meta block (host, nproc, active ISA,
    # shard count, git sha, timestamp — obs::CommonMeta). Print it for
    # log context; unknown keys are fine and never checked.
    meta = current.get("meta", {})
    if meta:
        print("run meta: " +
              ", ".join(f"{k}={v}" for k, v in sorted(meta.items())))

    failures = []
    checked = 0
    for series, points in baseline.get("series", {}).items():
        for x, expected in points.items():
            got = current_series.get(series, {}).get(x)
            checked += 1
            if got is None:
                failures.append(
                    f"{series}@{x}: missing from current output")
                continue
            floor = expected * (1.0 - tolerance)
            status = "OK" if got >= floor else "REGRESSION"
            print(f"{status:>10}  {series}@{x}: current {got:.3f} vs "
                  f"baseline {expected:.3f} (floor {floor:.3f})")
            if got < floor:
                failures.append(
                    f"{series}@{x}: {got:.3f} < floor {floor:.3f} "
                    f"(baseline {expected:.3f}, tolerance {tolerance:.0%})")

    if failures:
        print(f"\n{len(failures)} of {checked} checked points regressed "
              f"beyond {tolerance:.0%}:", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print(f"\nall {checked} baseline points within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
