#!/usr/bin/env python3
"""Compares a bench --json output against a checked-in perf baseline.

Usage: check_perf_baseline.py BASELINE.json CURRENT.json [--tolerance T]

The baseline lists (series, x, value) points for *higher-is-better*
series (the bench's machine-independent speedup ratios). The check fails
when any listed point regresses by more than the tolerance (default 0.25,
i.e. current < baseline * 0.75) or is missing from the current output.
Absolute timings are deliberately not checked — they do not transfer
across machines; ratios of two kernels measured on the same machine do.

Baseline schema:
  { "tolerance": 0.25,
    "series": { "speedup_gather": { "100": 2.0 }, ... } }

CURRENT is the bench's --json output (bench_common.h WriteJson schema).
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="override the baseline's tolerance")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    tolerance = args.tolerance
    if tolerance is None:
        tolerance = baseline.get("tolerance", 0.25)
    current_series = current.get("series", {})

    # Benches annotate runs with a meta block (host, nproc, active ISA,
    # shard count, git sha, timestamp — obs::CommonMeta). Print it for
    # log context; unknown keys are fine and never checked.
    meta = current.get("meta", {})
    if meta:
        print("run meta: " +
              ", ".join(f"{k}={v}" for k, v in sorted(meta.items())))

    failures = []
    checked = 0
    for series, points in baseline.get("series", {}).items():
        for x, expected in points.items():
            got = current_series.get(series, {}).get(x)
            checked += 1
            if got is None:
                failures.append(
                    f"{series}@{x}: missing from current output")
                continue
            floor = expected * (1.0 - tolerance)
            status = "OK" if got >= floor else "REGRESSION"
            print(f"{status:>10}  {series}@{x}: current {got:.3f} vs "
                  f"baseline {expected:.3f} (floor {floor:.3f})")
            if got < floor:
                failures.append(
                    f"{series}@{x}: {got:.3f} < floor {floor:.3f} "
                    f"(baseline {expected:.3f}, tolerance {tolerance:.0%})")

    if failures:
        print(f"\n{len(failures)} of {checked} checked points regressed "
              f"beyond {tolerance:.0%}:", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print(f"\nall {checked} baseline points within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
