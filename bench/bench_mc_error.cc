// §VIII-A — the Monte-Carlo error bound ablation.
//
// The paper justifies excluding MC from most plots with the Bernoulli
// error argument: σ_p̂ = sqrt(p(1−p)/n), so 100 samples leave >= 5
// percentage points of standard deviation near p = 0.5. This bench sweeps
// the sample count and reports, over the objects whose exact probability
// is interior (0.05 < p < 0.95 — elsewhere MC is trivially right and would
// dilute the average):
//   - the mean empirical |p̂ − p| against the exact (QB) probability,
//   - the mean theoretical σ bound,
//   - the MC runtime over the whole batch (series mc_runtime_s).
// Expected shape: error falls like 1/sqrt(n) while runtime grows linearly —
// the trade the exact matrix approach sidesteps entirely.
//
// Usage: bench_mc_error [--full]

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <optional>

#include "bench_common.h"
#include "core/query_based.h"
#include "mc/monte_carlo.h"
#include "workload/synthetic.h"

namespace {

using namespace ustdb;

bool g_full = false;

struct Fixture {
  core::Database db;
  core::QueryWindow window;
  std::vector<double> exact;  // per-object QB probabilities
};

Fixture& GetFixture() {
  static std::optional<Fixture> cache;
  if (!cache.has_value()) {
    workload::SyntheticConfig config;
    config.num_states = g_full ? 100'000 : 10'000;
    config.num_objects = g_full ? 1'000 : 200;
    // Wide window so many objects have interior probabilities (errors are
    // largest near p = 0.5).
    config.seed = 23;
    config.max_step = 60;
    Fixture f{workload::GenerateDatabase(config).ValueOrDie(),
              core::QueryWindow::FromRanges(config.num_states, 0,
                                            config.num_states / 4, 10, 25)
                  .ValueOrDie(),
              {}};
    core::QueryBasedEngine engine(&f.db.chain(0), f.window);
    for (const auto& obj : f.db.objects()) {
      f.exact.push_back(engine.ExistsProbability(obj.initial_pdf()));
    }
    cache.emplace(std::move(f));
  }
  return *cache;
}

void BM_MC(benchmark::State& state) {
  Fixture& f = GetFixture();
  const uint32_t samples = static_cast<uint32_t>(state.range(0));
  double mean_abs_err = 0.0;
  double mean_sigma = 0.0;
  double seconds = 0.0;
  for (auto _ : state) {
    util::Stopwatch sw;
    mc::MonteCarloEngine engine(&f.db.chain(0), f.window,
                                {.num_samples = samples, .seed = 31});
    double abs_err = 0.0;
    double sigma = 0.0;
    uint32_t interior = 0;
    for (uint32_t i = 0; i < f.db.num_objects(); ++i) {
      const mc::McEstimate e =
          engine.ExistsProbability(f.db.object(i).initial_pdf());
      const double p = std::clamp(f.exact[i], 0.0, 1.0);
      if (p <= 0.05 || p >= 0.95) continue;
      abs_err += std::abs(e.probability - p);
      sigma += std::sqrt(p * (1.0 - p) / samples);
      ++interior;
    }
    seconds = sw.ElapsedSeconds();
    state.SetIterationTime(seconds);
    mean_abs_err = interior ? abs_err / interior : 0.0;
    mean_sigma = interior ? sigma / interior : 0.0;
  }
  benchutil::Recorder::Instance().Record("mean_abs_error", samples,
                                         mean_abs_err);
  benchutil::Recorder::Instance().Record("bernoulli_sigma", samples,
                                         mean_sigma);
  benchutil::Recorder::Instance().Record("mc_runtime_s", samples, seconds);
}

void Register() {
  for (int64_t n : {10, 30, 100, 300, 1'000, 3'000, 10'000}) {
    benchmark::RegisterBenchmark("mc_error/sweep", BM_MC)
        ->Arg(n)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  g_full = ustdb::benchutil::ExtractFlag(&argc, argv, "--full");
  Register();
  return ustdb::benchutil::RunBenchMain(argc, argv, "mc_error",
                                        "num_samples",
                                        "error / sigma / runtime");
}
