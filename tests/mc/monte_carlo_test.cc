#include "mc/monte_carlo.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/object_based.h"
#include "testing/random_models.h"
#include "util/rng.h"

namespace ustdb {
namespace mc {
namespace {

using ::ustdb::testing::PaperChainV;
using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

TEST(TrajectorySamplerTest, SamplesFollowRowDistribution) {
  markov::MarkovChain chain = PaperChainV();
  TrajectorySampler sampler(&chain);
  util::Rng rng(77);
  // Row s2 = (0.6, 0, 0.4): frequencies must approach the probabilities.
  int to0 = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const StateIndex next = sampler.SampleNext(1, &rng);
    ASSERT_TRUE(next == 0 || next == 2);
    to0 += (next == 0);
  }
  EXPECT_NEAR(static_cast<double>(to0) / n, 0.6, 0.01);
}

TEST(TrajectorySamplerTest, DeterministicRowAlwaysSameTarget) {
  markov::MarkovChain chain = PaperChainV();
  TrajectorySampler sampler(&chain);
  util::Rng rng(78);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampler.SampleNext(0, &rng), 2u);  // row s1 = (0,0,1)
  }
}

TEST(TrajectorySamplerTest, InitialSamplingHonorsPdf) {
  markov::MarkovChain chain = PaperChainV();
  TrajectorySampler sampler(&chain);
  util::Rng rng(79);
  auto pdf =
      sparse::ProbVector::FromPairs(3, {{0, 0.25}, {2, 0.75}}).ValueOrDie();
  int at2 = 0;
  const int n = 40'000;
  for (int i = 0; i < n; ++i) {
    const StateIndex s = sampler.SampleInitial(pdf, &rng);
    ASSERT_TRUE(s == 0 || s == 2);
    at2 += (s == 2);
  }
  EXPECT_NEAR(static_cast<double>(at2) / n, 0.75, 0.01);
}

TEST(TrajectorySamplerTest, PathHasRequestedLength) {
  markov::MarkovChain chain = PaperChainV();
  TrajectorySampler sampler(&chain);
  util::Rng rng(80);
  const auto path =
      sampler.SamplePath(sparse::ProbVector::Delta(3, 1), 7, &rng);
  EXPECT_EQ(path.size(), 8u);
  for (StateIndex s : path) EXPECT_LT(s, 3u);
}

TEST(MonteCarloTest, ConvergesToPaperAnswer) {
  // P∃ = 0.864 on the running example; 100k samples pin it to ~0.3%.
  markov::MarkovChain chain = PaperChainV();
  auto window = core::QueryWindow::FromRanges(3, 0, 1, 2, 3).ValueOrDie();
  MonteCarloEngine engine(&chain, window,
                          {.num_samples = 100'000, .seed = 5});
  const McEstimate e =
      engine.ExistsProbability(sparse::ProbVector::Delta(3, 1));
  EXPECT_NEAR(e.probability, 0.864, 0.005);
  EXPECT_EQ(e.num_samples, 100'000u);
}

TEST(MonteCarloTest, PaperHundredSamplesHasLargeError) {
  // Section VIII-A: with 100 samples σ >= 5% near p = 0.5; the estimate is
  // coarse but the std_error field must report that honestly.
  markov::MarkovChain chain = PaperChainV();
  auto window = core::QueryWindow::FromRanges(3, 0, 1, 2, 3).ValueOrDie();
  MonteCarloEngine engine(&chain, window, {.num_samples = 100, .seed = 6});
  const McEstimate e =
      engine.ExistsProbability(sparse::ProbVector::Delta(3, 1));
  EXPECT_GT(e.std_error, 0.0);
  EXPECT_LT(e.std_error, 0.06);
  EXPECT_NEAR(e.probability, 0.864, 0.15);
}

TEST(MonteCarloTest, DeterministicForSeed) {
  markov::MarkovChain chain = PaperChainV();
  auto window = core::QueryWindow::FromRanges(3, 0, 1, 2, 3).ValueOrDie();
  MonteCarloEngine a(&chain, window, {.num_samples = 500, .seed = 9});
  MonteCarloEngine b(&chain, window, {.num_samples = 500, .seed = 9});
  EXPECT_DOUBLE_EQ(
      a.ExistsProbability(sparse::ProbVector::Delta(3, 1)).probability,
      b.ExistsProbability(sparse::ProbVector::Delta(3, 1)).probability);
}

TEST(MonteCarloTest, ForAllAndKTimesConsistency) {
  util::Rng rng(91);
  markov::MarkovChain chain = RandomChain(10, 3, &rng);
  auto window = core::QueryWindow::FromRanges(10, 2, 6, 1, 4).ValueOrDie();
  const sparse::ProbVector initial = RandomDistribution(10, 3, &rng);
  MonteCarloEngine engine(&chain, window,
                          {.num_samples = 20'000, .seed = 13});

  const auto dist = engine.KTimesDistribution(initial);
  ASSERT_EQ(dist.size(), window.num_times() + 1);
  EXPECT_NEAR(std::accumulate(dist.begin(), dist.end(), 0.0), 1.0, 1e-12);

  // Within the same engine, the estimators must be mutually consistent:
  // P∃ ≈ 1 − P(k=0) and P∀ ≈ P(k=|T□|) (same seed, same paths).
  const double exists = engine.ExistsProbability(initial).probability;
  const double forall = engine.ForAllProbability(initial).probability;
  EXPECT_NEAR(exists, 1.0 - dist[0], 1e-12);
  EXPECT_NEAR(forall, dist[window.num_times()], 1e-12);
}

TEST(MonteCarloTest, AgreesWithExactEngineWithinError) {
  util::Rng rng(92);
  for (int round = 0; round < 5; ++round) {
    markov::MarkovChain chain = RandomChain(15, 3, &rng);
    auto window = core::QueryWindow::FromRanges(15, 4, 8, 2, 6).ValueOrDie();
    const sparse::ProbVector initial = RandomDistribution(15, 3, &rng);
    core::ObjectBasedEngine exact_engine(&chain, window);
    const double truth = exact_engine.ExistsProbability(initial);
    MonteCarloEngine engine(
        &chain, window,
        {.num_samples = 30'000, .seed = 100 + static_cast<uint64_t>(round)});
    const McEstimate e = engine.ExistsProbability(initial);
    const double sigma = std::sqrt(truth * (1 - truth) / e.num_samples);
    EXPECT_NEAR(e.probability, truth, 5 * sigma + 5e-3) << "round " << round;
  }
}

}  // namespace
}  // namespace mc
}  // namespace ustdb
