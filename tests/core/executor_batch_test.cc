// RunBatch — batched execution with shared backward passes. The contract
// under test: every member's answer equals a solo Run of the same request
// (bit-identical whenever both pick the same plan, which the parity
// fixtures guarantee by construction), errors stay per-member, and
// same-window requests share one group / one backward pass.

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "core/executor.h"
#include "testing/random_models.h"
#include "util/rng.h"
#include "workload/query_gen.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::PaperChainVI;
using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

// Chains get enough objects that the solo cost model already prefers the
// query-based plan, so batch amortization never flips a plan and parity
// is bit-for-bit (the flip case is exercised separately below).
Database MakeDb(uint32_t num_chains, uint32_t num_objects, uint64_t seed,
                uint32_t num_states = 30) {
  util::Rng rng(seed);
  Database db;
  std::vector<ChainId> chains;
  for (uint32_t c = 0; c < num_chains; ++c) {
    chains.push_back(db.AddChain(RandomChain(num_states, 3, &rng)));
  }
  for (uint32_t i = 0; i < num_objects; ++i) {
    (void)db.AddObjectAt(chains[i % num_chains],
                         RandomDistribution(num_states, 3, &rng))
        .ValueOrDie();
  }
  return db;
}

workload::QueryGenConfig StreamConfig(uint32_t num_states = 30) {
  workload::QueryGenConfig config;
  config.num_states = num_states;
  config.region_extent = num_states < 5 ? 2 : 5;
  config.window_length = 4;
  config.t_min = 1;
  config.t_max = 8;
  config.seed = 515;
  return config;
}

void ExpectSameResult(const QueryResult& batch, const QueryResult& solo) {
  ASSERT_EQ(batch.probabilities.size(), solo.probabilities.size());
  for (size_t i = 0; i < solo.probabilities.size(); ++i) {
    EXPECT_EQ(batch.probabilities[i].id, solo.probabilities[i].id);
    EXPECT_DOUBLE_EQ(batch.probabilities[i].probability,
                     solo.probabilities[i].probability);
  }
  ASSERT_EQ(batch.distributions.size(), solo.distributions.size());
  for (size_t i = 0; i < solo.distributions.size(); ++i) {
    EXPECT_EQ(batch.distributions[i].id, solo.distributions[i].id);
    EXPECT_EQ(batch.distributions[i].distribution,
              solo.distributions[i].distribution);
  }
}

TEST(ExecutorBatchTest, EmptyBatch) {
  Database db = MakeDb(1, 4, 100);
  QueryExecutor executor(&db);
  EXPECT_TRUE(executor.RunBatch({}).empty());
  EXPECT_EQ(executor.cache_stats().hits, 0u);
  EXPECT_EQ(executor.cache_stats().misses, 0u);
}

TEST(ExecutorBatchTest, ParityWithSoloRunAcrossMixedWorkload) {
  Database db = MakeDb(2, 24, 101);
  const auto stream =
      workload::MixedRequestWorkload(StreamConfig(), 5, 80).ValueOrDie();

  QueryExecutor batch_exec(&db, {.num_threads = 2, .cache_capacity = 8});
  QueryExecutor solo_exec(&db, {.num_threads = 2, .cache_capacity = 8});
  const auto batch = batch_exec.RunBatch(stream);
  ASSERT_EQ(batch.size(), stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    const auto solo = solo_exec.Run(stream[i]);
    ASSERT_EQ(batch[i].ok(), solo.ok()) << "request " << i;
    if (!solo.ok()) continue;
    ExpectSameResult(batch[i].value(), solo.value());
  }
}

TEST(ExecutorBatchTest, ParityIncludesMultiObservationObjects) {
  util::Rng rng(77);
  Database db;
  const ChainId paper = db.AddChain(PaperChainVI());
  std::vector<Observation> obs;
  obs.push_back({0, sparse::ProbVector::Delta(3, 0)});
  obs.push_back({3, sparse::ProbVector::Delta(3, 1)});
  (void)db.AddObject(paper, obs).ValueOrDie();
  for (int i = 0; i < 6; ++i) {
    (void)db.AddObjectAt(paper, RandomDistribution(3, 2, &rng)).ValueOrDie();
  }

  const auto stream =
      workload::MixedRequestWorkload(StreamConfig(3), 3, 40).ValueOrDie();
  QueryExecutor batch_exec(&db, {.num_threads = 1});
  QueryExecutor solo_exec(&db, {.num_threads = 1});
  const auto batch = batch_exec.RunBatch(stream);
  ASSERT_EQ(batch.size(), stream.size());
  bool saw_ktimes_error = false;
  for (size_t i = 0; i < stream.size(); ++i) {
    const auto solo = solo_exec.Run(stream[i]);
    ASSERT_EQ(batch[i].ok(), solo.ok()) << "request " << i;
    if (!solo.ok()) {
      // PSTkQ over the multi-observation object fails identically per
      // member without poisoning the rest of the batch.
      EXPECT_EQ(batch[i].status().code(), solo.status().code());
      saw_ktimes_error = true;
      continue;
    }
    ExpectSameResult(batch[i].value(), solo.value());
  }
  EXPECT_TRUE(saw_ktimes_error);
}

TEST(ExecutorBatchTest, PinnedPlansStayPinnedAndBitIdentical) {
  Database db = MakeDb(2, 10, 102);
  const QueryWindow window =
      QueryWindow::FromRanges(30, 6, 12, 3, 8).ValueOrDie();

  std::vector<QueryRequest> requests;
  for (PlanChoice plan : {PlanChoice::kObjectBased, PlanChoice::kQueryBased,
                          PlanChoice::kAuto}) {
    QueryRequest request;
    request.predicate = PredicateKind::kExists;
    request.window = window;
    request.plan = plan;
    requests.push_back(request);
  }

  QueryExecutor executor(&db, {.num_threads = 1});
  const auto batch = executor.RunBatch(requests);
  ASSERT_EQ(batch.size(), 3u);
  QueryExecutor solo(&db, {.num_threads = 1});
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(batch[i].ok());
    const auto want = solo.Run(requests[i]).ValueOrDie();
    ExpectSameResult(batch[i].value(), want);
  }
  // All three share one group (same window and mode) even though their
  // plans differ; the OB member must have run object-based.
  EXPECT_EQ(batch[0]->stats.batch_group_members, 3u);
  EXPECT_EQ(batch[0]->stats.chains_object_based, 2u);
  EXPECT_EQ(batch[1]->stats.chains_query_based, 2u);
}

TEST(ExecutorBatchTest, SameWindowRequestsShareOneBackwardPass) {
  Database db = MakeDb(1, 16, 103);
  const QueryWindow window =
      QueryWindow::FromRanges(30, 4, 9, 2, 7).ValueOrDie();
  std::vector<QueryRequest> requests(8);
  for (auto& request : requests) {
    request.predicate = PredicateKind::kExists;
    request.window = window;
  }

  QueryExecutor executor(&db, {.num_threads = 2, .cache_capacity = 4});
  const auto first = executor.RunBatch(requests);
  ASSERT_EQ(first.size(), 8u);
  // One group, one backward pass: exactly one cache miss, reported on the
  // first member; the other members carry no cache traffic of their own.
  EXPECT_EQ(first[0]->stats.cache_misses, 1u);
  EXPECT_EQ(first[0]->stats.cache_hits, 0u);
  for (size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(first[i].ok());
    EXPECT_EQ(first[i]->stats.batch_group_members, 8u);
    EXPECT_EQ(first[i]->stats.chains_query_based, 1u);
    if (i > 0) {
      EXPECT_EQ(first[i]->stats.cache_misses, 0u);
      EXPECT_EQ(first[i]->stats.cache_hits, 0u);
    }
  }

  // The pass built inside the batch was admitted to the cache: the next
  // refresh of the same dashboard borrows it instead of rebuilding.
  const auto second = executor.RunBatch(requests);
  EXPECT_EQ(second[0]->stats.cache_hits, 1u);
  EXPECT_EQ(second[0]->stats.cache_misses, 0u);
  // And a solo Run of the same window hits the very same entry.
  QueryRequest solo;
  solo.predicate = PredicateKind::kExists;
  solo.window = window;
  const auto solo_result = executor.Run(solo).ValueOrDie();
  EXPECT_EQ(solo_result.stats.cache_hits, 1u);
}

TEST(ExecutorBatchTest, ForAllGroupsApartFromExistsOnSameWindow) {
  Database db = MakeDb(1, 12, 104);
  const QueryWindow window =
      QueryWindow::FromRanges(30, 4, 9, 2, 7).ValueOrDie();
  std::vector<QueryRequest> requests(2);
  requests[0].predicate = PredicateKind::kExists;
  requests[0].window = window;
  requests[1].predicate = PredicateKind::kForAll;
  requests[1].window = window;

  QueryExecutor executor(&db, {.num_threads = 1});
  const auto batch = executor.RunBatch(requests);
  // ∀ evaluates on the complemented region — a different backward pass, so
  // the two requests must not share a group.
  EXPECT_EQ(batch[0]->stats.batch_group_members, 1u);
  EXPECT_EQ(batch[1]->stats.batch_group_members, 1u);

  QueryExecutor solo(&db, {.num_threads = 1});
  for (size_t i = 0; i < 2; ++i) {
    ExpectSameResult(batch[i].value(), solo.Run(requests[i]).ValueOrDie());
  }
}

TEST(ExecutorBatchTest, PerMemberErrorsDoNotPoisonTheBatch) {
  Database db = MakeDb(1, 6, 105);
  const QueryWindow window =
      QueryWindow::FromRanges(30, 4, 9, 2, 7).ValueOrDie();
  std::vector<QueryRequest> requests(3);
  requests[0].predicate = PredicateKind::kExists;
  requests[0].window = window;
  requests[1].predicate = PredicateKind::kExists;
  requests[1].window = window;
  requests[1].object_filter = std::vector<ObjectId>{99};  // out of range
  requests[2].predicate = PredicateKind::kTopKExists;
  requests[2].window = window;
  requests[2].k = 3;

  QueryExecutor executor(&db, {.num_threads = 1});
  const auto batch = executor.RunBatch(requests);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_TRUE(batch[0].ok());
  ASSERT_FALSE(batch[1].ok());
  EXPECT_EQ(batch[1].status().code(), util::StatusCode::kInvalidArgument);
  ASSERT_TRUE(batch[2].ok());
  EXPECT_EQ(batch[2]->probabilities.size(), 3u);
  // The failed member never joined the group.
  EXPECT_EQ(batch[0]->stats.batch_group_members, 2u);
}

TEST(ExecutorBatchTest, CacheStatsFallToFirstSuccessfulMember) {
  // The first member of the group fails mid-evaluation (its filtered
  // object carries contradictory observations); the group's cache
  // counters must not vanish with it but land on the next member.
  Database db;
  const ChainId chain = db.AddChain(PaperChainVI());
  std::vector<Observation> contradictory;
  contradictory.push_back({0, sparse::ProbVector::Delta(3, 0)});
  contradictory.push_back({1, sparse::ProbVector::Delta(3, 0)});
  const ObjectId bad = db.AddObject(chain, contradictory).ValueOrDie();
  const ObjectId good =
      db.AddObjectAt(chain, sparse::ProbVector::Delta(3, 1)).ValueOrDie();

  const QueryWindow window =
      QueryWindow::FromRanges(3, 0, 1, 1, 2).ValueOrDie();
  std::vector<QueryRequest> requests(2);
  requests[0].predicate = PredicateKind::kExists;
  requests[0].window = window;
  requests[0].object_filter = std::vector<ObjectId>{bad};
  requests[1].predicate = PredicateKind::kExists;
  requests[1].window = window;
  requests[1].object_filter = std::vector<ObjectId>{good};
  requests[1].plan = PlanChoice::kQueryBased;  // forces one cache miss

  QueryExecutor executor(&db, {.num_threads = 1});
  const auto batch = executor.RunBatch(requests);
  ASSERT_FALSE(batch[0].ok());
  EXPECT_EQ(batch[0].status().code(), util::StatusCode::kInconsistent);
  ASSERT_TRUE(batch[1].ok());
  EXPECT_EQ(batch[1]->stats.cache_misses, 1u);
  EXPECT_EQ(batch[1]->stats.batch_group_members, 2u);
}

TEST(ExecutorBatchTest, BatchCostModelAmortizesSparseChainsToQueryBased) {
  // One object per chain: a solo run picks the object-based plan for every
  // chain (nothing to amortize), but a 16-request batch shares one
  // backward pass per chain, so PlanBatch flips the group to query-based.
  Database db = MakeDb(4, 4, 106);
  const QueryWindow window =
      QueryWindow::FromRanges(30, 6, 12, 3, 8).ValueOrDie();
  QueryRequest request;
  request.predicate = PredicateKind::kExists;
  request.window = window;

  QueryExecutor solo(&db, {.num_threads = 1});
  const auto solo_result = solo.Run(request).ValueOrDie();
  EXPECT_EQ(solo_result.stats.chains_object_based, 4u);

  std::vector<QueryRequest> requests(16, request);
  QueryExecutor batch_exec(&db, {.num_threads = 1});
  const auto batch = batch_exec.RunBatch(requests);
  for (const auto& member : batch) {
    ASSERT_TRUE(member.ok());
    EXPECT_EQ(member->stats.chains_query_based, 4u);
    EXPECT_EQ(member->stats.chains_object_based, 0u);
    // Plans differ from the solo run, so the answers agree to rounding
    // (both plans are exact) rather than bit-for-bit.
    ASSERT_EQ(member->probabilities.size(),
              solo_result.probabilities.size());
    for (size_t i = 0; i < solo_result.probabilities.size(); ++i) {
      EXPECT_NEAR(member->probabilities[i].probability,
                  solo_result.probabilities[i].probability, 1e-10);
    }
  }
}

TEST(ExecutorBatchTest, IntraGroupSplittingIsBitIdenticalToSequential) {
  // A single-window batch forms one group; on a multi-threaded executor
  // the scheduler splits each member's object range into
  // kStopCheckStride-object subtasks across the pool. Splitting must be
  // invisible in the results: bit-identical to the sequential executor
  // and to solo runs.
  Database db = MakeDb(1, 300, 109);
  const QueryWindow window =
      QueryWindow::FromRanges(30, 6, 12, 3, 8).ValueOrDie();
  QueryRequest request;
  request.predicate = PredicateKind::kExists;
  request.window = window;
  std::vector<QueryRequest> requests(8, request);

  QueryExecutor split_exec(&db, {.num_threads = 4});
  QueryExecutor seq_exec(&db, {.num_threads = 1});
  QueryExecutor solo_exec(&db, {.num_threads = 1});
  const auto split = split_exec.RunBatch(requests);
  const auto seq = seq_exec.RunBatch(requests);
  ASSERT_EQ(split.size(), 8u);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(split[i].ok());
    ASSERT_TRUE(seq[i].ok());
    ExpectSameResult(split[i].value(), seq[i].value());
    const auto solo = solo_exec.Run(requests[i]).ValueOrDie();
    ExpectSameResult(split[i].value(), solo);

    // 300 objects / 64-object stride = 5 subtasks per member, reported on
    // both executors (the sequential one simply runs them in order).
    EXPECT_EQ(split[i]->stats.group_subtasks, 5u);
    EXPECT_EQ(seq[i]->stats.group_subtasks, 5u);
    EXPECT_EQ(split[i]->stats.batch_group_members, 8u);
  }
  // Solo runs never go through the batch scheduler.
  EXPECT_EQ(solo_exec.last_run_stats().group_subtasks, 0u);
}

TEST(ExecutorBatchTest, IntraGroupSplittingCoversKTimesAndThreshold) {
  Database db = MakeDb(2, 150, 110);
  const QueryWindow window =
      QueryWindow::FromRanges(30, 4, 9, 2, 6).ValueOrDie();
  QueryRequest ktimes;
  ktimes.predicate = PredicateKind::kKTimes;
  ktimes.window = window;
  QueryRequest threshold;
  threshold.predicate = PredicateKind::kThresholdExists;
  threshold.window = window;
  threshold.tau = 0.2;
  std::vector<QueryRequest> requests{ktimes, threshold, ktimes, threshold};

  QueryExecutor split_exec(&db, {.num_threads = 3});
  QueryExecutor solo_exec(&db, {.num_threads = 1});
  const auto split = split_exec.RunBatch(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(split[i].ok()) << split[i].status().ToString();
    EXPECT_EQ(split[i]->stats.group_subtasks, 3u);  // ceil(150 / 64)
    ExpectSameResult(split[i].value(),
                     solo_exec.Run(requests[i]).ValueOrDie());
  }
}

TEST(ExecutorBatchTest, EmptySelectionMemberObservesLateCancellation) {
  // A member with zero objects produces no subtasks, so the assembly
  // phase polls its stop state once: cancellation arriving after the
  // submission check must still resolve the member with kCancelled, as
  // the sequential member loop did.
  Database db = MakeDb(1, 8, 111);
  const QueryWindow window =
      QueryWindow::FromRanges(30, 6, 12, 3, 8).ValueOrDie();
  QueryRequest empty;
  empty.predicate = PredicateKind::kExists;
  empty.window = window;
  empty.object_filter.emplace();  // evaluates nothing
  util::CancellationSource source;
  // Budget: the submission-time check passes, the assembly-phase poll
  // trips (deterministic: this request is polled nowhere else).
  source.RequestStopAfterPolls(1);
  empty.cancel = source.token();
  QueryRequest normal;
  normal.predicate = PredicateKind::kExists;
  normal.window = window;

  QueryExecutor executor(&db, {.num_threads = 1});
  std::vector<QueryRequest> requests{empty, normal};
  const auto results = executor.RunBatch(requests);
  EXPECT_EQ(results[0].status().code(), util::StatusCode::kCancelled);
  ASSERT_TRUE(results[1].ok());
  EXPECT_EQ(results[1]->probabilities.size(), 8u);
}

TEST(ExecutorBatchTest, RefreshBatchesRunEndToEnd) {
  Database db = MakeDb(2, 20, 107);
  const auto batches =
      workload::RefreshBatches(StreamConfig(), 4, 12, 5).ValueOrDie();
  ASSERT_EQ(batches.size(), 5u);

  QueryExecutor executor(&db, {.num_threads = 2, .cache_capacity = 8});
  uint64_t members_executed = 0;
  for (const auto& refresh : batches) {
    ASSERT_EQ(refresh.size(), 12u);
    const auto results = executor.RunBatch(refresh);
    for (const auto& member : results) {
      ASSERT_TRUE(member.ok());
      EXPECT_GE(member->stats.batch_group_members, 1u);
    }
    members_executed += results.size();
  }
  // Later refreshes re-issue the hot windows: the cross-batch cache must
  // have served some groups without rebuilding their passes.
  EXPECT_GT(executor.cache_stats().hits, 0u);
  EXPECT_EQ(members_executed, 60u);
}

}  // namespace
}  // namespace core
}  // namespace ustdb
