#include "core/threshold.h"

#include <gtest/gtest.h>

#include <map>

#include "core/executor.h"
#include "testing/random_models.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

/// Small shared-chain database plus a window for threshold experiments.
struct Fixture {
  Database db;
  QueryWindow window;
};

Fixture MakeSharedChainFixture(uint32_t n, uint32_t num_objects,
                               uint64_t seed) {
  util::Rng rng(seed);
  Fixture f{Database{},
            QueryWindow::FromRanges(n, n / 4, n / 2, 2, 6).ValueOrDie()};
  const ChainId c = f.db.AddChain(RandomChain(n, 3, &rng));
  for (uint32_t i = 0; i < num_objects; ++i) {
    (void)f.db.AddObjectAt(c, RandomDistribution(n, 3, &rng)).ValueOrDie();
  }
  return f;
}

/// Ground truth by per-object QB evaluation.
std::map<ObjectId, double> AllProbabilities(const Database& db,
                                            const QueryWindow& window) {
  std::map<ObjectId, double> out;
  std::map<ChainId, std::unique_ptr<QueryBasedEngine>> engines;
  for (const UncertainObject& obj : db.objects()) {
    auto& e = engines[obj.chain];
    if (!e) {
      e = std::make_unique<QueryBasedEngine>(&db.chain(obj.chain), window);
    }
    out[obj.id] = e->ExistsProbability(obj.initial_pdf());
  }
  return out;
}

TEST(ThresholdTest, QueryBasedMatchesBruteForce) {
  Fixture f = MakeSharedChainFixture(30, 50, 101);
  const auto truth = AllProbabilities(f.db, f.window);
  for (double tau : {0.05, 0.3, 0.7}) {
    const auto got =
        ThresholdExistsQueryBased(f.db, f.window, tau).ValueOrDie();
    std::vector<ObjectId> want_ids;
    for (const auto& [id, p] : truth) {
      if (p >= tau) want_ids.push_back(id);
    }
    ASSERT_EQ(got.size(), want_ids.size()) << "tau " << tau;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want_ids[i]);
      EXPECT_NEAR(got[i].probability, truth.at(got[i].id), 1e-10);
    }
  }
}

TEST(ThresholdTest, ObjectBasedAgreesWithQueryBased) {
  Fixture f = MakeSharedChainFixture(25, 40, 202);
  for (double tau : {0.1, 0.5, 0.9}) {
    const auto qb = ThresholdExistsQueryBased(f.db, f.window, tau).ValueOrDie();
    PruneStats stats;
    const auto ob =
        ThresholdExistsObjectBased(f.db, f.window, tau, &stats).ValueOrDie();
    ASSERT_EQ(qb.size(), ob.size()) << "tau " << tau;
    for (size_t i = 0; i < qb.size(); ++i) {
      EXPECT_EQ(qb[i].id, ob[i].id);
      EXPECT_NEAR(qb[i].probability, ob[i].probability, 1e-10);
    }
  }
}

TEST(ThresholdTest, ObjectBasedEarlyTerminationTriggers) {
  // With a generous window many objects decide early (true hit before
  // t_end or residual collapse).
  Fixture f = MakeSharedChainFixture(20, 60, 303);
  PruneStats stats;
  (void)ThresholdExistsObjectBased(f.db, f.window, 0.5, &stats).ValueOrDie();
  EXPECT_GT(stats.objects_decided_early, 0u);
}

/// The bound-pass accounting contract (see PruneStats): every evaluated
/// object was either dropped by the interval bounds or refined — exactly
/// once each — and every bounded cluster was either pruned wholesale or
/// refined. The pre-fold-in facade violated this: sure-hit objects were
/// neither counted decided nor refined, and object-based refinement could
/// double-count early-terminated objects.
void ExpectPruneAccounting(const PruneStats& stats, uint32_t num_objects) {
  EXPECT_EQ(stats.objects_decided_by_bounds + stats.objects_refined,
            num_objects);
  EXPECT_EQ(stats.clusters_pruned + stats.clusters_refined,
            stats.clusters_bounded);
  EXPECT_EQ(stats.clusters_bounded, stats.clusters_total);
  // Query-based refinement has no τ-early-termination, so refined objects
  // can never additionally count as early-decided.
  EXPECT_EQ(stats.objects_decided_early, 0u);
  EXPECT_EQ(stats.bound_fallbacks, 0u);
}

TEST(ThresholdTest, ClusteredMatchesBruteForceOnMultiChainDb) {
  workload::SyntheticConfig config;
  config.num_states = 30;
  config.num_objects = 60;
  config.state_spread = 3;
  config.max_step = 10;
  config.seed = 404;
  Database db =
      workload::GenerateMultiChainDatabase(config, /*num_chains=*/6,
                                           /*jitter=*/0.2)
          .ValueOrDie();
  auto window = QueryWindow::FromRanges(30, 8, 14, 2, 6).ValueOrDie();
  const auto truth = AllProbabilities(db, window);
  // All six chains are jittered copies of one base, so the similarity
  // registry folds them into a single cluster.
  ASSERT_EQ(db.chain_clusters().size(), 1u);

  for (double tau : {0.2, 0.6}) {
    PruneStats stats;
    const auto got =
        ThresholdExistsClustered(db, window, tau, /*num_clusters=*/3, &stats)
            .ValueOrDie();
    std::vector<ObjectId> want_ids;
    for (const auto& [id, p] : truth) {
      if (p >= tau) want_ids.push_back(id);
    }
    ASSERT_EQ(got.size(), want_ids.size()) << "tau " << tau;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want_ids[i]) << "tau " << tau;
      EXPECT_NEAR(got[i].probability, truth.at(got[i].id), 1e-10);
    }
    EXPECT_EQ(stats.clusters_total, 1u);
    ExpectPruneAccounting(stats, db.num_objects());
  }
}

TEST(ThresholdTest, ClusteredAccountingOnMixedChainClasses) {
  // Two dissimilar chain families (independent random chains never land
  // inside the clustering radius) plus multi-observation objects, which
  // bypass the bound pass and must still be counted refined exactly once.
  util::Rng rng(906);
  Database db;
  const ChainId a = db.AddChain(RandomChain(20, 3, &rng));
  const ChainId b = db.AddChain(RandomChain(20, 3, &rng));
  ASSERT_NE(db.cluster_of(a), db.cluster_of(b));
  for (uint32_t i = 0; i < 12; ++i) {
    (void)db.AddObjectAt(i % 2 == 0 ? a : b, RandomDistribution(20, 3, &rng))
        .ValueOrDie();
  }
  // Two multi-observation objects (second observation after the window).
  for (uint32_t i = 0; i < 2; ++i) {
    std::vector<Observation> obs;
    obs.push_back({0, RandomDistribution(20, 3, &rng)});
    obs.push_back({9, RandomDistribution(20, 3, &rng)});
    (void)db.AddObject(a, std::move(obs)).ValueOrDie();
  }
  auto window = QueryWindow::FromRanges(20, 5, 10, 2, 5).ValueOrDie();
  // Ground truth through the pipeline's kExists path, which routes the
  // multi-observation objects through the Section VI engine.
  QueryExecutor executor(&db, {.num_threads = 1});
  const QueryResult all =
      executor.Run({.predicate = PredicateKind::kExists, .window = window})
          .ValueOrDie();

  for (double tau : {0.15, 0.5, 0.9}) {
    PruneStats stats;
    const auto got =
        ThresholdExistsClustered(db, window, tau, 2, &stats).ValueOrDie();
    EXPECT_EQ(stats.clusters_total, 2u) << "tau " << tau;
    ExpectPruneAccounting(stats, db.num_objects());
    // Multi-observation objects can never be decided by the t=0 bounds.
    EXPECT_GE(stats.objects_refined, 2u);
    for (const auto& op : got) {
      EXPECT_GE(op.probability, tau);
    }
    size_t want = 0;
    for (const auto& op : all.probabilities) want += op.probability >= tau;
    EXPECT_EQ(got.size(), want) << "tau " << tau;
  }
}

TEST(ThresholdTest, ClusteredPrunesAtExtremeTaus) {
  // τ > 1 means nothing qualifies: every cluster's upper bound is <= 1 so
  // all objects are dropped wholesale.
  workload::SyntheticConfig config;
  config.num_states = 25;
  config.num_objects = 30;
  config.state_spread = 3;
  config.max_step = 8;
  config.seed = 505;
  Database db =
      workload::GenerateMultiChainDatabase(config, 4, 0.1).ValueOrDie();
  auto window = QueryWindow::FromRanges(25, 5, 9, 2, 5).ValueOrDie();
  PruneStats stats;
  const auto got =
      ThresholdExistsClustered(db, window, 1.1, 2, &stats).ValueOrDie();
  EXPECT_TRUE(got.empty());
  EXPECT_GT(stats.clusters_total, 0u);
  EXPECT_EQ(stats.clusters_pruned, stats.clusters_total);
  EXPECT_EQ(stats.objects_refined, 0u);
  ExpectPruneAccounting(stats, db.num_objects());
}

TEST(ThresholdTest, ClusteredRejectsZeroClusters) {
  Fixture f = MakeSharedChainFixture(10, 5, 1);
  EXPECT_FALSE(ThresholdExistsClustered(f.db, f.window, 0.5, 0).ok());
}

TEST(ThresholdTest, ClusteredFallsBackObservablyOnNonContiguousWindow) {
  // A time set with holes cannot be bounded over [t_begin, t_end]; the
  // forced bound plan must fall back to per-chain planning, report it,
  // and still answer exactly.
  Fixture f = MakeSharedChainFixture(25, 40, 808);
  const auto region = sparse::IndexSet::FromRange(25, 6, 12).ValueOrDie();
  const auto window =
      QueryWindow::Create(region, {2, 4, 7}).ValueOrDie();
  const auto truth = AllProbabilities(f.db, window);

  PruneStats stats;
  const auto got =
      ThresholdExistsClustered(f.db, window, 0.3, 2, &stats).ValueOrDie();
  EXPECT_EQ(stats.bound_fallbacks, 1u);
  EXPECT_EQ(stats.clusters_bounded, 0u);
  EXPECT_EQ(stats.objects_decided_by_bounds, 0u);
  std::vector<ObjectId> want_ids;
  for (const auto& [id, p] : truth) {
    if (p >= 0.3) want_ids.push_back(id);
  }
  ASSERT_EQ(got.size(), want_ids.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want_ids[i]);
    EXPECT_NEAR(got[i].probability, truth.at(got[i].id), 1e-10);
  }
}

TEST(TopKTest, ReturnsHighestProbabilityObjects) {
  Fixture f = MakeSharedChainFixture(30, 40, 606);
  const auto truth = AllProbabilities(f.db, f.window);
  const auto top5 = TopKExists(f.db, f.window, 5).ValueOrDie();
  ASSERT_EQ(top5.size(), 5u);
  // Descending order.
  for (size_t i = 1; i < top5.size(); ++i) {
    EXPECT_GE(top5[i - 1].probability, top5[i].probability);
  }
  // No excluded object beats the k-th.
  const double kth = top5.back().probability;
  std::set<ObjectId> returned;
  for (const auto& r : top5) returned.insert(r.id);
  for (const auto& [id, p] : truth) {
    if (!returned.count(id)) EXPECT_LE(p, kth + 1e-10);
  }
}

TEST(TopKTest, KLargerThanDatabaseReturnsEverything) {
  Fixture f = MakeSharedChainFixture(10, 7, 707);
  const auto all = TopKExists(f.db, f.window, 100).ValueOrDie();
  EXPECT_EQ(all.size(), 7u);
}

}  // namespace
}  // namespace core
}  // namespace ustdb
