#include "core/threshold.h"

#include <gtest/gtest.h>

#include <map>

#include "testing/random_models.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

/// Small shared-chain database plus a window for threshold experiments.
struct Fixture {
  Database db;
  QueryWindow window;
};

Fixture MakeSharedChainFixture(uint32_t n, uint32_t num_objects,
                               uint64_t seed) {
  util::Rng rng(seed);
  Fixture f{Database{},
            QueryWindow::FromRanges(n, n / 4, n / 2, 2, 6).ValueOrDie()};
  const ChainId c = f.db.AddChain(RandomChain(n, 3, &rng));
  for (uint32_t i = 0; i < num_objects; ++i) {
    (void)f.db.AddObjectAt(c, RandomDistribution(n, 3, &rng)).ValueOrDie();
  }
  return f;
}

/// Ground truth by per-object QB evaluation.
std::map<ObjectId, double> AllProbabilities(const Database& db,
                                            const QueryWindow& window) {
  std::map<ObjectId, double> out;
  std::map<ChainId, std::unique_ptr<QueryBasedEngine>> engines;
  for (const UncertainObject& obj : db.objects()) {
    auto& e = engines[obj.chain];
    if (!e) {
      e = std::make_unique<QueryBasedEngine>(&db.chain(obj.chain), window);
    }
    out[obj.id] = e->ExistsProbability(obj.initial_pdf());
  }
  return out;
}

TEST(ThresholdTest, QueryBasedMatchesBruteForce) {
  Fixture f = MakeSharedChainFixture(30, 50, 101);
  const auto truth = AllProbabilities(f.db, f.window);
  for (double tau : {0.05, 0.3, 0.7}) {
    const auto got =
        ThresholdExistsQueryBased(f.db, f.window, tau).ValueOrDie();
    std::vector<ObjectId> want_ids;
    for (const auto& [id, p] : truth) {
      if (p >= tau) want_ids.push_back(id);
    }
    ASSERT_EQ(got.size(), want_ids.size()) << "tau " << tau;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want_ids[i]);
      EXPECT_NEAR(got[i].probability, truth.at(got[i].id), 1e-10);
    }
  }
}

TEST(ThresholdTest, ObjectBasedAgreesWithQueryBased) {
  Fixture f = MakeSharedChainFixture(25, 40, 202);
  for (double tau : {0.1, 0.5, 0.9}) {
    const auto qb = ThresholdExistsQueryBased(f.db, f.window, tau).ValueOrDie();
    PruneStats stats;
    const auto ob =
        ThresholdExistsObjectBased(f.db, f.window, tau, &stats).ValueOrDie();
    ASSERT_EQ(qb.size(), ob.size()) << "tau " << tau;
    for (size_t i = 0; i < qb.size(); ++i) {
      EXPECT_EQ(qb[i].id, ob[i].id);
      EXPECT_NEAR(qb[i].probability, ob[i].probability, 1e-10);
    }
  }
}

TEST(ThresholdTest, ObjectBasedEarlyTerminationTriggers) {
  // With a generous window many objects decide early (true hit before
  // t_end or residual collapse).
  Fixture f = MakeSharedChainFixture(20, 60, 303);
  PruneStats stats;
  (void)ThresholdExistsObjectBased(f.db, f.window, 0.5, &stats).ValueOrDie();
  EXPECT_GT(stats.objects_decided_early, 0u);
}

TEST(ThresholdTest, ClusteredMatchesBruteForceOnMultiChainDb) {
  workload::SyntheticConfig config;
  config.num_states = 30;
  config.num_objects = 60;
  config.state_spread = 3;
  config.max_step = 10;
  config.seed = 404;
  Database db =
      workload::GenerateMultiChainDatabase(config, /*num_chains=*/6,
                                           /*jitter=*/0.2)
          .ValueOrDie();
  auto window = QueryWindow::FromRanges(30, 8, 14, 2, 6).ValueOrDie();
  const auto truth = AllProbabilities(db, window);

  for (double tau : {0.2, 0.6}) {
    PruneStats stats;
    const auto got =
        ThresholdExistsClustered(db, window, tau, /*num_clusters=*/3, &stats)
            .ValueOrDie();
    std::vector<ObjectId> want_ids;
    for (const auto& [id, p] : truth) {
      if (p >= tau) want_ids.push_back(id);
    }
    ASSERT_EQ(got.size(), want_ids.size()) << "tau " << tau;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want_ids[i]) << "tau " << tau;
      EXPECT_NEAR(got[i].probability, truth.at(got[i].id), 1e-10);
    }
    EXPECT_EQ(stats.clusters_total, 3u);
  }
}

TEST(ThresholdTest, ClusteredPrunesAtExtremeTaus) {
  // τ > 1 means nothing qualifies: every cluster's upper bound is <= 1 so
  // all objects are dropped wholesale.
  workload::SyntheticConfig config;
  config.num_states = 25;
  config.num_objects = 30;
  config.state_spread = 3;
  config.max_step = 8;
  config.seed = 505;
  Database db =
      workload::GenerateMultiChainDatabase(config, 4, 0.1).ValueOrDie();
  auto window = QueryWindow::FromRanges(25, 5, 9, 2, 5).ValueOrDie();
  PruneStats stats;
  const auto got =
      ThresholdExistsClustered(db, window, 1.1, 2, &stats).ValueOrDie();
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(stats.clusters_pruned, stats.clusters_total);
  EXPECT_EQ(stats.objects_refined, 0u);
}

TEST(ThresholdTest, ClusteredRejectsZeroClusters) {
  Fixture f = MakeSharedChainFixture(10, 5, 1);
  EXPECT_FALSE(ThresholdExistsClustered(f.db, f.window, 0.5, 0).ok());
}

TEST(TopKTest, ReturnsHighestProbabilityObjects) {
  Fixture f = MakeSharedChainFixture(30, 40, 606);
  const auto truth = AllProbabilities(f.db, f.window);
  const auto top5 = TopKExists(f.db, f.window, 5).ValueOrDie();
  ASSERT_EQ(top5.size(), 5u);
  // Descending order.
  for (size_t i = 1; i < top5.size(); ++i) {
    EXPECT_GE(top5[i - 1].probability, top5[i].probability);
  }
  // No excluded object beats the k-th.
  const double kth = top5.back().probability;
  std::set<ObjectId> returned;
  for (const auto& r : top5) returned.insert(r.id);
  for (const auto& [id, p] : truth) {
    if (!returned.count(id)) EXPECT_LE(p, kth + 1e-10);
  }
}

TEST(TopKTest, KLargerThanDatabaseReturnsEverything) {
  Fixture f = MakeSharedChainFixture(10, 7, 707);
  const auto all = TopKExists(f.db, f.window, 100).ValueOrDie();
  EXPECT_EQ(all.size(), 7u);
}

}  // namespace
}  // namespace core
}  // namespace ustdb
