#include "core/smoothing.h"

#include <gtest/gtest.h>

#include "exact/possible_worlds.h"
#include "testing/random_models.h"
#include "util/rng.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::PaperChainVI;
using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

/// Reference smoothing by enumeration: the posterior marginal at time t is
/// the observation-weighted mass of worlds passing through each state.
std::vector<std::vector<double>> SmoothingByEnumeration(
    const markov::MarkovChain& chain, const std::vector<Observation>& obs,
    Timestamp t_horizon) {
  const Timestamp t_start = obs.front().time;
  const Timestamp t_last = std::max(t_horizon, obs.back().time);
  sparse::ProbVector first = obs.front().pdf;
  EXPECT_TRUE(first.Normalize().ok());
  const auto worlds =
      exact::EnumerateWorlds(chain, first, t_last - t_start).ValueOrDie();

  std::vector<std::vector<double>> marginals(
      t_horizon - t_start + 1, std::vector<double>(chain.num_states(), 0.0));
  double total = 0.0;
  for (const auto& w : worlds) {
    double weight = w.probability;
    for (size_t i = 1; i < obs.size(); ++i) {
      weight *= obs[i].pdf.Get(w.path[obs[i].time - t_start]);
    }
    if (weight == 0.0) continue;
    total += weight;
    for (size_t i = 0; i < marginals.size(); ++i) {
      marginals[i][w.path[i]] += weight;
    }
  }
  for (auto& m : marginals) {
    for (double& x : m) x /= total;
  }
  return marginals;
}

TEST(SmoothingTest, PaperSectionVIExamplePosteriorChain) {
  // Observations s1@t0 and s2@t3 on the Section VI chain: the only
  // consistent world is s1,s3,s3,s2, so every smoothed marginal is a point
  // mass along that path.
  markov::MarkovChain chain = PaperChainVI();
  std::vector<Observation> obs;
  obs.push_back({0, sparse::ProbVector::Delta(3, 0)});
  obs.push_back({3, sparse::ProbVector::Delta(3, 1)});
  const auto r = SmoothedMarginals(chain, obs, 3).ValueOrDie();
  ASSERT_EQ(r.marginals.size(), 4u);
  EXPECT_NEAR(r.marginals[0].Get(0), 1.0, 1e-12);
  EXPECT_NEAR(r.marginals[1].Get(2), 1.0, 1e-12);
  EXPECT_NEAR(r.marginals[2].Get(2), 1.0, 1e-12);
  EXPECT_NEAR(r.marginals[3].Get(1), 1.0, 1e-12);
}

TEST(SmoothingTest, MatchesEnumerationOnRandomModels) {
  util::Rng rng(211);
  for (int round = 0; round < 10; ++round) {
    markov::MarkovChain chain = RandomChain(5, 3, &rng);
    std::vector<Observation> obs;
    obs.push_back({0, RandomDistribution(5, 2, &rng)});
    obs.push_back({3, RandomDistribution(5, 4, &rng)});
    obs.push_back({6, RandomDistribution(5, 3, &rng)});

    const auto got = SmoothedMarginals(chain, obs, 6);
    ASSERT_TRUE(got.ok()) << "round " << round;
    const auto want = SmoothingByEnumeration(chain, obs, 6);
    ASSERT_EQ(got->marginals.size(), want.size());
    for (size_t t = 0; t < want.size(); ++t) {
      for (uint32_t s = 0; s < 5; ++s) {
        EXPECT_NEAR(got->marginals[t].Get(s), want[t][s], 1e-9)
            << "round " << round << " t " << t << " s " << s;
      }
    }
  }
}

TEST(SmoothingTest, SingleObservationReducesToForwardPropagation) {
  util::Rng rng(223);
  markov::MarkovChain chain = RandomChain(8, 3, &rng);
  const sparse::ProbVector initial = RandomDistribution(8, 3, &rng);
  std::vector<Observation> obs;
  obs.push_back({0, initial});
  const auto r = SmoothedMarginals(chain, obs, 5).ValueOrDie();
  ASSERT_EQ(r.marginals.size(), 6u);
  for (uint32_t t = 0; t <= 5; ++t) {
    const sparse::ProbVector forward = chain.Distribution(initial, t);
    EXPECT_NEAR(r.marginals[t].MaxAbsDiff(forward), 0.0, 1e-10) << "t " << t;
  }
}

TEST(SmoothingTest, MarginalsAtObservationTimesRespectSupport) {
  util::Rng rng(227);
  markov::MarkovChain chain = RandomChain(6, 3, &rng);
  std::vector<Observation> obs;
  obs.push_back({0, RandomDistribution(6, 2, &rng)});
  auto narrow = sparse::ProbVector::FromPairs(6, {{2, 0.5}, {4, 0.5}})
                    .ValueOrDie();
  obs.push_back({4, narrow});
  const auto r = SmoothedMarginals(chain, obs, 4).ValueOrDie();
  for (uint32_t s = 0; s < 6; ++s) {
    if (s != 2 && s != 4) {
      EXPECT_NEAR(r.marginals[4].Get(s), 0.0, 1e-12);
    }
  }
}

TEST(SmoothingTest, HorizonBeyondLastObservationExtrapolates) {
  markov::MarkovChain chain = PaperChainVI();
  std::vector<Observation> obs;
  obs.push_back({0, sparse::ProbVector::Delta(3, 0)});
  const auto r = SmoothedMarginals(chain, obs, 2).ValueOrDie();
  ASSERT_EQ(r.marginals.size(), 3u);
  // Pure extrapolation: equals forward marginals.
  EXPECT_NEAR(r.marginals[2].MaxAbsDiff(
                  chain.Distribution(sparse::ProbVector::Delta(3, 0), 2)),
              0.0, 1e-12);
}

TEST(SmoothingTest, ValidationAndContradictions) {
  markov::MarkovChain chain = PaperChainVI();
  EXPECT_FALSE(SmoothedMarginals(chain, {}, 3).ok());

  std::vector<Observation> late;
  late.push_back({5, sparse::ProbVector::Delta(3, 0)});
  EXPECT_FALSE(SmoothedMarginals(chain, late, 3).ok());  // horizon < t0

  auto cycle = markov::MarkovChain::FromDense(
                   {{0, 1, 0}, {0, 0, 1}, {1, 0, 0}})
                   .ValueOrDie();
  std::vector<Observation> impossible;
  impossible.push_back({0, sparse::ProbVector::Delta(3, 0)});
  impossible.push_back({1, sparse::ProbVector::Delta(3, 0)});
  const auto r = SmoothedMarginals(cycle, impossible, 1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInconsistent);
}

TEST(ViterbiTest, PaperSectionVIExampleDecodesTheOnlyWorld) {
  markov::MarkovChain chain = PaperChainVI();
  std::vector<Observation> obs;
  obs.push_back({0, sparse::ProbVector::Delta(3, 0)});
  obs.push_back({3, sparse::ProbVector::Delta(3, 1)});
  const auto r = MostLikelyTrajectory(chain, obs, 3).ValueOrDie();
  EXPECT_EQ(r.path, (std::vector<StateIndex>{0, 2, 2, 1}));
  // It is the only consistent world, so its posterior is 1.
  EXPECT_NEAR(r.posterior_probability, 1.0, 1e-9);
}

TEST(ViterbiTest, MatchesEnumerationArgmax) {
  util::Rng rng(229);
  for (int round = 0; round < 10; ++round) {
    markov::MarkovChain chain = RandomChain(5, 3, &rng);
    std::vector<Observation> obs;
    obs.push_back({0, RandomDistribution(5, 2, &rng)});
    obs.push_back({4, RandomDistribution(5, 4, &rng)});

    const auto got = MostLikelyTrajectory(chain, obs, 4);
    ASSERT_TRUE(got.ok()) << "round " << round;

    // Enumerate and find the highest-weight world.
    sparse::ProbVector first = obs.front().pdf;
    ASSERT_TRUE(first.Normalize().ok());
    const auto worlds = exact::EnumerateWorlds(chain, first, 4).ValueOrDie();
    double best = -1.0;
    double total = 0.0;
    std::vector<StateIndex> best_path;
    for (const auto& w : worlds) {
      const double weight = w.probability * obs[1].pdf.Get(w.path[4]);
      total += weight;
      if (weight > best) {
        best = weight;
        best_path = w.path;
      }
    }
    EXPECT_NEAR(got->posterior_probability, best / total, 1e-9)
        << "round " << round;
    // The decoded path must achieve the maximal weight (there may be ties).
    double got_weight = 1.0;
    {
      sparse::ProbVector f = obs.front().pdf;
      ASSERT_TRUE(f.Normalize().ok());
      got_weight = f.Get(got->path[0]);
      for (size_t i = 0; i + 1 < got->path.size(); ++i) {
        got_weight *= chain.matrix().Get(got->path[i], got->path[i + 1]);
      }
      got_weight *= obs[1].pdf.Get(got->path[4]);
    }
    EXPECT_NEAR(got_weight, best, 1e-12) << "round " << round;
  }
}

TEST(ViterbiTest, DeterministicChainFollowsTheCycle) {
  auto cycle = markov::MarkovChain::FromDense(
                   {{0, 1, 0}, {0, 0, 1}, {1, 0, 0}})
                   .ValueOrDie();
  std::vector<Observation> obs;
  obs.push_back({0, sparse::ProbVector::Delta(3, 1)});
  const auto r = MostLikelyTrajectory(cycle, obs, 4).ValueOrDie();
  EXPECT_EQ(r.path, (std::vector<StateIndex>{1, 2, 0, 1, 2}));
  EXPECT_NEAR(r.posterior_probability, 1.0, 1e-12);
}

TEST(ViterbiTest, ContradictionDetected) {
  auto cycle = markov::MarkovChain::FromDense(
                   {{0, 1, 0}, {0, 0, 1}, {1, 0, 0}})
                   .ValueOrDie();
  std::vector<Observation> obs;
  obs.push_back({0, sparse::ProbVector::Delta(3, 0)});
  obs.push_back({1, sparse::ProbVector::Delta(3, 0)});
  const auto r = MostLikelyTrajectory(cycle, obs, 1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInconsistent);
}

}  // namespace
}  // namespace core
}  // namespace ustdb
