#include "core/executor.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/parallel_processor.h"
#include "core/processor.h"
#include "core/threshold.h"
#include "testing/random_models.h"
#include "util/rng.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::PaperChainV;
using ::ustdb::testing::PaperChainVI;
using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

Database MakeDb(uint32_t num_chains, uint32_t num_objects, uint64_t seed,
                uint32_t num_states = 25) {
  util::Rng rng(seed);
  Database db;
  std::vector<ChainId> chains;
  for (uint32_t c = 0; c < num_chains; ++c) {
    chains.push_back(db.AddChain(RandomChain(num_states, 3, &rng)));
  }
  for (uint32_t i = 0; i < num_objects; ++i) {
    (void)db.AddObjectAt(chains[i % num_chains],
                         RandomDistribution(num_states, 3, &rng))
        .ValueOrDie();
  }
  return db;
}

QueryWindow Window(uint32_t num_states = 25) {
  return QueryWindow::FromRanges(num_states, 6, 12, 3, 8).ValueOrDie();
}

TEST(ExecutorTest, ExistsOnPaperExample) {
  Database db;
  const ChainId c = db.AddChain(PaperChainV());
  (void)db.AddObjectAt(c, sparse::ProbVector::Delta(3, 1)).ValueOrDie();
  QueryExecutor executor(&db);
  const auto result =
      executor
          .Run({.predicate = PredicateKind::kExists,
                .window = QueryWindow::FromRanges(3, 0, 1, 2, 3).ValueOrDie()})
          .ValueOrDie();
  ASSERT_EQ(result.probabilities.size(), 1u);
  EXPECT_NEAR(result.probabilities[0].probability, 0.864, 1e-12);
}

TEST(ExecutorTest, AllPredicatesAgreeBetweenPlans) {
  Database db = MakeDb(3, 30, 901);
  QueryExecutor executor(&db);
  const QueryWindow window = Window();

  for (PredicateKind predicate :
       {PredicateKind::kExists, PredicateKind::kForAll,
        PredicateKind::kThresholdExists, PredicateKind::kTopKExists}) {
    QueryRequest request;
    request.predicate = predicate;
    request.window = window;
    request.tau = 0.3;
    request.k = 10;

    request.plan = PlanChoice::kObjectBased;
    const auto ob = executor.Run(request).ValueOrDie();
    request.plan = PlanChoice::kQueryBased;
    const auto qb = executor.Run(request).ValueOrDie();

    ASSERT_EQ(ob.probabilities.size(), qb.probabilities.size())
        << "predicate " << static_cast<int>(predicate);
    for (size_t i = 0; i < ob.probabilities.size(); ++i) {
      EXPECT_EQ(ob.probabilities[i].id, qb.probabilities[i].id);
      EXPECT_NEAR(ob.probabilities[i].probability,
                  qb.probabilities[i].probability, 1e-10)
          << "predicate " << static_cast<int>(predicate) << " entry " << i;
    }
  }
}

TEST(ExecutorTest, MatchesLegacyEntryPoints) {
  Database db = MakeDb(2, 25, 902);
  QueryExecutor executor(&db);
  const QueryWindow window = Window();
  QueryProcessor processor(&db);

  const auto exists =
      executor.Run({.predicate = PredicateKind::kExists, .window = window})
          .ValueOrDie();
  const auto legacy_exists = processor.Exists(window).ValueOrDie();
  ASSERT_EQ(exists.probabilities.size(), legacy_exists.size());
  for (size_t i = 0; i < legacy_exists.size(); ++i) {
    EXPECT_EQ(exists.probabilities[i].id, legacy_exists[i].id);
    EXPECT_NEAR(exists.probabilities[i].probability,
                legacy_exists[i].probability, 1e-12);
  }

  const auto forall =
      executor.Run({.predicate = PredicateKind::kForAll, .window = window})
          .ValueOrDie();
  const auto legacy_forall = processor.ForAll(window).ValueOrDie();
  for (size_t i = 0; i < legacy_forall.size(); ++i) {
    EXPECT_NEAR(forall.probabilities[i].probability,
                legacy_forall[i].probability, 1e-12);
  }

  const auto threshold = executor
                             .Run({.predicate = PredicateKind::kThresholdExists,
                                   .window = window,
                                   .tau = 0.3})
                             .ValueOrDie();
  const auto legacy_threshold =
      ThresholdExistsQueryBased(db, window, 0.3).ValueOrDie();
  ASSERT_EQ(threshold.probabilities.size(), legacy_threshold.size());
  for (size_t i = 0; i < legacy_threshold.size(); ++i) {
    EXPECT_EQ(threshold.probabilities[i].id, legacy_threshold[i].id);
  }

  const auto topk =
      executor
          .Run({.predicate = PredicateKind::kTopKExists, .window = window,
                .k = 5})
          .ValueOrDie();
  const auto legacy_topk = TopKExists(db, window, 5).ValueOrDie();
  ASSERT_EQ(topk.probabilities.size(), legacy_topk.size());
  for (size_t i = 0; i < legacy_topk.size(); ++i) {
    EXPECT_EQ(topk.probabilities[i].id, legacy_topk[i].id);
    EXPECT_NEAR(topk.probabilities[i].probability,
                legacy_topk[i].probability, 1e-12);
  }

  const auto ktimes =
      executor.Run({.predicate = PredicateKind::kKTimes, .window = window})
          .ValueOrDie();
  const auto legacy_ktimes = processor.KTimes(window).ValueOrDie();
  ASSERT_EQ(ktimes.distributions.size(), legacy_ktimes.size());
  for (size_t i = 0; i < legacy_ktimes.size(); ++i) {
    EXPECT_EQ(ktimes.distributions[i].distribution,
              legacy_ktimes[i].distribution);
  }
}

TEST(ExecutorTest, ParallelRunsAreBitIdenticalToSequential) {
  Database db = MakeDb(3, 40, 903);
  const QueryWindow window = Window();
  QueryExecutor sequential(&db, {.num_threads = 1});

  for (PredicateKind predicate :
       {PredicateKind::kExists, PredicateKind::kForAll,
        PredicateKind::kThresholdExists, PredicateKind::kTopKExists}) {
    QueryRequest request;
    request.predicate = predicate;
    request.window = window;
    request.tau = 0.3;
    request.k = 7;
    const auto want = sequential.Run(request).ValueOrDie();
    for (unsigned threads : {2u, 4u}) {
      QueryExecutor parallel(&db, {.num_threads = threads});
      const auto got = parallel.Run(request).ValueOrDie();
      ASSERT_EQ(got.probabilities.size(), want.probabilities.size());
      for (size_t i = 0; i < want.probabilities.size(); ++i) {
        EXPECT_EQ(got.probabilities[i].id, want.probabilities[i].id);
        EXPECT_DOUBLE_EQ(got.probabilities[i].probability,
                         want.probabilities[i].probability)
            << "predicate " << static_cast<int>(predicate) << " threads "
            << threads;
      }
    }
  }
}

TEST(ExecutorTest, ParallelKTimesMatchesSequential) {
  Database db = MakeDb(2, 20, 904, 12);
  QueryRequest request;
  request.predicate = PredicateKind::kKTimes;
  request.window = QueryWindow::FromRanges(12, 3, 6, 1, 4).ValueOrDie();
  QueryExecutor sequential(&db, {.num_threads = 1});
  QueryExecutor parallel(&db, {.num_threads = 4});
  const auto want = sequential.Run(request).ValueOrDie();
  const auto got = parallel.Run(request).ValueOrDie();
  ASSERT_EQ(got.distributions.size(), want.distributions.size());
  for (size_t i = 0; i < want.distributions.size(); ++i) {
    EXPECT_EQ(got.distributions[i].id, want.distributions[i].id);
    EXPECT_EQ(got.distributions[i].distribution,
              want.distributions[i].distribution);
  }
}

TEST(ExecutorTest, MultiObservationObjectsRoutedAutomatically) {
  Database db;
  const ChainId c = db.AddChain(PaperChainVI());
  std::vector<Observation> obs;
  obs.push_back({0, sparse::ProbVector::Delta(3, 0)});
  obs.push_back({3, sparse::ProbVector::Delta(3, 1)});
  (void)db.AddObject(c, obs).ValueOrDie();
  (void)db.AddObjectAt(c, sparse::ProbVector::Delta(3, 1)).ValueOrDie();

  QueryExecutor executor(&db, {.num_threads = 2});
  const auto window = QueryWindow::FromRanges(3, 0, 1, 1, 2).ValueOrDie();
  const auto result =
      executor.Run({.predicate = PredicateKind::kExists, .window = window})
          .ValueOrDie();
  ASSERT_EQ(result.probabilities.size(), 2u);
  EXPECT_NEAR(result.probabilities[0].probability, 0.0, 1e-12);
  EXPECT_GT(result.probabilities[1].probability, 0.0);
  EXPECT_EQ(result.stats.objects_multi_observation, 1u);
  EXPECT_EQ(result.stats.objects_evaluated, 1u);

  // PSTkQ stays outside the paper's multi-observation framework.
  const auto ktimes =
      executor.Run({.predicate = PredicateKind::kKTimes, .window = window});
  ASSERT_FALSE(ktimes.ok());
  EXPECT_EQ(ktimes.status().code(), util::StatusCode::kUnimplemented);
}

TEST(ExecutorTest, ObjectFilterRestrictsEvaluation) {
  Database db = MakeDb(2, 10, 905);
  QueryExecutor executor(&db);
  const QueryWindow window = Window();

  const auto full =
      executor.Run({.predicate = PredicateKind::kExists, .window = window})
          .ValueOrDie();
  QueryRequest filtered;
  filtered.window = window;
  filtered.object_filter = std::vector<ObjectId>{7, 2};
  const auto subset = executor.Run(filtered).ValueOrDie();
  ASSERT_EQ(subset.probabilities.size(), 2u);
  EXPECT_EQ(subset.probabilities[0].id, 7u);  // request order preserved
  EXPECT_EQ(subset.probabilities[1].id, 2u);
  EXPECT_DOUBLE_EQ(subset.probabilities[0].probability,
                   full.probabilities[7].probability);
  EXPECT_DOUBLE_EQ(subset.probabilities[1].probability,
                   full.probabilities[2].probability);

  // An empty filter evaluates nothing (distinct from nullopt = everything).
  QueryRequest none;
  none.window = window;
  none.object_filter = std::vector<ObjectId>{};
  EXPECT_TRUE(executor.Run(none).ValueOrDie().probabilities.empty());

  QueryRequest invalid;
  invalid.window = window;
  invalid.object_filter = std::vector<ObjectId>{99};
  const auto r = executor.Run(invalid);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(ExecutorTest, AutoPlanFollowsDatabaseShape) {
  const QueryWindow window = Window();
  // One object per chain: every chain class should run object-based.
  Database sparse_db = MakeDb(5, 5, 906);
  QueryExecutor sparse_exec(&sparse_db);
  const auto sparse_result =
      sparse_exec.Run({.predicate = PredicateKind::kExists, .window = window})
          .ValueOrDie();
  EXPECT_EQ(sparse_result.stats.chains_object_based, 5u);
  EXPECT_EQ(sparse_result.stats.chains_query_based, 0u);

  // Many objects on one chain: the backward pass amortizes, QB wins.
  Database dense_db = MakeDb(1, 50, 907);
  QueryExecutor dense_exec(&dense_db);
  const auto dense_result =
      dense_exec.Run({.predicate = PredicateKind::kExists, .window = window})
          .ValueOrDie();
  EXPECT_EQ(dense_result.stats.chains_object_based, 0u);
  EXPECT_EQ(dense_result.stats.chains_query_based, 1u);
}

TEST(ExecutorTest, EngineCacheServesRepeatedWindows) {
  Database db = MakeDb(1, 20, 908);
  QueryExecutor executor(&db, {.num_threads = 1, .cache_capacity = 4});
  QueryRequest request;
  request.window = Window();
  request.plan = PlanChoice::kQueryBased;

  const auto first = executor.Run(request).ValueOrDie();
  EXPECT_EQ(first.stats.cache_hits, 0u);
  EXPECT_EQ(first.stats.cache_misses, 1u);

  const auto second = executor.Run(request).ValueOrDie();
  EXPECT_EQ(second.stats.cache_hits, 1u);
  EXPECT_EQ(second.stats.cache_misses, 0u);
  for (size_t i = 0; i < first.probabilities.size(); ++i) {
    EXPECT_DOUBLE_EQ(second.probabilities[i].probability,
                     first.probabilities[i].probability);
  }
  EXPECT_EQ(executor.cache_stats().hits, 1u);
  EXPECT_EQ(executor.cache_stats().misses, 1u);
}

TEST(ExecutorTest, EngineCacheEvictsUnderPressure) {
  Database db = MakeDb(1, 10, 909);
  QueryExecutor executor(&db, {.num_threads = 1, .cache_capacity = 1});
  QueryRequest a;
  a.window = QueryWindow::FromRanges(25, 2, 6, 2, 5).ValueOrDie();
  a.plan = PlanChoice::kQueryBased;
  QueryRequest b = a;
  b.window = QueryWindow::FromRanges(25, 10, 14, 2, 5).ValueOrDie();

  (void)executor.Run(a).ValueOrDie();
  (void)executor.Run(b).ValueOrDie();  // evicts a's engine
  (void)executor.Run(a).ValueOrDie();  // rebuilds
  EXPECT_EQ(executor.cache_stats().hits, 0u);
  EXPECT_EQ(executor.cache_stats().misses, 3u);
  EXPECT_EQ(executor.cache_stats().evictions, 2u);
}

TEST(ExecutorTest, CacheDegradesGracefullyWhenChainsExceedCapacity) {
  // 3 QB chain classes but room for 1 engine: the executor must keep
  // caching one chain per run (not disable caching wholesale) and still
  // answer correctly for the uncached overflow chains.
  Database db = MakeDb(3, 30, 913);
  QueryExecutor small(&db, {.num_threads = 1, .cache_capacity = 1});
  QueryRequest request;
  request.window = Window();
  request.plan = PlanChoice::kQueryBased;

  const auto first = small.Run(request).ValueOrDie();
  EXPECT_EQ(first.stats.chains_query_based, 3u);
  EXPECT_EQ(first.stats.cache_misses, 1u);  // one chain cached, two owned
  const auto second = small.Run(request).ValueOrDie();
  EXPECT_EQ(second.stats.cache_hits, 1u);  // the cached chain is reused

  QueryExecutor big(&db, {.num_threads = 1, .cache_capacity = 8});
  const auto want = big.Run(request).ValueOrDie();
  ASSERT_EQ(first.probabilities.size(), want.probabilities.size());
  for (size_t i = 0; i < want.probabilities.size(); ++i) {
    EXPECT_DOUBLE_EQ(first.probabilities[i].probability,
                     want.probabilities[i].probability);
  }
}

TEST(ExecutorTest, CacheBypassedForExplicitModeStaysCorrect) {
  Database db = MakeDb(1, 8, 910);
  QueryExecutor executor(&db, {.num_threads = 1});
  QueryRequest request;
  request.window = Window();
  request.plan = PlanChoice::kQueryBased;
  const auto implicit = executor.Run(request).ValueOrDie();
  request.matrix_mode = MatrixMode::kExplicit;
  const auto explicit_run = executor.Run(request).ValueOrDie();
  // Explicit runs never consult the cache (entries are implicit-mode).
  EXPECT_EQ(explicit_run.stats.cache_hits, 0u);
  EXPECT_EQ(explicit_run.stats.cache_misses, 0u);
  for (size_t i = 0; i < implicit.probabilities.size(); ++i) {
    EXPECT_NEAR(explicit_run.probabilities[i].probability,
                implicit.probabilities[i].probability, 1e-10);
  }
}

TEST(ExecutorTest, ThresholdEarlyTerminationReported) {
  Database db = MakeDb(1, 60, 911, 20);
  QueryExecutor executor(&db);
  QueryRequest request;
  request.predicate = PredicateKind::kThresholdExists;
  request.window = QueryWindow::FromRanges(20, 5, 10, 2, 6).ValueOrDie();
  request.tau = 0.5;
  request.plan = PlanChoice::kObjectBased;
  const auto result = executor.Run(request).ValueOrDie();
  EXPECT_GT(result.stats.prune.objects_decided_early, 0u);
}

TEST(ExecutorTest, EmptyDatabase) {
  Database db;
  (void)db.AddChain(PaperChainV());
  QueryExecutor executor(&db);
  const auto window = QueryWindow::FromRanges(3, 0, 1, 2, 3).ValueOrDie();
  for (PredicateKind predicate :
       {PredicateKind::kExists, PredicateKind::kForAll,
        PredicateKind::kThresholdExists, PredicateKind::kTopKExists}) {
    QueryRequest request;
    request.predicate = predicate;
    request.window = window;
    EXPECT_TRUE(executor.Run(request).ValueOrDie().probabilities.empty());
  }
  QueryRequest ktimes;
  ktimes.predicate = PredicateKind::kKTimes;
  ktimes.window = window;
  EXPECT_TRUE(executor.Run(ktimes).ValueOrDie().distributions.empty());
}

TEST(ExecutorTest, KTimesDistributionsSumToOne) {
  Database db = MakeDb(1, 8, 912, 12);
  QueryExecutor executor(&db);
  QueryRequest request;
  request.predicate = PredicateKind::kKTimes;
  request.window = QueryWindow::FromRanges(12, 3, 6, 1, 4).ValueOrDie();
  const auto result = executor.Run(request).ValueOrDie();
  ASSERT_EQ(result.distributions.size(), 8u);
  for (const ObjectKTimes& r : result.distributions) {
    ASSERT_EQ(r.distribution.size(), request.window.num_times() + 1);
    const double total =
        std::accumulate(r.distribution.begin(), r.distribution.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace core
}  // namespace ustdb
