#include "core/congestion.h"

#include <gtest/gtest.h>

#include "testing/random_models.h"
#include "util/rng.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::PaperChainV;
using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

TEST(CongestionTest, DeterministicCycleCountsExactly) {
  // Cycle 0->1->2->0; two objects starting at 0 and 1.
  auto cycle = markov::MarkovChain::FromDense(
                   {{0, 1, 0}, {0, 0, 1}, {1, 0, 0}})
                   .ValueOrDie();
  Database db;
  const ChainId c = db.AddChain(std::move(cycle));
  (void)db.AddObjectAt(c, sparse::ProbVector::Delta(3, 0)).ValueOrDie();
  (void)db.AddObjectAt(c, sparse::ProbVector::Delta(3, 1)).ValueOrDie();

  const auto field = ExpectedCounts(db, 3).ValueOrDie();
  // t=0: one object each at 0 and 1.
  EXPECT_DOUBLE_EQ(field.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(field.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(field.At(0, 2), 0.0);
  // t=1: objects at 1 and 2.
  EXPECT_DOUBLE_EQ(field.At(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(field.At(1, 2), 1.0);
  // t=3: back to the start configuration.
  EXPECT_DOUBLE_EQ(field.At(3, 0), 1.0);
  EXPECT_DOUBLE_EQ(field.At(3, 1), 1.0);
}

TEST(CongestionTest, TotalMassEqualsObjectCountAtEveryTime) {
  util::Rng rng(301);
  Database db;
  const ChainId c = db.AddChain(RandomChain(15, 3, &rng));
  for (int i = 0; i < 12; ++i) {
    (void)db.AddObjectAt(c, RandomDistribution(15, 3, &rng)).ValueOrDie();
  }
  const auto field = ExpectedCounts(db, 8).ValueOrDie();
  for (Timestamp t = 0; t <= 8; ++t) {
    EXPECT_NEAR(field.RegionCount(t, sparse::IndexSet::All(15)), 12.0, 1e-9)
        << "t " << t;
  }
}

TEST(CongestionTest, RegionSeriesMatchesPerObjectMarginals) {
  util::Rng rng(307);
  Database db;
  const ChainId c = db.AddChain(RandomChain(10, 3, &rng));
  std::vector<sparse::ProbVector> pdfs;
  for (int i = 0; i < 5; ++i) {
    pdfs.push_back(RandomDistribution(10, 2, &rng));
    (void)db.AddObjectAt(c, pdfs.back()).ValueOrDie();
  }
  auto region = sparse::IndexSet::FromRange(10, 3, 6).ValueOrDie();
  const auto field = ExpectedCounts(db, 6).ValueOrDie();
  const auto series = field.RegionSeries(region);
  ASSERT_EQ(series.size(), 7u);
  for (Timestamp t = 0; t <= 6; ++t) {
    // Reference: sum of each object's forward marginal mass in the region
    // (use the db copies — pdfs were normalized on insertion).
    double expected = 0.0;
    for (uint32_t i = 0; i < db.num_objects(); ++i) {
      expected += db.chain(c)
                      .Distribution(db.object(i).initial_pdf(), t)
                      .MassIn(region);
    }
    EXPECT_NEAR(series[t], expected, 1e-9) << "t " << t;
  }
}

TEST(CongestionTest, MixedChainsAccumulate) {
  util::Rng rng(311);
  Database db;
  const ChainId a = db.AddChain(RandomChain(8, 3, &rng));
  const ChainId b = db.AddChain(RandomChain(8, 2, &rng));
  (void)db.AddObjectAt(a, RandomDistribution(8, 2, &rng)).ValueOrDie();
  (void)db.AddObjectAt(b, RandomDistribution(8, 2, &rng)).ValueOrDie();
  const auto field = ExpectedCounts(db, 5).ValueOrDie();
  EXPECT_NEAR(field.RegionCount(5, sparse::IndexSet::All(8)), 2.0, 1e-9);
}

TEST(CongestionTest, LateEntrantsJoinAtTheirFirstObservation) {
  auto cycle = markov::MarkovChain::FromDense(
                   {{0, 1, 0}, {0, 0, 1}, {1, 0, 0}})
                   .ValueOrDie();
  Database db;
  const ChainId c = db.AddChain(std::move(cycle));
  std::vector<Observation> late;
  late.push_back({2, sparse::ProbVector::Delta(3, 0)});
  (void)db.AddObject(c, late).ValueOrDie();
  const auto field = ExpectedCounts(db, 4).ValueOrDie();
  // Before its observation the object contributes nothing.
  EXPECT_DOUBLE_EQ(field.RegionCount(0, sparse::IndexSet::All(3)), 0.0);
  EXPECT_DOUBLE_EQ(field.RegionCount(1, sparse::IndexSet::All(3)), 0.0);
  EXPECT_DOUBLE_EQ(field.At(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(field.At(3, 1), 1.0);
  EXPECT_DOUBLE_EQ(field.At(4, 2), 1.0);
}

TEST(CongestionTest, RejectsMismatchedStateSpaces) {
  util::Rng rng(313);
  Database db;
  (void)db.AddChain(RandomChain(5, 2, &rng));
  (void)db.AddChain(RandomChain(6, 2, &rng));
  EXPECT_FALSE(ExpectedCounts(db, 3).ok());

  Database empty;
  EXPECT_FALSE(ExpectedCounts(empty, 3).ok());
}

TEST(CongestionTest, TopHotspotsOrderedAndCorrect) {
  auto cycle = markov::MarkovChain::FromDense(
                   {{0, 1, 0}, {0, 0, 1}, {1, 0, 0}})
                   .ValueOrDie();
  Database db;
  const ChainId c = db.AddChain(std::move(cycle));
  // Three objects all at state 0: expected count 3 at (t=0, s=0),
  // (t=1, s=1), (t=2, s=2), ...
  for (int i = 0; i < 3; ++i) {
    (void)db.AddObjectAt(c, sparse::ProbVector::Delta(3, 0)).ValueOrDie();
  }
  const auto field = ExpectedCounts(db, 2).ValueOrDie();
  const auto hotspots = TopHotspots(field, 2);
  ASSERT_EQ(hotspots.size(), 2u);
  EXPECT_DOUBLE_EQ(hotspots[0].expected_count, 3.0);
  // Tie broken toward earlier time.
  EXPECT_EQ(hotspots[0].time, 0u);
  EXPECT_EQ(hotspots[0].state, 0u);
  EXPECT_EQ(hotspots[1].time, 1u);
  EXPECT_EQ(hotspots[1].state, 1u);
}

TEST(CongestionTest, TopHotspotsClampsK) {
  Database db;
  const ChainId c = db.AddChain(PaperChainV());
  (void)db.AddObjectAt(c, sparse::ProbVector::Delta(3, 1)).ValueOrDie();
  const auto field = ExpectedCounts(db, 1).ValueOrDie();
  const auto hotspots = TopHotspots(field, 100);
  EXPECT_LE(hotspots.size(), 6u);  // at most (t_max+1) * |S| non-zero cells
  EXPECT_FALSE(hotspots.empty());
}

}  // namespace
}  // namespace core
}  // namespace ustdb
