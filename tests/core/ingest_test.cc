// Database ingest path: AppendObservation validation (the sorted-history
// invariant rejects out-of-order and duplicate timestamps WITHOUT
// corrupting the history), epoch bookkeeping (data_version / object /
// chain / cluster epochs advance together and only for the touched
// lineage), the lock-free census mirror, the version-stamped variant's
// monotonicity guard, the incremental cluster-registry invariant (appends
// never re-cluster), and the sharded router's single global version
// sequence.

#include <gtest/gtest.h>

#include <vector>

#include "core/database.h"
#include "core/shard_router.h"
#include "sparse/prob_vector.h"
#include "testing/random_models.h"
#include "testing/sharded_fixture.h"
#include "testing/test_seed.h"
#include "util/rng.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::PaperChainV;
using ::ustdb::testing::PaperChainVI;
using ::ustdb::testing::RandomDistribution;

Observation ObsAt(Timestamp t, uint32_t n, uint32_t state) {
  return {t, sparse::ProbVector::Delta(n, state)};
}

TEST(IngestTest, AppendExtendsHistoryAndReturnsVersion) {
  Database db;
  const ChainId chain = db.AddChain(PaperChainV());
  const ObjectId id =
      db.AddObjectAt(chain, sparse::ProbVector::Delta(3, 0)).ValueOrDie();
  ASSERT_EQ(db.data_version(), 0u);

  const auto v1 = db.AppendObservation(id, ObsAt(2, 3, 1));
  ASSERT_TRUE(v1.ok()) << v1.status();
  EXPECT_EQ(v1.value(), 1u);
  const auto v2 = db.AppendObservation(id, ObsAt(5, 3, 2));
  ASSERT_TRUE(v2.ok()) << v2.status();
  EXPECT_EQ(v2.value(), 2u);

  const UncertainObject& obj = db.object(id);
  ASSERT_EQ(obj.observations.size(), 3u);
  EXPECT_EQ(obj.observations[0].time, 0u);
  EXPECT_EQ(obj.observations[1].time, 2u);
  EXPECT_EQ(obj.observations[2].time, 5u);
  EXPECT_EQ(db.data_version(), 2u);
}

TEST(IngestTest, UnknownObjectIsNotFound) {
  Database db;
  db.AddChain(PaperChainV());
  const auto result = db.AppendObservation(7, ObsAt(1, 3, 0));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kNotFound);
  EXPECT_EQ(db.data_version(), 0u);
}

TEST(IngestTest, DimensionMismatchRejected) {
  Database db;
  const ChainId chain = db.AddChain(PaperChainV());
  const ObjectId id =
      db.AddObjectAt(chain, sparse::ProbVector::Delta(3, 0)).ValueOrDie();
  const auto result = db.AppendObservation(id, ObsAt(1, 5, 0));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(db.object(id).observations.size(), 1u);
  EXPECT_EQ(db.data_version(), 0u);
}

TEST(IngestTest, OutOfOrderAndDuplicateTimesRejectedWithoutCorruption) {
  Database db;
  const ChainId chain = db.AddChain(PaperChainV());
  const ObjectId id =
      db.AddObjectAt(chain, sparse::ProbVector::Delta(3, 0)).ValueOrDie();
  ASSERT_TRUE(db.AppendObservation(id, ObsAt(4, 3, 1)).ok());

  // Duplicate timestamp.
  auto dup = db.AppendObservation(id, ObsAt(4, 3, 2));
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), util::StatusCode::kInvalidArgument);
  // Time strictly before the latest observation.
  auto stale = db.AppendObservation(id, ObsAt(2, 3, 2));
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), util::StatusCode::kInvalidArgument);

  // History uncorrupted, epochs unchanged by the rejected appends.
  const UncertainObject& obj = db.object(id);
  ASSERT_EQ(obj.observations.size(), 2u);
  EXPECT_EQ(obj.observations.back().time, 4u);
  EXPECT_EQ(db.data_version(), 1u);
  EXPECT_EQ(db.object_epoch(id), 1u);

  // A later valid time is still accepted — rejections leave the object
  // appendable.
  EXPECT_TRUE(db.AppendObservation(id, ObsAt(5, 3, 2)).ok());
  EXPECT_EQ(db.object(id).observations.size(), 3u);
}

TEST(IngestTest, EpochsAdvanceOnlyForTheTouchedLineage) {
  Database db;
  const ChainId c0 = db.AddChain(PaperChainV());
  // PaperChainVI is a perturbation of PaperChainV — same cluster.
  const ChainId c1 = db.AddChain(PaperChainVI());
  util::Rng rng(7);
  // A 30-state chain founds a separate cluster (different state count).
  const ChainId c2 = db.AddChain(testing::RandomChain(30, 3, &rng));
  ASSERT_NE(db.cluster_of(c0), db.cluster_of(c2));

  const ObjectId o0 =
      db.AddObjectAt(c0, sparse::ProbVector::Delta(3, 0)).ValueOrDie();
  const ObjectId o1 =
      db.AddObjectAt(c1, sparse::ProbVector::Delta(3, 1)).ValueOrDie();
  const ObjectId o2 =
      db.AddObjectAt(c2, RandomDistribution(30, 3, &rng)).ValueOrDie();

  ASSERT_TRUE(db.AppendObservation(o0, ObsAt(3, 3, 2)).ok());

  // Touched lineage: object o0, chain c0, and c0's cluster are at 1.
  EXPECT_EQ(db.data_version(), 1u);
  EXPECT_EQ(db.object_epoch(o0), 1u);
  EXPECT_EQ(db.chain_epoch(c0), 1u);
  EXPECT_EQ(db.cluster_epoch(db.cluster_of(c0)), 1u);
  // Untouched: o1 shares the cluster but not the chain; o2 shares nothing.
  EXPECT_EQ(db.object_epoch(o1), 0u);
  EXPECT_EQ(db.chain_epoch(c1), 0u);
  EXPECT_EQ(db.object_epoch(o2), 0u);
  EXPECT_EQ(db.chain_epoch(c2), 0u);
  EXPECT_EQ(db.cluster_epoch(db.cluster_of(c2)), 0u);

  // Appending to o1 bumps its chain but re-stamps the shared cluster.
  ASSERT_TRUE(db.AppendObservation(o1, ObsAt(2, 3, 0)).ok());
  EXPECT_EQ(db.data_version(), 2u);
  EXPECT_EQ(db.chain_epoch(c0), 1u);
  EXPECT_EQ(db.chain_epoch(c1), 2u);
  EXPECT_EQ(db.cluster_epoch(db.cluster_of(c0)), 2u);
}

TEST(IngestTest, CensusMirrorFlipsOnFirstAppend) {
  Database db;
  const ChainId chain = db.AddChain(PaperChainV());
  const ObjectId at0 =
      db.AddObjectAt(chain, sparse::ProbVector::Delta(3, 0)).ValueOrDie();
  const ObjectId late =
      db.AddObjectAt(chain, sparse::ProbVector::Delta(3, 1), /*t=*/3)
          .ValueOrDie();
  EXPECT_FALSE(db.object_needs_multi_engine(at0));
  // A single observation NOT at t=0 already needs the Section VI engine.
  EXPECT_TRUE(db.object_needs_multi_engine(late));

  ASSERT_TRUE(db.AppendObservation(at0, ObsAt(2, 3, 2)).ok());
  EXPECT_TRUE(db.object_needs_multi_engine(at0));
  EXPECT_TRUE(db.object(at0).needs_multi_observation_engine());
}

TEST(IngestTest, AppendNeverTouchesTheClusterRegistry) {
  Database db;
  const ChainId c0 = db.AddChain(PaperChainV());
  const ChainId c1 = db.AddChain(PaperChainVI());
  const ObjectId id =
      db.AddObjectAt(c0, sparse::ProbVector::Delta(3, 0)).ValueOrDie();

  const std::vector<ChainCluster> before = db.chain_clusters();
  for (Timestamp t = 1; t <= 8; ++t) {
    ASSERT_TRUE(db.AppendObservation(id, ObsAt(t, 3, t % 3)).ok());
  }
  const std::vector<ChainCluster>& after = db.chain_clusters();
  ASSERT_EQ(after.size(), before.size());
  for (size_t c = 0; c < before.size(); ++c) {
    EXPECT_EQ(after[c].leader, before[c].leader);
    EXPECT_EQ(after[c].members, before[c].members);
  }
  EXPECT_EQ(db.cluster_of(c0), db.cluster_of(c1));
}

TEST(IngestTest, VersionStampMustExceedCurrent) {
  Database db;
  const ChainId chain = db.AddChain(PaperChainV());
  const ObjectId id =
      db.AddObjectAt(chain, sparse::ProbVector::Delta(3, 0)).ValueOrDie();
  ASSERT_TRUE(db.AppendObservationAtVersion(id, ObsAt(1, 3, 1), 5).ok());
  EXPECT_EQ(db.data_version(), 5u);

  // Equal and lower stamps are rejected; the history stays put.
  auto equal = db.AppendObservationAtVersion(id, ObsAt(2, 3, 1), 5);
  ASSERT_FALSE(equal.ok());
  EXPECT_EQ(equal.status().code(), util::StatusCode::kInvalidArgument);
  auto lower = db.AppendObservationAtVersion(id, ObsAt(2, 3, 1), 3);
  ASSERT_FALSE(lower.ok());
  EXPECT_EQ(db.object(id).observations.size(), 2u);
  EXPECT_EQ(db.data_version(), 5u);

  // Gaps are fine: monotonicity, not density.
  EXPECT_TRUE(db.AppendObservationAtVersion(id, ObsAt(2, 3, 1), 9).ok());
  EXPECT_EQ(db.data_version(), 9u);
  EXPECT_EQ(db.object_epoch(id), 9u);
}

TEST(IngestTest, ShardedAppendsShareOneGlobalVersionSequence) {
  const uint64_t seed = ustdb::testing::TestSeed(731);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  testing::ShardedSpec spec;
  spec.seed = seed;
  testing::ShardedPair pair = testing::MakeShardedPair(spec, 4);
  util::Rng rng(seed ^ 0x1A6E57);

  std::vector<Timestamp> next_time(spec.num_objects, 1);
  DataVersion expected = 0;
  for (int round = 0; round < 64; ++round) {
    const ObjectId id =
        static_cast<ObjectId>(rng.NextBounded(spec.num_objects));
    Observation obs{next_time[id],
                    RandomDistribution(spec.num_states, 2, &rng)};
    next_time[id] += 1 + rng.NextBounded(3);
    const auto version = pair.sharded.AppendObservation(id, std::move(obs));
    ASSERT_TRUE(version.ok()) << version.status();
    // Sequential appends draw consecutive versions from the one global
    // counter regardless of which shard owns the object.
    EXPECT_EQ(version.value(), ++expected);
    const uint32_t s = pair.sharded.shard_of_object(id);
    EXPECT_EQ(pair.sharded.shard(s).data_version(), expected);
  }
  EXPECT_EQ(pair.sharded.data_version(), expected);

  // A rejected append burns its version: the global counter advances, no
  // shard applies it.
  const auto rejected =
      pair.sharded.AppendObservation(0, ObsAt(0, spec.num_states, 0));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(pair.sharded.data_version(), expected + 1);

  const auto unknown = pair.sharded.AppendObservation(
      spec.num_objects + 5, ObsAt(1, spec.num_states, 0));
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace core
}  // namespace ustdb
