#include "core/forall.h"

#include <gtest/gtest.h>

#include "exact/possible_worlds.h"
#include "testing/random_models.h"
#include "util/rng.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::PaperChainV;
using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

TEST(ForAllTest, CertainStayGivesOne) {
  // Two absorbing states; an object at state 0 stays there forever.
  auto chain =
      markov::MarkovChain::FromDense({{1.0, 0.0}, {0.0, 1.0}}).ValueOrDie();
  auto window = QueryWindow::FromRanges(2, 0, 0, 1, 5).ValueOrDie();
  ForAllObjectBased ob(&chain, window);
  ForAllQueryBased qb(&chain, window);
  EXPECT_NEAR(ob.ForAllProbability(sparse::ProbVector::Delta(2, 0)), 1.0,
              1e-12);
  EXPECT_NEAR(qb.ForAllProbability(sparse::ProbVector::Delta(2, 0)), 1.0,
              1e-12);
  EXPECT_NEAR(ob.ForAllProbability(sparse::ProbVector::Delta(2, 1)), 0.0,
              1e-12);
}

TEST(ForAllTest, MatchesEnumerationOnPaperChain) {
  markov::MarkovChain chain = PaperChainV();
  auto window = QueryWindow::FromRanges(3, 1, 2, 1, 3).ValueOrDie();
  const sparse::ProbVector initial = sparse::ProbVector::Delta(3, 1);
  const double expected =
      exact::ForAllByEnumeration(chain, initial, window).ValueOrDie();
  ForAllObjectBased ob(&chain, window);
  ForAllQueryBased qb(&chain, window);
  EXPECT_NEAR(ob.ForAllProbability(initial), expected, 1e-12);
  EXPECT_NEAR(qb.ForAllProbability(initial), expected, 1e-12);
}

TEST(ForAllTest, ComplementIdentityOnRandomModels) {
  // P∀(S□) + P∃(S\S□) = 1 — Section VII's reduction, cross-checked via
  // enumeration on small random models.
  util::Rng rng(17);
  for (int round = 0; round < 15; ++round) {
    markov::MarkovChain chain = RandomChain(6, 3, &rng);
    auto window = QueryWindow::FromRanges(6, 1, 3, 1, 4).ValueOrDie();
    const sparse::ProbVector initial = RandomDistribution(6, 2, &rng);

    ForAllObjectBased ob(&chain, window);
    const double forall = ob.ForAllProbability(initial);
    const double enumerated =
        exact::ForAllByEnumeration(chain, initial, window).ValueOrDie();
    EXPECT_NEAR(forall, enumerated, 1e-10) << "round " << round;
  }
}

TEST(ForAllTest, ForAllNeverExceedsExists) {
  // Staying in S□ at all window times implies intersecting it at least
  // once, so P∀ <= P∃ pointwise.
  util::Rng rng(23);
  for (int round = 0; round < 10; ++round) {
    markov::MarkovChain chain = RandomChain(15, 4, &rng);
    auto window = QueryWindow::FromRanges(15, 3, 8, 2, 6).ValueOrDie();
    const sparse::ProbVector initial = RandomDistribution(15, 3, &rng);
    ForAllQueryBased forall(&chain, window);
    QueryBasedEngine exists(&chain, window);
    EXPECT_LE(forall.ForAllProbability(initial),
              exists.ExistsProbability(initial) + 1e-10);
  }
}

TEST(ForAllTest, FullRegionForAllIsOne) {
  markov::MarkovChain chain = PaperChainV();
  auto window = QueryWindow::FromRanges(3, 0, 2, 1, 4).ValueOrDie();
  ForAllObjectBased ob(&chain, window);
  EXPECT_NEAR(ob.ForAllProbability(sparse::ProbVector::Delta(3, 0)), 1.0,
              1e-12);
}

TEST(ForAllTest, SingleTimeForAllEqualsExists) {
  // With |T□| = 1 the two predicates coincide.
  markov::MarkovChain chain = PaperChainV();
  auto region = sparse::IndexSet::FromIndices(3, {1}).ValueOrDie();
  auto window = QueryWindow::Create(region, {2}).ValueOrDie();
  ForAllObjectBased forall(&chain, window);
  ObjectBasedEngine exists(&chain, window);
  const sparse::ProbVector initial = sparse::ProbVector::Delta(3, 1);
  EXPECT_NEAR(forall.ForAllProbability(initial),
              exists.ExistsProbability(initial), 1e-12);
}

TEST(ForAllTest, InnerEngineUsesComplementedRegion) {
  markov::MarkovChain chain = PaperChainV();
  auto window = QueryWindow::FromRanges(3, 0, 1, 2, 3).ValueOrDie();
  ForAllObjectBased ob(&chain, window);
  EXPECT_EQ(ob.inner().window().region().elements(),
            (std::vector<uint32_t>{2}));
}

}  // namespace
}  // namespace core
}  // namespace ustdb
