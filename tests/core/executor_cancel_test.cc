// Cancellation and deadline behavior of the QueryExecutor: cooperative
// stops must resolve with the right status, leave unevaluated objects
// unevaluated (provably, via last_run_stats), and never poison sibling
// members of a batch.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/executor.h"
#include "testing/random_models.h"
#include "util/cancellation.h"
#include "util/rng.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

constexpr uint32_t kStates = 25;
constexpr uint32_t kObjects = 1000;

Database MakeDb(uint64_t seed) {
  util::Rng rng(seed);
  Database db;
  const ChainId chain = db.AddChain(RandomChain(kStates, 3, &rng));
  for (uint32_t i = 0; i < kObjects; ++i) {
    (void)db.AddObjectAt(chain, RandomDistribution(kStates, 3, &rng))
        .ValueOrDie();
  }
  return db;
}

QueryRequest ExistsRequest() {
  QueryRequest request;
  request.predicate = PredicateKind::kExists;
  request.window = QueryWindow::FromRanges(kStates, 6, 12, 3, 8).ValueOrDie();
  return request;
}

TEST(ExecutorCancelTest, PreCancelledRunEvaluatesNothing) {
  Database db = MakeDb(11);
  QueryExecutor executor(&db, {.num_threads = 1});
  util::CancellationSource source;
  source.RequestStop();

  QueryRequest request = ExistsRequest();
  request.cancel = source.token();
  const auto result = executor.Run(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCancelled);
  EXPECT_EQ(executor.last_run_stats().objects_evaluated, 0u);
}

// The acceptance check of the async-service PR: a request cancelled
// mid-parallel-loop resolves with Status::Cancelled AND provably stopped
// early — its ExecStats shows fewer objects evaluated than an uncancelled
// twin of the same request.
TEST(ExecutorCancelTest, CancelMidLoopStopsProvablyEarly) {
  Database db = MakeDb(12);
  QueryExecutor executor(&db, {.num_threads = 1});

  const auto full = executor.Run(ExistsRequest()).ValueOrDie();
  EXPECT_EQ(full.stats.objects_evaluated, kObjects);

  // Budget: one poll for the submission-time check, two for the first two
  // 64-object sub-chunks; the next check trips mid-loop (deterministic at
  // one thread).
  util::CancellationSource source;
  source.RequestStopAfterPolls(3);
  QueryRequest cancelled = ExistsRequest();
  cancelled.cancel = source.token();
  const auto result = executor.Run(cancelled);

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCancelled);
  const uint32_t evaluated = executor.last_run_stats().objects_evaluated;
  EXPECT_GT(evaluated, 0u);
  EXPECT_LT(evaluated, full.stats.objects_evaluated);
  EXPECT_EQ(evaluated, 2 * util::kStopCheckStride);
}

TEST(ExecutorCancelTest, CancelMidLoopAcrossThreads) {
  Database db = MakeDb(13);
  QueryExecutor executor(&db, {.num_threads = 4});

  // With concurrent pollers the trip point is approximate, but a budget of
  // 5 sub-chunk polls bounds evaluation to 5 sub-chunks — strictly fewer
  // objects than the full run, whichever workers get there first.
  util::CancellationSource source;
  source.RequestStopAfterPolls(5);
  QueryRequest request = ExistsRequest();
  request.cancel = source.token();
  const auto result = executor.Run(request);

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCancelled);
  EXPECT_LT(executor.last_run_stats().objects_evaluated, kObjects);
}

TEST(ExecutorCancelTest, ExpiredDeadlineFailsBeforeEvaluation) {
  Database db = MakeDb(14);
  QueryExecutor executor(&db, {.num_threads = 1});

  QueryRequest request = ExistsRequest();
  request.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  const auto result = executor.Run(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(executor.last_run_stats().objects_evaluated, 0u);
}

TEST(ExecutorCancelTest, FutureDeadlineDoesNotPerturbResults) {
  Database db = MakeDb(15);
  QueryExecutor executor(&db, {.num_threads = 1});

  const auto plain = executor.Run(ExistsRequest()).ValueOrDie();
  QueryRequest request = ExistsRequest();
  request.deadline = std::chrono::steady_clock::now() + std::chrono::hours(1);
  const auto with_deadline = executor.Run(request).ValueOrDie();

  ASSERT_EQ(plain.probabilities.size(), with_deadline.probabilities.size());
  for (size_t i = 0; i < plain.probabilities.size(); ++i) {
    EXPECT_EQ(plain.probabilities[i].id, with_deadline.probabilities[i].id);
    EXPECT_EQ(plain.probabilities[i].probability,
              with_deadline.probabilities[i].probability);
  }
}

TEST(ExecutorCancelTest, KTimesCancelsMidLoop) {
  Database db = MakeDb(16);
  QueryExecutor executor(&db, {.num_threads = 1});

  QueryRequest request;
  request.predicate = PredicateKind::kKTimes;
  request.window = QueryWindow::FromRanges(kStates, 6, 12, 3, 5).ValueOrDie();

  const auto full = executor.Run(request).ValueOrDie();
  EXPECT_EQ(full.stats.objects_evaluated, kObjects);

  util::CancellationSource source;
  source.RequestStopAfterPolls(3);
  request.cancel = source.token();
  const auto result = executor.Run(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCancelled);
  EXPECT_LT(executor.last_run_stats().objects_evaluated, kObjects);
}

TEST(ExecutorCancelTest, BatchIsolatesCancelledMember) {
  Database db = MakeDb(17);
  QueryExecutor batch_executor(&db, {.num_threads = 1});

  util::CancellationSource source;
  source.RequestStop();
  std::vector<QueryRequest> requests(3, ExistsRequest());
  requests[1].cancel = source.token();

  const auto results = batch_executor.RunBatch(requests);
  ASSERT_EQ(results.size(), 3u);
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), util::StatusCode::kCancelled);

  // The healthy members answer exactly what solo runs answer.
  QueryExecutor solo(&db, {.num_threads = 1});
  const auto expected = solo.Run(ExistsRequest()).ValueOrDie();
  for (size_t member : {size_t{0}, size_t{2}}) {
    ASSERT_TRUE(results[member].ok()) << results[member].status();
    const auto& got = results[member].value();
    ASSERT_EQ(got.probabilities.size(), expected.probabilities.size());
    for (size_t i = 0; i < expected.probabilities.size(); ++i) {
      EXPECT_EQ(got.probabilities[i].probability,
                expected.probabilities[i].probability);
    }
  }
}

TEST(ExecutorCancelTest, BatchIsolatesExpiredMember) {
  Database db = MakeDb(18);
  QueryExecutor executor(&db, {.num_threads = 1});

  std::vector<QueryRequest> requests(2, ExistsRequest());
  requests[0].deadline =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  const auto results = executor.RunBatch(requests);
  ASSERT_FALSE(results[0].ok());
  EXPECT_EQ(results[0].status().code(), util::StatusCode::kDeadlineExceeded);
  ASSERT_TRUE(results[1].ok());
  EXPECT_EQ(results[1].value().probabilities.size(), kObjects);
}

}  // namespace
}  // namespace core
}  // namespace ustdb
