#include "core/planner.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/random_models.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

Database MakeDb(uint32_t num_chains, uint32_t objects_per_chain,
                uint64_t seed) {
  util::Rng rng(seed);
  Database db;
  std::vector<ChainId> chains;
  for (uint32_t c = 0; c < num_chains; ++c) {
    chains.push_back(db.AddChain(RandomChain(25, 3, &rng)));
  }
  for (uint32_t c = 0; c < num_chains; ++c) {
    for (uint32_t i = 0; i < objects_per_chain; ++i) {
      (void)db.AddObjectAt(chains[c], RandomDistribution(25, 3, &rng))
          .ValueOrDie();
    }
  }
  return db;
}

QueryRequest ExistsRequest(uint32_t num_states = 25) {
  QueryRequest request;
  request.window =
      QueryWindow::FromRanges(num_states, 6, 12, 3, 8).ValueOrDie();
  return request;
}

TEST(PlannerTest, SingleObjectChainPrefersObjectBased) {
  Database db = MakeDb(4, 1, 11);
  QueryPlanner planner(&db);
  const PlanDecision d = planner.Choose(0, ExistsRequest(), 1);
  EXPECT_EQ(d.plan, Plan::kObjectBased);
  EXPECT_FALSE(d.forced);
  EXPECT_LE(d.cost.object_based, d.cost.query_based);
}

TEST(PlannerTest, ManyObjectChainPrefersQueryBased) {
  Database db = MakeDb(1, 50, 12);
  QueryPlanner planner(&db);
  const PlanDecision d = planner.Choose(0, ExistsRequest(), 50);
  EXPECT_EQ(d.plan, Plan::kQueryBased);
  EXPECT_GT(d.cost.object_based, d.cost.query_based);
}

TEST(PlannerTest, ObjectBasedCostScalesLinearlyWithObjects) {
  Database db = MakeDb(1, 1, 13);
  QueryPlanner planner(&db);
  const CostEstimate one = planner.Choose(0, ExistsRequest(), 1).cost;
  const CostEstimate ten = planner.Choose(0, ExistsRequest(), 10).cost;
  EXPECT_NEAR(ten.object_based, 10.0 * one.object_based, 1e-9);
  // QB amortizes the pass: going 1 -> 10 objects adds only dot products.
  EXPECT_LT(ten.query_based - one.query_based, one.query_based);
}

TEST(PlannerTest, ForcedPlanBypassesCostModel) {
  Database db = MakeDb(1, 50, 14);
  QueryPlanner planner(&db);
  QueryRequest request = ExistsRequest();
  request.plan = PlanChoice::kObjectBased;
  const PlanDecision d = planner.Choose(0, request, 50);
  EXPECT_EQ(d.plan, Plan::kObjectBased);  // despite 50 objects
  EXPECT_TRUE(d.forced);

  request.plan = PlanChoice::kQueryBased;
  const PlanDecision d2 = planner.Choose(0, request, 1);
  EXPECT_EQ(d2.plan, Plan::kQueryBased);  // despite 1 object
  EXPECT_TRUE(d2.forced);
}

TEST(PlannerTest, ExplicitModeRaisesPassCost) {
  Database db = MakeDb(1, 1, 15);
  const QueryWindow window =
      QueryWindow::FromRanges(25, 6, 12, 3, 8).ValueOrDie();
  const double implicit =
      QueryPlanner::PassCost(db.chain(0), window, MatrixMode::kImplicit);
  const double explicit_cost =
      QueryPlanner::PassCost(db.chain(0), window, MatrixMode::kExplicit);
  EXPECT_GT(explicit_cost, implicit);
}

TEST(PlannerTest, LongerReachRaisesPassCost) {
  Database db = MakeDb(1, 1, 16);
  const QueryWindow near_window =
      QueryWindow::FromRanges(25, 6, 12, 1, 3).ValueOrDie();
  const QueryWindow far_window =
      QueryWindow::FromRanges(25, 6, 12, 1, 30).ValueOrDie();
  EXPECT_GT(
      QueryPlanner::PassCost(db.chain(0), far_window, MatrixMode::kImplicit),
      QueryPlanner::PassCost(db.chain(0), near_window,
                             MatrixMode::kImplicit));
}

TEST(PlannerTest, PlanBatchWithOneMemberMatchesChoose) {
  Database db = MakeDb(1, 10, 18);
  QueryPlanner planner(&db);
  const QueryRequest request = ExistsRequest();
  for (uint32_t n : {1u, 3u, 10u, 50u}) {
    const PlanDecision solo = planner.Choose(0, request, n);
    const MemberLoad load{request.predicate, n};
    const PlanDecision batch = planner.PlanBatch(
        0, request.window, request.matrix_mode, {&load, 1});
    EXPECT_EQ(batch.plan, solo.plan) << "n=" << n;
    EXPECT_DOUBLE_EQ(batch.cost.object_based, solo.cost.object_based);
    EXPECT_DOUBLE_EQ(batch.cost.query_based, solo.cost.query_based);
  }
}

TEST(PlannerTest, PlanBatchAmortizesThePassAcrossMembers) {
  // One object per chain: solo prefers OB, but a growing group shares the
  // backward pass, so at some group size QB must win.
  Database db = MakeDb(1, 1, 19);
  QueryPlanner planner(&db);
  const QueryRequest request = ExistsRequest();
  EXPECT_EQ(planner.Choose(0, request, 1).plan, Plan::kObjectBased);

  std::vector<MemberLoad> members;
  Plan plan = Plan::kObjectBased;
  while (plan == Plan::kObjectBased && members.size() < 64) {
    members.push_back({PredicateKind::kExists, 1});
    plan = planner
               .PlanBatch(0, request.window, request.matrix_mode, members)
               .plan;
  }
  EXPECT_EQ(plan, Plan::kQueryBased);
  EXPECT_GT(members.size(), 1u);  // one member alone stays OB

  // The QB side grows only by dot products as the group grows.
  const CostEstimate big = planner
                               .PlanBatch(0, request.window,
                                          request.matrix_mode, members)
                               .cost;
  const MemberLoad one{PredicateKind::kExists, 1};
  const CostEstimate small =
      planner.PlanBatch(0, request.window, request.matrix_mode, {&one, 1})
          .cost;
  EXPECT_NEAR(big.object_based,
              static_cast<double>(members.size()) * small.object_based,
              1e-9);
  EXPECT_LT(big.query_based - small.query_based, small.query_based);
}

TEST(PlannerTest, PlanBatchMixedPredicatesDiscountThresholdMembers) {
  Database db = MakeDb(1, 4, 20);
  QueryPlanner planner(&db);
  const QueryWindow window =
      QueryWindow::FromRanges(25, 6, 12, 3, 8).ValueOrDie();
  const std::vector<MemberLoad> plain = {{PredicateKind::kExists, 4},
                                         {PredicateKind::kExists, 4}};
  const std::vector<MemberLoad> mixed = {{PredicateKind::kExists, 4},
                                         {PredicateKind::kThresholdExists, 4}};
  const CostEstimate p =
      planner.PlanBatch(0, window, MatrixMode::kImplicit, plain).cost;
  const CostEstimate m =
      planner.PlanBatch(0, window, MatrixMode::kImplicit, mixed).cost;
  EXPECT_LT(m.object_based, p.object_based);
  EXPECT_DOUBLE_EQ(m.query_based, p.query_based);
}

TEST(PlannerTest, PlanBatchEmptyGroupIsObjectBasedAtZeroCost) {
  Database db = MakeDb(1, 1, 21);
  QueryPlanner planner(&db);
  const PlanDecision d = planner.PlanBatch(
      0, ExistsRequest().window, MatrixMode::kImplicit, {});
  EXPECT_EQ(d.plan, Plan::kObjectBased);
  EXPECT_DOUBLE_EQ(d.cost.object_based, 0.0);
}

TEST(PlannerTest, ThresholdDiscountShiftsBreakEven) {
  // Early τ-termination makes OB cheaper per object, so the break-even
  // object count must be at least as high as for plain exists.
  Database db = MakeDb(1, 2, 17);
  QueryPlanner planner(&db);
  QueryRequest exists = ExistsRequest();
  QueryRequest threshold = ExistsRequest();
  threshold.predicate = PredicateKind::kThresholdExists;
  threshold.tau = 0.5;
  const CostEstimate e = planner.Choose(0, exists, 2).cost;
  const CostEstimate t = planner.Choose(0, threshold, 2).cost;
  EXPECT_LT(t.object_based, e.object_based);
  EXPECT_DOUBLE_EQ(t.query_based, e.query_based);
}

/// Database of `num_chains` jittered copies of one base model — one
/// similarity cluster — with `objects_per_chain` objects each.
Database MakeClusteredDb(uint32_t num_chains, uint32_t objects_per_chain,
                         uint64_t seed) {
  workload::SyntheticConfig config;
  config.num_states = 25;
  config.num_objects = num_chains * objects_per_chain;
  config.state_spread = 3;
  config.max_step = 8;
  config.seed = seed;
  return workload::GenerateMultiChainDatabase(config, num_chains, 0.05)
      .ValueOrDie();
}

std::vector<ChainLoad> LoadsOf(const Database& db) {
  std::vector<ChainLoad> loads;
  for (ChainId c = 0; c < db.num_chains(); ++c) {
    loads.push_back(
        {c, static_cast<uint32_t>(db.objects_by_chain()[c].size())});
  }
  return loads;
}

TEST(PlannerTest, ThresholdPlanPicksBoundsForManySimilarChains) {
  // Many chain classes with few objects each defeat per-chain QB
  // amortization; one interval pass over their shared cluster plus a
  // fractional refine must win.
  Database db = MakeClusteredDb(/*num_chains=*/24, /*objects_per_chain=*/4,
                                22);
  ASSERT_EQ(db.chain_clusters().size(), 1u);
  QueryPlanner planner(&db);
  const QueryWindow window =
      QueryWindow::FromRanges(25, 6, 12, 3, 8).ValueOrDie();
  const PlanDecision d = planner.ChooseThresholdPlan(
      window, MatrixMode::kImplicit, PlanChoice::kAuto, LoadsOf(db));
  EXPECT_EQ(d.plan, Plan::kBoundsThenRefine);
  EXPECT_FALSE(d.forced);
  EXPECT_LT(d.cost.bounds_then_refine,
            std::min(d.cost.object_based, d.cost.query_based));
}

TEST(PlannerTest, ThresholdPlanKeepsSingleChainWorkloadsPerChain) {
  // One shared chain: the QB pass is already fully amortized and the
  // bound pass (a costlier interval pass plus refines) cannot beat it.
  Database db = MakeClusteredDb(/*num_chains=*/1, /*objects_per_chain=*/64,
                                23);
  QueryPlanner planner(&db);
  const QueryWindow window =
      QueryWindow::FromRanges(25, 6, 12, 3, 8).ValueOrDie();
  const PlanDecision d = planner.ChooseThresholdPlan(
      window, MatrixMode::kImplicit, PlanChoice::kAuto, LoadsOf(db));
  EXPECT_NE(d.plan, Plan::kBoundsThenRefine);
  EXPECT_GT(d.cost.bounds_then_refine, 0.0);
}

TEST(PlannerTest, ThresholdPlanHonorsForcedDirective) {
  Database db = MakeClusteredDb(1, 4, 24);
  QueryPlanner planner(&db);
  const QueryWindow window =
      QueryWindow::FromRanges(25, 6, 12, 3, 8).ValueOrDie();
  const PlanDecision d = planner.ChooseThresholdPlan(
      window, MatrixMode::kImplicit, PlanChoice::kBoundsThenRefine,
      LoadsOf(db));
  EXPECT_EQ(d.plan, Plan::kBoundsThenRefine);
  EXPECT_TRUE(d.forced);
}

TEST(PlannerTest, ThresholdPlanEmptyLoadsNeverBounds) {
  Database db = MakeClusteredDb(2, 2, 25);
  QueryPlanner planner(&db);
  const QueryWindow window =
      QueryWindow::FromRanges(25, 6, 12, 3, 8).ValueOrDie();
  const PlanDecision d = planner.ChooseThresholdPlan(
      window, MatrixMode::kImplicit, PlanChoice::kAuto, {});
  EXPECT_NE(d.plan, Plan::kBoundsThenRefine);
  EXPECT_DOUBLE_EQ(d.cost.bounds_then_refine, 0.0);
}

TEST(PlannerTest, ChooseTreatsBoundsDirectiveAsCostBasedPerChain) {
  // When the executor falls back from an ineligible window, per-chain
  // decisions under kBoundsThenRefine must match kAuto, not pin a plan.
  Database db = MakeDb(1, 50, 26);
  QueryPlanner planner(&db);
  QueryRequest request = ExistsRequest();
  request.predicate = PredicateKind::kThresholdExists;
  request.tau = 0.4;
  request.plan = PlanChoice::kBoundsThenRefine;
  const PlanDecision fallback = planner.Choose(0, request, 50);
  request.plan = PlanChoice::kAuto;
  const PlanDecision auto_choice = planner.Choose(0, request, 50);
  EXPECT_EQ(fallback.plan, auto_choice.plan);
  EXPECT_FALSE(fallback.forced);
}

}  // namespace
}  // namespace core
}  // namespace ustdb
