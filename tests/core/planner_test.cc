#include "core/planner.h"

#include <gtest/gtest.h>

#include "testing/random_models.h"
#include "util/rng.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

Database MakeDb(uint32_t num_chains, uint32_t objects_per_chain,
                uint64_t seed) {
  util::Rng rng(seed);
  Database db;
  std::vector<ChainId> chains;
  for (uint32_t c = 0; c < num_chains; ++c) {
    chains.push_back(db.AddChain(RandomChain(25, 3, &rng)));
  }
  for (uint32_t c = 0; c < num_chains; ++c) {
    for (uint32_t i = 0; i < objects_per_chain; ++i) {
      (void)db.AddObjectAt(chains[c], RandomDistribution(25, 3, &rng))
          .ValueOrDie();
    }
  }
  return db;
}

QueryRequest ExistsRequest(uint32_t num_states = 25) {
  QueryRequest request;
  request.window =
      QueryWindow::FromRanges(num_states, 6, 12, 3, 8).ValueOrDie();
  return request;
}

TEST(PlannerTest, SingleObjectChainPrefersObjectBased) {
  Database db = MakeDb(4, 1, 11);
  QueryPlanner planner(&db);
  const PlanDecision d = planner.Choose(0, ExistsRequest(), 1);
  EXPECT_EQ(d.plan, Plan::kObjectBased);
  EXPECT_FALSE(d.forced);
  EXPECT_LE(d.cost.object_based, d.cost.query_based);
}

TEST(PlannerTest, ManyObjectChainPrefersQueryBased) {
  Database db = MakeDb(1, 50, 12);
  QueryPlanner planner(&db);
  const PlanDecision d = planner.Choose(0, ExistsRequest(), 50);
  EXPECT_EQ(d.plan, Plan::kQueryBased);
  EXPECT_GT(d.cost.object_based, d.cost.query_based);
}

TEST(PlannerTest, ObjectBasedCostScalesLinearlyWithObjects) {
  Database db = MakeDb(1, 1, 13);
  QueryPlanner planner(&db);
  const CostEstimate one = planner.Choose(0, ExistsRequest(), 1).cost;
  const CostEstimate ten = planner.Choose(0, ExistsRequest(), 10).cost;
  EXPECT_NEAR(ten.object_based, 10.0 * one.object_based, 1e-9);
  // QB amortizes the pass: going 1 -> 10 objects adds only dot products.
  EXPECT_LT(ten.query_based - one.query_based, one.query_based);
}

TEST(PlannerTest, ForcedPlanBypassesCostModel) {
  Database db = MakeDb(1, 50, 14);
  QueryPlanner planner(&db);
  QueryRequest request = ExistsRequest();
  request.plan = PlanChoice::kObjectBased;
  const PlanDecision d = planner.Choose(0, request, 50);
  EXPECT_EQ(d.plan, Plan::kObjectBased);  // despite 50 objects
  EXPECT_TRUE(d.forced);

  request.plan = PlanChoice::kQueryBased;
  const PlanDecision d2 = planner.Choose(0, request, 1);
  EXPECT_EQ(d2.plan, Plan::kQueryBased);  // despite 1 object
  EXPECT_TRUE(d2.forced);
}

TEST(PlannerTest, ExplicitModeRaisesPassCost) {
  Database db = MakeDb(1, 1, 15);
  const QueryWindow window =
      QueryWindow::FromRanges(25, 6, 12, 3, 8).ValueOrDie();
  const double implicit =
      QueryPlanner::PassCost(db.chain(0), window, MatrixMode::kImplicit);
  const double explicit_cost =
      QueryPlanner::PassCost(db.chain(0), window, MatrixMode::kExplicit);
  EXPECT_GT(explicit_cost, implicit);
}

TEST(PlannerTest, LongerReachRaisesPassCost) {
  Database db = MakeDb(1, 1, 16);
  const QueryWindow near_window =
      QueryWindow::FromRanges(25, 6, 12, 1, 3).ValueOrDie();
  const QueryWindow far_window =
      QueryWindow::FromRanges(25, 6, 12, 1, 30).ValueOrDie();
  EXPECT_GT(
      QueryPlanner::PassCost(db.chain(0), far_window, MatrixMode::kImplicit),
      QueryPlanner::PassCost(db.chain(0), near_window,
                             MatrixMode::kImplicit));
}

TEST(PlannerTest, ThresholdDiscountShiftsBreakEven) {
  // Early τ-termination makes OB cheaper per object, so the break-even
  // object count must be at least as high as for plain exists.
  Database db = MakeDb(1, 2, 17);
  QueryPlanner planner(&db);
  QueryRequest exists = ExistsRequest();
  QueryRequest threshold = ExistsRequest();
  threshold.predicate = PredicateKind::kThresholdExists;
  threshold.tau = 0.5;
  const CostEstimate e = planner.Choose(0, exists, 2).cost;
  const CostEstimate t = planner.Choose(0, threshold, 2).cost;
  EXPECT_LT(t.object_based, e.object_based);
  EXPECT_DOUBLE_EQ(t.query_based, e.query_based);
}

}  // namespace
}  // namespace core
}  // namespace ustdb
