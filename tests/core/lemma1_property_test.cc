// Property suite around Lemma 1 (conditioning on independent observations)
// and its interaction with the engines: scaling invariance, grouping
// invariance, and cross-engine consistency between the Section VI
// multi-observation engine and forward–backward smoothing.

#include <gtest/gtest.h>

#include <tuple>

#include "core/multi_observation.h"
#include "core/smoothing.h"
#include "sparse/prob_vector.h"
#include "testing/random_models.h"
#include "util/rng.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

// (num_states, seed)
using Param = std::tuple<uint32_t, uint64_t>;

class Lemma1PropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(Lemma1PropertyTest, PointwiseProductCommutesAndAssociates) {
  const auto [n, seed] = GetParam();
  util::Rng rng(seed);
  const sparse::ProbVector a = RandomDistribution(n, n / 2 + 1, &rng);
  const sparse::ProbVector b = RandomDistribution(n, n / 2 + 1, &rng);
  const sparse::ProbVector c = RandomDistribution(n, n, &rng);

  // (a ⊙ b) ⊙ c == a ⊙ (b ⊙ c), then normalized.
  sparse::ProbVector left = a;
  ASSERT_TRUE(left.PointwiseMultiply(b).ok());
  ASSERT_TRUE(left.PointwiseMultiply(c).ok());

  sparse::ProbVector bc = b;
  ASSERT_TRUE(bc.PointwiseMultiply(c).ok());
  sparse::ProbVector right = a;
  ASSERT_TRUE(right.PointwiseMultiply(bc).ok());

  if (left.Sum() > 0.0) {
    ASSERT_TRUE(left.Normalize().ok());
    ASSERT_TRUE(right.Normalize().ok());
    EXPECT_NEAR(left.MaxAbsDiff(right), 0.0, 1e-12);

    // Commutativity: b ⊙ a == a ⊙ b.
    sparse::ProbVector ab = a;
    ASSERT_TRUE(ab.PointwiseMultiply(b).ok());
    sparse::ProbVector ba = b;
    ASSERT_TRUE(ba.PointwiseMultiply(a).ok());
    ASSERT_TRUE(ab.Normalize().ok());
    ASSERT_TRUE(ba.Normalize().ok());
    EXPECT_NEAR(ab.MaxAbsDiff(ba), 0.0, 1e-12);
  }
}

TEST_P(Lemma1PropertyTest, ObservationScaleInvariance) {
  // Lemma 1 normalizes, so scaling an observation pdf must not change the
  // engine's answer (only relative likelihoods matter).
  const auto [n, seed] = GetParam();
  util::Rng rng(seed ^ 0x11);
  const markov::MarkovChain chain = RandomChain(n, 3, &rng);
  auto window =
      QueryWindow::FromRanges(n, 1, n / 2, 1, 4).ValueOrDie();

  std::vector<Observation> obs;
  obs.push_back({0, RandomDistribution(n, 2, &rng)});
  obs.push_back({5, RandomDistribution(n, n, &rng)});

  MultiObservationEngine engine(&chain, window);
  const auto base = engine.Evaluate(obs);
  ASSERT_TRUE(base.ok());

  std::vector<Observation> scaled = obs;
  scaled[1].pdf.Scale(7.5);
  const auto after = engine.Evaluate(scaled);
  ASSERT_TRUE(after.ok());
  EXPECT_NEAR(base.value().exists_probability,
              after.value().exists_probability, 1e-12);
  EXPECT_NEAR(base.value().posterior.MaxAbsDiff(after.value().posterior),
              0.0, 1e-12);
}

TEST_P(Lemma1PropertyTest, SmoothingPosteriorMatchesMultiObsEngine) {
  // The multi-observation engine's merged posterior at its final processed
  // timestamp must equal the smoothed marginal at that timestamp.
  const auto [n, seed] = GetParam();
  util::Rng rng(seed ^ 0x22);
  const markov::MarkovChain chain = RandomChain(n, 3, &rng);
  auto window = QueryWindow::FromRanges(n, 1, n / 2, 1, 3).ValueOrDie();

  std::vector<Observation> obs;
  obs.push_back({0, RandomDistribution(n, 2, &rng)});
  obs.push_back({5, RandomDistribution(n, n, &rng)});

  MultiObservationEngine engine(&chain, window);
  const auto multi = engine.Evaluate(obs);
  ASSERT_TRUE(multi.ok());

  const auto smoothing = SmoothedMarginals(chain, obs, 5);
  ASSERT_TRUE(smoothing.ok());
  const sparse::ProbVector& at_end = smoothing->marginals.back();
  EXPECT_NEAR(multi.value().posterior.MaxAbsDiff(at_end), 0.0, 1e-9);
}

TEST_P(Lemma1PropertyTest, ExtraUninformativeObservationIsNeutral) {
  // Conditioning on the uniform distribution adds no information: the
  // exists probability and posterior must not change.
  const auto [n, seed] = GetParam();
  util::Rng rng(seed ^ 0x33);
  const markov::MarkovChain chain = RandomChain(n, 3, &rng);
  auto window = QueryWindow::FromRanges(n, 1, n / 2, 1, 4).ValueOrDie();

  std::vector<Observation> obs;
  obs.push_back({0, RandomDistribution(n, 2, &rng)});
  obs.push_back({6, RandomDistribution(n, n, &rng)});

  std::vector<Observation> with_noise = obs;
  with_noise.insert(
      with_noise.begin() + 1,
      {3, sparse::ProbVector::UniformOver(sparse::IndexSet::All(n))
              .ValueOrDie()});

  MultiObservationEngine engine(&chain, window);
  const auto base = engine.Evaluate(obs);
  const auto noisy = engine.Evaluate(with_noise);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(noisy.ok());
  EXPECT_NEAR(base.value().exists_probability,
              noisy.value().exists_probability, 1e-10);
  EXPECT_NEAR(base.value().posterior.MaxAbsDiff(noisy.value().posterior),
              0.0, 1e-10);
}

TEST_P(Lemma1PropertyTest, SharperObservationNeverIncreasesSurvivingMass) {
  // Restricting an observation's support can only remove worlds.
  const auto [n, seed] = GetParam();
  util::Rng rng(seed ^ 0x44);
  const markov::MarkovChain chain = RandomChain(n, 3, &rng);
  auto window = QueryWindow::FromRanges(n, 1, n / 2, 1, 3).ValueOrDie();

  std::vector<Observation> broad;
  broad.push_back({0, RandomDistribution(n, 2, &rng)});
  broad.push_back(
      {5, sparse::ProbVector::UniformOver(sparse::IndexSet::All(n))
              .ValueOrDie()});

  std::vector<Observation> sharp = broad;
  // Keep only the lower half of the support, same relative weights.
  auto lower_half =
      sparse::IndexSet::FromRange(n, 0, n / 2).ValueOrDie();
  std::vector<std::pair<uint32_t, double>> kept;
  sharp[1].pdf.ForEachNonZero([&](uint32_t s, double p) {
    if (lower_half.Contains(s)) kept.emplace_back(s, p);
  });
  sharp[1].pdf =
      sparse::ProbVector::FromPairs(n, std::move(kept)).ValueOrDie();

  MultiObservationEngine engine(&chain, window);
  const auto a = engine.Evaluate(broad);
  ASSERT_TRUE(a.ok());
  const auto b = engine.Evaluate(sharp);
  if (b.ok()) {
    EXPECT_LE(b.value().surviving_mass,
              a.value().surviving_mass * (1.0 + 1e-9));
  }
  // (b may legitimately fail with kInconsistent if no world survives.)
}

INSTANTIATE_TEST_SUITE_P(Sweep, Lemma1PropertyTest,
                         ::testing::Values(Param{4, 1}, Param{4, 2},
                                           Param{6, 3}, Param{6, 4},
                                           Param{8, 5}, Param{8, 6},
                                           Param{10, 7}, Param{12, 8}),
                         [](const ::testing::TestParamInfo<Param>& info) {
                           return "n" +
                                  std::to_string(std::get<0>(info.param)) +
                                  "_seed" +
                                  std::to_string(std::get<1>(info.param));
                         });

}  // namespace
}  // namespace core
}  // namespace ustdb
