#include "core/independent_baseline.h"

#include <gtest/gtest.h>

#include "core/object_based.h"
#include "testing/random_models.h"
#include "util/rng.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::PaperChainV;
using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

TEST(IndependentBaselineTest, SingleTimestampEqualsCorrectModel) {
  // With |T□| = 1 there is no dependence to ignore: both models agree.
  markov::MarkovChain chain = PaperChainV();
  auto region = sparse::IndexSet::FromIndices(3, {0, 1}).ValueOrDie();
  auto window = QueryWindow::Create(region, {2}).ValueOrDie();
  IndependentBaseline baseline(&chain, window);
  ObjectBasedEngine correct(&chain, window);
  const sparse::ProbVector initial = sparse::ProbVector::Delta(3, 1);
  EXPECT_NEAR(baseline.ExistsProbability(initial),
              correct.ExistsProbability(initial), 1e-12);
}

TEST(IndependentBaselineTest, WindowMarginalsMatchPropagation) {
  markov::MarkovChain chain = PaperChainV();
  auto window = QueryWindow::FromRanges(3, 0, 1, 2, 3).ValueOrDie();
  IndependentBaseline baseline(&chain, window);
  const sparse::ProbVector initial = sparse::ProbVector::Delta(3, 1);
  const std::vector<double> marginals = baseline.WindowMarginals(initial);
  ASSERT_EQ(marginals.size(), 2u);
  // P(o,2) = (0, 0.32, 0.68) -> window mass 0.32;
  // P(o,3) = (0.192, 0.544, 0.264) -> window mass 0.736.
  EXPECT_NEAR(marginals[0], 0.32, 1e-12);
  EXPECT_NEAR(marginals[1], 0.736, 1e-12);
}

TEST(IndependentBaselineTest, PaperWindowOverestimates) {
  // Figure 9(d)'s bias: assuming independence inflates P∃ relative to the
  // temporally-correlated truth (1 − 0.68·0.264 = 0.8205 vs 0.864? No —
  // compute: 1 − (1−0.32)(1−0.736) = 0.8205, the truth is 0.864, so here
  // independence *under*estimates; the direction depends on correlation
  // sign. What must hold generally: the two disagree whenever |T□| > 1 and
  // correlations exist).
  markov::MarkovChain chain = PaperChainV();
  auto window = QueryWindow::FromRanges(3, 0, 1, 2, 3).ValueOrDie();
  IndependentBaseline baseline(&chain, window);
  ObjectBasedEngine correct(&chain, window);
  const sparse::ProbVector initial = sparse::ProbVector::Delta(3, 1);
  const double indep = baseline.ExistsProbability(initial);
  const double truth = correct.ExistsProbability(initial);
  EXPECT_NEAR(indep, 0.82048, 1e-5);
  EXPECT_NEAR(truth, 0.864, 1e-12);
  EXPECT_GT(std::abs(indep - truth), 0.01);
}

TEST(IndependentBaselineTest, BiasGrowsWithWindowLength) {
  // The Figure 9(d) effect on a strongly-correlated chain: a near-identity
  // walker that rarely leaves its state. Independence compounds the
  // per-time mass and overshoots increasingly with window length.
  auto chain = markov::MarkovChain::FromDense({{0.95, 0.05, 0.0},
                                               {0.05, 0.90, 0.05},
                                               {0.0, 0.05, 0.95}})
                   .ValueOrDie();
  const sparse::ProbVector initial = sparse::ProbVector::Delta(3, 0);
  auto region = sparse::IndexSet::FromIndices(3, {1}).ValueOrDie();

  std::vector<double> gaps;
  for (Timestamp len : {2u, 4u, 8u, 16u}) {
    std::vector<Timestamp> times;
    for (Timestamp t = 1; t <= len; ++t) times.push_back(t);
    auto window = QueryWindow::Create(region, times).ValueOrDie();
    IndependentBaseline baseline(&chain, window);
    ObjectBasedEngine correct(&chain, window);
    gaps.push_back(baseline.ExistsProbability(initial) -
                   correct.ExistsProbability(initial));
  }
  // The bias grows while both probabilities are away from saturation (the
  // paper's Figure 9(d) regime) ...
  EXPECT_GT(gaps[1], gaps[0]);
  EXPECT_GT(gaps[2], gaps[1]);
  // ... and stays substantial at length 16 (both curves approach 1 there,
  // so strict growth is no longer guaranteed).
  EXPECT_GT(gaps[3], 0.05);
}

TEST(IndependentBaselineTest, NeverBelowAnySingleMarginal) {
  // 1 − Π(1 − m_t) >= max_t m_t always.
  util::Rng rng(71);
  markov::MarkovChain chain = RandomChain(12, 3, &rng);
  auto window = QueryWindow::FromRanges(12, 3, 6, 2, 7).ValueOrDie();
  IndependentBaseline baseline(&chain, window);
  const sparse::ProbVector initial = RandomDistribution(12, 3, &rng);
  const auto marginals = baseline.WindowMarginals(initial);
  const double p = baseline.ExistsProbability(initial);
  for (double m : marginals) EXPECT_GE(p, m - 1e-12);
}

}  // namespace
}  // namespace core
}  // namespace ustdb
