#include "core/k_times.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/object_based.h"
#include "exact/possible_worlds.h"
#include "testing/random_models.h"
#include "util/rng.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::PaperChainV;
using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

QueryWindow WindowV() {
  return QueryWindow::FromRanges(3, 0, 1, 2, 3).ValueOrDie();
}

TEST(KTimesTest, PaperWorkedExample) {
  // Section VII: the C(t) algorithm on the running example yields
  // P(0 visits) = 0.136, P(1) = 0.672, P(2) = 0.192.
  markov::MarkovChain chain = PaperChainV();
  KTimesEngine engine(&chain, WindowV());
  const std::vector<double> dist =
      engine.Distribution(sparse::ProbVector::Delta(3, 1));
  ASSERT_EQ(dist.size(), 3u);
  EXPECT_NEAR(dist[0], 0.136, 1e-12);
  EXPECT_NEAR(dist[1], 0.672, 1e-12);
  EXPECT_NEAR(dist[2], 0.192, 1e-12);
}

TEST(KTimesTest, ExplicitBlockMatrixModeAgrees) {
  markov::MarkovChain chain = PaperChainV();
  KTimesEngine implicit(&chain, WindowV());
  KTimesEngine explicit_engine(&chain, WindowV(),
                               {.mode = MatrixMode::kExplicit});
  const sparse::ProbVector initial = sparse::ProbVector::Delta(3, 1);
  const auto a = implicit.Distribution(initial);
  const auto b = explicit_engine.Distribution(initial);
  ASSERT_EQ(a.size(), b.size());
  for (size_t k = 0; k < a.size(); ++k) {
    EXPECT_NEAR(a[k], b[k], 1e-12) << "k=" << k;
  }
}

TEST(KTimesTest, DistributionSumsToOne) {
  util::Rng rng(31);
  for (int round = 0; round < 10; ++round) {
    markov::MarkovChain chain = RandomChain(12, 3, &rng);
    auto window = QueryWindow::FromRanges(12, 2, 5, 1, 5).ValueOrDie();
    KTimesEngine engine(&chain, window);
    const auto dist = engine.Distribution(RandomDistribution(12, 3, &rng));
    const double total = std::accumulate(dist.begin(), dist.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9) << "round " << round;
    for (double p : dist) EXPECT_GE(p, -1e-12);
  }
}

TEST(KTimesTest, ZeroVisitsComplementsExists) {
  // P∃ = 1 − P(k = 0): the two engines must agree exactly.
  util::Rng rng(37);
  for (int round = 0; round < 10; ++round) {
    markov::MarkovChain chain = RandomChain(10, 3, &rng);
    auto window = QueryWindow::FromRanges(10, 2, 4, 2, 5).ValueOrDie();
    const sparse::ProbVector initial = RandomDistribution(10, 2, &rng);
    KTimesEngine ktimes(&chain, window);
    ObjectBasedEngine exists(&chain, window);
    EXPECT_NEAR(1.0 - ktimes.Distribution(initial)[0],
                exists.ExistsProbability(initial), 1e-10)
        << "round " << round;
  }
}

TEST(KTimesTest, MatchesEnumeration) {
  util::Rng rng(41);
  for (int round = 0; round < 8; ++round) {
    markov::MarkovChain chain = RandomChain(5, 3, &rng);
    auto window = QueryWindow::FromRanges(5, 1, 2, 1, 4).ValueOrDie();
    const sparse::ProbVector initial = RandomDistribution(5, 2, &rng);
    KTimesEngine engine(&chain, window);
    const auto got = engine.Distribution(initial);
    const auto want =
        exact::KTimesByEnumeration(chain, initial, window).ValueOrDie();
    ASSERT_EQ(got.size(), want.size());
    for (size_t k = 0; k < got.size(); ++k) {
      EXPECT_NEAR(got[k], want[k], 1e-10) << "round " << round << " k " << k;
    }
  }
}

TEST(KTimesTest, FullVisitsMatchesForAll) {
  // P(k = |T□|) is exactly the for-all probability.
  util::Rng rng(43);
  markov::MarkovChain chain = RandomChain(8, 3, &rng);
  auto window = QueryWindow::FromRanges(8, 1, 4, 1, 3).ValueOrDie();
  const sparse::ProbVector initial = RandomDistribution(8, 2, &rng);
  KTimesEngine engine(&chain, window);
  const double forall =
      exact::ForAllByEnumeration(chain, initial, window).ValueOrDie();
  EXPECT_NEAR(engine.Distribution(initial)[window.num_times()], forall,
              1e-10);
}

TEST(KTimesTest, DeterministicCycleCountsExactly) {
  // Cycle 0->1->2->0; window = {0} at times {3, 6}: the walker is at state
  // 0 at both, so k = 2 with certainty.
  auto chain = markov::MarkovChain::FromDense(
                   {{0, 1, 0}, {0, 0, 1}, {1, 0, 0}})
                   .ValueOrDie();
  auto region = sparse::IndexSet::FromIndices(3, {0}).ValueOrDie();
  auto window = QueryWindow::Create(region, {3, 6}).ValueOrDie();
  KTimesEngine engine(&chain, window);
  const auto dist = engine.Distribution(sparse::ProbVector::Delta(3, 0));
  EXPECT_NEAR(dist[0], 0.0, 1e-12);
  EXPECT_NEAR(dist[1], 0.0, 1e-12);
  EXPECT_NEAR(dist[2], 1.0, 1e-12);
}

TEST(KTimesTest, WindowAtTimeZeroShiftsInitialMass) {
  markov::MarkovChain chain = PaperChainV();
  auto region = sparse::IndexSet::FromIndices(3, {1}).ValueOrDie();
  auto window = QueryWindow::Create(region, {0}).ValueOrDie();
  KTimesEngine engine(&chain, window);
  const auto dist = engine.Distribution(sparse::ProbVector::Delta(3, 1));
  ASSERT_EQ(dist.size(), 2u);
  EXPECT_NEAR(dist[0], 0.0, 1e-12);
  EXPECT_NEAR(dist[1], 1.0, 1e-12);
}

TEST(KTimesTest, ProbabilityAccessorMatchesDistribution) {
  markov::MarkovChain chain = PaperChainV();
  KTimesEngine engine(&chain, WindowV());
  const sparse::ProbVector initial = sparse::ProbVector::Delta(3, 1);
  const auto dist = engine.Distribution(initial);
  for (uint32_t k = 0; k < dist.size(); ++k) {
    EXPECT_DOUBLE_EQ(engine.Probability(initial, k), dist[k]);
  }
}

}  // namespace
}  // namespace core
}  // namespace ustdb
