#include "core/parallel_processor.h"

#include <gtest/gtest.h>

#include "testing/random_models.h"
#include "util/parallel_for.h"
#include "util/rng.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

Database MakeDb(uint32_t num_chains, uint32_t num_objects, uint64_t seed) {
  util::Rng rng(seed);
  Database db;
  std::vector<ChainId> chains;
  for (uint32_t c = 0; c < num_chains; ++c) {
    chains.push_back(db.AddChain(RandomChain(25, 3, &rng)));
  }
  for (uint32_t i = 0; i < num_objects; ++i) {
    (void)db.AddObjectAt(chains[i % num_chains],
                         RandomDistribution(25, 3, &rng))
        .ValueOrDie();
  }
  return db;
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 3u, 8u}) {
    std::vector<int> hits(1000, 0);
    util::ParallelChunks(hits.size(), threads, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) ++hits[i];
    });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i], 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelForTest, HandlesEmptyAndTinyRanges) {
  int calls = 0;
  util::ParallelChunks(0, 4, [&](size_t b, size_t e) {
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);

  std::vector<int> hits(3, 0);
  util::ParallelChunks(3, 16, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) ++hits[i];
  });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(ParallelExistsTest, MatchesSequentialProcessorBothPlans) {
  Database db = MakeDb(3, 40, 401);
  auto window = QueryWindow::FromRanges(25, 6, 12, 3, 8).ValueOrDie();
  QueryProcessor sequential(&db);

  for (Plan plan : {Plan::kQueryBased, Plan::kObjectBased}) {
    const auto want =
        sequential.Exists(window, {.plan = plan}).ValueOrDie();
    for (unsigned threads : {1u, 2u, 4u}) {
      const auto got =
          ParallelExists(db, window, {.plan = plan, .num_threads = threads})
              .ValueOrDie();
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].id, want[i].id);
        // Bit-identical: the same arithmetic runs per object either way.
        EXPECT_DOUBLE_EQ(got[i].probability, want[i].probability)
            << "plan " << static_cast<int>(plan) << " threads " << threads
            << " obj " << i;
      }
    }
  }
}

TEST(ParallelExistsTest, MoreThreadsThanObjects) {
  Database db = MakeDb(1, 3, 402);
  auto window = QueryWindow::FromRanges(25, 6, 12, 2, 5).ValueOrDie();
  const auto got =
      ParallelExists(db, window, {.num_threads = 32}).ValueOrDie();
  EXPECT_EQ(got.size(), 3u);
}

TEST(ParallelExistsTest, RejectsMultiObservationObjects) {
  util::Rng rng(403);
  Database db;
  const ChainId c = db.AddChain(RandomChain(10, 3, &rng));
  std::vector<Observation> multi;
  multi.push_back({0, RandomDistribution(10, 2, &rng)});
  multi.push_back({4, RandomDistribution(10, 2, &rng)});
  (void)db.AddObject(c, multi).ValueOrDie();
  auto window = QueryWindow::FromRanges(10, 2, 5, 1, 3).ValueOrDie();
  const auto r = ParallelExists(db, window);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kUnimplemented);
}

TEST(ParallelExistsTest, EmptyDatabase) {
  Database db;
  (void)db.AddChain(::ustdb::testing::PaperChainV());
  auto window = QueryWindow::FromRanges(3, 0, 1, 2, 3).ValueOrDie();
  EXPECT_TRUE(ParallelExists(db, window).ValueOrDie().empty());
}

}  // namespace
}  // namespace core
}  // namespace ustdb
