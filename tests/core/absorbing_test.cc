#include "core/absorbing.h"

#include <gtest/gtest.h>

#include "testing/random_models.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::PaperChainV;
using ::ustdb::testing::PaperChainVI;

// Window of the Section V running example: S□ = {s1, s2}, T□ = {2, 3}
// (0-based states {0, 1}).
QueryWindow WindowV() {
  return QueryWindow::FromRanges(3, 0, 1, 2, 3).ValueOrDie();
}

TEST(AbsorbingTest, Example1MatricesMatchPaper) {
  // Paper Example 1:
  //   M− = [[0,0,1,0],[0.6,0,0.4,0],[0,0.8,0.2,0],[0,0,0,1]]
  //   M+ = [[0,0,1,0],[0,0,0.4,0.6],[0,0,0.2,0.8],[0,0,0,1]]
  markov::MarkovChain chain = PaperChainV();
  AugmentedMatrices aug =
      BuildAbsorbingMatrices(chain, WindowV().region());

  const std::vector<std::vector<double>> want_minus = {
      {0, 0, 1, 0}, {0.6, 0, 0.4, 0}, {0, 0.8, 0.2, 0}, {0, 0, 0, 1}};
  const std::vector<std::vector<double>> want_plus = {
      {0, 0, 1, 0}, {0, 0, 0.4, 0.6}, {0, 0, 0.2, 0.8}, {0, 0, 0, 1}};
  const auto got_minus = aug.minus.ToDense();
  const auto got_plus = aug.plus.ToDense();
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint32_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(got_minus[i][j], want_minus[i][j], 1e-12)
          << "M-(" << i << "," << j << ")";
      EXPECT_NEAR(got_plus[i][j], want_plus[i][j], 1e-12)
          << "M+(" << i << "," << j << ")";
    }
  }
}

TEST(AbsorbingTest, AbsorbingMatricesAreStochastic) {
  markov::MarkovChain chain = PaperChainV();
  AugmentedMatrices aug =
      BuildAbsorbingMatrices(chain, WindowV().region());
  EXPECT_TRUE(aug.minus.IsStochastic());
  EXPECT_TRUE(aug.plus.IsStochastic());
}

TEST(AbsorbingTest, DiamondIsAbsorbingInBothMatrices) {
  markov::MarkovChain chain = PaperChainV();
  AugmentedMatrices aug =
      BuildAbsorbingMatrices(chain, WindowV().region());
  EXPECT_DOUBLE_EQ(aug.minus.Get(3, 3), 1.0);
  EXPECT_EQ(aug.minus.RowNnz(3), 1u);
  EXPECT_DOUBLE_EQ(aug.plus.Get(3, 3), 1.0);
  EXPECT_EQ(aug.plus.RowNnz(3), 1u);
}

TEST(AbsorbingTest, DoubledMatricesMatchSectionVI) {
  // Section VI example (chain with row 2 = (0.5, 0, 0.5)):
  //   M+ = [[0,0,1,0,0,0],[0,0,0.5,0.5,0,0],[0,0,0.2,0,0.8,0],
  //         [0,0,0,0,0,1],[0,0,0,0.5,0,0.5],[0,0,0,0,0.8,0.2]]
  markov::MarkovChain chain = PaperChainVI();
  AugmentedMatrices aug = BuildDoubledMatrices(chain, WindowV().region());

  const std::vector<std::vector<double>> want_plus = {
      {0, 0, 1, 0, 0, 0},   {0, 0, 0.5, 0.5, 0, 0}, {0, 0, 0.2, 0, 0.8, 0},
      {0, 0, 0, 0, 0, 1},   {0, 0, 0, 0.5, 0, 0.5}, {0, 0, 0, 0, 0.8, 0.2}};
  const std::vector<std::vector<double>> want_minus = {
      {0, 0, 1, 0, 0, 0},   {0.5, 0, 0.5, 0, 0, 0}, {0, 0.8, 0.2, 0, 0, 0},
      {0, 0, 0, 0, 0, 1},   {0, 0, 0, 0.5, 0, 0.5}, {0, 0, 0, 0, 0.8, 0.2}};
  const auto got_plus = aug.plus.ToDense();
  const auto got_minus = aug.minus.ToDense();
  for (uint32_t i = 0; i < 6; ++i) {
    for (uint32_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(got_plus[i][j], want_plus[i][j], 1e-12)
          << "M+(" << i << "," << j << ")";
      EXPECT_NEAR(got_minus[i][j], want_minus[i][j], 1e-12)
          << "M-(" << i << "," << j << ")";
    }
  }
  EXPECT_TRUE(aug.plus.IsStochastic());
  EXPECT_TRUE(aug.minus.IsStochastic());
}

TEST(AbsorbingTest, KTimesMatricesAreStochasticAndBlockStructured) {
  markov::MarkovChain chain = PaperChainV();
  const uint32_t K = 2;  // |T□| of the running example
  AugmentedMatrices aug =
      BuildKTimesMatrices(chain, WindowV().region(), K);
  EXPECT_EQ(aug.minus.rows(), 9u);
  EXPECT_EQ(aug.plus.rows(), 9u);
  EXPECT_TRUE(aug.minus.IsStochastic());
  EXPECT_TRUE(aug.plus.IsStochastic());
  // M− is block diagonal: no entry may cross levels.
  for (const auto& t : aug.minus.ToTriplets()) {
    EXPECT_EQ(t.row / 3, t.col / 3);
  }
  // M+ entries either stay on a level or go exactly one level up.
  for (const auto& t : aug.plus.ToTriplets()) {
    const uint32_t lr = t.row / 3;
    const uint32_t lc = t.col / 3;
    EXPECT_TRUE(lc == lr || lc == lr + 1);
    if (lc == lr + 1) {
      // Level-up columns must be window states.
      EXPECT_LT(t.col % 3, 2u);
    }
  }
}

TEST(AbsorbingTest, ExtendInitialAbsorbingNoRedirect) {
  // t=0 not in T□: plain embedding with ◆ = 0.
  auto initial = sparse::ProbVector::Delta(3, 1);
  const sparse::ProbVector ext = ExtendInitialAbsorbing(initial, WindowV());
  EXPECT_EQ(ext.size(), 4u);
  EXPECT_DOUBLE_EQ(ext.Get(1), 1.0);
  EXPECT_DOUBLE_EQ(ext.Get(3), 0.0);
}

TEST(AbsorbingTest, ExtendInitialAbsorbingRedirectsAtTimeZero) {
  // Window containing t=0: initial mass inside S□ is already a true hit.
  auto window = QueryWindow::FromRanges(3, 0, 1, 0, 1).ValueOrDie();
  auto initial =
      sparse::ProbVector::FromPairs(3, {{0, 0.3}, {2, 0.7}}).ValueOrDie();
  const sparse::ProbVector ext = ExtendInitialAbsorbing(initial, window);
  EXPECT_DOUBLE_EQ(ext.Get(0), 0.0);
  EXPECT_DOUBLE_EQ(ext.Get(2), 0.7);
  EXPECT_DOUBLE_EQ(ext.Get(3), 0.3);  // ◆
}

TEST(AbsorbingTest, ExtendInitialDoubledAndKTimesRedirects) {
  auto window = QueryWindow::FromRanges(3, 1, 1, 0, 1).ValueOrDie();
  auto initial =
      sparse::ProbVector::FromPairs(3, {{1, 0.4}, {2, 0.6}}).ValueOrDie();

  const sparse::ProbVector doubled = ExtendInitialDoubled(initial, window);
  EXPECT_EQ(doubled.size(), 6u);
  EXPECT_DOUBLE_EQ(doubled.Get(1), 0.0);
  EXPECT_DOUBLE_EQ(doubled.Get(3 + 1), 0.4);  // hit copy of s1
  EXPECT_DOUBLE_EQ(doubled.Get(2), 0.6);

  const sparse::ProbVector ktimes = ExtendInitialKTimes(initial, window, 2);
  EXPECT_EQ(ktimes.size(), 9u);
  EXPECT_DOUBLE_EQ(ktimes.Get(3 + 1), 0.4);  // level k=1, state s1
  EXPECT_DOUBLE_EQ(ktimes.Get(2), 0.6);      // level k=0
}

TEST(AbsorbingTest, TransposedBuilderEqualsTransposingTheBuiltMatrices) {
  // BuildAbsorbingTransposed assembles (M±)ᵀ from the chain's memoized
  // Mᵀ; it must equal materializing M± and transposing them — on the
  // paper chain and on random chains with random regions.
  util::Rng rng(1234);
  for (int round = 0; round < 8; ++round) {
    const markov::MarkovChain chain =
        round == 0 ? ::ustdb::testing::PaperChainV()
                   : ::ustdb::testing::RandomChain(20, 4, &rng);
    std::vector<uint32_t> members;
    for (uint32_t s = 0; s < chain.num_states(); ++s) {
      if (rng.NextBounded(3) == 0) members.push_back(s);
    }
    if (members.empty()) members.push_back(0);
    const auto region =
        sparse::IndexSet::FromIndices(chain.num_states(), members)
            .ValueOrDie();

    const AugmentedMatrices aug = BuildAbsorbingMatrices(chain, region);
    const AugmentedMatrices augt = BuildAbsorbingTransposed(chain, region);
    EXPECT_EQ(augt.minus, aug.minus.Transposed());
    EXPECT_EQ(augt.plus, aug.plus.Transposed());
  }
}

}  // namespace
}  // namespace core
}  // namespace ustdb
