// Property suite for the Section V-C kBoundsThenRefine plan: across
// randomized multi-cluster databases, windows, and τ values (including τ
// pinned exactly to object probabilities, the >= boundary), the bound
// pass must return the same qualifying set as the pure per-chain plans —
// bit-identical probabilities against the query-based plan, whose engines
// the refine stage reuses — and stop cooperatively mid-refine.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/executor.h"
#include "kernels/isa.h"
#include "testing/random_models.h"
#include "util/cancellation.h"
#include "testing/test_seed.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

constexpr uint32_t kStates = 24;

/// Mixed-class database: `num_clusters` families of jittered chains (the
/// registry folds each family into one cluster) plus `num_loner_chains`
/// independent chains, objects spread round-robin.
Database MakeMixedDb(uint32_t num_clusters, uint32_t chains_per_cluster,
                     uint32_t num_loner_chains, uint32_t num_objects,
                     uint64_t seed) {
  util::Rng rng(seed);
  workload::SyntheticConfig config;
  config.num_states = kStates;
  config.state_spread = 3;
  config.max_step = 8;
  Database db;
  std::vector<ChainId> chains;
  for (uint32_t f = 0; f < num_clusters; ++f) {
    markov::MarkovChain base =
        workload::GenerateChain(config, &rng).ValueOrDie();
    chains.push_back(db.AddChain(base));
    for (uint32_t c = 1; c < chains_per_cluster; ++c) {
      chains.push_back(db.AddChain(
          workload::PerturbChain(base, 0.08, &rng).ValueOrDie()));
    }
  }
  for (uint32_t c = 0; c < num_loner_chains; ++c) {
    chains.push_back(db.AddChain(RandomChain(kStates, 3, &rng)));
  }
  for (uint32_t i = 0; i < num_objects; ++i) {
    (void)db.AddObjectAt(chains[i % chains.size()],
                         RandomDistribution(kStates, 3, &rng))
        .ValueOrDie();
  }
  return db;
}

QueryRequest ThresholdRequest(const QueryWindow& window, double tau,
                              PlanChoice plan) {
  QueryRequest request;
  request.predicate = PredicateKind::kThresholdExists;
  request.window = window;
  request.tau = tau;
  request.plan = plan;
  return request;
}

TEST(BoundsRefinePropertyTest, MatchesPerChainPlansAcrossRandomWorkloads) {
  const uint64_t seed = ustdb::testing::TestSeed(4242);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  util::Rng rng(seed);
  for (uint64_t round = 0; round < 8; ++round) {
    Database db = MakeMixedDb(/*num_clusters=*/2, /*chains_per_cluster=*/3,
                              /*num_loner_chains=*/2, /*num_objects=*/48,
                              ustdb::testing::TestSeed(9000) + round);
    // Random contiguous window.
    const uint32_t s_lo = static_cast<uint32_t>(rng.NextBounded(kStates - 6));
    const uint32_t s_hi = s_lo + 2 + static_cast<uint32_t>(rng.NextBounded(4));
    const Timestamp t_lo = 1 + static_cast<Timestamp>(rng.NextBounded(3));
    const Timestamp t_hi = t_lo + 2 + static_cast<Timestamp>(rng.NextBounded(5));
    const QueryWindow window =
        QueryWindow::FromRanges(kStates, s_lo, std::min(s_hi, kStates - 1),
                                t_lo, t_hi)
            .ValueOrDie();

    QueryExecutor executor(&db, {.num_threads = 1});
    const QueryResult qb_all =
        executor
            .Run(ThresholdRequest(window, -1.0, PlanChoice::kQueryBased))
            .ValueOrDie();  // τ = -1: every object, exact probabilities

    // τ sweep: generic values plus values pinned exactly to object
    // probabilities (the >= boundary) and to boundary±ulp-scale offsets —
    // the regime where an unsound interval bound would flip membership.
    // Pinned τs compare only against the query-based plan (whose engines
    // the refine stage reuses, so membership matches bit for bit); the
    // object-based plan rounds independently and may legitimately flip an
    // exact-boundary object.
    std::vector<double> taus = {0.05, 0.3, 0.7, 0.95, 1.5};
    const size_t num_generic = taus.size();
    for (int k = 0; k < 3; ++k) {
      const size_t pick = static_cast<size_t>(
          rng.NextBounded(static_cast<uint32_t>(qb_all.probabilities.size())));
      const double p = qb_all.probabilities[pick].probability;
      taus.push_back(p);
      taus.push_back(p * (1.0 + 1e-12));
      taus.push_back(p * (1.0 - 1e-12));
    }

    for (size_t t = 0; t < taus.size(); ++t) {
      const double tau = taus[t];
      const QueryResult bounds =
          executor
              .Run(ThresholdRequest(window, tau, PlanChoice::kBoundsThenRefine))
              .ValueOrDie();
      const QueryResult qb =
          executor.Run(ThresholdRequest(window, tau, PlanChoice::kQueryBased))
              .ValueOrDie();

      // Bit-identical against the query-based plan: same ids, same bits.
      ASSERT_EQ(bounds.probabilities.size(), qb.probabilities.size())
          << "round " << round << " tau " << tau;
      for (size_t i = 0; i < qb.probabilities.size(); ++i) {
        EXPECT_EQ(bounds.probabilities[i].id, qb.probabilities[i].id);
        EXPECT_EQ(bounds.probabilities[i].probability,
                  qb.probabilities[i].probability)
            << "round " << round << " tau " << tau << " id "
            << qb.probabilities[i].id;
      }
      if (t < num_generic) {
        // Same qualifying set as the object-based plan; values agree to
        // rounding (OB and QB are distinct exact algorithms).
        const QueryResult ob =
            executor
                .Run(ThresholdRequest(window, tau, PlanChoice::kObjectBased))
                .ValueOrDie();
        ASSERT_EQ(bounds.probabilities.size(), ob.probabilities.size())
            << "round " << round << " tau " << tau;
        for (size_t i = 0; i < ob.probabilities.size(); ++i) {
          EXPECT_EQ(bounds.probabilities[i].id, ob.probabilities[i].id);
          EXPECT_NEAR(bounds.probabilities[i].probability,
                      ob.probabilities[i].probability, 1e-10);
        }
      }
      // Accounting invariant: decided + refined covers every object.
      const PruneStats& prune = bounds.stats.prune;
      EXPECT_EQ(prune.objects_decided_by_bounds + prune.objects_refined,
                db.num_objects());
      EXPECT_EQ(prune.clusters_pruned + prune.clusters_refined,
                prune.clusters_bounded);
    }
  }
}

TEST(BoundsRefinePropertyTest, AutoPlanSelectsBoundsOnPrunableWorkload) {
  // Many similar chain classes with few objects each: the cost model must
  // route a plain kAuto threshold request through the bound pass.
  workload::SyntheticConfig config;
  config.num_states = kStates;
  config.num_objects = 96;
  config.state_spread = 3;
  config.max_step = 8;
  config.seed = ustdb::testing::TestSeed(77);
  SCOPED_TRACE(ustdb::testing::SeedTrace(config.seed));
  Database db =
      workload::GenerateMultiChainDatabase(config, /*num_chains=*/24,
                                           /*jitter=*/0.05)
          .ValueOrDie();
  const QueryWindow window =
      QueryWindow::FromRanges(kStates, 6, 12, 2, 8).ValueOrDie();
  QueryExecutor executor(&db, {.num_threads = 1});
  const QueryResult with_auto =
      executor.Run(ThresholdRequest(window, 0.3, PlanChoice::kAuto))
          .ValueOrDie();
  EXPECT_GT(with_auto.stats.prune.clusters_bounded, 0u);
  const QueryResult qb =
      executor.Run(ThresholdRequest(window, 0.3, PlanChoice::kQueryBased))
          .ValueOrDie();
  ASSERT_EQ(with_auto.probabilities.size(), qb.probabilities.size());
  for (size_t i = 0; i < qb.probabilities.size(); ++i) {
    EXPECT_EQ(with_auto.probabilities[i].id, qb.probabilities[i].id);
    EXPECT_EQ(with_auto.probabilities[i].probability,
              qb.probabilities[i].probability);
  }
}

TEST(BoundsRefinePropertyTest, BatchMembersMatchSoloBoundsRuns) {
  Database db = MakeMixedDb(2, 3, 1, 64, 555);
  const QueryWindow window =
      QueryWindow::FromRanges(kStates, 4, 10, 2, 7).ValueOrDie();
  std::vector<QueryRequest> batch;
  for (double tau : {0.1, 0.45, 0.8}) {
    batch.push_back(
        ThresholdRequest(window, tau, PlanChoice::kBoundsThenRefine));
  }
  // A same-window exists member shares the group without disturbing the
  // bounds members' query-based refinement.
  batch.push_back({.predicate = PredicateKind::kExists, .window = window});

  QueryExecutor batch_executor(&db, {.num_threads = 1});
  const auto results = batch_executor.RunBatch(batch);
  QueryExecutor solo_executor(&db, {.num_threads = 1});
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << "member " << i;
    const QueryResult solo = solo_executor.Run(batch[i]).ValueOrDie();
    const QueryResult& member = *results[i];
    ASSERT_EQ(member.probabilities.size(), solo.probabilities.size())
        << "member " << i;
    for (size_t j = 0; j < solo.probabilities.size(); ++j) {
      EXPECT_EQ(member.probabilities[j].id, solo.probabilities[j].id);
      EXPECT_EQ(member.probabilities[j].probability,
                solo.probabilities[j].probability);
    }
    if (batch[i].predicate == PredicateKind::kThresholdExists) {
      EXPECT_EQ(member.stats.prune.objects_decided_by_bounds +
                    member.stats.prune.objects_refined,
                db.num_objects())
          << "member " << i;
    }
  }
}

TEST(BoundsRefinePropertyTest, InterleavedEnvelopePrunesIdenticallyAcrossIsas) {
  // The interval envelope is stored as interleaved {lo, hi} pairs and
  // swept by the dispatched envelope_row_sweep kernel, whose contract is
  // strictly sequential mul+add in every implementation. Consequence
  // under test: the vectorized bound pass must prune EXACTLY the same
  // set as the scalar one — same per-plan result bits, same PruneStats —
  // including at τ values pinned to exact object probabilities.
  if (!kernels::IsaSupported(kernels::Isa::kAvx2)) {
    GTEST_SKIP() << "AVX2 not supported on this host";
  }
  const kernels::Isa prev = kernels::ActiveIsa();
  Database db = MakeMixedDb(2, 3, 2, 48, 2026);
  const QueryWindow window =
      QueryWindow::FromRanges(kStates, 5, 11, 2, 7).ValueOrDie();
  QueryExecutor executor(&db, {.num_threads = 1});

  ASSERT_TRUE(kernels::SetActiveIsa(kernels::Isa::kBaseline));
  const QueryResult all =
      executor.Run(ThresholdRequest(window, -1.0, PlanChoice::kQueryBased))
          .ValueOrDie();
  std::vector<double> taus = {0.05, 0.3, 0.7, 0.95};
  for (size_t pick : {size_t{0}, all.probabilities.size() / 2}) {
    taus.push_back(all.probabilities[pick].probability);  // exact boundary
  }

  for (const double tau : taus) {
    ASSERT_TRUE(kernels::SetActiveIsa(kernels::Isa::kBaseline));
    const QueryResult scalar =
        executor
            .Run(ThresholdRequest(window, tau, PlanChoice::kBoundsThenRefine))
            .ValueOrDie();
    ASSERT_TRUE(kernels::SetActiveIsa(kernels::Isa::kAvx2));
    const QueryResult vectorized =
        executor
            .Run(ThresholdRequest(window, tau, PlanChoice::kBoundsThenRefine))
            .ValueOrDie();

    ASSERT_EQ(vectorized.probabilities.size(), scalar.probabilities.size())
        << "tau " << tau;
    for (size_t i = 0; i < scalar.probabilities.size(); ++i) {
      EXPECT_EQ(vectorized.probabilities[i].id, scalar.probabilities[i].id);
      EXPECT_EQ(vectorized.probabilities[i].probability,
                scalar.probabilities[i].probability)
          << "tau " << tau << " id " << scalar.probabilities[i].id;
    }
    const PruneStats& sp = scalar.stats.prune;
    const PruneStats& vp = vectorized.stats.prune;
    EXPECT_EQ(vp.clusters_bounded, sp.clusters_bounded);
    EXPECT_EQ(vp.clusters_pruned, sp.clusters_pruned);
    EXPECT_EQ(vp.clusters_refined, sp.clusters_refined);
    EXPECT_EQ(vp.objects_decided_by_bounds, sp.objects_decided_by_bounds);
    EXPECT_EQ(vp.objects_refined, sp.objects_refined);
    EXPECT_EQ(sp.objects_decided_by_bounds + sp.objects_refined,
              db.num_objects());
  }
  kernels::SetActiveIsa(prev);
}

TEST(BoundsRefinePropertyTest, CancellationMidRefineStopsEarly) {
  // τ = -1 makes every object refine (no upper bound is below a negative
  // τ), so the refine loop dominates; a poll budget beyond the bound
  // phase's per-cluster checks trips the token mid-refine. The run must
  // resolve kCancelled having evaluated provably fewer objects than its
  // uncancelled twin.
  Database db = MakeMixedDb(2, 2, 0, 512, 321);
  const QueryWindow window =
      QueryWindow::FromRanges(kStates, 4, 10, 2, 7).ValueOrDie();
  QueryExecutor executor(&db, {.num_threads = 1});

  const QueryResult full =
      executor
          .Run(ThresholdRequest(window, -1.0, PlanChoice::kBoundsThenRefine))
          .ValueOrDie();
  ASSERT_EQ(full.stats.prune.objects_refined, db.num_objects());
  ASSERT_EQ(full.stats.objects_evaluated, db.num_objects());

  QueryRequest cancelled =
      ThresholdRequest(window, -1.0, PlanChoice::kBoundsThenRefine);
  util::CancellationSource source;
  // Polls spent before the refine loop: one submission check plus one per
  // bounded cluster; a budget a few sub-chunks beyond that stops inside
  // the refine loop's strided checks.
  source.RequestStopAfterPolls(1 + full.stats.prune.clusters_bounded + 3);
  cancelled.cancel = source.token();
  const auto result = executor.Run(cancelled);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCancelled);
  const ExecStats& stats = executor.last_run_stats();
  EXPECT_GT(stats.objects_evaluated, 0u);
  EXPECT_LT(stats.objects_evaluated, db.num_objects());
}

TEST(BoundsRefinePropertyTest, CancellationBetweenClustersSkipsBounding) {
  // A budget of exactly the submission poll plus one cluster check stops
  // the bound phase before the second cluster: no refinement happens at
  // all.
  Database db = MakeMixedDb(3, 2, 0, 60, 654);
  const QueryWindow window =
      QueryWindow::FromRanges(kStates, 4, 10, 2, 7).ValueOrDie();
  QueryExecutor executor(&db, {.num_threads = 1});
  QueryRequest request =
      ThresholdRequest(window, 0.4, PlanChoice::kBoundsThenRefine);
  util::CancellationSource source;
  source.RequestStopAfterPolls(2);
  request.cancel = source.token();
  const auto result = executor.Run(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCancelled);
  const ExecStats& stats = executor.last_run_stats();
  EXPECT_LT(stats.prune.clusters_bounded, 3u);
  EXPECT_EQ(stats.objects_evaluated, 0u);
}

}  // namespace
}  // namespace core
}  // namespace ustdb
