#include "core/time_varying_engines.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/forall.h"
#include "core/k_times.h"
#include "core/object_based.h"
#include "core/query_based.h"
#include "exact/possible_worlds.h"
#include "testing/random_models.h"
#include "util/rng.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::PaperChainV;
using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

markov::TimeVaryingChain RandomSchedule(uint32_t n, uint32_t period,
                                        util::Rng* rng) {
  std::vector<markov::MarkovChain> phases;
  for (uint32_t i = 0; i < period; ++i) {
    phases.push_back(RandomChain(n, 2 + i % 2, rng));
  }
  return markov::TimeVaryingChain::FromPhases(std::move(phases)).ValueOrDie();
}

TEST(TimeVaryingEnginesTest, PeriodOneReducesToHomogeneousEngines) {
  markov::TimeVaryingChain tv =
      markov::TimeVaryingChain::FromHomogeneous(PaperChainV());
  markov::MarkovChain homogeneous = PaperChainV();
  auto window = QueryWindow::FromRanges(3, 0, 1, 2, 3).ValueOrDie();
  const sparse::ProbVector initial = sparse::ProbVector::Delta(3, 1);

  ObjectBasedEngine ob(&homogeneous, window);
  EXPECT_NEAR(TimeVaryingExistsForward(tv, window, initial),
              ob.ExistsProbability(initial), 1e-12);
  EXPECT_NEAR(TimeVaryingExistsForward(tv, window, initial), 0.864, 1e-12);

  QueryBasedEngine qb(&homogeneous, window);
  const sparse::ProbVector tv_start =
      TimeVaryingExistsStartVector(tv, window);
  EXPECT_NEAR(tv_start.MaxAbsDiff(qb.start_vector()), 0.0, 1e-12);

  ForAllObjectBased forall(&homogeneous, window);
  EXPECT_NEAR(TimeVaryingForAll(tv, window, initial),
              forall.ForAllProbability(initial), 1e-12);

  KTimesEngine ktimes(&homogeneous, window);
  const auto a = TimeVaryingKTimes(tv, window, initial);
  const auto b = ktimes.Distribution(initial);
  ASSERT_EQ(a.size(), b.size());
  for (size_t k = 0; k < a.size(); ++k) EXPECT_NEAR(a[k], b[k], 1e-12);
}

TEST(TimeVaryingEnginesTest, ForwardMatchesEnumeration) {
  util::Rng rng(101);
  for (int round = 0; round < 10; ++round) {
    markov::TimeVaryingChain tv = RandomSchedule(6, 3, &rng);
    auto window = QueryWindow::FromRanges(6, 1, 3, 2, 5).ValueOrDie();
    const sparse::ProbVector initial = RandomDistribution(6, 2, &rng);
    const double truth =
        exact::TimeVaryingExistsByEnumeration(tv, initial, window)
            .ValueOrDie();
    EXPECT_NEAR(TimeVaryingExistsForward(tv, window, initial), truth, 1e-10)
        << "round " << round;
  }
}

TEST(TimeVaryingEnginesTest, BackwardAgreesWithForward) {
  util::Rng rng(103);
  for (int round = 0; round < 10; ++round) {
    markov::TimeVaryingChain tv = RandomSchedule(10, 4, &rng);
    auto window = QueryWindow::FromRanges(10, 2, 5, 3, 7).ValueOrDie();
    const sparse::ProbVector start = TimeVaryingExistsStartVector(tv, window);
    for (int obj = 0; obj < 5; ++obj) {
      const sparse::ProbVector initial = RandomDistribution(10, 3, &rng);
      EXPECT_NEAR(initial.Dot(start),
                  TimeVaryingExistsForward(tv, window, initial), 1e-10)
          << "round " << round << " obj " << obj;
    }
  }
}

TEST(TimeVaryingEnginesTest, KTimesSumsToOneAndMatchesExists) {
  util::Rng rng(107);
  markov::TimeVaryingChain tv = RandomSchedule(8, 2, &rng);
  auto window = QueryWindow::FromRanges(8, 1, 4, 1, 5).ValueOrDie();
  const sparse::ProbVector initial = RandomDistribution(8, 2, &rng);
  const auto dist = TimeVaryingKTimes(tv, window, initial);
  EXPECT_NEAR(std::accumulate(dist.begin(), dist.end(), 0.0), 1.0, 1e-9);
  EXPECT_NEAR(1.0 - dist[0], TimeVaryingExistsForward(tv, window, initial),
              1e-10);
}

TEST(TimeVaryingEnginesTest, ForAllComplement) {
  util::Rng rng(109);
  markov::TimeVaryingChain tv = RandomSchedule(8, 3, &rng);
  auto window = QueryWindow::FromRanges(8, 2, 5, 2, 4).ValueOrDie();
  const sparse::ProbVector initial = RandomDistribution(8, 3, &rng);
  const double forall = TimeVaryingForAll(tv, window, initial);
  const double exists_c = TimeVaryingExistsForward(
      tv, window.WithComplementRegion(), initial);
  EXPECT_NEAR(forall, 1.0 - exists_c, 1e-12);
  // And the k-times top bucket equals for-all.
  const auto dist = TimeVaryingKTimes(tv, window, initial);
  EXPECT_NEAR(dist.back(), forall, 1e-10);
}

TEST(TimeVaryingEnginesTest, PhaseOrderMatters) {
  // Deterministic right/left shifts: swapping the schedule changes the
  // query answer — the property a homogeneous model cannot express.
  auto right = markov::MarkovChain::FromDense(
                   {{0, 1, 0}, {0, 0, 1}, {1, 0, 0}})
                   .ValueOrDie();
  auto left = markov::MarkovChain::FromDense(
                  {{0, 0, 1}, {1, 0, 0}, {0, 1, 0}})
                  .ValueOrDie();
  std::vector<markov::MarkovChain> rl;
  rl.push_back(right);
  rl.push_back(left);
  std::vector<markov::MarkovChain> lr;
  lr.push_back(std::move(left));
  lr.push_back(std::move(right));
  auto chain_rl =
      markov::TimeVaryingChain::FromPhases(std::move(rl)).ValueOrDie();
  auto chain_lr =
      markov::TimeVaryingChain::FromPhases(std::move(lr)).ValueOrDie();

  auto region = sparse::IndexSet::FromIndices(3, {1}).ValueOrDie();
  auto window = QueryWindow::Create(region, {1}).ValueOrDie();
  const sparse::ProbVector initial = sparse::ProbVector::Delta(3, 0);
  // right first: 0 -> 1 at t=1 (hit). left first: 0 -> 2 at t=1 (miss).
  EXPECT_DOUBLE_EQ(TimeVaryingExistsForward(chain_rl, window, initial), 1.0);
  EXPECT_DOUBLE_EQ(TimeVaryingExistsForward(chain_lr, window, initial), 0.0);
}

TEST(TimeVaryingEnginesTest, WindowAtTimeZero) {
  util::Rng rng(113);
  markov::TimeVaryingChain tv = RandomSchedule(6, 2, &rng);
  auto region = sparse::IndexSet::FromIndices(6, {2}).ValueOrDie();
  auto window = QueryWindow::Create(region, {0, 2}).ValueOrDie();
  EXPECT_DOUBLE_EQ(TimeVaryingExistsForward(
                       tv, window, sparse::ProbVector::Delta(6, 2)),
                   1.0);
  const sparse::ProbVector start = TimeVaryingExistsStartVector(tv, window);
  EXPECT_DOUBLE_EQ(start.Get(2), 1.0);
}

}  // namespace
}  // namespace core
}  // namespace ustdb
