#include "core/processor.h"

#include <gtest/gtest.h>

#include <numeric>

#include "testing/random_models.h"
#include "util/rng.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::PaperChainV;
using ::ustdb::testing::PaperChainVI;
using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

TEST(ProcessorTest, ExistsOnPaperExample) {
  Database db;
  const ChainId c = db.AddChain(PaperChainV());
  (void)db.AddObjectAt(c, sparse::ProbVector::Delta(3, 1)).ValueOrDie();
  QueryProcessor processor(&db);
  auto window = QueryWindow::FromRanges(3, 0, 1, 2, 3).ValueOrDie();
  const auto results = processor.Exists(window).ValueOrDie();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, 0u);
  EXPECT_NEAR(results[0].probability, 0.864, 1e-12);
}

TEST(ProcessorTest, PlansAgreeAcrossMixedDatabase) {
  util::Rng rng(808);
  Database db;
  const ChainId a = db.AddChain(RandomChain(20, 3, &rng));
  const ChainId b = db.AddChain(RandomChain(20, 4, &rng));
  for (int i = 0; i < 15; ++i) {
    (void)db.AddObjectAt(i % 2 ? a : b, RandomDistribution(20, 3, &rng))
        .ValueOrDie();
  }
  QueryProcessor processor(&db);
  auto window = QueryWindow::FromRanges(20, 5, 9, 3, 7).ValueOrDie();

  const auto ob =
      processor.Exists(window, {.plan = Plan::kObjectBased}).ValueOrDie();
  const auto qb =
      processor.Exists(window, {.plan = Plan::kQueryBased}).ValueOrDie();
  const auto explicit_qb =
      processor
          .Exists(window, {.plan = Plan::kQueryBased,
                           .matrix_mode = MatrixMode::kExplicit})
          .ValueOrDie();
  ASSERT_EQ(ob.size(), qb.size());
  for (size_t i = 0; i < ob.size(); ++i) {
    EXPECT_EQ(ob[i].id, qb[i].id);
    EXPECT_NEAR(ob[i].probability, qb[i].probability, 1e-10);
    EXPECT_NEAR(ob[i].probability, explicit_qb[i].probability, 1e-10);
  }
}

TEST(ProcessorTest, MultiObservationObjectsRoutedAutomatically) {
  Database db;
  const ChainId c = db.AddChain(PaperChainVI());
  // Section VI's object: observed at s1@t0 and s2@t3.
  std::vector<Observation> obs;
  obs.push_back({0, sparse::ProbVector::Delta(3, 0)});
  obs.push_back({3, sparse::ProbVector::Delta(3, 1)});
  (void)db.AddObject(c, obs).ValueOrDie();
  // And a plain single-observation object.
  (void)db.AddObjectAt(c, sparse::ProbVector::Delta(3, 1)).ValueOrDie();

  QueryProcessor processor(&db);
  auto window = QueryWindow::FromRanges(3, 0, 1, 1, 2).ValueOrDie();
  const auto results = processor.Exists(window).ValueOrDie();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NEAR(results[0].probability, 0.0, 1e-12);  // paper's example
  EXPECT_GT(results[1].probability, 0.0);
}

TEST(ProcessorTest, ForAllComplementsExists) {
  util::Rng rng(909);
  Database db;
  const ChainId c = db.AddChain(RandomChain(15, 3, &rng));
  for (int i = 0; i < 10; ++i) {
    (void)db.AddObjectAt(c, RandomDistribution(15, 2, &rng)).ValueOrDie();
  }
  QueryProcessor processor(&db);
  auto window = QueryWindow::FromRanges(15, 4, 9, 2, 5).ValueOrDie();

  const auto forall = processor.ForAll(window).ValueOrDie();
  const auto exists_complement =
      processor.Exists(window.WithComplementRegion()).ValueOrDie();
  ASSERT_EQ(forall.size(), exists_complement.size());
  for (size_t i = 0; i < forall.size(); ++i) {
    EXPECT_NEAR(forall[i].probability,
                1.0 - exists_complement[i].probability, 1e-12);
  }
}

TEST(ProcessorTest, KTimesDistributionsSumToOne) {
  util::Rng rng(111);
  Database db;
  const ChainId c = db.AddChain(RandomChain(12, 3, &rng));
  for (int i = 0; i < 8; ++i) {
    (void)db.AddObjectAt(c, RandomDistribution(12, 3, &rng)).ValueOrDie();
  }
  QueryProcessor processor(&db);
  auto window = QueryWindow::FromRanges(12, 3, 6, 1, 4).ValueOrDie();
  const auto results = processor.KTimes(window).ValueOrDie();
  ASSERT_EQ(results.size(), 8u);
  for (const ObjectKTimes& r : results) {
    ASSERT_EQ(r.distribution.size(), window.num_times() + 1);
    const double total =
        std::accumulate(r.distribution.begin(), r.distribution.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(ProcessorTest, KTimesConsistentWithExists) {
  util::Rng rng(222);
  Database db;
  const ChainId c = db.AddChain(RandomChain(12, 3, &rng));
  for (int i = 0; i < 6; ++i) {
    (void)db.AddObjectAt(c, RandomDistribution(12, 3, &rng)).ValueOrDie();
  }
  QueryProcessor processor(&db);
  auto window = QueryWindow::FromRanges(12, 3, 6, 1, 4).ValueOrDie();
  const auto ktimes = processor.KTimes(window).ValueOrDie();
  const auto exists = processor.Exists(window).ValueOrDie();
  for (size_t i = 0; i < ktimes.size(); ++i) {
    EXPECT_NEAR(1.0 - ktimes[i].distribution[0], exists[i].probability,
                1e-10);
  }
}

TEST(ProcessorTest, KTimesRejectsMultiObservationObjects) {
  Database db;
  const ChainId c = db.AddChain(PaperChainVI());
  std::vector<Observation> obs;
  obs.push_back({0, sparse::ProbVector::Delta(3, 0)});
  obs.push_back({3, sparse::ProbVector::Delta(3, 1)});
  (void)db.AddObject(c, obs).ValueOrDie();
  QueryProcessor processor(&db);
  auto window = QueryWindow::FromRanges(3, 0, 1, 1, 2).ValueOrDie();
  const auto r = processor.KTimes(window);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kUnimplemented);
}

TEST(ProcessorTest, EmptyDatabaseYieldsEmptyResults) {
  Database db;
  (void)db.AddChain(PaperChainV());
  QueryProcessor processor(&db);
  auto window = QueryWindow::FromRanges(3, 0, 1, 2, 3).ValueOrDie();
  EXPECT_TRUE(processor.Exists(window).ValueOrDie().empty());
  EXPECT_TRUE(processor.ForAll(window).ValueOrDie().empty());
  EXPECT_TRUE(processor.KTimes(window).ValueOrDie().empty());
}

}  // namespace
}  // namespace core
}  // namespace ustdb
