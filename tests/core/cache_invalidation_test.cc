// Incremental cache invalidation precision: an append invalidates exactly
// the cached entries derived from the mutated object's chain (and its
// cluster's bound stores) — untouched chains keep their hit rate, the
// cache is never flushed wholesale, stale-epoch entries are never served
// (post-append answers are bit-identical to a cold executor's), and
// QueryResult::epoch names the data version an answer reflects.

#include <gtest/gtest.h>

#include <vector>

#include "core/database.h"
#include "core/engine_cache.h"
#include "core/executor.h"
#include "core/query_request.h"
#include "core/query_window.h"
#include "sparse/prob_vector.h"
#include "testing/random_models.h"
#include "testing/test_seed.h"
#include "util/rng.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

constexpr uint32_t kStates = 30;
constexpr uint32_t kObjectsPerChain = 8;

struct Fixture {
  Database db;
  ChainId chain_a = 0;
  ChainId chain_b = 0;
  std::vector<ObjectId> objects_a;
  std::vector<ObjectId> objects_b;
};

/// Two independently drawn chains (distinct clusters with near-certainty;
/// asserted) with kObjectsPerChain single-observation objects each.
Fixture MakeFixture(uint64_t seed) {
  Fixture f;
  util::Rng rng(seed);
  f.chain_a = f.db.AddChain(RandomChain(kStates, 3, &rng));
  f.chain_b = f.db.AddChain(RandomChain(kStates, 3, &rng));
  EXPECT_NE(f.db.cluster_of(f.chain_a), f.db.cluster_of(f.chain_b));
  for (uint32_t i = 0; i < kObjectsPerChain; ++i) {
    f.objects_a.push_back(
        f.db.AddObjectAt(f.chain_a, RandomDistribution(kStates, 3, &rng))
            .ValueOrDie());
    f.objects_b.push_back(
        f.db.AddObjectAt(f.chain_b, RandomDistribution(kStates, 3, &rng))
            .ValueOrDie());
  }
  return f;
}

QueryRequest ExistsRequest() {
  QueryRequest request;
  request.predicate = PredicateKind::kExists;
  request.plan = PlanChoice::kQueryBased;
  request.window =
      QueryWindow::FromRanges(kStates, 5, 14, 2, 6).ValueOrDie();
  return request;
}

TEST(CacheInvalidationTest, AppendInvalidatesOnlyTheMutatedChain) {
  const uint64_t seed = ustdb::testing::TestSeed(811);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  Fixture f = MakeFixture(seed);
  QueryExecutor exec(&f.db, {.num_threads = 1});

  // Cold run builds one backward pass per chain; warm run serves both.
  auto cold = exec.Run(ExistsRequest());
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(cold.value().stats.cache_misses, 2u);
  auto warm = exec.Run(ExistsRequest());
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.value().stats.cache_hits, 2u);
  EXPECT_EQ(warm.value().stats.cache_invalidations, 0u);

  util::Rng rng(seed ^ 0xCA);
  ASSERT_TRUE(f.db.AppendObservation(
                      f.objects_a[0],
                      {/*time=*/1, RandomDistribution(kStates, kStates, &rng)})
                  .ok());

  // Chain A's entry is stale (dropped: one invalidation, rebuilt as a
  // miss); chain B's entry is served untouched.
  auto after = exec.Run(ExistsRequest());
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after.value().stats.cache_invalidations, 1u);
  EXPECT_EQ(after.value().stats.cache_misses, 1u);
  EXPECT_EQ(after.value().stats.cache_hits, 1u);

  // Precision: a run touching only the untouched chain keeps a pure hit
  // rate — no invalidation, no miss.
  QueryRequest only_b = ExistsRequest();
  only_b.object_filter = f.objects_b;
  auto b_run = exec.Run(only_b);
  ASSERT_TRUE(b_run.ok());
  EXPECT_EQ(b_run.value().stats.cache_hits, 1u);
  EXPECT_EQ(b_run.value().stats.cache_misses, 0u);
  EXPECT_EQ(b_run.value().stats.cache_invalidations, 0u);
}

TEST(CacheInvalidationTest, StaleEntriesAreNeverServed) {
  const uint64_t seed = ustdb::testing::TestSeed(812);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  Fixture f = MakeFixture(seed);
  QueryExecutor warm_exec(&f.db, {.num_threads = 1});

  // Warm the cache, mutate, query again through the SAME executor: the
  // answer must be bit-identical to a cold executor that never cached the
  // pre-append pass.
  ASSERT_TRUE(warm_exec.Run(ExistsRequest()).ok());
  util::Rng rng(seed ^ 0x5E);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        f.db.AppendObservation(
                f.objects_a[i],
                {Timestamp(1 + i), RandomDistribution(kStates, kStates, &rng)})
            .ok());
  }
  auto warm = warm_exec.Run(ExistsRequest());
  ASSERT_TRUE(warm.ok()) << warm.status();

  QueryExecutor cold_exec(&f.db, {.num_threads = 1});
  auto cold = cold_exec.Run(ExistsRequest());
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(warm.value().probabilities.size(),
            cold.value().probabilities.size());
  for (size_t i = 0; i < cold.value().probabilities.size(); ++i) {
    EXPECT_EQ(warm.value().probabilities[i].id,
              cold.value().probabilities[i].id);
    EXPECT_EQ(warm.value().probabilities[i].probability,
              cold.value().probabilities[i].probability)
        << "stale cached pass served at entry " << i;
  }
  EXPECT_EQ(warm.value().stats.objects_multi_observation, 3u);
}

TEST(CacheInvalidationTest, ClusterBoundStoresInvalidatePerCluster) {
  const uint64_t seed = ustdb::testing::TestSeed(813);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  Fixture f = MakeFixture(seed);
  QueryExecutor exec(&f.db, {.num_threads = 1});

  QueryRequest request;
  request.predicate = PredicateKind::kThresholdExists;
  request.tau = 0.3;
  request.plan = PlanChoice::kBoundsThenRefine;
  request.window =
      QueryWindow::FromRanges(kStates, 5, 14, 2, 6).ValueOrDie();

  ASSERT_TRUE(exec.Run(request).ok());
  const EngineCacheStats warm_before = exec.cache_stats();
  ASSERT_TRUE(exec.Run(request).ok());
  const EngineCacheStats warm_after = exec.cache_stats();
  // Warm threshold run: envelopes + bound passes all hit, nothing stale.
  EXPECT_GT(warm_after.bound_hits, warm_before.bound_hits);
  EXPECT_EQ(warm_after.bound_misses, warm_before.bound_misses);
  EXPECT_EQ(warm_after.invalidations, warm_before.invalidations);

  util::Rng rng(seed ^ 0xB0);
  ASSERT_TRUE(f.db.AppendObservation(
                      f.objects_a[0],
                      {/*time=*/1, RandomDistribution(kStates, kStates, &rng)})
                  .ok());

  // Cluster A's envelope + bound pass (and chain A's refine pass) go
  // stale; cluster B's bound entries still hit.
  const EngineCacheStats before = exec.cache_stats();
  auto after_run = exec.Run(request);
  ASSERT_TRUE(after_run.ok()) << after_run.status();
  const EngineCacheStats after = exec.cache_stats();
  EXPECT_GT(after.invalidations, before.invalidations);
  EXPECT_GT(after.bound_hits, before.bound_hits);

  // Correctness after the partial invalidation: bit-identical to a cold
  // executor on the mutated database.
  QueryExecutor cold_exec(&f.db, {.num_threads = 1});
  auto cold = cold_exec.Run(request);
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(after_run.value().probabilities.size(),
            cold.value().probabilities.size());
  for (size_t i = 0; i < cold.value().probabilities.size(); ++i) {
    EXPECT_EQ(after_run.value().probabilities[i].id,
              cold.value().probabilities[i].id);
    EXPECT_EQ(after_run.value().probabilities[i].probability,
              cold.value().probabilities[i].probability);
  }
}

TEST(CacheInvalidationTest, ResultEpochNamesTheDataVersion) {
  const uint64_t seed = ustdb::testing::TestSeed(814);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  Fixture f = MakeFixture(seed);
  QueryExecutor exec(&f.db, {.num_threads = 1});

  auto frozen = exec.Run(ExistsRequest());
  ASSERT_TRUE(frozen.ok());
  EXPECT_EQ(frozen.value().epoch, 0u);

  util::Rng rng(seed ^ 0xE9);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        f.db.AppendObservation(
                f.objects_b[i],
                {Timestamp(1 + i), RandomDistribution(kStates, kStates, &rng)})
            .ok());
  }
  auto mutated = exec.Run(ExistsRequest());
  ASSERT_TRUE(mutated.ok());
  EXPECT_EQ(mutated.value().epoch, 4u);
  EXPECT_EQ(mutated.value().epoch, f.db.data_version());
}

/// Direct EngineCache check of the lazy-drop contract: a lookup at a newer
/// epoch destroys exactly the stale entry and reports invalidation + miss;
/// other keys and stores are untouched.
TEST(CacheInvalidationTest, EngineCacheDropsExactlyTheStaleKey) {
  const uint64_t seed = ustdb::testing::TestSeed(815);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  util::Rng rng(seed);
  markov::MarkovChain chain_a = RandomChain(kStates, 3, &rng);
  markov::MarkovChain chain_b = RandomChain(kStates, 3, &rng);
  const QueryWindow window =
      QueryWindow::FromRanges(kStates, 5, 14, 2, 6).ValueOrDie();

  EngineCache cache(8);
  ASSERT_NE(cache.Get(&chain_a, window, /*epoch=*/0), nullptr);
  ASSERT_NE(cache.Get(&chain_b, window, /*epoch=*/0), nullptr);
  ASSERT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().misses, 2u);

  // Same epoch: both hit.
  EXPECT_NE(cache.Get(&chain_a, window, 0), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);

  // Chain A advanced: its entry is dropped (invalidation + miss) and
  // rebuilt at the new epoch; chain B's entry is untouched.
  EXPECT_NE(cache.Get(&chain_a, window, /*epoch=*/3), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Get(&chain_b, window, 0), nullptr);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().invalidations, 1u);

  // The rebuilt entry serves at its build epoch.
  EXPECT_NE(cache.Get(&chain_a, window, 3), nullptr);
  EXPECT_EQ(cache.stats().hits, 3u);
}

}  // namespace
}  // namespace core
}  // namespace ustdb
