// ShardedDatabase placement: cluster co-location, stable global ids and
// id-map round trips, registry mirroring against the unsharded twin,
// USTDB_SHARDS resolution, and the rebalance migration (trigger, listener,
// id stability, object integrity after the rebuild).

#include "core/shard_router.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/database.h"
#include "testing/random_models.h"
#include "testing/sharded_fixture.h"
#include "testing/test_seed.h"
#include "util/rng.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::MakeShardedPair;
using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;
using ::ustdb::testing::ShardedPair;
using ::ustdb::testing::ShardedSpec;

TEST(ResolveNumShardsTest, RequestedWinsOverEnvironment) {
  setenv("USTDB_SHARDS", "8", 1);
  EXPECT_EQ(ShardedDatabase::ResolveNumShards(3), 3u);
  unsetenv("USTDB_SHARDS");
}

TEST(ResolveNumShardsTest, EnvironmentAppliesWhenUnrequested) {
  setenv("USTDB_SHARDS", "4", 1);
  EXPECT_EQ(ShardedDatabase::ResolveNumShards(0), 4u);
  unsetenv("USTDB_SHARDS");
  EXPECT_EQ(ShardedDatabase::ResolveNumShards(0), 1u);
}

TEST(ResolveNumShardsTest, MalformedEnvironmentIgnored) {
  setenv("USTDB_SHARDS", "lots", 1);
  EXPECT_EQ(ShardedDatabase::ResolveNumShards(0), 1u);
  setenv("USTDB_SHARDS", "-2", 1);
  EXPECT_EQ(ShardedDatabase::ResolveNumShards(0), 1u);
  setenv("USTDB_SHARDS", "0", 1);
  EXPECT_EQ(ShardedDatabase::ResolveNumShards(0), 1u);
  unsetenv("USTDB_SHARDS");
}

/// Every member of every global cluster must live on one shard — the
/// invariant the bounds-then-refine plan's correctness rests on.
TEST(ShardRouterTest, ClustersStayCoLocated) {
  const uint64_t seed = ustdb::testing::TestSeed(301);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  ShardedSpec spec;
  spec.seed = seed;
  spec.num_families = 4;
  spec.chains_per_family = 3;
  for (uint32_t shards : {2u, 3u, 8u}) {
    ShardedPair pair = MakeShardedPair(spec, shards);
    for (const ChainCluster& cluster :
         pair.sharded.routing_db().chain_clusters()) {
      const uint32_t home = pair.sharded.shard_of_chain(cluster.members[0]);
      for (ChainId member : cluster.members) {
        EXPECT_EQ(pair.sharded.shard_of_chain(member), home)
            << "cluster split across shards at " << shards << " shards";
      }
    }
  }
}

/// The routing db's registry (ids and clusters) is bit-identical to the
/// unsharded Database built from the same stream, and each shard's local
/// registry mirrors the global assignment for its resident chains.
TEST(ShardRouterTest, RoutingRegistryMatchesUnsharded) {
  const uint64_t seed = ustdb::testing::TestSeed(302);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  ShardedSpec spec;
  spec.seed = seed;
  ShardedPair pair = MakeShardedPair(spec, 3);

  const Database& routing = pair.sharded.routing_db();
  ASSERT_EQ(routing.num_chains(), pair.unsharded.num_chains());
  EXPECT_EQ(routing.num_objects(), 0u);
  ASSERT_EQ(routing.chain_clusters().size(),
            pair.unsharded.chain_clusters().size());
  for (size_t c = 0; c < routing.chain_clusters().size(); ++c) {
    EXPECT_EQ(routing.chain_clusters()[c].leader,
              pair.unsharded.chain_clusters()[c].leader);
    EXPECT_EQ(routing.chain_clusters()[c].members,
              pair.unsharded.chain_clusters()[c].members);
  }

  // Local mirroring: two chains share a shard-local cluster iff they
  // share a global cluster.
  for (uint32_t s = 0; s < pair.sharded.num_shards(); ++s) {
    const Database& local = pair.sharded.shard(s);
    for (ChainId a = 0; a < local.num_chains(); ++a) {
      for (ChainId b = 0; b < local.num_chains(); ++b) {
        const bool local_together =
            local.cluster_of(a) == local.cluster_of(b);
        const bool global_together =
            routing.cluster_of(pair.sharded.global_chain(s, a)) ==
            routing.cluster_of(pair.sharded.global_chain(s, b));
        EXPECT_EQ(local_together, global_together);
      }
    }
  }
}

/// Global ids equal the unsharded twin's, and every map round-trips.
TEST(ShardRouterTest, IdMapsRoundTrip) {
  const uint64_t seed = ustdb::testing::TestSeed(303);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  ShardedSpec spec;
  spec.seed = seed;
  ShardedPair pair = MakeShardedPair(spec, 4);

  ASSERT_EQ(pair.sharded.num_objects(), pair.unsharded.num_objects());
  uint32_t resident_total = 0;
  for (uint32_t s = 0; s < pair.sharded.num_shards(); ++s) {
    resident_total += pair.sharded.shard(s).num_objects();
  }
  EXPECT_EQ(resident_total, pair.sharded.num_objects());

  for (ChainId g = 0; g < pair.sharded.num_chains(); ++g) {
    const uint32_t s = pair.sharded.shard_of_chain(g);
    EXPECT_EQ(pair.sharded.global_chain(s, pair.sharded.local_chain(g)), g);
  }
  for (ObjectId g = 0; g < pair.sharded.num_objects(); ++g) {
    const uint32_t s = pair.sharded.shard_of_object(g);
    const ObjectId local = pair.sharded.local_object(g);
    EXPECT_EQ(pair.sharded.global_object(s, local), g);
    // The resident copy holds the same observations as the unsharded twin
    // (chain translated to the shard-local id).
    const UncertainObject& mine = pair.sharded.shard(s).object(local);
    const UncertainObject& twin = pair.unsharded.object(g);
    EXPECT_EQ(pair.sharded.global_chain(s, mine.chain), twin.chain);
    ASSERT_EQ(mine.observations.size(), twin.observations.size());
    EXPECT_EQ(mine.observations[0].time, twin.observations[0].time);
    EXPECT_EQ(mine.observations[0].pdf.ToDense(),
              twin.observations[0].pdf.ToDense());
  }
}

TEST(ShardRouterTest, AddObjectToMissingChainReportsGlobalId) {
  ShardedDatabase db(ShardingOptions{.num_shards = 2});
  util::Rng rng(7);
  (void)db.AddChain(RandomChain(10, 2, &rng));
  const auto result = db.AddObjectAt(5, RandomDistribution(10, 2, &rng));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().message(), "chain 5 does not exist");
}

/// Drives a deliberately skewed load until the rebalance migrates one
/// cluster, then checks: the trigger fired once, the listener saw it,
/// global ids survived, maps round-trip, and the migrated objects are
/// intact on their new shard.
TEST(ShardRouterTest, RebalanceMigratesOneClusterAndKeepsIds) {
  const uint64_t seed = ustdb::testing::TestSeed(304);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  util::Rng rng(seed);
  constexpr uint32_t kStates = 20;

  ShardedDatabase db(ShardingOptions{.num_shards = 2, .load_factor = 1.5});
  std::vector<std::pair<uint32_t, uint32_t>> migrations;
  db.SetRebalanceListener([&migrations](uint32_t from, uint32_t to) {
    migrations.emplace_back(from, to);
  });

  // Three independent chains (three clusters; equal per-object weight).
  // Seeding a few objects on a and b lets earlier rebalances settle;
  // flooding c then overloads its shard until moving b's (lighter)
  // cluster toward a is the best strict improvement.
  const ChainId a = db.AddChain(RandomChain(kStates, 3, &rng));
  const ChainId b = db.AddChain(RandomChain(kStates, 3, &rng));
  const ChainId c = db.AddChain(RandomChain(kStates, 3, &rng));
  ASSERT_EQ(db.routing_db().chain_clusters().size(), 3u)
      << "independent chains unexpectedly clustered together";

  std::vector<sparse::ProbVector> pdfs;
  std::vector<ObjectId> ids;
  const auto add = [&](ChainId chain) {
    pdfs.push_back(RandomDistribution(kStates, 3, &rng));
    ids.push_back(
        db.AddObjectAt(chain, sparse::ProbVector(pdfs.back())).ValueOrDie());
    // Mirror insertion's one-time normalization so the saved copy stays
    // bit-comparable to the stored pdf even across a migration rebuild.
    ASSERT_TRUE(pdfs.back().Normalize().ok());
  };
  for (int i = 0; i < 4; ++i) add(a);
  add(b);
  ASSERT_NE(db.shard_of_chain(a), db.shard_of_chain(b));
  const uint64_t before = db.rebalances();
  migrations.clear();
  for (int i = 0; i < 20 && db.rebalances() == before; ++i) add(c);

  ASSERT_EQ(db.rebalances(), before + 1) << "skewed load never rebalanced";
  ASSERT_EQ(migrations.size(), 1u);
  EXPECT_EQ(migrations[0].first, db.shard_of_chain(c));   // overloaded source
  EXPECT_EQ(migrations[0].second, db.shard_of_chain(b));  // b migrated there

  // B moved next to A; C stayed. Ids and contents survived the rebuild.
  EXPECT_EQ(db.shard_of_chain(b), db.shard_of_chain(a));
  for (size_t i = 0; i < ids.size(); ++i) {
    const ObjectId g = ids[i];
    EXPECT_EQ(g, static_cast<ObjectId>(i));  // global ids are insertion order
    const uint32_t s = db.shard_of_object(g);
    const ObjectId local = db.local_object(g);
    EXPECT_EQ(db.global_object(s, local), g);
    EXPECT_EQ(db.shard(s).object(local).observations[0].pdf.ToDense(),
              pdfs[i].ToDense());
  }
  // Loads still account for every object.
  uint64_t total = 0;
  for (uint32_t s = 0; s < db.num_shards(); ++s) total += db.shard_load(s);
  uint64_t expected = 0;
  for (ObjectId g = 0; g < db.num_objects(); ++g) {
    const uint32_t s = db.shard_of_object(g);
    const ChainId chain = db.shard(s).object(db.local_object(g)).chain;
    expected += db.shard(s).chain(chain).matrix().nnz();
  }
  EXPECT_EQ(total, expected);
}

}  // namespace
}  // namespace core
}  // namespace ustdb
