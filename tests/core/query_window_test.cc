#include "core/query_window.h"

#include <gtest/gtest.h>

namespace ustdb {
namespace core {
namespace {

TEST(QueryWindowTest, FromRangesBuildsContiguousWindow) {
  auto w = QueryWindow::FromRanges(1000, 100, 120, 20, 25);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->region().size(), 21u);
  EXPECT_TRUE(w->region().Contains(100));
  EXPECT_TRUE(w->region().Contains(120));
  EXPECT_FALSE(w->region().Contains(121));
  EXPECT_EQ(w->num_times(), 6u);
  EXPECT_EQ(w->t_begin(), 20u);
  EXPECT_EQ(w->t_end(), 25u);
  EXPECT_TRUE(w->ContainsTime(22));
  EXPECT_FALSE(w->ContainsTime(19));
  EXPECT_FALSE(w->ContainsTime(26));
  EXPECT_FALSE(w->ContainsTime(100000));
}

TEST(QueryWindowTest, CreateSortsAndDeduplicatesTimes) {
  auto region = sparse::IndexSet::FromIndices(10, {1}).ValueOrDie();
  auto w = QueryWindow::Create(region, {5, 3, 5, 9, 3});
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->times(), (std::vector<Timestamp>{3, 5, 9}));
  EXPECT_EQ(w->t_end(), 9u);
}

TEST(QueryWindowTest, SupportsNonContiguousSpaceAndTime) {
  // Section III: "not necessarily connected" / "not necessarily subsequent".
  auto region = sparse::IndexSet::FromIndices(10, {0, 4, 9}).ValueOrDie();
  auto w = QueryWindow::Create(region, {1, 4, 8});
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(w->ContainsTime(4));
  EXPECT_FALSE(w->ContainsTime(5));
  EXPECT_TRUE(w->region().Contains(4));
  EXPECT_FALSE(w->region().Contains(5));
}

TEST(QueryWindowTest, RejectsEmptyInputs) {
  auto region = sparse::IndexSet::FromIndices(10, {1}).ValueOrDie();
  EXPECT_FALSE(QueryWindow::Create(region, {}).ok());
  EXPECT_FALSE(QueryWindow::Create(sparse::IndexSet::Empty(10), {1}).ok());
  EXPECT_FALSE(QueryWindow::FromRanges(10, 3, 2, 0, 1).ok());
  EXPECT_FALSE(QueryWindow::FromRanges(10, 0, 10, 0, 1).ok());
  EXPECT_FALSE(QueryWindow::FromRanges(10, 0, 1, 5, 4).ok());
}

TEST(QueryWindowTest, ComplementRegionKeepsTimes) {
  auto w = QueryWindow::FromRanges(6, 1, 2, 3, 4).ValueOrDie();
  QueryWindow c = w.WithComplementRegion();
  EXPECT_EQ(c.times(), w.times());
  EXPECT_EQ(c.region().elements(), (std::vector<uint32_t>{0, 3, 4, 5}));
  // Complementing twice restores the region.
  EXPECT_EQ(c.WithComplementRegion().region(), w.region());
}

TEST(QueryWindowTest, TimeZeroWindow) {
  auto w = QueryWindow::FromRanges(4, 0, 1, 0, 2).ValueOrDie();
  EXPECT_TRUE(w.ContainsTime(0));
  EXPECT_EQ(w.t_begin(), 0u);
}

}  // namespace
}  // namespace core
}  // namespace ustdb
