// Cross-engine property suite: on randomly generated small models, every
// engine (object-based implicit/explicit, query-based implicit/explicit,
// k-times implicit/explicit, Monte Carlo with many samples) must agree with
// exhaustive possible-worlds enumeration. This is the paper's core claim —
// the matrix framework computes exactly the fraction of possible worlds
// satisfying the predicate — verified end to end.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <tuple>

#include "core/forall.h"
#include "core/k_times.h"
#include "core/object_based.h"
#include "core/query_based.h"
#include "exact/possible_worlds.h"
#include "mc/monte_carlo.h"
#include "testing/random_models.h"
#include "testing/test_seed.h"
#include "util/rng.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

// (num_states, row_nnz, window config index, seed)
using Param = std::tuple<uint32_t, uint32_t, int, uint64_t>;

/// Deterministic window variations over an n-state domain with t_end <= 6
/// (enumeration stays tractable: worlds <= support * nnz^6).
QueryWindow MakeWindow(uint32_t n, int variant) {
  switch (variant) {
    case 0:  // contiguous mid-range
      return QueryWindow::FromRanges(n, n / 4, n / 2, 2, 5).ValueOrDie();
    case 1: {  // non-contiguous region, contiguous times
      auto region =
          sparse::IndexSet::FromIndices(n, {0, n / 2, n - 1}).ValueOrDie();
      return QueryWindow::Create(region, {1, 2, 3}).ValueOrDie();
    }
    case 2: {  // contiguous region, scattered times
      auto region = sparse::IndexSet::FromRange(n, 1, n / 3 + 1).ValueOrDie();
      return QueryWindow::Create(region, {2, 5}).ValueOrDie();
    }
    default: {  // window starting at t=0
      auto region = sparse::IndexSet::FromRange(n, 0, n / 2).ValueOrDie();
      return QueryWindow::Create(region, {0, 1, 4}).ValueOrDie();
    }
  }
}

class EnginePropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(EnginePropertyTest, AllEnginesMatchEnumeration) {
  const auto [n, row_nnz, variant, seed] = GetParam();
  const uint64_t base_seed = ustdb::testing::TestSeed(seed);
  SCOPED_TRACE(ustdb::testing::SeedTrace(base_seed));
  util::Rng rng(base_seed);
  const markov::MarkovChain chain = RandomChain(n, row_nnz, &rng);
  const QueryWindow window = MakeWindow(n, variant);
  const sparse::ProbVector initial = RandomDistribution(n, 2, &rng);

  const double truth =
      exact::ExistsByEnumeration(chain, initial, window).ValueOrDie();

  ObjectBasedEngine ob(&chain, window);
  EXPECT_NEAR(ob.ExistsProbability(initial), truth, 1e-10) << "OB implicit";

  ObjectBasedEngine ob_explicit(&chain, window,
                                {.mode = MatrixMode::kExplicit});
  EXPECT_NEAR(ob_explicit.ExistsProbability(initial), truth, 1e-10)
      << "OB explicit";

  QueryBasedEngine qb(&chain, window);
  EXPECT_NEAR(qb.ExistsProbability(initial), truth, 1e-10) << "QB implicit";

  QueryBasedEngine qb_explicit(&chain, window,
                               {.mode = MatrixMode::kExplicit});
  EXPECT_NEAR(qb_explicit.ExistsProbability(initial), truth, 1e-10)
      << "QB explicit";
}

TEST_P(EnginePropertyTest, ForAllMatchesEnumeration) {
  const auto [n, row_nnz, variant, seed] = GetParam();
  const uint64_t base_seed = ustdb::testing::TestSeed(seed);
  SCOPED_TRACE(ustdb::testing::SeedTrace(base_seed));
  util::Rng rng(base_seed ^ 0xF0F0);
  const markov::MarkovChain chain = RandomChain(n, row_nnz, &rng);
  const QueryWindow window = MakeWindow(n, variant);
  const sparse::ProbVector initial = RandomDistribution(n, 2, &rng);

  const double truth =
      exact::ForAllByEnumeration(chain, initial, window).ValueOrDie();
  ForAllObjectBased ob(&chain, window);
  ForAllQueryBased qb(&chain, window);
  EXPECT_NEAR(ob.ForAllProbability(initial), truth, 1e-10);
  EXPECT_NEAR(qb.ForAllProbability(initial), truth, 1e-10);
}

TEST_P(EnginePropertyTest, KTimesMatchesEnumerationBothModes) {
  const auto [n, row_nnz, variant, seed] = GetParam();
  const uint64_t base_seed = ustdb::testing::TestSeed(seed);
  SCOPED_TRACE(ustdb::testing::SeedTrace(base_seed));
  util::Rng rng(base_seed ^ 0x1234);
  const markov::MarkovChain chain = RandomChain(n, row_nnz, &rng);
  const QueryWindow window = MakeWindow(n, variant);
  const sparse::ProbVector initial = RandomDistribution(n, 2, &rng);

  const std::vector<double> truth =
      exact::KTimesByEnumeration(chain, initial, window).ValueOrDie();
  KTimesEngine implicit(&chain, window);
  KTimesEngine explicit_engine(&chain, window,
                               {.mode = MatrixMode::kExplicit});
  const auto a = implicit.Distribution(initial);
  const auto b = explicit_engine.Distribution(initial);
  ASSERT_EQ(a.size(), truth.size());
  ASSERT_EQ(b.size(), truth.size());
  for (size_t k = 0; k < truth.size(); ++k) {
    EXPECT_NEAR(a[k], truth[k], 1e-10) << "implicit k=" << k;
    EXPECT_NEAR(b[k], truth[k], 1e-10) << "explicit k=" << k;
  }
}

TEST_P(EnginePropertyTest, MonteCarloConvergesToTruth) {
  const auto [n, row_nnz, variant, seed] = GetParam();
  const uint64_t base_seed = ustdb::testing::TestSeed(seed);
  SCOPED_TRACE(ustdb::testing::SeedTrace(base_seed));
  util::Rng rng(base_seed ^ 0xBEEF);
  const markov::MarkovChain chain = RandomChain(n, row_nnz, &rng);
  const QueryWindow window = MakeWindow(n, variant);
  const sparse::ProbVector initial = RandomDistribution(n, 2, &rng);

  // Enumeration can land an ulp outside [0, 1]; clamp before the Bernoulli
  // bound or sigma goes NaN.
  const double truth = std::clamp(
      exact::ExistsByEnumeration(chain, initial, window).ValueOrDie(), 0.0,
      1.0);
  mc::MonteCarloEngine engine(&chain, window,
                              {.num_samples = 40'000, .seed = base_seed});
  const mc::McEstimate e = engine.ExistsProbability(initial);
  // 5 sigma of the Bernoulli bound, plus slack for tiny probabilities.
  const double sigma = std::sqrt(truth * (1.0 - truth) / e.num_samples);
  EXPECT_NEAR(e.probability, truth, 5.0 * sigma + 5e-3);
}

TEST_P(EnginePropertyTest, MassConservationAcrossAugmentedRuns) {
  // hit + residual must remain exactly 1 throughout an OB run.
  const auto [n, row_nnz, variant, seed] = GetParam();
  const uint64_t base_seed = ustdb::testing::TestSeed(seed);
  SCOPED_TRACE(ustdb::testing::SeedTrace(base_seed));
  util::Rng rng(base_seed ^ 0xAAAA);
  const markov::MarkovChain chain = RandomChain(n, row_nnz, &rng);
  const QueryWindow window = MakeWindow(n, variant);
  const sparse::ProbVector initial = RandomDistribution(n, 2, &rng);

  AugmentedMatrices aug = BuildAbsorbingMatrices(chain, window.region());
  sparse::ProbVector v = ExtendInitialAbsorbing(initial, window);
  sparse::VecMatWorkspace ws;
  for (Timestamp t = 1; t <= window.t_end(); ++t) {
    ws.Multiply(v, window.ContainsTime(t) ? aug.plus : aug.minus, &v);
    EXPECT_NEAR(v.Sum(), 1.0, 1e-9) << "after transition into t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomModels, EnginePropertyTest,
    ::testing::Values(Param{4, 2, 0, 1}, Param{4, 3, 1, 2}, Param{6, 2, 2, 3},
                      Param{6, 3, 3, 4}, Param{8, 2, 0, 5}, Param{8, 3, 1, 6},
                      Param{10, 2, 2, 7}, Param{10, 3, 3, 8},
                      Param{12, 2, 0, 9}, Param{5, 5, 1, 10},
                      Param{7, 2, 3, 11}, Param{9, 3, 2, 12}),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_nnz" +
             std::to_string(std::get<1>(info.param)) + "_w" +
             std::to_string(std::get<2>(info.param)) + "_seed" +
             std::to_string(std::get<3>(info.param));
    });

}  // namespace
}  // namespace core
}  // namespace ustdb
