// Monotonicity and consistency laws of the query predicates with respect
// to the window, verified on random models across all engines:
//   * P∃ is monotone under region and time-set inclusion;
//   * P∀ is monotone under region inclusion and *antitone* under time-set
//     inclusion;
//   * cylinder answers refine consistently when the window grows.

#include <gtest/gtest.h>

#include <tuple>

#include "core/cylinder_baseline.h"
#include "core/forall.h"
#include "core/object_based.h"
#include "core/query_based.h"
#include "testing/random_models.h"
#include "util/rng.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

using Param = std::tuple<uint32_t, uint64_t>;  // (num_states, seed)

class WindowPropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(WindowPropertyTest, ExistsMonotoneInRegion) {
  const auto [n, seed] = GetParam();
  util::Rng rng(seed);
  const markov::MarkovChain chain = RandomChain(n, 3, &rng);
  const sparse::ProbVector initial = RandomDistribution(n, 3, &rng);

  // Nested regions [lo, hi] ⊂ [lo, hi+2] ⊂ [lo-1, hi+4] (clamped).
  const uint32_t lo = n / 4;
  const uint32_t hi = n / 3 + 1;
  double prev = -1.0;
  for (uint32_t grow = 0; grow <= 2; ++grow) {
    const uint32_t g_lo = lo > grow ? lo - grow : 0;
    const uint32_t g_hi = std::min(n - 1, hi + 2 * grow);
    auto window = QueryWindow::FromRanges(n, g_lo, g_hi, 2, 6).ValueOrDie();
    QueryBasedEngine qb(&chain, window);
    const double p = qb.ExistsProbability(initial);
    EXPECT_GE(p, prev - 1e-10) << "grow " << grow;
    prev = p;
  }
}

TEST_P(WindowPropertyTest, ExistsMonotoneInTimes) {
  const auto [n, seed] = GetParam();
  util::Rng rng(seed ^ 0xA);
  const markov::MarkovChain chain = RandomChain(n, 3, &rng);
  const sparse::ProbVector initial = RandomDistribution(n, 3, &rng);
  auto region = sparse::IndexSet::FromRange(n, n / 4, n / 2).ValueOrDie();

  // Growing time sets {3} ⊂ {3,4} ⊂ {2,3,4} ⊂ {2,3,4,6}.
  const std::vector<std::vector<Timestamp>> time_sets = {
      {3}, {3, 4}, {2, 3, 4}, {2, 3, 4, 6}};
  double prev = -1.0;
  for (const auto& times : time_sets) {
    auto window = QueryWindow::Create(region, times).ValueOrDie();
    ObjectBasedEngine ob(&chain, window);
    const double p = ob.ExistsProbability(initial);
    EXPECT_GE(p, prev - 1e-10);
    prev = p;
  }
}

TEST_P(WindowPropertyTest, ForAllAntitoneInTimes) {
  const auto [n, seed] = GetParam();
  util::Rng rng(seed ^ 0xB);
  const markov::MarkovChain chain = RandomChain(n, 3, &rng);
  const sparse::ProbVector initial = RandomDistribution(n, 3, &rng);
  auto region = sparse::IndexSet::FromRange(n, 0, 2 * n / 3).ValueOrDie();

  // Staying in S□ at MORE times is harder: P∀ must not increase.
  const std::vector<std::vector<Timestamp>> time_sets = {
      {2}, {2, 3}, {2, 3, 5}, {1, 2, 3, 5}};
  double prev = 2.0;
  for (const auto& times : time_sets) {
    auto window = QueryWindow::Create(region, times).ValueOrDie();
    ForAllQueryBased forall(&chain, window);
    const double p = forall.ForAllProbability(initial);
    EXPECT_LE(p, prev + 1e-10);
    prev = p;
  }
}

TEST_P(WindowPropertyTest, ForAllMonotoneInRegion) {
  const auto [n, seed] = GetParam();
  util::Rng rng(seed ^ 0xC);
  const markov::MarkovChain chain = RandomChain(n, 3, &rng);
  const sparse::ProbVector initial = RandomDistribution(n, 3, &rng);

  double prev = -1.0;
  for (uint32_t grow = 0; grow <= 2; ++grow) {
    const uint32_t g_hi = std::min(n - 1, n / 2 + grow * (n / 6 + 1));
    auto window = QueryWindow::FromRanges(n, 0, g_hi, 1, 4).ValueOrDie();
    ForAllObjectBased forall(&chain, window);
    const double p = forall.ForAllProbability(initial);
    EXPECT_GE(p, prev - 1e-10) << "grow " << grow;
    prev = p;
  }
}

TEST_P(WindowPropertyTest, CylinderRefinesWithGrowingWindow) {
  // Growing the window (region superset AND time superset) can only move
  // the three-valued answer upward in the order never < possibly < always:
  // intersections persist under supersets, and kAlways requires reachable-
  // set containment at just one window time, which supersets preserve.
  const auto [n, seed] = GetParam();
  util::Rng rng(seed ^ 0xD);
  const markov::MarkovChain chain = RandomChain(n, 3, &rng);
  const sparse::ProbVector initial = RandomDistribution(n, 2, &rng);

  auto small_window =
      QueryWindow::FromRanges(n, n / 4, n / 2, 2, 4).ValueOrDie();
  auto big_window =
      QueryWindow::FromRanges(n, n / 4, std::min(n - 1, n / 2 + n / 4), 2, 6)
          .ValueOrDie();
  CylinderBaseline small_engine(&chain, small_window);
  CylinderBaseline big_engine(&chain, big_window);
  const auto rank = [](CylinderAnswer a) {
    return a == CylinderAnswer::kNever ? 0
           : a == CylinderAnswer::kPossibly ? 1
                                            : 2;
  };
  EXPECT_GE(rank(big_engine.Evaluate(initial)),
            rank(small_engine.Evaluate(initial)));
}

TEST_P(WindowPropertyTest, EnginesAgreeOnEveryWindowShape) {
  // OB and QB agreement across assorted degenerate windows.
  const auto [n, seed] = GetParam();
  util::Rng rng(seed ^ 0xE);
  const markov::MarkovChain chain = RandomChain(n, 3, &rng);
  const sparse::ProbVector initial = RandomDistribution(n, 3, &rng);

  std::vector<QueryWindow> windows;
  // Single state, single time.
  windows.push_back(
      QueryWindow::Create(sparse::IndexSet::FromIndices(n, {n / 2})
                              .ValueOrDie(),
                          {4})
          .ValueOrDie());
  // Full region.
  windows.push_back(QueryWindow::FromRanges(n, 0, n - 1, 3, 5).ValueOrDie());
  // Sparse scattered region, scattered times including 0.
  windows.push_back(
      QueryWindow::Create(sparse::IndexSet::FromIndices(
                              n, {0, n / 3, 2 * n / 3, n - 1})
                              .ValueOrDie(),
                          {0, 3, 7})
          .ValueOrDie());
  for (size_t i = 0; i < windows.size(); ++i) {
    ObjectBasedEngine ob(&chain, windows[i]);
    QueryBasedEngine qb(&chain, windows[i]);
    EXPECT_NEAR(ob.ExistsProbability(initial),
                qb.ExistsProbability(initial), 1e-10)
        << "window " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WindowPropertyTest,
                         ::testing::Values(Param{8, 1}, Param{10, 2},
                                           Param{12, 3}, Param{16, 4},
                                           Param{20, 5}, Param{24, 6}),
                         [](const ::testing::TestParamInfo<Param>& info) {
                           return "n" +
                                  std::to_string(std::get<0>(info.param)) +
                                  "_seed" +
                                  std::to_string(std::get<1>(info.param));
                         });

}  // namespace
}  // namespace core
}  // namespace ustdb
