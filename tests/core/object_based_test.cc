#include "core/object_based.h"

#include <gtest/gtest.h>

#include "testing/random_models.h"
#include "util/rng.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::PaperChainV;
using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

QueryWindow WindowV() {
  return QueryWindow::FromRanges(3, 0, 1, 2, 3).ValueOrDie();
}

TEST(ObjectBasedTest, PaperRunningExampleIs0864) {
  // Section V-A: object observed at s2 at t=0, S□={s1,s2}, T□={2,3};
  // P∃ = 0.32 + 0.544 = 0.864.
  markov::MarkovChain chain = PaperChainV();
  ObjectBasedEngine engine(&chain, WindowV());
  const double p = engine.ExistsProbability(sparse::ProbVector::Delta(3, 1));
  EXPECT_NEAR(p, 0.864, 1e-12);
}

TEST(ObjectBasedTest, ExplicitMatrixModeAgrees) {
  markov::MarkovChain chain = PaperChainV();
  ObjectBasedEngine engine(&chain, WindowV(),
                           {.mode = MatrixMode::kExplicit});
  const double p = engine.ExistsProbability(sparse::ProbVector::Delta(3, 1));
  EXPECT_NEAR(p, 0.864, 1e-12);
}

TEST(ObjectBasedTest, PaperErratumIntermediateVector) {
  // The paper prints P(o,2) = (0,0,0.64,0.36) in Example 1, but the given
  // M± yield (0,0,0.68,0.32) — consistent with the paper's own t=2 lower
  // bound of 32% and the final 0.864. Pin the corrected value.
  markov::MarkovChain chain = PaperChainV();
  AugmentedMatrices aug =
      BuildAbsorbingMatrices(chain, WindowV().region());
  sparse::VecMatWorkspace ws;
  sparse::ProbVector v =
      ExtendInitialAbsorbing(sparse::ProbVector::Delta(3, 1), WindowV());
  ws.Multiply(v, aug.minus, &v);  // into t=1 (not in T□)
  EXPECT_NEAR(v.Get(0), 0.6, 1e-12);
  EXPECT_NEAR(v.Get(2), 0.4, 1e-12);
  ws.Multiply(v, aug.plus, &v);   // into t=2 (in T□)
  EXPECT_NEAR(v.Get(2), 0.68, 1e-12);
  EXPECT_NEAR(v.Get(3), 0.32, 1e-12);
  ws.Multiply(v, aug.plus, &v);   // into t=3 (in T□)
  EXPECT_NEAR(v.Get(2), 0.136, 1e-12);
  EXPECT_NEAR(v.Get(3), 0.864, 1e-12);
}

TEST(ObjectBasedTest, AggregatingMarginalsWouldDoubleCount) {
  // The paper's motivating flaw: summing per-time window masses counts
  // worlds twice. Verify our engine's answer differs from the naive sum.
  markov::MarkovChain chain = PaperChainV();
  const sparse::ProbVector initial = sparse::ProbVector::Delta(3, 1);
  const auto region = WindowV().region();
  const double m2 = chain.Distribution(initial, 2).MassIn(region);
  const double m3 = chain.Distribution(initial, 3).MassIn(region);
  const double naive = m2 + m3;
  ObjectBasedEngine engine(&chain, WindowV());
  const double correct = engine.ExistsProbability(initial);
  EXPECT_GT(naive, correct);  // 0.32 + 0.736 = 1.056 > 0.864
  EXPECT_NEAR(naive, 1.056, 1e-12);
}

TEST(ObjectBasedTest, WindowAtTimeZeroCountsInitialMass) {
  markov::MarkovChain chain = PaperChainV();
  auto window = QueryWindow::FromRanges(3, 1, 1, 0, 0).ValueOrDie();
  ObjectBasedEngine engine(&chain, window);
  EXPECT_DOUBLE_EQ(
      engine.ExistsProbability(sparse::ProbVector::Delta(3, 1)), 1.0);
  EXPECT_DOUBLE_EQ(
      engine.ExistsProbability(sparse::ProbVector::Delta(3, 0)), 0.0);
}

TEST(ObjectBasedTest, FullRegionGivesCertainty) {
  markov::MarkovChain chain = PaperChainV();
  auto window = QueryWindow::FromRanges(3, 0, 2, 1, 2).ValueOrDie();
  ObjectBasedEngine engine(&chain, window);
  EXPECT_NEAR(engine.ExistsProbability(sparse::ProbVector::Delta(3, 0)), 1.0,
              1e-12);
}

TEST(ObjectBasedTest, UnreachableRegionGivesZero) {
  // Directed cycle 0->1->2->0: state 2 unreachable from 0 in 1 step.
  auto chain = markov::MarkovChain::FromDense(
                   {{0, 1, 0}, {0, 0, 1}, {1, 0, 0}})
                   .ValueOrDie();
  auto window = QueryWindow::FromRanges(3, 2, 2, 1, 1).ValueOrDie();
  ObjectBasedEngine engine(&chain, window);
  EXPECT_DOUBLE_EQ(
      engine.ExistsProbability(sparse::ProbVector::Delta(3, 0)), 0.0);
}

TEST(ObjectBasedTest, NonContiguousTimesSkipRedirects) {
  // T□ = {1, 3}: the window is "off" at t=2, so worlds passing through the
  // region exactly at t=2 do not count.
  auto chain = markov::MarkovChain::FromDense(
                   {{0, 1, 0}, {0, 0, 1}, {1, 0, 0}})
                   .ValueOrDie();
  auto region = sparse::IndexSet::FromIndices(3, {2}).ValueOrDie();
  auto window = QueryWindow::Create(region, {1, 3}).ValueOrDie();
  ObjectBasedEngine engine(&chain, window);
  // From state 0 the deterministic path is 0,1,2,0,1: at t=1 state 1, at
  // t=3 state 0 — never in region {2} at window times (it is there at t=2).
  EXPECT_DOUBLE_EQ(
      engine.ExistsProbability(sparse::ProbVector::Delta(3, 0)), 0.0);
  // From state 1: path 1,2,0,1 -> at t=1 it IS at state 2.
  EXPECT_DOUBLE_EQ(
      engine.ExistsProbability(sparse::ProbVector::Delta(3, 1)), 1.0);
}

TEST(ObjectBasedTest, RunStatsTrackTransitions) {
  markov::MarkovChain chain = PaperChainV();
  ObjectBasedEngine engine(&chain, WindowV());
  ObRunStats stats;
  engine.ExistsProbability(sparse::ProbVector::Delta(3, 1), &stats);
  EXPECT_EQ(stats.transitions, 3u);  // t_end = 3
  EXPECT_GE(stats.max_support, 1u);
  EXPECT_FALSE(stats.early_terminated);
}

TEST(ObjectBasedTest, EpsilonTerminationStopsEarly) {
  // With S□ covering everything reachable, residual mass collapses after
  // the first window time; epsilon pruning should stop the loop.
  markov::MarkovChain chain = PaperChainV();
  auto window = QueryWindow::FromRanges(3, 0, 2, 1, 40).ValueOrDie();
  ObjectBasedEngine engine(&chain, window, {.epsilon = 1e-9});
  ObRunStats stats;
  const double p =
      engine.ExistsProbability(sparse::ProbVector::Delta(3, 1), &stats);
  EXPECT_NEAR(p, 1.0, 1e-9);
  EXPECT_TRUE(stats.early_terminated);
  EXPECT_LT(stats.transitions, 40u);
}

TEST(ObjectBasedTest, ThresholdDecisionMatchesExactProbability) {
  util::Rng rng(11);
  for (int round = 0; round < 20; ++round) {
    markov::MarkovChain chain = RandomChain(20, 4, &rng);
    auto window = QueryWindow::FromRanges(20, 5, 8, 3, 6).ValueOrDie();
    ObjectBasedEngine engine(&chain, window);
    const sparse::ProbVector initial = RandomDistribution(20, 3, &rng);
    const double p = engine.ExistsProbability(initial);
    for (double tau : {0.01, 0.25, 0.5, 0.75, 0.99}) {
      const ThresholdDecision d = engine.ExistsDecision(initial, tau);
      EXPECT_EQ(d == ThresholdDecision::kYes, p >= tau)
          << "round " << round << " tau " << tau << " p " << p;
    }
  }
}

TEST(ObjectBasedTest, ThresholdDecisionTrueHitStopsEarly) {
  markov::MarkovChain chain = PaperChainV();
  auto window = QueryWindow::FromRanges(3, 0, 1, 1, 50).ValueOrDie();
  ObjectBasedEngine engine(&chain, window);
  ObRunStats stats;
  const ThresholdDecision d = engine.ExistsDecision(
      sparse::ProbVector::Delta(3, 1), /*tau=*/0.5, &stats);
  EXPECT_EQ(d, ThresholdDecision::kYes);
  EXPECT_TRUE(stats.early_terminated);
  EXPECT_LT(stats.transitions, 50u);
}

TEST(ObjectBasedTest, UncertainInitialObservationMixesLinearly) {
  // P∃ is linear in the initial distribution.
  markov::MarkovChain chain = PaperChainV();
  ObjectBasedEngine engine(&chain, WindowV());
  const double p0 = engine.ExistsProbability(sparse::ProbVector::Delta(3, 0));
  const double p1 = engine.ExistsProbability(sparse::ProbVector::Delta(3, 1));
  auto mixed =
      sparse::ProbVector::FromPairs(3, {{0, 0.3}, {1, 0.7}}).ValueOrDie();
  EXPECT_NEAR(engine.ExistsProbability(mixed), 0.3 * p0 + 0.7 * p1, 1e-12);
}

}  // namespace
}  // namespace core
}  // namespace ustdb
