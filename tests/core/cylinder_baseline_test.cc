#include "core/cylinder_baseline.h"

#include <gtest/gtest.h>

#include "core/object_based.h"
#include "testing/random_models.h"
#include "util/rng.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::PaperChainV;
using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

TEST(CylinderBaselineTest, PaperExampleIsPossibly) {
  // The running example has P∃ = 0.864 — strictly between 0 and 1, so the
  // region model can only say "possibly" (the paper's criticism: no
  // probabilities, only binary answers).
  markov::MarkovChain chain = PaperChainV();
  auto window = QueryWindow::FromRanges(3, 0, 1, 2, 3).ValueOrDie();
  CylinderBaseline baseline(&chain, window);
  EXPECT_EQ(baseline.Evaluate(sparse::ProbVector::Delta(3, 1)),
            CylinderAnswer::kPossibly);
}

TEST(CylinderBaselineTest, DeterministicCycleGivesCertainAnswers) {
  auto cycle = markov::MarkovChain::FromDense(
                   {{0, 1, 0}, {0, 0, 1}, {1, 0, 0}})
                   .ValueOrDie();
  auto region = sparse::IndexSet::FromIndices(3, {2}).ValueOrDie();
  auto window = QueryWindow::Create(region, {2}).ValueOrDie();
  CylinderBaseline baseline(&cycle, window);
  // From state 0 the path is 0,1,2: at t=2 it IS at state 2.
  EXPECT_EQ(baseline.Evaluate(sparse::ProbVector::Delta(3, 0)),
            CylinderAnswer::kAlways);
  // From state 1 the path is 1,2,0: never at 2 when t=2.
  EXPECT_EQ(baseline.Evaluate(sparse::ProbVector::Delta(3, 1)),
            CylinderAnswer::kNever);
}

TEST(CylinderBaselineTest, ReachableSetsGrowAlongTheChain) {
  markov::MarkovChain chain = PaperChainV();
  auto window = QueryWindow::FromRanges(3, 0, 1, 2, 3).ValueOrDie();
  CylinderBaseline baseline(&chain, window);
  const auto sets = baseline.ReachableSets(sparse::ProbVector::Delta(3, 1));
  ASSERT_EQ(sets.size(), 4u);
  EXPECT_EQ(sets[0].elements(), (std::vector<uint32_t>{1}));
  EXPECT_EQ(sets[1].elements(), (std::vector<uint32_t>{0, 2}));   // s1, s3
  EXPECT_EQ(sets[2].elements(), (std::vector<uint32_t>{1, 2}));   // s2, s3
  EXPECT_EQ(sets[3].elements(), (std::vector<uint32_t>{0, 1, 2}));
}

TEST(CylinderBaselineTest, ConsistentWithExactProbabilities) {
  // kNever <=> P∃ = 0; kAlways => P∃ = 1; kPossibly <=> P∃ > 0.
  util::Rng rng(501);
  for (int round = 0; round < 25; ++round) {
    markov::MarkovChain chain = RandomChain(12, 3, &rng);
    auto window = QueryWindow::FromRanges(12, 3, 6, 2, 5).ValueOrDie();
    CylinderBaseline baseline(&chain, window);
    ObjectBasedEngine exact(&chain, window);
    for (int obj = 0; obj < 4; ++obj) {
      const sparse::ProbVector initial = RandomDistribution(12, 2, &rng);
      const double p = exact.ExistsProbability(initial);
      switch (baseline.Evaluate(initial)) {
        case CylinderAnswer::kNever:
          EXPECT_NEAR(p, 0.0, 1e-12) << "round " << round;
          break;
        case CylinderAnswer::kAlways:
          EXPECT_NEAR(p, 1.0, 1e-9) << "round " << round;
          break;
        case CylinderAnswer::kPossibly:
          EXPECT_GT(p, 0.0) << "round " << round;
          break;
      }
    }
  }
}

TEST(CylinderBaselineTest, BinaryModelLosesInformation) {
  // Construct two objects with very different probabilities (~0.056 vs
  // ~0.86) that the region model cannot distinguish — both "possibly".
  markov::MarkovChain chain = PaperChainV();
  auto window = QueryWindow::FromRanges(3, 0, 1, 2, 3).ValueOrDie();
  CylinderBaseline baseline(&chain, window);
  ObjectBasedEngine exact(&chain, window);

  const auto a = sparse::ProbVector::FromPairs(3, {{1, 0.95}, {2, 0.05}})
                     .ValueOrDie();
  const auto b = sparse::ProbVector::FromPairs(3, {{1, 0.05}, {2, 0.95}})
                     .ValueOrDie();
  EXPECT_EQ(baseline.Evaluate(a), baseline.Evaluate(b));
  EXPECT_GT(std::abs(exact.ExistsProbability(a) - exact.ExistsProbability(b)),
            0.01);
}

TEST(CylinderBaselineTest, WindowAtTimeZero) {
  markov::MarkovChain chain = PaperChainV();
  auto region = sparse::IndexSet::FromIndices(3, {1}).ValueOrDie();
  auto window = QueryWindow::Create(region, {0}).ValueOrDie();
  CylinderBaseline baseline(&chain, window);
  EXPECT_EQ(baseline.Evaluate(sparse::ProbVector::Delta(3, 1)),
            CylinderAnswer::kAlways);
  EXPECT_EQ(baseline.Evaluate(sparse::ProbVector::Delta(3, 0)),
            CylinderAnswer::kNever);
}

TEST(CylinderBaselineTest, AnswerNames) {
  EXPECT_STREQ(CylinderAnswerToString(CylinderAnswer::kNever), "never");
  EXPECT_STREQ(CylinderAnswerToString(CylinderAnswer::kPossibly), "possibly");
  EXPECT_STREQ(CylinderAnswerToString(CylinderAnswer::kAlways), "always");
}

}  // namespace
}  // namespace core
}  // namespace ustdb
