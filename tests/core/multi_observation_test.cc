#include "core/multi_observation.h"

#include <gtest/gtest.h>

#include "core/object_based.h"
#include "exact/possible_worlds.h"
#include "testing/random_models.h"
#include "util/rng.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::PaperChainVI;
using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

// Section VI example: chain with row 2 = (0.5, 0, 0.5), window
// S□ = {s1, s2} (0-based {0,1}), T□ = {1, 2}; observations at t=0 (s1)
// and t=3 (s2, uncertain between real and hit copy).
QueryWindow WindowVI() {
  return QueryWindow::FromRanges(3, 0, 1, 1, 2).ValueOrDie();
}

std::vector<Observation> PaperObservations() {
  std::vector<Observation> obs;
  obs.push_back({0, sparse::ProbVector::Delta(3, 0)});
  obs.push_back({3, sparse::ProbVector::Delta(3, 1)});
  return obs;
}

TEST(MultiObservationTest, PaperExampleForcesMissedWindow) {
  // The paper's walkthrough: the only path from s1@t0 to s2@t3 avoids the
  // window, so the posterior is a point mass at s2 and P∃ = 0.
  markov::MarkovChain chain = PaperChainVI();
  MultiObservationEngine engine(&chain, WindowVI());
  const MultiObsResult r = engine.Evaluate(PaperObservations()).ValueOrDie();
  EXPECT_NEAR(r.exists_probability, 0.0, 1e-12);
  EXPECT_NEAR(r.posterior.Get(1), 1.0, 1e-12);
  EXPECT_EQ(r.posterior.Support(), 1u);
}

TEST(MultiObservationTest, PaperIntermediateVectors) {
  // Pin the intermediate forward vectors of the worked example:
  // P(o,1) = (0,0,1 | 0,0,0), P(o,2) = (0,0,0.2 | 0,0.8,0),
  // P(o,3) = (0,0.16,0.04 | 0.4,0,0.4) before conditioning.
  markov::MarkovChain chain = PaperChainVI();
  AugmentedMatrices aug = BuildDoubledMatrices(chain, WindowVI().region());
  sparse::VecMatWorkspace ws;
  sparse::ProbVector v = ExtendInitialDoubled(
      sparse::ProbVector::Delta(3, 0), WindowVI());
  ws.Multiply(v, aug.plus, &v);  // into t=1 ∈ T□
  EXPECT_NEAR(v.Get(2), 1.0, 1e-12);
  ws.Multiply(v, aug.plus, &v);  // into t=2 ∈ T□
  EXPECT_NEAR(v.Get(2), 0.2, 1e-12);
  EXPECT_NEAR(v.Get(4), 0.8, 1e-12);
  ws.Multiply(v, aug.minus, &v);  // into t=3 ∉ T□
  EXPECT_NEAR(v.Get(1), 0.16, 1e-12);
  EXPECT_NEAR(v.Get(2), 0.04, 1e-12);
  EXPECT_NEAR(v.Get(3), 0.4, 1e-12);
  EXPECT_NEAR(v.Get(5), 0.4, 1e-12);
}

TEST(MultiObservationTest, ExplicitModeAgreesWithImplicit) {
  markov::MarkovChain chain = PaperChainVI();
  MultiObservationEngine implicit(&chain, WindowVI());
  MultiObservationEngine explicit_engine(&chain, WindowVI(),
                                         {.mode = MatrixMode::kExplicit});
  const auto a = implicit.Evaluate(PaperObservations()).ValueOrDie();
  const auto b = explicit_engine.Evaluate(PaperObservations()).ValueOrDie();
  EXPECT_NEAR(a.exists_probability, b.exists_probability, 1e-12);
  EXPECT_NEAR(a.posterior.MaxAbsDiff(b.posterior), 0.0, 1e-12);
  EXPECT_NEAR(a.surviving_mass, b.surviving_mass, 1e-12);
}

TEST(MultiObservationTest, EagerAndDeferredNormalizationAgree) {
  markov::MarkovChain chain = PaperChainVI();
  MultiObservationEngine deferred(&chain, WindowVI(),
                                  {.eager_normalization = false});
  MultiObservationEngine eager(&chain, WindowVI(),
                               {.eager_normalization = true});
  const auto a = deferred.Evaluate(PaperObservations()).ValueOrDie();
  const auto b = eager.Evaluate(PaperObservations()).ValueOrDie();
  EXPECT_NEAR(a.exists_probability, b.exists_probability, 1e-12);
  EXPECT_NEAR(a.surviving_mass, b.surviving_mass, 1e-12);
  EXPECT_NEAR(a.posterior.MaxAbsDiff(b.posterior), 0.0, 1e-12);
}

TEST(MultiObservationTest, SingleObservationReducesToObjectBased) {
  util::Rng rng(53);
  for (int round = 0; round < 15; ++round) {
    markov::MarkovChain chain = RandomChain(10, 3, &rng);
    auto window = QueryWindow::FromRanges(10, 2, 5, 2, 5).ValueOrDie();
    const sparse::ProbVector initial = RandomDistribution(10, 3, &rng);

    MultiObservationEngine multi(&chain, window);
    ObjectBasedEngine single(&chain, window);
    const auto r =
        multi.Evaluate({Observation{0, initial}}).ValueOrDie();
    EXPECT_NEAR(r.exists_probability, single.ExistsProbability(initial),
                1e-10)
        << "round " << round;
    EXPECT_NEAR(r.surviving_mass, 1.0, 1e-9);
  }
}

TEST(MultiObservationTest, MatchesEnumerationWithTwoObservations) {
  util::Rng rng(59);
  for (int round = 0; round < 10; ++round) {
    markov::MarkovChain chain = RandomChain(5, 3, &rng);
    auto window = QueryWindow::FromRanges(5, 1, 2, 1, 3).ValueOrDie();
    std::vector<Observation> obs;
    obs.push_back({0, RandomDistribution(5, 2, &rng)});
    obs.push_back({5, RandomDistribution(5, 3, &rng)});

    MultiObservationEngine engine(&chain, window);
    const auto got = engine.Evaluate(obs);
    const auto want =
        exact::MultiObsExistsByEnumeration(chain, obs, window);
    ASSERT_EQ(got.ok(), want.ok()) << "round " << round;
    if (got.ok()) {
      EXPECT_NEAR(got.value().exists_probability, want.value(), 1e-9)
          << "round " << round;
    }
  }
}

TEST(MultiObservationTest, ThreeObservationsMatchEnumeration) {
  util::Rng rng(61);
  for (int round = 0; round < 6; ++round) {
    markov::MarkovChain chain = RandomChain(4, 2, &rng);
    auto window = QueryWindow::FromRanges(4, 1, 1, 1, 3).ValueOrDie();
    std::vector<Observation> obs;
    obs.push_back({0, RandomDistribution(4, 2, &rng)});
    obs.push_back({2, RandomDistribution(4, 3, &rng)});
    obs.push_back({5, RandomDistribution(4, 3, &rng)});

    MultiObservationEngine engine(&chain, window);
    const auto got = engine.Evaluate(obs);
    const auto want = exact::MultiObsExistsByEnumeration(chain, obs, window);
    ASSERT_EQ(got.ok(), want.ok()) << "round " << round;
    if (got.ok()) {
      EXPECT_NEAR(got.value().exists_probability, want.value(), 1e-9)
          << "round " << round;
    }
  }
}

TEST(MultiObservationTest, ObservationAfterWindowChangesAnswer) {
  // A later observation re-weights worlds and must shift P∃ away from the
  // single-observation value (the "interpolation beats extrapolation"
  // point of Section VI).
  markov::MarkovChain chain = PaperChainVI();
  MultiObservationEngine engine(&chain, WindowVI());
  const double with_one =
      engine.Evaluate({Observation{0, sparse::ProbVector::Delta(3, 0)}})
          .ValueOrDie()
          .exists_probability;
  const double with_two =
      engine.Evaluate(PaperObservations()).ValueOrDie().exists_probability;
  EXPECT_GT(with_one, 0.0);   // without the second obs, hitting is possible
  EXPECT_NEAR(with_two, 0.0, 1e-12);
}

TEST(MultiObservationTest, ContradictoryObservationsRejected) {
  // Deterministic cycle 0->1->2->0; observing s0 at t=0 and s0 at t=1 is
  // impossible.
  auto chain = markov::MarkovChain::FromDense(
                   {{0, 1, 0}, {0, 0, 1}, {1, 0, 0}})
                   .ValueOrDie();
  auto window = QueryWindow::FromRanges(3, 2, 2, 1, 2).ValueOrDie();
  MultiObservationEngine engine(&chain, window);
  std::vector<Observation> obs;
  obs.push_back({0, sparse::ProbVector::Delta(3, 0)});
  obs.push_back({1, sparse::ProbVector::Delta(3, 0)});
  const auto r = engine.Evaluate(obs);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInconsistent);
}

TEST(MultiObservationTest, ValidationErrors) {
  markov::MarkovChain chain = PaperChainVI();
  MultiObservationEngine engine(&chain, WindowVI());
  EXPECT_FALSE(engine.Evaluate({}).ok());

  // Unsorted times.
  std::vector<Observation> unsorted;
  unsorted.push_back({3, sparse::ProbVector::Delta(3, 0)});
  unsorted.push_back({0, sparse::ProbVector::Delta(3, 1)});
  EXPECT_FALSE(engine.Evaluate(unsorted).ok());

  // Wrong pdf dimension.
  std::vector<Observation> wrong_dim;
  wrong_dim.push_back({0, sparse::ProbVector::Delta(4, 0)});
  EXPECT_FALSE(engine.Evaluate(wrong_dim).ok());

  // First observation after the window start requires smoothing.
  std::vector<Observation> late;
  late.push_back({2, sparse::ProbVector::Delta(3, 0)});
  const auto r = engine.Evaluate(late);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kUnimplemented);
}

TEST(MultiObservationTest, ExactObservationBetweenWindowTimes) {
  // Observation inside the window interval conditions the pass mid-flight;
  // verified against enumeration.
  util::Rng rng(67);
  markov::MarkovChain chain = RandomChain(5, 3, &rng);
  auto window = QueryWindow::FromRanges(5, 1, 2, 1, 4).ValueOrDie();
  std::vector<Observation> obs;
  obs.push_back({0, RandomDistribution(5, 2, &rng)});
  obs.push_back({3, RandomDistribution(5, 4, &rng)});
  MultiObservationEngine engine(&chain, window);
  const auto got = engine.Evaluate(obs);
  const auto want = exact::MultiObsExistsByEnumeration(chain, obs, window);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(want.ok());
  EXPECT_NEAR(got.value().exists_probability, want.value(), 1e-9);
}

}  // namespace
}  // namespace core
}  // namespace ustdb
