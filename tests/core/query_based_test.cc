#include "core/query_based.h"

#include <gtest/gtest.h>

#include "core/object_based.h"
#include "testing/random_models.h"
#include "util/rng.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::PaperChainV;
using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

QueryWindow WindowV() {
  return QueryWindow::FromRanges(3, 0, 1, 2, 3).ValueOrDie();
}

TEST(QueryBasedTest, PaperExample2StartVector) {
  // Section V-B Example 2: P(t=0) = (0.96, 0.864, 0.928, 1); the real-state
  // part is the start vector.
  markov::MarkovChain chain = PaperChainV();
  QueryBasedEngine engine(&chain, WindowV());
  const sparse::ProbVector& v = engine.start_vector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_NEAR(v.Get(0), 0.96, 1e-12);
  EXPECT_NEAR(v.Get(1), 0.864, 1e-12);
  EXPECT_NEAR(v.Get(2), 0.928, 1e-12);
}

TEST(QueryBasedTest, PaperExample2FinalAnswer) {
  markov::MarkovChain chain = PaperChainV();
  QueryBasedEngine engine(&chain, WindowV());
  EXPECT_NEAR(
      engine.ExistsProbability(sparse::ProbVector::Delta(3, 1)), 0.864,
      1e-12);
}

TEST(QueryBasedTest, ExplicitTransposedMatricesAgree) {
  markov::MarkovChain chain = PaperChainV();
  QueryBasedEngine implicit(&chain, WindowV());
  QueryBasedEngine explicit_engine(&chain, WindowV(),
                                   {.mode = MatrixMode::kExplicit});
  EXPECT_NEAR(
      implicit.start_vector().MaxAbsDiff(explicit_engine.start_vector()),
      0.0, 1e-12);
}

TEST(QueryBasedTest, TransitionsEqualTEnd) {
  markov::MarkovChain chain = PaperChainV();
  QueryBasedEngine engine(&chain, WindowV());
  EXPECT_EQ(engine.transitions(), 3u);
}

TEST(QueryBasedTest, WindowAtTimeZeroClampsRegionToOne) {
  markov::MarkovChain chain = PaperChainV();
  auto window = QueryWindow::FromRanges(3, 1, 1, 0, 0).ValueOrDie();
  QueryBasedEngine engine(&chain, window);
  EXPECT_DOUBLE_EQ(engine.start_vector().Get(1), 1.0);
  EXPECT_DOUBLE_EQ(engine.start_vector().Get(0), 0.0);
  EXPECT_DOUBLE_EQ(engine.start_vector().Get(2), 0.0);
}

TEST(QueryBasedTest, StartVectorEntriesAreProbabilities) {
  util::Rng rng(5);
  markov::MarkovChain chain = RandomChain(40, 5, &rng);
  auto window = QueryWindow::FromRanges(40, 10, 15, 4, 9).ValueOrDie();
  QueryBasedEngine engine(&chain, window);
  engine.start_vector().ForEachNonZero([](uint32_t, double x) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0 + 1e-12);
  });
}

TEST(QueryBasedTest, AgreesWithObjectBasedOnRandomModels) {
  // The central equivalence of Section V: OB and QB compute the same
  // fraction of possible worlds.
  util::Rng rng(99);
  for (int round = 0; round < 25; ++round) {
    const uint32_t n = 5 + static_cast<uint32_t>(rng.NextBounded(40));
    markov::MarkovChain chain =
        RandomChain(n, 2 + static_cast<uint32_t>(rng.NextBounded(4)), &rng);
    const uint32_t s_lo = static_cast<uint32_t>(rng.NextBounded(n));
    const uint32_t s_hi = std::min<uint32_t>(
        n - 1, s_lo + static_cast<uint32_t>(rng.NextBounded(4)));
    const Timestamp t_lo = static_cast<Timestamp>(rng.NextBounded(6));
    const Timestamp t_hi = t_lo + static_cast<Timestamp>(rng.NextBounded(5));
    auto window =
        QueryWindow::FromRanges(n, s_lo, s_hi, t_lo, t_hi).ValueOrDie();

    ObjectBasedEngine ob(&chain, window);
    QueryBasedEngine qb(&chain, window);
    for (int obj = 0; obj < 4; ++obj) {
      const sparse::ProbVector initial = RandomDistribution(n, 3, &rng);
      EXPECT_NEAR(ob.ExistsProbability(initial),
                  qb.ExistsProbability(initial), 1e-10)
          << "round " << round << " obj " << obj;
    }
  }
}

TEST(QueryBasedTest, OneBackwardPassServesManyObjects) {
  // The amortization property: one engine, many dot products, all matching
  // individual OB runs.
  util::Rng rng(123);
  markov::MarkovChain chain = RandomChain(60, 4, &rng);
  auto window = QueryWindow::FromRanges(60, 20, 24, 5, 10).ValueOrDie();
  ObjectBasedEngine ob(&chain, window);
  QueryBasedEngine qb(&chain, window);
  for (int obj = 0; obj < 50; ++obj) {
    const sparse::ProbVector initial = RandomDistribution(60, 5, &rng);
    EXPECT_NEAR(ob.ExistsProbability(initial), qb.ExistsProbability(initial),
                1e-10);
  }
}

TEST(QueryBasedTest, NonContiguousTimesAgreeWithObjectBased) {
  util::Rng rng(321);
  markov::MarkovChain chain = RandomChain(20, 3, &rng);
  auto region = sparse::IndexSet::FromIndices(20, {3, 7, 11}).ValueOrDie();
  auto window = QueryWindow::Create(region, {2, 5, 6, 9}).ValueOrDie();
  ObjectBasedEngine ob(&chain, window);
  QueryBasedEngine qb(&chain, window);
  for (int obj = 0; obj < 10; ++obj) {
    const sparse::ProbVector initial = RandomDistribution(20, 4, &rng);
    EXPECT_NEAR(ob.ExistsProbability(initial), qb.ExistsProbability(initial),
                1e-10);
  }
}

}  // namespace
}  // namespace core
}  // namespace ustdb
