#include "core/database.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/random_models.h"
#include "workload/synthetic.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::PaperChainV;
using ::ustdb::testing::PaperChainVI;
using ::ustdb::testing::RandomChain;

TEST(DatabaseTest, AddChainAssignsSequentialIds) {
  Database db;
  EXPECT_EQ(db.AddChain(PaperChainV()), 0u);
  EXPECT_EQ(db.AddChain(PaperChainVI()), 1u);
  EXPECT_EQ(db.num_chains(), 2u);
  EXPECT_EQ(db.chain(0).num_states(), 3u);
}

TEST(DatabaseTest, AddObjectValidatesChainAndPdf) {
  Database db;
  const ChainId c = db.AddChain(PaperChainV());

  // Unknown chain.
  std::vector<Observation> obs;
  obs.push_back({0, sparse::ProbVector::Delta(3, 0)});
  EXPECT_FALSE(db.AddObject(c + 1, obs).ok());

  // Dimension mismatch.
  std::vector<Observation> wrong;
  wrong.push_back({0, sparse::ProbVector::Delta(4, 0)});
  EXPECT_FALSE(db.AddObject(c, wrong).ok());

  // Empty observations.
  EXPECT_FALSE(db.AddObject(c, {}).ok());

  // Valid.
  auto id = db.AddObject(c, obs);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 0u);
  EXPECT_EQ(db.num_objects(), 1u);
}

TEST(DatabaseTest, ObservationsMustBeStrictlyOrdered) {
  Database db;
  const ChainId c = db.AddChain(PaperChainV());
  std::vector<Observation> obs;
  obs.push_back({3, sparse::ProbVector::Delta(3, 0)});
  obs.push_back({3, sparse::ProbVector::Delta(3, 1)});
  EXPECT_FALSE(db.AddObject(c, obs).ok());
}

TEST(DatabaseTest, PdfNormalizedOnInsert) {
  Database db;
  const ChainId c = db.AddChain(PaperChainV());
  auto pdf =
      sparse::ProbVector::FromPairs(3, {{0, 2.0}, {1, 2.0}}).ValueOrDie();
  const ObjectId id = db.AddObjectAt(c, pdf).ValueOrDie();
  EXPECT_NEAR(db.object(id).initial_pdf().Sum(), 1.0, 1e-12);
  EXPECT_NEAR(db.object(id).initial_pdf().Get(0), 0.5, 1e-12);
}

TEST(DatabaseTest, ZeroMassPdfRejected) {
  Database db;
  const ChainId c = db.AddChain(PaperChainV());
  EXPECT_FALSE(db.AddObjectAt(c, sparse::ProbVector::Zero(3)).ok());
}

TEST(DatabaseTest, ObjectsGroupedByChain) {
  Database db;
  const ChainId a = db.AddChain(PaperChainV());
  const ChainId b = db.AddChain(PaperChainVI());
  (void)db.AddObjectAt(a, sparse::ProbVector::Delta(3, 0)).ValueOrDie();
  (void)db.AddObjectAt(b, sparse::ProbVector::Delta(3, 1)).ValueOrDie();
  (void)db.AddObjectAt(a, sparse::ProbVector::Delta(3, 2)).ValueOrDie();
  ASSERT_EQ(db.objects_by_chain().size(), 2u);
  EXPECT_EQ(db.objects_by_chain()[a], (std::vector<ObjectId>{0, 2}));
  EXPECT_EQ(db.objects_by_chain()[b], (std::vector<ObjectId>{1}));
}

TEST(DatabaseTest, SingleObservationHelper) {
  Database db;
  const ChainId c = db.AddChain(PaperChainV());
  const ObjectId id =
      db.AddObjectAt(c, sparse::ProbVector::Delta(3, 1)).ValueOrDie();
  EXPECT_TRUE(db.object(id).single_observation());
  EXPECT_EQ(db.object(id).observations.front().time, 0u);

  std::vector<Observation> multi;
  multi.push_back({0, sparse::ProbVector::Delta(3, 0)});
  multi.push_back({4, sparse::ProbVector::Delta(3, 2)});
  const ObjectId id2 = db.AddObject(c, multi).ValueOrDie();
  EXPECT_FALSE(db.object(id2).single_observation());
}

TEST(DatabaseClusterTest, MeanRowL1DistanceExtremes) {
  auto a = markov::MarkovChain::FromDense({{1.0, 0.0}, {0.0, 1.0}})
               .ValueOrDie();
  auto b = markov::MarkovChain::FromDense({{0.0, 1.0}, {1.0, 0.0}})
               .ValueOrDie();
  EXPECT_DOUBLE_EQ(Database::MeanRowL1Distance(a, a), 0.0);
  // Disjoint supports: every row contributes |1| + |1| = 2.
  EXPECT_DOUBLE_EQ(Database::MeanRowL1Distance(a, b), 2.0);
  EXPECT_DOUBLE_EQ(Database::MeanRowL1Distance(a, b),
                   Database::MeanRowL1Distance(b, a));
}

TEST(DatabaseClusterTest, PerturbedChainsShareOneCluster) {
  util::Rng rng(31);
  workload::SyntheticConfig config;
  config.num_states = 40;
  config.state_spread = 4;
  config.max_step = 10;
  markov::MarkovChain base = workload::GenerateChain(config, &rng)
                                 .ValueOrDie();
  Database db;
  const ChainId first = db.AddChain(base);
  for (int i = 0; i < 5; ++i) {
    const ChainId c = db.AddChain(
        workload::PerturbChain(base, 0.2, &rng).ValueOrDie());
    EXPECT_EQ(db.cluster_of(c), db.cluster_of(first));
  }
  ASSERT_EQ(db.chain_clusters().size(), 1u);
  EXPECT_EQ(db.chain_clusters()[0].leader, first);
  EXPECT_EQ(db.chain_clusters()[0].members.size(), 6u);
}

TEST(DatabaseClusterTest, DissimilarChainsGetOwnClusters) {
  util::Rng rng(32);
  Database db;
  const ChainId a = db.AddChain(RandomChain(30, 3, &rng));
  const ChainId b = db.AddChain(RandomChain(30, 3, &rng));
  // Different state counts can never share a cluster with `a`/`b`.
  const ChainId c = db.AddChain(PaperChainV());
  EXPECT_NE(db.cluster_of(a), db.cluster_of(b));
  EXPECT_NE(db.cluster_of(a), db.cluster_of(c));
  EXPECT_NE(db.cluster_of(b), db.cluster_of(c));
  ASSERT_EQ(db.chain_clusters().size(), 3u);
  // Every chain appears in exactly the cluster cluster_of() names.
  for (ChainId id : {a, b, c}) {
    const ChainCluster& cluster = db.chain_clusters()[db.cluster_of(id)];
    EXPECT_EQ(std::count(cluster.members.begin(), cluster.members.end(), id),
              1);
  }
}

TEST(DatabaseClusterTest, LateSimilarChainJoinsExistingCluster) {
  util::Rng rng(33);
  workload::SyntheticConfig config;
  config.num_states = 25;
  config.state_spread = 3;
  config.max_step = 8;
  markov::MarkovChain base = workload::GenerateChain(config, &rng)
                                 .ValueOrDie();
  Database db;
  const ChainId leader = db.AddChain(base);
  const ChainId stranger = db.AddChain(RandomChain(25, 3, &rng));
  const ChainId late = db.AddChain(
      workload::PerturbChain(base, 0.1, &rng).ValueOrDie());
  EXPECT_EQ(db.cluster_of(late), db.cluster_of(leader));
  EXPECT_NE(db.cluster_of(stranger), db.cluster_of(leader));
}

}  // namespace
}  // namespace core
}  // namespace ustdb
