#include "core/database.h"

#include <gtest/gtest.h>

#include "testing/random_models.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::PaperChainV;
using ::ustdb::testing::PaperChainVI;

TEST(DatabaseTest, AddChainAssignsSequentialIds) {
  Database db;
  EXPECT_EQ(db.AddChain(PaperChainV()), 0u);
  EXPECT_EQ(db.AddChain(PaperChainVI()), 1u);
  EXPECT_EQ(db.num_chains(), 2u);
  EXPECT_EQ(db.chain(0).num_states(), 3u);
}

TEST(DatabaseTest, AddObjectValidatesChainAndPdf) {
  Database db;
  const ChainId c = db.AddChain(PaperChainV());

  // Unknown chain.
  std::vector<Observation> obs;
  obs.push_back({0, sparse::ProbVector::Delta(3, 0)});
  EXPECT_FALSE(db.AddObject(c + 1, obs).ok());

  // Dimension mismatch.
  std::vector<Observation> wrong;
  wrong.push_back({0, sparse::ProbVector::Delta(4, 0)});
  EXPECT_FALSE(db.AddObject(c, wrong).ok());

  // Empty observations.
  EXPECT_FALSE(db.AddObject(c, {}).ok());

  // Valid.
  auto id = db.AddObject(c, obs);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 0u);
  EXPECT_EQ(db.num_objects(), 1u);
}

TEST(DatabaseTest, ObservationsMustBeStrictlyOrdered) {
  Database db;
  const ChainId c = db.AddChain(PaperChainV());
  std::vector<Observation> obs;
  obs.push_back({3, sparse::ProbVector::Delta(3, 0)});
  obs.push_back({3, sparse::ProbVector::Delta(3, 1)});
  EXPECT_FALSE(db.AddObject(c, obs).ok());
}

TEST(DatabaseTest, PdfNormalizedOnInsert) {
  Database db;
  const ChainId c = db.AddChain(PaperChainV());
  auto pdf =
      sparse::ProbVector::FromPairs(3, {{0, 2.0}, {1, 2.0}}).ValueOrDie();
  const ObjectId id = db.AddObjectAt(c, pdf).ValueOrDie();
  EXPECT_NEAR(db.object(id).initial_pdf().Sum(), 1.0, 1e-12);
  EXPECT_NEAR(db.object(id).initial_pdf().Get(0), 0.5, 1e-12);
}

TEST(DatabaseTest, ZeroMassPdfRejected) {
  Database db;
  const ChainId c = db.AddChain(PaperChainV());
  EXPECT_FALSE(db.AddObjectAt(c, sparse::ProbVector::Zero(3)).ok());
}

TEST(DatabaseTest, ObjectsGroupedByChain) {
  Database db;
  const ChainId a = db.AddChain(PaperChainV());
  const ChainId b = db.AddChain(PaperChainVI());
  (void)db.AddObjectAt(a, sparse::ProbVector::Delta(3, 0)).ValueOrDie();
  (void)db.AddObjectAt(b, sparse::ProbVector::Delta(3, 1)).ValueOrDie();
  (void)db.AddObjectAt(a, sparse::ProbVector::Delta(3, 2)).ValueOrDie();
  ASSERT_EQ(db.objects_by_chain().size(), 2u);
  EXPECT_EQ(db.objects_by_chain()[a], (std::vector<ObjectId>{0, 2}));
  EXPECT_EQ(db.objects_by_chain()[b], (std::vector<ObjectId>{1}));
}

TEST(DatabaseTest, SingleObservationHelper) {
  Database db;
  const ChainId c = db.AddChain(PaperChainV());
  const ObjectId id =
      db.AddObjectAt(c, sparse::ProbVector::Delta(3, 1)).ValueOrDie();
  EXPECT_TRUE(db.object(id).single_observation());
  EXPECT_EQ(db.object(id).observations.front().time, 0u);

  std::vector<Observation> multi;
  multi.push_back({0, sparse::ProbVector::Delta(3, 0)});
  multi.push_back({4, sparse::ProbVector::Delta(3, 2)});
  const ObjectId id2 = db.AddObject(c, multi).ValueOrDie();
  EXPECT_FALSE(db.object(id2).single_observation());
}

}  // namespace
}  // namespace core
}  // namespace ustdb
