// Degraded answers are never silently wrong: across randomized
// clustered databases, windows, and τ values, a bounds-only threshold
// answer (DegradeMode::kBoundsOnly) must be CONSISTENT with the
// full-precision answer — every certainly-included object really
// qualifies (with its reported lower bound below its true probability),
// every silently dropped object really fails τ, every undecided
// interval contains the true probability, and the result is labeled
// degraded_bounds. This is the acceptance property that makes the
// service's under-pressure downgrade safe to serve.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/executor.h"
#include "testing/sharded_fixture.h"
#include "testing/test_seed.h"
#include "util/rng.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::MakeShardedPair;
using ::ustdb::testing::ShardedPair;
using ::ustdb::testing::ShardedSpec;

// Reassociating kernels promise 1e-12 of the sequential value; the
// bound pass already budgets that margin, the assertions mirror it.
constexpr double kEps = 1e-9;

TEST(DegradedBoundsTest, ConsistentWithFullPrecisionAnswer) {
  const uint64_t seed = ustdb::testing::TestSeed(777);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  util::Rng rng(seed);

  for (int round = 0; round < 6; ++round) {
    ShardedSpec spec;
    spec.seed = seed + static_cast<uint64_t>(round) * 1000003;
    ShardedPair pair = MakeShardedPair(spec, /*num_shards=*/1);
    QueryExecutor executor(&pair.unsharded, {.num_threads = 1});

    const uint32_t s_lo =
        static_cast<uint32_t>(rng.NextBounded(spec.num_states - 8));
    const uint32_t s_hi =
        s_lo + 2 + static_cast<uint32_t>(rng.NextBounded(6));
    const Timestamp t_lo = 1 + static_cast<Timestamp>(rng.NextBounded(3));
    const Timestamp t_hi =
        t_lo + 2 + static_cast<Timestamp>(rng.NextBounded(5));
    const QueryWindow window =
        QueryWindow::FromRanges(spec.num_states, s_lo,
                                std::min(s_hi, spec.num_states - 1), t_lo,
                                t_hi)
            .ValueOrDie();
    const double tau = 0.05 + 0.6 * rng.NextDouble();

    QueryRequest request;
    request.predicate = PredicateKind::kThresholdExists;
    request.window = window;
    request.tau = tau;

    // Ground truth: exact P∃ of EVERY object (τ = -1 keeps them all).
    QueryRequest all = request;
    all.tau = -1.0;
    all.plan = PlanChoice::kQueryBased;
    const QueryResult exact = executor.Run(all).ValueOrDie();
    std::map<ObjectId, double> truth;
    for (const ObjectProbability& p : exact.probabilities) {
      truth[p.id] = p.probability;
    }

    // Full-precision answer at τ.
    QueryRequest full = request;
    full.plan = PlanChoice::kQueryBased;
    const QueryResult precise = executor.Run(full).ValueOrDie();
    ASSERT_FALSE(precise.degraded_bounds);

    // Degraded answer at τ.
    QueryRequest degraded_request = request;
    degraded_request.degrade = DegradeMode::kBoundsOnly;
    const QueryResult degraded =
        executor.Run(degraded_request).ValueOrDie();
    EXPECT_TRUE(degraded.degraded_bounds);

    std::map<ObjectId, double> certain;
    for (const ObjectProbability& p : degraded.probabilities) {
      certain[p.id] = p.probability;
    }
    std::map<ObjectId, ObjectInterval> undecided;
    for (const ObjectInterval& u : degraded.undecided) {
      undecided[u.id] = u;
    }

    // 1. Certainly-included objects really qualify, and the reported
    //    lower bound never exceeds the true probability.
    for (const auto& [id, lo] : certain) {
      ASSERT_TRUE(truth.count(id));
      EXPECT_GE(truth[id], tau - kEps) << "object " << id;
      EXPECT_LE(lo, truth[id] + kEps) << "object " << id;
      EXPECT_FALSE(undecided.count(id))
          << "object " << id << " both certain and undecided";
    }

    // 2. Every undecided interval contains the true probability.
    for (const auto& [id, interval] : undecided) {
      ASSERT_TRUE(truth.count(id));
      EXPECT_GE(truth[id], interval.lo - kEps) << "object " << id;
      EXPECT_LE(truth[id], interval.hi + kEps) << "object " << id;
    }

    // 3. Nothing the full-precision answer includes was silently
    //    dropped: a qualifying object is either certain or undecided.
    for (const ObjectProbability& p : precise.probabilities) {
      EXPECT_TRUE(certain.count(p.id) || undecided.count(p.id))
          << "qualifying object " << p.id
          << " silently missing from the degraded answer";
    }

    // 4. Dropped objects (neither certain nor undecided) really fail τ.
    for (const auto& [id, probability] : truth) {
      if (certain.count(id) || undecided.count(id)) continue;
      EXPECT_LT(probability, tau + kEps)
          << "object " << id << " dropped despite qualifying";
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace ustdb
