#include "core/engine_cache.h"

#include <gtest/gtest.h>

#include "testing/random_models.h"
#include "util/rng.h"
#include "workload/query_gen.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::PaperChainV;
using ::ustdb::testing::PaperChainVI;
using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

QueryWindow WindowV() {
  return QueryWindow::FromRanges(3, 0, 1, 2, 3).ValueOrDie();
}

TEST(EngineCacheTest, HitOnRepeatedWindow) {
  markov::MarkovChain chain = PaperChainV();
  EngineCache cache(4);
  const QueryBasedEngine* a = cache.Get(&chain, WindowV());
  const QueryBasedEngine* b = cache.Get(&chain, WindowV());
  EXPECT_EQ(a, b);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NEAR(a->ExistsProbability(sparse::ProbVector::Delta(3, 1)), 0.864,
              1e-12);
}

TEST(EngineCacheTest, EquivalentWindowsShareEntries) {
  // Same content, built differently.
  markov::MarkovChain chain = PaperChainV();
  EngineCache cache(4);
  auto region = sparse::IndexSet::FromIndices(3, {1, 0}).ValueOrDie();
  auto via_create = QueryWindow::Create(region, {3, 2}).ValueOrDie();
  const QueryBasedEngine* a = cache.Get(&chain, WindowV());
  const QueryBasedEngine* b = cache.Get(&chain, via_create);
  EXPECT_EQ(a, b);
}

TEST(EngineCacheTest, DistinguishesChainsAndWindows) {
  markov::MarkovChain chain_a = PaperChainV();
  markov::MarkovChain chain_b = PaperChainVI();
  EngineCache cache(8);
  const QueryBasedEngine* a = cache.Get(&chain_a, WindowV());
  const QueryBasedEngine* b = cache.Get(&chain_b, WindowV());
  EXPECT_NE(a, b);
  auto other_window = QueryWindow::FromRanges(3, 0, 1, 1, 2).ValueOrDie();
  const QueryBasedEngine* c = cache.Get(&chain_a, other_window);
  EXPECT_NE(a, c);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(EngineCacheTest, LruEviction) {
  markov::MarkovChain chain = PaperChainV();
  EngineCache cache(2);
  auto w1 = QueryWindow::FromRanges(3, 0, 0, 1, 2).ValueOrDie();
  auto w2 = QueryWindow::FromRanges(3, 1, 1, 1, 2).ValueOrDie();
  auto w3 = QueryWindow::FromRanges(3, 2, 2, 1, 2).ValueOrDie();

  (void)cache.Get(&chain, w1);
  (void)cache.Get(&chain, w2);
  (void)cache.Get(&chain, w1);  // w1 now most recent
  (void)cache.Get(&chain, w3);  // evicts w2
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);

  // w1 still cached (hit), w2 rebuilt (miss).
  const uint64_t hits_before = cache.stats().hits;
  (void)cache.Get(&chain, w1);
  EXPECT_EQ(cache.stats().hits, hits_before + 1);
  const uint64_t misses_before = cache.stats().misses;
  (void)cache.Get(&chain, w2);
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
}

TEST(EngineCacheTest, CapacityZeroClampsToOne) {
  markov::MarkovChain chain = PaperChainV();
  EngineCache cache(0);
  EXPECT_EQ(cache.capacity(), 1u);
  (void)cache.Get(&chain, WindowV());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EngineCacheTest, ClearDropsEverything) {
  markov::MarkovChain chain = PaperChainV();
  EngineCache cache(4);
  (void)cache.Get(&chain, WindowV());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  (void)cache.Get(&chain, WindowV());
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(EngineCacheTest, LookupNeverBuildsAndPutAdmits) {
  markov::MarkovChain chain = PaperChainV();
  EngineCache cache(4);
  EXPECT_EQ(cache.Lookup(&chain, WindowV()), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 0u);  // a miss does not insert

  auto built = std::make_unique<QueryBasedEngine>(&chain, WindowV());
  const QueryBasedEngine* raw = built.get();
  EXPECT_EQ(cache.Put(&chain, WindowV(), std::move(built)), raw);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().misses, 1u);  // Put counts neither hit nor miss

  EXPECT_EQ(cache.Lookup(&chain, WindowV()), raw);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.Get(&chain, WindowV()), raw);  // Get sees the same entry
}

TEST(EngineCacheTest, PutKeepsExistingEntry) {
  markov::MarkovChain chain = PaperChainV();
  EngineCache cache(4);
  const QueryBasedEngine* first = cache.Get(&chain, WindowV());
  auto duplicate = std::make_unique<QueryBasedEngine>(&chain, WindowV());
  EXPECT_EQ(cache.Put(&chain, WindowV(), std::move(duplicate)), first);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EngineCacheTest, PutEvictsLruButLookupNeverDoes) {
  markov::MarkovChain chain = PaperChainV();
  EngineCache cache(1);
  auto w1 = QueryWindow::FromRanges(3, 0, 0, 1, 2).ValueOrDie();
  auto w2 = QueryWindow::FromRanges(3, 1, 1, 1, 2).ValueOrDie();
  const QueryBasedEngine* a = cache.Get(&chain, w1);
  // Lookups of absent keys must not disturb resident entries — the batch
  // executor borrows pointers across many lookups.
  EXPECT_EQ(cache.Lookup(&chain, w2), nullptr);
  EXPECT_EQ(cache.Lookup(&chain, w1), a);
  EXPECT_EQ(cache.stats().evictions, 0u);

  (void)cache.Put(&chain, w2,
                  std::make_unique<QueryBasedEngine>(&chain, w2));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Lookup(&chain, w1), nullptr);  // w1 was the LRU entry
}

TEST(EngineCacheTest, CachedResultsMatchFreshEngines) {
  util::Rng rng(601);
  markov::MarkovChain chain = RandomChain(30, 3, &rng);
  workload::QueryGenConfig config;
  config.num_states = 30;
  config.region_extent = 5;
  config.window_length = 4;
  config.t_min = 1;
  config.t_max = 8;
  const auto workload =
      workload::RepeatingWorkload(config, 6, 40).ValueOrDie();

  EngineCache cache(3);
  for (const QueryWindow& w : workload) {
    const QueryBasedEngine* cached = cache.Get(&chain, w);
    QueryBasedEngine fresh(&chain, w);
    const sparse::ProbVector initial = RandomDistribution(30, 3, &rng);
    EXPECT_NEAR(cached->ExistsProbability(initial),
                fresh.ExistsProbability(initial), 1e-12);
  }
  // The skewed workload over 6 windows with capacity 3 must produce both
  // hits and evictions.
  EXPECT_GT(cache.stats().hits, 0u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(EngineCacheTest, EnvelopeRoundTripAndMemberCountKeying) {
  markov::MarkovChain a = PaperChainV();
  markov::MarkovChain b = PaperChainVI();
  const ChainId leader = 7;  // keys are stable ChainIds, not pointers
  EngineCache cache(4);
  EXPECT_EQ(cache.LookupEnvelope(leader, 2), nullptr);
  EXPECT_EQ(cache.stats().bound_misses, 1u);

  auto env = markov::IntervalMarkovChain::FromChains({&a, &b}).ValueOrDie();
  const markov::IntervalMarkovChain* cached =
      cache.PutEnvelope(leader, 2, std::move(env));
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(cache.LookupEnvelope(leader, 2), cached);
  EXPECT_EQ(cache.stats().bound_hits, 1u);
  // A grown cluster (3 members) reads as a different key: no stale hit.
  EXPECT_EQ(cache.LookupEnvelope(leader, 3), nullptr);
  EXPECT_EQ(cache.envelope_size(), 1u);
}

TEST(EngineCacheTest, BoundsKeyedByWindowContents) {
  markov::MarkovChain a = PaperChainV();
  const ChainId leader = 0;
  EngineCache cache(4);
  auto env = markov::IntervalMarkovChain::FromChains({&a}).ValueOrDie();
  const QueryWindow w = WindowV();
  EXPECT_EQ(cache.LookupBounds(leader, 1, w), nullptr);
  const std::vector<markov::ProbBound>* bounds = cache.PutBounds(
      leader, 1, w, env.BoundExists(w.region(), w.t_begin(), w.t_end()));
  ASSERT_NE(bounds, nullptr);
  EXPECT_EQ(cache.LookupBounds(leader, 1, w), bounds);

  // Equal content built differently shares the entry; a different window
  // misses.
  auto region = sparse::IndexSet::FromIndices(3, {1, 0}).ValueOrDie();
  auto same = QueryWindow::Create(region, {3, 2}).ValueOrDie();
  EXPECT_EQ(cache.LookupBounds(leader, 1, same), bounds);
  auto other = QueryWindow::FromRanges(3, 0, 1, 1, 2).ValueOrDie();
  EXPECT_EQ(cache.LookupBounds(leader, 1, other), nullptr);
}

TEST(EngineCacheTest, ClusterStoresEvictIndependentlyOfEngines) {
  // Filling the envelope store beyond capacity must evict envelopes —
  // and only envelopes: the QB engine store is untouched, so borrowed
  // backward passes can never dangle because of bound-pass admissions.
  markov::MarkovChain chain = PaperChainV();
  EngineCache cache(2);
  const QueryBasedEngine* engine = cache.Get(&chain, WindowV());
  util::Rng rng(5);
  for (ChainId leader = 0; leader < 3; ++leader) {
    markov::MarkovChain member = RandomChain(4, 2, &rng);
    auto env = markov::IntervalMarkovChain::FromChains({&member})
                   .ValueOrDie();
    cache.PutEnvelope(leader, 1, std::move(env));
  }
  EXPECT_EQ(cache.envelope_size(), 2u);  // capacity 2: one eviction
  EXPECT_EQ(cache.stats().bound_evictions, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.size(), 1u);
  // The engine entry is still served (a hit, not a rebuild).
  EXPECT_EQ(cache.Get(&chain, WindowV()), engine);
  // The oldest envelope is gone, the two youngest remain.
  EXPECT_EQ(cache.LookupEnvelope(0, 1), nullptr);
  EXPECT_NE(cache.LookupEnvelope(1, 1), nullptr);
  EXPECT_NE(cache.LookupEnvelope(2, 1), nullptr);
}

TEST(EngineCacheTest, ClearDropsClusterStores) {
  markov::MarkovChain a = PaperChainV();
  EngineCache cache(4);
  auto env = markov::IntervalMarkovChain::FromChains({&a}).ValueOrDie();
  const QueryWindow w = WindowV();
  cache.PutEnvelope(0, 1, std::move(env));
  cache.PutBounds(0, 1, w, {});
  cache.Clear();
  EXPECT_EQ(cache.envelope_size(), 0u);
  EXPECT_EQ(cache.bounds_size(), 0u);
  EXPECT_EQ(cache.LookupEnvelope(0, 1), nullptr);
  EXPECT_EQ(cache.LookupBounds(0, 1, w), nullptr);
}

}  // namespace
}  // namespace core
}  // namespace ustdb
