// Incremental window-shift reuse: extending a memoized query-based
// backward pass by delta propagation steps must match a cold rebuild of
// the shifted window bit-identically or within the 1e-12 kernel-parity
// margin — at the engine level (extension constructor, including a base
// window containing t=0), at the cache level (LookupShiftBase picks the
// nearest same-epoch base; Get() extends instead of rebuilding), and at
// the executor level (ExecStats::cache_shift_extends, answer parity).

#include <gtest/gtest.h>

#include <vector>

#include "core/database.h"
#include "core/engine_cache.h"
#include "core/executor.h"
#include "core/query_based.h"
#include "core/query_request.h"
#include "core/query_window.h"
#include "sparse/prob_vector.h"
#include "testing/random_models.h"
#include "testing/test_seed.h"
#include "util/rng.h"

namespace ustdb {
namespace core {
namespace {

using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

constexpr uint32_t kStates = 24;
constexpr double kParityMargin = 1e-12;

/// Start vectors compared through every basis state: v_a[s] == v_b[s]
/// within the kernel-parity margin.
void ExpectStartVectorParity(const QueryBasedEngine& extended,
                             const QueryBasedEngine& cold) {
  for (uint32_t s = 0; s < kStates; ++s) {
    const sparse::ProbVector basis = sparse::ProbVector::Delta(kStates, s);
    EXPECT_NEAR(extended.ExistsProbability(basis),
                cold.ExistsProbability(basis), kParityMargin)
        << "start-vector drift at state " << s;
  }
}

TEST(WindowShiftTest, ExtensionMatchesColdBuild) {
  const uint64_t seed = ustdb::testing::TestSeed(821);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  util::Rng rng(seed);
  const markov::MarkovChain chain = RandomChain(kStates, 3, &rng);

  for (const Timestamp t_lo : {Timestamp(0), Timestamp(3)}) {
    for (const Timestamp delta : {Timestamp(1), Timestamp(2), Timestamp(7)}) {
      SCOPED_TRACE("t_lo=" + std::to_string(t_lo) +
                   " delta=" + std::to_string(delta));
      const QueryWindow base_window =
          QueryWindow::FromRanges(kStates, 4, 11, t_lo, t_lo + 5)
              .ValueOrDie();
      const QueryWindow shifted = base_window.ShiftedBy(delta);

      const QueryBasedEngine base(&chain, base_window);
      const QueryBasedEngine extended(base, shifted, delta);
      const QueryBasedEngine cold(&chain, shifted);
      ExpectStartVectorParity(extended, cold);
      EXPECT_EQ(extended.transitions(), cold.transitions());
    }
  }
}

TEST(WindowShiftTest, ExtensionMatchesColdBuildOnGapWindows) {
  const uint64_t seed = ustdb::testing::TestSeed(822);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  util::Rng rng(seed);
  const markov::MarkovChain chain = RandomChain(kStates, 3, &rng);

  // Non-contiguous time set: {2, 4, 5, 7} — the shift identity does not
  // depend on contiguity, only on the uniform +delta relabeling.
  const QueryWindow base_window =
      QueryWindow::Create(
          sparse::IndexSet::FromRange(kStates, 6, 12).ValueOrDie(),
          {2, 4, 5, 7})
          .ValueOrDie();
  for (const Timestamp delta : {Timestamp(1), Timestamp(3)}) {
    SCOPED_TRACE("delta=" + std::to_string(delta));
    const QueryWindow shifted = base_window.ShiftedBy(delta);
    const QueryBasedEngine base(&chain, base_window);
    const QueryBasedEngine extended(base, shifted, delta);
    const QueryBasedEngine cold(&chain, shifted);
    ExpectStartVectorParity(extended, cold);
  }
}

TEST(WindowShiftTest, CacheExtendsFromNearestSameEpochBase) {
  const uint64_t seed = ustdb::testing::TestSeed(823);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  util::Rng rng(seed);
  const markov::MarkovChain chain = RandomChain(kStates, 3, &rng);
  const QueryWindow w0 =
      QueryWindow::FromRanges(kStates, 4, 11, 2, 6).ValueOrDie();

  EngineCache cache(8);
  ASSERT_NE(cache.Get(&chain, w0, /*epoch=*/0), nullptr);
  ASSERT_NE(cache.Get(&chain, w0.ShiftedBy(1), 0), nullptr);
  EXPECT_EQ(cache.stats().shift_extends, 1u);

  // Nearest base wins: w0+1 (delta 2), not w0 (delta 3). The probe
  // itself counts a shift_extend — callers pair it with the miss that
  // motivated it.
  Timestamp delta = 0;
  ASSERT_NE(cache.LookupShiftBase(&chain, w0.ShiftedBy(3), 0, &delta),
            nullptr);
  EXPECT_EQ(delta, 2u);
  EXPECT_EQ(cache.stats().shift_extends, 2u);

  // A Get() on the shifted window extends; the result must match a cold
  // engine for that window.
  const QueryBasedEngine* extended = cache.Get(&chain, w0.ShiftedBy(3), 0);
  ASSERT_NE(extended, nullptr);
  EXPECT_EQ(cache.stats().shift_extends, 3u);
  const QueryBasedEngine cold(&chain, w0.ShiftedBy(3));
  ExpectStartVectorParity(*extended, cold);

  // A base at a stale epoch is no shift base: at epoch 1 nothing in the
  // cache qualifies, and the miss rebuilds cold (invalidations counted by
  // the paired lookups).
  delta = 0;
  EXPECT_EQ(cache.LookupShiftBase(&chain, w0.ShiftedBy(4), /*epoch=*/1,
                                  &delta),
            nullptr);
}

TEST(WindowShiftTest, ExecutorReusesSlidPassesWithAnswerParity) {
  const uint64_t seed = ustdb::testing::TestSeed(824);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  Database db;
  util::Rng rng(seed);
  const ChainId chain = db.AddChain(RandomChain(kStates, 3, &rng));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        db.AddObjectAt(chain, RandomDistribution(kStates, 3, &rng)).ok());
  }

  QueryRequest request;
  request.predicate = PredicateKind::kExists;
  request.plan = PlanChoice::kQueryBased;
  request.window = QueryWindow::FromRanges(kStates, 4, 11, 2, 6).ValueOrDie();

  QueryExecutor warm_exec(&db, {.num_threads = 1});
  ASSERT_TRUE(warm_exec.Run(request).ok());

  // Slide the window forward step by step: every step extends the
  // previous pass instead of rebuilding, and every answer matches a cold
  // executor evaluating the slid window from scratch.
  for (Timestamp slide = 1; slide <= 3; ++slide) {
    SCOPED_TRACE("slide=" + std::to_string(slide));
    QueryRequest slid = request;
    slid.window = request.window.ShiftedBy(slide);
    auto warm = warm_exec.Run(slid);
    ASSERT_TRUE(warm.ok()) << warm.status();
    EXPECT_EQ(warm.value().stats.cache_shift_extends, 1u);

    QueryExecutor cold_exec(&db, {.num_threads = 1});
    auto cold = cold_exec.Run(slid);
    ASSERT_TRUE(cold.ok());
    ASSERT_EQ(warm.value().probabilities.size(),
              cold.value().probabilities.size());
    for (size_t i = 0; i < cold.value().probabilities.size(); ++i) {
      EXPECT_EQ(warm.value().probabilities[i].id,
                cold.value().probabilities[i].id);
      EXPECT_NEAR(warm.value().probabilities[i].probability,
                  cold.value().probabilities[i].probability, kParityMargin);
    }
  }
  EXPECT_EQ(warm_exec.cache_stats().shift_extends, 3u);
}

}  // namespace
}  // namespace core
}  // namespace ustdb
