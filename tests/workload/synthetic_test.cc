#include "workload/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ustdb {
namespace workload {
namespace {

SyntheticConfig SmallConfig() {
  SyntheticConfig c;
  c.num_objects = 50;
  c.num_states = 500;
  c.object_spread = 5;
  c.state_spread = 5;
  c.max_step = 40;
  c.seed = 42;
  return c;
}

TEST(SyntheticTest, TableIDefaultsMatchPaper) {
  const SyntheticConfig c;
  EXPECT_EQ(c.num_objects, 10'000u);
  EXPECT_EQ(c.num_states, 100'000u);
  EXPECT_EQ(c.object_spread, 5u);
  EXPECT_EQ(c.state_spread, 5u);
  EXPECT_EQ(c.max_step, 40u);
}

TEST(SyntheticTest, ChainIsStochasticWithSpreadEntries) {
  util::Rng rng(1);
  const SyntheticConfig c = SmallConfig();
  auto chain = GenerateChain(c, &rng).ValueOrDie();
  EXPECT_TRUE(chain.matrix().IsStochastic());
  // Interior rows carry exactly state_spread entries (border rows may have
  // fewer if the band is clipped, but 500 >> 40 so all rows qualify here).
  for (uint32_t r = 0; r < chain.num_states(); ++r) {
    EXPECT_EQ(chain.matrix().RowNnz(r), c.state_spread) << "row " << r;
  }
}

TEST(SyntheticTest, ChainRespectsMaxStepBand) {
  // "An object in state s_i can only transition into states
  //  s_j ∈ [s_i − max_step/2, s_i + max_step/2]."
  util::Rng rng(2);
  SyntheticConfig c = SmallConfig();
  c.max_step = 10;
  auto chain = GenerateChain(c, &rng).ValueOrDie();
  for (const auto& t : chain.matrix().ToTriplets()) {
    const int64_t diff =
        static_cast<int64_t>(t.col) - static_cast<int64_t>(t.row);
    EXPECT_LE(std::abs(diff), 5);  // max_step / 2
  }
}

TEST(SyntheticTest, TinyStateSpacesClampSpread) {
  util::Rng rng(3);
  SyntheticConfig c = SmallConfig();
  c.num_states = 4;
  c.state_spread = 20;
  c.max_step = 100;
  auto chain = GenerateChain(c, &rng).ValueOrDie();
  EXPECT_TRUE(chain.matrix().IsStochastic());
  for (uint32_t r = 0; r < 4; ++r) {
    EXPECT_LE(chain.matrix().RowNnz(r), 4u);
  }
}

TEST(SyntheticTest, GenerateChainValidates) {
  util::Rng rng(4);
  SyntheticConfig c = SmallConfig();
  c.num_states = 1;
  EXPECT_FALSE(GenerateChain(c, &rng).ok());
  c = SmallConfig();
  c.state_spread = 0;
  EXPECT_FALSE(GenerateChain(c, &rng).ok());
  c = SmallConfig();
  c.max_step = 0;
  EXPECT_FALSE(GenerateChain(c, &rng).ok());
}

TEST(SyntheticTest, ObjectPdfHasSpreadConsecutiveStates) {
  util::Rng rng(5);
  const SyntheticConfig c = SmallConfig();
  for (int i = 0; i < 20; ++i) {
    const sparse::ProbVector pdf = GenerateObjectPdf(c, &rng);
    EXPECT_EQ(pdf.Support(), c.object_spread);
    EXPECT_NEAR(pdf.Sum(), 1.0, 1e-12);
    // Support is consecutive.
    uint32_t first = UINT32_MAX;
    uint32_t last = 0;
    pdf.ForEachNonZero([&](uint32_t s, double) {
      first = std::min(first, s);
      last = std::max(last, s);
    });
    EXPECT_EQ(last - first + 1, c.object_spread);
  }
}

TEST(SyntheticTest, DatabaseHasOneChainAndAllObjects) {
  auto db = GenerateDatabase(SmallConfig()).ValueOrDie();
  EXPECT_EQ(db.num_chains(), 1u);
  EXPECT_EQ(db.num_objects(), 50u);
  for (const core::UncertainObject& obj : db.objects()) {
    EXPECT_TRUE(obj.single_observation());
    EXPECT_EQ(obj.observations.front().time, 0u);
  }
}

TEST(SyntheticTest, DatabaseGenerationIsDeterministic) {
  auto a = GenerateDatabase(SmallConfig()).ValueOrDie();
  auto b = GenerateDatabase(SmallConfig()).ValueOrDie();
  EXPECT_EQ(a.chain(0).matrix(), b.chain(0).matrix());
  ASSERT_EQ(a.num_objects(), b.num_objects());
  for (uint32_t i = 0; i < a.num_objects(); ++i) {
    EXPECT_NEAR(a.object(i).initial_pdf().MaxAbsDiff(
                    b.object(i).initial_pdf()),
                0.0, 0.0);
  }
}

TEST(SyntheticTest, PerturbChainKeepsSupportAndStochasticity) {
  util::Rng rng(6);
  auto base = GenerateChain(SmallConfig(), &rng).ValueOrDie();
  auto perturbed = PerturbChain(base, 0.3, &rng).ValueOrDie();
  EXPECT_TRUE(perturbed.matrix().IsStochastic());
  EXPECT_EQ(perturbed.matrix().nnz(), base.matrix().nnz());
  // Same sparsity pattern, different values.
  const auto bt = base.matrix().ToTriplets();
  const auto pt = perturbed.matrix().ToTriplets();
  ASSERT_EQ(bt.size(), pt.size());
  bool any_changed = false;
  for (size_t i = 0; i < bt.size(); ++i) {
    EXPECT_EQ(bt[i].row, pt[i].row);
    EXPECT_EQ(bt[i].col, pt[i].col);
    any_changed |= std::abs(bt[i].value - pt[i].value) > 1e-6;
  }
  EXPECT_TRUE(any_changed);
}

TEST(SyntheticTest, PerturbChainValidatesJitter) {
  util::Rng rng(7);
  auto base = GenerateChain(SmallConfig(), &rng).ValueOrDie();
  EXPECT_FALSE(PerturbChain(base, -0.1, &rng).ok());
  EXPECT_FALSE(PerturbChain(base, 1.0, &rng).ok());
}

TEST(SyntheticTest, MultiChainDatabaseRoundRobinAssignment) {
  auto db = GenerateMultiChainDatabase(SmallConfig(), 4, 0.2).ValueOrDie();
  EXPECT_EQ(db.num_chains(), 4u);
  EXPECT_EQ(db.num_objects(), 50u);
  // Round-robin: chain 0 gets ceil(50/4) objects.
  EXPECT_EQ(db.objects_by_chain()[0].size(), 13u);
  EXPECT_EQ(db.objects_by_chain()[3].size(), 12u);
}

TEST(SyntheticTest, DefaultWindowMatchesPaper) {
  SyntheticConfig c;
  c.num_states = 1'000;
  auto w = DefaultWindow(c).ValueOrDie();
  EXPECT_EQ(w.region().min(), 100u);
  EXPECT_EQ(w.region().max(), 120u);
  EXPECT_EQ(w.t_begin(), 20u);
  EXPECT_EQ(w.t_end(), 25u);
}

}  // namespace
}  // namespace workload
}  // namespace ustdb
