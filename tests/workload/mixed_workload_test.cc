#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/executor.h"
#include "testing/random_models.h"
#include "util/rng.h"
#include "workload/query_gen.h"

namespace ustdb {
namespace workload {
namespace {

QueryGenConfig SmallConfig() {
  QueryGenConfig config;
  config.num_states = 30;
  config.region_extent = 5;
  config.window_length = 4;
  config.t_min = 1;
  config.t_max = 8;
  config.seed = 99;
  return config;
}

TEST(MixedRequestWorkloadTest, ProducesEveryPredicateWithParameters) {
  const auto stream =
      MixedRequestWorkload(SmallConfig(), 6, 200, {}, /*tau=*/0.25,
                           /*top_k=*/7)
          .ValueOrDie();
  ASSERT_EQ(stream.size(), 200u);
  std::map<core::PredicateKind, int> counts;
  for (const core::QueryRequest& request : stream) {
    ++counts[request.predicate];
    if (request.predicate == core::PredicateKind::kThresholdExists) {
      EXPECT_DOUBLE_EQ(request.tau, 0.25);
    }
    if (request.predicate == core::PredicateKind::kTopKExists) {
      EXPECT_EQ(request.k, 7u);
    }
  }
  EXPECT_EQ(counts.size(), 5u);  // all predicates present at 200 draws
}

TEST(MixedRequestWorkloadTest, WindowsRepeatAcrossTheStream) {
  const auto stream =
      MixedRequestWorkload(SmallConfig(), 4, 100).ValueOrDie();
  std::set<std::pair<uint32_t, Timestamp>> distinct;
  for (const core::QueryRequest& request : stream) {
    distinct.emplace(request.window.region().elements().front(),
                     request.window.t_begin());
  }
  EXPECT_LE(distinct.size(), 4u);
  EXPECT_GE(distinct.size(), 2u);  // the skew still surfaces several
}

TEST(MixedRequestWorkloadTest, RejectsAllZeroMix) {
  PredicateMix mix;
  mix.exists = mix.forall = mix.k_times = mix.threshold = mix.top_k = 0;
  EXPECT_FALSE(MixedRequestWorkload(SmallConfig(), 4, 10, mix).ok());
}

TEST(RefreshBatchesTest, SlicesOneStreamIntoUniformBatches) {
  const auto batches = RefreshBatches(SmallConfig(), 4, 10, 6).ValueOrDie();
  ASSERT_EQ(batches.size(), 6u);
  for (const auto& batch : batches) EXPECT_EQ(batch.size(), 10u);

  // The batches are exactly the mixed stream in order — a dashboard that
  // submits per refresh sees the same requests as one that streams.
  const auto stream =
      MixedRequestWorkload(SmallConfig(), 4, 60).ValueOrDie();
  size_t k = 0;
  for (const auto& batch : batches) {
    for (const core::QueryRequest& request : batch) {
      EXPECT_EQ(request.predicate, stream[k].predicate);
      EXPECT_EQ(request.window.times(), stream[k].window.times());
      EXPECT_EQ(request.window.region().elements(),
                stream[k].window.region().elements());
      ++k;
    }
  }
}

TEST(RefreshBatchesTest, RejectsEmptyBatchSize) {
  EXPECT_FALSE(RefreshBatches(SmallConfig(), 4, 0, 3).ok());
}

TEST(MixedRequestWorkloadTest, StreamRunsThroughExecutorWithCacheHits) {
  util::Rng rng(4242);
  core::Database db;
  const ChainId chain = db.AddChain(testing::RandomChain(30, 3, &rng));
  for (int i = 0; i < 12; ++i) {
    (void)db.AddObjectAt(chain, testing::RandomDistribution(30, 3, &rng))
        .ValueOrDie();
  }
  const auto stream =
      MixedRequestWorkload(SmallConfig(), 5, 60).ValueOrDie();

  core::QueryExecutor executor(&db, {.num_threads = 2, .cache_capacity = 8});
  for (const core::QueryRequest& request : stream) {
    ASSERT_TRUE(executor.Run(request).ok());
  }
  // Repeated windows must have been served from cached backward passes.
  EXPECT_GT(executor.cache_stats().hits, 0u);
}

}  // namespace
}  // namespace workload
}  // namespace ustdb
