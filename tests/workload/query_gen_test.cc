#include "workload/query_gen.h"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.h"

namespace ustdb {
namespace workload {
namespace {

QueryGenConfig SmallConfig() {
  QueryGenConfig c;
  c.num_states = 1'000;
  c.region_extent = 21;
  c.window_length = 6;
  c.t_min = 5;
  c.t_max = 50;
  c.seed = 1;
  return c;
}

TEST(QueryGenTest, RandomWindowRespectsConfig) {
  util::Rng rng(2);
  const QueryGenConfig c = SmallConfig();
  for (int i = 0; i < 50; ++i) {
    const auto w = RandomWindow(c, &rng).ValueOrDie();
    EXPECT_EQ(w.region().size(), c.region_extent);
    EXPECT_EQ(w.num_times(), c.window_length);
    EXPECT_GE(w.t_begin(), c.t_min);
    EXPECT_LE(w.t_begin(), c.t_max);
    EXPECT_EQ(w.t_end(), w.t_begin() + c.window_length - 1);
    // Contiguous region inside the domain.
    EXPECT_EQ(w.region().max() - w.region().min() + 1, c.region_extent);
    EXPECT_LT(w.region().max(), c.num_states);
  }
}

TEST(QueryGenTest, RandomWindowValidates) {
  util::Rng rng(3);
  QueryGenConfig c = SmallConfig();
  c.region_extent = 0;
  EXPECT_FALSE(RandomWindow(c, &rng).ok());
  c = SmallConfig();
  c.region_extent = c.num_states + 1;
  EXPECT_FALSE(RandomWindow(c, &rng).ok());
  c = SmallConfig();
  c.window_length = 0;
  EXPECT_FALSE(RandomWindow(c, &rng).ok());
  c = SmallConfig();
  c.t_min = 10;
  c.t_max = 5;
  EXPECT_FALSE(RandomWindow(c, &rng).ok());
}

TEST(QueryGenTest, RepeatingWorkloadDrawsFromPool) {
  const auto workload =
      RepeatingWorkload(SmallConfig(), /*distinct_windows=*/5, 200)
          .ValueOrDie();
  ASSERT_EQ(workload.size(), 200u);
  // Count distinct (region min, t_begin) keys — at most 5.
  std::map<std::pair<uint32_t, Timestamp>, int> freq;
  for (const auto& w : workload) {
    ++freq[{w.region().min(), w.t_begin()}];
  }
  EXPECT_LE(freq.size(), 5u);
  EXPECT_GE(freq.size(), 2u);
}

TEST(QueryGenTest, RepeatSkewFavorsLowRanks) {
  // With harmonic weights the most popular window should appear clearly
  // more often than the least popular one.
  const auto workload =
      RepeatingWorkload(SmallConfig(), 8, 4'000).ValueOrDie();
  std::map<std::pair<uint32_t, Timestamp>, int> freq;
  for (const auto& w : workload) {
    ++freq[{w.region().min(), w.t_begin()}];
  }
  int max_count = 0;
  int min_count = INT32_MAX;
  for (const auto& [key, count] : freq) {
    max_count = std::max(max_count, count);
    min_count = std::min(min_count, count);
  }
  EXPECT_GT(max_count, 3 * min_count);
}

TEST(QueryGenTest, DeterministicPerSeed) {
  const auto a = RepeatingWorkload(SmallConfig(), 4, 50).ValueOrDie();
  const auto b = RepeatingWorkload(SmallConfig(), 4, 50).ValueOrDie();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].region().elements(), b[i].region().elements());
    EXPECT_EQ(a[i].times(), b[i].times());
  }
}

TEST(QueryGenTest, RepeatingWorkloadValidates) {
  EXPECT_FALSE(RepeatingWorkload(SmallConfig(), 0, 10).ok());
}

TEST(ArrivalProcessTest, ValidatesConfig) {
  EXPECT_FALSE(ArrivalProcess::Create({.rate_qps = 0.0}).ok());
  EXPECT_FALSE(ArrivalProcess::Create({.rate_qps = -5.0}).ok());
  EXPECT_FALSE(ArrivalProcess::Create({.kind = ArrivalConfig::Kind::kOnOff,
                                       .on_mean_s = 0.0})
                   .ok());
  EXPECT_FALSE(ArrivalProcess::Create({.kind = ArrivalConfig::Kind::kOnOff,
                                       .off_mean_s = 0.0})
                   .ok());
  EXPECT_TRUE(ArrivalProcess::Create({}).ok());
}

TEST(ArrivalProcessTest, PoissonGapsMatchTheConfiguredRate) {
  ArrivalConfig config;
  config.rate_qps = 1000.0;
  config.seed = 7;
  ArrivalProcess process = ArrivalProcess::Create(config).ValueOrDie();

  const uint32_t kSamples = 20'000;
  double total = 0.0;
  for (uint32_t i = 0; i < kSamples; ++i) {
    const double gap = process.NextGap();
    ASSERT_GE(gap, 0.0);
    total += gap;
  }
  // Mean gap of an Exp(1000/s) stream is 1ms; 20k samples put the sample
  // mean within a few percent deterministically for this seed.
  EXPECT_NEAR(total / kSamples, 1e-3, 1e-4);
}

TEST(ArrivalProcessTest, TimesAreMonotoneAndDeterministicPerSeed) {
  ArrivalConfig config;
  config.rate_qps = 500.0;
  config.seed = 11;
  auto a = ArrivalProcess::Create(config).ValueOrDie().Times(200);
  auto b = ArrivalProcess::Create(config).ValueOrDie().Times(200);
  ASSERT_EQ(a.size(), 200u);
  EXPECT_EQ(a, b);
  for (size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i], a[i - 1]);

  config.seed = 12;
  auto c = ArrivalProcess::Create(config).ValueOrDie().Times(200);
  EXPECT_NE(a, c);
}

TEST(ArrivalProcessTest, OnOffDilutesTheEffectiveRate) {
  ArrivalConfig config;
  config.kind = ArrivalConfig::Kind::kOnOff;
  config.rate_qps = 2000.0;  // in-burst rate
  config.on_mean_s = 0.01;
  config.off_mean_s = 0.50;
  config.seed = 13;
  ArrivalProcess process = ArrivalProcess::Create(config).ValueOrDie();

  const uint32_t kSamples = 5'000;
  double total = 0.0;
  double max_gap = 0.0;
  uint32_t long_gaps = 0;
  for (uint32_t i = 0; i < kSamples; ++i) {
    const double gap = process.NextGap();
    total += gap;
    max_gap = std::max(max_gap, gap);
    if (gap > 0.05) ++long_gaps;
  }
  // Bursting 2000 qps with on:off of 0.01:0.50 yields an effective rate of
  // roughly 2000 * 0.01 / 0.51 ≈ 39 qps — far below the in-burst rate.
  const double effective_qps = kSamples / total;
  EXPECT_LT(effective_qps, 200.0);
  EXPECT_GT(effective_qps, 10.0);
  // The silences are visible: some inter-arrival gaps span an off phase.
  EXPECT_GT(long_gaps, 10u);
  EXPECT_GT(max_gap, 0.25);
  // But most arrivals cluster inside bursts at the fast in-burst cadence.
  EXPECT_LT(long_gaps, kSamples / 10);
}

}  // namespace
}  // namespace workload
}  // namespace ustdb
