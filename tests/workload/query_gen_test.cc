#include "workload/query_gen.h"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.h"

namespace ustdb {
namespace workload {
namespace {

QueryGenConfig SmallConfig() {
  QueryGenConfig c;
  c.num_states = 1'000;
  c.region_extent = 21;
  c.window_length = 6;
  c.t_min = 5;
  c.t_max = 50;
  c.seed = 1;
  return c;
}

TEST(QueryGenTest, RandomWindowRespectsConfig) {
  util::Rng rng(2);
  const QueryGenConfig c = SmallConfig();
  for (int i = 0; i < 50; ++i) {
    const auto w = RandomWindow(c, &rng).ValueOrDie();
    EXPECT_EQ(w.region().size(), c.region_extent);
    EXPECT_EQ(w.num_times(), c.window_length);
    EXPECT_GE(w.t_begin(), c.t_min);
    EXPECT_LE(w.t_begin(), c.t_max);
    EXPECT_EQ(w.t_end(), w.t_begin() + c.window_length - 1);
    // Contiguous region inside the domain.
    EXPECT_EQ(w.region().max() - w.region().min() + 1, c.region_extent);
    EXPECT_LT(w.region().max(), c.num_states);
  }
}

TEST(QueryGenTest, RandomWindowValidates) {
  util::Rng rng(3);
  QueryGenConfig c = SmallConfig();
  c.region_extent = 0;
  EXPECT_FALSE(RandomWindow(c, &rng).ok());
  c = SmallConfig();
  c.region_extent = c.num_states + 1;
  EXPECT_FALSE(RandomWindow(c, &rng).ok());
  c = SmallConfig();
  c.window_length = 0;
  EXPECT_FALSE(RandomWindow(c, &rng).ok());
  c = SmallConfig();
  c.t_min = 10;
  c.t_max = 5;
  EXPECT_FALSE(RandomWindow(c, &rng).ok());
}

TEST(QueryGenTest, RepeatingWorkloadDrawsFromPool) {
  const auto workload =
      RepeatingWorkload(SmallConfig(), /*distinct_windows=*/5, 200)
          .ValueOrDie();
  ASSERT_EQ(workload.size(), 200u);
  // Count distinct (region min, t_begin) keys — at most 5.
  std::map<std::pair<uint32_t, Timestamp>, int> freq;
  for (const auto& w : workload) {
    ++freq[{w.region().min(), w.t_begin()}];
  }
  EXPECT_LE(freq.size(), 5u);
  EXPECT_GE(freq.size(), 2u);
}

TEST(QueryGenTest, RepeatSkewFavorsLowRanks) {
  // With harmonic weights the most popular window should appear clearly
  // more often than the least popular one.
  const auto workload =
      RepeatingWorkload(SmallConfig(), 8, 4'000).ValueOrDie();
  std::map<std::pair<uint32_t, Timestamp>, int> freq;
  for (const auto& w : workload) {
    ++freq[{w.region().min(), w.t_begin()}];
  }
  int max_count = 0;
  int min_count = INT32_MAX;
  for (const auto& [key, count] : freq) {
    max_count = std::max(max_count, count);
    min_count = std::min(min_count, count);
  }
  EXPECT_GT(max_count, 3 * min_count);
}

TEST(QueryGenTest, DeterministicPerSeed) {
  const auto a = RepeatingWorkload(SmallConfig(), 4, 50).ValueOrDie();
  const auto b = RepeatingWorkload(SmallConfig(), 4, 50).ValueOrDie();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].region().elements(), b[i].region().elements());
    EXPECT_EQ(a[i].times(), b[i].times());
  }
}

TEST(QueryGenTest, RepeatingWorkloadValidates) {
  EXPECT_FALSE(RepeatingWorkload(SmallConfig(), 0, 10).ok());
}

}  // namespace
}  // namespace workload
}  // namespace ustdb
