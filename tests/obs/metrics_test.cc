// obs::MetricsRegistry unit coverage: counter/gauge/histogram semantics
// under concurrent writers, handle identity (same name+labels -> same
// handle; kind mismatch -> detached sink, never a crash or null), the
// percentile-from-buckets contract (conservative by at most one log2
// bucket, a pure function of the counts), the exactness of
// MergeHistograms, the CommonMeta schema, both exporters, and the
// PeriodicLogger lifecycle.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

namespace ustdb {
namespace obs {
namespace {

TEST(CounterTest, AddsAreExactAcrossThreads) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  // Striping spreads writers across cache lines but must never lose an
  // increment: the striped sum is exact.
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAndAddCompose) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(5.0);
  gauge.Add(-2.0);
  gauge.Add(0.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 3.5);
}

TEST(GaugeTest, ConcurrentAddsAreExact) {
  Gauge gauge;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge.Add(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  // Every delta is an integer small enough to be exact in a double, so
  // the CAS loop must account for all of them.
  EXPECT_DOUBLE_EQ(gauge.Value(), kThreads * kPerThread);
}

TEST(HistogramTest, CountsSumAndBucketsTrackObservations) {
  Histogram h;
  h.Observe(0.25);
  h.Observe(0.5);
  h.Observe(1.0);
  const HistogramData data = h.Snapshot();
  EXPECT_EQ(data.count, 3u);
  EXPECT_DOUBLE_EQ(data.sum, 1.75);
  EXPECT_EQ(data.buckets.size(), HistogramBucketBounds().size() + 1);
  uint64_t bucket_total = 0;
  for (uint64_t b : data.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, data.count);
}

TEST(HistogramTest, PercentileConservativeByOneBucket) {
  Histogram h;
  std::vector<double> samples;
  for (int i = 1; i <= 1000; ++i) {
    const double v = 1e-4 * i;  // 0.1ms .. 100ms, spread over many buckets
    samples.push_back(v);
    h.Observe(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const double exact =
        samples[static_cast<size_t>(q * (samples.size() - 1))];
    const double approx = h.Percentile(q);
    // The log2 grid reports the upper bound of the quantile's bucket:
    // never below the true sample quantile, at most one bucket (2x) above.
    EXPECT_GE(approx, exact);
    EXPECT_LE(approx, exact * 2.0 + 1e-12) << "q=" << q;
  }
}

TEST(HistogramTest, PercentileEdgeCases) {
  HistogramData empty;
  empty.buckets.assign(HistogramBucketBounds().size() + 1, 0);
  EXPECT_EQ(PercentileFromBuckets(empty, 0.99), 0.0);

  Histogram h;
  h.Observe(1e9);  // beyond the last bound: overflow bucket
  // The overflow bucket has no finite upper bound; the quantile reports
  // the last finite bound (the floor of what the value could be).
  EXPECT_EQ(h.Percentile(0.99), HistogramBucketBounds().back());
}

TEST(HistogramTest, MergeEqualsPooledObservation) {
  Histogram a;
  Histogram b;
  Histogram pooled;
  for (int i = 1; i <= 400; ++i) {
    // Dyadic values: every observation and every partial sum is exact in
    // a double, so merged.sum can be compared for equality.
    const double fast = i / 1024.0;
    const double slow = i / 16.0;
    a.Observe(fast);
    b.Observe(slow);
    pooled.Observe(fast);
    pooled.Observe(slow);
  }
  const HistogramData merged = MergeHistograms({a.Snapshot(), b.Snapshot()});
  const HistogramData direct = pooled.Snapshot();
  ASSERT_EQ(merged.buckets.size(), direct.buckets.size());
  for (size_t i = 0; i < direct.buckets.size(); ++i) {
    EXPECT_EQ(merged.buckets[i], direct.buckets[i]) << "bucket " << i;
  }
  EXPECT_EQ(merged.count, direct.count);
  EXPECT_DOUBLE_EQ(merged.sum, direct.sum);
  // Same counts => same percentiles: the merge is exact, not approximate.
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(PercentileFromBuckets(merged, q),
              PercentileFromBuckets(direct, q));
  }
}

TEST(RegistryTest, SameNameAndLabelsResolveToOneHandle) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("requests", {{"shard", "0"}});
  Counter* b = registry.GetCounter("requests", {{"shard", "0"}});
  Counter* other = registry.GetCounter("requests", {{"shard", "1"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
  a->Add(2);
  other->Add(5);
  EXPECT_EQ(b->Value(), 2u);
}

TEST(RegistryTest, KindMismatchReturnsDetachedSink) {
  MetricsRegistry registry;
  registry.GetCounter("latency")->Add(1);
  // Same name, different kind: instrumentation sites must get a usable
  // (absorbing) handle, and the export must keep the original family.
  Gauge* sink = registry.GetGauge("latency");
  ASSERT_NE(sink, nullptr);
  sink->Set(42.0);  // absorbed, not exported

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.families.size(), 1u);
  EXPECT_EQ(snap.families[0].name, "latency");
  EXPECT_EQ(snap.families[0].kind, MetricKind::kCounter);
}

TEST(RegistryTest, SnapshotIsDeterministicallyOrdered) {
  MetricsRegistry registry;
  registry.GetCounter("zz", {{"shard", "1"}})->Add(1);
  registry.GetCounter("zz", {{"shard", "0"}})->Add(1);
  registry.GetCounter("aa")->Add(1);
  registry.GetHistogram("mm")->Observe(0.5);

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.families.size(), 3u);
  EXPECT_EQ(snap.families[0].name, "aa");
  EXPECT_EQ(snap.families[1].name, "mm");
  EXPECT_EQ(snap.families[2].name, "zz");
  ASSERT_EQ(snap.families[2].points.size(), 2u);
  EXPECT_EQ(snap.families[2].points[0].labels.at("shard"), "0");
  EXPECT_EQ(snap.families[2].points[1].labels.at("shard"), "1");
}

TEST(RegistryTest, ConcurrentResolutionAndUpdates) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Every thread resolves the same family (lock path) and its own
      // labeled point, then hammers both.
      Counter* shared = registry.GetCounter("shared");
      Counter* own =
          registry.GetCounter("shared", {{"t", std::to_string(t)}});
      for (int i = 0; i < 2'000; ++i) {
        shared->Add(1);
        own->Add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("shared")->Value(), kThreads * 2'000u);
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.families.size(), 1u);
  EXPECT_EQ(snap.families[0].points.size(), 1u + kThreads);
}

TEST(CommonMetaTest, CarriesTheSharedSchemaKeys) {
  const auto meta = CommonMeta();
  for (const char* key :
       {"host", "nproc", "isa", "ustdb_shards", "git_sha", "timestamp_utc"}) {
    EXPECT_TRUE(meta.count(key)) << "missing meta key: " << key;
  }
  EXPECT_FALSE(meta.at("git_sha").empty());
  // ISO-8601 UTC: "2026-08-08T11:22:33Z".
  const std::string& ts = meta.at("timestamp_utc");
  ASSERT_EQ(ts.size(), 20u);
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts.back(), 'Z');
}

TEST(ExportersTest, PrometheusTextCarriesFamiliesBucketsAndMeta) {
  MetricsRegistry registry;
  registry
      .GetCounter("ustdb_test_requests_total", {{"shard", "0"}},
                  "requests seen", "requests")
      ->Add(3);
  registry.GetHistogram("ustdb_test_latency_seconds", {}, "latency", "s")
      ->Observe(0.25);
  registry.GetGauge("ustdb_test_depth")->Set(7.0);

  const std::string text = WritePrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# HELP ustdb_test_requests_total requests seen"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ustdb_test_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("ustdb_test_requests_total{shard=\"0\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ustdb_test_latency_seconds histogram"),
            std::string::npos);
  // Cumulative buckets with the mandatory +Inf terminator, plus _sum and
  // _count series.
  EXPECT_NE(text.find("ustdb_test_latency_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("ustdb_test_latency_seconds_sum"), std::string::npos);
  EXPECT_NE(text.find("ustdb_test_latency_seconds_count 1"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ustdb_test_depth gauge"), std::string::npos);
  // Meta rides as comments so the exposition stays parseable.
  EXPECT_NE(text.find("# meta git_sha"), std::string::npos);
}

TEST(ExportersTest, JsonCarriesFamiliesAndEscapes) {
  MetricsRegistry registry;
  registry.GetCounter("c", {{"k", "with\"quote"}})->Add(1);
  registry.GetHistogram("h")->Observe(0.5);

  const std::string json = WriteJson(registry.Snapshot());
  EXPECT_NE(json.find("\"meta\""), std::string::npos);
  EXPECT_NE(json.find("\"families\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"c\""), std::string::npos);
  EXPECT_NE(json.find("with\\\"quote"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST(PeriodicLoggerTest, InvokesCallbackAndStopsCleanly) {
  MetricsRegistry registry;
  registry.GetCounter("ticks")->Add(1);
  std::atomic<int> calls{0};
  {
    PeriodicLogger logger(&registry, std::chrono::milliseconds(5),
                          [&calls](const MetricsSnapshot& snap) {
                            EXPECT_FALSE(snap.families.empty());
                            calls.fetch_add(1);
                          });
    while (calls.load() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    logger.Stop();
    const int after_stop = calls.load();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // No callback runs after Stop() returns.
    EXPECT_EQ(calls.load(), after_stop);
  }  // destructor after Stop(): idempotent
  EXPECT_GE(calls.load(), 1);
}

TEST(ObsOptionsTest, ResolvedRegistryDefaultsToGlobal) {
  ObsOptions options;
  EXPECT_EQ(options.ResolvedRegistry(), MetricsRegistry::Global());
  MetricsRegistry own;
  options.registry = &own;
  EXPECT_EQ(options.ResolvedRegistry(), &own);
}

}  // namespace
}  // namespace obs
}  // namespace ustdb
