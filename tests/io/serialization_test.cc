#include "io/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "testing/random_models.h"
#include "util/rng.h"

namespace ustdb {
namespace io {
namespace {

using ::ustdb::testing::PaperChainV;
using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

class SerializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ustdb_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(SerializationTest, MatrixRoundTrip) {
  util::Rng rng(1);
  const markov::MarkovChain chain = RandomChain(20, 4, &rng);
  const std::string path = Path("m.txt");
  ASSERT_TRUE(SaveMatrix(chain.matrix(), path).ok());
  auto loaded = LoadMatrix(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, chain.matrix());
}

TEST_F(SerializationTest, MatrixValuesSurviveExactly) {
  // %.17g round-trips doubles bit-exactly.
  auto m = sparse::CsrMatrix::FromTriplets(
               2, 2, {{0, 0, 1.0 / 3.0}, {0, 1, 2.0 / 3.0}, {1, 1, 1.0}})
               .ValueOrDie();
  const std::string path = Path("exact.txt");
  ASSERT_TRUE(SaveMatrix(m, path).ok());
  auto loaded = LoadMatrix(path).ValueOrDie();
  EXPECT_EQ(loaded.Get(0, 0), 1.0 / 3.0);
  EXPECT_EQ(loaded.Get(0, 1), 2.0 / 3.0);
}

TEST_F(SerializationTest, ChainRoundTripValidatesStochasticity) {
  const std::string path = Path("chain.txt");
  ASSERT_TRUE(SaveChain(PaperChainV(), path).ok());
  auto loaded = LoadChain(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->matrix(), PaperChainV().matrix());

  // A sub-stochastic matrix loads as a matrix but not as a chain.
  auto sub = sparse::CsrMatrix::FromTriplets(2, 2, {{0, 0, 0.5}, {1, 1, 1.0}})
                 .ValueOrDie();
  const std::string bad = Path("bad_chain.txt");
  ASSERT_TRUE(SaveMatrix(sub, bad).ok());
  EXPECT_TRUE(LoadMatrix(bad).ok());
  EXPECT_FALSE(LoadChain(bad).ok());
}

TEST_F(SerializationTest, LoadMatrixRejectsCorruptFiles) {
  const std::string path = Path("corrupt.txt");
  std::ofstream(path) << "not-a-header\n1 1 0\n";
  EXPECT_FALSE(LoadMatrix(path).ok());

  std::ofstream(Path("truncated.txt")) << "ustdb-matrix 1\n3 3 5\n0 0 1.0\n";
  EXPECT_FALSE(LoadMatrix(Path("truncated.txt")).ok());

  EXPECT_FALSE(LoadMatrix(Path("missing.txt")).ok());
}

TEST_F(SerializationTest, RoadNetworkRoundTrip) {
  auto g = network::RoadNetwork::FromEdges(
               5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}})
               .ValueOrDie();
  const std::string path = Path("road.txt");
  ASSERT_TRUE(SaveRoadNetwork(g, path).ok());
  auto loaded = LoadRoadNetwork(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes(), 5u);
  EXPECT_EQ(loaded->Edges(), g.Edges());
}

TEST_F(SerializationTest, ObjectsRoundTrip) {
  util::Rng rng(3);
  core::Database db;
  const ChainId c0 = db.AddChain(RandomChain(10, 3, &rng));
  const ChainId c1 = db.AddChain(RandomChain(10, 3, &rng));
  (void)db.AddObjectAt(c0, RandomDistribution(10, 3, &rng)).ValueOrDie();
  std::vector<core::Observation> multi;
  multi.push_back({0, RandomDistribution(10, 2, &rng)});
  multi.push_back({5, RandomDistribution(10, 4, &rng)});
  (void)db.AddObject(c1, multi).ValueOrDie();

  const std::string path = Path("objects.txt");
  ASSERT_TRUE(SaveObjects(db, path).ok());

  core::Database restored;
  (void)restored.AddChain(RandomChain(10, 3, &rng));
  (void)restored.AddChain(RandomChain(10, 3, &rng));
  ASSERT_TRUE(LoadObjectsInto(path, &restored).ok());
  ASSERT_EQ(restored.num_objects(), 2u);
  EXPECT_EQ(restored.object(0).chain, c0);
  EXPECT_EQ(restored.object(1).chain, c1);
  ASSERT_EQ(restored.object(1).observations.size(), 2u);
  EXPECT_EQ(restored.object(1).observations[1].time, 5u);
  EXPECT_NEAR(restored.object(0).initial_pdf().MaxAbsDiff(
                  db.object(0).initial_pdf()),
              0.0, 1e-15);
}

TEST_F(SerializationTest, LoadObjectsRequiresChains) {
  util::Rng rng(4);
  core::Database db;
  const ChainId c = db.AddChain(RandomChain(5, 2, &rng));
  (void)db.AddObjectAt(c, RandomDistribution(5, 2, &rng)).ValueOrDie();
  const std::string path = Path("objects2.txt");
  ASSERT_TRUE(SaveObjects(db, path).ok());

  core::Database empty;  // no chains registered
  const auto status = LoadObjectsInto(path, &empty);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace io
}  // namespace ustdb
