#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace ustdb {
namespace util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const int64_t x = rng.NextInRange(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextInRangeSingleton) {
  Rng rng(1);
  EXPECT_EQ(rng.NextInRange(5, 5), 5);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, SampleWithoutReplacementDistinctSortedInRange) {
  Rng rng(21);
  for (int round = 0; round < 50; ++round) {
    const auto sample = rng.SampleWithoutReplacement(100, 12);
    ASSERT_EQ(sample.size(), 12u);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    std::set<uint32_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 12u);
    for (uint32_t v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(3);
  const auto sample = rng.SampleWithoutReplacement(8, 8);
  ASSERT_EQ(sample.size(), 8u);
  for (uint32_t i = 0; i < 8; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(99);
  Rng b = a.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(SplitMix64Test, KnownFirstOutputsAreStable) {
  // Determinism pin: datasets must stay reproducible across refactors.
  SplitMix64 sm(0);
  const uint64_t a = sm.Next();
  const uint64_t b = sm.Next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.Next(), a);
  EXPECT_EQ(sm2.Next(), b);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace util
}  // namespace ustdb
