#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace ustdb {
namespace util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad value");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad value");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad value");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInconsistent), "Inconsistent");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IOError("x"));
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Caller(int x) {
  USTDB_RETURN_NOT_OK(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Caller(1).ok());
  EXPECT_EQ(Caller(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  USTDB_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = QuarterViaMacro(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_FALSE(QuarterViaMacro(6).ok());  // 6 -> 3, odd
  EXPECT_FALSE(QuarterViaMacro(3).ok());
}

}  // namespace
}  // namespace util
}  // namespace ustdb
