#include "util/parallel_for.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace ustdb {
namespace util {
namespace {

TEST(ResolveThreadCountTest, NonZeroRequestPassesThrough) {
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  EXPECT_EQ(ResolveThreadCount(7), 7u);
}

TEST(ResolveThreadCountTest, ZeroRequestIsAtLeastOne) {
  // hardware_concurrency() may legally return 0; either way the resolved
  // count must be a usable positive thread count.
  EXPECT_GE(ResolveThreadCount(0), 1u);
}

TEST(ParallelChunksTest, EmptyRangeRunsInlineWithoutThreads) {
  const std::thread::id main_id = std::this_thread::get_id();
  int calls = 0;
  ParallelChunks(0, 16, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 0u);
    EXPECT_EQ(std::this_thread::get_id(), main_id);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelChunksTest, MoreWorkersThanItemsClampsToNonEmptyChunks) {
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> chunks;
  std::vector<int> hits(3, 0);
  ParallelChunks(3, 64, [&](size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(begin, end);
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
  EXPECT_LE(chunks.size(), 3u);  // never more chunks than items
  for (const auto& [begin, end] : chunks) {
    EXPECT_LT(begin, end);  // never an empty chunk
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_workers(), 0u);
  const std::thread::id main_id = std::this_thread::get_id();
  std::vector<int> hits(10, 0);
  pool.ParallelChunks(hits.size(), [&](size_t begin, size_t end) {
    EXPECT_EQ(std::this_thread::get_id(), main_id);
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(std::count(hits.begin(), hits.end(), 1),
            static_cast<long>(hits.size()));
}

TEST(ThreadPoolTest, EmptyRangeRunsInline) {
  ThreadPool pool(4);
  const std::thread::id main_id = std::this_thread::get_id();
  int calls = 0;
  pool.ParallelChunks(0, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 0u);
    EXPECT_EQ(std::this_thread::get_id(), main_id);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnceAcrossReuse) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  // The pool is reused across jobs of varying size, including jobs smaller
  // than the pool.
  for (size_t n : {1000u, 3u, 1u, 777u, 4u}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h = 0;
    pool.ParallelChunks(n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) ++hits[i];
    });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "n " << n << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, ChunkBoundariesMatchFreeFunction) {
  // Bit-reproducibility contract: the pool must split [0, n) exactly like
  // ParallelChunks with the same worker count.
  constexpr size_t kN = 101;
  constexpr unsigned kWorkers = 4;

  std::mutex mu;
  std::set<std::pair<size_t, size_t>> free_chunks;
  ParallelChunks(kN, kWorkers, [&](size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    free_chunks.emplace(begin, end);
  });

  ThreadPool pool(kWorkers);
  std::set<std::pair<size_t, size_t>> pool_chunks;
  pool.ParallelChunks(kN, [&](size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    pool_chunks.emplace(begin, end);
  });
  EXPECT_EQ(free_chunks, pool_chunks);
}

TEST(ThreadPoolTest, ManyWorkersFewItems) {
  ThreadPool pool(16);
  std::vector<std::atomic<int>> hits(2);
  for (auto& h : hits) h = 0;
  pool.ParallelChunks(2, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_EQ(hits[1].load(), 1);
}

}  // namespace
}  // namespace util
}  // namespace ustdb
