#include "util/string_util.h"

#include <gtest/gtest.h>

namespace ustdb {
namespace util {
namespace {

TEST(SplitTest, BasicFields) {
  const auto f = Split("a,b,c", ',');
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "b");
  EXPECT_EQ(f[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto f = Split("a,,c,", ',');
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[3], "");
}

TEST(SplitTest, NoSeparator) {
  const auto f = Split("abc", ',');
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], "abc");
}

TEST(TrimTest, StripsWhitespace) {
  EXPECT_EQ(Trim("  x \t\r\n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(ParseU64Test, ValidValues) {
  EXPECT_EQ(ParseU64("0").value(), 0u);
  EXPECT_EQ(ParseU64("42").value(), 42u);
  EXPECT_EQ(ParseU64(" 7 ").value(), 7u);
  EXPECT_EQ(ParseU64("18446744073709551615").value(), UINT64_MAX);
}

TEST(ParseU64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseU64("").ok());
  EXPECT_FALSE(ParseU64("-1").ok());
  EXPECT_FALSE(ParseU64("12x").ok());
  EXPECT_FALSE(ParseU64("1.5").ok());
}

TEST(ParseU64Test, RejectsOverflow) {
  EXPECT_FALSE(ParseU64("18446744073709551616").ok());
}

TEST(ParseDoubleTest, ValidValues) {
  EXPECT_DOUBLE_EQ(ParseDouble("0.5").value(), 0.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-3e2").value(), -300.0);
  EXPECT_DOUBLE_EQ(ParseDouble(" 1 ").value(), 1.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.5abc").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("ustdb-matrix 1", "ustdb-"));
  EXPECT_FALSE(StartsWith("ust", "ustdb"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(StringPrintfTest, FormatsLikePrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.3f", 0.125), "0.125");
  EXPECT_EQ(StringPrintf("empty"), "empty");
}

}  // namespace
}  // namespace util
}  // namespace ustdb
