#include "util/cancellation.h"

#include <gtest/gtest.h>

#include <thread>

namespace ustdb {
namespace util {
namespace {

TEST(CancellationTest, NullTokenNeverStops) {
  CancellationToken token;
  EXPECT_FALSE(token.can_stop());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(token.stop_requested());
}

TEST(CancellationTest, RequestStopReachesEveryTokenCopy) {
  CancellationSource source;
  CancellationToken token = source.token();
  CancellationToken copy = token;
  EXPECT_TRUE(token.can_stop());
  EXPECT_FALSE(token.stop_requested());
  EXPECT_FALSE(copy.stop_requested());

  source.RequestStop();
  EXPECT_TRUE(token.stop_requested());
  EXPECT_TRUE(copy.stop_requested());
  EXPECT_TRUE(source.stop_requested());
}

TEST(CancellationTest, StopIsIdempotent) {
  CancellationSource source;
  source.RequestStop();
  source.RequestStop();
  EXPECT_TRUE(source.token().stop_requested());
}

TEST(CancellationTest, StopAfterPollsTripsDeterministically) {
  CancellationSource source;
  CancellationToken token = source.token();
  source.RequestStopAfterPolls(3);
  // Exactly 3 polls succeed; every later poll observes the stop.
  EXPECT_FALSE(token.stop_requested());
  EXPECT_FALSE(token.stop_requested());
  EXPECT_FALSE(token.stop_requested());
  EXPECT_TRUE(token.stop_requested());
  EXPECT_TRUE(token.stop_requested());
}

TEST(CancellationTest, StopAfterZeroPollsTripsImmediately) {
  CancellationSource source;
  source.RequestStopAfterPolls(0);
  EXPECT_TRUE(source.token().stop_requested());
}

TEST(CancellationTest, LinkedSourceObservesUpstreamStop) {
  CancellationSource upstream;
  CancellationSource linked(upstream.token());
  CancellationToken token = linked.token();
  EXPECT_FALSE(token.stop_requested());

  upstream.RequestStop();
  EXPECT_TRUE(token.stop_requested());
}

TEST(CancellationTest, LinkedSourceStopsIndependentlyOfUpstream) {
  CancellationSource upstream;
  CancellationSource linked(upstream.token());
  linked.RequestStop();
  EXPECT_TRUE(linked.token().stop_requested());
  // The link is one-way: a downstream stop never propagates up.
  EXPECT_FALSE(upstream.token().stop_requested());
}

TEST(CancellationTest, CrossThreadStopIsObserved) {
  CancellationSource source;
  CancellationToken token = source.token();
  std::thread canceller([&source] { source.RequestStop(); });
  canceller.join();
  EXPECT_TRUE(token.stop_requested());
}

}  // namespace
}  // namespace util
}  // namespace ustdb
