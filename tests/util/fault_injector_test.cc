// FaultInjector unit tests: spec grammar (sites, actions, probabilities,
// durations, shardN targeting, malformed entries), deterministic replay
// under a fixed seed, approximate firing rates, the fail/throw/stall
// behaviors, and the ScopedFaultInjection install/restore contract that
// the zero-overhead default (Active() == nullptr) rests on.

#include "util/fault_injector.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <vector>

namespace ustdb {
namespace util {
namespace {

std::unique_ptr<FaultInjector> MustParse(std::string_view spec,
                                         uint64_t seed) {
  Result<std::unique_ptr<FaultInjector>> parsed =
      FaultInjector::Parse(spec, seed);
  EXPECT_TRUE(parsed.ok()) << parsed.status().message();
  return std::move(parsed).ValueOrDie();
}

TEST(FaultInjectorParse, AcceptsEverySiteAndAction) {
  auto injector = MustParse(
      "queue_admission:fail;dispatch:throw;engine_build:stall:5ms;"
      "kernel_dispatch:fail:0.5;cache_admission:throw:0.25;"
      "merge:stall:100us;shard2:fail:0.1",
      7);
  ASSERT_EQ(injector->rules().size(), 7u);
  EXPECT_EQ(injector->rules()[0].point, FaultPoint::kQueueAdmission);
  EXPECT_EQ(injector->rules()[0].kind, FaultKind::kFail);
  EXPECT_EQ(injector->rules()[0].probability, 1.0);
  EXPECT_EQ(injector->rules()[2].kind, FaultKind::kStall);
  EXPECT_EQ(injector->rules()[2].stall, std::chrono::microseconds(5000));
  EXPECT_EQ(injector->rules()[3].probability, 0.5);
  // shardN is a dispatch rule restricted to one shard.
  EXPECT_EQ(injector->rules()[6].point, FaultPoint::kDispatch);
  EXPECT_EQ(injector->rules()[6].shard, 2);
  EXPECT_EQ(injector->rules()[6].probability, 0.1);
}

TEST(FaultInjectorParse, RejectsMalformedSpecs) {
  const char* bad[] = {
      "nonsense:fail",          // unknown site
      "dispatch",               // missing action
      "dispatch:explode",       // unknown action
      "dispatch:fail:0",        // probability outside (0, 1]
      "dispatch:fail:1.5",      // probability outside (0, 1]
      "dispatch:fail:10ms",     // duration on a non-stall action
      "merge:stall:10parsecs",  // unknown duration suffix
      "shardx:fail",            // non-numeric shard
  };
  for (const char* spec : bad) {
    EXPECT_FALSE(FaultInjector::Parse(spec, 1).ok()) << spec;
  }
}

TEST(FaultInjectorParse, EmptySpecYieldsNoRules) {
  auto injector = MustParse("", 1);
  EXPECT_TRUE(injector->rules().empty());
  EXPECT_EQ(injector->Inject(FaultPoint::kDispatch), Status::OK());
}

TEST(FaultInjector, InactiveByDefault) {
  if (std::getenv("USTDB_FAULT_SPEC") != nullptr) {
    GTEST_SKIP() << "env-spec injector installed for this run";
  }
  EXPECT_EQ(FaultInjector::Active(), nullptr)
      << "tests must start with no injector installed (spec env unset)";
}

TEST(FaultInjector, ScopedInstallAndRestore) {
  FaultInjector* before = FaultInjector::Active();
  {
    ScopedFaultInjection outer(MustParse("dispatch:fail", 1));
    EXPECT_EQ(FaultInjector::Active(), outer.get());
    {
      ScopedFaultInjection inner(MustParse("merge:fail", 2));
      EXPECT_EQ(FaultInjector::Active(), inner.get());
    }
    EXPECT_EQ(FaultInjector::Active(), outer.get());
  }
  EXPECT_EQ(FaultInjector::Active(), before);
}

TEST(FaultInjector, CertainFailReturnsUnavailable) {
  ScopedFaultInjection scope(MustParse("engine_build:fail", 3));
  const Status status = scope.get()->Inject(FaultPoint::kEngineBuild);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(scope.get()->fired(FaultPoint::kEngineBuild), 1u);
  // Other points are untouched.
  EXPECT_EQ(scope.get()->Inject(FaultPoint::kMerge), Status::OK());
  EXPECT_EQ(scope.get()->fired(FaultPoint::kMerge), 0u);
}

TEST(FaultInjector, CertainThrowRaises) {
  ScopedFaultInjection scope(MustParse("cache_admission:throw", 3));
  EXPECT_THROW(
      { (void)scope.get()->Inject(FaultPoint::kCacheAdmission); },
      FaultInjectedError);
}

TEST(FaultInjector, StallSleepsThenContinues) {
  ScopedFaultInjection scope(MustParse("merge:stall:20ms", 3));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(scope.get()->Inject(FaultPoint::kMerge), Status::OK());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(15));
  EXPECT_EQ(scope.get()->fired(FaultPoint::kMerge), 1u);
}

TEST(FaultInjector, ShardScopedDispatchRule) {
  ScopedFaultInjection scope(MustParse("shard1:fail", 3));
  EXPECT_EQ(scope.get()->Inject(FaultPoint::kDispatch, 0), Status::OK());
  EXPECT_EQ(scope.get()->Inject(FaultPoint::kDispatch, 2), Status::OK());
  EXPECT_EQ(scope.get()->Inject(FaultPoint::kDispatch, 1).code(),
            StatusCode::kUnavailable);
}

TEST(FaultInjector, DeterministicReplay) {
  // Two injectors with the same spec + seed fire on exactly the same
  // draws; a different seed gives a different pattern.
  auto a = MustParse("dispatch:fail:0.3", 42);
  auto b = MustParse("dispatch:fail:0.3", 42);
  auto c = MustParse("dispatch:fail:0.3", 43);
  std::vector<bool> fires_a, fires_b, fires_c;
  for (int i = 0; i < 200; ++i) {
    fires_a.push_back(!a->Inject(FaultPoint::kDispatch).ok());
    fires_b.push_back(!b->Inject(FaultPoint::kDispatch).ok());
    fires_c.push_back(!c->Inject(FaultPoint::kDispatch).ok());
  }
  EXPECT_EQ(fires_a, fires_b);
  EXPECT_NE(fires_a, fires_c);
  EXPECT_EQ(a->fired(FaultPoint::kDispatch), b->fired(FaultPoint::kDispatch));
}

TEST(FaultInjector, FiringRateTracksProbability) {
  auto injector = MustParse("kernel_dispatch:fail:0.1", 99);
  const int draws = 5000;
  for (int i = 0; i < draws; ++i) {
    (void)injector->Inject(FaultPoint::kKernelDispatch);
  }
  const double rate =
      static_cast<double>(injector->fired(FaultPoint::kKernelDispatch)) /
      draws;
  EXPECT_NEAR(rate, 0.1, 0.03);
  EXPECT_EQ(injector->total_fired(),
            injector->fired(FaultPoint::kKernelDispatch));
}

TEST(FaultInjector, PointNamesRoundTrip) {
  EXPECT_EQ(FaultPointName(FaultPoint::kQueueAdmission), "queue_admission");
  EXPECT_EQ(FaultPointName(FaultPoint::kDispatch), "dispatch");
  EXPECT_EQ(FaultPointName(FaultPoint::kEngineBuild), "engine_build");
  EXPECT_EQ(FaultPointName(FaultPoint::kKernelDispatch), "kernel_dispatch");
  EXPECT_EQ(FaultPointName(FaultPoint::kCacheAdmission), "cache_admission");
  EXPECT_EQ(FaultPointName(FaultPoint::kMerge), "merge");
}

}  // namespace
}  // namespace util
}  // namespace ustdb
