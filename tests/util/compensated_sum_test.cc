#include "util/compensated_sum.h"

#include <gtest/gtest.h>

#include <vector>

namespace ustdb {
namespace util {
namespace {

TEST(CompensatedSumTest, SumsExactly) {
  CompensatedSum acc;
  acc.Add(1.0);
  acc.Add(2.0);
  acc.Add(3.0);
  EXPECT_DOUBLE_EQ(acc.Total(), 6.0);
}

TEST(CompensatedSumTest, RecoversTinyTerms) {
  // 1 + 1e-16 repeated: naive summation loses the small terms entirely.
  CompensatedSum acc;
  acc.Add(1.0);
  for (int i = 0; i < 10'000; ++i) acc.Add(1e-16);
  EXPECT_NEAR(acc.Total(), 1.0 + 1e-12, 1e-15);

  double naive = 1.0;
  for (int i = 0; i < 10'000; ++i) naive += 1e-16;
  EXPECT_DOUBLE_EQ(naive, 1.0);  // demonstrates the loss being fixed above
}

TEST(CompensatedSumTest, NeumaierHandlesLargeThenSmall) {
  // The classic Kahan failure case fixed by Neumaier's variant.
  CompensatedSum acc;
  acc.Add(1.0);
  acc.Add(1e100);
  acc.Add(1.0);
  acc.Add(-1e100);
  EXPECT_DOUBLE_EQ(acc.Total(), 2.0);
}

TEST(CompensatedSumTest, ResetClears) {
  CompensatedSum acc;
  acc.Add(5.0);
  acc.Reset();
  EXPECT_DOUBLE_EQ(acc.Total(), 0.0);
  acc.Add(1.5);
  EXPECT_DOUBLE_EQ(acc.Total(), 1.5);
}

TEST(SumCompensatedTest, RangeOverload) {
  std::vector<double> v = {0.1, 0.2, 0.3, 0.4};
  EXPECT_NEAR(SumCompensated(v.data(), v.size()), 1.0, 1e-15);
  EXPECT_DOUBLE_EQ(SumCompensated(v.data(), 0), 0.0);
}

}  // namespace
}  // namespace util
}  // namespace ustdb
