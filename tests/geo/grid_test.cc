#include "geo/grid.h"

#include <gtest/gtest.h>

namespace ustdb {
namespace geo {
namespace {

TEST(Grid2DTest, CreateValidates) {
  EXPECT_TRUE(Grid2D::Create(10, 5).ok());
  EXPECT_FALSE(Grid2D::Create(0, 5).ok());
  EXPECT_FALSE(Grid2D::Create(5, 0).ok());
  EXPECT_FALSE(Grid2D::Create(1u << 17, 1u << 17).ok());  // overflow
}

TEST(Grid2DTest, StateCellRoundTrip) {
  Grid2D g = Grid2D::Create(7, 4).ValueOrDie();
  EXPECT_EQ(g.num_states(), 28u);
  for (StateIndex s = 0; s < g.num_states(); ++s) {
    const Cell c = g.ToCell(s);
    EXPECT_TRUE(g.InBounds(c));
    EXPECT_EQ(g.ToState(c), s);
  }
}

TEST(Grid2DTest, RowMajorLayout) {
  Grid2D g = Grid2D::Create(5, 3).ValueOrDie();
  EXPECT_EQ(g.ToState({0, 0}), 0u);
  EXPECT_EQ(g.ToState({4, 0}), 4u);
  EXPECT_EQ(g.ToState({0, 1}), 5u);
  EXPECT_EQ(g.ToState({4, 2}), 14u);
}

TEST(Grid2DTest, InBounds) {
  Grid2D g = Grid2D::Create(3, 3).ValueOrDie();
  EXPECT_TRUE(g.InBounds({2, 2}));
  EXPECT_FALSE(g.InBounds({3, 0}));
  EXPECT_FALSE(g.InBounds({0, 3}));
}

TEST(Grid2DTest, RectangleRegion) {
  Grid2D g = Grid2D::Create(6, 6).ValueOrDie();
  auto r = g.Rectangle(1, 2, 3, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 9u);  // 3 x 3 cells
  EXPECT_TRUE(r->Contains(g.ToState({1, 2})));
  EXPECT_TRUE(r->Contains(g.ToState({3, 4})));
  EXPECT_FALSE(r->Contains(g.ToState({0, 2})));
  EXPECT_FALSE(r->Contains(g.ToState({4, 4})));
}

TEST(Grid2DTest, RectangleValidates) {
  Grid2D g = Grid2D::Create(6, 6).ValueOrDie();
  EXPECT_FALSE(g.Rectangle(3, 0, 2, 0).ok());  // inverted x
  EXPECT_FALSE(g.Rectangle(0, 0, 6, 0).ok());  // x_hi out of range
  EXPECT_FALSE(g.Rectangle(0, 0, 0, 6).ok());  // y_hi out of range
}

TEST(Grid2DTest, SingleCellRectangle) {
  Grid2D g = Grid2D::Create(4, 4).ValueOrDie();
  auto r = g.Rectangle(2, 2, 2, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
  EXPECT_TRUE(r->Contains(g.ToState({2, 2})));
}

TEST(Grid2DTest, DiskRegion) {
  Grid2D g = Grid2D::Create(11, 11).ValueOrDie();
  auto d = g.Disk({5, 5}, 1.0);
  ASSERT_TRUE(d.ok());
  // Radius 1: centre + 4 orthogonal neighbours.
  EXPECT_EQ(d->size(), 5u);
  EXPECT_TRUE(d->Contains(g.ToState({5, 5})));
  EXPECT_TRUE(d->Contains(g.ToState({4, 5})));
  EXPECT_FALSE(d->Contains(g.ToState({4, 4})));  // sqrt(2) > 1
}

TEST(Grid2DTest, DiskClipsAtBorder) {
  Grid2D g = Grid2D::Create(10, 10).ValueOrDie();
  auto d = g.Disk({0, 0}, 1.5);
  ASSERT_TRUE(d.ok());
  // Quarter disk: (0,0), (1,0), (0,1), (1,1).
  EXPECT_EQ(d->size(), 4u);
  EXPECT_FALSE(g.Disk({10, 0}, 1.0).ok());  // center out of bounds
}

TEST(Grid2DTest, DiskZeroRadiusIsCenterOnly) {
  Grid2D g = Grid2D::Create(5, 5).ValueOrDie();
  auto d = g.Disk({2, 2}, 0.0);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 1u);
}

}  // namespace
}  // namespace geo
}  // namespace ustdb
