#include "geo/drift_model.h"

#include <gtest/gtest.h>

#include "sparse/prob_vector.h"

namespace ustdb {
namespace geo {
namespace {

Drift Still(Cell) { return {0.0, 0.0, 1.0}; }

TEST(DriftModelTest, BuildsStochasticChain) {
  Grid2D g = Grid2D::Create(8, 8).ValueOrDie();
  auto chain = BuildDriftChain(g, Still, 1);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->num_states(), 64u);
  EXPECT_TRUE(chain->matrix().IsStochastic());
}

TEST(DriftModelTest, RejectsBadParameters) {
  Grid2D g = Grid2D::Create(4, 4).ValueOrDie();
  EXPECT_FALSE(BuildDriftChain(g, Still, 0).ok());
  EXPECT_FALSE(
      BuildDriftChain(g, [](Cell) { return Drift{0, 0, 0.0}; }, 1).ok());
}

TEST(DriftModelTest, SymmetricKernelWithoutDrift) {
  Grid2D g = Grid2D::Create(9, 9).ValueOrDie();
  auto chain = BuildDriftChain(g, Still, 1).ValueOrDie();
  // Centre cell: staying is most likely, the four orthogonal neighbours are
  // equally likely, diagonals equally likely but less than orthogonal.
  const StateIndex c = g.ToState({4, 4});
  const double stay = chain.matrix().Get(c, c);
  const double right = chain.matrix().Get(c, g.ToState({5, 4}));
  const double up = chain.matrix().Get(c, g.ToState({4, 3}));
  const double diag = chain.matrix().Get(c, g.ToState({5, 5}));
  EXPECT_GT(stay, right);
  EXPECT_NEAR(right, up, 1e-12);
  EXPECT_GT(right, diag);
  EXPECT_GT(diag, 0.0);
}

TEST(DriftModelTest, DriftBiasesDirection) {
  Grid2D g = Grid2D::Create(9, 9).ValueOrDie();
  auto chain =
      BuildDriftChain(g, [](Cell) { return Drift{1.0, 0.0, 0.8}; }, 1)
          .ValueOrDie();
  const StateIndex c = g.ToState({4, 4});
  const double east = chain.matrix().Get(c, g.ToState({5, 4}));
  const double west = chain.matrix().Get(c, g.ToState({3, 4}));
  EXPECT_GT(east, west * 5.0);  // strong eastward preference
}

TEST(DriftModelTest, BorderClampKeepsMassInside) {
  Grid2D g = Grid2D::Create(5, 5).ValueOrDie();
  auto chain =
      BuildDriftChain(g, [](Cell) { return Drift{2.0, 2.0, 1.0}; }, 2)
          .ValueOrDie();
  // Bottom-right corner: drift pushes outside, clamping keeps row sum 1.
  const StateIndex corner = g.ToState({4, 4});
  EXPECT_NEAR(chain.matrix().RowSum(corner), 1.0, 1e-12);
  // Mass concentrates at the corner itself.
  EXPECT_GT(chain.matrix().Get(corner, corner), 0.5);
}

TEST(DriftModelTest, DriftingMassMovesDownstream) {
  Grid2D g = Grid2D::Create(20, 5).ValueOrDie();
  auto chain =
      BuildDriftChain(g, [](Cell) { return Drift{1.0, 0.0, 0.5}; }, 2)
          .ValueOrDie();
  sparse::ProbVector dist = sparse::ProbVector::Delta(
      g.num_states(), g.ToState({2, 2}));
  dist = chain.Distribution(dist, 10);
  // Expected x position after 10 steps of unit eastward drift ≈ 12.
  double mean_x = 0.0;
  dist.ForEachNonZero([&](uint32_t s, double p) {
    mean_x += p * g.ToCell(s).x;
  });
  EXPECT_GT(mean_x, 9.0);
  EXPECT_LE(mean_x, 13.5);
}

}  // namespace
}  // namespace geo
}  // namespace ustdb
