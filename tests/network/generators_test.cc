#include "network/generators.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ustdb {
namespace network {
namespace {

TEST(GeneratorsTest, ProducesRequestedCounts) {
  RoadGenConfig config;
  config.num_nodes = 2'000;
  config.num_edges = 2'500;
  config.locality_window = 16;
  config.seed = 1;
  auto g = GenerateRoadNetwork(config);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 2'000u);
  EXPECT_EQ(g->num_edges(), 2'500u);
}

TEST(GeneratorsTest, AlwaysConnected) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    RoadGenConfig config;
    config.num_nodes = 500;
    config.num_edges = 620;
    config.locality_window = 8;
    config.seed = seed;
    auto g = GenerateRoadNetwork(config);
    ASSERT_TRUE(g.ok());
    EXPECT_TRUE(g->IsConnected()) << "seed " << seed;
  }
}

TEST(GeneratorsTest, LocalityWindowBoundsEdgeSpan) {
  RoadGenConfig config;
  config.num_nodes = 300;
  config.num_edges = 360;
  config.locality_window = 10;
  config.seed = 4;
  auto g = GenerateRoadNetwork(config).ValueOrDie();
  for (const RoadEdge& e : g.Edges()) {
    EXPECT_LE(e.b - e.a, config.locality_window);
  }
}

TEST(GeneratorsTest, DeterministicPerSeed) {
  RoadGenConfig config;
  config.num_nodes = 200;
  config.num_edges = 240;
  config.seed = 9;
  auto a = GenerateRoadNetwork(config).ValueOrDie();
  auto b = GenerateRoadNetwork(config).ValueOrDie();
  EXPECT_EQ(a.Edges(), b.Edges());
  config.seed = 10;
  auto c = GenerateRoadNetwork(config).ValueOrDie();
  EXPECT_NE(a.Edges(), c.Edges());
}

TEST(GeneratorsTest, RejectsImpossibleConfigs) {
  RoadGenConfig too_few;
  too_few.num_nodes = 10;
  too_few.num_edges = 5;  // < n - 1
  EXPECT_FALSE(GenerateRoadNetwork(too_few).ok());

  RoadGenConfig saturated;
  saturated.num_nodes = 10;
  saturated.num_edges = 45;  // complete graph needs window >= 9
  saturated.locality_window = 2;
  EXPECT_FALSE(GenerateRoadNetwork(saturated).ok());

  RoadGenConfig zero_window;
  zero_window.num_nodes = 10;
  zero_window.num_edges = 10;
  zero_window.locality_window = 0;
  EXPECT_FALSE(GenerateRoadNetwork(zero_window).ok());
}

// The two dataset presets are big (73k / 176k nodes); build them once and
// verify the paper-matched shape numbers.
TEST(GeneratorsTest, UrbanPresetMatchesMunichCounts) {
  auto g = GenerateUrbanNetwork(7);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 73'120u);
  EXPECT_EQ(g->num_edges(), 93'925u);
  EXPECT_NEAR(g->AverageDegree(), 2.569, 0.01);
  EXPECT_TRUE(g->IsConnected());
}

TEST(GeneratorsTest, ContinentalPresetMatchesNorthAmericaCounts) {
  auto g = GenerateContinentalNetwork(7);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 175'813u);
  EXPECT_EQ(g->num_edges(), 179'102u);
  EXPECT_NEAR(g->AverageDegree(), 2.037, 0.01);
  EXPECT_TRUE(g->IsConnected());
}

TEST(GeneratorsTest, UrbanDenserThanContinental) {
  // The property Figures 9(b) vs 9(c) rely on.
  auto urban = GenerateUrbanNetwork(3).ValueOrDie();
  auto continental = GenerateContinentalNetwork(3).ValueOrDie();
  EXPECT_GT(urban.AverageDegree(), continental.AverageDegree());
}

TEST(GeneratorsTest, PresetChainsAreValid) {
  auto g = GenerateUrbanNetwork(5).ValueOrDie();
  util::Rng rng(5);
  auto chain = g.ToMarkovChain(&rng).ValueOrDie();
  EXPECT_EQ(chain.num_states(), g.num_nodes());
  EXPECT_TRUE(chain.matrix().IsStochastic());
}

}  // namespace
}  // namespace network
}  // namespace ustdb
