#include "network/road_network.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ustdb {
namespace network {
namespace {

RoadNetwork Triangle() {
  return RoadNetwork::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}}).ValueOrDie();
}

TEST(RoadNetworkTest, FromEdgesBuildsSymmetricAdjacency) {
  RoadNetwork g = Triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  for (uint32_t n = 0; n < 3; ++n) {
    EXPECT_EQ(g.Degree(n), 2u);
  }
  auto nbrs = g.Neighbors(1);
  EXPECT_EQ(std::vector<uint32_t>(nbrs.begin(), nbrs.end()),
            (std::vector<uint32_t>{0, 2}));
}

TEST(RoadNetworkTest, FromEdgesNormalizesOrientation) {
  // (2,0) and (0,2) are the same undirected edge.
  auto dup = RoadNetwork::FromEdges(3, {{2, 0}, {0, 2}});
  EXPECT_FALSE(dup.ok());
}

TEST(RoadNetworkTest, FromEdgesValidates) {
  EXPECT_FALSE(RoadNetwork::FromEdges(3, {{0, 3}}).ok());   // out of range
  EXPECT_FALSE(RoadNetwork::FromEdges(3, {{1, 1}}).ok());   // self-loop
  EXPECT_FALSE(
      RoadNetwork::FromEdges(3, {{0, 1}, {0, 1}}).ok());    // duplicate
}

TEST(RoadNetworkTest, AverageDegree) {
  RoadNetwork g = Triangle();
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 2.0);
  RoadNetwork path = RoadNetwork::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}})
                         .ValueOrDie();
  EXPECT_DOUBLE_EQ(path.AverageDegree(), 1.5);
}

TEST(RoadNetworkTest, Connectivity) {
  EXPECT_TRUE(Triangle().IsConnected());
  RoadNetwork split =
      RoadNetwork::FromEdges(4, {{0, 1}, {2, 3}}).ValueOrDie();
  EXPECT_FALSE(split.IsConnected());
}

TEST(RoadNetworkTest, EdgesRoundTrip) {
  RoadNetwork g = Triangle();
  const auto edges = g.Edges();
  RoadNetwork g2 = RoadNetwork::FromEdges(3, edges).ValueOrDie();
  EXPECT_EQ(g2.Edges(), edges);
}

TEST(RoadNetworkTest, ToMarkovChainIsPaperConstruction) {
  // "each edge corresponds to two non-zero entries in the transition
  // matrix ... values of one line are set randomly and sum up to one."
  RoadNetwork g = Triangle();
  util::Rng rng(10);
  auto chain = g.ToMarkovChain(&rng).ValueOrDie();
  EXPECT_TRUE(chain.matrix().IsStochastic());
  EXPECT_EQ(chain.matrix().nnz(), 6u);  // 2 per undirected edge
  // Support equals adjacency: no transition to non-neighbours or self.
  for (uint32_t n = 0; n < 3; ++n) {
    EXPECT_DOUBLE_EQ(chain.matrix().Get(n, n), 0.0);
  }
  EXPECT_GT(chain.matrix().Get(0, 1), 0.0);
  EXPECT_GT(chain.matrix().Get(1, 0), 0.0);
}

TEST(RoadNetworkTest, IsolatedNodeGetsSelfLoop) {
  RoadNetwork g = RoadNetwork::FromEdges(3, {{0, 1}}).ValueOrDie();
  util::Rng rng(1);
  auto chain = g.ToMarkovChain(&rng).ValueOrDie();
  EXPECT_TRUE(chain.matrix().IsStochastic());
  EXPECT_DOUBLE_EQ(chain.matrix().Get(2, 2), 1.0);
}

TEST(RoadNetworkTest, ChainRandomnessIsSeeded) {
  RoadNetwork g = Triangle();
  util::Rng rng_a(42);
  util::Rng rng_b(42);
  auto a = g.ToMarkovChain(&rng_a).ValueOrDie();
  auto b = g.ToMarkovChain(&rng_b).ValueOrDie();
  EXPECT_EQ(a.matrix(), b.matrix());
}

}  // namespace
}  // namespace network
}  // namespace ustdb
