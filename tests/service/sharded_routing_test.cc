// Deterministic scheduling of the sharded router, staged with Pause /
// Resume so every interleaving is pinned before a dispatcher moves:
// single-shard requests ride their shard's lane alone (no scatter),
// per-shard lanes drain FIFO with interactive-before-bulk precedence,
// scattered requests admit all-or-nothing under both backpressure
// policies, and the scatter counters in ServiceStats account routed
// fan-out exactly.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "core/query_request.h"
#include "core/query_window.h"
#include "service/query_service.h"
#include "testing/sharded_fixture.h"
#include "testing/test_seed.h"

namespace ustdb {
namespace service {
namespace {

using ::ustdb::testing::MakeShardedPair;
using ::ustdb::testing::ShardedPair;
using ::ustdb::testing::ShardedSpec;

constexpr auto kGetTimeout = std::chrono::milliseconds(30'000);

ShardedSpec RoutingSpec(uint64_t seed) {
  ShardedSpec spec;
  spec.seed = seed;
  spec.num_families = 2;
  spec.chains_per_family = 1;
  spec.num_objects = 40;
  return spec;
}

core::QueryRequest ExistsRequest(const ShardedSpec& spec) {
  core::QueryRequest request;
  request.predicate = core::PredicateKind::kExists;
  request.window =
      core::QueryWindow::FromRanges(spec.num_states, 4, 10, 2, 6)
          .ValueOrDie();
  return request;
}

/// Global ids of the objects of one chain — all resident on one shard
/// (chains never split), so a request filtered to them is single-shard.
std::vector<ObjectId> ObjectsOfChain(const ShardedPair& pair, ChainId chain) {
  std::vector<ObjectId> ids;
  for (ObjectId g = 0; g < pair.sharded.num_objects(); ++g) {
    if (pair.unsharded.object(g).chain == chain) ids.push_back(g);
  }
  return ids;
}

core::QueryRequest ChainRequest(const ShardedPair& pair,
                                const ShardedSpec& spec, ChainId chain) {
  core::QueryRequest request = ExistsRequest(spec);
  request.object_filter = ObjectsOfChain(pair, chain);
  return request;
}

/// The fixture's two independent chains land on different shards (each
/// founds its own cluster; founding picks the least loaded shard).
class ShardedRoutingTest : public ::testing::Test {
 protected:
  ShardedRoutingTest()
      : spec_(RoutingSpec(ustdb::testing::TestSeed(77))),
        pair_(MakeShardedPair(spec_, 2)) {
    shard_of_chain0_ = pair_.sharded.shard_of_chain(0);
    shard_of_chain1_ = pair_.sharded.shard_of_chain(1);
  }

  ServiceOptions PausedSolo() const {
    ServiceOptions options;
    options.start_paused = true;
    options.coalesce = false;  // one request per dispatch: FIFO observable
    options.executor.num_threads = 2;
    return options;
  }

  ShardedSpec spec_;
  ShardedPair pair_;
  uint32_t shard_of_chain0_;
  uint32_t shard_of_chain1_;
};

TEST_F(ShardedRoutingTest, FixtureSpreadsChainsAcrossShards) {
  EXPECT_NE(shard_of_chain0_, shard_of_chain1_);
}

/// A single-shard request never scatters: one queued entry, one solo
/// dispatch, scatter counters untouched.
TEST_F(ShardedRoutingTest, SingleShardRequestRidesOneLane) {
  QueryService service(&pair_.sharded, PausedSolo());
  QueryTicket ticket =
      service.Submit(ChainRequest(pair_, spec_, /*chain=*/0));
  EXPECT_EQ(service.queue_depth(), 1u);  // one sub on one lane
  service.Resume();
  ASSERT_TRUE(ticket.WaitFor(kGetTimeout));
  ASSERT_TRUE(ticket.Get().ok());

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.scatter_requests, 0u);
  EXPECT_EQ(stats.scatter_subtasks, 0u);
  EXPECT_EQ(stats.solo_dispatches, 1u);
}

/// An unfiltered request over a two-shard database scatters exactly two
/// subtasks — visible in the queue while paused and in the counters after.
TEST_F(ShardedRoutingTest, SpanningRequestScattersOncePerShard) {
  QueryService service(&pair_.sharded, PausedSolo());
  QueryTicket ticket = service.Submit(ExistsRequest(spec_));
  EXPECT_EQ(service.queue_depth(), 2u);  // one sub per shard lane
  service.Resume();
  ASSERT_TRUE(ticket.WaitFor(kGetTimeout));
  ASSERT_TRUE(ticket.Get().ok());

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.scatter_requests, 1u);
  EXPECT_EQ(stats.scatter_subtasks, 2u);
  EXPECT_EQ(stats.queue_peak, 2u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.completed, 1u);
}

/// Two same-window requests staged on one shard's lane drain FIFO: the
/// first pays that shard's cold EngineCache miss, the second hits the
/// engine the first admitted. (coalesce=false keeps the dispatches solo.)
TEST_F(ShardedRoutingTest, ShardLaneDrainsFifo) {
  QueryService service(&pair_.sharded, PausedSolo());
  QueryTicket first = service.Submit(ChainRequest(pair_, spec_, 0));
  QueryTicket second = service.Submit(ChainRequest(pair_, spec_, 0));
  service.Resume();

  const auto first_result = first.Get();
  const auto second_result = second.Get();
  ASSERT_TRUE(first_result.ok());
  ASSERT_TRUE(second_result.ok());
  EXPECT_EQ(first_result.value().stats.cache_misses, 1u);
  EXPECT_EQ(first_result.value().stats.cache_hits, 0u);
  EXPECT_EQ(second_result.value().stats.cache_hits, 1u);
  EXPECT_EQ(second_result.value().stats.cache_misses, 0u);
}

/// Lane precedence holds per shard: a bulk request staged first still
/// dispatches after the interactive one on the same shard (the
/// interactive run pays the cold miss, bulk hits), while the other
/// shard's lane is untouched by either.
TEST_F(ShardedRoutingTest, InteractiveBeatsBulkWithinShard) {
  QueryService service(&pair_.sharded, PausedSolo());
  QueryTicket bulk =
      service.Submit(ChainRequest(pair_, spec_, 0), Priority::kBulk);
  QueryTicket interactive =
      service.Submit(ChainRequest(pair_, spec_, 0), Priority::kInteractive);
  service.Resume();

  const auto interactive_result = interactive.Get();
  const auto bulk_result = bulk.Get();
  ASSERT_TRUE(interactive_result.ok());
  ASSERT_TRUE(bulk_result.ok());
  EXPECT_EQ(interactive_result.value().stats.cache_misses, 1u);
  EXPECT_EQ(bulk_result.value().stats.cache_misses, 0u);
  EXPECT_EQ(bulk_result.value().stats.cache_hits, 1u);
}

/// kReject + fan-out is all-or-nothing: with one shard's lane full, a
/// spanning request rejects outright and leaves the other shard's lane
/// exactly as it was — no orphaned subtask.
TEST_F(ShardedRoutingTest, RejectedScatterLeavesNoPartialFanOut) {
  ServiceOptions options = PausedSolo();
  options.queue_capacity = 1;
  options.backpressure = BackpressurePolicy::kReject;
  QueryService service(&pair_.sharded, options);

  // Fill chain 0's shard lane to capacity.
  QueryTicket occupant = service.Submit(ChainRequest(pair_, spec_, 0));
  EXPECT_EQ(service.queue_depth(), 1u);

  QueryTicket spanning = service.Submit(ExistsRequest(spec_));
  const auto rejected = spanning.Get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kUnavailable);
  EXPECT_EQ(service.queue_depth(), 1u)
      << "a rejected scatter must not leave subtasks on any lane";

  // The other shard's lane stayed admissible.
  QueryTicket other = service.Submit(ChainRequest(pair_, spec_, 1));
  EXPECT_EQ(service.queue_depth(), 2u);

  service.Resume();
  ASSERT_TRUE(occupant.Get().ok());
  ASSERT_TRUE(other.Get().ok());
  EXPECT_EQ(service.stats().rejected, 1u);
}

/// kBlock + fan-out: a spanning submission with one full target lane
/// parks the producer until the dispatcher frees EVERY target, then
/// enqueues the whole fan-out at once and completes normally.
TEST_F(ShardedRoutingTest, BlockedScatterAdmitsWholeFanOut) {
  ServiceOptions options = PausedSolo();
  options.queue_capacity = 1;
  options.backpressure = BackpressurePolicy::kBlock;
  QueryService service(&pair_.sharded, options);

  QueryTicket occupant = service.Submit(ChainRequest(pair_, spec_, 0));
  EXPECT_EQ(service.queue_depth(), 1u);

  QueryTicket spanning;
  std::thread producer([&service, &spanning, this] {
    spanning = service.Submit(ExistsRequest(spec_));
  });
  // The producer must still be parked: nothing new can appear on any
  // lane while the occupant holds its slot and the service is paused.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(service.queue_depth(), 1u);

  service.Resume();  // drains the occupant, freeing every target lane
  producer.join();
  ASSERT_TRUE(occupant.Get().ok());
  ASSERT_TRUE(spanning.WaitFor(kGetTimeout));
  ASSERT_TRUE(spanning.Get().ok());

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.scatter_requests, 1u);
  EXPECT_EQ(stats.scatter_subtasks, 2u);
}

/// Pause holds every shard's dispatcher, not just one: staged work on
/// both lanes stays unresolved until Resume releases them together.
TEST_F(ShardedRoutingTest, PauseHoldsAllShardLanes) {
  QueryService service(&pair_.sharded, PausedSolo());
  QueryTicket on_zero = service.Submit(ChainRequest(pair_, spec_, 0));
  QueryTicket on_one = service.Submit(ChainRequest(pair_, spec_, 1));
  EXPECT_FALSE(on_zero.WaitFor(std::chrono::milliseconds(50)));
  EXPECT_FALSE(on_one.WaitFor(std::chrono::milliseconds(50)));
  EXPECT_EQ(service.queue_depth(), 2u);

  service.Resume();
  ASSERT_TRUE(on_zero.WaitFor(kGetTimeout));
  ASSERT_TRUE(on_one.WaitFor(kGetTimeout));
  ASSERT_TRUE(on_zero.Get().ok());
  ASSERT_TRUE(on_one.Get().ok());
}

/// Cancelling a scattered parent cancels every queued subtask: the ticket
/// resolves Cancelled and the lanes drain without executing anything.
TEST_F(ShardedRoutingTest, CancelReachesEveryShardSubtask) {
  QueryService service(&pair_.sharded, PausedSolo());
  QueryTicket ticket = service.Submit(ExistsRequest(spec_));
  EXPECT_EQ(service.queue_depth(), 2u);
  ticket.Cancel();
  service.Resume();

  const auto result = ticket.Get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCancelled);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.solo_dispatches + stats.coalesced_batches, 0u)
      << "a cancelled scatter must not reach any shard executor";
}

}  // namespace
}  // namespace service
}  // namespace ustdb
