// Randomized fault-injection soak: a 4-shard service runs a mixed-
// predicate workload while every injection point misbehaves at ~1%
// (fail, throw, and small stalls, plus one shard-scoped stall), with
// retry budgets, degradation willingness, overload control, and partial
// results all enabled. The contract under test is the resilience
// layer's core promise: EVERY ticket resolves exactly once — no hangs,
// no double resolutions, no torn stats — and answered results are
// labeled (full, partial, or degraded), never silently wrong-shaped.
// Afterwards the injector is removed and every quarantined shard must
// probe its way back to healthy. Seeded via USTDB_TEST_SEED; runs under
// ASan in CI.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/query_request.h"
#include "service/query_service.h"
#include "testing/sharded_fixture.h"
#include "testing/test_seed.h"
#include "util/fault_injector.h"
#include "util/rng.h"

namespace ustdb {
namespace service {
namespace {

using ::ustdb::testing::MakeShardedPair;
using ::ustdb::testing::ShardedPair;
using ::ustdb::testing::ShardedSpec;
using std::chrono::milliseconds;

constexpr int kRequests = 300;
constexpr auto kGetTimeout = milliseconds(120'000);

core::QueryRequest RandomSoakRequest(const ShardedSpec& spec,
                                     util::Rng* rng) {
  core::QueryRequest request;
  switch (rng->NextBounded(5)) {
    case 0:
      request.predicate = core::PredicateKind::kExists;
      break;
    case 1:
      request.predicate = core::PredicateKind::kForAll;
      break;
    case 2:
      request.predicate = core::PredicateKind::kKTimes;
      break;
    case 3:
      request.predicate = core::PredicateKind::kThresholdExists;
      request.tau = 0.05 + 0.5 * rng->NextDouble();
      break;
    default:
      request.predicate = core::PredicateKind::kTopKExists;
      request.k = 1 + static_cast<uint32_t>(rng->NextBounded(12));
      break;
  }
  const uint32_t s_lo =
      static_cast<uint32_t>(rng->NextBounded(spec.num_states - 8));
  const uint32_t s_hi =
      s_lo + 2 + static_cast<uint32_t>(rng->NextBounded(5));
  const Timestamp t_lo = 1 + static_cast<Timestamp>(rng->NextBounded(3));
  const Timestamp t_hi =
      t_lo + 1 + static_cast<Timestamp>(rng->NextBounded(5));
  request.window = core::QueryWindow::FromRanges(
                       spec.num_states, s_lo,
                       std::min(s_hi, spec.num_states - 1), t_lo, t_hi)
                       .ValueOrDie();
  // Two thirds of the traffic carries a retry budget; one fifth is
  // willing to degrade under pressure.
  if (rng->NextBounded(3) != 0) {
    request.retry.max_retries = 1 + static_cast<uint32_t>(rng->NextBounded(2));
    request.retry.initial_backoff = milliseconds(2);
    request.retry.max_backoff = milliseconds(20);
  }
  if (rng->NextBounded(5) == 0) {
    request.degrade = core::DegradeMode::kUnderPressure;
  }
  return request;
}

TEST(FaultSoakTest, EveryTicketResolvesAndShardsRecover) {
  const uint64_t seed = ustdb::testing::TestSeed(20260808);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  util::Rng rng(seed);

  ShardedSpec spec;
  ShardedPair pair = MakeShardedPair(spec, /*num_shards=*/4);

  ServiceOptions options;
  options.executor.num_threads = 4;  // one worker per shard executor
  options.queue_capacity = 32;
  options.overload.enabled = true;
  options.overload.shed_bulk_at = 0.8;
  options.partial_results = true;
  // Fast probe cadence so post-soak recovery converges quickly even for
  // shards that failed several probes during the storm.
  options.health.probe_backoff = milliseconds(20);
  options.health.max_probe_backoff = milliseconds(200);
  QueryService service(&pair.sharded, options);

  uint64_t resolved = 0;
  uint64_t answered = 0;
  uint64_t answered_partial = 0;
  uint64_t answered_degraded = 0;
  {
    auto parsed = util::FaultInjector::Parse(
        "queue_admission:fail:0.01;dispatch:throw:0.01;"
        "engine_build:fail:0.02;kernel_dispatch:throw:0.01;"
        "cache_admission:stall:2ms:0.05;merge:fail:0.01;"
        "shard1:stall:3ms:0.05",
        seed);
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    util::ScopedFaultInjection scope(std::move(parsed).ValueOrDie());

    std::vector<QueryTicket> tickets;
    std::vector<QueryTicket> copies;  // exactly-once witnesses
    tickets.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i) {
      const Priority priority =
          rng.NextBounded(4) == 0 ? Priority::kBulk : Priority::kInteractive;
      tickets.push_back(
          service.Submit(RandomSoakRequest(spec, &rng), priority));
      if (i % 10 == 0) copies.push_back(tickets.back());
      // A trickle, not a wall: keep the queues busy but bounded so the
      // soak exercises dispatch/retry/merge, not just admission.
      if (i % 16 == 15) std::this_thread::sleep_for(milliseconds(1));
    }

    for (QueryTicket& ticket : tickets) {
      ASSERT_TRUE(ticket.valid());
      ASSERT_TRUE(ticket.WaitFor(kGetTimeout)) << "ticket hung";
      util::Result<core::QueryResult> result = ticket.Get();
      ++resolved;
      if (result.ok()) {
        ++answered;
        if (result.value().partial) {
          ++answered_partial;
          EXPECT_FALSE(result.value().shard_errors.empty());
        }
        if (result.value().degraded_bounds) ++answered_degraded;
      }
    }
    for (QueryTicket& copy : copies) {
      util::Result<core::QueryResult> second = copy.Get();
      ASSERT_FALSE(second.ok());
      EXPECT_EQ(second.status().code(),
                util::StatusCode::kFailedPrecondition);
    }
  }  // injector removed; the service runs clean from here

  EXPECT_EQ(resolved, static_cast<uint64_t>(kRequests));
  const ServiceStats mid = service.stats();
  EXPECT_EQ(mid.submitted, static_cast<uint64_t>(kRequests));
  // Exactly-once, stats form: every submission landed in one terminal
  // counter (partial/degraded answers are inside `completed`).
  EXPECT_EQ(mid.completed + mid.failed + mid.cancelled +
                mid.deadline_expired + mid.rejected,
            mid.submitted);
  EXPECT_EQ(mid.completed, answered);
  EXPECT_EQ(mid.partial, answered_partial);
  EXPECT_GE(mid.degraded, answered_degraded);

  // Recovery: with the injector gone, quarantined shards must probe back
  // to healthy off ordinary traffic within a bounded number of rounds.
  core::QueryRequest probe_traffic;
  probe_traffic.predicate = core::PredicateKind::kExists;
  probe_traffic.window =
      core::QueryWindow::FromRanges(spec.num_states, 4,
                                    spec.num_states - 4, 1, 5)
          .ValueOrDie();
  bool all_healthy = false;
  for (int round = 0; round < 500 && !all_healthy; ++round) {
    QueryTicket ticket = service.Submit(probe_traffic);
    (void)ticket.Get();
    all_healthy = true;
    for (uint32_t s = 0; s < service.num_shards(); ++s) {
      all_healthy &= service.shard_health(s) == ShardHealth::kHealthy;
    }
    if (!all_healthy) std::this_thread::sleep_for(milliseconds(10));
  }
  for (uint32_t s = 0; s < service.num_shards(); ++s) {
    EXPECT_EQ(service.shard_health(s), ShardHealth::kHealthy)
        << "shard " << s << " never recovered from quarantine";
  }

  service.Shutdown();
}

}  // namespace
}  // namespace service
}  // namespace ustdb
