// Regression test for the QueryTicket resolution race: submissions that
// are being shed by admission control while Shutdown() concurrently
// rejects-and-drains must resolve exactly once — never twice (the old
// race double-resolved a ticket when the shed path and the shutdown
// drain both reached Resolve), never zero times (a hung Get()). The
// schedule is hammered across iterations with submitters racing
// Shutdown() on a paused service whose queues are small enough that
// every code path (shed, reject, stale-drain, executed) is hit; run
// under TSan in CI. See docs/RESILIENCE.md.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/database.h"
#include "service/query_service.h"
#include "testing/random_models.h"
#include "util/rng.h"

namespace ustdb {
namespace service {
namespace {

using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

constexpr uint32_t kStates = 20;
constexpr uint32_t kObjects = 40;
constexpr auto kGetTimeout = std::chrono::milliseconds(30'000);

core::Database MakeDb(uint64_t seed) {
  util::Rng rng(seed);
  core::Database db;
  const ChainId chain = db.AddChain(RandomChain(kStates, 3, &rng));
  for (uint32_t i = 0; i < kObjects; ++i) {
    (void)db.AddObjectAt(chain, RandomDistribution(kStates, 3, &rng))
        .ValueOrDie();
  }
  return db;
}

core::QueryRequest ExistsRequest() {
  core::QueryRequest request;
  request.predicate = core::PredicateKind::kExists;
  request.window =
      core::QueryWindow::FromRanges(kStates, 4, 10, 2, 6).ValueOrDie();
  return request;
}

TEST(ShutdownShedRaceTest, EveryTicketResolvesExactlyOnce) {
  core::Database db = MakeDb(31);

  constexpr int kIterations = 20;
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 16;

  for (int iter = 0; iter < kIterations; ++iter) {
    ServiceOptions options;
    options.executor.num_threads = 1;
    options.queue_capacity = 2;  // tiny: shedding and rejection both fire
    options.backpressure = BackpressurePolicy::kReject;
    // Pause the dispatcher so queue depth builds to the shed thresholds
    // while the submitters race Shutdown()'s drain.
    options.start_paused = true;
    options.overload.enabled = true;
    options.overload.shed_bulk_at = 0.25;
    options.overload.shed_interactive_at = 0.5;

    QueryService service(&db, options);

    std::vector<std::vector<QueryTicket>> tickets(kSubmitters);
    std::atomic<int> started{0};
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&, s] {
        started.fetch_add(1, std::memory_order_relaxed);
        for (int i = 0; i < kPerSubmitter; ++i) {
          const Priority priority =
              (i % 2 == 0) ? Priority::kInteractive : Priority::kBulk;
          tickets[s].push_back(service.Submit(ExistsRequest(), priority));
        }
      });
    }

    // Let the submitters pile into the tiny paused queues, then yank the
    // service down mid-stream — the race under test.
    while (started.load(std::memory_order_relaxed) < kSubmitters) {
      std::this_thread::yield();
    }
    if (iter % 2 == 0) std::this_thread::yield();
    service.Shutdown();
    for (std::thread& t : submitters) t.join();

    uint64_t resolved_ok = 0;
    for (auto& per_thread : tickets) {
      for (QueryTicket& ticket : per_thread) {
        ASSERT_TRUE(ticket.valid());
        // Exactly once, part 1: the first Get() returns (no lost wakeup,
        // no never-resolved ticket).
        QueryTicket copy = ticket;
        ASSERT_TRUE(ticket.WaitFor(kGetTimeout)) << "iteration " << iter;
        util::Result<core::QueryResult> first = ticket.Get();
        if (first.ok()) {
          ++resolved_ok;
        } else {
          // Shed / rejected / shutdown all surface as Unavailable.
          EXPECT_EQ(first.status().code(), util::StatusCode::kUnavailable)
              << first.status();
        }
        // Exactly once, part 2: a second Get() through a copy observes
        // the one-shot contract, not a second resolution.
        util::Result<core::QueryResult> second = copy.Get();
        ASSERT_FALSE(second.ok());
        EXPECT_EQ(second.status().code(),
                  util::StatusCode::kFailedPrecondition);
      }
    }

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted,
              static_cast<uint64_t>(kSubmitters) * kPerSubmitter);
    // Every submission is accounted for in exactly one terminal counter.
    EXPECT_EQ(stats.completed + stats.failed + stats.cancelled +
                  stats.deadline_expired + stats.rejected,
              stats.submitted)
        << "iteration " << iter;
    EXPECT_EQ(stats.completed, resolved_ok);
  }
}

}  // namespace
}  // namespace service
}  // namespace ustdb
