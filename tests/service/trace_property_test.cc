// QueryTrace properties: the spans of a traced request must form a
// coherent account of where its end-to-end latency went. On the serial
// (unsharded, uncoalesced) path the top-level service spans — queue,
// dispatch, merge — are disjoint sub-intervals of [submit, resolve], so
// their durations sum to at most the ticket latency and, because the
// stamps bracket all but a few function calls, to nearly all of it. The
// executor stages (plan/bound/build/evaluate) nest inside the dispatch
// span. On a sharded scatter the per-shard spans overlap, so only the
// coverage bound (max end - min begin <= latency) survives — and must.

#include <gtest/gtest.h>

#include <algorithm>
#include <initializer_list>
#include <memory>
#include <set>
#include <vector>

#include "core/query_request.h"
#include "core/query_window.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/query_service.h"
#include "testing/random_models.h"
#include "testing/sharded_fixture.h"
#include "util/rng.h"

namespace ustdb {
namespace service {
namespace {

using ::ustdb::testing::MakeShardedPair;
using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;
using ::ustdb::testing::ShardedPair;
using ::ustdb::testing::ShardedSpec;

constexpr uint32_t kStates = 25;
constexpr uint32_t kObjects = 200;
/// Slack absorbing the few un-bracketed function calls between stamps
/// (CompleteSub -> merge, merge -> resolve) plus clock-read granularity.
constexpr double kSlackSeconds = 2e-3;

core::Database MakeDb(uint64_t seed) {
  util::Rng rng(seed);
  core::Database db;
  const ChainId chain = db.AddChain(RandomChain(kStates, 3, &rng));
  for (uint32_t i = 0; i < kObjects; ++i) {
    (void)db.AddObjectAt(chain, RandomDistribution(kStates, 3, &rng))
        .ValueOrDie();
  }
  return db;
}

core::QueryRequest ExistsRequest() {
  core::QueryRequest request;
  request.predicate = core::PredicateKind::kExists;
  request.window =
      core::QueryWindow::FromRanges(kStates, 6, 12, 3, 8).ValueOrDie();
  return request;
}

double StageSum(const std::vector<obs::TraceSpan>& spans,
                std::initializer_list<obs::Stage> stages) {
  double total = 0.0;
  for (const obs::TraceSpan& span : spans) {
    for (obs::Stage stage : stages) {
      if (span.stage == stage) total += span.seconds();
    }
  }
  return total;
}

bool HasStage(const std::vector<obs::TraceSpan>& spans, obs::Stage stage) {
  return std::any_of(
      spans.begin(), spans.end(),
      [stage](const obs::TraceSpan& s) { return s.stage == stage; });
}

double CoverageSeconds(const std::vector<obs::TraceSpan>& spans) {
  auto min_begin = spans.front().begin;
  auto max_end = spans.front().end;
  for (const obs::TraceSpan& span : spans) {
    min_begin = std::min(min_begin, span.begin);
    max_end = std::max(max_end, span.end);
  }
  return std::chrono::duration<double>(max_end - min_begin).count();
}

TEST(TracePropertyTest, SoloSpansSumToTicketLatency) {
  core::Database db = MakeDb(61);
  obs::MetricsRegistry registry;  // isolated from Global()
  ServiceOptions options;
  options.executor.num_threads = 1;
  options.coalesce = false;  // solo dispatch => serial, non-overlapping
  options.obs.registry = &registry;
  options.obs.trace_sample_every = 1;  // trace every request
  options.obs.slow_query_ring = 64;

  QueryService service(&db, options);

  constexpr int kRequests = 24;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(service.Submit(ExistsRequest()).Get().ok());
  }

  const std::vector<SlowQuery> traced = service.slow_queries();
  ASSERT_EQ(traced.size(), static_cast<size_t>(kRequests));

  double total_latency = 0.0;
  double total_top_level = 0.0;
  for (const SlowQuery& record : traced) {
    ASSERT_FALSE(record.spans.empty());
    const double latency = record.latency_ms / 1e3;

    // The full solo pipeline leaves a span per stage.
    for (obs::Stage stage :
         {obs::Stage::kQueue, obs::Stage::kDispatch, obs::Stage::kPlan,
          obs::Stage::kEngineBuild, obs::Stage::kEvaluate,
          obs::Stage::kMerge}) {
      EXPECT_TRUE(HasStage(record.spans, stage))
          << "missing stage " << obs::StageName(stage);
    }

    // Spans are well-formed and sorted by begin time.
    for (size_t i = 0; i < record.spans.size(); ++i) {
      EXPECT_GE(record.spans[i].seconds(), 0.0);
      if (i > 0) {
        EXPECT_GE(record.spans[i].begin, record.spans[i - 1].begin);
      }
    }

    // Top-level service spans are disjoint sub-intervals of the ticket's
    // [submit, resolve] window: their sum cannot exceed the latency.
    const double top_level =
        StageSum(record.spans, {obs::Stage::kQueue, obs::Stage::kDispatch,
                                obs::Stage::kMerge});
    EXPECT_LE(top_level, latency + kSlackSeconds);

    // Executor stages nest inside the dispatch span.
    const double nested = StageSum(
        record.spans, {obs::Stage::kPlan, obs::Stage::kBound,
                       obs::Stage::kEngineBuild, obs::Stage::kEvaluate});
    EXPECT_LE(nested,
              StageSum(record.spans, {obs::Stage::kDispatch}) +
                  kSlackSeconds);

    // No span reaches outside the ticket window.
    EXPECT_LE(CoverageSeconds(record.spans), latency + kSlackSeconds);

    total_latency += latency;
    total_top_level += top_level;
  }

  // The stamps bracket all but a few function calls: across the run, the
  // top-level spans account for nearly all of the end-to-end time.
  EXPECT_GE(total_top_level, 0.7 * total_latency - 0.010);
}

TEST(TracePropertyTest, CallerTraceHonoredWithObservabilityDisabled) {
  core::Database db = MakeDb(62);
  ServiceOptions options;
  options.executor.num_threads = 1;
  options.coalesce = false;
  options.obs.enabled = false;  // no registry, no sampling, no ring

  QueryService service(&db, options);
  core::QueryRequest request = ExistsRequest();
  auto trace = std::make_shared<obs::QueryTrace>();
  request.trace = trace;

  ASSERT_TRUE(service.Submit(std::move(request)).Get().ok());
  // Explicitly attached traces bypass the master switch entirely.
  const std::vector<obs::TraceSpan> spans = trace->spans();
  for (obs::Stage stage :
       {obs::Stage::kQueue, obs::Stage::kDispatch, obs::Stage::kPlan,
        obs::Stage::kEvaluate, obs::Stage::kMerge}) {
    EXPECT_TRUE(HasStage(spans, stage))
        << "missing stage " << obs::StageName(stage);
  }
  // But nothing was retained service-side.
  EXPECT_TRUE(service.slow_queries().empty());
}

TEST(TracePropertyTest, BoundPlanLeavesBoundSpan) {
  core::Database db = MakeDb(63);
  ServiceOptions options;
  options.executor.num_threads = 1;
  options.coalesce = false;
  options.obs.enabled = false;

  QueryService service(&db, options);
  core::QueryRequest request = ExistsRequest();
  request.predicate = core::PredicateKind::kThresholdExists;
  request.tau = 0.3;
  request.plan = core::PlanChoice::kBoundsThenRefine;
  auto trace = std::make_shared<obs::QueryTrace>();
  request.trace = trace;

  QueryTicket ticket = service.Submit(std::move(request));
  const auto result = ticket.Get();
  ASSERT_TRUE(result.ok()) << result.status();
  if (result.value().stats.prune.clusters_bounded > 0) {
    EXPECT_TRUE(HasStage(trace->spans(), obs::Stage::kBound));
  }
}

TEST(TracePropertyTest, ShardedScatterSpansStayWithinTicketWindow) {
  const ShardedSpec spec;
  const ShardedPair pair = MakeShardedPair(spec, 2);
  obs::MetricsRegistry registry;  // isolated from Global()
  ServiceOptions options;
  options.executor.num_threads = 2;
  options.obs.registry = &registry;
  options.obs.trace_sample_every = 1;
  options.obs.slow_query_ring = 64;

  QueryService service(&pair.sharded, options);
  ASSERT_EQ(service.num_shards(), 2u);

  core::QueryRequest request;
  request.predicate = core::PredicateKind::kExists;
  request.window =
      core::QueryWindow::FromRanges(spec.num_states, 4, 20, 1, 6)
          .ValueOrDie();

  constexpr int kRequests = 16;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(service.Submit(request).Get().ok());
  }
  // The unfiltered window touches objects on both shards: the router
  // scattered, so per-shard spans overlap in time.
  ASSERT_GT(service.stats().scatter_requests, 0u);

  const std::vector<SlowQuery> traced = service.slow_queries();
  ASSERT_EQ(traced.size(), static_cast<size_t>(kRequests));
  bool saw_multi_shard = false;
  for (const SlowQuery& record : traced) {
    ASSERT_FALSE(record.spans.empty());
    const double latency = record.latency_ms / 1e3;
    // Overlapping scatter spans break the sum identity; the coverage
    // bound is the property that survives sharding.
    EXPECT_LE(CoverageSeconds(record.spans), latency + kSlackSeconds);
    EXPECT_TRUE(HasStage(record.spans, obs::Stage::kQueue));
    EXPECT_TRUE(HasStage(record.spans, obs::Stage::kMerge));

    std::set<int32_t> dispatch_shards;
    for (const obs::TraceSpan& span : record.spans) {
      if (span.stage == obs::Stage::kDispatch) {
        dispatch_shards.insert(span.shard);
      }
    }
    if (dispatch_shards.size() >= 2) saw_multi_shard = true;
  }
  EXPECT_TRUE(saw_multi_shard);
}

}  // namespace
}  // namespace service
}  // namespace ustdb
