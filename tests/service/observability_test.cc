// End-to-end observability acceptance: a sustained mixed workload
// (sharded and unsharded, solo and coalesced bursts, every predicate
// family) must leave a metrics registry whose queue/plan/cache/prune
// families carry shard and plan labels, export cleanly to both
// Prometheus text and JSON, retain at least one sampled full trace from
// submit to merge, populate the slow-query ring, and agree with
// ServiceStats on the request totals. The kernel dispatch family feeds
// the process-global registry and is checked there.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/query_request.h"
#include "core/query_window.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/query_service.h"
#include "testing/sharded_fixture.h"

namespace ustdb {
namespace service {
namespace {

using ::ustdb::testing::MakeShardedPair;
using ::ustdb::testing::ShardedPair;
using ::ustdb::testing::ShardedSpec;

const obs::MetricFamily* FindFamily(const obs::MetricsSnapshot& snapshot,
                                    const std::string& name) {
  for (const obs::MetricFamily& family : snapshot.families) {
    if (family.name == name) return &family;
  }
  return nullptr;
}

std::set<std::string> LabelValues(const obs::MetricFamily& family,
                                  const std::string& key) {
  std::set<std::string> values;
  for (const obs::MetricPoint& point : family.points) {
    auto it = point.labels.find(key);
    if (it != point.labels.end()) values.insert(it->second);
  }
  return values;
}

/// Mixed traffic over `service`: every predicate family, a coalescible
/// burst, and a threshold request forced onto the bound plan.
void DriveMixedWorkload(QueryService* service, uint32_t num_states) {
  const auto window = [num_states](uint32_t s_lo, uint32_t s_hi,
                                   Timestamp t_lo, Timestamp t_hi) {
    return core::QueryWindow::FromRanges(num_states, s_lo, s_hi, t_lo, t_hi)
        .ValueOrDie();
  };
  core::QueryRequest exists;
  exists.predicate = core::PredicateKind::kExists;
  exists.window = window(4, 18, 1, 6);

  core::QueryRequest threshold = exists;
  threshold.predicate = core::PredicateKind::kThresholdExists;
  threshold.tau = 0.3;
  threshold.plan = core::PlanChoice::kBoundsThenRefine;

  core::QueryRequest topk = exists;
  topk.predicate = core::PredicateKind::kTopKExists;
  topk.k = 5;

  core::QueryRequest ktimes = exists;
  ktimes.predicate = core::PredicateKind::kKTimes;

  for (int round = 0; round < 4; ++round) {
    for (const core::QueryRequest& request :
         {exists, threshold, topk, ktimes}) {
      ASSERT_TRUE(service->Submit(request).Get().ok());
    }
    std::vector<QueryTicket> burst = service->SubmitBurst(
        std::vector<core::QueryRequest>(16, exists), Priority::kBulk);
    for (QueryTicket& ticket : burst) {
      ASSERT_TRUE(ticket.Get().ok());
    }
  }
}

TEST(ObservabilityTest, MixedWorkloadPopulatesEveryFamilyEndToEnd) {
  const ShardedSpec spec;
  const ShardedPair pair = MakeShardedPair(spec, 2);
  obs::MetricsRegistry registry;

  ServiceOptions options;
  options.executor.num_threads = 2;
  options.queue_capacity = 128;
  options.obs.registry = &registry;
  options.obs.trace_sample_every = 8;
  options.obs.slow_query_ring = 16;

  // Sharded and unsharded services feed ONE registry: the shard label
  // keeps their series apart while the families merge.
  {
    QueryService sharded(&pair.sharded, options);
    DriveMixedWorkload(&sharded, spec.num_states);
    QueryService unsharded(&pair.unsharded, options);
    DriveMixedWorkload(&unsharded, spec.num_states);

    // --- ServiceStats agrees with the registry ---
    const ServiceStats stats = sharded.stats();
    EXPECT_GT(stats.completed, 0u);
    EXPECT_GT(stats.coalesced_batches, 0u);
    EXPECT_GT(stats.scatter_requests, 0u);

    // --- slow-query ring retained sampled traces with full breakdowns ---
    const std::vector<SlowQuery> slow = sharded.slow_queries();
    ASSERT_FALSE(slow.empty());
    EXPECT_LE(slow.size(), options.obs.slow_query_ring);
    bool saw_full_trace = false;
    for (const SlowQuery& record : slow) {
      EXPECT_GT(record.latency_ms, 0.0);
      bool has_queue = false;
      bool has_merge = false;
      bool has_exec = false;
      for (const obs::TraceSpan& span : record.spans) {
        has_queue |= span.stage == obs::Stage::kQueue;
        has_merge |= span.stage == obs::Stage::kMerge;
        has_exec |= span.stage == obs::Stage::kEvaluate;
      }
      saw_full_trace |= has_queue && has_merge && has_exec;
    }
    // At least one retained trace covers submit -> execute -> merge.
    EXPECT_TRUE(saw_full_trace);
  }

  const obs::MetricsSnapshot snapshot = registry.Snapshot();

  // --- queue family, per shard ---
  const obs::MetricFamily* queue_wait =
      FindFamily(snapshot, "ustdb_service_queue_wait_seconds");
  ASSERT_NE(queue_wait, nullptr);
  std::set<std::string> shards = LabelValues(*queue_wait, "shard");
  EXPECT_TRUE(shards.count("0"));
  EXPECT_TRUE(shards.count("1"));

  // --- executor stage family carries shard AND stage labels ---
  const obs::MetricFamily* stages =
      FindFamily(snapshot, "ustdb_exec_stage_seconds");
  ASSERT_NE(stages, nullptr);
  EXPECT_GE(LabelValues(*stages, "shard").size(), 2u);
  const std::set<std::string> stage_names = LabelValues(*stages, "stage");
  for (const char* stage : {"plan", "bound", "engine_build", "evaluate"}) {
    EXPECT_TRUE(stage_names.count(stage)) << stage;
  }
  uint64_t stage_observations = 0;
  for (const obs::MetricPoint& point : stages->points) {
    stage_observations += point.histogram.count;
  }
  EXPECT_GT(stage_observations, 0u);

  // --- plan family ---
  const obs::MetricFamily* chains =
      FindFamily(snapshot, "ustdb_exec_chains_total");
  ASSERT_NE(chains, nullptr);
  const std::set<std::string> plans = LabelValues(*chains, "plan");
  EXPECT_TRUE(plans.count("object_based") || plans.count("query_based"));

  // --- cache and prune families ---
  const obs::MetricFamily* cache =
      FindFamily(snapshot, "ustdb_exec_cache_events_total");
  ASSERT_NE(cache, nullptr);
  uint64_t cache_events = 0;
  for (const obs::MetricPoint& point : cache->points) {
    cache_events += static_cast<uint64_t>(point.value);
  }
  EXPECT_GT(cache_events, 0u);
  EXPECT_NE(FindFamily(snapshot, "ustdb_prune_clusters_total"), nullptr);

  // --- dispatch kinds: the workload exercised solo AND coalesced ---
  const obs::MetricFamily* dispatches =
      FindFamily(snapshot, "ustdb_service_dispatches_total");
  ASSERT_NE(dispatches, nullptr);
  const std::set<std::string> kinds = LabelValues(*dispatches, "kind");
  EXPECT_TRUE(kinds.count("solo"));
  EXPECT_TRUE(kinds.count("coalesced"));

  // --- request totals: outcomes sum to submissions across both modes ---
  const obs::MetricFamily* submitted =
      FindFamily(snapshot, "ustdb_service_submitted_total");
  const obs::MetricFamily* outcomes =
      FindFamily(snapshot, "ustdb_service_requests_total");
  ASSERT_NE(submitted, nullptr);
  ASSERT_NE(outcomes, nullptr);
  double submitted_total = 0.0;
  for (const obs::MetricPoint& point : submitted->points) {
    submitted_total += point.value;
  }
  double resolved_total = 0.0;
  for (const obs::MetricPoint& point : outcomes->points) {
    resolved_total += point.value;
  }
  EXPECT_EQ(resolved_total, submitted_total);
  EXPECT_GT(submitted_total, 0.0);

  // --- exporters render the populated registry ---
  const std::string text = obs::WritePrometheusText(snapshot);
  EXPECT_NE(text.find("# TYPE ustdb_service_request_latency_seconds "
                      "histogram"),
            std::string::npos);
  EXPECT_NE(text.find("shard=\"1\""), std::string::npos);
  EXPECT_NE(text.find("_bucket{"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);

  const std::string json = obs::WriteJson(snapshot);
  EXPECT_NE(json.find("\"ustdb_exec_stage_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
}

TEST(ObservabilityTest, KernelDispatchFamilyFeedsGlobalRegistry) {
  const ShardedSpec spec;
  const ShardedPair pair = MakeShardedPair(spec, 2);
  ServiceOptions options;
  options.executor.num_threads = 1;

  QueryService service(&pair.unsharded, options);
  core::QueryRequest request;
  request.predicate = core::PredicateKind::kExists;
  request.window =
      core::QueryWindow::FromRanges(spec.num_states, 4, 18, 1, 6)
          .ValueOrDie();
  ASSERT_TRUE(service.Submit(request).Get().ok());

  // SpMV passes count against the process-global registry (the kernel
  // layer has no per-service wiring), labeled by the dispatching ISA.
  const obs::MetricsSnapshot global =
      obs::MetricsRegistry::Global()->Snapshot();
  const obs::MetricFamily* spmv =
      FindFamily(global, "ustdb_kernel_spmv_passes_total");
  ASSERT_NE(spmv, nullptr);
  uint64_t passes = 0;
  for (const obs::MetricPoint& point : spmv->points) {
    ASSERT_TRUE(point.labels.count("isa"));
    passes += static_cast<uint64_t>(point.value);
  }
  EXPECT_GT(passes, 0u);
}

TEST(ObservabilityTest, DisabledObservabilityKeepsRegistryUntouched) {
  const ShardedSpec spec;
  const ShardedPair pair = MakeShardedPair(spec, 2);
  obs::MetricsRegistry registry;
  ServiceOptions options;
  options.executor.num_threads = 1;
  options.obs.registry = &registry;
  options.obs.enabled = false;

  QueryService service(&pair.unsharded, options);
  core::QueryRequest request;
  request.predicate = core::PredicateKind::kExists;
  request.window =
      core::QueryWindow::FromRanges(spec.num_states, 4, 18, 1, 6)
          .ValueOrDie();
  ASSERT_TRUE(service.Submit(request).Get().ok());

  // The overhead contract's "off" side: no handles resolved, nothing fed.
  EXPECT_TRUE(registry.Snapshot().families.empty());
  EXPECT_TRUE(service.slow_queries().empty());
  // ServiceStats keeps its exact legacy semantics regardless.
  EXPECT_EQ(service.stats().completed, 1u);
}

}  // namespace
}  // namespace service
}  // namespace ustdb
