// QueryService behavior: ticket resolution parity with the bare executor,
// burst coalescing (bit-identical to RunBatch), cancellation and deadline
// edges, backpressure, priority ordering, and drain-on-shutdown with no
// lost or double-resolved tickets. Tests stage deterministic queue states
// with start_paused + Resume.

#include "service/query_service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "core/executor.h"
#include "testing/random_models.h"
#include "util/cancellation.h"
#include "util/rng.h"

namespace ustdb {
namespace service {
namespace {

using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

constexpr uint32_t kStates = 25;
constexpr uint32_t kObjects = 200;
constexpr auto kTestTimeout = std::chrono::milliseconds(30'000);

core::Database MakeDb(uint64_t seed) {
  util::Rng rng(seed);
  core::Database db;
  const ChainId chain = db.AddChain(RandomChain(kStates, 3, &rng));
  for (uint32_t i = 0; i < kObjects; ++i) {
    (void)db.AddObjectAt(chain, RandomDistribution(kStates, 3, &rng))
        .ValueOrDie();
  }
  return db;
}

core::QueryRequest ExistsRequest() {
  core::QueryRequest request;
  request.predicate = core::PredicateKind::kExists;
  request.window =
      core::QueryWindow::FromRanges(kStates, 6, 12, 3, 8).ValueOrDie();
  return request;
}

ServiceOptions OneThreadOptions() {
  ServiceOptions options;
  options.executor.num_threads = 1;
  return options;
}

TEST(QueryServiceTest, SubmitResolvesLikeSoloRun) {
  core::Database db = MakeDb(21);
  QueryService service(&db, OneThreadOptions());

  QueryTicket ticket = service.Submit(ExistsRequest());
  ASSERT_TRUE(ticket.valid());
  const auto result = ticket.Get();
  ASSERT_TRUE(result.ok()) << result.status();

  core::QueryExecutor twin(&db, {.num_threads = 1});
  const auto expected = twin.Run(ExistsRequest()).ValueOrDie();
  ASSERT_EQ(result.value().probabilities.size(),
            expected.probabilities.size());
  for (size_t i = 0; i < expected.probabilities.size(); ++i) {
    EXPECT_EQ(result.value().probabilities[i].probability,
              expected.probabilities[i].probability);
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.solo_dispatches, 1u);
}

// Acceptance: a 64-request single-window burst coalesces into one RunBatch
// dispatch whose per-request answers are bit-identical to a direct
// RunBatch of the same requests.
TEST(QueryServiceTest, BurstCoalescesBitIdenticalToRunBatch) {
  core::Database db = MakeDb(22);
  ServiceOptions options = OneThreadOptions();
  options.start_paused = true;
  options.queue_capacity = 128;
  options.max_batch = 64;

  QueryService service(&db, options);
  std::vector<core::QueryRequest> burst(64, ExistsRequest());
  std::vector<QueryTicket> tickets = service.SubmitBurst(burst);
  ASSERT_EQ(tickets.size(), 64u);
  EXPECT_EQ(service.queue_depth(), 64u);
  service.Resume();

  // Collect every service answer first: the dispatcher and the twin
  // executor share the Database, whose transpose cache is built lazily and
  // unsynchronized — the executor contract is one executor per thread *at
  // a time*, so the comparison run happens after the service is idle.
  std::vector<util::Result<core::QueryResult>> results;
  for (QueryTicket& ticket : tickets) results.push_back(ticket.Get());

  core::QueryExecutor twin(&db, {.num_threads = 1});
  const auto expected =
      twin.RunBatch(std::vector<core::QueryRequest>(64, ExistsRequest()));

  for (size_t i = 0; i < results.size(); ++i) {
    const auto& result = results[i];
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_TRUE(expected[i].ok());
    const auto& got = result.value().probabilities;
    const auto& want = expected[i].value().probabilities;
    ASSERT_EQ(got.size(), want.size());
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(got[j].id, want[j].id);
      EXPECT_EQ(got[j].probability, want[j].probability);
    }
    EXPECT_EQ(result.value().stats.batch_group_members, 64u);
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 64u);
  EXPECT_EQ(stats.coalesced_batches, 1u);
  EXPECT_EQ(stats.coalesced_requests, 64u);
  EXPECT_EQ(stats.solo_dispatches, 0u);
  EXPECT_EQ(stats.queue_peak, 64u);
  // The whole burst paid one backward pass (satellite: cache counters
  // surfaced through ServiceStats).
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.cache.evictions, 0u);
}

TEST(QueryServiceTest, CancelBeforeDequeueSkipsExecution) {
  core::Database db = MakeDb(23);
  ServiceOptions options = OneThreadOptions();
  options.start_paused = true;

  QueryService service(&db, options);
  QueryTicket ticket = service.Submit(ExistsRequest());
  ticket.Cancel();
  service.Resume();

  const auto result = ticket.Get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCancelled);

  ASSERT_TRUE(ticket.resolved());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 0u);
  // Never reached the executor: no cache traffic at all.
  EXPECT_EQ(stats.cache.hits + stats.cache.misses, 0u);
}

TEST(QueryServiceTest, CancelMidFlightResolvesCancelled) {
  core::Database db = MakeDb(24);
  QueryService service(&db, OneThreadOptions());

  // A caller-owned token linked beneath the ticket's: its poll budget
  // trips inside the executor's loop (after the dispatcher's pre-check and
  // the executor's submission check), so the run provably started and was
  // then stopped mid-flight.
  util::CancellationSource source;
  source.RequestStopAfterPolls(3);
  core::QueryRequest request = ExistsRequest();
  request.cancel = source.token();

  QueryTicket ticket = service.Submit(std::move(request));
  const auto result = ticket.Get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCancelled);
  EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST(QueryServiceTest, ExpiredDeadlineResolvesAtSubmit) {
  core::Database db = MakeDb(25);
  ServiceOptions options = OneThreadOptions();
  options.start_paused = true;

  QueryService service(&db, options);
  core::QueryRequest request = ExistsRequest();
  request.deadline =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  QueryTicket ticket = service.Submit(std::move(request));

  // Resolved synchronously: the dispatcher is paused, yet the ticket is
  // already answered and nothing was queued.
  ASSERT_TRUE(ticket.resolved());
  EXPECT_EQ(service.queue_depth(), 0u);
  const auto result = ticket.Get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.stats().deadline_expired, 1u);
}

TEST(QueryServiceTest, DeadlineExpiringInQueueResolvesExpired) {
  core::Database db = MakeDb(26);
  ServiceOptions options = OneThreadOptions();
  options.start_paused = true;

  QueryService service(&db, options);
  core::QueryRequest request = ExistsRequest();
  request.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(1);
  QueryTicket ticket = service.Submit(std::move(request));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  service.Resume();

  const auto result = ticket.Get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded);
}

TEST(QueryServiceTest, FullQueueRejectsWhenPolicyIsReject) {
  core::Database db = MakeDb(27);
  ServiceOptions options = OneThreadOptions();
  options.start_paused = true;
  options.queue_capacity = 2;
  options.backpressure = BackpressurePolicy::kReject;

  QueryService service(&db, options);
  QueryTicket first = service.Submit(ExistsRequest());
  QueryTicket second = service.Submit(ExistsRequest());
  QueryTicket third = service.Submit(ExistsRequest());

  ASSERT_TRUE(third.resolved());
  const auto rejected = third.Get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kUnavailable);
  EXPECT_EQ(service.stats().rejected, 1u);

  service.Resume();
  EXPECT_TRUE(first.Get().ok());
  EXPECT_TRUE(second.Get().ok());
  EXPECT_EQ(service.stats().completed, 2u);
}

TEST(QueryServiceTest, FullQueueBlocksWhenPolicyIsBlock) {
  core::Database db = MakeDb(28);
  ServiceOptions options = OneThreadOptions();
  options.start_paused = true;
  options.queue_capacity = 1;
  options.backpressure = BackpressurePolicy::kBlock;

  QueryService service(&db, options);
  QueryTicket first = service.Submit(ExistsRequest());
  QueryTicket blocked;
  std::thread producer([&service, &blocked] {
    blocked = service.Submit(ExistsRequest());
  });
  service.Resume();  // dispatcher frees the slot, unblocking the producer
  producer.join();

  EXPECT_TRUE(first.Get().ok());
  EXPECT_TRUE(blocked.Get().ok());
  EXPECT_EQ(service.stats().completed, 2u);
  EXPECT_EQ(service.stats().rejected, 0u);
}

// A burst must never block mid-enqueue (it holds the queue lock, and on a
// paused service there is no dispatcher progress to wait for): overflow
// entries reject immediately even under the blocking policy.
TEST(QueryServiceTest, BurstOverflowRejectsEvenUnderBlockPolicy) {
  core::Database db = MakeDb(34);
  ServiceOptions options = OneThreadOptions();
  options.start_paused = true;
  options.queue_capacity = 2;
  options.backpressure = BackpressurePolicy::kBlock;

  QueryService service(&db, options);
  std::vector<QueryTicket> tickets =
      service.SubmitBurst(std::vector<core::QueryRequest>(4, ExistsRequest()));
  ASSERT_EQ(tickets.size(), 4u);
  EXPECT_EQ(service.queue_depth(), 2u);

  service.Resume();
  uint32_t ok = 0;
  uint32_t rejected = 0;
  for (QueryTicket& ticket : tickets) {
    const auto result = ticket.Get();
    if (result.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(result.status().code(), util::StatusCode::kUnavailable);
      ++rejected;
    }
  }
  EXPECT_EQ(ok, 2u);
  EXPECT_EQ(rejected, 2u);
  EXPECT_EQ(service.stats().rejected, 2u);
}

// Priority: a paused service holds one bulk and one interactive request
// (submitted in that order). Dispatches never cross lanes, so the
// interactive request runs in its own earlier dispatch — observable
// because its solo run pays the cold cache miss while the later bulk run
// hits the pass the interactive run admitted.
TEST(QueryServiceTest, InteractiveLaneDrainsBeforeBulk) {
  core::Database db = MakeDb(29);
  ServiceOptions options = OneThreadOptions();
  options.start_paused = true;

  QueryService service(&db, options);
  QueryTicket bulk = service.Submit(ExistsRequest(), Priority::kBulk);
  QueryTicket interactive =
      service.Submit(ExistsRequest(), Priority::kInteractive);
  service.Resume();

  const auto interactive_result = interactive.Get();
  const auto bulk_result = bulk.Get();
  ASSERT_TRUE(interactive_result.ok());
  ASSERT_TRUE(bulk_result.ok());
  EXPECT_EQ(interactive_result.value().stats.batch_group_members, 0u);
  EXPECT_EQ(bulk_result.value().stats.batch_group_members, 0u);
  EXPECT_EQ(interactive_result.value().stats.cache_misses, 1u);
  EXPECT_EQ(interactive_result.value().stats.cache_hits, 0u);
  EXPECT_EQ(bulk_result.value().stats.cache_hits, 1u);
  EXPECT_EQ(bulk_result.value().stats.cache_misses, 0u);
  EXPECT_EQ(service.stats().solo_dispatches, 2u);
}

TEST(QueryServiceTest, ShutdownDrainsEveryQueuedTicket) {
  core::Database db = MakeDb(30);
  ServiceOptions options = OneThreadOptions();
  options.start_paused = true;
  options.queue_capacity = 16;

  QueryService service(&db, options);
  std::vector<QueryTicket> tickets;
  for (int i = 0; i < 10; ++i) {
    tickets.push_back(service.Submit(
        ExistsRequest(), i % 2 == 0 ? Priority::kInteractive
                                    : Priority::kBulk));
  }
  // Never resumed: Shutdown itself must drain the paused queue.
  service.Shutdown();

  for (QueryTicket& ticket : tickets) {
    ASSERT_TRUE(ticket.WaitFor(kTestTimeout));
    EXPECT_TRUE(ticket.Get().ok());
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 10u);
  EXPECT_EQ(stats.submitted, 10u);
  EXPECT_EQ(service.queue_depth(), 0u);
}

TEST(QueryServiceTest, SubmitAfterShutdownIsRejected) {
  core::Database db = MakeDb(31);
  QueryService service(&db, OneThreadOptions());
  service.Shutdown();

  QueryTicket ticket = service.Submit(ExistsRequest());
  ASSERT_TRUE(ticket.resolved());
  const auto result = ticket.Get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kUnavailable);

  // Shutdown outranks every other submission-time verdict: an expired
  // request still resolves Unavailable, not DeadlineExceeded.
  core::QueryRequest expired = ExistsRequest();
  expired.deadline =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  EXPECT_EQ(service.Submit(std::move(expired)).Get().status().code(),
            util::StatusCode::kUnavailable);
}

TEST(QueryServiceTest, TicketResultIsOneShot) {
  core::Database db = MakeDb(32);
  QueryService service(&db, OneThreadOptions());
  QueryTicket ticket = service.Submit(ExistsRequest());
  ASSERT_TRUE(ticket.Get().ok());
  const auto again = ticket.Get();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(QueryServiceTest, InvalidTicketFailsGracefully) {
  QueryTicket ticket;
  EXPECT_FALSE(ticket.valid());
  EXPECT_FALSE(ticket.resolved());
  EXPECT_FALSE(ticket.WaitFor(std::chrono::milliseconds(1)));
  EXPECT_EQ(ticket.Get().status().code(),
            util::StatusCode::kFailedPrecondition);
  ticket.Cancel();  // no-op, must not crash
}

TEST(QueryServiceTest, ConcurrentSubmittersAllResolve) {
  core::Database db = MakeDb(33);
  ServiceOptions options = OneThreadOptions();
  options.queue_capacity = 64;
  QueryService service(&db, options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::vector<std::vector<QueryTicket>> tickets(kThreads);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&service, &tickets, t] {
      for (int i = 0; i < kPerThread; ++i) {
        tickets[t].push_back(service.Submit(
            ExistsRequest(),
            i % 2 == 0 ? Priority::kInteractive : Priority::kBulk));
      }
    });
  }
  for (std::thread& t : submitters) t.join();

  uint64_t ok = 0;
  for (auto& lane : tickets) {
    for (QueryTicket& ticket : lane) {
      ASSERT_TRUE(ticket.WaitFor(kTestTimeout));
      if (ticket.Get().ok()) ++ok;
    }
  }
  EXPECT_EQ(ok, static_cast<uint64_t>(kThreads * kPerThread));
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_GT(stats.latency_p99_ms, 0.0);
  EXPECT_GE(stats.latency_p99_ms, stats.latency_p50_ms);
}

}  // namespace
}  // namespace service
}  // namespace ustdb
