// Service ingest front door: const-constructed services keep ingest
// disabled, mutable ones apply appends with monotonic versions and
// serialize against the owning shard's dispatch, validation failures are
// counted and leave the database untouched, and — the central parity
// property — a database grown by N interleaved AppendObservation calls
// answers every query bit-identically to a database bulk-loaded with the
// final observation state, at 1, 2, and 4 shards. A reader/ingest hammer
// (run under TSan in CI) pins the concurrency contract: queries may run
// while observations land, and every answer reflects a consistent epoch.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/executor.h"
#include "core/query_request.h"
#include "core/query_window.h"
#include "core/shard_router.h"
#include "markov/markov_chain.h"
#include "obs/trace.h"
#include "service/query_service.h"
#include "sparse/prob_vector.h"
#include "testing/random_models.h"
#include "testing/sharded_fixture.h"
#include "testing/test_seed.h"
#include "util/rng.h"

namespace ustdb {
namespace service {
namespace {

using ::ustdb::testing::MakeShardedPair;
using ::ustdb::testing::PaperChainV;
using ::ustdb::testing::RandomDistribution;
using ::ustdb::testing::ShardedPair;
using ::ustdb::testing::ShardedSpec;

constexpr auto kGetTimeout = std::chrono::milliseconds(60'000);

util::Result<core::QueryResult> GetWithin(QueryTicket* ticket) {
  EXPECT_TRUE(ticket->WaitFor(kGetTimeout)) << "ticket never resolved";
  return ticket->Get();
}

core::Observation ObsAt(Timestamp t, uint32_t n, uint32_t state) {
  return {t, sparse::ProbVector::Delta(n, state)};
}

/// Uniform full-support observation: consistent with every possible
/// world, so objects carrying it always survive the Section VI engine's
/// reachability conditioning.
core::Observation UniformObs(Timestamp t, uint32_t n) {
  std::vector<std::pair<uint32_t, double>> pairs;
  for (uint32_t i = 0; i < n; ++i) pairs.emplace_back(i, 1.0);
  return {t, sparse::ProbVector::FromPairs(n, std::move(pairs),
                                           /*normalize=*/true)
                 .ValueOrDie()};
}

TEST(IngestServiceTest, ConstServiceKeepsIngestDisabled) {
  core::Database db;
  const ChainId chain = db.AddChain(PaperChainV());
  ASSERT_TRUE(db.AddObjectAt(chain, sparse::ProbVector::Delta(3, 0)).ok());

  const core::Database* frozen = &db;
  QueryService service(frozen);
  const auto result = service.AppendObservation(0, ObsAt(1, 3, 1));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(db.data_version(), 0u);
}

TEST(IngestServiceTest, MutableServiceAppliesWithMonotonicVersions) {
  core::Database db;
  const ChainId chain = db.AddChain(PaperChainV());
  ASSERT_TRUE(db.AddObjectAt(chain, sparse::ProbVector::Delta(3, 0)).ok());
  ASSERT_TRUE(db.AddObjectAt(chain, sparse::ProbVector::Delta(3, 1)).ok());

  QueryService service(&db);
  DataVersion last = 0;
  for (Timestamp t = 1; t <= 3; ++t) {
    const auto version = service.AppendObservation(0, UniformObs(t, 3));
    ASSERT_TRUE(version.ok()) << version.status();
    EXPECT_GT(version.value(), last);
    last = version.value();
  }
  EXPECT_EQ(db.data_version(), last);

  // Rejections: unknown object, duplicate timestamp. Both counted, both
  // leaving the database untouched.
  EXPECT_EQ(service.AppendObservation(9, ObsAt(4, 3, 0)).status().code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(service.AppendObservation(0, ObsAt(3, 3, 0)).status().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(db.data_version(), last);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.ingested, 3u);
  EXPECT_EQ(stats.ingest_rejected, 2u);

  // Serving continues over the mutated database.
  core::QueryRequest request;
  request.predicate = core::PredicateKind::kExists;
  request.window = core::QueryWindow::FromRanges(3, 0, 2, 1, 4).ValueOrDie();
  QueryTicket ticket = service.Submit(std::move(request));
  const auto answer = GetWithin(&ticket);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer.value().epoch, last);
}

TEST(IngestServiceTest, ShutdownRejectsIngest) {
  core::Database db;
  const ChainId chain = db.AddChain(PaperChainV());
  ASSERT_TRUE(db.AddObjectAt(chain, sparse::ProbVector::Delta(3, 0)).ok());
  QueryService service(&db);
  service.Shutdown();
  const auto result = service.AppendObservation(0, ObsAt(1, 3, 1));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kUnavailable);
}

TEST(IngestServiceTest, IngestTraceRecordsTheApplySpan) {
  core::Database db;
  const ChainId chain = db.AddChain(PaperChainV());
  ASSERT_TRUE(db.AddObjectAt(chain, sparse::ProbVector::Delta(3, 0)).ok());
  QueryService service(&db);

  auto applied = std::make_shared<obs::QueryTrace>();
  ASSERT_TRUE(service.AppendObservation(0, ObsAt(1, 3, 1), applied).ok());
  auto rejected = std::make_shared<obs::QueryTrace>();
  ASSERT_FALSE(service.AppendObservation(0, ObsAt(1, 3, 1), rejected).ok());

  const auto applied_spans = applied->spans();
  ASSERT_EQ(applied_spans.size(), 1u);
  EXPECT_EQ(applied_spans[0].stage, obs::Stage::kIngest);
  EXPECT_EQ(applied_spans[0].detail, "applied");
  const auto rejected_spans = rejected->spans();
  ASSERT_EQ(rejected_spans.size(), 1u);
  EXPECT_EQ(rejected_spans[0].detail, "rejected");
}

/// One random read query over the fixture's domain. Gap windows and
/// filters included; kKTimes excluded (appends create multi-observation
/// objects, for which PSTkQ is outside the paper's framework).
core::QueryRequest RandomReadRequest(const ShardedSpec& spec,
                                     util::Rng* rng) {
  core::QueryRequest request;
  switch (rng->NextBounded(4)) {
    case 0:
      request.predicate = core::PredicateKind::kExists;
      break;
    case 1:
      request.predicate = core::PredicateKind::kForAll;
      break;
    case 2:
      request.predicate = core::PredicateKind::kThresholdExists;
      request.tau = 0.05 + 0.5 * rng->NextDouble();
      break;
    default:
      request.predicate = core::PredicateKind::kTopKExists;
      request.k = 1 + rng->NextBounded(12);
      break;
  }
  const uint32_t n = spec.num_states;
  const uint32_t s_lo = static_cast<uint32_t>(rng->NextBounded(n - 8));
  const uint32_t s_hi = s_lo + 1 + static_cast<uint32_t>(rng->NextBounded(6));
  const Timestamp t_lo = 1 + static_cast<Timestamp>(rng->NextBounded(4));
  const Timestamp t_hi = t_lo + 1 + static_cast<Timestamp>(rng->NextBounded(5));
  request.window =
      core::QueryWindow::FromRanges(n, s_lo, s_hi, t_lo, t_hi).ValueOrDie();
  if (rng->NextBounded(3) == 0) {
    std::vector<ObjectId> filter;
    const uint32_t count =
        1 + static_cast<uint32_t>(rng->NextBounded(spec.num_objects / 2));
    for (uint32_t i = 0; i < count; ++i) {
      filter.push_back(
          static_cast<ObjectId>(rng->NextBounded(spec.num_objects)));
    }
    request.object_filter = std::move(filter);
  }
  return request;
}

void ExpectSamePayload(const core::QueryResult& a,
                       const core::QueryResult& b) {
  ASSERT_EQ(a.probabilities.size(), b.probabilities.size());
  for (size_t i = 0; i < b.probabilities.size(); ++i) {
    EXPECT_EQ(a.probabilities[i].id, b.probabilities[i].id);
    EXPECT_EQ(a.probabilities[i].probability, b.probabilities[i].probability)
        << "probability drift at entry " << i;
  }
}

class IngestRebuildParityTest : public ::testing::TestWithParam<uint32_t> {};

/// N interleaved appends and queries through the service, at every shard
/// count: (a) mid-stream, the sharded service answers bit-identically to
/// the legacy unsharded one at the same epoch; (b) after the stream, a
/// FRESH database bulk-loaded with the final observation state answers
/// every probe bit-identically to the grown one — ingest leaves no trace
/// an equivalent cold load would not have.
TEST_P(IngestRebuildParityTest, GrownEqualsRebuilt) {
  const uint64_t seed = ustdb::testing::TestSeed(650);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  SCOPED_TRACE("shards=" + std::to_string(GetParam()));
  ShardedSpec spec;
  spec.seed = seed;
  spec.num_objects = 72;
  ShardedPair pair = MakeShardedPair(spec, GetParam());

  ServiceOptions options;
  options.executor.num_threads = 2;
  QueryService legacy(&pair.unsharded, options);
  QueryService sharded(&pair.sharded, options);

  util::Rng rng(seed ^ 0x16E57);
  std::vector<Timestamp> next_time(spec.num_objects, 1);
  for (int round = 0; round < 80; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    if (rng.NextBounded(2) == 0) {
      const ObjectId id =
          static_cast<ObjectId>(rng.NextBounded(spec.num_objects));
      core::Observation obs{next_time[id],
                            RandomDistribution(spec.num_states, spec.num_states, &rng)};
      next_time[id] += 1 + rng.NextBounded(3);
      // The SAME observation through both services; versions agree
      // because both databases share one append history.
      const auto va = legacy.AppendObservation(id, core::Observation(obs));
      const auto vb = sharded.AppendObservation(id, std::move(obs));
      ASSERT_TRUE(va.ok()) << va.status();
      ASSERT_TRUE(vb.ok()) << vb.status();
      EXPECT_EQ(va.value(), vb.value());
    } else {
      const core::QueryRequest request = RandomReadRequest(spec, &rng);
      QueryTicket a = legacy.Submit(core::QueryRequest(request));
      QueryTicket b = sharded.Submit(core::QueryRequest(request));
      const auto ra = GetWithin(&a);
      const auto rb = GetWithin(&b);
      ASSERT_EQ(ra.ok(), rb.ok()) << ra.status() << " vs " << rb.status();
      if (!ra.ok()) continue;
      ExpectSamePayload(rb.value(), ra.value());
      EXPECT_EQ(ra.value().epoch, pair.unsharded.data_version());
      // The sharded epoch max-merges over the shards that answered: an
      // unfiltered query spans every shard and lands on the global
      // version; a filtered one reflects only the owning shards, which
      // may trail it.
      if (request.object_filter.has_value()) {
        EXPECT_LE(rb.value().epoch, ra.value().epoch);
      } else {
        EXPECT_EQ(rb.value().epoch, ra.value().epoch);
      }
    }
  }
  const DataVersion final_epoch = pair.unsharded.data_version();
  EXPECT_EQ(pair.sharded.data_version(), final_epoch);

  // Bulk-load a fresh database with the grown database's final state.
  // ReAddNormalizedObject re-inserts the exact pdf bits (observations
  // already normalized once on their way in), so any payload difference
  // below would be a real ingest-path defect, not float noise.
  core::Database rebuilt;
  for (ChainId c = 0; c < pair.unsharded.num_chains(); ++c) {
    rebuilt.AddChain(markov::MarkovChain(pair.unsharded.chain(c)));
  }
  for (ObjectId id = 0; id < pair.unsharded.num_objects(); ++id) {
    const core::UncertainObject& obj = pair.unsharded.object(id);
    rebuilt.ReAddNormalizedObject(obj.chain, obj.observations);
  }
  core::QueryExecutor reference(&rebuilt, {.num_threads = 1});

  for (int probe = 0; probe < 25; ++probe) {
    SCOPED_TRACE("probe " + std::to_string(probe));
    const core::QueryRequest request = RandomReadRequest(spec, &rng);
    const auto want = reference.Run(request);
    QueryTicket a = legacy.Submit(core::QueryRequest(request));
    QueryTicket b = sharded.Submit(core::QueryRequest(request));
    const auto ra = GetWithin(&a);
    const auto rb = GetWithin(&b);
    ASSERT_EQ(ra.ok(), want.ok()) << ra.status() << " vs " << want.status();
    ASSERT_EQ(rb.ok(), want.ok());
    if (!want.ok()) continue;
    ExpectSamePayload(ra.value(), want.value());
    ExpectSamePayload(rb.value(), want.value());
    // The grown databases name the epoch they serve; the rebuilt one is
    // frozen at 0 by construction.
    EXPECT_EQ(ra.value().epoch, final_epoch);
    EXPECT_EQ(want.value().epoch, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, IngestRebuildParityTest,
                         ::testing::Values(1u, 2u, 4u));

/// Readers and the ingester race freely: submissions overlap appends on
/// every shard. Run under TSan in CI to pin the locking contract (the
/// per-shard ingest lock vs the dispatcher's run lock, the census
/// mirror's atomics, the epoch stamps).
TEST(IngestServiceTest, ConcurrentReadersAndIngestAreRaceFree) {
  const uint64_t seed = ustdb::testing::TestSeed(651);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  ShardedSpec spec;
  spec.seed = seed;
  spec.num_objects = 48;
  ShardedPair pair = MakeShardedPair(spec, 2);

  ServiceOptions options;
  options.executor.num_threads = 2;
  QueryService service(&pair.sharded, options);

  constexpr int kReaders = 2;
  constexpr int kQueriesPerReader = 30;
  constexpr int kAppends = 60;
  std::atomic<uint32_t> answered{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      util::Rng rng(seed ^ (0xA0u + r));
      for (int q = 0; q < kQueriesPerReader; ++q) {
        QueryTicket ticket = service.Submit(RandomReadRequest(spec, &rng));
        const auto result = GetWithin(&ticket);
        ASSERT_TRUE(result.ok()) << result.status();
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  util::Rng rng(seed ^ 0x17);
  std::vector<Timestamp> next_time(spec.num_objects, 1);
  for (int i = 0; i < kAppends; ++i) {
    const ObjectId id =
        static_cast<ObjectId>(rng.NextBounded(spec.num_objects));
    core::Observation obs{next_time[id],
                          RandomDistribution(spec.num_states, spec.num_states, &rng)};
    next_time[id] += 1 + rng.NextBounded(3);
    const auto version = service.AppendObservation(id, std::move(obs));
    ASSERT_TRUE(version.ok()) << version.status();
  }
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(answered.load(), kReaders * kQueriesPerReader);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.ingested, static_cast<uint64_t>(kAppends));
  EXPECT_EQ(pair.sharded.data_version(), static_cast<DataVersion>(kAppends));
}

}  // namespace
}  // namespace service
}  // namespace ustdb
