// Deadline expiry INSIDE the bound phase of kBoundsThenRefine. A
// cache_admission stall fault makes every cluster's envelope/bounds
// admission slow enough that a short request deadline deterministically
// passes between clusters; the run must stop cooperatively at the next
// cluster boundary with Status::DeadlineExceeded, and the PruneStats of
// the partial run must still satisfy the bound-pass accounting
// invariants (clusters_pruned + clusters_refined == clusters_bounded <=
// clusters_total, strictly partial). Exercised directly against the
// executor (for last_run_stats()) and through the service at 1, 2, and
// 4 shards.

#include <gtest/gtest.h>

#include <chrono>

#include "core/executor.h"
#include "core/query_request.h"
#include "service/query_service.h"
#include "testing/sharded_fixture.h"
#include "util/fault_injector.h"

namespace ustdb {
namespace service {
namespace {

using ::ustdb::testing::MakeShardedPair;
using ::ustdb::testing::ShardedPair;
using ::ustdb::testing::ShardedSpec;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

constexpr auto kGetTimeout = milliseconds(60'000);

std::unique_ptr<util::FaultInjector> MustParse(std::string_view spec) {
  auto parsed = util::FaultInjector::Parse(spec, /*seed=*/7);
  EXPECT_TRUE(parsed.ok()) << parsed.status().message();
  return std::move(parsed).ValueOrDie();
}

core::QueryRequest BoundRequest(const ShardedSpec& spec) {
  core::QueryRequest request;
  request.predicate = core::PredicateKind::kThresholdExists;
  request.tau = 0.3;
  request.plan = core::PlanChoice::kBoundsThenRefine;
  request.window = core::QueryWindow::FromRanges(spec.num_states, 5,
                                                 spec.num_states - 5, 2, 7)
                       .ValueOrDie();
  return request;
}

void ExpectPartialPruneInvariants(const core::PruneStats& prune) {
  EXPECT_EQ(prune.clusters_pruned + prune.clusters_refined,
            prune.clusters_bounded);
  EXPECT_LE(prune.clusters_bounded, prune.clusters_total);
}

// Executor-level: the deadline passes after the first cluster's two
// stalled cache admissions (2 x 40ms > 100ms is false, but the second
// cluster's admissions push past it), so BoundClusters abandons the
// remaining clusters and last_run_stats() exposes a partial-but-
// consistent PruneStats.
TEST(BoundDeadlineTest, ExecutorStopsMidBoundWithConsistentPruneStats) {
  ShardedSpec spec;  // 3 families -> 3 clusters, objects round-robin
  ShardedPair pair = MakeShardedPair(spec, /*num_shards=*/1);
  core::QueryExecutor executor(&pair.unsharded, {.num_threads = 1});

  util::ScopedFaultInjection scope(MustParse("cache_admission:stall:40ms"));
  core::QueryRequest request = BoundRequest(spec);
  request.deadline = steady_clock::now() + milliseconds(100);

  const util::Result<core::QueryResult> result = executor.Run(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded)
      << result.status();

  const core::PruneStats& prune = executor.last_run_stats().prune;
  ExpectPartialPruneInvariants(prune);
  EXPECT_EQ(prune.clusters_total, 3u);
  // Strictly partial: bounding all three clusters would take six stalled
  // admissions (>= 240ms), far past the 100ms deadline, and the poller
  // runs before every cluster.
  EXPECT_LT(prune.clusters_bounded, prune.clusters_total);
  // The cluster in flight when the deadline passed was finished, not torn.
  EXPECT_GE(prune.clusters_bounded, 1u);
}

// Executor-level, mid-refine: the bound phase completes untouched (no
// cache_admission rule) and an engine_build stall pushes past the
// deadline right before refinement evaluates, so the expiry lands in
// the refine loop's cooperative checks. The completed bound pass must
// be fully accounted for even though the run fails.
TEST(BoundDeadlineTest, ExecutorStopsMidRefineAfterCompleteBoundPass) {
  ShardedSpec spec;
  ShardedPair pair = MakeShardedPair(spec, /*num_shards=*/1);
  core::QueryExecutor executor(&pair.unsharded, {.num_threads = 1});

  util::ScopedFaultInjection scope(MustParse("engine_build:stall:300ms"));
  core::QueryRequest request = BoundRequest(spec);
  request.deadline = steady_clock::now() + milliseconds(100);

  const util::Result<core::QueryResult> result = executor.Run(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded)
      << result.status();

  const core::PruneStats& prune = executor.last_run_stats().prune;
  ExpectPartialPruneInvariants(prune);
  // The stall-free bound pass finished well inside the deadline; the
  // expiry hit refinement, after every cluster was bounded.
  EXPECT_EQ(prune.clusters_bounded, prune.clusters_total);
  EXPECT_EQ(prune.clusters_total, 3u);
}

// Service-level: the same expiry through Submit/ticket resolution. At 1
// and 2 shards some dispatcher observes the deadline inside its bound
// loop; at 4 shards each shard holds at most one cluster, so the expiry
// lands in the refine phase's cooperative checks instead — either way
// the ticket must resolve DeadlineExceeded, never hang and never answer.
TEST(BoundDeadlineTest, TicketResolvesDeadlineExceededAcrossShardCounts) {
  ShardedSpec spec;
  for (uint32_t num_shards : {1u, 2u, 4u}) {
    SCOPED_TRACE(::testing::Message() << "num_shards=" << num_shards);
    ShardedPair pair = MakeShardedPair(spec, num_shards);
    ServiceOptions options;
    options.executor.num_threads = 1;
    QueryService service(&pair.sharded, options);

    util::ScopedFaultInjection scope(
        MustParse("cache_admission:stall:40ms"));
    core::QueryRequest request = BoundRequest(spec);
    request.deadline = steady_clock::now() + milliseconds(100);

    QueryTicket ticket = service.Submit(request);
    ASSERT_TRUE(ticket.valid());
    ASSERT_TRUE(ticket.WaitFor(kGetTimeout));
    const util::Result<core::QueryResult> result = ticket.Get();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded)
        << result.status();

    service.Shutdown();
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 1u);
    EXPECT_EQ(stats.deadline_expired, 1u);
    EXPECT_EQ(stats.completed, 0u);
    // Failed requests contribute nothing to the service's bound-pass
    // aggregates; the invariant must hold on whatever was recorded.
    EXPECT_EQ(stats.clusters_pruned + stats.clusters_refined,
              stats.clusters_bounded);
  }
}

}  // namespace
}  // namespace service
}  // namespace ustdb
