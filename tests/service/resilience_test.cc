// ShardHealthTracker state-machine tests (healthy -> degraded ->
// quarantined on consecutive transient failures, wholesale reset on
// success, single-probe admission with doubling capped backoff, the
// dispatcher watchdog) and RetryBackoff properties (exponential growth,
// cap, jitter bounds, determinism, 1ms floor).

#include "service/resilience.h"

#include <gtest/gtest.h>

#include <chrono>

namespace ustdb {
namespace service {
namespace {

using Clock = ShardHealthTracker::Clock;
using std::chrono::milliseconds;

HealthPolicy TestPolicy() {
  HealthPolicy policy;
  policy.degraded_after = 3;
  policy.quarantine_after = 5;
  policy.probe_backoff = milliseconds(100);
  policy.probe_backoff_multiplier = 2.0;
  policy.max_probe_backoff = milliseconds(400);
  policy.watchdog_stall = milliseconds(50);
  return policy;
}

TEST(ShardHealthTracker, FailureThresholdsDriveTheStateMachine) {
  ShardHealthTracker tracker(TestPolicy());
  const Clock::time_point now = Clock::now();
  EXPECT_EQ(tracker.health(), ShardHealth::kHealthy);

  EXPECT_EQ(tracker.RecordFailure(now), ShardHealth::kHealthy);
  EXPECT_EQ(tracker.RecordFailure(now), ShardHealth::kHealthy);
  EXPECT_EQ(tracker.RecordFailure(now), ShardHealth::kDegraded);
  EXPECT_EQ(tracker.RecordFailure(now), ShardHealth::kDegraded);
  EXPECT_EQ(tracker.RecordFailure(now), ShardHealth::kQuarantined);
  EXPECT_EQ(tracker.consecutive_failures(), 5u);
}

TEST(ShardHealthTracker, SuccessResetsWholesale) {
  ShardHealthTracker tracker(TestPolicy());
  const Clock::time_point now = Clock::now();
  for (int i = 0; i < 5; ++i) tracker.RecordFailure(now);
  EXPECT_EQ(tracker.health(), ShardHealth::kQuarantined);

  EXPECT_TRUE(tracker.RecordSuccess());  // reports the transition
  EXPECT_EQ(tracker.health(), ShardHealth::kHealthy);
  EXPECT_EQ(tracker.consecutive_failures(), 0u);
  EXPECT_FALSE(tracker.RecordSuccess());  // already healthy

  // The failure count restarts from zero, not from the old streak.
  EXPECT_EQ(tracker.RecordFailure(now), ShardHealth::kHealthy);
}

TEST(ShardHealthTracker, QuarantineAdmitsOneProbeAfterBackoff) {
  ShardHealthTracker tracker(TestPolicy());
  const Clock::time_point t0 = Clock::now();
  for (int i = 0; i < 5; ++i) tracker.RecordFailure(t0);

  bool is_probe = false;
  // Before the backoff elapses nothing is admitted.
  EXPECT_FALSE(tracker.AdmitToShard(t0 + milliseconds(10), &is_probe));
  // Past the due time exactly one caller wins the probe slot.
  EXPECT_TRUE(tracker.AdmitToShard(t0 + milliseconds(150), &is_probe));
  EXPECT_TRUE(is_probe);
  EXPECT_FALSE(tracker.AdmitToShard(t0 + milliseconds(150), &is_probe));

  // An aborted probe frees the slot for the next caller.
  tracker.ProbeAborted();
  EXPECT_TRUE(tracker.AdmitToShard(t0 + milliseconds(150), &is_probe));
  EXPECT_TRUE(is_probe);
}

TEST(ShardHealthTracker, HealthyShardsAdmitWithoutProbing) {
  ShardHealthTracker tracker(TestPolicy());
  bool is_probe = true;
  EXPECT_TRUE(tracker.AdmitToShard(Clock::now(), &is_probe));
  EXPECT_FALSE(is_probe);
}

TEST(ShardHealthTracker, FailedProbeDoublesBackoffUpToTheCap) {
  ShardHealthTracker tracker(TestPolicy());
  const Clock::time_point t0 = Clock::now();
  for (int i = 0; i < 5; ++i) tracker.RecordFailure(t0);  // backoff 100ms

  bool is_probe = false;
  // Probe at +150ms fails: backoff doubles to 200ms from the failure time.
  EXPECT_TRUE(tracker.AdmitToShard(t0 + milliseconds(150), &is_probe));
  const Clock::time_point t1 = t0 + milliseconds(150);
  tracker.RecordFailure(t1);
  EXPECT_FALSE(tracker.AdmitToShard(t1 + milliseconds(150), &is_probe));
  EXPECT_TRUE(tracker.AdmitToShard(t1 + milliseconds(250), &is_probe));

  // Next failure doubles to 400ms = the cap; a further one stays capped.
  const Clock::time_point t2 = t1 + milliseconds(250);
  tracker.RecordFailure(t2);
  EXPECT_FALSE(tracker.AdmitToShard(t2 + milliseconds(350), &is_probe));
  EXPECT_TRUE(tracker.AdmitToShard(t2 + milliseconds(450), &is_probe));
  const Clock::time_point t3 = t2 + milliseconds(450);
  tracker.RecordFailure(t3);
  EXPECT_FALSE(tracker.AdmitToShard(t3 + milliseconds(350), &is_probe));
  EXPECT_TRUE(tracker.AdmitToShard(t3 + milliseconds(450), &is_probe));
}

TEST(ShardHealthTracker, WatchdogQuarantinesAStalledDispatch) {
  ShardHealthTracker tracker(TestPolicy());
  const Clock::time_point t0 = Clock::now();

  // Idle: never trips.
  EXPECT_FALSE(tracker.CheckWatchdog(t0 + milliseconds(1000)));

  tracker.MarkDispatchStart(t0);
  EXPECT_FALSE(tracker.CheckWatchdog(t0 + milliseconds(10)));
  EXPECT_TRUE(tracker.CheckWatchdog(t0 + milliseconds(60)));
  EXPECT_EQ(tracker.health(), ShardHealth::kQuarantined);
  // One trip per stall episode.
  EXPECT_FALSE(tracker.CheckWatchdog(t0 + milliseconds(120)));

  // The stalled dispatch eventually finishing recovers the shard and
  // re-arms the watchdog.
  tracker.MarkDispatchEnd();
  EXPECT_TRUE(tracker.RecordSuccess());
  EXPECT_EQ(tracker.health(), ShardHealth::kHealthy);
  tracker.MarkDispatchStart(t0 + milliseconds(200));
  EXPECT_TRUE(tracker.CheckWatchdog(t0 + milliseconds(300)));
}

TEST(ShardHealthTracker, WatchdogDisabledByZeroStall) {
  HealthPolicy policy = TestPolicy();
  policy.watchdog_stall = milliseconds(0);
  ShardHealthTracker tracker(policy);
  const Clock::time_point t0 = Clock::now();
  tracker.MarkDispatchStart(t0);
  EXPECT_FALSE(tracker.CheckWatchdog(t0 + std::chrono::hours(1)));
  EXPECT_EQ(tracker.health(), ShardHealth::kHealthy);
}

TEST(ShardHealthName, NamesEveryState) {
  EXPECT_EQ(ShardHealthName(ShardHealth::kHealthy), "healthy");
  EXPECT_EQ(ShardHealthName(ShardHealth::kDegraded), "degraded");
  EXPECT_EQ(ShardHealthName(ShardHealth::kQuarantined), "quarantined");
}

TEST(RetryBackoff, GrowsExponentiallyWithinJitterBounds) {
  core::RetryPolicy policy;
  policy.initial_backoff = milliseconds(10);
  policy.max_backoff = milliseconds(1000);
  policy.multiplier = 2.0;
  policy.jitter = 0.2;
  for (uint32_t attempt = 0; attempt < 5; ++attempt) {
    const double nominal = 10.0 * (1 << attempt);
    const auto backoff = RetryBackoff(policy, attempt, /*seed=*/7);
    EXPECT_GE(backoff.count(), static_cast<int64_t>(nominal * 0.8) - 1)
        << "attempt " << attempt;
    EXPECT_LE(backoff.count(), static_cast<int64_t>(nominal * 1.2) + 1)
        << "attempt " << attempt;
  }
}

TEST(RetryBackoff, CapsAtMaxBackoff) {
  core::RetryPolicy policy;
  policy.initial_backoff = milliseconds(10);
  policy.max_backoff = milliseconds(100);
  policy.multiplier = 2.0;
  policy.jitter = 0.0;
  EXPECT_EQ(RetryBackoff(policy, 10, 7), milliseconds(100));
}

TEST(RetryBackoff, DeterministicPerSeedAndAttempt) {
  core::RetryPolicy policy;
  policy.jitter = 0.5;
  EXPECT_EQ(RetryBackoff(policy, 2, 11), RetryBackoff(policy, 2, 11));
  // Different seeds decorrelate (with overwhelming probability for this
  // fixed pair; the values are deterministic, so this cannot flake).
  EXPECT_NE(RetryBackoff(policy, 6, 11).count(),
            RetryBackoff(policy, 6, 12).count());
}

TEST(RetryBackoff, NeverBelowOneMillisecond) {
  core::RetryPolicy policy;
  policy.initial_backoff = milliseconds(0);
  policy.jitter = 1.0;
  EXPECT_GE(RetryBackoff(policy, 0, 3).count(), 1);
}

}  // namespace
}  // namespace service
}  // namespace ustdb
