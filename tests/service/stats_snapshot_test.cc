// Snapshot safety under fire: stats(), queue_depth(), slow_queries(),
// and MetricsRegistry::Snapshot()/exporters are hammered from reader
// threads while submitters keep the service saturated with bursts —
// unsharded and sharded. Runs under TSan in CI (the service_ test
// regex), so a torn read or a lock-order inversion between the stats
// mutex, the queue mutex, and the registry fails loudly. Every observed
// ServiceStats snapshot must also satisfy the documented consistency
// invariant: resolutions never exceed submissions.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/query_request.h"
#include "core/query_window.h"
#include "obs/metrics.h"
#include "service/query_service.h"
#include "testing/sharded_fixture.h"

namespace ustdb {
namespace service {
namespace {

using ::ustdb::testing::MakeShardedPair;
using ::ustdb::testing::ShardedPair;
using ::ustdb::testing::ShardedSpec;

core::QueryRequest ExistsRequest(uint32_t num_states) {
  core::QueryRequest request;
  request.predicate = core::PredicateKind::kExists;
  request.window =
      core::QueryWindow::FromRanges(num_states, 4, 16, 1, 6).ValueOrDie();
  return request;
}

void ExpectConsistent(const ServiceStats& stats) {
  const uint64_t resolved = stats.completed + stats.failed +
                            stats.cancelled + stats.deadline_expired +
                            stats.rejected;
  // All counter fields come from one locked read: a snapshot can never
  // show more resolutions than submissions.
  EXPECT_LE(resolved, stats.submitted);
  EXPECT_GE(stats.latency_p99_ms, stats.latency_p50_ms);
}

/// Drives `service` with bursts from two submitters while two readers
/// snapshot every observable surface; returns the total submitted.
uint64_t Hammer(QueryService* service, obs::MetricsRegistry* registry,
                uint32_t num_states) {
  constexpr int kSubmitters = 2;
  constexpr int kBurstsPerSubmitter = 8;
  constexpr size_t kBurstSize = 12;

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([service, registry, &done] {
      while (!done.load(std::memory_order_relaxed)) {
        ExpectConsistent(service->stats());
        (void)service->queue_depth();
        const std::vector<SlowQuery> slow = service->slow_queries();
        for (size_t i = 1; i < slow.size(); ++i) {
          EXPECT_GE(slow[i - 1].latency_ms, slow[i].latency_ms);
        }
        const obs::MetricsSnapshot snap = registry->Snapshot();
        const std::string text = obs::WritePrometheusText(snap);
        EXPECT_FALSE(text.empty());
      }
    });
  }

  std::vector<std::thread> submitters;
  std::atomic<uint64_t> resolved_ok{0};
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([service, num_states, &resolved_ok] {
      for (int b = 0; b < kBurstsPerSubmitter; ++b) {
        std::vector<QueryTicket> tickets = service->SubmitBurst(
            std::vector<core::QueryRequest>(kBurstSize,
                                            ExistsRequest(num_states)),
            b % 2 == 0 ? Priority::kInteractive : Priority::kBulk);
        for (QueryTicket& ticket : tickets) {
          if (ticket.Get().ok()) resolved_ok.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  done.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_GT(resolved_ok.load(), 0u);
  return kSubmitters * kBurstsPerSubmitter * kBurstSize;
}

TEST(StatsSnapshotTest, UnshardedReadsStayConsistentUnderBursts) {
  const ShardedSpec spec;
  const ShardedPair pair = MakeShardedPair(spec, 2);
  obs::MetricsRegistry registry;
  ServiceOptions options;
  options.executor.num_threads = 2;
  options.queue_capacity = 512;
  options.obs.registry = &registry;
  options.obs.trace_sample_every = 4;
  options.obs.slow_query_ring = 8;

  QueryService service(&pair.unsharded, options);
  const uint64_t submitted = Hammer(&service, &registry, spec.num_states);

  const ServiceStats final_stats = service.stats();
  EXPECT_EQ(final_stats.submitted, submitted);
  EXPECT_EQ(final_stats.completed + final_stats.failed +
                final_stats.cancelled + final_stats.deadline_expired +
                final_stats.rejected,
            submitted);
  EXPECT_LE(service.slow_queries().size(), options.obs.slow_query_ring);
}

TEST(StatsSnapshotTest, ShardedReadsStayConsistentUnderBursts) {
  const ShardedSpec spec;
  const ShardedPair pair = MakeShardedPair(spec, 2);
  obs::MetricsRegistry registry;
  ServiceOptions options;
  options.executor.num_threads = 2;
  options.queue_capacity = 512;
  options.obs.registry = &registry;
  options.obs.trace_sample_every = 4;
  options.obs.slow_query_ring = 8;

  QueryService service(&pair.sharded, options);
  const uint64_t submitted = Hammer(&service, &registry, spec.num_states);

  const ServiceStats final_stats = service.stats();
  EXPECT_EQ(final_stats.submitted, submitted);
  EXPECT_EQ(final_stats.completed + final_stats.failed +
                final_stats.cancelled + final_stats.deadline_expired +
                final_stats.rejected,
            submitted);

  // The registry agrees with the idle service's own accounting.
  uint64_t registry_submitted = 0;
  for (const obs::MetricFamily& family : registry.Snapshot().families) {
    if (family.name == "ustdb_service_requests_total") {
      for (const obs::MetricPoint& point : family.points) {
        registry_submitted += static_cast<uint64_t>(point.value);
      }
    }
  }
  EXPECT_EQ(registry_submitted, submitted);
}

TEST(StatsSnapshotTest, ExecutorLastRunStatsReadableAfterService) {
  // last_run_stats() documents snapshot semantics: read between runs it
  // reflects the most recent completed run. The service owns its
  // executors, so this exercises the bare-executor surface directly.
  const ShardedSpec spec;
  const ShardedPair pair = MakeShardedPair(spec, 2);
  core::QueryExecutor executor(&pair.unsharded, {.num_threads = 2});
  ASSERT_TRUE(executor.Run(ExistsRequest(spec.num_states)).ok());
  const core::ExecStats stats = executor.last_run_stats();
  EXPECT_GT(stats.objects_evaluated, 0u);
}

}  // namespace
}  // namespace service
}  // namespace ustdb
