// ServiceStats latency percentiles under sharding: the p50/p99 must be
// read off the MERGED per-shard reservoirs, never an average of per-shard
// percentiles. The regression this guards: with one slow shard and N fast
// ones, averaging per-shard p99s reports a tail latency no request ever
// experienced, in either direction (diluting a rare slow tail, or
// inflating the global p99 when the slow shard serves almost no traffic).

// The same principle governs the registry's bucketed latency histograms:
// per-shard histograms merge bucket-wise (obs::MergeHistograms), and the
// merged percentiles must equal the percentiles of one histogram that
// observed the pooled samples — tested against that oracle below.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "obs/metrics.h"
#include "service/query_service.h"

namespace ustdb {
namespace service {
namespace {

using internal::LatencyPercentiles;
using internal::MergeLatencyPercentiles;

std::vector<double> Repeat(double value, size_t count) {
  return std::vector<double>(count, value);
}

TEST(LatencyMergeTest, EmptyInputYieldsZeros) {
  const LatencyPercentiles none = MergeLatencyPercentiles({});
  EXPECT_EQ(none.p50_ms, 0.0);
  EXPECT_EQ(none.p99_ms, 0.0);
  const LatencyPercentiles empties = MergeLatencyPercentiles({{}, {}, {}});
  EXPECT_EQ(empties.p50_ms, 0.0);
  EXPECT_EQ(empties.p99_ms, 0.0);
}

TEST(LatencyMergeTest, SingleReservoirReadsItsOwnPercentiles) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(static_cast<double>(i));
  const LatencyPercentiles p = MergeLatencyPercentiles({samples});
  // sorted[floor(q * (n-1))] — the formula the unsharded service always
  // used; one reservoir must reproduce it exactly.
  EXPECT_EQ(p.p50_ms, 50.0);
  EXPECT_EQ(p.p99_ms, 99.0);
}

/// One shard serves nearly all traffic fast; another served 10 slow
/// requests. The pooled p99 stays at the fast latency (the slow tail is
/// under 1% of the pool) — a per-shard average would report ~50ms, a
/// latency no percentile of the real distribution contains.
TEST(LatencyMergeTest, RareSlowShardDoesNotInflateTail) {
  const std::vector<std::vector<double>> reservoirs = {
      Repeat(1.0, 2000), Repeat(100.0, 10)};
  const LatencyPercentiles pooled = MergeLatencyPercentiles(reservoirs);
  EXPECT_EQ(pooled.p50_ms, 1.0);
  EXPECT_EQ(pooled.p99_ms, 1.0);

  const double naive_p99_average = (1.0 + 100.0) / 2;  // the broken merge
  EXPECT_NE(pooled.p99_ms, naive_p99_average);
}

/// Both shards serve equal traffic but one is uniformly 100x slower. The
/// pooled p99 lands in the slow mode (the top 1% of ALL requests are
/// slow-shard requests); the per-shard average would halve it.
TEST(LatencyMergeTest, HeavySlowShardDominatesTail) {
  const std::vector<std::vector<double>> reservoirs = {
      Repeat(1.0, 500), Repeat(100.0, 500)};
  const LatencyPercentiles pooled = MergeLatencyPercentiles(reservoirs);
  EXPECT_EQ(pooled.p50_ms, 1.0);  // index floor(0.5 * 999) = 499, fast half
  EXPECT_EQ(pooled.p99_ms, 100.0);
  EXPECT_NE(pooled.p99_ms, (1.0 + 100.0) / 2);
}

/// Order independence: the pool is sorted, so shard enumeration order
/// cannot change the answer.
TEST(LatencyMergeTest, ShardOrderIrrelevant) {
  const std::vector<double> fast = Repeat(2.0, 300);
  const std::vector<double> slow = Repeat(40.0, 30);
  const LatencyPercentiles ab = MergeLatencyPercentiles({fast, slow});
  const LatencyPercentiles ba = MergeLatencyPercentiles({slow, fast});
  EXPECT_EQ(ab.p50_ms, ba.p50_ms);
  EXPECT_EQ(ab.p99_ms, ba.p99_ms);
}

/// Feeds each reservoir into its own histogram (one per shard, like the
/// registry's ustdb_service_request_latency_seconds points), merges, and
/// checks the merged percentiles against (a) a pooled-oracle histogram
/// that observed every sample directly — must be identical — and (b) the
/// true sample percentile — conservative by at most one log2 bucket.
void ExpectMergedMatchesPool(
    const std::vector<std::vector<double>>& reservoirs) {
  std::vector<obs::HistogramData> parts;
  obs::Histogram pooled_oracle;
  std::vector<double> all;
  for (const std::vector<double>& reservoir : reservoirs) {
    obs::Histogram shard_histogram;
    for (double v : reservoir) {
      shard_histogram.Observe(v);
      pooled_oracle.Observe(v);
      all.push_back(v);
    }
    parts.push_back(shard_histogram.Snapshot());
  }
  const obs::HistogramData merged = obs::MergeHistograms(parts);
  const obs::HistogramData oracle = pooled_oracle.Snapshot();
  ASSERT_EQ(merged.count, oracle.count);
  ASSERT_EQ(merged.buckets, oracle.buckets);

  std::sort(all.begin(), all.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const double from_merge = obs::PercentileFromBuckets(merged, q);
    EXPECT_EQ(from_merge, obs::PercentileFromBuckets(oracle, q)) << q;
    const double exact = all[static_cast<size_t>(q * (all.size() - 1))];
    EXPECT_GE(from_merge, exact) << q;
    EXPECT_LE(from_merge, exact * 2.0 + 1e-12) << q;
  }
}

TEST(LatencyMergeTest, HistogramMergeMatchesPooledOracleRareSlowShard) {
  ExpectMergedMatchesPool({Repeat(0.001, 2000), Repeat(0.1, 10)});
}

TEST(LatencyMergeTest, HistogramMergeMatchesPooledOracleHeavySlowShard) {
  ExpectMergedMatchesPool({Repeat(0.001, 500), Repeat(0.1, 500)});
}

TEST(LatencyMergeTest, HistogramMergeMatchesPooledOracleSpreadSamples) {
  std::vector<double> a;
  std::vector<double> b;
  std::vector<double> c;
  for (int i = 1; i <= 300; ++i) {
    a.push_back(1e-4 * i);        // 0.1ms .. 30ms
    b.push_back(2e-3 * i);        // 2ms .. 600ms
    if (i % 3 == 0) c.push_back(5e-2 * i);  // sparse slow shard
  }
  ExpectMergedMatchesPool({a, b, c});
}

}  // namespace
}  // namespace service
}  // namespace ustdb
