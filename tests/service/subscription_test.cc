// Standing queries: Subscribe/RefreshSubscriptions delivers answer-set
// deltas (entered / left / changed) with gap-free monotonic sequence
// numbers; reconstructing the answer set from the delta stream is
// bit-identical to a one-shot Submit() of the same request at the same
// epoch — proven at 1, 2, and 4 shards; ingest marks exactly the affected
// subscriptions dirty; window ticks slide windows (and hit the engine
// cache's shift-extension path); refresh rounds coalesce through one
// burst; cancellation stops delivery; failed refreshes never consume a
// sequence number.

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/database.h"
#include "core/query_request.h"
#include "core/query_window.h"
#include "core/shard_router.h"
#include "service/query_service.h"
#include "sparse/prob_vector.h"
#include "testing/random_models.h"
#include "testing/sharded_fixture.h"
#include "testing/test_seed.h"
#include "util/rng.h"

namespace ustdb {
namespace service {
namespace {

using ::ustdb::testing::MakeShardedPair;
using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;
using ::ustdb::testing::ShardedPair;
using ::ustdb::testing::ShardedSpec;

constexpr auto kGetTimeout = std::chrono::milliseconds(60'000);
constexpr uint32_t kStates = 24;

/// Unsharded monitoring fixture: one chain, `num_objects` objects at t=0.
struct Monitor {
  core::Database db;
  ChainId chain = 0;
  util::Rng rng;

  explicit Monitor(uint64_t seed, uint32_t num_objects = 12) : rng(seed) {
    chain = db.AddChain(RandomChain(kStates, 3, &rng));
    for (uint32_t i = 0; i < num_objects; ++i) {
      (void)db.AddObjectAt(chain, RandomDistribution(kStates, 3, &rng))
          .ValueOrDie();
    }
  }

  // Full-support observations: always consistent with the possible
  // worlds, so standing-query refreshes never fail on reachability.
  core::Observation NextObs(Timestamp t) {
    return {t, RandomDistribution(kStates, kStates, &rng)};
  }
};

core::QueryRequest ThresholdRequest(double tau = 0.1) {
  core::QueryRequest request;
  request.predicate = core::PredicateKind::kThresholdExists;
  request.tau = tau;
  request.window =
      core::QueryWindow::FromRanges(kStates, 4, 11, 1, 5).ValueOrDie();
  return request;
}

/// Applies one delta to a reconstructed answer set.
void Apply(std::map<ObjectId, double>* mirror,
           const SubscriptionDelta& delta) {
  for (ObjectId id : delta.left) mirror->erase(id);
  for (const core::ObjectProbability& p : delta.entered) {
    (*mirror)[p.id] = p.probability;
  }
  for (const core::ObjectProbability& p : delta.changed) {
    (*mirror)[p.id] = p.probability;
  }
}

/// The reconstructed set must equal the one-shot answer bit-for-bit.
void ExpectMirrorsOneShot(const std::map<ObjectId, double>& mirror,
                          const core::QueryResult& one_shot) {
  std::vector<core::ObjectProbability> want = one_shot.probabilities;
  std::sort(want.begin(), want.end(),
            [](const core::ObjectProbability& a,
               const core::ObjectProbability& b) { return a.id < b.id; });
  ASSERT_EQ(mirror.size(), want.size());
  auto it = mirror.begin();
  for (size_t i = 0; i < want.size(); ++i, ++it) {
    EXPECT_EQ(it->first, want[i].id);
    EXPECT_EQ(it->second, want[i].probability)
        << "reconstructed probability drift for object " << want[i].id;
  }
}

util::Result<core::QueryResult> OneShot(QueryService* service,
                                        core::QueryRequest request) {
  QueryTicket ticket = service->Submit(std::move(request));
  EXPECT_TRUE(ticket.WaitFor(kGetTimeout));
  return ticket.Get();
}

TEST(SubscriptionTest, RejectsKTimesAndNullCallback) {
  Monitor m(ustdb::testing::TestSeed(901));
  QueryService service(&m.db);

  core::QueryRequest ktimes;
  ktimes.predicate = core::PredicateKind::kKTimes;
  ktimes.window =
      core::QueryWindow::FromRanges(kStates, 4, 11, 1, 5).ValueOrDie();
  const auto rejected = service.Subscribe(
      std::move(ktimes), WindowPolicy{}, [](const SubscriptionDelta&) {});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kInvalidArgument);

  const auto null_cb =
      service.Subscribe(ThresholdRequest(), WindowPolicy{}, nullptr);
  ASSERT_FALSE(null_cb.ok());
  EXPECT_EQ(null_cb.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(service.num_subscriptions(), 0u);
}

TEST(SubscriptionTest, FirstDeliveryReportsFullAnswerAsEntered) {
  const uint64_t seed = ustdb::testing::TestSeed(902);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  Monitor m(seed);
  QueryService service(&m.db);

  std::vector<SubscriptionDelta> deltas;
  // Pinned window: this test never ticks.
  auto sub = service.Subscribe(
      ThresholdRequest(), WindowPolicy{.slide = 0},
      [&](const SubscriptionDelta& d) { deltas.push_back(d); });
  ASSERT_TRUE(sub.ok()) << sub.status();
  EXPECT_EQ(service.num_subscriptions(), 1u);

  ASSERT_EQ(service.RefreshSubscriptions(), 1u);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].subscription_id, sub.value().id());
  EXPECT_EQ(deltas[0].sequence, 1u);
  EXPECT_EQ(deltas[0].epoch, 0u);  // frozen database
  EXPECT_TRUE(deltas[0].left.empty());
  EXPECT_TRUE(deltas[0].changed.empty());
  EXPECT_EQ(sub.value().last_sequence(), 1u);

  const auto one_shot = OneShot(&service, ThresholdRequest());
  ASSERT_TRUE(one_shot.ok());
  std::map<ObjectId, double> mirror;
  Apply(&mirror, deltas[0]);
  ExpectMirrorsOneShot(mirror, one_shot.value());
  ASSERT_FALSE(mirror.empty()) << "fixture answered nothing; test is vacuous";

  // Nothing dirty: a second round is a no-op and consumes no sequence.
  EXPECT_EQ(service.RefreshSubscriptions(), 0u);
  EXPECT_EQ(sub.value().last_sequence(), 1u);
}

TEST(SubscriptionTest, IngestMarksDirtyAndDeltasTrackChanges) {
  const uint64_t seed = ustdb::testing::TestSeed(903);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  Monitor m(seed);
  QueryService service(&m.db);

  std::vector<SubscriptionDelta> deltas;
  auto sub = service.Subscribe(
      ThresholdRequest(), WindowPolicy{.slide = 0},
      [&](const SubscriptionDelta& d) { deltas.push_back(d); });
  ASSERT_TRUE(sub.ok());
  ASSERT_EQ(service.RefreshSubscriptions(), 1u);

  std::map<ObjectId, double> mirror;
  Apply(&mirror, deltas[0]);

  // Each append dirties the subscription; each refresh delivers the next
  // consecutive sequence and keeps the mirror in lockstep with a one-shot.
  for (int round = 0; round < 4; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    ASSERT_TRUE(
        service
            .AppendObservation(static_cast<ObjectId>(round),
                               m.NextObs(Timestamp(1 + round)))
            .ok());
    ASSERT_EQ(service.RefreshSubscriptions(), 1u);
    const SubscriptionDelta& last = deltas.back();
    EXPECT_EQ(last.sequence, static_cast<uint64_t>(round) + 2);
    EXPECT_EQ(last.epoch, m.db.data_version());
    Apply(&mirror, last);
    const auto one_shot = OneShot(&service, ThresholdRequest());
    ASSERT_TRUE(one_shot.ok());
    ExpectMirrorsOneShot(mirror, one_shot.value());
  }
}

TEST(SubscriptionTest, FilterMissDoesNotDirty) {
  const uint64_t seed = ustdb::testing::TestSeed(904);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  Monitor m(seed);
  QueryService service(&m.db);

  core::QueryRequest filtered = ThresholdRequest();
  filtered.object_filter = std::vector<ObjectId>{0, 2};
  size_t delivered_to_me = 0;
  auto sub = service.Subscribe(
      std::move(filtered), WindowPolicy{.slide = 0},
      [&](const SubscriptionDelta&) { ++delivered_to_me; });
  ASSERT_TRUE(sub.ok());
  ASSERT_EQ(service.RefreshSubscriptions(), 1u);

  // An append outside the filter leaves the subscription clean.
  ASSERT_TRUE(service.AppendObservation(5, m.NextObs(1)).ok());
  EXPECT_EQ(service.RefreshSubscriptions(), 0u);
  // One inside dirties it.
  ASSERT_TRUE(service.AppendObservation(2, m.NextObs(1)).ok());
  EXPECT_EQ(service.RefreshSubscriptions(), 1u);
  EXPECT_EQ(delivered_to_me, 2u);
}

TEST(SubscriptionTest, RefreshOnIngestFalseRefreshesOnTicksOnly) {
  const uint64_t seed = ustdb::testing::TestSeed(905);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  Monitor m(seed);
  QueryService service(&m.db);

  auto sub = service.Subscribe(ThresholdRequest(),
                               WindowPolicy{.refresh_on_ingest = false},
                               [](const SubscriptionDelta&) {});
  ASSERT_TRUE(sub.ok());
  ASSERT_EQ(service.RefreshSubscriptions(), 1u);

  ASSERT_TRUE(service.AppendObservation(0, m.NextObs(1)).ok());
  EXPECT_EQ(service.RefreshSubscriptions(), 0u);
  service.TickWindows();
  EXPECT_EQ(service.RefreshSubscriptions(), 1u);
}

TEST(SubscriptionTest, PinnedWindowIgnoresTicks) {
  const uint64_t seed = ustdb::testing::TestSeed(906);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  Monitor m(seed);
  QueryService service(&m.db);

  auto sub = service.Subscribe(ThresholdRequest(), WindowPolicy{.slide = 0},
                               [](const SubscriptionDelta&) {});
  ASSERT_TRUE(sub.ok());
  ASSERT_EQ(service.RefreshSubscriptions(), 1u);
  service.TickWindows(3);
  EXPECT_EQ(service.RefreshSubscriptions(), 0u);
  EXPECT_EQ(sub.value().last_sequence(), 1u);
}

TEST(SubscriptionTest, CancelStopsDeliveryAndFreesTheSlot) {
  const uint64_t seed = ustdb::testing::TestSeed(907);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  Monitor m(seed);
  QueryService service(&m.db);

  size_t a_count = 0;
  size_t b_count = 0;
  auto a = service.Subscribe(ThresholdRequest(), WindowPolicy{.slide = 0},
                             [&](const SubscriptionDelta&) { ++a_count; });
  auto b = service.Subscribe(ThresholdRequest(), WindowPolicy{.slide = 0},
                             [&](const SubscriptionDelta&) { ++b_count; });
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(service.num_subscriptions(), 2u);
  ASSERT_EQ(service.RefreshSubscriptions(), 2u);

  a.value().Cancel();
  EXPECT_TRUE(a.value().cancelled());
  EXPECT_EQ(service.num_subscriptions(), 1u);

  ASSERT_TRUE(service.AppendObservation(0, m.NextObs(1)).ok());
  EXPECT_EQ(service.RefreshSubscriptions(), 1u);
  EXPECT_EQ(a_count, 1u);
  EXPECT_EQ(b_count, 2u);
  EXPECT_EQ(service.stats().subscriptions_active, 1u);
  // Idempotent.
  a.value().Cancel();
  EXPECT_EQ(service.num_subscriptions(), 1u);
}

TEST(SubscriptionTest, FailedRefreshKeepsSequencesGapFree) {
  const uint64_t seed = ustdb::testing::TestSeed(908);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  Monitor m(seed, /*num_objects=*/8);
  QueryService service(&m.db);

  // A request the executor deterministically rejects (out-of-range
  // filter id): every refresh of this subscription fails, so it stays
  // dirty and its sequence never advances — no delivered gap.
  core::QueryRequest broken = ThresholdRequest();
  broken.object_filter = std::vector<ObjectId>{0, 100};
  size_t broken_count = 0;
  auto bad = service.Subscribe(
      std::move(broken), WindowPolicy{.slide = 0},
      [&](const SubscriptionDelta&) { ++broken_count; });
  ASSERT_TRUE(bad.ok());
  size_t good_count = 0;
  uint64_t good_last_seq = 0;
  auto good = service.Subscribe(ThresholdRequest(), WindowPolicy{.slide = 0},
                                [&](const SubscriptionDelta& d) {
                                  ++good_count;
                                  EXPECT_EQ(d.sequence, good_last_seq + 1);
                                  good_last_seq = d.sequence;
                                });
  ASSERT_TRUE(good.ok());

  // The failing member never poisons the round: the healthy subscription
  // delivers consecutive sequences while the broken one stays at 0.
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(
        service.AppendObservation(0, m.NextObs(Timestamp(1 + round))).ok());
    EXPECT_EQ(service.RefreshSubscriptions(), 1u);
  }
  EXPECT_EQ(broken_count, 0u);
  EXPECT_EQ(bad.value().last_sequence(), 0u);
  EXPECT_EQ(good_count, 3u);
  EXPECT_EQ(good.value().last_sequence(), 3u);
}

TEST(SubscriptionTest, SlidingWindowsHitTheShiftExtensionPath) {
  const uint64_t seed = ustdb::testing::TestSeed(909);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  Monitor m(seed);
  QueryService service(&m.db);

  core::QueryRequest request;
  request.predicate = core::PredicateKind::kExists;
  request.plan = core::PlanChoice::kQueryBased;
  request.window =
      core::QueryWindow::FromRanges(kStates, 4, 11, 2, 6).ValueOrDie();

  std::vector<SubscriptionDelta> deltas;
  auto sub = service.Subscribe(
      core::QueryRequest(request), WindowPolicy{.slide = 1},
      [&](const SubscriptionDelta& d) { deltas.push_back(d); });
  ASSERT_TRUE(sub.ok());
  ASSERT_EQ(service.RefreshSubscriptions(), 1u);

  for (Timestamp tick = 1; tick <= 3; ++tick) {
    SCOPED_TRACE("tick " + std::to_string(tick));
    service.TickWindows();
    ASSERT_EQ(service.RefreshSubscriptions(), 1u);
    // Reconstruction parity against a one-shot of the slid request.
    std::map<ObjectId, double> mirror;
    for (const SubscriptionDelta& d : deltas) Apply(&mirror, d);
    core::QueryRequest slid = request;
    slid.window = request.window.ShiftedBy(tick);
    const auto one_shot = OneShot(&service, std::move(slid));
    ASSERT_TRUE(one_shot.ok());
    ExpectMirrorsOneShot(mirror, one_shot.value());
  }
  // The slid refreshes extended memoized passes instead of rebuilding.
  EXPECT_GE(service.stats().cache.shift_extends, 3u);
}

TEST(SubscriptionTest, RefreshRoundCoalescesThroughOneBurst) {
  const uint64_t seed = ustdb::testing::TestSeed(910);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  Monitor m(seed, /*num_objects=*/24);
  QueryService service(&m.db);

  constexpr size_t kSubs = 6;
  size_t delivered = 0;
  for (size_t i = 0; i < kSubs; ++i) {
    ASSERT_TRUE(service
                    .Subscribe(ThresholdRequest(0.05 + 0.02 * i),
                               WindowPolicy{.slide = 0},
                               [&](const SubscriptionDelta&) { ++delivered; })
                    .ok());
  }
  ASSERT_EQ(service.RefreshSubscriptions(), kSubs);
  EXPECT_EQ(delivered, kSubs);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.subscription_refreshes, 1u);
  EXPECT_EQ(stats.subscription_deltas, kSubs);
  // One burst, same window: the whole round coalesced into shared
  // RunBatch dispatches instead of six solo runs.
  EXPECT_GE(stats.coalesced_batches, 1u);
  EXPECT_GE(stats.coalesced_requests, kSubs);
  EXPECT_EQ(stats.solo_dispatches, 0u);
}

class SubscriptionShardParityTest
    : public ::testing::TestWithParam<uint32_t> {};

/// Randomized soak at every shard count: appends, ticks, and refreshes
/// interleave; after every refresh each subscription's reconstructed
/// answer set must be bit-identical to a one-shot Submit() of its current
/// request, and sequences stay consecutive.
TEST_P(SubscriptionShardParityTest, RefreshMatchesOneShot) {
  const uint64_t seed = ustdb::testing::TestSeed(660);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  SCOPED_TRACE("shards=" + std::to_string(GetParam()));
  ShardedSpec spec;
  spec.seed = seed;
  spec.num_objects = 72;
  ShardedPair pair = MakeShardedPair(spec, GetParam());

  ServiceOptions options;
  options.executor.num_threads = 2;
  QueryService service(&pair.sharded, options);

  struct Standing {
    core::QueryRequest base;  // window at subscription time
    Subscription handle;
    std::map<ObjectId, double> mirror;
    uint64_t last_seq = 0;
    Timestamp slid = 0;
  };
  auto standing = std::make_shared<std::vector<Standing>>();
  standing->reserve(3);

  auto subscribe = [&](core::QueryRequest request, Timestamp slide) {
    const size_t index = standing->size();
    standing->push_back({});
    (*standing)[index].base = request;
    auto sub = service.Subscribe(
        std::move(request), WindowPolicy{.slide = slide},
        [standing, index](const SubscriptionDelta& d) {
          Standing& s = (*standing)[index];
          EXPECT_EQ(d.sequence, s.last_seq + 1) << "sequence gap";
          s.last_seq = d.sequence;
          Apply(&s.mirror, d);
        });
    ASSERT_TRUE(sub.ok()) << sub.status();
    (*standing)[index].handle = sub.value();
  };

  core::QueryRequest threshold;
  threshold.predicate = core::PredicateKind::kThresholdExists;
  threshold.tau = 0.15;
  threshold.window =
      core::QueryWindow::FromRanges(spec.num_states, 4, 12, 1, 5)
          .ValueOrDie();
  subscribe(std::move(threshold), /*slide=*/1);

  core::QueryRequest exists;
  exists.predicate = core::PredicateKind::kExists;
  exists.window =
      core::QueryWindow::FromRanges(spec.num_states, 8, 16, 2, 6)
          .ValueOrDie();
  subscribe(std::move(exists), /*slide=*/0);

  core::QueryRequest topk;
  topk.predicate = core::PredicateKind::kTopKExists;
  topk.k = 10;
  topk.window =
      core::QueryWindow::FromRanges(spec.num_states, 2, 9, 1, 4)
          .ValueOrDie();
  subscribe(std::move(topk), /*slide=*/1);

  util::Rng rng(seed ^ 0x5B5);
  std::vector<Timestamp> next_time(spec.num_objects, 1);
  for (int round = 0; round < 15; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    // 1-3 appends.
    const int appends = 1 + static_cast<int>(rng.NextBounded(3));
    for (int i = 0; i < appends; ++i) {
      const ObjectId id =
          static_cast<ObjectId>(rng.NextBounded(spec.num_objects));
      core::Observation obs{
          next_time[id],
          RandomDistribution(spec.num_states, spec.num_states, &rng)};
      next_time[id] += 1 + rng.NextBounded(3);
      ASSERT_TRUE(service.AppendObservation(id, std::move(obs)).ok());
    }
    if (rng.NextBounded(3) == 0) {
      service.TickWindows();
      for (Standing& s : *standing) ++s.slid;  // slide=0 subs ignore it
    }
    ASSERT_EQ(service.RefreshSubscriptions(), standing->size());

    for (size_t i = 0; i < standing->size(); ++i) {
      SCOPED_TRACE("subscription " + std::to_string(i));
      Standing& s = (*standing)[i];
      core::QueryRequest current = s.base;
      const Timestamp slide =
          i == 1 ? 0 : s.slid;  // the exists sub is pinned
      if (slide > 0) current.window = s.base.window.ShiftedBy(slide);
      const auto one_shot = OneShot(&service, std::move(current));
      ASSERT_TRUE(one_shot.ok()) << one_shot.status();
      ExpectMirrorsOneShot(s.mirror, one_shot.value());
      // Unfiltered standing queries span every shard, so the delta's
      // epoch is the global data version at refresh time.
      EXPECT_EQ(s.last_seq, static_cast<uint64_t>(round) + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, SubscriptionShardParityTest,
                         ::testing::Values(1u, 2u, 4u));

}  // namespace
}  // namespace service
}  // namespace ustdb
