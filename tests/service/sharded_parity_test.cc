// Sharding parity: randomized mixed workloads (exists / threshold / top-k
// / k-times / for-all, solo and burst, filtered and unfiltered, contiguous
// and gap windows) answered by a sharded QueryService at 2/4/8 shards must
// be BIT-identical to the legacy single-executor service over the twin
// unsharded Database — payloads, plan decisions (chains_object_based /
// chains_query_based mirror the per-chain choices; the threshold bound
// decision is made globally by the router), and PruneStats, which must
// also satisfy the Section V-C accounting invariants. The whole sweep runs
// under the default kernel ISA and again forced to baseline, proving the
// router layer is ISA-independent.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/executor.h"
#include "core/query_request.h"
#include "core/query_window.h"
#include "kernels/isa.h"
#include "service/query_service.h"
#include "testing/sharded_fixture.h"
#include "testing/test_seed.h"
#include "util/rng.h"

namespace ustdb {
namespace service {
namespace {

using ::ustdb::testing::MakeShardedPair;
using ::ustdb::testing::ShardedPair;
using ::ustdb::testing::ShardedSpec;

constexpr auto kGetTimeout = std::chrono::milliseconds(60'000);

/// One random request over `spec`'s domain: any predicate, a contiguous
/// or gap time set, optionally an object filter (unsorted, possibly with
/// duplicates — the executor accepts both), and for thresholds a random
/// plan directive including forced kBoundsThenRefine.
core::QueryRequest RandomRequest(const ShardedSpec& spec, util::Rng* rng) {
  core::QueryRequest request;
  switch (rng->NextBounded(5)) {
    case 0:
      request.predicate = core::PredicateKind::kExists;
      break;
    case 1:
      request.predicate = core::PredicateKind::kForAll;
      break;
    case 2:
      request.predicate = core::PredicateKind::kThresholdExists;
      request.tau = 0.05 + 0.5 * rng->NextDouble();
      if (rng->NextBounded(3) == 0) {
        request.plan = core::PlanChoice::kBoundsThenRefine;
      }
      break;
    case 3:
      request.predicate = core::PredicateKind::kTopKExists;
      request.k = 1 + rng->NextBounded(12);
      break;
    default:
      request.predicate = core::PredicateKind::kKTimes;
      break;
  }

  const uint32_t n = spec.num_states;
  const uint32_t s_lo = static_cast<uint32_t>(rng->NextBounded(n - 4));
  const uint32_t s_hi = s_lo + 1 + static_cast<uint32_t>(rng->NextBounded(6));
  const Timestamp t_lo = 1 + static_cast<Timestamp>(rng->NextBounded(4));
  const Timestamp t_hi =
      t_lo + 1 + static_cast<Timestamp>(rng->NextBounded(5));
  if (rng->NextBounded(4) == 0) {
    // Gap time set: drop an interior timestamp, defeating the bound-plan
    // eligibility gate on both pipelines.
    std::vector<Timestamp> times;
    for (Timestamp t = t_lo; t <= t_hi + 1; ++t) {
      if (t != t_lo + 1) times.push_back(t);
    }
    request.window =
        core::QueryWindow::Create(
            sparse::IndexSet::FromRange(n, s_lo, std::min(s_hi, n - 1))
                .ValueOrDie(),
            std::move(times))
            .ValueOrDie();
  } else {
    request.window = core::QueryWindow::FromRanges(
                         n, s_lo, std::min(s_hi, n - 1), t_lo, t_hi)
                         .ValueOrDie();
  }

  if (rng->NextBounded(3) == 0) {
    std::vector<ObjectId> filter;
    const uint32_t count =
        1 + static_cast<uint32_t>(rng->NextBounded(spec.num_objects / 2));
    for (uint32_t i = 0; i < count; ++i) {
      filter.push_back(
          static_cast<ObjectId>(rng->NextBounded(spec.num_objects)));
    }
    request.object_filter = std::move(filter);
  }
  return request;
}

void ExpectPruneInvariants(const core::PruneStats& prune) {
  EXPECT_EQ(prune.clusters_pruned + prune.clusters_refined,
            prune.clusters_bounded);
  EXPECT_LE(prune.clusters_bounded, prune.clusters_total);
}

/// Bit-exact comparison of two results: payloads, plan counters, and
/// prune accounting. Thread counts and cache traffic are intentionally
/// excluded — they describe the engine topology (pool slices, per-shard
/// caches), not the answer.
void ExpectSameResult(const core::QueryResult& sharded,
                      const core::QueryResult& legacy) {
  ASSERT_EQ(sharded.probabilities.size(), legacy.probabilities.size());
  for (size_t i = 0; i < legacy.probabilities.size(); ++i) {
    EXPECT_EQ(sharded.probabilities[i].id, legacy.probabilities[i].id);
    EXPECT_EQ(sharded.probabilities[i].probability,
              legacy.probabilities[i].probability)
        << "probability drift at entry " << i;
  }
  ASSERT_EQ(sharded.distributions.size(), legacy.distributions.size());
  for (size_t i = 0; i < legacy.distributions.size(); ++i) {
    EXPECT_EQ(sharded.distributions[i].id, legacy.distributions[i].id);
    EXPECT_EQ(sharded.distributions[i].distribution,
              legacy.distributions[i].distribution)
        << "k-times distribution drift at entry " << i;
  }
  EXPECT_EQ(sharded.stats.chains_object_based,
            legacy.stats.chains_object_based);
  EXPECT_EQ(sharded.stats.chains_query_based,
            legacy.stats.chains_query_based);
  EXPECT_EQ(sharded.stats.objects_evaluated, legacy.stats.objects_evaluated);
  EXPECT_EQ(sharded.stats.objects_multi_observation,
            legacy.stats.objects_multi_observation);
  EXPECT_EQ(sharded.stats.prune.clusters_total,
            legacy.stats.prune.clusters_total);
  EXPECT_EQ(sharded.stats.prune.clusters_bounded,
            legacy.stats.prune.clusters_bounded);
  EXPECT_EQ(sharded.stats.prune.clusters_pruned,
            legacy.stats.prune.clusters_pruned);
  EXPECT_EQ(sharded.stats.prune.clusters_refined,
            legacy.stats.prune.clusters_refined);
  EXPECT_EQ(sharded.stats.prune.objects_decided_by_bounds,
            legacy.stats.prune.objects_decided_by_bounds);
  EXPECT_EQ(sharded.stats.prune.objects_refined,
            legacy.stats.prune.objects_refined);
  EXPECT_EQ(sharded.stats.prune.bound_fallbacks,
            legacy.stats.prune.bound_fallbacks);
  ExpectPruneInvariants(sharded.stats.prune);
  ExpectPruneInvariants(legacy.stats.prune);
}

util::Result<core::QueryResult> GetWithin(QueryTicket* ticket) {
  EXPECT_TRUE(ticket->WaitFor(kGetTimeout)) << "ticket never resolved";
  return ticket->Get();
}

/// Runs the sweep at one shard count: `rounds` random requests solo, then
/// the same stream again as bursts, against both services.
void RunParitySweep(uint32_t num_shards, uint64_t seed, int rounds) {
  SCOPED_TRACE("shards=" + std::to_string(num_shards));
  ShardedSpec spec;
  spec.seed = seed;
  spec.num_families = 4;
  spec.chains_per_family = 2;
  spec.num_objects = 96;
  ShardedPair pair = MakeShardedPair(spec, num_shards);

  ServiceOptions options;
  options.executor.num_threads = 2;
  QueryService legacy(&pair.unsharded, options);
  QueryService sharded(&pair.sharded, options);
  ASSERT_EQ(sharded.num_shards(), num_shards);

  util::Rng rng(seed ^ 0x5AD5AD);
  std::vector<core::QueryRequest> stream;
  for (int round = 0; round < rounds; ++round) {
    stream.push_back(RandomRequest(spec, &rng));
  }

  for (int round = 0; round < rounds; ++round) {
    SCOPED_TRACE("solo round " + std::to_string(round));
    QueryTicket a = sharded.Submit(stream[round]);
    QueryTicket b = legacy.Submit(stream[round]);
    const auto ra = GetWithin(&a);
    const auto rb = GetWithin(&b);
    ASSERT_EQ(ra.ok(), rb.ok()) << ra.status() << " vs " << rb.status();
    if (ra.ok()) ExpectSameResult(ra.value(), rb.value());
  }

  // Same stream as one burst per service: coalesced per-shard RunBatch
  // dispatch must not change a single bit either.
  std::vector<QueryTicket> burst_a =
      sharded.SubmitBurst(std::vector<core::QueryRequest>(stream));
  std::vector<QueryTicket> burst_b =
      legacy.SubmitBurst(std::vector<core::QueryRequest>(stream));
  for (int round = 0; round < rounds; ++round) {
    SCOPED_TRACE("burst round " + std::to_string(round));
    const auto ra = GetWithin(&burst_a[round]);
    const auto rb = GetWithin(&burst_b[round]);
    ASSERT_EQ(ra.ok(), rb.ok()) << ra.status() << " vs " << rb.status();
    if (ra.ok()) ExpectSameResult(ra.value(), rb.value());
  }
}

class ShardedParityTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ShardedParityTest, MixedWorkloadBitIdentical) {
  const uint64_t seed = ustdb::testing::TestSeed(640);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  RunParitySweep(GetParam(), seed, /*rounds=*/40);
}

TEST_P(ShardedParityTest, MixedWorkloadBitIdenticalBaselineIsa) {
  const uint64_t seed = ustdb::testing::TestSeed(641);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  const kernels::Isa saved = kernels::ActiveIsa();
  ASSERT_TRUE(kernels::SetActiveIsa(kernels::Isa::kBaseline));
  RunParitySweep(GetParam(), seed, /*rounds=*/25);
  kernels::SetActiveIsa(saved);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedParityTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

/// A sharded database that has REBALANCED must still answer bit-identically
/// — migrated objects keep their exact pdf bits and their global ids.
TEST(ShardedParityRebalanceTest, ParityHoldsAfterMigration) {
  const uint64_t seed = ustdb::testing::TestSeed(642);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  ShardedSpec spec;
  spec.seed = seed;
  spec.num_families = 5;
  spec.chains_per_family = 1;
  spec.num_objects = 150;
  ShardedPair pair = MakeShardedPair(spec, 2);
  ASSERT_GT(pair.sharded.rebalances(), 0u)
      << "fixture never migrated; parity-after-rebalance not exercised";

  ServiceOptions options;
  options.executor.num_threads = 1;
  QueryService legacy(&pair.unsharded, options);
  QueryService sharded(&pair.sharded, options);
  util::Rng rng(seed ^ 0x4EB);
  for (int round = 0; round < 20; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const core::QueryRequest request = RandomRequest(spec, &rng);
    QueryTicket a = sharded.Submit(request);
    QueryTicket b = legacy.Submit(request);
    const auto ra = GetWithin(&a);
    const auto rb = GetWithin(&b);
    ASSERT_EQ(ra.ok(), rb.ok()) << ra.status() << " vs " << rb.status();
    if (ra.ok()) ExpectSameResult(ra.value(), rb.value());
  }
}

/// Errors route identically: an out-of-range filter id resolves
/// kInvalidArgument on both services (the sharded one rejects at
/// submission, the legacy one at dispatch — same status, same message).
TEST(ShardedParityErrorTest, InvalidFilterSameStatus) {
  ShardedSpec spec;
  ShardedPair pair = MakeShardedPair(spec, 4);
  QueryService legacy(&pair.unsharded);
  QueryService sharded(&pair.sharded);

  core::QueryRequest request;
  request.predicate = core::PredicateKind::kExists;
  request.window =
      core::QueryWindow::FromRanges(spec.num_states, 2, 8, 2, 5).ValueOrDie();
  request.object_filter = std::vector<ObjectId>{0, spec.num_objects + 7};

  QueryTicket a = sharded.Submit(core::QueryRequest(request));
  QueryTicket b = legacy.Submit(core::QueryRequest(request));
  const auto ra = GetWithin(&a);
  const auto rb = GetWithin(&b);
  ASSERT_FALSE(ra.ok());
  ASSERT_FALSE(rb.ok());
  EXPECT_EQ(ra.status().code(), rb.status().code());
  EXPECT_EQ(ra.status().message(), rb.status().message());
}

}  // namespace
}  // namespace service
}  // namespace ustdb
