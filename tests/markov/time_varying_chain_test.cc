#include "markov/time_varying_chain.h"

#include <gtest/gtest.h>

#include "testing/random_models.h"
#include "util/rng.h"

namespace ustdb {
namespace markov {
namespace {

using ::ustdb::testing::PaperChainV;
using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

TEST(TimeVaryingChainTest, FromPhasesValidates) {
  EXPECT_FALSE(TimeVaryingChain::FromPhases({}).ok());

  util::Rng rng(1);
  std::vector<MarkovChain> mismatched;
  mismatched.push_back(RandomChain(4, 2, &rng));
  mismatched.push_back(RandomChain(5, 2, &rng));
  EXPECT_FALSE(TimeVaryingChain::FromPhases(std::move(mismatched)).ok());
}

TEST(TimeVaryingChainTest, PeriodOneEqualsHomogeneous) {
  TimeVaryingChain tv = TimeVaryingChain::FromHomogeneous(PaperChainV());
  EXPECT_EQ(tv.period(), 1u);
  EXPECT_EQ(tv.num_states(), 3u);
  for (Timestamp t : {0u, 1u, 7u, 100u}) {
    EXPECT_EQ(&tv.PhaseAt(t), &tv.phases()[0]);
  }
  // Distributions agree with the homogeneous chain at every step count.
  MarkovChain homogeneous = PaperChainV();
  const sparse::ProbVector initial = sparse::ProbVector::Delta(3, 1);
  for (uint32_t steps : {0u, 1u, 2u, 5u}) {
    const auto a = tv.Distribution(initial, 0, steps);
    const auto b = homogeneous.Distribution(initial, steps);
    EXPECT_NEAR(a.MaxAbsDiff(b), 0.0, 1e-15) << "steps " << steps;
  }
}

TEST(TimeVaryingChainTest, ScheduleCyclesThroughPhases) {
  util::Rng rng(2);
  std::vector<MarkovChain> phases;
  phases.push_back(RandomChain(6, 2, &rng));
  phases.push_back(RandomChain(6, 3, &rng));
  phases.push_back(RandomChain(6, 2, &rng));
  TimeVaryingChain tv =
      TimeVaryingChain::FromPhases(std::move(phases)).ValueOrDie();
  EXPECT_EQ(tv.period(), 3u);
  EXPECT_EQ(&tv.PhaseAt(0), &tv.phases()[0]);
  EXPECT_EQ(&tv.PhaseAt(1), &tv.phases()[1]);
  EXPECT_EQ(&tv.PhaseAt(2), &tv.phases()[2]);
  EXPECT_EQ(&tv.PhaseAt(3), &tv.phases()[0]);
  EXPECT_EQ(&tv.PhaseAt(7), &tv.phases()[1]);
}

TEST(TimeVaryingChainTest, DistributionUsesCorrectPhases) {
  // Two deterministic phases: phase 0 shifts right, phase 1 shifts left.
  auto right = MarkovChain::FromDense({{0, 1, 0}, {0, 0, 1}, {1, 0, 0}})
                   .ValueOrDie();
  auto left = MarkovChain::FromDense({{0, 0, 1}, {1, 0, 0}, {0, 1, 0}})
                  .ValueOrDie();
  std::vector<MarkovChain> phases;
  phases.push_back(std::move(right));
  phases.push_back(std::move(left));
  TimeVaryingChain tv =
      TimeVaryingChain::FromPhases(std::move(phases)).ValueOrDie();

  // From state 0: t0->t1 via right (-> 1), t1->t2 via left (-> 0), etc.
  const sparse::ProbVector d1 =
      tv.Distribution(sparse::ProbVector::Delta(3, 0), 0, 1);
  EXPECT_DOUBLE_EQ(d1.Get(1), 1.0);
  const sparse::ProbVector d2 =
      tv.Distribution(sparse::ProbVector::Delta(3, 0), 0, 2);
  EXPECT_DOUBLE_EQ(d2.Get(0), 1.0);

  // Starting mid-schedule (t_start = 1) the first transition uses phase 1.
  const sparse::ProbVector d1_offset =
      tv.Distribution(sparse::ProbVector::Delta(3, 0), 1, 1);
  EXPECT_DOUBLE_EQ(d1_offset.Get(2), 1.0);
}

TEST(TimeVaryingChainTest, DistributionPreservesMass) {
  util::Rng rng(3);
  std::vector<MarkovChain> phases;
  for (int i = 0; i < 4; ++i) phases.push_back(RandomChain(12, 3, &rng));
  TimeVaryingChain tv =
      TimeVaryingChain::FromPhases(std::move(phases)).ValueOrDie();
  const sparse::ProbVector d =
      tv.Distribution(RandomDistribution(12, 3, &rng), 2, 37);
  EXPECT_NEAR(d.Sum(), 1.0, 1e-9);
}

}  // namespace
}  // namespace markov
}  // namespace ustdb
