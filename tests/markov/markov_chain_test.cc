#include "markov/markov_chain.h"

#include <gtest/gtest.h>

#include "testing/random_models.h"
#include "util/rng.h"

namespace ustdb {
namespace markov {
namespace {

using ::ustdb::testing::PaperChainV;
using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

TEST(MarkovChainTest, FromMatrixValidatesStochasticity) {
  // Row sums != 1 must be rejected (Definition 6's stochastic matrix).
  auto bad = sparse::CsrMatrix::FromTriplets(2, 2, {{0, 0, 0.5}, {1, 1, 1.0}})
                 .ValueOrDie();
  EXPECT_EQ(MarkovChain::FromMatrix(bad).status().code(),
            util::StatusCode::kInconsistent);

  auto rect =
      sparse::CsrMatrix::FromTriplets(2, 3, {{0, 0, 1.0}, {1, 1, 1.0}})
          .ValueOrDie();
  EXPECT_EQ(MarkovChain::FromMatrix(rect).status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST(MarkovChainTest, FromDenseRejectsRagged) {
  EXPECT_FALSE(MarkovChain::FromDense({{1.0}, {0.5, 0.5}}).ok());
}

TEST(MarkovChainTest, Corollary1OneStepPropagation) {
  // P(o, t+1) = P(o, t) · M; paper: from (0,1,0), one step gives
  // (0.6, 0, 0.4).
  MarkovChain chain = PaperChainV();
  sparse::ProbVector dist = sparse::ProbVector::Delta(3, 1);
  sparse::VecMatWorkspace ws;
  chain.Propagate(&dist, &ws);
  EXPECT_NEAR(dist.Get(0), 0.6, 1e-15);
  EXPECT_NEAR(dist.Get(1), 0.0, 1e-15);
  EXPECT_NEAR(dist.Get(2), 0.4, 1e-15);
}

TEST(MarkovChainTest, Corollary2MStepPropagation) {
  // P(o, 2) from (0,1,0) = (0, 0.32, 0.68) — the paper's worked example.
  MarkovChain chain = PaperChainV();
  const sparse::ProbVector d2 =
      chain.Distribution(sparse::ProbVector::Delta(3, 1), 2);
  EXPECT_NEAR(d2.Get(0), 0.0, 1e-12);
  EXPECT_NEAR(d2.Get(1), 0.32, 1e-12);
  EXPECT_NEAR(d2.Get(2), 0.68, 1e-12);
}

TEST(MarkovChainTest, ChapmanKolmogorovMatrixPowerAgreesWithPropagation) {
  // P(o,0)·M^m must equal iterated propagation (Corollary 2 both ways).
  util::Rng rng(77);
  MarkovChain chain = RandomChain(12, 4, &rng);
  const sparse::ProbVector initial = RandomDistribution(12, 3, &rng);
  for (uint32_t m : {0u, 1u, 3u, 7u}) {
    const sparse::CsrMatrix pm = chain.MStepMatrix(m).ValueOrDie();
    sparse::VecMatWorkspace ws;
    sparse::ProbVector via_matrix;
    ws.Multiply(initial, pm, &via_matrix);
    const sparse::ProbVector via_steps = chain.Distribution(initial, m);
    EXPECT_NEAR(via_matrix.MaxAbsDiff(via_steps), 0.0, 1e-12) << "m=" << m;
  }
}

TEST(MarkovChainTest, DistributionStaysNormalized) {
  util::Rng rng(3);
  MarkovChain chain = RandomChain(30, 5, &rng);
  const sparse::ProbVector d =
      chain.Distribution(RandomDistribution(30, 4, &rng), 50);
  EXPECT_NEAR(d.Sum(), 1.0, 1e-9);
}

TEST(MarkovChainTest, TransposedIsCachedAndCorrect) {
  MarkovChain chain = PaperChainV();
  const sparse::CsrMatrix& t1 = chain.transposed();
  const sparse::CsrMatrix& t2 = chain.transposed();
  EXPECT_EQ(&t1, &t2);  // cached, not rebuilt
  EXPECT_DOUBLE_EQ(t1.Get(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(t1.Get(0, 1), 0.6);
}

TEST(MarkovChainTest, ReachableWithinGrowsMonotonically) {
  MarkovChain chain = PaperChainV();
  auto from = sparse::IndexSet::FromIndices(3, {1}).ValueOrDie();
  // s2 -> {s1, s3} -> all three states.
  const auto r0 = chain.ReachableWithin(from, 0);
  EXPECT_EQ(r0.elements(), (std::vector<uint32_t>{1}));
  const auto r1 = chain.ReachableWithin(from, 1);
  EXPECT_EQ(r1.elements(), (std::vector<uint32_t>{0, 1, 2}));
  const auto r9 = chain.ReachableWithin(from, 9);
  EXPECT_EQ(r9.size(), 3u);
}

TEST(MarkovChainTest, ReachableWithinRespectsStructure) {
  // A directed cycle 0 -> 1 -> 2 -> 3 -> 0: k steps reach exactly k+1 nodes.
  auto chain = MarkovChain::FromDense({{0, 1, 0, 0},
                                       {0, 0, 1, 0},
                                       {0, 0, 0, 1},
                                       {1, 0, 0, 0}})
                   .ValueOrDie();
  auto from = sparse::IndexSet::FromIndices(4, {0}).ValueOrDie();
  for (uint32_t k = 0; k < 4; ++k) {
    EXPECT_EQ(chain.ReachableWithin(from, k).size(), k + 1);
  }
}

TEST(MarkovChainTest, MemoryBytesGrowsWithTranspose) {
  MarkovChain chain = PaperChainV();
  const size_t before = chain.MemoryBytes();
  (void)chain.transposed();
  EXPECT_GT(chain.MemoryBytes(), before);
}

}  // namespace
}  // namespace markov
}  // namespace ustdb
