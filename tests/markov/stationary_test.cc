#include "markov/stationary.h"

#include <gtest/gtest.h>

#include "testing/random_models.h"
#include "util/rng.h"

namespace ustdb {
namespace markov {
namespace {

using ::ustdb::testing::RandomChain;

TEST(StationaryTest, TwoStateChainKnownClosedForm) {
  // P(0->1) = a, P(1->0) = b: stationary = (b, a) / (a + b).
  const double a = 0.3;
  const double b = 0.1;
  auto chain =
      MarkovChain::FromDense({{1 - a, a}, {b, 1 - b}}).ValueOrDie();
  const auto pi = StationaryDistribution(chain).ValueOrDie();
  EXPECT_NEAR(pi.Get(0), b / (a + b), 1e-9);
  EXPECT_NEAR(pi.Get(1), a / (a + b), 1e-9);
  EXPECT_LT(StationarityResidual(chain, pi), 1e-9);
}

TEST(StationaryTest, DoublyStochasticChainIsUniform) {
  auto chain = MarkovChain::FromDense({{0.0, 0.5, 0.5},
                                       {0.5, 0.0, 0.5},
                                       {0.5, 0.5, 0.0}})
                   .ValueOrDie();
  const auto pi = StationaryDistribution(chain).ValueOrDie();
  for (uint32_t s = 0; s < 3; ++s) {
    EXPECT_NEAR(pi.Get(s), 1.0 / 3, 1e-9);
  }
}

TEST(StationaryTest, PeriodicChainNeedsDamping) {
  // A two-cycle never converges under plain power iteration from any
  // non-stationary start... but our start IS uniform, which is stationary
  // for the cycle. Use a 3-cycle with a biased start? The uniform start is
  // stationary for any doubly-stochastic chain, so instead test that
  // damping still yields the right answer.
  auto cycle = MarkovChain::FromDense({{0, 1}, {1, 0}}).ValueOrDie();
  StationaryOptions damped;
  damped.damping = 0.85;
  const auto pi = StationaryDistribution(cycle, damped).ValueOrDie();
  EXPECT_NEAR(pi.Get(0), 0.5, 1e-6);
  EXPECT_NEAR(pi.Get(1), 0.5, 1e-6);
}

TEST(StationaryTest, RandomChainsConvergeAndAreFixedPoints) {
  util::Rng rng(5);
  for (int round = 0; round < 10; ++round) {
    MarkovChain chain = RandomChain(20, 4, &rng);
    StationaryOptions options;
    options.damping = 0.9;  // guard against accidental periodicity
    const auto pi = StationaryDistribution(chain, options);
    ASSERT_TRUE(pi.ok()) << "round " << round;
    EXPECT_NEAR(pi->Sum(), 1.0, 1e-9);
    EXPECT_LT(StationarityResidual(chain, *pi), 1e-8) << "round " << round;
  }
}

TEST(StationaryTest, AbsorbingStateCollectsAllMass) {
  // 0 -> 1 -> 2(absorbing): stationary from uniform puts everything at 2.
  auto chain = MarkovChain::FromDense(
                   {{0.5, 0.5, 0.0}, {0.0, 0.5, 0.5}, {0.0, 0.0, 1.0}})
                   .ValueOrDie();
  const auto pi = StationaryDistribution(chain).ValueOrDie();
  EXPECT_NEAR(pi.Get(2), 1.0, 1e-9);
}

TEST(StationaryTest, OptionValidation) {
  auto chain = MarkovChain::FromDense({{1.0}}).ValueOrDie();
  StationaryOptions bad;
  bad.damping = 0.0;
  EXPECT_FALSE(StationaryDistribution(chain, bad).ok());
  bad = StationaryOptions{};
  bad.tolerance = 0.0;
  EXPECT_FALSE(StationaryDistribution(chain, bad).ok());
}

TEST(StationaryTest, IterationCapReported) {
  auto chain = MarkovChain::FromDense({{0.5, 0.5}, {0.5, 0.5}}).ValueOrDie();
  StationaryOptions tight;
  tight.max_iterations = 0;
  const auto r = StationaryDistribution(chain, tight);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace markov
}  // namespace ustdb
