#include "markov/interval_chain.h"

#include <gtest/gtest.h>

#include "core/object_based.h"
#include "core/query_window.h"
#include "testing/random_models.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace ustdb {
namespace markov {
namespace {

using ::ustdb::testing::PaperChainV;
using ::ustdb::testing::RandomChain;

TEST(IntervalChainTest, RejectsEmptyOrMismatched) {
  EXPECT_FALSE(IntervalMarkovChain::FromChains({}).ok());
  MarkovChain a = PaperChainV();
  util::Rng rng(1);
  MarkovChain b = RandomChain(5, 2, &rng);
  EXPECT_FALSE(IntervalMarkovChain::FromChains({&a, &b}).ok());
}

TEST(IntervalChainTest, SingleMemberHasTightBounds) {
  MarkovChain a = PaperChainV();
  auto env = IntervalMarkovChain::FromChains({&a}).ValueOrDie();
  for (uint32_t i = 0; i < 3; ++i) {
    for (uint32_t j = 0; j < 3; ++j) {
      const ProbBound b = env.Bound(i, j);
      EXPECT_DOUBLE_EQ(b.lo, a.matrix().Get(i, j));
      EXPECT_DOUBLE_EQ(b.hi, a.matrix().Get(i, j));
    }
  }
}

TEST(IntervalChainTest, EnvelopeCoversAllMembers) {
  util::Rng rng(42);
  workload::SyntheticConfig config;
  config.num_states = 20;
  config.state_spread = 3;
  config.max_step = 8;
  MarkovChain base = workload::GenerateChain(config, &rng).ValueOrDie();
  MarkovChain p1 = workload::PerturbChain(base, 0.3, &rng).ValueOrDie();
  MarkovChain p2 = workload::PerturbChain(base, 0.3, &rng).ValueOrDie();
  auto env = IntervalMarkovChain::FromChains({&base, &p1, &p2}).ValueOrDie();

  for (const MarkovChain* m : {&base, &p1, &p2}) {
    for (uint32_t i = 0; i < 20; ++i) {
      for (uint32_t j = 0; j < 20; ++j) {
        const double v = m->matrix().Get(i, j);
        const ProbBound b = env.Bound(i, j);
        EXPECT_LE(b.lo, v + 1e-12);
        EXPECT_GE(b.hi, v - 1e-12);
      }
    }
  }
}

TEST(IntervalChainTest, SupportMismatchForcesZeroLowerBound) {
  auto a = MarkovChain::FromDense({{1.0, 0.0}, {0.0, 1.0}}).ValueOrDie();
  auto b = MarkovChain::FromDense({{0.5, 0.5}, {0.5, 0.5}}).ValueOrDie();
  auto env = IntervalMarkovChain::FromChains({&a, &b}).ValueOrDie();
  // Entry (0,1) is absent from `a`, so its lower bound is 0.
  EXPECT_DOUBLE_EQ(env.Bound(0, 1).lo, 0.0);
  EXPECT_DOUBLE_EQ(env.Bound(0, 1).hi, 0.5);
  // Entry (0,0) exists in both: lo = 0.5, hi = 1.
  EXPECT_DOUBLE_EQ(env.Bound(0, 0).lo, 0.5);
  EXPECT_DOUBLE_EQ(env.Bound(0, 0).hi, 1.0);
}

TEST(IntervalChainTest, SupportMismatchZeroLowerBoundInBothMemberOrders) {
  // Regression for the FromChains lower-bound contract: an entry absent
  // from *any* member must read lo = 0, no matter whether the members
  // that carry it come before or after the ones that lack it. The merge
  // seeds each entry from the first member that has it, so an
  // implementation that only lowers lo on later carriers (instead of
  // tracking presence across all members) passes one order and fails the
  // other.
  auto a = MarkovChain::FromDense({{1.0, 0.0, 0.0},
                                   {0.2, 0.8, 0.0},
                                   {0.0, 0.0, 1.0}})
               .ValueOrDie();
  auto b = MarkovChain::FromDense({{0.4, 0.6, 0.0},
                                   {0.2, 0.3, 0.5},
                                   {0.0, 1.0, 0.0}})
               .ValueOrDie();
  for (const auto& members :
       {std::vector<const MarkovChain*>{&a, &b},
        std::vector<const MarkovChain*>{&b, &a}}) {
    auto env = IntervalMarkovChain::FromChains(members).ValueOrDie();
    // (0,1): only in b — lo must be 0 whether b is first or last.
    EXPECT_DOUBLE_EQ(env.Bound(0, 1).lo, 0.0);
    EXPECT_DOUBLE_EQ(env.Bound(0, 1).hi, 0.6);
    // (1,2): only in b.
    EXPECT_DOUBLE_EQ(env.Bound(1, 2).lo, 0.0);
    EXPECT_DOUBLE_EQ(env.Bound(1, 2).hi, 0.5);
    // (2,2): only in a.
    EXPECT_DOUBLE_EQ(env.Bound(2, 2).lo, 0.0);
    EXPECT_DOUBLE_EQ(env.Bound(2, 2).hi, 1.0);
    // (2,1): only in b.
    EXPECT_DOUBLE_EQ(env.Bound(2, 1).lo, 0.0);
    EXPECT_DOUBLE_EQ(env.Bound(2, 1).hi, 1.0);
    // (1,0): in both — lo stays the true minimum.
    EXPECT_DOUBLE_EQ(env.Bound(1, 0).lo, 0.2);
    EXPECT_DOUBLE_EQ(env.Bound(1, 0).hi, 0.2);
    // (1,1): in both.
    EXPECT_DOUBLE_EQ(env.Bound(1, 1).lo, 0.3);
    EXPECT_DOUBLE_EQ(env.Bound(1, 1).hi, 0.8);
  }
}

TEST(IntervalChainTest, MiddleMemberSupportGapZeroesLowerBound) {
  // Three members where the *middle* one lacks an entry the outer two
  // share: presence counting must span all members, not adjacent pairs.
  auto a = MarkovChain::FromDense({{0.7, 0.3}, {0.5, 0.5}}).ValueOrDie();
  auto b = MarkovChain::FromDense({{1.0, 0.0}, {0.5, 0.5}}).ValueOrDie();
  auto c = MarkovChain::FromDense({{0.6, 0.4}, {0.5, 0.5}}).ValueOrDie();
  auto env = IntervalMarkovChain::FromChains({&a, &b, &c}).ValueOrDie();
  EXPECT_DOUBLE_EQ(env.Bound(0, 1).lo, 0.0);  // absent from b only
  EXPECT_DOUBLE_EQ(env.Bound(0, 1).hi, 0.4);
  EXPECT_DOUBLE_EQ(env.Bound(0, 0).lo, 0.6);  // present in all three
  EXPECT_DOUBLE_EQ(env.Bound(0, 0).hi, 1.0);
}

TEST(IntervalChainTest, BoundExistsContainsEveryMemberTruth) {
  // The fundamental soundness property of Section V-C cluster pruning:
  // for every member chain and start state, the true exists-probability
  // lies inside the interval bound.
  util::Rng rng(7);
  workload::SyntheticConfig config;
  config.num_states = 16;
  config.state_spread = 3;
  config.max_step = 6;
  MarkovChain base = workload::GenerateChain(config, &rng).ValueOrDie();
  MarkovChain p1 = workload::PerturbChain(base, 0.25, &rng).ValueOrDie();
  MarkovChain p2 = workload::PerturbChain(base, 0.25, &rng).ValueOrDie();
  std::vector<const MarkovChain*> members = {&base, &p1, &p2};
  auto env = IntervalMarkovChain::FromChains(members).ValueOrDie();

  const auto region = sparse::IndexSet::FromRange(16, 4, 7).ValueOrDie();
  const Timestamp t_lo = 2;
  const Timestamp t_hi = 5;
  const std::vector<ProbBound> bounds = env.BoundExists(region, t_lo, t_hi);

  const core::QueryWindow window =
      core::QueryWindow::FromRanges(16, 4, 7, t_lo, t_hi).ValueOrDie();
  for (const MarkovChain* m : members) {
    core::ObjectBasedEngine engine(m, window);
    for (uint32_t s = 0; s < 16; ++s) {
      const double truth =
          engine.ExistsProbability(sparse::ProbVector::Delta(16, s));
      EXPECT_LE(bounds[s].lo, truth + 1e-9) << "state " << s;
      EXPECT_GE(bounds[s].hi, truth - 1e-9) << "state " << s;
    }
  }
}

TEST(IntervalChainTest, BoundExistsExactForSingleMember) {
  // With one member the greedy min/max both collapse to the member's row,
  // so bounds must be tight.
  MarkovChain a = PaperChainV();
  auto env = IntervalMarkovChain::FromChains({&a}).ValueOrDie();
  const auto region = sparse::IndexSet::FromIndices(3, {0, 1}).ValueOrDie();
  const std::vector<ProbBound> bounds = env.BoundExists(region, 2, 3);

  const core::QueryWindow window =
      core::QueryWindow::FromRanges(3, 0, 1, 2, 3).ValueOrDie();
  core::ObjectBasedEngine engine(&a, window);
  for (uint32_t s = 0; s < 3; ++s) {
    const double truth =
        engine.ExistsProbability(sparse::ProbVector::Delta(3, s));
    EXPECT_NEAR(bounds[s].lo, truth, 1e-12);
    EXPECT_NEAR(bounds[s].hi, truth, 1e-12);
  }
  // The paper's example: starting at s2 the answer is 0.864.
  EXPECT_NEAR(bounds[1].lo, 0.864, 1e-12);
}

TEST(IntervalChainTest, UpperOnlyPassMatchesFullPassUpperBounds) {
  // The executor's drop test reads hi only; the with_lower=false fast
  // path must reproduce the full pass's upper bounds exactly and pin
  // every lo to 0.
  util::Rng rng(11);
  workload::SyntheticConfig config;
  config.num_states = 18;
  config.state_spread = 3;
  config.max_step = 6;
  MarkovChain base = workload::GenerateChain(config, &rng).ValueOrDie();
  MarkovChain p1 = workload::PerturbChain(base, 0.2, &rng).ValueOrDie();
  auto env = IntervalMarkovChain::FromChains({&base, &p1}).ValueOrDie();
  const auto region = sparse::IndexSet::FromRange(18, 5, 9).ValueOrDie();
  const auto full = env.BoundExists(region, 2, 6);
  const auto upper = env.BoundExists(region, 2, 6, /*with_lower=*/false);
  ASSERT_EQ(full.size(), upper.size());
  for (uint32_t s = 0; s < full.size(); ++s) {
    EXPECT_EQ(upper[s].hi, full[s].hi) << "state " << s;
    EXPECT_DOUBLE_EQ(upper[s].lo, 0.0) << "state " << s;
  }
}

TEST(IntervalChainTest, RegionStatesBoundedByOneAtWindowStart) {
  MarkovChain a = PaperChainV();
  auto env = IntervalMarkovChain::FromChains({&a}).ValueOrDie();
  const auto region = sparse::IndexSet::FromIndices(3, {1}).ValueOrDie();
  // Window covering t=0: starting inside the region is a certain hit.
  const std::vector<ProbBound> bounds = env.BoundExists(region, 0, 2);
  EXPECT_DOUBLE_EQ(bounds[1].lo, 1.0);
  EXPECT_DOUBLE_EQ(bounds[1].hi, 1.0);
}

}  // namespace
}  // namespace markov
}  // namespace ustdb
