#include "sparse/csr_matrix.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ustdb {
namespace sparse {
namespace {

CsrMatrix PaperMatrix() {
  // The running example of Section V:
  //   ( 0    0   1  )
  //   ( 0.6  0   0.4)
  //   ( 0    0.8 0.2)
  return CsrMatrix::FromTriplets(3, 3,
                                 {{0, 2, 1.0},
                                  {1, 0, 0.6},
                                  {1, 2, 0.4},
                                  {2, 1, 0.8},
                                  {2, 2, 0.2}})
      .ValueOrDie();
}

TEST(CsrMatrixTest, FromTripletsBasic) {
  CsrMatrix m = PaperMatrix();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 5u);
  EXPECT_DOUBLE_EQ(m.Get(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(m.Get(1, 0), 0.6);
  EXPECT_DOUBLE_EQ(m.Get(0, 0), 0.0);
}

TEST(CsrMatrixTest, FromTripletsMergesDuplicates) {
  auto m = CsrMatrix::FromTriplets(2, 2, {{0, 0, 0.25}, {0, 0, 0.75}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->nnz(), 1u);
  EXPECT_DOUBLE_EQ(m->Get(0, 0), 1.0);
}

TEST(CsrMatrixTest, FromTripletsDropsZeroGroups) {
  auto m = CsrMatrix::FromTriplets(2, 2, {{0, 0, 0.5}, {0, 0, -0.5}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->nnz(), 0u);
}

TEST(CsrMatrixTest, FromTripletsValidates) {
  EXPECT_FALSE(CsrMatrix::FromTriplets(2, 2, {{2, 0, 1.0}}).ok());
  EXPECT_FALSE(CsrMatrix::FromTriplets(2, 2, {{0, 2, 1.0}}).ok());
  EXPECT_FALSE(
      CsrMatrix::FromTriplets(2, 2, {{0, 0, std::nan("")}}).ok());
}

TEST(CsrMatrixTest, RowAccess) {
  CsrMatrix m = PaperMatrix();
  auto idx = m.RowIndices(1);
  auto val = m.RowValues(1);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 2u);
  EXPECT_DOUBLE_EQ(val[0], 0.6);
  EXPECT_DOUBLE_EQ(val[1], 0.4);
  EXPECT_EQ(m.RowNnz(0), 1u);
}

TEST(CsrMatrixTest, RowSumAndStochasticity) {
  CsrMatrix m = PaperMatrix();
  for (uint32_t r = 0; r < 3; ++r) {
    EXPECT_NEAR(m.RowSum(r), 1.0, 1e-12);
  }
  EXPECT_TRUE(m.IsStochastic());
  EXPECT_TRUE(m.IsSubStochastic());
}

TEST(CsrMatrixTest, NonStochasticDetected) {
  auto m = CsrMatrix::FromTriplets(2, 2, {{0, 0, 0.5}, {1, 1, 1.0}})
               .ValueOrDie();
  EXPECT_FALSE(m.IsStochastic());   // row 0 sums to 0.5
  EXPECT_TRUE(m.IsSubStochastic());
  auto over = CsrMatrix::FromTriplets(1, 1, {{0, 0, 1.5}}).ValueOrDie();
  EXPECT_FALSE(over.IsSubStochastic());
}

TEST(CsrMatrixTest, Identity) {
  CsrMatrix id = CsrMatrix::Identity(4);
  EXPECT_TRUE(id.IsStochastic());
  EXPECT_EQ(id.nnz(), 4u);
  for (uint32_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(id.Get(i, i), 1.0);
}

TEST(CsrMatrixTest, TransposedMatchesDense) {
  CsrMatrix m = PaperMatrix();
  CsrMatrix t = m.Transposed();
  const auto dm = m.ToDense();
  const auto dt = t.ToDense();
  for (uint32_t i = 0; i < 3; ++i) {
    for (uint32_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(dm[i][j], dt[j][i]);
    }
  }
  // Double transpose is the identity transform.
  EXPECT_EQ(t.Transposed(), m);
}

TEST(CsrMatrixTest, MultiplyMatchesHandComputation) {
  CsrMatrix m = PaperMatrix();
  auto m2 = m.Multiply(m);
  ASSERT_TRUE(m2.ok());
  // Row 1 of M² (object at s2): P(o,2) from the paper = (0, 0.32, 0.68).
  EXPECT_NEAR(m2->Get(1, 0), 0.0, 1e-12);
  EXPECT_NEAR(m2->Get(1, 1), 0.32, 1e-12);
  EXPECT_NEAR(m2->Get(1, 2), 0.68, 1e-12);
}

TEST(CsrMatrixTest, MultiplyDimensionMismatch) {
  CsrMatrix a = CsrMatrix::Identity(2);
  CsrMatrix b = CsrMatrix::Identity(3);
  EXPECT_FALSE(a.Multiply(b).ok());
}

TEST(CsrMatrixTest, PowerZeroIsIdentity) {
  CsrMatrix m = PaperMatrix();
  auto p0 = m.Power(0);
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(*p0, CsrMatrix::Identity(3));
}

TEST(CsrMatrixTest, PowerMatchesRepeatedMultiply) {
  CsrMatrix m = PaperMatrix();
  auto p3 = m.Power(3);
  ASSERT_TRUE(p3.ok());
  auto m3 = m.Multiply(m).ValueOrDie().Multiply(m);
  ASSERT_TRUE(m3.ok());
  const auto a = p3->ToDense();
  const auto b = m3->ToDense();
  for (uint32_t i = 0; i < 3; ++i) {
    for (uint32_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(a[i][j], b[i][j], 1e-12);
    }
  }
}

TEST(CsrMatrixTest, PowerPreservesStochasticity) {
  CsrMatrix m = PaperMatrix();
  auto p5 = m.Power(5);
  ASSERT_TRUE(p5.ok());
  EXPECT_TRUE(p5->IsStochastic());
}

TEST(CsrMatrixTest, WithColumnsZeroedBuildsPaperMPrime) {
  // Section V-A: S□ = {s1, s2} (0-based: {0, 1}).
  CsrMatrix m = PaperMatrix();
  auto region = IndexSet::FromIndices(3, {0, 1}).ValueOrDie();
  CsrMatrix mp = m.WithColumnsZeroed(region);
  EXPECT_DOUBLE_EQ(mp.Get(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(mp.Get(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(mp.Get(1, 2), 0.4);
  EXPECT_DOUBLE_EQ(mp.Get(2, 1), 0.0);
  EXPECT_DOUBLE_EQ(mp.Get(2, 2), 0.2);
  EXPECT_TRUE(mp.IsSubStochastic());
}

TEST(CsrMatrixTest, RowMassInColumnsIsPaperSumVector) {
  CsrMatrix m = PaperMatrix();
  auto region = IndexSet::FromIndices(3, {0, 1}).ValueOrDie();
  const std::vector<double> sums = m.RowMassInColumns(region);
  // Paper's M+ column: (0, 0.6, 0.8).
  ASSERT_EQ(sums.size(), 3u);
  EXPECT_NEAR(sums[0], 0.0, 1e-12);
  EXPECT_NEAR(sums[1], 0.6, 1e-12);
  EXPECT_NEAR(sums[2], 0.8, 1e-12);
}

TEST(CsrMatrixTest, ZeroedPlusMassEqualsOriginalRowSums) {
  CsrMatrix m = PaperMatrix();
  auto region = IndexSet::FromIndices(3, {1}).ValueOrDie();
  CsrMatrix mp = m.WithColumnsZeroed(region);
  const std::vector<double> sums = m.RowMassInColumns(region);
  for (uint32_t r = 0; r < 3; ++r) {
    EXPECT_NEAR(mp.RowSum(r) + sums[r], m.RowSum(r), 1e-12);
  }
}

TEST(CsrMatrixTest, ToTripletsRoundTrip) {
  CsrMatrix m = PaperMatrix();
  auto rebuilt = CsrMatrix::FromTriplets(3, 3, m.ToTriplets());
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(*rebuilt, m);
}

TEST(CsrMatrixTest, EmptyMatrix) {
  auto m = CsrMatrix::FromTriplets(3, 3, {});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->nnz(), 0u);
  EXPECT_FALSE(m->IsStochastic());
  EXPECT_TRUE(m->IsSubStochastic());
  CsrMatrix t = m->Transposed();
  EXPECT_EQ(t.nnz(), 0u);
}

TEST(VecMatWorkspaceTest, MultiplyMatchesDenseReference) {
  CsrMatrix m = PaperMatrix();
  auto x = ProbVector::FromPairs(3, {{1, 1.0}}).ValueOrDie();
  VecMatWorkspace ws;
  ProbVector y;
  ws.Multiply(x, m, &y);
  EXPECT_NEAR(y.Get(0), 0.6, 1e-15);
  EXPECT_NEAR(y.Get(1), 0.0, 1e-15);
  EXPECT_NEAR(y.Get(2), 0.4, 1e-15);
}

TEST(VecMatWorkspaceTest, InPlaceMultiply) {
  CsrMatrix m = PaperMatrix();
  auto v = ProbVector::FromPairs(3, {{1, 1.0}}).ValueOrDie();
  VecMatWorkspace ws;
  ws.Multiply(v, m, &v);  // aliasing allowed
  ws.Multiply(v, m, &v);
  // P(o,2) = (0, 0.32, 0.68) from the paper.
  EXPECT_NEAR(v.Get(1), 0.32, 1e-12);
  EXPECT_NEAR(v.Get(2), 0.68, 1e-12);
}

TEST(VecMatWorkspaceTest, ReuseAcrossDifferentWidths) {
  CsrMatrix small = CsrMatrix::Identity(2);
  CsrMatrix big = CsrMatrix::Identity(64);
  VecMatWorkspace ws;
  ProbVector y;
  ws.Multiply(ProbVector::Delta(2, 1), small, &y);
  EXPECT_DOUBLE_EQ(y.Get(1), 1.0);
  ws.Multiply(ProbVector::Delta(64, 63), big, &y);
  EXPECT_DOUBLE_EQ(y.Get(63), 1.0);
  ws.Multiply(ProbVector::Delta(2, 0), small, &y);
  EXPECT_DOUBLE_EQ(y.Get(0), 1.0);
}

TEST(VecMatWorkspaceTest, RectangularMatrix) {
  // 2x4 matrix: result dimension must follow cols().
  auto m = CsrMatrix::FromTriplets(2, 4, {{0, 3, 1.0}, {1, 0, 1.0}})
               .ValueOrDie();
  VecMatWorkspace ws;
  ProbVector y;
  ws.Multiply(ProbVector::Delta(2, 0), m, &y);
  EXPECT_EQ(y.size(), 4u);
  EXPECT_DOUBLE_EQ(y.Get(3), 1.0);
}

}  // namespace
}  // namespace sparse
}  // namespace ustdb
