// Property tests of the sparse vec×mat kernel against a dense reference
// implementation, swept over random stochastic matrices of several sizes,
// densities and vector sparsities (parameterized gtest).

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "sparse/csr_matrix.h"
#include "sparse/prob_vector.h"
#include "util/rng.h"

namespace ustdb {
namespace sparse {
namespace {

/// Dense reference: y = x · M.
std::vector<double> DenseVecMat(const std::vector<double>& x,
                                const std::vector<std::vector<double>>& m) {
  std::vector<double> y(m.empty() ? 0 : m[0].size(), 0.0);
  for (size_t i = 0; i < x.size(); ++i) {
    for (size_t j = 0; j < y.size(); ++j) {
      y[j] += x[i] * m[i][j];
    }
  }
  return y;
}

/// Random row-stochastic matrix with `row_nnz` entries per row.
CsrMatrix RandomStochastic(uint32_t n, uint32_t row_nnz, util::Rng* rng) {
  std::vector<Triplet> t;
  for (uint32_t r = 0; r < n; ++r) {
    const auto cols = rng->SampleWithoutReplacement(n, std::min(row_nnz, n));
    double total = 0.0;
    std::vector<double> w(cols.size());
    for (double& x : w) {
      x = rng->NextDouble() + 1e-3;
      total += x;
    }
    for (size_t k = 0; k < cols.size(); ++k) {
      t.push_back({r, cols[k], w[k] / total});
    }
  }
  return CsrMatrix::FromTriplets(n, n, std::move(t)).ValueOrDie();
}

/// Random sub-distribution with `support` non-zeros.
ProbVector RandomVector(uint32_t n, uint32_t support, util::Rng* rng) {
  const auto idx = rng->SampleWithoutReplacement(n, std::min(support, n));
  std::vector<std::pair<uint32_t, double>> pairs;
  for (uint32_t i : idx) pairs.emplace_back(i, rng->NextDouble() + 1e-6);
  auto v = ProbVector::FromPairs(n, std::move(pairs), /*normalize=*/true);
  return std::move(v).ValueOrDie();
}

// (num_states, row_nnz, vector_support, seed)
using Param = std::tuple<uint32_t, uint32_t, uint32_t, uint64_t>;

class VecMatPropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(VecMatPropertyTest, MatchesDenseReference) {
  const auto [n, row_nnz, support, seed] = GetParam();
  util::Rng rng(seed);
  const CsrMatrix m = RandomStochastic(n, row_nnz, &rng);
  const ProbVector x = RandomVector(n, support, &rng);

  VecMatWorkspace ws;
  ProbVector y;
  ws.Multiply(x, m, &y);

  const std::vector<double> expected = DenseVecMat(x.ToDense(), m.ToDense());
  const std::vector<double> actual = y.ToDense();
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t j = 0; j < expected.size(); ++j) {
    EXPECT_NEAR(actual[j], expected[j], 1e-12) << "column " << j;
  }
}

TEST_P(VecMatPropertyTest, StochasticMultiplyPreservesMass) {
  const auto [n, row_nnz, support, seed] = GetParam();
  util::Rng rng(seed ^ 0xABCDEF);
  const CsrMatrix m = RandomStochastic(n, row_nnz, &rng);
  ProbVector v = RandomVector(n, support, &rng);

  VecMatWorkspace ws;
  for (int step = 0; step < 10; ++step) {
    ws.Multiply(v, m, &v);
    EXPECT_NEAR(v.Sum(), 1.0, 1e-9) << "after step " << step;
  }
}

TEST_P(VecMatPropertyTest, TransposeDualityHoldsForDotProducts) {
  // <x·M, y> == <x, y·Mᵀ> — the identity the query-based engine relies on.
  const auto [n, row_nnz, support, seed] = GetParam();
  util::Rng rng(seed ^ 0x5555);
  const CsrMatrix m = RandomStochastic(n, row_nnz, &rng);
  const CsrMatrix mt = m.Transposed();
  const ProbVector x = RandomVector(n, support, &rng);
  const ProbVector y = RandomVector(n, std::max(1u, n / 2), &rng);

  VecMatWorkspace ws;
  ProbVector xm;
  ws.Multiply(x, m, &xm);
  ProbVector ymt;
  ws.Multiply(y, mt, &ymt);
  EXPECT_NEAR(xm.Dot(y), x.Dot(ymt), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VecMatPropertyTest,
    ::testing::Values(
        Param{3, 2, 1, 1}, Param{8, 3, 2, 2}, Param{16, 4, 4, 3},
        Param{16, 16, 16, 4},   // fully dense rows and vector
        Param{64, 5, 3, 5}, Param{64, 2, 64, 6}, Param{128, 8, 1, 7},
        Param{200, 3, 5, 8}, Param{200, 20, 100, 9}, Param{5, 1, 5, 10}),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_nnz" +
             std::to_string(std::get<1>(info.param)) + "_supp" +
             std::to_string(std::get<2>(info.param)) + "_seed" +
             std::to_string(std::get<3>(info.param));
    });

}  // namespace
}  // namespace sparse
}  // namespace ustdb
