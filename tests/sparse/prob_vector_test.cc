#include "sparse/prob_vector.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ustdb {
namespace sparse {
namespace {

TEST(ProbVectorTest, ZeroVector) {
  ProbVector v = ProbVector::Zero(8);
  EXPECT_EQ(v.size(), 8u);
  EXPECT_EQ(v.Support(), 0u);
  EXPECT_DOUBLE_EQ(v.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(v.Get(3), 0.0);
}

TEST(ProbVectorTest, DeltaVector) {
  ProbVector v = ProbVector::Delta(5, 2);
  EXPECT_EQ(v.Support(), 1u);
  EXPECT_DOUBLE_EQ(v.Get(2), 1.0);
  EXPECT_DOUBLE_EQ(v.Sum(), 1.0);
}

TEST(ProbVectorTest, FromPairsSumsDuplicates) {
  auto v = ProbVector::FromPairs(10, {{3, 0.25}, {3, 0.25}, {7, 0.5}});
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->Get(3), 0.5);
  EXPECT_DOUBLE_EQ(v->Get(7), 0.5);
  EXPECT_EQ(v->Support(), 2u);
}

TEST(ProbVectorTest, FromPairsRejectsBadInput) {
  EXPECT_FALSE(ProbVector::FromPairs(4, {{4, 0.5}}).ok());   // out of range
  EXPECT_FALSE(ProbVector::FromPairs(4, {{0, -0.1}}).ok());  // negative
  EXPECT_FALSE(
      ProbVector::FromPairs(4, {{0, std::nan("")}}).ok());   // non-finite
}

TEST(ProbVectorTest, FromPairsNormalizes) {
  auto v = ProbVector::FromPairs(4, {{0, 2.0}, {1, 6.0}}, /*normalize=*/true);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->Get(0), 0.25);
  EXPECT_DOUBLE_EQ(v->Get(1), 0.75);
}

TEST(ProbVectorTest, NormalizeFailsOnZeroVector) {
  auto v = ProbVector::FromPairs(4, {}, /*normalize=*/true);
  EXPECT_FALSE(v.ok());
}

TEST(ProbVectorTest, FromDense) {
  auto v = ProbVector::FromDense({0.0, 0.5, 0.0, 0.5});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->size(), 4u);
  EXPECT_EQ(v->Support(), 2u);
  EXPECT_DOUBLE_EQ(v->Get(1), 0.5);
}

TEST(ProbVectorTest, UniformOver) {
  auto support = IndexSet::FromIndices(10, {1, 4, 9}).ValueOrDie();
  auto v = ProbVector::UniformOver(support);
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(v->Get(1), 1.0 / 3, 1e-15);
  EXPECT_NEAR(v->Sum(), 1.0, 1e-15);
  EXPECT_FALSE(ProbVector::UniformOver(IndexSet::Empty(10)).ok());
}

TEST(ProbVectorTest, MassIn) {
  auto v = ProbVector::FromPairs(10, {{0, 0.2}, {5, 0.3}, {9, 0.5}})
               .ValueOrDie();
  auto set = IndexSet::FromIndices(10, {5, 9}).ValueOrDie();
  EXPECT_NEAR(v.MassIn(set), 0.8, 1e-15);
  EXPECT_DOUBLE_EQ(v.MassIn(IndexSet::Empty(10)), 0.0);
  EXPECT_NEAR(v.MassIn(IndexSet::All(10)), 1.0, 1e-15);
}

TEST(ProbVectorTest, ExtractMassInRemovesAndReturns) {
  auto v = ProbVector::FromPairs(10, {{0, 0.2}, {5, 0.3}, {9, 0.5}})
               .ValueOrDie();
  auto set = IndexSet::FromIndices(10, {0, 5}).ValueOrDie();
  EXPECT_NEAR(v.ExtractMassIn(set), 0.5, 1e-15);
  EXPECT_DOUBLE_EQ(v.Get(0), 0.0);
  EXPECT_DOUBLE_EQ(v.Get(5), 0.0);
  EXPECT_DOUBLE_EQ(v.Get(9), 0.5);
  // Second extraction finds nothing.
  EXPECT_DOUBLE_EQ(v.ExtractMassIn(set), 0.0);
}

TEST(ProbVectorTest, ExtractEntriesInRoundTripsThroughAddEntries) {
  auto v = ProbVector::FromPairs(10, {{1, 0.1}, {2, 0.2}, {8, 0.7}})
               .ValueOrDie();
  auto set = IndexSet::FromIndices(10, {2, 8}).ValueOrDie();
  auto entries = v.ExtractEntriesIn(set);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, 2u);
  EXPECT_DOUBLE_EQ(entries[0].second, 0.2);
  EXPECT_DOUBLE_EQ(v.Sum(), 0.1);

  ProbVector w = ProbVector::Zero(10);
  w.AddEntries(entries);
  EXPECT_DOUBLE_EQ(w.Get(2), 0.2);
  EXPECT_DOUBLE_EQ(w.Get(8), 0.7);
}

TEST(ProbVectorTest, AddEntriesMergesWithExisting) {
  auto v = ProbVector::FromPairs(6, {{2, 0.5}}).ValueOrDie();
  v.AddEntries({{2, 0.25}, {0, 0.25}});
  EXPECT_DOUBLE_EQ(v.Get(2), 0.75);
  EXPECT_DOUBLE_EQ(v.Get(0), 0.25);
  EXPECT_EQ(v.Support(), 2u);
}

TEST(ProbVectorTest, DotProduct) {
  auto a = ProbVector::FromPairs(5, {{0, 0.5}, {2, 0.5}}).ValueOrDie();
  auto b = ProbVector::FromPairs(5, {{2, 0.4}, {3, 0.6}}).ValueOrDie();
  EXPECT_NEAR(a.Dot(b), 0.2, 1e-15);
  EXPECT_NEAR(b.Dot(a), 0.2, 1e-15);
  EXPECT_DOUBLE_EQ(a.Dot(ProbVector::Zero(5)), 0.0);
}

TEST(ProbVectorTest, PointwiseMultiply) {
  auto a = ProbVector::FromPairs(4, {{0, 0.5}, {1, 0.5}}).ValueOrDie();
  auto b = ProbVector::FromPairs(4, {{1, 0.5}, {2, 0.5}}).ValueOrDie();
  ASSERT_TRUE(a.PointwiseMultiply(b).ok());
  EXPECT_DOUBLE_EQ(a.Get(0), 0.0);
  EXPECT_DOUBLE_EQ(a.Get(1), 0.25);
  EXPECT_EQ(a.Support(), 1u);
}

TEST(ProbVectorTest, PointwiseMultiplyDimensionMismatch) {
  auto a = ProbVector::Delta(4, 0);
  auto b = ProbVector::Delta(5, 0);
  EXPECT_FALSE(a.PointwiseMultiply(b).ok());
}

TEST(ProbVectorTest, ScaleAndNormalize) {
  auto v = ProbVector::FromPairs(4, {{0, 0.2}, {1, 0.2}}).ValueOrDie();
  v.Scale(2.0);
  EXPECT_NEAR(v.Sum(), 0.8, 1e-15);
  ASSERT_TRUE(v.Normalize().ok());
  EXPECT_NEAR(v.Sum(), 1.0, 1e-15);
  EXPECT_NEAR(v.Get(0), 0.5, 1e-15);
}

TEST(ProbVectorTest, DenseMigrationPreservesValues) {
  // Fill > 30% of a small vector to force the dense representation.
  std::vector<std::pair<uint32_t, double>> pairs;
  for (uint32_t i = 0; i < 8; ++i) pairs.emplace_back(i, 0.125);
  auto v = ProbVector::FromPairs(10, pairs).ValueOrDie();
  EXPECT_FALSE(v.IsSparse());
  EXPECT_NEAR(v.Sum(), 1.0, 1e-15);
  for (uint32_t i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(v.Get(i), 0.125);

  // Extracting most mass then compacting must fall back to sparse.
  auto most = IndexSet::FromRange(10, 0, 6).ValueOrDie();
  v.ExtractMassIn(most);
  v.Compact();
  EXPECT_TRUE(v.IsSparse());
  EXPECT_DOUBLE_EQ(v.Get(7), 0.125);
}

TEST(ProbVectorTest, CompactDropsEpsilonNoise) {
  auto v = ProbVector::FromPairs(10, {{0, 1e-20}, {1, 0.5}}).ValueOrDie();
  v.Compact();
  EXPECT_EQ(v.Support(), 1u);
  EXPECT_DOUBLE_EQ(v.Get(0), 0.0);
}

TEST(ProbVectorTest, ToDenseRoundTrip) {
  auto v = ProbVector::FromPairs(6, {{1, 0.25}, {4, 0.75}}).ValueOrDie();
  const std::vector<double> d = v.ToDense();
  ASSERT_EQ(d.size(), 6u);
  EXPECT_DOUBLE_EQ(d[1], 0.25);
  EXPECT_DOUBLE_EQ(d[4], 0.75);
  auto back = ProbVector::FromDense(d);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(v.MaxAbsDiff(*back), 0.0);
}

TEST(ProbVectorTest, ForEachNonZeroAscending) {
  auto v = ProbVector::FromPairs(10, {{9, 0.1}, {0, 0.2}, {5, 0.3}})
               .ValueOrDie();
  std::vector<uint32_t> order;
  v.ForEachNonZero([&](uint32_t i, double) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<uint32_t>{0, 5, 9}));
}

TEST(ProbVectorTest, MaxValue) {
  auto v = ProbVector::FromPairs(10, {{1, 0.3}, {2, 0.7}}).ValueOrDie();
  EXPECT_DOUBLE_EQ(v.MaxValue(), 0.7);
  EXPECT_DOUBLE_EQ(ProbVector::Zero(4).MaxValue(), 0.0);
}

}  // namespace
}  // namespace sparse
}  // namespace ustdb
