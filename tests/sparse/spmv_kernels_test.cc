// Property suite for the regime-specialized SpMV kernels: the new
// Multiply / fused kernels of VecMatWorkspace are pitted against the
// legacy single-path kernel (MultiplyLegacy) — the pre-overhaul
// implementation kept verbatim as the reference — across randomized
// sparse / dense / boundary-support vectors and (sub-)stochastic
// matrices. Tolerance: 1e-12 max-abs everywhere (most kernels are in
// fact bit-identical; the gather unroll and the clamp fusion regroup
// additions).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "kernels/isa.h"
#include "sparse/csr_matrix.h"
#include "sparse/index_set.h"
#include "sparse/prob_vector.h"
#include "util/aligned_alloc.h"
#include "testing/test_seed.h"
#include "util/rng.h"

namespace ustdb {
namespace sparse {
namespace {

constexpr double kTol = 1e-12;

/// Random sub-stochastic matrix: `nnz_per_row` entries in most rows, a
/// sprinkling of empty rows, row sums scaled to `row_scale`.
CsrMatrix RandomSubStochastic(uint32_t rows, uint32_t cols,
                              uint32_t nnz_per_row, double row_scale,
                              util::Rng* rng) {
  std::vector<Triplet> t;
  for (uint32_t r = 0; r < rows; ++r) {
    if (rng->NextBounded(10) == 0) continue;  // empty row
    const auto c = rng->SampleWithoutReplacement(
        cols, std::min(nnz_per_row, cols));
    double total = 0.0;
    std::vector<double> w(c.size());
    for (double& x : w) {
      x = rng->NextDouble() + 1e-3;
      total += x;
    }
    for (size_t k = 0; k < c.size(); ++k) {
      t.push_back({r, c[k], row_scale * w[k] / total});
    }
  }
  return CsrMatrix::FromTriplets(rows, cols, std::move(t)).ValueOrDie();
}

/// Random vector with exactly `support` non-zeros. When `force_dense`,
/// the dense representation is used regardless of support (legal: the
/// adaptive representation is a performance choice, not an invariant).
ProbVector RandomVector(uint32_t n, uint32_t support, bool force_dense,
                        util::Rng* rng) {
  const auto idx =
      rng->SampleWithoutReplacement(n, std::min(support, n));
  if (force_dense) {
    std::vector<double> dense(n, 0.0);
    for (uint32_t i : idx) dense[i] = rng->NextDouble() + 1e-6;
    ProbVector v = ProbVector::FromDense(std::move(dense)).ValueOrDie();
    return v;
  }
  std::vector<std::pair<uint32_t, double>> pairs;
  for (uint32_t i : idx) pairs.emplace_back(i, rng->NextDouble() + 1e-6);
  return ProbVector::FromPairs(n, std::move(pairs)).ValueOrDie();
}

/// Random set over [0, n) with roughly `fraction` of the domain.
IndexSet RandomSet(uint32_t n, double fraction, util::Rng* rng) {
  std::vector<uint32_t> members;
  for (uint32_t i = 0; i < n; ++i) {
    if (rng->NextDouble() < fraction) members.push_back(i);
  }
  return IndexSet::FromIndices(n, std::move(members)).ValueOrDie();
}

struct Case {
  CsrMatrix m;
  CsrMatrix mt;
  ProbVector x;
  IndexSet set;
};

/// The randomized case grid: square and rectangular shapes, stochastic
/// and sub-stochastic rows, supports straddling both representation
/// thresholds, both input representations.
std::vector<Case> BuildCases() {
  util::Rng rng(ustdb::testing::TestSeed(0xC0FFEE));
  std::vector<Case> cases;
  const std::pair<uint32_t, uint32_t> shapes[] = {
      {12, 12}, {40, 40}, {150, 150}, {40, 25}, {25, 60}};
  for (const auto& [rows, cols] : shapes) {
    for (double row_scale : {1.0, 0.9}) {
      CsrMatrix m = RandomSubStochastic(rows, cols, 4, row_scale, &rng);
      CsrMatrix mt = m.Transposed();
      // Boundary supports: empty, singleton, below kSparseThreshold, the
      // hysteresis band, at/above kDenseThreshold, saturated.
      const uint32_t supports[] = {
          0, 1, static_cast<uint32_t>(0.10 * rows),
          static_cast<uint32_t>(0.20 * rows),
          static_cast<uint32_t>(0.35 * rows), rows};
      for (uint32_t support : supports) {
        for (bool dense : {false, true}) {
          cases.push_back({m, mt,
                           RandomVector(rows, support, dense, &rng),
                           RandomSet(cols, 0.25, &rng)});
        }
      }
    }
  }
  return cases;
}

TEST(SpmvKernelsTest, MultiplyMatchesLegacyAcrossRegimes) {
  VecMatWorkspace ws;
  for (const Case& c : BuildCases()) {
    ProbVector ref;
    ws.MultiplyLegacy(c.x, c.m, &ref);
    ProbVector got;
    ws.Multiply(c.x, c.m, &got);
    EXPECT_LE(got.MaxAbsDiff(ref), kTol);
    EXPECT_NEAR(got.Sum(), ref.Sum(), kTol);

    ProbVector got_gather;
    ws.Multiply(c.x, c.m, &got_gather, &c.mt);
    EXPECT_LE(got_gather.MaxAbsDiff(ref), kTol);
  }
}

TEST(SpmvKernelsTest, MultiplyInPlaceAliasingIsSafe) {
  VecMatWorkspace ws;
  for (const Case& c : BuildCases()) {
    if (c.m.rows() != c.m.cols()) continue;  // aliasing needs same dims
    ProbVector ref;
    ws.MultiplyLegacy(c.x, c.m, &ref);
    ProbVector in_place = c.x;
    ws.Multiply(in_place, c.m, &in_place, &c.mt);
    EXPECT_LE(in_place.MaxAbsDiff(ref), kTol);
  }
}

TEST(SpmvKernelsTest, MassInMatchesLegacyComposition) {
  VecMatWorkspace ws;
  for (const Case& c : BuildCases()) {
    ProbVector ref;
    ws.MultiplyLegacy(c.x, c.m, &ref);
    const double ref_mass = ref.MassIn(c.set);

    ProbVector got;
    const double mass = ws.MultiplyAndMassIn(c.x, c.m, c.set, &got, &c.mt);
    EXPECT_NEAR(mass, ref_mass, kTol);
    EXPECT_LE(got.MaxAbsDiff(ref), kTol);  // nothing removed
  }
}

TEST(SpmvKernelsTest, ExtractMatchesLegacyComposition) {
  VecMatWorkspace ws;
  for (const Case& c : BuildCases()) {
    ProbVector ref;
    ws.MultiplyLegacy(c.x, c.m, &ref);
    const double ref_mass = ref.ExtractMassIn(c.set);

    ProbVector got;
    const double mass = ws.MultiplyAndExtract(c.x, c.m, c.set, &got, &c.mt);
    EXPECT_NEAR(mass, ref_mass, kTol);
    EXPECT_LE(got.MaxAbsDiff(ref), kTol);  // ref already extracted
    for (uint32_t s : c.set) EXPECT_EQ(got.Get(s), 0.0);
  }
}

TEST(SpmvKernelsTest, ExtractEntriesMatchesLegacyComposition) {
  VecMatWorkspace ws;
  std::vector<std::pair<uint32_t, double>> entries;
  for (const Case& c : BuildCases()) {
    ProbVector ref;
    ws.MultiplyLegacy(c.x, c.m, &ref);
    auto ref_entries = ref.ExtractEntriesIn(c.set);

    ProbVector got;
    const double mass =
        ws.MultiplyAndExtractEntries(c.x, c.m, c.set, &got, &entries, &c.mt);
    EXPECT_LE(got.MaxAbsDiff(ref), kTol);

    std::sort(entries.begin(), entries.end());
    ASSERT_EQ(entries.size(), ref_entries.size());
    double mass_check = 0.0;
    for (size_t k = 0; k < entries.size(); ++k) {
      EXPECT_EQ(entries[k].first, ref_entries[k].first);
      EXPECT_NEAR(entries[k].second, ref_entries[k].second, kTol);
      mass_check += entries[k].second;
    }
    EXPECT_NEAR(mass, mass_check, kTol);
  }
}

TEST(SpmvKernelsTest, ClampMatchesLegacySequence) {
  VecMatWorkspace ws;
  for (const Case& c : BuildCases()) {
    if (c.set.domain_size() != c.m.rows()) continue;  // clamp is row-side
    // Legacy: rebuild the clamped vector, then multiply.
    ProbVector clamped = c.x;
    clamped.ExtractMassIn(c.set);
    std::vector<std::pair<uint32_t, double>> ones;
    for (uint32_t s : c.set) ones.emplace_back(s, 1.0);
    clamped.AddEntries(ones);
    ProbVector ref;
    ws.MultiplyLegacy(clamped, c.m, &ref);

    ProbVector got;
    ws.MultiplyClamped(c.x, c.m, c.set, &got, &c.mt);
    EXPECT_LE(got.MaxAbsDiff(ref), kTol);
  }
}

TEST(SpmvKernelsTest, RepeatedProductsAreDeterministic) {
  const uint64_t seed = ustdb::testing::TestSeed(99);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  util::Rng rng(seed);
  CsrMatrix m = RandomSubStochastic(60, 60, 4, 1.0, &rng);
  CsrMatrix mt = m.Transposed();
  const ProbVector x0 = RandomVector(60, 3, false, &rng);

  const auto propagate = [&](int steps) {
    VecMatWorkspace ws;
    ProbVector v = x0;
    for (int s = 0; s < steps; ++s) ws.Multiply(v, m, &v, &mt);
    return v;
  };
  const ProbVector a = propagate(25);
  const ProbVector b = propagate(25);
  EXPECT_EQ(a.ToDense(), b.ToDense());  // bitwise reproducible
}

TEST(SpmvKernelsTest, LongPropagationTracksLegacy) {
  // The regime transition itself: a 3-state-support start densifies over
  // repeated transitions, crossing sparse → band → dense. The adaptive
  // kernel must track the legacy path through every switch.
  const uint64_t seed = ustdb::testing::TestSeed(7);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  util::Rng rng(seed);
  CsrMatrix m = RandomSubStochastic(200, 200, 5, 1.0, &rng);
  CsrMatrix mt = m.Transposed();
  const ProbVector x0 = RandomVector(200, 3, false, &rng);

  VecMatWorkspace ws_new;
  VecMatWorkspace ws_ref;
  ProbVector v = x0;
  ProbVector ref = x0;
  for (int step = 0; step < 40; ++step) {
    ws_new.Multiply(v, m, &v, &mt);
    ws_ref.MultiplyLegacy(ref, m, &ref);
    ASSERT_LE(v.MaxAbsDiff(ref), kTol) << "diverged at step " << step;
  }
}

// ---- ISA-dispatch matrix suite ---------------------------------------
// The same parity contracts, re-run under every supported kernel table.
// The grid leans on vector-width boundaries: row/vector sizes below, at,
// and just above the 4- and 8-lane blocks, where masked-tail and unroll
// bugs live.

/// Forces a kernel ISA for the enclosing scope, restoring the previously
/// active one on destruction.
class ScopedIsa {
 public:
  explicit ScopedIsa(kernels::Isa isa) : prev_(kernels::ActiveIsa()) {
    forced_ = kernels::SetActiveIsa(isa);
  }
  ~ScopedIsa() { kernels::SetActiveIsa(prev_); }

  bool forced() const { return forced_; }

 private:
  kernels::Isa prev_;
  bool forced_;
};

std::vector<kernels::Isa> SupportedIsas() {
  std::vector<kernels::Isa> isas = {kernels::Isa::kBaseline};
  if (kernels::IsaSupported(kernels::Isa::kAvx2)) {
    isas.push_back(kernels::Isa::kAvx2);
  }
  return isas;
}

// Sizes bracketing one and two 4-lane blocks and the 8-wide unroll, plus
// a long-run size with a 7-entry tail (4095 = 8·511 + 7).
constexpr uint32_t kTailSizes[] = {1, 7, 8, 9, 15, 16, 17, 4095};

TEST(SpmvKernelsIsaTest, EveryKernelMatchesLegacyUnderEveryIsa) {
  for (const kernels::Isa isa : SupportedIsas()) {
    ScopedIsa forced(isa);
    ASSERT_TRUE(forced.forced()) << kernels::IsaName(isa);
    const uint64_t seed =
        ustdb::testing::TestSeed(0xABBA0000) + static_cast<uint64_t>(isa);
    SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
    util::Rng rng(seed);
    VecMatWorkspace ws;
    std::vector<std::pair<uint32_t, double>> entries;
    for (const uint32_t n : kTailSizes) {
      // Small sizes get full rows (the contiguous-run fast path); the
      // long size keeps scattered 12-entry rows (the indexed path).
      const uint32_t nnz = n <= 17 ? n : 12;
      const CsrMatrix m = RandomSubStochastic(n, n, nnz, 1.0, &rng);
      const CsrMatrix mt = m.Transposed();
      const uint32_t supports[] = {0, 1, n / 3, n};
      for (const uint32_t support : supports) {
        for (const bool dense_rep : {false, true}) {
          const ProbVector x = RandomVector(n, support, dense_rep, &rng);
          const IndexSet set = RandomSet(n, 0.3, &rng);
          ProbVector ref;
          ws.MultiplyLegacy(x, m, &ref);

          ProbVector got;
          ws.Multiply(x, m, &got);
          EXPECT_LE(got.MaxAbsDiff(ref), kTol);
          ws.Multiply(x, m, &got, &mt);
          EXPECT_LE(got.MaxAbsDiff(ref), kTol);

          ProbVector ref_extract = ref;
          const double ref_mass = ref_extract.ExtractMassIn(set);
          EXPECT_NEAR(ws.MultiplyAndMassIn(x, m, set, &got, &mt), ref_mass,
                      kTol);
          EXPECT_LE(got.MaxAbsDiff(ref), kTol);
          EXPECT_NEAR(ws.MultiplyAndExtract(x, m, set, &got, &mt), ref_mass,
                      kTol);
          EXPECT_LE(got.MaxAbsDiff(ref_extract), kTol);
          const double entry_mass =
              ws.MultiplyAndExtractEntries(x, m, set, &got, &entries, &mt);
          EXPECT_NEAR(entry_mass, ref_mass, kTol);
          EXPECT_LE(got.MaxAbsDiff(ref_extract), kTol);

          ProbVector clamped = x;
          clamped.ExtractMassIn(set);
          std::vector<std::pair<uint32_t, double>> ones;
          for (uint32_t s : set) ones.emplace_back(s, 1.0);
          clamped.AddEntries(ones);
          ProbVector clamp_ref;
          ws.MultiplyLegacy(clamped, m, &clamp_ref);
          ws.MultiplyClamped(x, m, set, &got, &mt);
          EXPECT_LE(got.MaxAbsDiff(clamp_ref), kTol);
        }
      }
    }
  }
}

TEST(SpmvKernelsIsaTest, ForcedIsaRunsAreDeterministic) {
  const uint64_t seed = ustdb::testing::TestSeed(1234);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  util::Rng rng(seed);
  const CsrMatrix m = RandomSubStochastic(120, 120, 6, 1.0, &rng);
  const CsrMatrix mt = m.Transposed();
  const ProbVector x0 = RandomVector(120, 4, false, &rng);
  for (const kernels::Isa isa : SupportedIsas()) {
    ScopedIsa forced(isa);
    ASSERT_TRUE(forced.forced()) << kernels::IsaName(isa);
    const auto propagate = [&] {
      VecMatWorkspace ws;
      ProbVector v = x0;
      for (int s = 0; s < 30; ++s) ws.Multiply(v, m, &v, &mt);
      return v.ToDense();
    };
    EXPECT_EQ(propagate(), propagate()) << kernels::IsaName(isa);
  }
}

TEST(SpmvKernelsIsaTest, ScatterPathsBitIdenticalAcrossIsas) {
  // The scatter kernels' contract is per-slot mul+add in row order —
  // stronger than the 1e-12 gather tolerance: with no transpose passed,
  // Multiply always scatters, and every ISA must produce the baseline's
  // bits exactly.
  const uint64_t seed = ustdb::testing::TestSeed(0xBEEF);
  SCOPED_TRACE(ustdb::testing::SeedTrace(seed));
  util::Rng rng(seed);
  for (const uint32_t n : kTailSizes) {
    const CsrMatrix m = RandomSubStochastic(n, n, std::min(n, 8u), 1.0, &rng);
    for (const bool dense_rep : {false, true}) {
      const ProbVector x = RandomVector(n, n / 2 + 1, dense_rep, &rng);
      std::vector<double> baseline_bits;
      {
        ScopedIsa forced(kernels::Isa::kBaseline);
        VecMatWorkspace ws;
        ProbVector out;
        ws.Multiply(x, m, &out);
        baseline_bits = out.ToDense();
      }
      for (const kernels::Isa isa : SupportedIsas()) {
        ScopedIsa forced(isa);
        VecMatWorkspace ws;
        ProbVector out;
        ws.Multiply(x, m, &out);
        EXPECT_EQ(out.ToDense(), baseline_bits)
            << kernels::IsaName(isa) << " n=" << n;
      }
    }
  }
}

TEST(AlignedAllocTest, VectorsAreKernelAligned) {
  for (const size_t n : {size_t{1}, size_t{3}, size_t{100}, size_t{4096}}) {
    util::AlignedVector<double> v(n, 0.0);
    EXPECT_TRUE(util::IsKernelAligned(v.data())) << n;
  }
  util::AlignedVector<uint32_t> u(37, 0);
  EXPECT_TRUE(util::IsKernelAligned(u.data()));
}

TEST(ProbVectorHysteresisTest, CompactKeepsRepresentationInsideBand) {
  // Support 20% of 100 sits between kSparseThreshold (15%) and
  // kDenseThreshold (30%): Compact must leave both representations alone.
  std::vector<double> values(100, 0.0);
  for (uint32_t i = 0; i < 20; ++i) values[i * 5] = 0.05;
  ProbVector dense = ProbVector::FromDense(values).ValueOrDie();
  EXPECT_FALSE(dense.IsSparse());  // FromDense compacts; band keeps dense
  dense.Compact();
  EXPECT_FALSE(dense.IsSparse());

  std::vector<std::pair<uint32_t, double>> pairs;
  for (uint32_t i = 0; i < 20; ++i) pairs.emplace_back(i * 5, 0.05);
  ProbVector sparse = ProbVector::FromPairs(100, pairs).ValueOrDie();
  EXPECT_TRUE(sparse.IsSparse());
  sparse.Compact();
  EXPECT_TRUE(sparse.IsSparse());
}

TEST(ProbVectorHysteresisTest, CompactStillSwitchesOutsideBand) {
  // Below 15%: dense must fall back to sparse.
  std::vector<double> low(100, 0.0);
  for (uint32_t i = 0; i < 10; ++i) low[i] = 0.1;
  ProbVector v = ProbVector::FromDense(std::move(low)).ValueOrDie();
  EXPECT_TRUE(v.IsSparse());

  // Above 30%: sparse must migrate to dense.
  std::vector<std::pair<uint32_t, double>> pairs;
  for (uint32_t i = 0; i < 40; ++i) pairs.emplace_back(i, 0.025);
  ProbVector w = ProbVector::FromPairs(100, pairs).ValueOrDie();
  EXPECT_FALSE(w.IsSparse());
}

TEST(ProbVectorHysteresisTest, NoOscillationAtTheBoundary) {
  // A vector whose support sits exactly at the old single threshold used
  // to flip representations on every Compact; with the band it settles.
  std::vector<std::pair<uint32_t, double>> pairs;
  for (uint32_t i = 0; i < 30; ++i) pairs.emplace_back(i, 1.0 / 30);
  ProbVector v = ProbVector::FromPairs(100, pairs).ValueOrDie();
  const bool first = v.IsSparse();
  for (int round = 0; round < 5; ++round) {
    v.Compact();
    EXPECT_EQ(v.IsSparse(), first) << "representation flipped";
  }
}

}  // namespace
}  // namespace sparse
}  // namespace ustdb
