#include "sparse/index_set.h"

#include <gtest/gtest.h>

namespace ustdb {
namespace sparse {
namespace {

TEST(IndexSetTest, FromIndicesSortsAndDeduplicates) {
  auto s = IndexSet::FromIndices(10, {5, 1, 5, 3, 1});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->elements(), (std::vector<uint32_t>{1, 3, 5}));
  EXPECT_EQ(s->size(), 3u);
  EXPECT_TRUE(s->Contains(3));
  EXPECT_FALSE(s->Contains(2));
  EXPECT_FALSE(s->Contains(99));  // out of domain -> false, not UB
}

TEST(IndexSetTest, FromIndicesRejectsOutOfRange) {
  EXPECT_FALSE(IndexSet::FromIndices(10, {10}).ok());
  EXPECT_FALSE(IndexSet::FromIndices(0, {0}).ok());
}

TEST(IndexSetTest, FromRangeInclusive) {
  auto s = IndexSet::FromRange(10, 2, 5);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->elements(), (std::vector<uint32_t>{2, 3, 4, 5}));
  EXPECT_EQ(s->min(), 2u);
  EXPECT_EQ(s->max(), 5u);
}

TEST(IndexSetTest, FromRangeSingleElement) {
  auto s = IndexSet::FromRange(10, 7, 7);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 1u);
  EXPECT_TRUE(s->Contains(7));
}

TEST(IndexSetTest, FromRangeRejectsInvertedOrOutOfRange) {
  EXPECT_FALSE(IndexSet::FromRange(10, 5, 2).ok());
  EXPECT_FALSE(IndexSet::FromRange(10, 2, 10).ok());
}

TEST(IndexSetTest, EmptyAndAll) {
  IndexSet none = IndexSet::Empty(5);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(none.domain_size(), 5u);

  IndexSet all = IndexSet::All(5);
  EXPECT_EQ(all.size(), 5u);
  for (uint32_t i = 0; i < 5; ++i) EXPECT_TRUE(all.Contains(i));
}

TEST(IndexSetTest, ComplementPartitionsDomain) {
  auto s = IndexSet::FromIndices(6, {0, 2, 4}).ValueOrDie();
  IndexSet c = s.Complement();
  EXPECT_EQ(c.elements(), (std::vector<uint32_t>{1, 3, 5}));
  for (uint32_t i = 0; i < 6; ++i) {
    EXPECT_NE(s.Contains(i), c.Contains(i));
  }
  // Double complement is the identity.
  EXPECT_EQ(c.Complement(), s);
}

TEST(IndexSetTest, ComplementOfEmptyIsAll) {
  EXPECT_EQ(IndexSet::Empty(4).Complement(), IndexSet::All(4));
  EXPECT_EQ(IndexSet::All(4).Complement(), IndexSet::Empty(4));
}

TEST(IndexSetTest, IterationAscending) {
  auto s = IndexSet::FromIndices(100, {42, 7, 99}).ValueOrDie();
  std::vector<uint32_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen, (std::vector<uint32_t>{7, 42, 99}));
}

}  // namespace
}  // namespace sparse
}  // namespace ustdb
