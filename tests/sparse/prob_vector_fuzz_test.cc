// Stateful fuzz test: drive a ProbVector through long random operation
// sequences while mirroring every operation on a plain dense vector, and
// assert the two never diverge. This exercises the sparse<->dense
// migrations, the extract/add paths the engines hammer, and compaction.

#include <gtest/gtest.h>

#include <vector>

#include "sparse/index_set.h"
#include "sparse/prob_vector.h"
#include "util/rng.h"

namespace ustdb {
namespace sparse {
namespace {

class ProbVectorFuzzTest : public ::testing::TestWithParam<uint64_t> {};

IndexSet RandomSet(uint32_t n, util::Rng* rng) {
  const uint32_t k = static_cast<uint32_t>(rng->NextBounded(n)) + 1;
  return IndexSet::FromIndices(
             n, rng->SampleWithoutReplacement(n, std::min(k, n)))
      .ValueOrDie();
}

TEST_P(ProbVectorFuzzTest, MatchesDenseReferenceModel) {
  util::Rng rng(GetParam());
  const uint32_t n = 16 + static_cast<uint32_t>(rng.NextBounded(48));

  ProbVector v = ProbVector::Zero(n);
  std::vector<double> ref(n, 0.0);

  auto check = [&](const char* op, int step) {
    for (uint32_t i = 0; i < n; ++i) {
      ASSERT_NEAR(v.Get(i), ref[i], 1e-12)
          << op << " diverged at step " << step << ", index " << i;
    }
  };

  for (int step = 0; step < 400; ++step) {
    switch (rng.NextBounded(7)) {
      case 0: {  // AddEntries of random non-negative values
        std::vector<std::pair<uint32_t, double>> entries;
        const uint32_t count =
            static_cast<uint32_t>(rng.NextBounded(6)) + 1;
        for (uint32_t k = 0; k < count; ++k) {
          const uint32_t i = static_cast<uint32_t>(rng.NextBounded(n));
          const double x = rng.NextDouble();
          entries.emplace_back(i, x);
          ref[i] += x;
        }
        v.AddEntries(entries);
        check("AddEntries", step);
        break;
      }
      case 1: {  // ExtractMassIn
        const IndexSet set = RandomSet(n, &rng);
        double expected = 0.0;
        for (uint32_t i : set) {
          expected += ref[i];
          ref[i] = 0.0;
        }
        EXPECT_NEAR(v.ExtractMassIn(set), expected, 1e-10);
        check("ExtractMassIn", step);
        break;
      }
      case 2: {  // ExtractEntriesIn + AddEntries round trip elsewhere
        const IndexSet set = RandomSet(n, &rng);
        const auto extracted = v.ExtractEntriesIn(set);
        for (const auto& [i, x] : extracted) {
          EXPECT_NEAR(ref[i], x, 1e-12);
          ref[i] = 0.0;
        }
        check("ExtractEntriesIn", step);
        // Put them back.
        v.AddEntries(extracted);
        for (const auto& [i, x] : extracted) ref[i] += x;
        check("ExtractEntriesIn/AddBack", step);
        break;
      }
      case 3: {  // Scale
        const double f = rng.NextDouble() * 2.0;
        v.Scale(f);
        for (double& x : ref) x *= f;
        check("Scale", step);
        break;
      }
      case 4: {  // PointwiseMultiply with a random mask vector
        std::vector<double> mask(n);
        for (double& x : mask) {
          x = rng.NextBounded(3) == 0 ? 0.0 : rng.NextDouble();
        }
        auto mask_v = ProbVector::FromDense(mask).ValueOrDie();
        ASSERT_TRUE(v.PointwiseMultiply(mask_v).ok());
        for (uint32_t i = 0; i < n; ++i) ref[i] *= mask[i];
        // PointwiseMultiply compacts: epsilon-dead entries may be dropped.
        for (double& x : ref) {
          if (x != 0.0 && x < kProbEpsilon) x = 0.0;
        }
        check("PointwiseMultiply", step);
        break;
      }
      case 5: {  // Compact (must be value-preserving above epsilon)
        v.Compact();
        for (double& x : ref) {
          if (x != 0.0 && x < kProbEpsilon) x = 0.0;
        }
        check("Compact", step);
        break;
      }
      default: {  // Aggregates
        double sum = 0.0;
        double max = 0.0;
        for (double x : ref) {
          sum += x;
          max = std::max(max, x);
        }
        EXPECT_NEAR(v.Sum(), sum, 1e-9);
        EXPECT_NEAR(v.MaxValue(), max, 1e-12);
        uint32_t support = 0;
        for (double x : ref) support += (x != 0.0);
        EXPECT_EQ(v.Support(), support);
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProbVectorFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace sparse
}  // namespace ustdb
