#include "exact/possible_worlds.h"

#include <gtest/gtest.h>

#include "testing/random_models.h"
#include "util/compensated_sum.h"
#include "util/rng.h"

namespace ustdb {
namespace exact {
namespace {

using ::ustdb::testing::PaperChainV;
using ::ustdb::testing::RandomChain;
using ::ustdb::testing::RandomDistribution;

TEST(EnumerateWorldsTest, CountsAndMassForPaperChain) {
  // From s2 with horizon 1 there are exactly 2 worlds (s2->s1, s2->s3).
  markov::MarkovChain chain = PaperChainV();
  const auto worlds =
      EnumerateWorlds(chain, sparse::ProbVector::Delta(3, 1), 1)
          .ValueOrDie();
  ASSERT_EQ(worlds.size(), 2u);
  util::CompensatedSum total;
  for (const World& w : worlds) {
    EXPECT_EQ(w.path.size(), 2u);
    EXPECT_EQ(w.path[0], 1u);
    total.Add(w.probability);
  }
  EXPECT_NEAR(total.Total(), 1.0, 1e-12);
}

TEST(EnumerateWorldsTest, TotalMassAlwaysOne) {
  util::Rng rng(7);
  markov::MarkovChain chain = RandomChain(6, 3, &rng);
  const sparse::ProbVector initial = RandomDistribution(6, 2, &rng);
  for (Timestamp horizon : {0u, 1u, 3u, 5u}) {
    const auto worlds =
        EnumerateWorlds(chain, initial, horizon).ValueOrDie();
    util::CompensatedSum total;
    for (const World& w : worlds) total.Add(w.probability);
    EXPECT_NEAR(total.Total(), 1.0, 1e-10) << "horizon " << horizon;
  }
}

TEST(EnumerateWorldsTest, HorizonZeroEnumeratesSupport) {
  markov::MarkovChain chain = PaperChainV();
  auto initial =
      sparse::ProbVector::FromPairs(3, {{0, 0.5}, {2, 0.5}}).ValueOrDie();
  const auto worlds = EnumerateWorlds(chain, initial, 0).ValueOrDie();
  EXPECT_EQ(worlds.size(), 2u);
}

TEST(EnumerateWorldsTest, GuardTripsOnBlowup) {
  util::Rng rng(8);
  markov::MarkovChain chain = RandomChain(10, 10, &rng);
  const auto r = EnumerateWorlds(chain, sparse::ProbVector::Delta(10, 0), 8,
                                 /*max_worlds=*/1'000);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kOutOfRange);
}

TEST(EnumerateWorldsTest, PathProbabilitiesAreChainProducts) {
  markov::MarkovChain chain = PaperChainV();
  const auto worlds =
      EnumerateWorlds(chain, sparse::ProbVector::Delta(3, 1), 2)
          .ValueOrDie();
  for (const World& w : worlds) {
    double expected = 1.0;
    for (size_t t = 0; t + 1 < w.path.size(); ++t) {
      expected *= chain.matrix().Get(w.path[t], w.path[t + 1]);
    }
    EXPECT_NEAR(w.probability, expected, 1e-12);
  }
}

TEST(ExistsByEnumerationTest, PaperRunningExample) {
  markov::MarkovChain chain = PaperChainV();
  auto window = core::QueryWindow::FromRanges(3, 0, 1, 2, 3).ValueOrDie();
  EXPECT_NEAR(
      ExistsByEnumeration(chain, sparse::ProbVector::Delta(3, 1), window)
          .ValueOrDie(),
      0.864, 1e-12);
}

TEST(KTimesByEnumerationTest, PaperRunningExample) {
  markov::MarkovChain chain = PaperChainV();
  auto window = core::QueryWindow::FromRanges(3, 0, 1, 2, 3).ValueOrDie();
  const auto dist =
      KTimesByEnumeration(chain, sparse::ProbVector::Delta(3, 1), window)
          .ValueOrDie();
  ASSERT_EQ(dist.size(), 3u);
  EXPECT_NEAR(dist[0], 0.136, 1e-12);
  EXPECT_NEAR(dist[1], 0.672, 1e-12);
  EXPECT_NEAR(dist[2], 0.192, 1e-12);
}

TEST(ForAllByEnumerationTest, ComplementOfExistsOnComplementRegion) {
  util::Rng rng(9);
  markov::MarkovChain chain = RandomChain(5, 3, &rng);
  auto window = core::QueryWindow::FromRanges(5, 1, 2, 1, 4).ValueOrDie();
  const sparse::ProbVector initial = RandomDistribution(5, 2, &rng);
  const double forall =
      ForAllByEnumeration(chain, initial, window).ValueOrDie();
  core::QueryWindow complement = window.WithComplementRegion();
  const double exists_c =
      ExistsByEnumeration(chain, initial, complement).ValueOrDie();
  EXPECT_NEAR(forall, 1.0 - exists_c, 1e-10);
}

TEST(MultiObsByEnumerationTest, SectionVIExample) {
  markov::MarkovChain chain = ::ustdb::testing::PaperChainVI();
  auto window = core::QueryWindow::FromRanges(3, 0, 1, 1, 2).ValueOrDie();
  std::vector<core::Observation> obs;
  obs.push_back({0, sparse::ProbVector::Delta(3, 0)});
  obs.push_back({3, sparse::ProbVector::Delta(3, 1)});
  EXPECT_NEAR(MultiObsExistsByEnumeration(chain, obs, window).ValueOrDie(),
              0.0, 1e-12);
}

TEST(MultiObsByEnumerationTest, RejectsContradictions) {
  auto chain = markov::MarkovChain::FromDense(
                   {{0, 1, 0}, {0, 0, 1}, {1, 0, 0}})
                   .ValueOrDie();
  auto window = core::QueryWindow::FromRanges(3, 2, 2, 1, 2).ValueOrDie();
  std::vector<core::Observation> obs;
  obs.push_back({0, sparse::ProbVector::Delta(3, 0)});
  obs.push_back({1, sparse::ProbVector::Delta(3, 0)});
  const auto r = MultiObsExistsByEnumeration(chain, obs, window);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInconsistent);
}

}  // namespace
}  // namespace exact
}  // namespace ustdb
