// Shared fixture for the sharding suites: one spec builds a clustered
// multi-chain Database and its sharded twin from the SAME model/object
// stream, so any divergence a test observes is the router's fault, never
// the generator's. Chains come in similarity families (perturbations of a
// family base) to exercise the cluster co-location invariant; objects are
// dealt round-robin across chains.

#ifndef USTDB_TESTS_TESTING_SHARDED_FIXTURE_H_
#define USTDB_TESTS_TESTING_SHARDED_FIXTURE_H_

#include <utility>
#include <vector>

#include "core/database.h"
#include "core/shard_router.h"
#include "testing/random_models.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace ustdb {
namespace testing {

/// Shape of one generated database pair.
struct ShardedSpec {
  uint32_t num_states = 30;
  /// Independent similarity families; each founds its own cluster.
  uint32_t num_families = 3;
  /// Perturbed chains per family (>= 1; the family base included).
  uint32_t chains_per_family = 2;
  uint32_t num_objects = 120;
  uint32_t pdf_support = 3;
  uint32_t row_nnz = 3;
  /// Weight jitter of the perturbed family members — well inside
  /// Database::kChainClusterL1Threshold so families cluster as intended.
  double jitter = 0.05;
  uint64_t seed = 99;
};

/// A plain Database and a ShardedDatabase built from one model stream.
/// Chain and object ids agree across the two by construction.
struct ShardedPair {
  core::Database unsharded;
  core::ShardedDatabase sharded;

  explicit ShardedPair(uint32_t num_shards)
      : sharded(core::ShardingOptions{.num_shards = num_shards}) {}
};

/// Builds the pair. All randomness flows from spec.seed; building twice
/// with the same spec gives bit-identical databases.
inline ShardedPair MakeShardedPair(const ShardedSpec& spec,
                                   uint32_t num_shards) {
  ShardedPair pair(num_shards);
  util::Rng rng(spec.seed);

  // Chain stream: family bases first draw fresh supports (near-certain to
  // found distinct clusters), members perturb their base in place.
  std::vector<ChainId> chains;
  for (uint32_t f = 0; f < spec.num_families; ++f) {
    markov::MarkovChain base =
        RandomChain(spec.num_states, spec.row_nnz, &rng);
    for (uint32_t c = 0; c < spec.chains_per_family; ++c) {
      markov::MarkovChain chain =
          c == 0 ? markov::MarkovChain(base)
                 : workload::PerturbChain(base, spec.jitter, &rng)
                       .ValueOrDie();
      const ChainId a = pair.unsharded.AddChain(markov::MarkovChain(chain));
      const ChainId b = pair.sharded.AddChain(std::move(chain));
      (void)b;
      chains.push_back(a);
    }
  }

  // Object stream: round-robin over chains, single observation at t=0.
  for (uint32_t i = 0; i < spec.num_objects; ++i) {
    const ChainId chain = chains[i % chains.size()];
    sparse::ProbVector pdf =
        RandomDistribution(spec.num_states, spec.pdf_support, &rng);
    (void)pair.unsharded.AddObjectAt(chain, sparse::ProbVector(pdf))
        .ValueOrDie();
    (void)pair.sharded.AddObjectAt(chain, std::move(pdf)).ValueOrDie();
  }
  return pair;
}

}  // namespace testing
}  // namespace ustdb

#endif  // USTDB_TESTS_TESTING_SHARDED_FIXTURE_H_
