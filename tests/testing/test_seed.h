// Env-overridable RNG seeding for the randomized suites: every property
// test derives its seeds through TestSeed(), so one environment variable
//
//   USTDB_TEST_SEED=12345 ./core_bounds_refine_property_test
//
// replays a CI failure locally without recompiling, and each test scopes
// a trace so the failing seed is printed with any assertion failure.

#ifndef USTDB_TESTS_TESTING_TEST_SEED_H_
#define USTDB_TESTS_TESTING_TEST_SEED_H_

#include <cstdint>
#include <cstdlib>
#include <string>

namespace ustdb {
namespace testing {

/// The test's base seed: USTDB_TEST_SEED when set to a valid non-negative
/// integer, else `fallback` (the seed the test has always hardcoded, so
/// default runs stay bit-identical to the pre-override suite).
inline uint64_t TestSeed(uint64_t fallback) {
  if (const char* env = std::getenv("USTDB_TEST_SEED")) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return static_cast<uint64_t>(value);
  }
  return fallback;
}

/// Message for SCOPED_TRACE so any failure names the seed that produced
/// it and how to replay it.
inline std::string SeedTrace(uint64_t seed) {
  return "seed=" + std::to_string(seed) +
         " (replay with USTDB_TEST_SEED=" + std::to_string(seed) + ")";
}

}  // namespace testing
}  // namespace ustdb

#endif  // USTDB_TESTS_TESTING_TEST_SEED_H_
