// Shared test fixtures: the paper's running-example chains and random model
// builders used across the engine test suites.

#ifndef USTDB_TESTS_TESTING_RANDOM_MODELS_H_
#define USTDB_TESTS_TESTING_RANDOM_MODELS_H_

#include <utility>
#include <vector>

#include "markov/markov_chain.h"
#include "sparse/prob_vector.h"
#include "util/rng.h"

namespace ustdb {
namespace testing {

/// Section V's running-example chain:
///   ( 0    0   1  )
///   ( 0.6  0   0.4)
///   ( 0    0.8 0.2)
inline markov::MarkovChain PaperChainV() {
  return markov::MarkovChain::FromDense(
             {{0.0, 0.0, 1.0}, {0.6, 0.0, 0.4}, {0.0, 0.8, 0.2}})
      .ValueOrDie();
}

/// Section VI's variant with row 2 = (0.5, 0, 0.5).
inline markov::MarkovChain PaperChainVI() {
  return markov::MarkovChain::FromDense(
             {{0.0, 0.0, 1.0}, {0.5, 0.0, 0.5}, {0.0, 0.8, 0.2}})
      .ValueOrDie();
}

/// Random row-stochastic chain with `row_nnz` strictly positive entries per
/// row (columns drawn uniformly).
inline markov::MarkovChain RandomChain(uint32_t n, uint32_t row_nnz,
                                       util::Rng* rng) {
  std::vector<sparse::Triplet> t;
  for (uint32_t r = 0; r < n; ++r) {
    const auto cols = rng->SampleWithoutReplacement(n, std::min(row_nnz, n));
    double total = 0.0;
    std::vector<double> w(cols.size());
    for (double& x : w) {
      x = rng->NextDouble() + 1e-3;
      total += x;
    }
    for (size_t k = 0; k < cols.size(); ++k) {
      t.push_back({r, cols[k], w[k] / total});
    }
  }
  return markov::MarkovChain::FromTriplets(n, std::move(t)).ValueOrDie();
}

/// Random distribution with `support` non-zeros, normalized to mass one.
inline sparse::ProbVector RandomDistribution(uint32_t n, uint32_t support,
                                             util::Rng* rng) {
  const auto idx = rng->SampleWithoutReplacement(n, std::min(support, n));
  std::vector<std::pair<uint32_t, double>> pairs;
  for (uint32_t i : idx) pairs.emplace_back(i, rng->NextDouble() + 1e-6);
  return sparse::ProbVector::FromPairs(n, std::move(pairs),
                                       /*normalize=*/true)
      .ValueOrDie();
}

}  // namespace testing
}  // namespace ustdb

#endif  // USTDB_TESTS_TESTING_RANDOM_MODELS_H_
