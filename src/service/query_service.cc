#include "service/query_service.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <deque>
#include <map>
#include <optional>
#include <thread>
#include <utility>

#include "core/planner.h"
#include "util/cancellation.h"
#include "util/fault_injector.h"
#include "util/parallel_for.h"

namespace ustdb {
namespace service {

namespace {

/// Completed-request latencies kept per shard for the percentile
/// estimates: large enough that p99 is meaningful, small enough that a
/// long-lived service never grows.
constexpr size_t kLatencyReservoir = 4096;

using Clock = std::chrono::steady_clock;

/// Draws one fault decision at a service-owned injection point. The
/// service's submit/merge paths speak Status, so a `throw` rule is
/// converted here — a fault must resolve the ticket, never unwind into
/// the caller's frame. Inactive injector = one relaxed atomic load.
util::Status InjectServicePoint(util::FaultPoint point, int32_t shard = -1) {
  util::FaultInjector* injector = util::FaultInjector::Active();
  if (injector == nullptr) return util::Status::OK();
  try {
    return injector->Inject(point, shard);
  } catch (const util::FaultInjectedError& e) {
    return util::Status::Unavailable(e.what());
  }
}

}  // namespace

namespace internal {

/// Shared state behind one ticket: the pending request, its cancellation
/// source, and the one-shot outcome slot. `mu` guards outcome/resolved/
/// taken; the request itself is written at submit and — in sharded mode,
/// where the router keeps it for merge metadata (object_filter) — read
/// only by merging dispatchers afterwards.
struct TicketState {
  std::mutex mu;
  std::condition_variable cv;
  bool resolved = false;
  bool taken = false;
  std::optional<util::Result<core::QueryResult>> outcome;
  /// First-resolution-wins claim, taken before any side effect of
  /// Resolve(). Shutdown can race a shed/retry path to the same ticket;
  /// whoever exchanges this first owns the resolution, the loser returns
  /// without touching stats or the outcome slot.
  std::atomic<bool> claimed{false};
  /// Sub-request retry attempts consumed by this ticket (slow-ring
  /// annotation; incremented by dispatcher threads).
  std::atomic<uint32_t> retries{0};

  util::CancellationSource cancel;
  core::QueryRequest request;
  Priority priority = Priority::kInteractive;
  Clock::time_point submitted_at;
  /// The request's trace (sampled or caller-attached), kept here because
  /// legacy routing moves the request into its identity sub. Null for the
  /// untraced majority.
  std::shared_ptr<obs::QueryTrace> trace;
  /// Stashed copy of request.predicate for the slow-query record (same
  /// move-at-routing reason as `deadline` below).
  core::PredicateKind predicate = core::PredicateKind::kExists;
  /// Stashed copy of request.deadline: in legacy mode the request moves
  /// into its identity sub at routing, before the submit-time deadline
  /// check runs.
  std::optional<Clock::time_point> deadline;
  /// Stashed copies of the resilience knobs (same move-at-routing
  /// reason): the retry budget survives the sub request being moved into
  /// the executor, and the degrade willingness is read at admission.
  core::RetryPolicy retry;
  core::DegradeMode degrade_mode = core::DegradeMode::kNever;
};

/// One per-shard sub-request of a routed parent plus the metadata its
/// result needs to merge back.
struct SubRoute {
  uint32_t shard = 0;
  core::QueryRequest request;  // moved out by the dispatcher that runs it
                               // (copied instead when retries are budgeted)
  /// Parent result position of each sub entry, in the sub's evaluation
  /// order. The position predicates (kExists / kForAll / kKTimes) scatter
  /// through it at merge; every predicate reads it to name a failed sub's
  /// missing objects in a partial answer.
  std::vector<ObjectId> positions;
  /// Retry attempts consumed by this sub; guarded by queue_mu_.
  uint32_t attempts = 0;
};

/// Scatter-gather state of one parent request: one slot per sub, filled
/// by shard dispatchers; the dispatcher completing the last sub merges
/// and resolves the parent on its own thread (the slot writes
/// happen-before the merge via the acq_rel countdown).
struct GatherState {
  std::shared_ptr<TicketState> parent;
  /// Legacy single-executor mode: one sub, pass the outcome through
  /// untouched (no id translation, no stats merge).
  bool identity = false;
  /// The router pinned kAutoPerChain because a forced kBoundsThenRefine
  /// request had an ineligible (non-contiguous) window; the merge adds
  /// the single bound_fallbacks increment the unsharded executor would
  /// have recorded.
  bool add_bound_fallback = false;
  std::vector<SubRoute> subs;
  std::vector<std::optional<util::Result<core::QueryResult>>> results;
  std::atomic<size_t> remaining{0};
};

/// Shared state behind one standing query. Locking split (see the
/// members in query_service.h): `dirty` and `request.window` are guarded
/// by the service's subs_mu_; `last_answer` and sequence advancement are
/// touched only inside the refresh_mu_-serialized refresh round;
/// `cancelled` is atomic so the handle's Cancel() never takes a service
/// lock.
struct SubscriptionState {
  uint64_t id = 0;
  core::QueryRequest request;  // current (possibly slid) window
  WindowPolicy policy;
  SubscriptionCallback callback;
  std::atomic<bool> cancelled{false};
  std::atomic<uint64_t> sequence{0};  ///< last delivered; 0 = none yet
  bool dirty = true;  ///< first refresh delivers the full set as entered
  /// Last delivered answer set, ascending by object id.
  std::vector<core::ObjectProbability> last_answer;
};

LatencyPercentiles MergeLatencyPercentiles(
    const std::vector<std::vector<double>>& reservoirs) {
  std::vector<double> pool;
  for (const std::vector<double>& reservoir : reservoirs) {
    pool.insert(pool.end(), reservoir.begin(), reservoir.end());
  }
  LatencyPercentiles out;
  if (pool.empty()) return out;
  std::sort(pool.begin(), pool.end());
  const auto at = [&pool](double q) {
    return pool[static_cast<size_t>(q * (pool.size() - 1))];
  };
  out.p50_ms = at(0.50);
  out.p99_ms = at(0.99);
  return out;
}

}  // namespace internal

using internal::GatherState;
using internal::SubRoute;
using internal::SubscriptionState;
using internal::TicketState;

// ---------------------------------------------------------------------------
// QueryTicket
// ---------------------------------------------------------------------------

void QueryTicket::Cancel() {
  if (state_ != nullptr) state_->cancel.RequestStop();
}

bool QueryTicket::resolved() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->resolved;
}

bool QueryTicket::WaitFor(std::chrono::milliseconds timeout) const {
  if (state_ == nullptr) return false;
  std::unique_lock<std::mutex> lock(state_->mu);
  return state_->cv.wait_for(lock, timeout,
                             [this] { return state_->resolved; });
}

util::Result<core::QueryResult> QueryTicket::Get() {
  if (state_ == nullptr) {
    return util::Status::FailedPrecondition("ticket is not valid");
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->resolved; });
  if (state_->taken) {
    return util::Status::FailedPrecondition(
        "ticket result was already taken");
  }
  state_->taken = true;
  return std::move(*state_->outcome);
}

// ---------------------------------------------------------------------------
// Subscription
// ---------------------------------------------------------------------------

uint64_t Subscription::id() const {
  return state_ != nullptr ? state_->id : 0;
}

void Subscription::Cancel() {
  if (state_ != nullptr) {
    state_->cancelled.store(true, std::memory_order_release);
  }
}

bool Subscription::cancelled() const {
  return state_ != nullptr &&
         state_->cancelled.load(std::memory_order_acquire);
}

uint64_t Subscription::last_sequence() const {
  return state_ != nullptr
             ? state_->sequence.load(std::memory_order_acquire)
             : 0;
}

// ---------------------------------------------------------------------------
// QueryService internals
// ---------------------------------------------------------------------------

/// One queued entry of a shard lane: which sub of which gather to run.
struct QueryService::ShardTask {
  std::shared_ptr<GatherState> gather;
  size_t sub_index = 0;
};

/// Everything one shard owns: its executor (cache + worker slice), its
/// two-lane queue (guarded by the service-wide queue_mu_), its dispatcher
/// thread, and its telemetry (guarded by stats_mu_).
struct QueryService::ShardLane {
  core::QueryExecutor executor;  // dispatcher thread only
  std::condition_variable work_cv;
  std::deque<ShardTask> lanes[2];
  std::thread dispatcher;

  /// Serializes this shard's executor runs against its ingest appends:
  /// the dispatcher holds it across Run/RunBatch, AppendObservation holds
  /// it while mutating this shard's Database. Per shard — an append stalls
  /// only the owning shard's dispatch, and the executor's start-of-run
  /// epoch stamp is exact because the database cannot advance mid-run.
  std::mutex db_mu;

  /// Health state machine of this shard (lock-free; see resilience.h).
  ShardHealthTracker health;

  /// Sub-requests waiting out a retry backoff; guarded by queue_mu_.
  /// Promoted back into their priority lane once due (immediately on
  /// shutdown). Retries bypass the capacity check — they were admitted
  /// once already.
  struct RetryEntry {
    Clock::time_point due;
    ShardTask task;
  };
  std::vector<RetryEntry> retries;

  core::EngineCacheStats cache_snapshot;
  std::vector<double> latencies_ms;  // bounded reservoir, ring-indexed
  size_t latency_next = 0;

  ShardLane(const core::Database* db, core::ExecutorOptions options,
            const HealthPolicy& policy)
      : executor(db, options), health(policy) {}
};

/// Registry handles the service feeds, resolved once at construction so
/// the hot path is one striped relaxed add (counters), one lock-free
/// bucket add (histograms), or one relaxed store (the depth gauge) per
/// event. Absent entirely (obs_ == nullptr) when ObsOptions::enabled is
/// false. Outcome counters live in one "ustdb_service_requests_total"
/// family labeled by outcome; per-shard series carry a "shard" label
/// matching the shard executors' own metrics.
struct QueryService::ObsHandles {
  obs::Counter* submitted;
  /// Indexed by the Resolve() classification: ok, cancelled, deadline,
  /// rejected, failed, partial.
  obs::Counter* outcomes[6];
  obs::Counter* traces_sampled;
  obs::Counter* scatter_requests;
  obs::Counter* scatter_subtasks;
  obs::Gauge* queue_depth;
  /// Resilience families. Shed counters are labeled by shed_reason;
  /// retries/degraded are service-wide, health/quarantine/probe/watchdog
  /// series carry the shard label.
  obs::Counter* shed_bulk;
  obs::Counter* shed_interactive;
  obs::Counter* retries;
  obs::Counter* degraded;
  /// Continuous-query families: one ingest counter pair (applied /
  /// rejected), an ingest latency histogram, and the subscription
  /// lifecycle counters + active gauge.
  obs::Counter* ingest_applied;
  obs::Counter* ingest_rejected;
  obs::Histogram* ingest_latency;
  obs::Counter* subscription_refreshes;
  obs::Counter* subscription_deltas;
  obs::Gauge* subscriptions_active;

  struct Shard {
    obs::Histogram* queue_wait;  ///< submit -> dequeued by the dispatcher
    obs::Histogram* dispatch;    ///< dequeue -> executor run returned
    obs::Histogram* latency;     ///< submit -> resolve, OK outcomes only
    obs::Counter* solo;
    obs::Counter* coalesced_batches;
    obs::Counter* coalesced_requests;
    obs::Gauge* health;  ///< ShardHealth as 0/1/2 (see health_state docs)
    obs::Counter* quarantines;
    obs::Counter* probes;
    obs::Counter* watchdog_trips;
  };
  std::vector<Shard> shards;

  ObsHandles(const obs::ObsOptions& opts, size_t num_shards) {
    obs::MetricsRegistry* reg = opts.ResolvedRegistry();
    const obs::Labels& base = opts.labels;
    const auto with = [&base](const std::string& key,
                              const std::string& value) {
      obs::Labels labels = base;
      labels[key] = value;
      return labels;
    };
    const auto outcome_counter = [&](const char* outcome) {
      return reg->GetCounter("ustdb_service_requests_total",
                             with("outcome", outcome),
                             "Tickets resolved, by outcome", "requests");
    };
    submitted = reg->GetCounter("ustdb_service_submitted_total", base,
                                "Tickets handed out by Submit/SubmitBurst",
                                "requests");
    outcomes[0] = outcome_counter("ok");
    outcomes[1] = outcome_counter("cancelled");
    outcomes[2] = outcome_counter("deadline");
    outcomes[3] = outcome_counter("rejected");
    outcomes[4] = outcome_counter("failed");
    outcomes[5] = outcome_counter("partial");
    const auto shed_counter = [&](const char* reason) {
      return reg->GetCounter("ustdb_service_shed_total",
                             with("shed_reason", reason),
                             "Submissions shed by admission control",
                             "requests");
    };
    shed_bulk = shed_counter("bulk_overload");
    shed_interactive = shed_counter("interactive_overload");
    retries = reg->GetCounter("ustdb_service_retries_total", base,
                              "Sub-request retry attempts scheduled",
                              "retries");
    degraded = reg->GetCounter(
        "ustdb_service_degraded_total", base,
        "Requests answered from interval bounds alone", "requests");
    traces_sampled = reg->GetCounter(
        "ustdb_service_traces_sampled_total", base,
        "Submissions that got a rate-sampled QueryTrace attached",
        "requests");
    const auto ingest_counter = [&](const char* outcome) {
      return reg->GetCounter("ustdb_ingest_total", with("outcome", outcome),
                             "Observations ingested, by outcome",
                             "observations");
    };
    ingest_applied = ingest_counter("applied");
    ingest_rejected = ingest_counter("rejected");
    ingest_latency = reg->GetHistogram(
        "ustdb_ingest_seconds", base,
        "Apply + invalidation-bookkeeping time of each append", "seconds");
    subscription_refreshes = reg->GetCounter(
        "ustdb_subscription_refreshes_total", base,
        "Refresh rounds that ran >= 1 standing query", "rounds");
    subscription_deltas = reg->GetCounter(
        "ustdb_subscription_deltas_total", base,
        "Answer-set deltas delivered to subscription callbacks", "deltas");
    subscriptions_active = reg->GetGauge(
        "ustdb_subscriptions_active", base,
        "Registered, not-yet-cancelled standing queries", "subscriptions");
    scatter_requests = reg->GetCounter(
        "ustdb_service_scatter_requests_total", base,
        "Requests the router scattered across >= 2 shard lanes",
        "requests");
    scatter_subtasks = reg->GetCounter(
        "ustdb_service_scatter_subtasks_total", base,
        "Per-shard sub-requests enqueued by scattered requests",
        "requests");
    queue_depth =
        reg->GetGauge("ustdb_service_queue_depth", base,
                      "Queued entries across all lanes and shards",
                      "requests");
    shards.resize(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      obs::Labels labels = with("shard", std::to_string(s));
      const auto shard_with = [&labels](const std::string& key,
                                        const std::string& value) {
        obs::Labels merged = labels;
        merged[key] = value;
        return merged;
      };
      shards[s].queue_wait = reg->GetHistogram(
          "ustdb_service_queue_wait_seconds", labels,
          "Submit-to-dequeue wait of each dispatched entry", "seconds");
      shards[s].dispatch = reg->GetHistogram(
          "ustdb_service_dispatch_seconds", labels,
          "Dequeue-to-run-returned time of each dispatch", "seconds");
      shards[s].latency = reg->GetHistogram(
          "ustdb_service_request_latency_seconds", labels,
          "End-to-end latency of OK requests (matches the reservoir "
          "percentiles' population)",
          "seconds");
      shards[s].solo =
          reg->GetCounter("ustdb_service_dispatches_total",
                          shard_with("kind", "solo"),
                          "Dispatches, by single-entry vs coalesced drain",
                          "dispatches");
      shards[s].coalesced_batches =
          reg->GetCounter("ustdb_service_dispatches_total",
                          shard_with("kind", "coalesced"),
                          "Dispatches, by single-entry vs coalesced drain",
                          "dispatches");
      shards[s].coalesced_requests = reg->GetCounter(
          "ustdb_service_coalesced_requests_total", labels,
          "Queued entries carried by coalesced dispatches", "requests");
      shards[s].health = reg->GetGauge(
          "ustdb_service_shard_health", labels,
          "Shard health state: 0=healthy, 1=degraded, 2=quarantined",
          "state");
      shards[s].quarantines = reg->GetCounter(
          "ustdb_service_quarantines_total", labels,
          "Transitions into kQuarantined (failures + watchdog trips)",
          "transitions");
      shards[s].probes = reg->GetCounter(
          "ustdb_service_probes_total", labels,
          "Probe sub-requests admitted to a quarantined shard", "probes");
      shards[s].watchdog_trips = reg->GetCounter(
          "ustdb_service_watchdog_trips_total", labels,
          "Dispatcher-stall watchdog trips", "trips");
    }
  }
};

namespace {

ServiceOptions Sanitize(ServiceOptions options) {
  if (options.queue_capacity == 0) options.queue_capacity = 1;
  if (options.max_batch == 0) options.max_batch = 1;
  return options;
}

/// Field-wise merge of per-shard ExecStats into the parent's: counters
/// sum (each shard's work is disjoint — co-located clusters make even the
/// PruneStats sums equal the unsharded run's), threads_used sums the
/// shard slices, batch_group_members takes the max (groups never span
/// shards, so "largest group this request shared" is the honest global
/// reading).
void AccumulateStats(const core::ExecStats& in, core::ExecStats* out) {
  out->chains_object_based += in.chains_object_based;
  out->chains_query_based += in.chains_query_based;
  out->objects_evaluated += in.objects_evaluated;
  out->objects_multi_observation += in.objects_multi_observation;
  out->threads_used += in.threads_used;
  out->cache_hits += in.cache_hits;
  out->cache_misses += in.cache_misses;
  out->cache_evictions += in.cache_evictions;
  out->cache_invalidations += in.cache_invalidations;
  out->cache_shift_extends += in.cache_shift_extends;
  out->batch_group_members =
      std::max(out->batch_group_members, in.batch_group_members);
  out->group_subtasks += in.group_subtasks;
  out->prune.clusters_total += in.prune.clusters_total;
  out->prune.clusters_bounded += in.prune.clusters_bounded;
  out->prune.clusters_pruned += in.prune.clusters_pruned;
  out->prune.clusters_refined += in.prune.clusters_refined;
  out->prune.objects_decided_by_bounds += in.prune.objects_decided_by_bounds;
  out->prune.objects_refined += in.prune.objects_refined;
  out->prune.objects_decided_early += in.prune.objects_decided_early;
  out->prune.bound_fallbacks += in.prune.bound_fallbacks;
}

}  // namespace

// ---------------------------------------------------------------------------
// QueryService
// ---------------------------------------------------------------------------

QueryService::QueryService(const core::Database* db, ServiceOptions options)
    : db_(db), options_(Sanitize(options)), paused_(options.start_paused) {
  core::ExecutorOptions exec = options_.executor;
  exec.obs = options_.obs;
  exec.obs.labels["shard"] = "0";
  shards_.push_back(std::make_unique<ShardLane>(db, exec, options_.health));
  if (options_.obs.enabled) {
    obs_ = std::make_unique<ObsHandles>(options_.obs, 1);
  }
  shards_[0]->dispatcher = std::thread([this] { DispatcherLoop(0); });
}

QueryService::QueryService(const core::ShardedDatabase* db,
                           ServiceOptions options)
    : sharded_(db), options_(Sanitize(options)), paused_(options.start_paused) {
  // Slice the worker budget evenly: ExecutorOptions::num_threads is the
  // TOTAL (0 = hardware default), each shard executor gets its share,
  // never less than one worker.
  core::ExecutorOptions per_shard = options_.executor;
  const unsigned total = util::ResolveThreadCount(per_shard.num_threads);
  const uint32_t num_shards = std::max(1u, db->num_shards());
  per_shard.num_threads = std::max(1u, total / num_shards);
  shards_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    core::ExecutorOptions exec = per_shard;
    exec.obs = options_.obs;
    exec.obs.labels["shard"] = std::to_string(s);
    shards_.push_back(
        std::make_unique<ShardLane>(&db->shard(s), exec, options_.health));
  }
  if (options_.obs.enabled) {
    obs_ = std::make_unique<ObsHandles>(options_.obs, num_shards);
  }
  for (uint32_t s = 0; s < num_shards; ++s) {
    shards_[s]->dispatcher = std::thread([this, s] { DispatcherLoop(s); });
  }
}

QueryService::QueryService(core::Database* db, ServiceOptions options)
    : QueryService(static_cast<const core::Database*>(db),
                   std::move(options)) {
  mutable_db_ = db;
}

QueryService::QueryService(core::ShardedDatabase* db, ServiceOptions options)
    : QueryService(static_cast<const core::ShardedDatabase*>(db),
                   std::move(options)) {
  mutable_sharded_ = db;
}

QueryService::~QueryService() { Shutdown(); }

std::shared_ptr<TicketState> QueryService::PrepareState(
    core::QueryRequest request, Priority priority) {
  auto state = std::make_shared<TicketState>();
  state->priority = priority;
  state->submitted_at = Clock::now();
  state->deadline = request.deadline;
  state->predicate = request.predicate;
  state->retry = request.retry;
  state->degrade_mode = request.degrade;
  // Trace attachment: honor a caller-supplied trace always; otherwise
  // sample every Nth submission (epoch = the submission instant just
  // stamped, so span offsets read as time-since-submit).
  if (request.trace != nullptr) {
    state->trace = request.trace;
  } else if (obs_ != nullptr && options_.obs.trace_sample_every > 0) {
    const uint64_t seq =
        submit_seq_.fetch_add(1, std::memory_order_relaxed);
    if (seq % options_.obs.trace_sample_every == 0) {
      state->trace =
          std::make_shared<obs::QueryTrace>(state->submitted_at);
      request.trace = state->trace;
      obs_->traces_sampled->Add(1);
    }
  }
  // Link the ticket's source beneath any caller-supplied token: both
  // QueryTicket::Cancel() and the caller's own source stop the run.
  state->cancel = util::CancellationSource(request.cancel);
  request.cancel = state->cancel.token();
  state->request = std::move(request);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submitted;
  }
  if (obs_ != nullptr) obs_->submitted->Add(1);
  return state;
}

util::Status QueryService::BuildRoute(
    const std::shared_ptr<TicketState>& state,
    std::shared_ptr<GatherState>* out) const {
  auto gather = std::make_shared<GatherState>();
  gather->parent = state;

  if (sharded_ == nullptr) {
    // Legacy single-executor mode: one identity sub; the executor sees
    // the caller's request verbatim (filter validation included).
    gather->identity = true;
    SubRoute sub;
    sub.shard = 0;
    sub.request = std::move(state->request);
    gather->subs.push_back(std::move(sub));
  } else {
    const core::QueryRequest& req = state->request;
    const uint32_t num_shards = sharded_->num_shards();
    const bool filtered = req.object_filter.has_value();

    // Bucket the evaluated set per shard, translating global object ids
    // to shard-local ones and remembering each entry's parent result
    // position. Without a filter every shard evaluates its whole local
    // database, whose local order IS ascending global order.
    std::vector<std::vector<ObjectId>> filters(num_shards);
    std::vector<std::vector<ObjectId>> positions(num_shards);
    if (filtered) {
      for (size_t p = 0; p < req.object_filter->size(); ++p) {
        const ObjectId global = (*req.object_filter)[p];
        if (global >= sharded_->num_objects()) {
          // Same error the executor reports on an untranslatable filter.
          return util::Status::InvalidArgument(
              "object_filter references an id outside the database");
        }
        const uint32_t s = sharded_->shard_of_object(global);
        filters[s].push_back(sharded_->local_object(global));
        positions[s].push_back(static_cast<ObjectId>(p));
      }
    } else {
      for (uint32_t s = 0; s < num_shards; ++s) {
        const uint32_t n = sharded_->shard(s).num_objects();
        positions[s].reserve(n);
        for (ObjectId local = 0; local < n; ++local) {
          positions[s].push_back(sharded_->global_object(s, local));
        }
      }
    }

    // Whole-request plan decision for kThresholdExists, made ONCE from
    // the global view: ChooseThresholdPlan's break-even sums over every
    // chain of the request, so per-shard re-decisions could diverge from
    // the unsharded pipeline. Sub-requests get the outcome pinned —
    // kBoundsThenRefine (forced; each shard bounds its own co-located
    // clusters) or kAutoPerChain (per-chain cost model, never the
    // whole-request bound plan).
    core::PlanChoice pinned = req.plan;
    bool add_fallback = false;
    if (req.predicate == core::PredicateKind::kThresholdExists &&
        (req.plan == core::PlanChoice::kAuto ||
         req.plan == core::PlanChoice::kBoundsThenRefine)) {
      if (!req.window.has_contiguous_times()) {
        // The executor would fall back to per-chain planning; a forced
        // bound plan records the fallback exactly once at merge.
        add_fallback = req.plan == core::PlanChoice::kBoundsThenRefine;
        pinned = core::PlanChoice::kAutoPerChain;
      } else if (req.plan == core::PlanChoice::kAuto) {
        std::map<ChainId, uint32_t> load_map;
        for (uint32_t s = 0; s < num_shards; ++s) {
          const core::Database& shard_db = sharded_->shard(s);
          const size_t n =
              filtered ? filters[s].size() : shard_db.num_objects();
          for (size_t i = 0; i < n; ++i) {
            const ObjectId local =
                filtered ? filters[s][i] : static_cast<ObjectId>(i);
            // Census via the lock-free mirror: this submit-path loop runs
            // without the shard's ingest lock, and reading the object's
            // history directly would race a concurrent append.
            if (shard_db.object_needs_multi_engine(local)) continue;
            ++load_map[sharded_->global_chain(s, shard_db.object(local).chain)];
          }
        }
        std::vector<core::ChainLoad> loads;
        loads.reserve(load_map.size());
        for (const auto& [chain, count] : load_map) {
          loads.push_back({chain, count});
        }
        const core::QueryPlanner planner(&sharded_->routing_db());
        const core::PlanDecision decision = planner.ChooseThresholdPlan(
            req.window, req.matrix_mode, req.plan, loads);
        pinned = decision.plan == core::Plan::kBoundsThenRefine
                     ? core::PlanChoice::kBoundsThenRefine
                     : core::PlanChoice::kAutoPerChain;
      }
    }
    gather->add_bound_fallback = add_fallback;

    const auto make_sub = [&](uint32_t s) {
      SubRoute sub;
      sub.shard = s;
      sub.request.predicate = req.predicate;
      sub.request.window = req.window;
      sub.request.tau = req.tau;
      sub.request.k = req.k;
      sub.request.plan = pinned;
      sub.request.matrix_mode = req.matrix_mode;
      sub.request.degrade = req.degrade;
      if (filtered) sub.request.object_filter = std::move(filters[s]);
      sub.request.cancel = req.cancel;  // the parent-linked token
      sub.request.deadline = req.deadline;
      sub.request.trace = req.trace;  // shared: all subs append to it
      sub.positions = std::move(positions[s]);
      return sub;
    };
    for (uint32_t s = 0; s < num_shards; ++s) {
      const bool has_work =
          filtered ? !filters[s].empty() : sharded_->shard(s).num_objects() > 0;
      if (has_work) gather->subs.push_back(make_sub(s));
    }
    if (gather->subs.empty()) {
      // Empty database or empty filter: one empty sub against shard 0
      // produces the executor's empty result (and its stats) verbatim.
      gather->subs.push_back(make_sub(0));
    }
  }

  gather->results.resize(gather->subs.size());
  gather->remaining.store(gather->subs.size(), std::memory_order_relaxed);
  *out = std::move(gather);
  return util::Status::OK();
}

util::Status QueryService::TryEnqueueLocked(
    const std::shared_ptr<GatherState>& gather, Priority priority,
    std::unique_lock<std::mutex>* lock, bool allow_block) {
  if (stopping_) {
    return util::Status::Unavailable("query service is shut down");
  }
  const int lane = static_cast<int>(priority);
  // All-or-nothing admission: every target shard's lane needs a slot (at
  // most one sub per shard), or the whole request rejects/blocks. Subs
  // pre-resolved by the health gate (quarantined targets) never enqueue.
  const auto has_space = [this, &gather, lane] {
    for (size_t i = 0; i < gather->subs.size(); ++i) {
      if (gather->results[i].has_value()) continue;
      const SubRoute& sub = gather->subs[i];
      if (shards_[sub.shard]->lanes[lane].size() >= options_.queue_capacity) {
        return false;
      }
    }
    return true;
  };
  if (!has_space()) {
    if (options_.backpressure == BackpressurePolicy::kReject ||
        !allow_block) {
      return util::Status::Unavailable("submission queue full");
    }
    space_cv_.wait(*lock, [this, &has_space] {
      return stopping_ || has_space();
    });
    if (stopping_) {
      return util::Status::Unavailable("query service is shut down");
    }
  }
  for (size_t i = 0; i < gather->subs.size(); ++i) {
    if (gather->results[i].has_value()) continue;
    shards_[gather->subs[i].shard]->lanes[lane].push_back(
        ShardTask{gather, i});
  }
  const size_t depth = QueueDepthLocked();
  queue_peak_ = std::max(queue_peak_, depth);
  if (obs_ != nullptr) obs_->queue_depth->Set(static_cast<double>(depth));
  return util::Status::OK();
}

void QueryService::NotifyTargets(const GatherState& gather) {
  for (const SubRoute& sub : gather.subs) {
    shards_[sub.shard]->work_cv.notify_one();
  }
}

ShardHealth QueryService::shard_health(uint32_t shard) const {
  return shards_[shard]->health.health();
}

void QueryService::CheckWatchdogs(Clock::time_point now) {
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s]->health.CheckWatchdog(now)) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.watchdog_trips;
        ++stats_.quarantines;
      }
      if (obs_ != nullptr) {
        obs_->shards[s].watchdog_trips->Add(1);
        obs_->shards[s].quarantines->Add(1);
        obs_->shards[s].health->Set(
            static_cast<double>(ShardHealth::kQuarantined));
      }
    }
  }
}

void QueryService::RecordShardOutcome(uint32_t shard,
                                      const util::Status& status) {
  ShardHealthTracker& tracker = shards_[shard]->health;
  if (status.ok()) {
    const bool recovered = tracker.RecordSuccess();
    if (recovered && obs_ != nullptr) {
      obs_->shards[shard].health->Set(
          static_cast<double>(ShardHealth::kHealthy));
    }
    return;
  }
  const util::StatusCode code = status.code();
  if (code == util::StatusCode::kUnavailable ||
      code == util::StatusCode::kInternal) {
    const ShardHealth before = tracker.health();
    const ShardHealth after = tracker.RecordFailure(Clock::now());
    if (after == ShardHealth::kQuarantined &&
        before != ShardHealth::kQuarantined) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.quarantines;
      }
      if (obs_ != nullptr) obs_->shards[shard].quarantines->Add(1);
    }
    if (after != before && obs_ != nullptr) {
      obs_->shards[shard].health->Set(static_cast<double>(after));
    }
    return;
  }
  // Caller-attributable outcomes (cancel, deadline, invalid argument) say
  // nothing about the shard — but a probe that ends this way must free
  // the probe slot or a quarantined shard would never re-probe.
  tracker.ProbeAborted();
}

util::Status QueryService::ApplyHealthGate(
    const std::shared_ptr<GatherState>& gather) {
  const Clock::time_point now = Clock::now();
  size_t live = 0;
  uint64_t probes = 0;
  std::vector<size_t> dropped;
  for (size_t i = 0; i < gather->subs.size(); ++i) {
    bool is_probe = false;
    if (shards_[gather->subs[i].shard]->health.AdmitToShard(now,
                                                            &is_probe)) {
      if (is_probe) {
        ++probes;
        if (obs_ != nullptr) {
          obs_->shards[gather->subs[i].shard].probes->Add(1);
        }
      }
      ++live;
    } else {
      dropped.push_back(i);
    }
  }
  if (live == 0) {
    return util::Status::Unavailable(
        "all target shards are quarantined; retry after the probe backoff");
  }
  if (!dropped.empty()) {
    if (!options_.partial_results) {
      return util::Status::Unavailable(
          "shard " + std::to_string(gather->subs[dropped.front()].shard) +
          " is quarantined and partial results are disabled");
    }
    // Pre-resolve the quarantined subs: they never enqueue, the merge
    // sees their slots as transient failures and answers partially.
    for (size_t i : dropped) {
      gather->results[i].emplace(util::Status::Unavailable(
          "shard " + std::to_string(gather->subs[i].shard) +
          " is quarantined"));
    }
    gather->remaining.store(live, std::memory_order_relaxed);
  }
  if (probes > 0) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.probes += probes;
  }
  return util::Status::OK();
}

util::Status QueryService::MaybeShedLocked(const GatherState& gather,
                                           Priority priority,
                                           bool* degrade_instead) {
  *degrade_instead = false;
  const OverloadPolicy& policy = options_.overload;
  if (!policy.enabled) return util::Status::OK();
  const size_t capacity =
      shards_.size() * 2 * options_.queue_capacity;
  const double fraction =
      capacity == 0 ? 0.0
                    : static_cast<double>(QueueDepthLocked()) /
                          static_cast<double>(capacity);
  // Optional queue-wait p99 signal from the always-on histograms: any
  // shard's tail past the limit counts as overload for bulk traffic.
  bool wait_overload = false;
  if (policy.max_queue_wait_p99.count() > 0 && obs_ != nullptr) {
    const double limit_s =
        std::chrono::duration<double>(policy.max_queue_wait_p99).count();
    for (const ObsHandles::Shard& shard : obs_->shards) {
      if (shard.queue_wait->Percentile(0.99) > limit_s) {
        wait_overload = true;
        break;
      }
    }
  }
  const auto retry_hint = [&policy] {
    return "; retry after " + std::to_string(policy.retry_after.count()) +
           "ms";
  };
  if (priority == Priority::kBulk) {
    if (fraction >= policy.shed_bulk_at || wait_overload) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.shed_bulk;
      }
      if (obs_ != nullptr) obs_->shed_bulk->Add(1);
      return util::Status::Unavailable(
          "overloaded: bulk submission shed" + retry_hint());
    }
    return util::Status::OK();
  }
  if (fraction >= policy.shed_interactive_at) {
    // A threshold query that opted into degradation answers from interval
    // bounds alone instead of being shed: certain objects decided, the
    // borderline reported as [lo, hi] (see QueryResult::undecided).
    if (gather.parent->degrade_mode == core::DegradeMode::kUnderPressure &&
        gather.parent->predicate ==
            core::PredicateKind::kThresholdExists) {
      *degrade_instead = true;
      return util::Status::OK();
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.shed_interactive;
    }
    if (obs_ != nullptr) obs_->shed_interactive->Add(1);
    return util::Status::Unavailable(
        "overloaded: interactive submission shed" + retry_hint());
  }
  return util::Status::OK();
}

bool QueryService::MaybeScheduleRetry(
    const std::shared_ptr<GatherState>& gather, size_t sub_index,
    const util::Result<core::QueryResult>& outcome, uint32_t shard) {
  TicketState& parent = *gather->parent;
  if (parent.retry.max_retries == 0) return false;
  if (outcome.ok() ||
      outcome.status().code() != util::StatusCode::kUnavailable) {
    return false;
  }
  if (parent.cancel.stop_requested()) return false;
  std::lock_guard<std::mutex> lock(queue_mu_);
  // Shutdown wins: a retry scheduled now would outlive the dispatcher
  // drain. The sub completes with its error instead (exactly-once).
  if (stopping_) return false;
  SubRoute& sub = gather->subs[sub_index];
  if (sub.attempts >= parent.retry.max_retries) return false;
  const uint32_t attempt = sub.attempts++;
  // Per-ticket jitter seed: decorrelates concurrent tickets' backoffs
  // while staying reproducible for a pinned clock in tests.
  const uint64_t seed =
      static_cast<uint64_t>(parent.submitted_at.time_since_epoch().count()) ^
      (0x9E3779B97f4A7C15ULL * (sub_index + 1));
  const Clock::time_point due =
      Clock::now() + RetryBackoff(parent.retry, attempt, seed);
  // A retry that cannot finish before the deadline is pointless: let the
  // current failure stand rather than burn backoff into a sure expiry.
  if (parent.deadline.has_value() && due >= *parent.deadline) return false;
  ShardLane& lane = *shards_[shard];
  lane.retries.push_back(
      ShardLane::RetryEntry{due, ShardTask{gather, sub_index}});
  parent.retries.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.retries;
  }
  if (obs_ != nullptr) obs_->retries->Add(1);
  lane.work_cv.notify_one();
  return true;
}

void QueryService::PromoteRetriesLocked(ShardLane& lane,
                                        Clock::time_point now) {
  for (size_t i = 0; i < lane.retries.size();) {
    if (lane.retries[i].due <= now) {
      ShardTask task = std::move(lane.retries[i].task);
      const int priority = static_cast<int>(task.gather->parent->priority);
      lane.lanes[priority].push_back(std::move(task));
      lane.retries[i] = std::move(lane.retries.back());
      lane.retries.pop_back();
    } else {
      ++i;
    }
  }
}

QueryTicket QueryService::Submit(core::QueryRequest request,
                                 Priority priority) {
  std::shared_ptr<TicketState> state =
      PrepareState(std::move(request), priority);
  QueryTicket ticket{std::shared_ptr<TicketState>(state)};

  // Queue-admission fault point, drawn outside the lock so a stall rule
  // delays only this submission. The watchdog sweep rides the same path:
  // submitting threads are the ones guaranteed to keep arriving while a
  // dispatcher is wedged.
  const util::Status admission =
      InjectServicePoint(util::FaultPoint::kQueueAdmission);
  CheckWatchdogs(Clock::now());

  std::shared_ptr<GatherState> gather;
  util::Status route = BuildRoute(state, &gather);

  // Shutdown outranks the deadline check, which outranks injected
  // admission faults, which outrank routing errors: after Shutdown()
  // *every* submission resolves Unavailable, even one that is also
  // expired or unroutable.
  util::Status enqueue = util::Status::OK();
  bool degrade_instead = false;
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    if (stopping_) {
      enqueue = util::Status::Unavailable("query service is shut down");
    } else if (state->deadline.has_value() &&
               Clock::now() >= *state->deadline) {
      enqueue = util::Status::DeadlineExceeded(
          "deadline already passed at submission");
    } else if (!admission.ok()) {
      enqueue = admission;
    } else if (!route.ok()) {
      enqueue = std::move(route);
    } else if (enqueue = ApplyHealthGate(gather); !enqueue.ok()) {
      // resolved below
    } else if (enqueue = MaybeShedLocked(*gather, priority, &degrade_instead);
               !enqueue.ok()) {
      // resolved below
    } else {
      if (degrade_instead) {
        for (SubRoute& sub : gather->subs) {
          sub.request.degrade = core::DegradeMode::kBoundsOnly;
        }
      }
      enqueue = TryEnqueueLocked(gather, priority, &lock,
                                 /*allow_block=*/true);
    }
  }
  if (!enqueue.ok()) {
    // A probe admitted by the health gate that never enqueued must free
    // its slot, or the quarantined shard would never re-probe. Harmless
    // for non-probe targets.
    if (gather != nullptr) {
      for (const SubRoute& sub : gather->subs) {
        shards_[sub.shard]->health.ProbeAborted();
      }
    }
    Resolve(state, std::move(enqueue), /*latency_shard=*/0);
    return ticket;
  }
  if (gather->subs.size() >= 2) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.scatter_requests;
      stats_.scatter_subtasks += gather->subs.size();
    }
    if (obs_ != nullptr) {
      obs_->scatter_requests->Add(1);
      obs_->scatter_subtasks->Add(gather->subs.size());
    }
  }
  NotifyTargets(*gather);
  return ticket;
}

std::vector<QueryTicket> QueryService::SubmitBurst(
    std::vector<core::QueryRequest> requests, Priority priority) {
  std::vector<std::shared_ptr<TicketState>> states;
  states.reserve(requests.size());
  std::vector<QueryTicket> tickets;
  tickets.reserve(requests.size());
  for (core::QueryRequest& request : requests) {
    states.push_back(PrepareState(std::move(request), priority));
    tickets.push_back(QueryTicket{states.back()});
  }

  // Per-entry queue-admission fault draws and the watchdog sweep, both
  // outside the lock (a stall rule delays the burst, not the lock).
  std::vector<util::Status> admissions;
  admissions.reserve(states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    admissions.push_back(
        InjectServicePoint(util::FaultPoint::kQueueAdmission));
  }
  CheckWatchdogs(Clock::now());

  // Route outside the lock (translation and plan pinning are pure), then
  // take one queue lock for the whole burst: the dispatchers see either
  // none or all of it, so an idle service drains the burst as one
  // coalesced batch per shard.
  std::vector<std::shared_ptr<GatherState>> gathers(states.size());
  std::vector<util::Status> routes;
  routes.reserve(states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    routes.push_back(BuildRoute(states[i], &gathers[i]));
  }

  std::vector<std::pair<size_t, util::Status>> failures;
  std::vector<size_t> admitted;
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    for (size_t i = 0; i < states.size(); ++i) {
      // stopping_ only changes under queue_mu_, but check it per entry so
      // the shutdown status outranks the deadline one, like in Submit().
      if (stopping_) {
        failures.emplace_back(
            i, util::Status::Unavailable("query service is shut down"));
        continue;
      }
      if (states[i]->deadline.has_value() &&
          Clock::now() >= *states[i]->deadline) {
        failures.emplace_back(i, util::Status::DeadlineExceeded(
                                     "deadline already passed at submission"));
        continue;
      }
      if (!admissions[i].ok()) {
        failures.emplace_back(i, std::move(admissions[i]));
        continue;
      }
      if (!routes[i].ok()) {
        failures.emplace_back(i, std::move(routes[i]));
        continue;
      }
      util::Status s = ApplyHealthGate(gathers[i]);
      bool degrade_instead = false;
      if (s.ok()) {
        s = MaybeShedLocked(*gathers[i], priority, &degrade_instead);
      }
      if (s.ok()) {
        if (degrade_instead) {
          for (SubRoute& sub : gathers[i]->subs) {
            sub.request.degrade = core::DegradeMode::kBoundsOnly;
          }
        }
        s = TryEnqueueLocked(gathers[i], priority, &lock,
                             /*allow_block=*/false);
      }
      if (!s.ok()) {
        for (const SubRoute& sub : gathers[i]->subs) {
          shards_[sub.shard]->health.ProbeAborted();
        }
        failures.emplace_back(i, std::move(s));
        continue;
      }
      admitted.push_back(i);
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    for (size_t i : admitted) {
      if (gathers[i]->subs.size() >= 2) {
        ++stats_.scatter_requests;
        stats_.scatter_subtasks += gathers[i]->subs.size();
        if (obs_ != nullptr) {
          obs_->scatter_requests->Add(1);
          obs_->scatter_subtasks->Add(gathers[i]->subs.size());
        }
      }
    }
  }
  for (size_t i : admitted) NotifyTargets(*gathers[i]);
  for (auto& [index, status] : failures) {
    Resolve(states[index], std::move(status), /*latency_shard=*/0);
  }
  return tickets;
}

void QueryService::DispatcherLoop(uint32_t shard) {
  ShardLane& lane = *shards_[shard];
  for (;;) {
    std::vector<ShardTask> taken;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      for (;;) {
        // Retries whose backoff elapsed rejoin their lane; on shutdown
        // every pending retry promotes immediately — drain semantics,
        // the backoff no longer buys anything.
        PromoteRetriesLocked(lane, stopping_ ? Clock::time_point::max()
                                             : Clock::now());
        const bool work =
            !lane.lanes[0].empty() || !lane.lanes[1].empty();
        if (stopping_ || (!paused_ && work)) break;
        if (!paused_ && !lane.retries.empty()) {
          Clock::time_point due = lane.retries.front().due;
          for (const ShardLane::RetryEntry& entry : lane.retries) {
            due = std::min(due, entry.due);
          }
          lane.work_cv.wait_until(lock, due);
        } else {
          lane.work_cv.wait(lock);
        }
      }
      if (lane.lanes[0].empty() && lane.lanes[1].empty()) {
        if (stopping_) return;
        continue;  // spurious or pause-toggle wake
      }
      // One lane per drain, interactive whenever it has work — coalescing
      // never crosses lanes, so a batched dispatch cannot make an
      // interactive ticket wait on bulk members' engines. Shutdown drains
      // the same way, iterating until both lanes are empty.
      auto& queue = lane.lanes[0].empty() ? lane.lanes[1] : lane.lanes[0];
      const size_t want = options_.coalesce ? options_.max_batch : 1;
      while (taken.size() < want && !queue.empty()) {
        taken.push_back(std::move(queue.front()));
        queue.pop_front();
      }
      if (obs_ != nullptr) {
        obs_->queue_depth->Set(static_cast<double>(QueueDepthLocked()));
      }
    }
    space_cv_.notify_all();
    Dispatch(shard, std::move(taken));
  }
}

void QueryService::Dispatch(uint32_t shard, std::vector<ShardTask> taken) {
  // Dispatch fault point (the `shardN` spec sites): a firing fail/throw
  // rule fails this whole drain — every taken sub completes with the
  // injected status and flows through the usual retry/merge machinery.
  if (util::FaultInjector::Active() != nullptr) {
    util::Status injected = InjectServicePoint(
        util::FaultPoint::kDispatch, static_cast<int32_t>(shard));
    if (!injected.ok()) {
      for (ShardTask& task : taken) {
        CompleteSub(task.gather, task.sub_index, injected, shard);
      }
      return;
    }
  }
  // Resolve entries that went stale while queued without paying for
  // engines: cancel-before-dequeue and expire-in-queue land here.
  const Clock::time_point now = Clock::now();
  std::vector<ShardTask> runnable;
  runnable.reserve(taken.size());
  for (ShardTask& task : taken) {
    const TicketState& parent = *task.gather->parent;
    const core::QueryRequest& sub =
        task.gather->subs[task.sub_index].request;
    if (parent.cancel.stop_requested()) {
      CompleteSub(task.gather, task.sub_index,
                  util::Status::Cancelled("query cancelled while queued"),
                  shard);
      continue;
    }
    if (sub.deadline.has_value() && now >= *sub.deadline) {
      CompleteSub(task.gather, task.sub_index,
                  util::Status::DeadlineExceeded(
                      "query deadline passed while queued"),
                  shard);
      continue;
    }
    runnable.push_back(std::move(task));
  }
  if (runnable.empty()) return;

  // Queue-wait accounting per runnable entry, reusing the staleness
  // check's clock read: always-on aggregate histogram, exact kQueue span
  // for the traced few.
  bool any_traced = false;
  for (const ShardTask& task : runnable) {
    const TicketState& parent = *task.gather->parent;
    if (obs_ != nullptr) {
      obs_->shards[shard].queue_wait->Observe(
          std::chrono::duration<double>(now - parent.submitted_at).count());
    }
    if (parent.trace != nullptr) {
      any_traced = true;
      parent.trace->Record(obs::Stage::kQueue, parent.submitted_at, now,
                           static_cast<int32_t>(shard));
    }
  }
  const bool timing = obs_ != nullptr || any_traced;

  ShardLane& lane = *shards_[shard];
  if (runnable.size() == 1) {
    ShardTask& task = runnable.front();
    lane.health.MarkDispatchStart(now);
    // Ingest serialization: the run sees a frozen shard database, so the
    // executor's start-of-run epoch stamp names the exact data the whole
    // answer derives from.
    util::Result<core::QueryResult> result =
        [&]() -> util::Result<core::QueryResult> {
      std::lock_guard<std::mutex> db_lock(lane.db_mu);
      return lane.executor.Run(task.gather->subs[task.sub_index].request);
    }();
    lane.health.MarkDispatchEnd();
    const Clock::time_point run_end =
        timing ? Clock::now() : Clock::time_point();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.solo_dispatches;
      lane.cache_snapshot = lane.executor.cache_stats();
    }
    if (obs_ != nullptr) {
      obs_->shards[shard].solo->Add(1);
      obs_->shards[shard].dispatch->Observe(
          std::chrono::duration<double>(run_end - now).count());
    }
    if (const auto& trace = task.gather->parent->trace; trace != nullptr) {
      trace->Record(obs::Stage::kDispatch, now, run_end,
                    static_cast<int32_t>(shard), "batch=1");
    }
    CompleteSub(task.gather, task.sub_index, std::move(result), shard);
    return;
  }

  // The coalescing step: one RunBatch over the whole drain. The executor
  // groups members by (effective window, matrix mode) internally, so every
  // same-window subset shares one backward pass per chain.
  std::vector<core::QueryRequest> requests;
  requests.reserve(runnable.size());
  for (ShardTask& task : runnable) {
    core::QueryRequest& sub = task.gather->subs[task.sub_index].request;
    if (task.gather->parent->retry.max_retries > 0) {
      // Keep the sub request intact: a transient failure re-runs it after
      // backoff. Without a retry budget the move stays free.
      requests.push_back(sub);
    } else {
      requests.push_back(std::move(sub));
    }
  }
  lane.health.MarkDispatchStart(now);
  std::vector<util::Result<core::QueryResult>> results;
  {
    std::lock_guard<std::mutex> db_lock(lane.db_mu);  // see solo path
    results = lane.executor.RunBatch(requests);
  }
  lane.health.MarkDispatchEnd();
  const Clock::time_point run_end =
      timing ? Clock::now() : Clock::time_point();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.coalesced_batches;
    stats_.coalesced_requests += runnable.size();
    lane.cache_snapshot = lane.executor.cache_stats();
  }
  if (obs_ != nullptr) {
    obs_->shards[shard].coalesced_batches->Add(1);
    obs_->shards[shard].coalesced_requests->Add(runnable.size());
    obs_->shards[shard].dispatch->Observe(
        std::chrono::duration<double>(run_end - now).count());
  }
  if (any_traced) {
    const std::string detail = "batch=" + std::to_string(runnable.size());
    for (const ShardTask& task : runnable) {
      if (const auto& trace = task.gather->parent->trace;
          trace != nullptr) {
        trace->Record(obs::Stage::kDispatch, now, run_end,
                      static_cast<int32_t>(shard), detail);
      }
    }
  }
  for (size_t i = 0; i < runnable.size(); ++i) {
    CompleteSub(runnable[i].gather, runnable[i].sub_index,
                std::move(results[i]), shard);
  }
}

void QueryService::CompleteSub(const std::shared_ptr<GatherState>& gather,
                               size_t sub_index,
                               util::Result<core::QueryResult> outcome,
                               uint32_t shard) {
  RecordShardOutcome(
      shard, outcome.ok() ? util::Status::OK() : outcome.status());
  // A transient failure within the retry budget re-queues the sub after
  // backoff instead of completing it; the countdown is untouched, so the
  // parent cannot resolve while a retry is pending.
  if (MaybeScheduleRetry(gather, sub_index, outcome, shard)) return;
  gather->results[sub_index].emplace(std::move(outcome));
  // acq_rel: the slot write above happens-before the merging thread's
  // reads of every slot.
  if (gather->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    MergeAndResolve(gather, shard);
  }
}

void QueryService::MergeAndResolve(
    const std::shared_ptr<GatherState>& gather, uint32_t shard) {
  const std::shared_ptr<obs::QueryTrace>& trace = gather->parent->trace;
  const Clock::time_point m0 =
      trace != nullptr ? Clock::now() : Clock::time_point();
  const auto record_merge = [&] {
    if (trace != nullptr) {
      trace->Record(obs::Stage::kMerge, m0, Clock::now(),
                    static_cast<int32_t>(shard));
    }
  };
  // Merge fault point: a firing fail/throw rule fails the whole parent
  // (a stall just delays the merge).
  if (util::Status injected = InjectServicePoint(util::FaultPoint::kMerge);
      !injected.ok()) {
    record_merge();
    Resolve(gather->parent, std::move(injected), shard);
    return;
  }

  // Classify sub outcomes. Stop codes and non-transient errors fail the
  // whole parent — the lowest sub index (= lowest target shard) wins so
  // concurrent failures resolve deterministically, exactly as before the
  // resilience layer. Transient failures (kUnavailable / kInternal, post
  // retry budget) tolerate a flagged partial answer when enabled and at
  // least one shard answered.
  size_t ok_count = 0;
  std::optional<size_t> first_fatal;
  std::optional<size_t> first_transient;
  for (size_t i = 0; i < gather->results.size(); ++i) {
    const util::Result<core::QueryResult>& slot = *gather->results[i];
    if (slot.ok()) {
      ++ok_count;
      continue;
    }
    const util::StatusCode code = slot.status().code();
    if (code != util::StatusCode::kUnavailable &&
        code != util::StatusCode::kInternal) {
      if (!first_fatal.has_value()) first_fatal = i;
    } else if (!first_transient.has_value()) {
      first_transient = i;
    }
  }
  if (first_fatal.has_value()) {
    record_merge();
    Resolve(gather->parent, std::move(*gather->results[*first_fatal]),
            shard);
    return;
  }
  const bool partial = first_transient.has_value();
  if (partial && (!options_.partial_results || ok_count == 0)) {
    record_merge();
    Resolve(gather->parent, std::move(*gather->results[*first_transient]),
            shard);
    return;
  }
  if (gather->identity) {
    record_merge();
    Resolve(gather->parent, std::move(*gather->results.front()), shard);
    return;
  }

  core::QueryResult merged;
  merged.stats.threads_used = 0;  // summed below
  for (const std::optional<util::Result<core::QueryResult>>& slot :
       gather->results) {
    if (!slot->ok()) continue;
    AccumulateStats(slot->value().stats, &merged.stats);
    if (slot->value().degraded_bounds) merged.degraded_bounds = true;
    // Epoch max-merge: shards share one global version sequence, so the
    // newest answering shard's epoch names the data the merged (possibly
    // partial) answer reflects.
    merged.epoch = std::max(merged.epoch, slot->value().epoch);
  }
  if (gather->add_bound_fallback) ++merged.stats.prune.bound_fallbacks;

  const core::QueryRequest& req = gather->parent->request;
  switch (req.predicate) {
    case core::PredicateKind::kExists:
    case core::PredicateKind::kForAll: {
      // Position scatter: entry j of sub i lands at its recorded parent
      // position; the id there is the parent's (filter entry or global
      // id — without a filter, position == global id). A partial answer
      // compacts the failed shards' never-filled positions away, keeping
      // the survivors in parent order.
      const size_t total = req.object_filter.has_value()
                               ? req.object_filter->size()
                               : sharded_->num_objects();
      merged.probabilities.resize(total);
      std::vector<char> filled;
      if (partial) filled.assign(total, 0);
      for (size_t i = 0; i < gather->subs.size(); ++i) {
        if (!gather->results[i]->ok()) continue;
        const SubRoute& sub = gather->subs[i];
        const core::QueryResult& result = gather->results[i]->value();
        for (size_t j = 0; j < result.probabilities.size(); ++j) {
          const ObjectId position = sub.positions[j];
          const ObjectId id = req.object_filter.has_value()
                                  ? (*req.object_filter)[position]
                                  : position;
          merged.probabilities[position] = {
              id, result.probabilities[j].probability};
          if (partial) filled[position] = 1;
        }
      }
      if (partial) {
        size_t out = 0;
        for (size_t p = 0; p < total; ++p) {
          if (filled[p]) merged.probabilities[out++] = merged.probabilities[p];
        }
        merged.probabilities.resize(out);
      }
      break;
    }
    case core::PredicateKind::kKTimes: {
      const size_t total = req.object_filter.has_value()
                               ? req.object_filter->size()
                               : sharded_->num_objects();
      merged.distributions.resize(total);
      std::vector<char> filled;
      if (partial) filled.assign(total, 0);
      for (size_t i = 0; i < gather->subs.size(); ++i) {
        if (!gather->results[i]->ok()) continue;
        const SubRoute& sub = gather->subs[i];
        core::QueryResult& result = gather->results[i]->value();
        for (size_t j = 0; j < result.distributions.size(); ++j) {
          const ObjectId position = sub.positions[j];
          const ObjectId id = req.object_filter.has_value()
                                  ? (*req.object_filter)[position]
                                  : position;
          merged.distributions[position] = {
              id, std::move(result.distributions[j].distribution)};
          if (partial) filled[position] = 1;
        }
      }
      if (partial) {
        size_t out = 0;
        for (size_t p = 0; p < total; ++p) {
          if (filled[p]) {
            merged.distributions[out++] = std::move(merged.distributions[p]);
          }
        }
        merged.distributions.resize(out);
      }
      break;
    }
    case core::PredicateKind::kThresholdExists: {
      // Partial answers carry shard-local ids in local ascending order;
      // translate and re-sort so the merged answer is ascending by
      // GLOBAL id exactly like the unsharded pipeline (after a rebalance
      // migration local order need not be a contiguous global range, so
      // a plain concatenation is not enough).
      for (size_t i = 0; i < gather->subs.size(); ++i) {
        if (!gather->results[i]->ok()) continue;
        const SubRoute& sub = gather->subs[i];
        const core::QueryResult& result = gather->results[i]->value();
        for (const core::ObjectProbability& entry : result.probabilities) {
          merged.probabilities.push_back(
              {sharded_->global_object(sub.shard, entry.id),
               entry.probability});
        }
        // Degraded (bounds-only) sub answers carry undecided intervals;
        // translate them the same way.
        for (const core::ObjectInterval& entry : result.undecided) {
          merged.undecided.push_back(
              {sharded_->global_object(sub.shard, entry.id), entry.lo,
               entry.hi});
        }
      }
      std::sort(merged.probabilities.begin(), merged.probabilities.end(),
                [](const core::ObjectProbability& a,
                   const core::ObjectProbability& b) { return a.id < b.id; });
      std::sort(merged.undecided.begin(), merged.undecided.end(),
                [](const core::ObjectInterval& a,
                   const core::ObjectInterval& b) { return a.id < b.id; });
      break;
    }
    case core::PredicateKind::kTopKExists: {
      // Global heap merge, materialized as concat + sort + truncate: the
      // comparator (probability desc, global id asc) is a strict total
      // order over unique ids, so the merged prefix is bit-identical to
      // the unsharded partial_sort no matter how objects were placed.
      for (size_t i = 0; i < gather->subs.size(); ++i) {
        if (!gather->results[i]->ok()) continue;
        const SubRoute& sub = gather->subs[i];
        for (const core::ObjectProbability& entry :
             gather->results[i]->value().probabilities) {
          merged.probabilities.push_back(
              {sharded_->global_object(sub.shard, entry.id),
               entry.probability});
        }
      }
      std::sort(merged.probabilities.begin(), merged.probabilities.end(),
                [](const core::ObjectProbability& a,
                   const core::ObjectProbability& b) {
                  if (a.probability != b.probability) {
                    return a.probability > b.probability;
                  }
                  return a.id < b.id;
                });
      const size_t take =
          std::min<size_t>(req.k, merged.probabilities.size());
      merged.probabilities.resize(take);
      break;
    }
  }
  if (partial) {
    // Label the answer: which shards failed with what, and which objects
    // therefore went unanswered. Per-shard positions name the parent's
    // objects directly (filter entries or global ids).
    merged.partial = true;
    for (size_t i = 0; i < gather->results.size(); ++i) {
      if (gather->results[i]->ok()) continue;
      const SubRoute& sub = gather->subs[i];
      const util::Status& status = gather->results[i]->status();
      merged.shard_errors.push_back(
          {sub.shard, status.code(), status.message()});
      for (const ObjectId position : sub.positions) {
        merged.missing_objects.push_back(
            req.object_filter.has_value() ? (*req.object_filter)[position]
                                          : position);
      }
    }
    std::sort(merged.missing_objects.begin(), merged.missing_objects.end());
  }
  record_merge();
  Resolve(gather->parent, std::move(merged), shard);
}

void QueryService::Resolve(const std::shared_ptr<TicketState>& state,
                           util::Result<core::QueryResult> outcome,
                           uint32_t latency_shard) {
  // First resolution wins. Shutdown can race a shed/retry path to the
  // same ticket (see shutdown_shed_race_test); whoever exchanges the
  // claim first owns stats, obs, and the outcome slot — the loser leaves
  // without a trace, so every ticket resolves exactly once.
  if (state->claimed.exchange(true, std::memory_order_acq_rel)) return;
  const double latency_ms =
      std::chrono::duration<double, std::milli>(Clock::now() -
                                                state->submitted_at)
          .count();
  const bool is_partial = outcome.ok() && outcome->partial;
  const bool is_degraded = outcome.ok() && outcome->degraded_bounds;
  const util::StatusCode code =
      !outcome.ok() ? outcome.status().code()
                    : (is_partial ? util::StatusCode::kPartial
                                  : util::StatusCode::kOk);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (is_partial) ++stats_.partial;
    if (is_degraded) ++stats_.degraded;
    switch (code) {
      case util::StatusCode::kPartial:
      case util::StatusCode::kOk: {
        ++stats_.completed;
        stats_.group_subtasks += outcome->stats.group_subtasks;
        stats_.clusters_bounded += outcome->stats.prune.clusters_bounded;
        stats_.clusters_pruned += outcome->stats.prune.clusters_pruned;
        stats_.clusters_refined += outcome->stats.prune.clusters_refined;
        ShardLane& lane = *shards_[latency_shard];
        if (lane.latencies_ms.size() < kLatencyReservoir) {
          lane.latencies_ms.push_back(latency_ms);
        } else {
          lane.latencies_ms[lane.latency_next] = latency_ms;
        }
        lane.latency_next = (lane.latency_next + 1) % kLatencyReservoir;
        break;
      }
      case util::StatusCode::kCancelled:
        ++stats_.cancelled;
        break;
      case util::StatusCode::kDeadlineExceeded:
        ++stats_.deadline_expired;
        break;
      case util::StatusCode::kUnavailable:
        ++stats_.rejected;
        break;
      default:
        ++stats_.failed;
        break;
    }
    // Slow-query ring: every traced request competes on latency; the
    // ring keeps the N slowest with their full span breakdowns.
    if (obs_ != nullptr && state->trace != nullptr &&
        options_.obs.slow_query_ring > 0) {
      SlowQuery record;
      record.latency_ms = latency_ms;
      record.predicate = state->predicate;
      record.priority = state->priority;
      record.code = code;
      record.spans = state->trace->spans();
      record.retries = state->retries.load(std::memory_order_relaxed);
      record.partial = is_partial;
      record.degraded = is_degraded;
      slow_ring_.push_back(std::move(record));
      std::sort(slow_ring_.begin(), slow_ring_.end(),
                [](const SlowQuery& a, const SlowQuery& b) {
                  return a.latency_ms > b.latency_ms;
                });
      if (slow_ring_.size() > options_.obs.slow_query_ring) {
        slow_ring_.resize(options_.obs.slow_query_ring);
      }
    }
  }
  if (obs_ != nullptr) {
    int outcome_index = 4;  // failed
    switch (code) {
      case util::StatusCode::kOk:
        outcome_index = 0;
        break;
      case util::StatusCode::kCancelled:
        outcome_index = 1;
        break;
      case util::StatusCode::kDeadlineExceeded:
        outcome_index = 2;
        break;
      case util::StatusCode::kUnavailable:
        outcome_index = 3;
        break;
      case util::StatusCode::kPartial:
        outcome_index = 5;
        break;
      default:
        break;
    }
    obs_->outcomes[outcome_index]->Add(1);
    if (is_degraded) obs_->degraded->Add(1);
    if (code == util::StatusCode::kOk ||
        code == util::StatusCode::kPartial) {
      obs_->shards[latency_shard].latency->Observe(latency_ms / 1e3);
    }
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    assert(!state->resolved && "ticket resolved twice");
    state->outcome = std::move(outcome);
    state->resolved = true;
  }
  state->cv.notify_all();
}

// ---------------------------------------------------------------------------
// Ingest + subscriptions
// ---------------------------------------------------------------------------

util::Result<DataVersion> QueryService::AppendObservation(
    ObjectId id, core::Observation obs,
    const std::shared_ptr<obs::QueryTrace>& trace) {
  if (mutable_db_ == nullptr && mutable_sharded_ == nullptr) {
    return util::Status::FailedPrecondition(
        "service was constructed over a const database; ingest is disabled");
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      return util::Status::Unavailable("query service is shut down");
    }
  }
  const bool timing = obs_ != nullptr || trace != nullptr;
  const Clock::time_point t0 = timing ? Clock::now() : Clock::time_point();
  const auto finish = [&](util::Result<DataVersion> outcome) {
    const Clock::time_point t1 = timing ? Clock::now() : Clock::time_point();
    if (trace != nullptr) {
      trace->Record(obs::Stage::kIngest, t0, t1, /*shard=*/-1,
                    outcome.ok() ? "applied" : "rejected");
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (outcome.ok()) {
        ++stats_.ingested;
      } else {
        ++stats_.ingest_rejected;
      }
    }
    if (obs_ != nullptr) {
      (outcome.ok() ? obs_->ingest_applied : obs_->ingest_rejected)->Add(1);
      obs_->ingest_latency->Observe(
          std::chrono::duration<double>(t1 - t0).count());
    }
    return outcome;
  };
  // Ingest fault point: a firing fail/throw rule rejects the append
  // before any state changes (a stall just delays the apply).
  if (util::Status injected = InjectServicePoint(util::FaultPoint::kIngest);
      !injected.ok()) {
    return finish(std::move(injected));
  }

  util::Result<DataVersion> version = [&]() -> util::Result<DataVersion> {
    if (mutable_sharded_ != nullptr) {
      if (id >= mutable_sharded_->num_objects()) {
        // Bounds check BEFORE the shard lookup: the router's own check
        // sits behind shard_of_object, which indexes unconditionally.
        return util::Status::NotFound("object " + std::to_string(id) +
                                      " does not exist");
      }
      const uint32_t s = mutable_sharded_->shard_of_object(id);
      // The shard's ingest lock serializes the whole allocate+apply
      // against that shard's dispatch AND against concurrent appends to
      // the same shard, so per-shard versions apply in increasing order.
      std::lock_guard<std::mutex> db_lock(shards_[s]->db_mu);
      return mutable_sharded_->AppendObservation(id, std::move(obs));
    }
    std::lock_guard<std::mutex> db_lock(shards_[0]->db_mu);
    return mutable_db_->AppendObservation(id, std::move(obs));
  }();
  if (version.ok()) MarkDirtyForIngest(id);
  return finish(std::move(version));
}

void QueryService::MarkDirtyForIngest(ObjectId id) {
  std::lock_guard<std::mutex> lock(subs_mu_);
  for (const std::shared_ptr<SubscriptionState>& sub : subscriptions_) {
    if (sub->cancelled.load(std::memory_order_acquire)) continue;
    if (!sub->policy.refresh_on_ingest) continue;
    const std::optional<std::vector<ObjectId>>& filter =
        sub->request.object_filter;
    if (filter.has_value() &&
        std::find(filter->begin(), filter->end(), id) == filter->end()) {
      continue;
    }
    sub->dirty = true;
  }
}

util::Result<Subscription> QueryService::Subscribe(
    core::QueryRequest request, WindowPolicy policy,
    SubscriptionCallback callback) {
  if (request.predicate == core::PredicateKind::kKTimes) {
    return util::Status::InvalidArgument(
        "kKTimes has no answer-set delta form; poll Submit() instead");
  }
  if (callback == nullptr) {
    return util::Status::InvalidArgument("subscription callback is null");
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      return util::Status::Unavailable("query service is shut down");
    }
  }
  auto state = std::make_shared<SubscriptionState>();
  // Per-refresh submissions manage their own cancellation and tracing;
  // a caller-attached trace would accumulate spans forever.
  request.trace = nullptr;
  request.cancel = util::CancellationToken();
  state->request = std::move(request);
  state->policy = policy;
  state->callback = std::move(callback);
  size_t active = 0;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    state->id = next_subscription_id_++;
    subscriptions_.push_back(state);
    for (const std::shared_ptr<SubscriptionState>& sub : subscriptions_) {
      if (!sub->cancelled.load(std::memory_order_acquire)) ++active;
    }
  }
  if (obs_ != nullptr) {
    obs_->subscriptions_active->Set(static_cast<double>(active));
  }
  return Subscription(std::move(state));
}

void QueryService::TickWindows(Timestamp steps) {
  if (steps == 0) return;
  std::lock_guard<std::mutex> lock(subs_mu_);
  for (const std::shared_ptr<SubscriptionState>& sub : subscriptions_) {
    if (sub->cancelled.load(std::memory_order_acquire)) continue;
    if (sub->policy.slide == 0) continue;
    sub->request.window =
        sub->request.window.ShiftedBy(sub->policy.slide * steps);
    sub->dirty = true;
  }
}

size_t QueryService::num_subscriptions() const {
  std::lock_guard<std::mutex> lock(subs_mu_);
  size_t active = 0;
  for (const std::shared_ptr<SubscriptionState>& sub : subscriptions_) {
    if (!sub->cancelled.load(std::memory_order_acquire)) ++active;
  }
  return active;
}

SubscriptionDelta QueryService::BuildDelta(SubscriptionState& sub,
                                           const core::QueryResult& result) {
  SubscriptionDelta delta;
  delta.subscription_id = sub.id;
  delta.epoch = result.epoch;
  delta.partial = result.partial;
  std::vector<core::ObjectProbability> now = result.probabilities;
  std::sort(now.begin(), now.end(),
            [](const core::ObjectProbability& a,
               const core::ObjectProbability& b) { return a.id < b.id; });
  // Merge-walk the id-sorted answer sets. Exact probability comparison:
  // the refresh pipeline is bit-identical to a one-shot query, so any
  // difference is a real data change, never evaluation noise.
  size_t i = 0;
  size_t j = 0;
  const std::vector<core::ObjectProbability>& prev = sub.last_answer;
  while (i < now.size() || j < prev.size()) {
    if (j == prev.size() || (i < now.size() && now[i].id < prev[j].id)) {
      delta.entered.push_back(now[i]);
      ++i;
    } else if (i == now.size() || prev[j].id < now[i].id) {
      delta.left.push_back(prev[j].id);
      ++j;
    } else {
      if (now[i].probability != prev[j].probability) {
        delta.changed.push_back(now[i]);
      }
      ++i;
      ++j;
    }
  }
  delta.sequence = sub.sequence.load(std::memory_order_relaxed) + 1;
  sub.last_answer = std::move(now);
  sub.sequence.store(delta.sequence, std::memory_order_release);
  return delta;
}

size_t QueryService::RefreshSubscriptions() {
  // One round at a time: refresh_mu_ alone guards the delivered state
  // (last_answer, sequences), and serialized rounds keep sequence
  // numbers monotonic per subscription by construction.
  std::lock_guard<std::mutex> round_lock(refresh_mu_);
  std::vector<std::shared_ptr<SubscriptionState>> round;
  std::vector<core::QueryRequest> requests;
  size_t active = 0;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    // Sweep cancelled subscriptions out of the registry while here.
    std::erase_if(subscriptions_,
                  [](const std::shared_ptr<SubscriptionState>& sub) {
                    return sub->cancelled.load(std::memory_order_acquire);
                  });
    active = subscriptions_.size();
    for (const std::shared_ptr<SubscriptionState>& sub : subscriptions_) {
      if (!sub->dirty) continue;
      sub->dirty = false;
      round.push_back(sub);
      requests.push_back(sub->request);  // window snapshot
    }
  }
  if (obs_ != nullptr) {
    obs_->subscriptions_active->Set(static_cast<double>(active));
  }
  if (round.empty()) return 0;

  // ONE burst for the whole round: the dispatchers observe it atomically,
  // so same-window standing queries coalesce into shared RunBatch groups
  // (and slid windows hit the cache's shift-extension path).
  std::vector<QueryTicket> tickets =
      SubmitBurst(std::move(requests), Priority::kInteractive);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.subscription_refreshes;
  }
  if (obs_ != nullptr) obs_->subscription_refreshes->Add(1);

  size_t delivered = 0;
  for (size_t i = 0; i < round.size(); ++i) {
    SubscriptionState& sub = *round[i];
    util::Result<core::QueryResult> result = tickets[i].Get();
    if (!result.ok()) {
      // Transient failure (backpressure rejection, quarantine, injected
      // fault): stay dirty and retry next round; the sequence number
      // never advances past a gap.
      std::lock_guard<std::mutex> lock(subs_mu_);
      sub.dirty = true;
      continue;
    }
    if (sub.cancelled.load(std::memory_order_acquire)) continue;
    const std::shared_ptr<obs::QueryTrace>& trace =
        tickets[i].state_->trace;  // sampled like any submission
    const Clock::time_point n0 =
        trace != nullptr ? Clock::now() : Clock::time_point();
    SubscriptionDelta delta = BuildDelta(sub, result.value());
    sub.callback(delta);
    ++delivered;
    if (trace != nullptr) {
      trace->Record(obs::Stage::kNotify, n0, Clock::now(), /*shard=*/-1,
                    "entered=" + std::to_string(delta.entered.size()) +
                        " left=" + std::to_string(delta.left.size()) +
                        " changed=" + std::to_string(delta.changed.size()));
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.subscription_deltas += delivered;
  }
  if (obs_ != nullptr && delivered > 0) {
    obs_->subscription_deltas->Add(delivered);
  }
  return delivered;
}

void QueryService::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
    paused_ = false;
  }
  for (std::unique_ptr<ShardLane>& lane : shards_) {
    lane->work_cv.notify_all();
  }
  space_cv_.notify_all();
  for (std::unique_ptr<ShardLane>& lane : shards_) {
    if (lane->dispatcher.joinable()) lane->dispatcher.join();
  }
}

void QueryService::Pause() {
  std::lock_guard<std::mutex> lock(queue_mu_);
  paused_ = true;
}

void QueryService::Resume() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    paused_ = false;
  }
  for (std::unique_ptr<ShardLane>& lane : shards_) {
    lane->work_cv.notify_one();
  }
}

size_t QueryService::QueueDepthLocked() const {
  size_t depth = 0;
  for (const std::unique_ptr<ShardLane>& lane : shards_) {
    depth += lane->lanes[0].size() + lane->lanes[1].size();
  }
  return depth;
}

size_t QueryService::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return QueueDepthLocked();
}

std::vector<SlowQuery> QueryService::slow_queries() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return slow_ring_;
}

ServiceStats QueryService::stats() const {
  size_t depth = 0;
  size_t peak = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    depth = QueueDepthLocked();
    peak = queue_peak_;
  }
  ServiceStats out;
  std::vector<std::vector<double>> reservoirs;
  reservoirs.reserve(shards_.size());
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
    core::EngineCacheStats cache;
    for (const std::unique_ptr<ShardLane>& lane : shards_) {
      cache.hits += lane->cache_snapshot.hits;
      cache.misses += lane->cache_snapshot.misses;
      cache.evictions += lane->cache_snapshot.evictions;
      cache.bound_hits += lane->cache_snapshot.bound_hits;
      cache.bound_misses += lane->cache_snapshot.bound_misses;
      cache.bound_evictions += lane->cache_snapshot.bound_evictions;
      cache.invalidations += lane->cache_snapshot.invalidations;
      cache.shift_extends += lane->cache_snapshot.shift_extends;
      reservoirs.push_back(lane->latencies_ms);
    }
    out.cache = cache;
  }
  out.subscriptions_active = num_subscriptions();
  const internal::LatencyPercentiles percentiles =
      internal::MergeLatencyPercentiles(reservoirs);
  out.latency_p50_ms = percentiles.p50_ms;
  out.latency_p99_ms = percentiles.p99_ms;
  out.queue_depth = depth;
  out.queue_peak = peak;
  return out;
}

}  // namespace service
}  // namespace ustdb
