#include "service/query_service.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <utility>

#include "util/cancellation.h"

namespace ustdb {
namespace service {

namespace {

/// Completed-request latencies kept for the percentile estimates: large
/// enough that p99 is meaningful, small enough that a long-lived service
/// never grows.
constexpr size_t kLatencyReservoir = 4096;

using Clock = std::chrono::steady_clock;

}  // namespace

namespace internal {

/// Shared state behind one ticket: the pending request, its cancellation
/// source, and the one-shot outcome slot. `mu` guards outcome/resolved/
/// taken; the request itself is written at submit and read only by the
/// dispatcher afterwards.
struct TicketState {
  std::mutex mu;
  std::condition_variable cv;
  bool resolved = false;
  bool taken = false;
  std::optional<util::Result<core::QueryResult>> outcome;

  util::CancellationSource cancel;
  core::QueryRequest request;
  Priority priority = Priority::kInteractive;
  Clock::time_point submitted_at;
};

}  // namespace internal

using internal::TicketState;

// ---------------------------------------------------------------------------
// QueryTicket
// ---------------------------------------------------------------------------

void QueryTicket::Cancel() {
  if (state_ != nullptr) state_->cancel.RequestStop();
}

bool QueryTicket::resolved() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->resolved;
}

bool QueryTicket::WaitFor(std::chrono::milliseconds timeout) const {
  if (state_ == nullptr) return false;
  std::unique_lock<std::mutex> lock(state_->mu);
  return state_->cv.wait_for(lock, timeout,
                             [this] { return state_->resolved; });
}

util::Result<core::QueryResult> QueryTicket::Get() {
  if (state_ == nullptr) {
    return util::Status::FailedPrecondition("ticket is not valid");
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->resolved; });
  if (state_->taken) {
    return util::Status::FailedPrecondition(
        "ticket result was already taken");
  }
  state_->taken = true;
  return std::move(*state_->outcome);
}

// ---------------------------------------------------------------------------
// QueryService
// ---------------------------------------------------------------------------

namespace {

ServiceOptions Sanitize(ServiceOptions options) {
  if (options.queue_capacity == 0) options.queue_capacity = 1;
  if (options.max_batch == 0) options.max_batch = 1;
  return options;
}

}  // namespace

QueryService::QueryService(const core::Database* db, ServiceOptions options)
    : options_(Sanitize(options)),
      executor_(db, options.executor),
      paused_(options.start_paused) {
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

QueryService::~QueryService() { Shutdown(); }

std::shared_ptr<TicketState> QueryService::PrepareState(
    core::QueryRequest request, Priority priority) {
  auto state = std::make_shared<TicketState>();
  state->priority = priority;
  state->submitted_at = Clock::now();
  // Link the ticket's source beneath any caller-supplied token: both
  // QueryTicket::Cancel() and the caller's own source stop the run.
  state->cancel = util::CancellationSource(request.cancel);
  request.cancel = state->cancel.token();
  state->request = std::move(request);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submitted;
  }
  return state;
}

util::Status QueryService::TryEnqueueLocked(
    const std::shared_ptr<TicketState>& state,
    std::unique_lock<std::mutex>* lock, bool allow_block) {
  if (stopping_) {
    return util::Status::Unavailable("query service is shut down");
  }
  auto& lane = lanes_[static_cast<int>(state->priority)];
  if (lane.size() >= options_.queue_capacity) {
    if (options_.backpressure == BackpressurePolicy::kReject ||
        !allow_block) {
      return util::Status::Unavailable("submission queue full");
    }
    space_cv_.wait(*lock, [this, &lane] {
      return stopping_ || lane.size() < options_.queue_capacity;
    });
    if (stopping_) {
      return util::Status::Unavailable("query service is shut down");
    }
  }
  lane.push_back(state);
  queue_peak_ =
      std::max(queue_peak_, lanes_[0].size() + lanes_[1].size());
  return util::Status::OK();
}

QueryTicket QueryService::Submit(core::QueryRequest request,
                                 Priority priority) {
  std::shared_ptr<TicketState> state =
      PrepareState(std::move(request), priority);
  QueryTicket ticket{std::shared_ptr<TicketState>(state)};

  // Shutdown outranks the deadline check: after Shutdown() *every*
  // submission resolves Unavailable, even one that is also expired.
  util::Status enqueue = util::Status::OK();
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    if (stopping_) {
      enqueue = util::Status::Unavailable("query service is shut down");
    } else if (state->request.deadline.has_value() &&
               Clock::now() >= *state->request.deadline) {
      enqueue = util::Status::DeadlineExceeded(
          "deadline already passed at submission");
    } else {
      enqueue = TryEnqueueLocked(state, &lock, /*allow_block=*/true);
    }
  }
  if (!enqueue.ok()) {
    Resolve(state, std::move(enqueue));
    return ticket;
  }
  work_cv_.notify_one();
  return ticket;
}

std::vector<QueryTicket> QueryService::SubmitBurst(
    std::vector<core::QueryRequest> requests, Priority priority) {
  std::vector<std::shared_ptr<TicketState>> states;
  states.reserve(requests.size());
  std::vector<QueryTicket> tickets;
  tickets.reserve(requests.size());
  for (core::QueryRequest& request : requests) {
    states.push_back(PrepareState(std::move(request), priority));
    tickets.push_back(QueryTicket{states.back()});
  }

  // One queue lock for the whole burst: the dispatcher sees either none or
  // all of it, so an idle service drains the burst as one coalesced batch.
  std::vector<std::pair<size_t, util::Status>> failures;
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    for (size_t i = 0; i < states.size(); ++i) {
      // stopping_ only changes under queue_mu_, but check it per entry so
      // the shutdown status outranks the deadline one, like in Submit().
      if (stopping_) {
        failures.emplace_back(
            i, util::Status::Unavailable("query service is shut down"));
        continue;
      }
      if (states[i]->request.deadline.has_value() &&
          Clock::now() >= *states[i]->request.deadline) {
        failures.emplace_back(i, util::Status::DeadlineExceeded(
                                     "deadline already passed at submission"));
        continue;
      }
      if (util::Status s =
              TryEnqueueLocked(states[i], &lock, /*allow_block=*/false);
          !s.ok()) {
        failures.emplace_back(i, std::move(s));
      }
    }
  }
  work_cv_.notify_one();
  for (auto& [index, status] : failures) {
    Resolve(states[index], std::move(status));
  }
  return tickets;
}

void QueryService::DispatcherLoop() {
  for (;;) {
    std::vector<std::shared_ptr<TicketState>> taken;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      work_cv_.wait(lock, [this] {
        return stopping_ ||
               (!paused_ && (!lanes_[0].empty() || !lanes_[1].empty()));
      });
      if (lanes_[0].empty() && lanes_[1].empty()) {
        if (stopping_) return;
        continue;  // spurious or pause-toggle wake
      }
      // One lane per drain, interactive whenever it has work — coalescing
      // never crosses lanes, so a batched dispatch cannot make an
      // interactive ticket wait on bulk members' engines. Shutdown drains
      // the same way, iterating until both lanes are empty.
      auto& lane = lanes_[0].empty() ? lanes_[1] : lanes_[0];
      const size_t want = options_.coalesce ? options_.max_batch : 1;
      while (taken.size() < want && !lane.empty()) {
        taken.push_back(std::move(lane.front()));
        lane.pop_front();
      }
    }
    space_cv_.notify_all();
    Dispatch(std::move(taken));
  }
}

void QueryService::Dispatch(std::vector<std::shared_ptr<TicketState>> taken) {
  // Resolve tickets that went stale while queued without paying for
  // engines: cancel-before-dequeue and expire-in-queue land here.
  const Clock::time_point now = Clock::now();
  std::vector<std::shared_ptr<TicketState>> runnable;
  runnable.reserve(taken.size());
  for (std::shared_ptr<TicketState>& state : taken) {
    if (state->cancel.stop_requested()) {
      Resolve(state, util::Status::Cancelled("query cancelled while queued"));
      continue;
    }
    if (state->request.deadline.has_value() &&
        now >= *state->request.deadline) {
      Resolve(state, util::Status::DeadlineExceeded(
                         "query deadline passed while queued"));
      continue;
    }
    runnable.push_back(std::move(state));
  }
  if (runnable.empty()) return;

  if (runnable.size() == 1) {
    util::Result<core::QueryResult> result =
        executor_.Run(runnable.front()->request);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.solo_dispatches;
      cache_snapshot_ = executor_.cache_stats();
    }
    Resolve(runnable.front(), std::move(result));
    return;
  }

  // The coalescing step: one RunBatch over the whole drain. The executor
  // groups members by (effective window, matrix mode) internally, so every
  // same-window subset shares one backward pass per chain.
  std::vector<core::QueryRequest> requests;
  requests.reserve(runnable.size());
  for (std::shared_ptr<TicketState>& state : runnable) {
    requests.push_back(std::move(state->request));
  }
  std::vector<util::Result<core::QueryResult>> results =
      executor_.RunBatch(requests);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.coalesced_batches;
    stats_.coalesced_requests += runnable.size();
    cache_snapshot_ = executor_.cache_stats();
  }
  for (size_t i = 0; i < runnable.size(); ++i) {
    Resolve(runnable[i], std::move(results[i]));
  }
}

void QueryService::Resolve(const std::shared_ptr<TicketState>& state,
                           util::Result<core::QueryResult> outcome) {
  const double latency_ms =
      std::chrono::duration<double, std::milli>(Clock::now() -
                                                state->submitted_at)
          .count();
  const util::StatusCode code = outcome.ok()
                                    ? util::StatusCode::kOk
                                    : outcome.status().code();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    switch (code) {
      case util::StatusCode::kOk:
        ++stats_.completed;
        stats_.group_subtasks += outcome->stats.group_subtasks;
        stats_.clusters_bounded += outcome->stats.prune.clusters_bounded;
        stats_.clusters_pruned += outcome->stats.prune.clusters_pruned;
        stats_.clusters_refined += outcome->stats.prune.clusters_refined;
        if (latencies_ms_.size() < kLatencyReservoir) {
          latencies_ms_.push_back(latency_ms);
        } else {
          latencies_ms_[latency_next_] = latency_ms;
        }
        latency_next_ = (latency_next_ + 1) % kLatencyReservoir;
        break;
      case util::StatusCode::kCancelled:
        ++stats_.cancelled;
        break;
      case util::StatusCode::kDeadlineExceeded:
        ++stats_.deadline_expired;
        break;
      case util::StatusCode::kUnavailable:
        ++stats_.rejected;
        break;
      default:
        ++stats_.failed;
        break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    assert(!state->resolved && "ticket resolved twice");
    state->outcome = std::move(outcome);
    state->resolved = true;
  }
  state->cv.notify_all();
}

void QueryService::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
    paused_ = false;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void QueryService::Pause() {
  std::lock_guard<std::mutex> lock(queue_mu_);
  paused_ = true;
}

void QueryService::Resume() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    paused_ = false;
  }
  work_cv_.notify_one();
}

size_t QueryService::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return lanes_[0].size() + lanes_[1].size();
}

ServiceStats QueryService::stats() const {
  size_t depth = 0;
  size_t peak = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    depth = lanes_[0].size() + lanes_[1].size();
    peak = queue_peak_;
  }
  ServiceStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
    out.cache = cache_snapshot_;
    if (!latencies_ms_.empty()) {
      std::vector<double> sorted = latencies_ms_;
      std::sort(sorted.begin(), sorted.end());
      const auto at = [&sorted](double q) {
        const size_t idx = static_cast<size_t>(q * (sorted.size() - 1));
        return sorted[idx];
      };
      out.latency_p50_ms = at(0.50);
      out.latency_p99_ms = at(0.99);
    }
  }
  out.queue_depth = depth;
  out.queue_peak = peak;
  return out;
}

}  // namespace service
}  // namespace ustdb
