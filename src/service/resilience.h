// Copyright 2026 the ustdb authors.
//
// Resilience policies of the QueryService: per-shard health tracking with
// quarantine + auto-probe, overload detection for admission control, and
// retry backoff computation. Pure policy — no threads, no queues; the
// QueryService owns the mechanism. See docs/RESILIENCE.md.

#ifndef USTDB_SERVICE_RESILIENCE_H_
#define USTDB_SERVICE_RESILIENCE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string_view>

#include "core/query_request.h"

namespace ustdb {
namespace service {

/// Health of one shard lane, driven by the outcomes of its dispatches.
///
///   kHealthy ──(degraded_after consecutive transient failures)──▶ kDegraded
///   kDegraded ──(quarantine_after total consecutive failures)──▶ kQuarantined
///   any state ──(one successful dispatch)──▶ kHealthy
///   kQuarantined ──(probe backoff elapses)──▶ one probe admitted;
///        success ▶ kHealthy, failure ▶ kQuarantined with doubled backoff
///
/// A dispatcher-watchdog trip (a dispatch stalled past watchdog_stall)
/// quarantines the shard directly; the stalled dispatch finishing
/// successfully recovers it like any other success.
enum class ShardHealth : int {
  kHealthy = 0,
  kDegraded = 1,
  kQuarantined = 2,
};

std::string_view ShardHealthName(ShardHealth health);

/// Thresholds of the health state machine. Defaults are conservative:
/// only *transient* failures (kUnavailable / kInternal from the dispatch
/// path — never user errors, cancellations, or expired deadlines) count.
struct HealthPolicy {
  uint32_t degraded_after = 3;    ///< consecutive failures → kDegraded
  uint32_t quarantine_after = 5;  ///< consecutive failures → kQuarantined
  std::chrono::milliseconds probe_backoff{100};  ///< first probe delay
  double probe_backoff_multiplier = 2.0;
  std::chrono::milliseconds max_probe_backoff{5000};
  /// A dispatch busy longer than this trips the watchdog and quarantines
  /// the shard. Zero disables the watchdog.
  std::chrono::milliseconds watchdog_stall{1000};
};

/// Admission-control thresholds. Disabled by default: the service then
/// behaves exactly as before this layer existed (backpressure only).
struct OverloadPolicy {
  bool enabled = false;
  /// Shed bulk-lane submissions once total queue depth exceeds this
  /// fraction of total queue capacity.
  double shed_bulk_at = 0.75;
  /// Shed (or degrade, for willing threshold requests) interactive
  /// submissions above this fraction.
  double shed_interactive_at = 0.95;
  /// Also shed bulk when the queue-wait p99 exceeds this; 0 = depth only.
  std::chrono::milliseconds max_queue_wait_p99{0};
  /// Retry-after hint attached to shed rejections.
  std::chrono::milliseconds retry_after{50};
};

/// \brief Lock-free per-shard health tracker. RecordSuccess/RecordFailure
/// are called from dispatcher threads, Admit* from submitting threads;
/// every member is an atomic, transitions are returned to the caller so
/// the service can count them under its own stats lock.
class ShardHealthTracker {
 public:
  using Clock = std::chrono::steady_clock;

  explicit ShardHealthTracker(const HealthPolicy& policy)
      : policy_(policy) {}

  ShardHealth health() const {
    return static_cast<ShardHealth>(
        state_.load(std::memory_order_acquire));
  }

  /// A dispatch finished cleanly (or with a caller-attributable outcome).
  /// Returns true when this transitioned the shard back to kHealthy.
  bool RecordSuccess();

  /// A dispatch failed transiently. Returns the new state so the caller
  /// can count the kHealthy→kDegraded→kQuarantined transitions.
  ShardHealth RecordFailure(Clock::time_point now);

  /// Whether a new sub-request may enter this shard's lane. Healthy and
  /// degraded shards admit everything; a quarantined shard admits exactly
  /// one probe once its backoff elapsed (`*is_probe` set for that one).
  bool AdmitToShard(Clock::time_point now, bool* is_probe);

  /// Releases the probe slot without recording an outcome: the admitted
  /// probe was never dispatched (shed, rejected, cancelled while queued).
  /// The next AdmitToShard past the due time may probe again.
  void ProbeAborted() {
    probe_inflight_.store(false, std::memory_order_release);
  }

  /// Watchdog check from a submitting thread: quarantines the shard when
  /// its current dispatch has been running longer than watchdog_stall.
  /// Returns true on the trip transition (counted once per episode).
  bool CheckWatchdog(Clock::time_point now);

  /// Dispatch markers for the watchdog. Busy spans are per dispatcher
  /// thread and never nest.
  void MarkDispatchStart(Clock::time_point now) {
    busy_since_ns_.store(now.time_since_epoch().count(),
                         std::memory_order_release);
  }
  void MarkDispatchEnd() {
    busy_since_ns_.store(0, std::memory_order_release);
  }

  /// Consecutive transient failures recorded since the last success.
  uint32_t consecutive_failures() const {
    return consecutive_failures_.load(std::memory_order_relaxed);
  }

 private:
  HealthPolicy policy_;
  std::atomic<int> state_{static_cast<int>(ShardHealth::kHealthy)};
  std::atomic<uint32_t> consecutive_failures_{0};
  /// steady_clock ns after which a quarantined shard may admit a probe.
  std::atomic<int64_t> probe_due_ns_{0};
  std::atomic<bool> probe_inflight_{false};
  /// Current probe backoff in ms (doubles per failed probe).
  std::atomic<int64_t> probe_backoff_ms_{0};
  /// steady_clock ns of the running dispatch's start; 0 = idle.
  std::atomic<int64_t> busy_since_ns_{0};
  /// Latched while quarantined so one episode trips the watchdog once.
  std::atomic<bool> watchdog_tripped_{false};
};

/// \brief Deterministic backoff for retry attempt `attempt` (0-based):
/// initial × multiplier^attempt, capped, scaled by a jitter factor in
/// [1-jitter, 1+jitter] derived from (seed, attempt).
std::chrono::milliseconds RetryBackoff(const core::RetryPolicy& policy,
                                       uint32_t attempt, uint64_t seed);

}  // namespace service
}  // namespace ustdb

#endif  // USTDB_SERVICE_RESILIENCE_H_
