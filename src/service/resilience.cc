#include "service/resilience.h"

#include <algorithm>

#include "util/rng.h"

namespace ustdb {
namespace service {

std::string_view ShardHealthName(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy:
      return "healthy";
    case ShardHealth::kDegraded:
      return "degraded";
    case ShardHealth::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

bool ShardHealthTracker::RecordSuccess() {
  consecutive_failures_.store(0, std::memory_order_relaxed);
  probe_inflight_.store(false, std::memory_order_release);
  probe_backoff_ms_.store(0, std::memory_order_relaxed);
  watchdog_tripped_.store(false, std::memory_order_relaxed);
  const int prev = state_.exchange(static_cast<int>(ShardHealth::kHealthy),
                                   std::memory_order_acq_rel);
  return prev != static_cast<int>(ShardHealth::kHealthy);
}

ShardHealth ShardHealthTracker::RecordFailure(Clock::time_point now) {
  const uint32_t failures =
      consecutive_failures_.fetch_add(1, std::memory_order_relaxed) + 1;
  ShardHealth next = ShardHealth::kHealthy;
  if (failures >= policy_.quarantine_after) {
    next = ShardHealth::kQuarantined;
  } else if (failures >= policy_.degraded_after) {
    next = ShardHealth::kDegraded;
  }
  // Monotone within an episode: a concurrent failure can only push the
  // state further toward quarantine; successes reset it wholesale.
  int current = state_.load(std::memory_order_acquire);
  while (static_cast<int>(next) > current &&
         !state_.compare_exchange_weak(current, static_cast<int>(next),
                                       std::memory_order_acq_rel)) {
  }
  if (next == ShardHealth::kQuarantined) {
    // Entering (or re-failing inside) quarantine arms the next probe with
    // doubled backoff, capped.
    int64_t backoff = probe_backoff_ms_.load(std::memory_order_relaxed);
    backoff = backoff == 0 ? policy_.probe_backoff.count()
                           : std::min<int64_t>(
                                 static_cast<int64_t>(
                                     static_cast<double>(backoff) *
                                     policy_.probe_backoff_multiplier),
                                 policy_.max_probe_backoff.count());
    probe_backoff_ms_.store(backoff, std::memory_order_relaxed);
    probe_due_ns_.store(
        (now + std::chrono::milliseconds(backoff)).time_since_epoch().count(),
        std::memory_order_release);
    probe_inflight_.store(false, std::memory_order_release);
  }
  return static_cast<ShardHealth>(state_.load(std::memory_order_acquire));
}

bool ShardHealthTracker::AdmitToShard(Clock::time_point now, bool* is_probe) {
  *is_probe = false;
  if (health() != ShardHealth::kQuarantined) return true;
  if (now.time_since_epoch().count() <
      probe_due_ns_.load(std::memory_order_acquire)) {
    return false;
  }
  // One probe at a time: the first submitter past the due time wins.
  bool expected = false;
  if (!probe_inflight_.compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel)) {
    return false;
  }
  *is_probe = true;
  return true;
}

bool ShardHealthTracker::CheckWatchdog(Clock::time_point now) {
  if (policy_.watchdog_stall.count() <= 0) return false;
  const int64_t busy_since =
      busy_since_ns_.load(std::memory_order_acquire);
  if (busy_since == 0) return false;
  const int64_t stall_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          policy_.watchdog_stall)
          .count();
  if (now.time_since_epoch().count() - busy_since < stall_ns) return false;
  if (watchdog_tripped_.exchange(true, std::memory_order_acq_rel)) {
    return false;  // already tripped for this stall episode
  }
  // Straight to quarantine: a wedged dispatcher should stop being fed.
  // The probe machinery is armed exactly as in RecordFailure.
  consecutive_failures_.fetch_add(1, std::memory_order_relaxed);
  state_.store(static_cast<int>(ShardHealth::kQuarantined),
               std::memory_order_release);
  int64_t backoff = probe_backoff_ms_.load(std::memory_order_relaxed);
  backoff = backoff == 0 ? policy_.probe_backoff.count() : backoff;
  probe_backoff_ms_.store(backoff, std::memory_order_relaxed);
  probe_due_ns_.store(
      (now + std::chrono::milliseconds(backoff)).time_since_epoch().count(),
      std::memory_order_release);
  probe_inflight_.store(false, std::memory_order_release);
  return true;
}

std::chrono::milliseconds RetryBackoff(const core::RetryPolicy& policy,
                                       uint32_t attempt, uint64_t seed) {
  double backoff = static_cast<double>(policy.initial_backoff.count());
  for (uint32_t i = 0; i < attempt; ++i) backoff *= policy.multiplier;
  backoff = std::min(backoff,
                     static_cast<double>(policy.max_backoff.count()));
  // Deterministic jitter in [1-jitter, 1+jitter] from (seed, attempt):
  // reproducible under a fixed USTDB_TEST_SEED-style seed, decorrelated
  // across tickets (each ticket carries its own seed).
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  if (jitter > 0.0) {
    util::SplitMix64 mix(seed ^ (0x9E3779B97f4A7C15ULL * (attempt + 1)));
    const double unit = static_cast<double>(mix.Next() >> 11) *
                        (1.0 / 9007199254740992.0);  // [0, 1)
    backoff *= 1.0 - jitter + 2.0 * jitter * unit;
  }
  return std::chrono::milliseconds(
      std::max<int64_t>(1, static_cast<int64_t>(backoff)));
}

}  // namespace service
}  // namespace ustdb
