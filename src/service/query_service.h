// Copyright 2026 the ustdb authors.
//
// QueryService — the asynchronous admission layer in front of the
// QueryExecutor. Callers Submit() a QueryRequest and immediately get a
// QueryTicket (a future for the Result); a dispatcher thread drains the
// bounded two-lane submission queue and hands whole drains to
// QueryExecutor::RunBatch, so compatible requests that happen to be queued
// together automatically coalesce into shared-backward-pass groups — a
// bursty dashboard refresh pays one pass per (window, chain) without any
// caller-side batching.
//
// The service owns the request lifecycle the bare executor does not:
// backpressure (reject-when-full or block), a priority lane for
// interactive traffic ahead of bulk jobs, per-request deadlines,
// cancellation that reaches into the executor's parallel loop mid-flight,
// drain-on-shutdown, and latency/coalescing telemetry (ServiceStats).

#ifndef USTDB_SERVICE_QUERY_SERVICE_H_
#define USTDB_SERVICE_QUERY_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/engine_cache.h"
#include "core/executor.h"
#include "core/query_request.h"
#include "util/result.h"

namespace ustdb {
namespace service {

/// Which submission lane a request joins. Every dispatch serves the
/// kInteractive lane whenever it has work — kBulk drains only when no
/// interactive request is queued, and coalescing never crosses lanes, so
/// dashboard widgets neither queue behind a bulk re-scoring job nor share
/// a dispatch with one.
enum class Priority {
  kInteractive = 0,  ///< latency-sensitive traffic (dashboards, alerts)
  kBulk = 1,         ///< throughput traffic (backfills, re-scoring)
};

/// What Submit() does when the chosen lane is at capacity.
enum class BackpressurePolicy {
  /// Resolve the ticket immediately with Status::Unavailable. The default:
  /// a serving layer should shed load, not buffer unboundedly.
  kReject,
  /// Block the submitting thread until the dispatcher frees a slot (or the
  /// service shuts down, which rejects the waiting submission).
  kBlock,
};

/// Configuration of one QueryService instance.
struct ServiceOptions {
  /// Capacity of each priority lane (>= 1 enforced); the bound that makes
  /// backpressure meaningful.
  size_t queue_capacity = 256;
  /// Behavior when a lane is full.
  BackpressurePolicy backpressure = BackpressurePolicy::kReject;
  /// Coalesce queued requests into one RunBatch per drain. Off = strict
  /// one-request-at-a-time dispatch (the uncoalesced baseline the service
  /// benchmark compares against).
  bool coalesce = true;
  /// Most requests one coalesced dispatch may drain (>= 1 enforced).
  size_t max_batch = 64;
  /// Construct with the dispatcher paused (tests use this to stage a
  /// deterministic queue state before Resume()).
  bool start_paused = false;
  /// Forwarded to the service-owned QueryExecutor.
  core::ExecutorOptions executor;
};

/// Snapshot of the service's counters. Counts are cumulative since
/// construction; queue_depth is sampled at the stats() call; latency
/// percentiles cover the most recent completed requests (a bounded
/// reservoir, so a long-lived service reports recent behavior, not its
/// whole history).
struct ServiceStats {
  uint64_t submitted = 0;         ///< tickets handed out
  uint64_t completed = 0;         ///< resolved OK
  uint64_t failed = 0;            ///< resolved with a non-stop error
  uint64_t cancelled = 0;         ///< resolved Status::Cancelled
  uint64_t deadline_expired = 0;  ///< resolved Status::DeadlineExceeded
  uint64_t rejected = 0;          ///< resolved Status::Unavailable
  /// Dispatches that coalesced >= 2 requests into one RunBatch, and the
  /// total requests those dispatches carried. coalesced_requests /
  /// completed is the coalesce rate a capacity model needs.
  uint64_t coalesced_batches = 0;
  uint64_t coalesced_requests = 0;
  /// Dispatches that carried exactly one request.
  uint64_t solo_dispatches = 0;
  /// Sum of ExecStats::group_subtasks over completed requests: how many
  /// object-range subtasks the executor's intra-group batch scheduler
  /// split coalesced work into. A high ratio of group_subtasks to
  /// completed means large same-window groups are being spread across the
  /// pool rather than serialized on one worker.
  uint64_t group_subtasks = 0;
  /// Section V-C bound-pass totals over completed requests (see
  /// PruneStats): clusters whose interval bound pass ran, clusters whose
  /// objects were all dropped by it, and clusters that needed per-object
  /// refinement. clusters_pruned / clusters_bounded is the wholesale-prune
  /// rate of the serving mix.
  uint64_t clusters_bounded = 0;
  uint64_t clusters_pruned = 0;
  uint64_t clusters_refined = 0;
  size_t queue_depth = 0;  ///< queued requests across both lanes, sampled
  size_t queue_peak = 0;   ///< high-water mark of queue_depth
  double latency_p50_ms = 0.0;  ///< median completed-request latency
  double latency_p99_ms = 0.0;  ///< tail completed-request latency
  /// Engine-cache counters of the service's executor (hits, misses,
  /// evictions), snapshotted after the most recent dispatch.
  core::EngineCacheStats cache;
};

namespace internal {
struct TicketState;
}  // namespace internal

/// \brief Caller-side handle for one submitted request: a one-shot future
/// for the Result plus the cancellation trigger. Cheap to move and copy
/// (copies share the same underlying request).
class QueryTicket {
 public:
  /// An invalid ticket; Get() fails with kFailedPrecondition.
  QueryTicket() = default;

  /// True when connected to a submitted request.
  bool valid() const { return state_ != nullptr; }

  /// \brief Requests cancellation. If the request is still queued it
  /// resolves with Status::Cancelled without executing; if it is
  /// mid-flight the executor's loop stops at its next cooperative check.
  /// Idempotent; a request that already finished is unaffected.
  void Cancel();

  /// True once the request has resolved (non-blocking).
  bool resolved() const;

  /// Blocks until resolved or `timeout` elapses; true when resolved.
  bool WaitFor(std::chrono::milliseconds timeout) const;

  /// \brief Blocks until the request resolves and moves the Result out.
  /// One-shot: a second Get() (from any copy of the ticket) fails with
  /// kFailedPrecondition.
  util::Result<core::QueryResult> Get();

 private:
  friend class QueryService;
  explicit QueryTicket(std::shared_ptr<internal::TicketState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::TicketState> state_;
};

/// \brief Asynchronous query admission in front of one QueryExecutor.
///
/// Thread-safe: any number of threads may Submit()/Cancel()/stats()
/// concurrently. Exactly one dispatcher thread talks to the executor, so
/// the executor's no-concurrent-Run contract holds by construction. Every
/// ticket resolves exactly once — including under Shutdown(), which stops
/// admitting, drains the queue through the executor, and only then joins
/// the dispatcher. The Database must outlive the service.
class QueryService {
 public:
  /// \param db the database to serve; must outlive the service.
  /// \param options queue, backpressure, coalescing, and executor knobs.
  explicit QueryService(const core::Database* db, ServiceOptions options = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Shuts down (draining queued requests) if Shutdown() was not called.
  ~QueryService();

  /// \brief Enqueues `request` and returns its ticket. The request's own
  /// cancel token (if any) is linked beneath the ticket's, so either can
  /// stop it. A request whose deadline has already passed resolves
  /// immediately with Status::DeadlineExceeded; a full lane either rejects
  /// (Status::Unavailable) or blocks, per BackpressurePolicy; after
  /// Shutdown() every submission resolves with Status::Unavailable.
  QueryTicket Submit(core::QueryRequest request,
                     Priority priority = Priority::kInteractive);

  /// \brief Enqueues a whole burst under one queue lock — the dispatcher
  /// observes all-or-nothing, so an idle (or paused) service coalesces the
  /// burst into the fewest possible RunBatch dispatches. To keep that
  /// atomicity (and to stay deadlock-free on a paused service), a burst
  /// never blocks: requests beyond the lane's remaining capacity resolve
  /// with Status::Unavailable even under BackpressurePolicy::kBlock.
  /// Other per-request failure semantics match Submit().
  std::vector<QueryTicket> SubmitBurst(
      std::vector<core::QueryRequest> requests,
      Priority priority = Priority::kInteractive);

  /// \brief Stops admitting, drains every queued request through the
  /// executor (cancelled/expired ones resolve without executing), then
  /// joins the dispatcher. Idempotent and safe to call concurrently.
  void Shutdown();

  /// Holds the dispatcher after its current drain; queued and newly
  /// submitted requests wait until Resume(). Shutdown() overrides a pause.
  void Pause();
  /// Releases a Pause().
  void Resume();

  /// Current counters; see ServiceStats for sampling semantics.
  ServiceStats stats() const;

  /// Queued requests across both lanes right now.
  size_t queue_depth() const;

  /// The executor options actually in effect (after sanitization).
  const ServiceOptions& options() const { return options_; }

 private:
  void DispatcherLoop();
  /// Executes one drained set: resolves stale entries, runs the rest as a
  /// solo Run or one coalesced RunBatch, resolves every ticket.
  void Dispatch(std::vector<std::shared_ptr<internal::TicketState>> taken);
  /// Resolves `state` with `outcome`, classifying it into the stats
  /// counters and recording latency. Every ticket passes through here
  /// exactly once.
  void Resolve(const std::shared_ptr<internal::TicketState>& state,
               util::Result<core::QueryResult> outcome);
  /// Builds the ticket state for one submission (links cancel tokens,
  /// stamps the clock, counts it submitted).
  std::shared_ptr<internal::TicketState> PrepareState(
      core::QueryRequest request, Priority priority);
  /// Appends to the lane under `lock`, honoring capacity/backpressure.
  /// Returns non-OK (without enqueueing) when the submission must be
  /// rejected. With `allow_block` (solo Submit under kBlock) it may
  /// release and reacquire `lock` while waiting for space; bursts pass
  /// false so the whole burst stays under one uninterrupted lock hold.
  util::Status TryEnqueueLocked(
      const std::shared_ptr<internal::TicketState>& state,
      std::unique_lock<std::mutex>* lock, bool allow_block);

  const core::Database* db_;
  ServiceOptions options_;
  core::QueryExecutor executor_;  // dispatcher thread only

  mutable std::mutex queue_mu_;
  std::condition_variable work_cv_;   // wakes the dispatcher
  std::condition_variable space_cv_;  // wakes blocked producers
  std::deque<std::shared_ptr<internal::TicketState>> lanes_[2];
  size_t queue_peak_ = 0;  ///< high-water mark of both lanes combined
  bool paused_ = false;
  bool stopping_ = false;

  std::mutex shutdown_mu_;  // serializes Shutdown() callers around join
  std::thread dispatcher_;

  mutable std::mutex stats_mu_;
  ServiceStats stats_;  // counter fields only; sampled fields set in stats()
  core::EngineCacheStats cache_snapshot_;
  std::vector<double> latencies_ms_;  // bounded reservoir, ring-indexed
  size_t latency_next_ = 0;
};

}  // namespace service
}  // namespace ustdb

#endif  // USTDB_SERVICE_QUERY_SERVICE_H_
