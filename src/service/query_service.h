// Copyright 2026 the ustdb authors.
//
// QueryService — the asynchronous admission layer in front of the
// executor tier. Callers Submit() a QueryRequest and immediately get a
// QueryTicket (a future for the Result); per-shard dispatcher threads
// drain bounded two-lane submission queues and hand whole drains to
// QueryExecutor::RunBatch, so compatible requests that happen to be
// queued together automatically coalesce into shared-backward-pass
// groups — a bursty dashboard refresh pays one pass per (window, chain)
// without any caller-side batching.
//
// Serving a ShardedDatabase, the service is a router: one QueryExecutor
// per shard (own EngineCache, own worker slice), each fed by its own
// two-lane queue and dispatcher. A request touching a single shard
// routes to that shard's lane; a request spanning shards scatters one
// sub-request per target shard and gathers — position/heap/sort merges
// per predicate, ExecStats summed — with results bit-identical to the
// single-executor pipeline (global ids, global plan decisions; see
// Submit()). Serving a plain Database keeps the legacy single-executor
// behavior exactly.
//
// The service owns the request lifecycle the bare executor does not:
// backpressure (reject-when-full or block), a priority lane for
// interactive traffic ahead of bulk jobs, per-request deadlines,
// cancellation that reaches into the executor's parallel loop mid-flight,
// drain-on-shutdown, and latency/coalescing telemetry (ServiceStats).
//
// Constructed over a MUTABLE database, the service additionally serves as
// the ingest front door (AppendObservation routes to the owning shard,
// serialized against that shard's dispatch only) and as the subscription
// layer for standing queries: Subscribe() registers a QueryRequest with a
// WindowPolicy, ingest and window ticks mark affected subscriptions
// dirty, and RefreshSubscriptions() flushes every dirty subscription
// through ONE SubmitBurst — so a refresh round coalesces into the fewest
// RunBatch dispatches and sliding windows hit the engine cache's
// shift-extension path — delivering answer-set deltas (entered / left /
// changed) with monotonic sequence numbers.

#ifndef USTDB_SERVICE_QUERY_SERVICE_H_
#define USTDB_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/database.h"
#include "core/engine_cache.h"
#include "core/executor.h"
#include "core/query_request.h"
#include "core/shard_router.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/resilience.h"
#include "util/result.h"

namespace ustdb {
namespace service {

/// Which submission lane a request joins. Every dispatch serves the
/// kInteractive lane whenever it has work — kBulk drains only when no
/// interactive request is queued, and coalescing never crosses lanes, so
/// dashboard widgets neither queue behind a bulk re-scoring job nor share
/// a dispatch with one. On a sharded service the two lanes exist per
/// shard, with the same precedence on every dispatcher.
enum class Priority {
  kInteractive = 0,  ///< latency-sensitive traffic (dashboards, alerts)
  kBulk = 1,         ///< throughput traffic (backfills, re-scoring)
};

/// What Submit() does when a chosen lane is at capacity. A scattered
/// request is admitted all-or-nothing: every target shard's lane must
/// have a slot, otherwise the whole request rejects (or blocks until all
/// of them do) — partial fan-outs never enter the queues.
enum class BackpressurePolicy {
  /// Resolve the ticket immediately with Status::Unavailable. The default:
  /// a serving layer should shed load, not buffer unboundedly.
  kReject,
  /// Block the submitting thread until the dispatcher frees a slot (or the
  /// service shuts down, which rejects the waiting submission).
  kBlock,
};

/// Configuration of one QueryService instance.
struct ServiceOptions {
  /// Capacity of each priority lane (>= 1 enforced), per shard; the bound
  /// that makes backpressure meaningful.
  size_t queue_capacity = 256;
  /// Behavior when a lane is full.
  BackpressurePolicy backpressure = BackpressurePolicy::kReject;
  /// Coalesce queued requests into one RunBatch per drain. Off = strict
  /// one-request-at-a-time dispatch (the uncoalesced baseline the service
  /// benchmark compares against).
  bool coalesce = true;
  /// Most requests one coalesced dispatch may drain (>= 1 enforced).
  size_t max_batch = 64;
  /// Construct with the dispatchers paused (tests use this to stage a
  /// deterministic queue state before Resume()).
  bool start_paused = false;
  /// Forwarded to each service-owned QueryExecutor. On a sharded service
  /// num_threads is the TOTAL worker budget: it is resolved (0 = one per
  /// hardware context) and divided evenly across the shard executors, at
  /// least one worker each.
  core::ExecutorOptions executor;
  /// Observability knobs: which MetricsRegistry the service (and, with a
  /// {"shard": "<s>"} label stamped on, each shard executor) feeds, the
  /// QueryTrace sampling rate, and the slow-query ring capacity. With
  /// enabled=false the service resolves no metric handles, reads no extra
  /// clocks, samples no traces, and keeps no slow-query ring — the
  /// overhead contract bench_service_throughput --tracing gates. This
  /// field overrides whatever `executor.obs` carries, so the shard label
  /// is always stamped consistently.
  obs::ObsOptions obs;
  /// Health state machine thresholds for the per-shard trackers (failure
  /// counts, probe backoff, dispatcher watchdog). See docs/RESILIENCE.md.
  HealthPolicy health;
  /// Admission-control thresholds; disabled by default, in which case the
  /// service sheds nothing and behaves exactly as before this layer.
  OverloadPolicy overload;
  /// Allow a scattered request to resolve with a flagged partial answer
  /// (QueryResult::partial + shard_errors + missing_objects) when some —
  /// but not all — target shards fail transiently or sit in quarantine.
  /// With false every sub failure fails the whole parent, exactly the
  /// pre-resilience behavior.
  bool partial_results = true;
};

/// Snapshot of the service's counters. Counts are cumulative since
/// construction; queue_depth is sampled at the stats() call; latency
/// percentiles cover the most recent completed requests (bounded
/// per-shard reservoirs, so a long-lived service reports recent behavior,
/// not its whole history).
///
/// Snapshot consistency model (what stats() guarantees under concurrent
/// Submit/dispatch): every counter field below is mutated and read under
/// one service-wide stats mutex, so a snapshot's counter fields are
/// mutually consistent — e.g. completed + failed + cancelled +
/// deadline_expired + rejected never exceeds submitted, and the cache /
/// latency aggregates come from the same locked read. queue_depth and
/// queue_peak are sampled under the separate queue mutex an instant
/// apart, so they can lag the counters by in-flight requests but are
/// never torn. The obs::MetricsRegistry fed from the same increment
/// sites is looser: per-metric reads are atomic (never torn) but carry
/// no cross-metric instant, see obs/metrics.h.
struct ServiceStats {
  uint64_t submitted = 0;         ///< tickets handed out
  uint64_t completed = 0;         ///< resolved OK
  uint64_t failed = 0;            ///< resolved with a non-stop error
  uint64_t cancelled = 0;         ///< resolved Status::Cancelled
  uint64_t deadline_expired = 0;  ///< resolved Status::DeadlineExceeded
  uint64_t rejected = 0;          ///< resolved Status::Unavailable
  /// Dispatches that coalesced >= 2 queued entries into one RunBatch, and
  /// the total entries those dispatches carried. Counted per shard
  /// dispatcher; on a sharded service one scattered request can appear in
  /// several dispatches (one per target shard). coalesced_requests /
  /// completed is the coalesce rate a capacity model needs.
  uint64_t coalesced_batches = 0;
  uint64_t coalesced_requests = 0;
  /// Dispatches that carried exactly one queued entry.
  uint64_t solo_dispatches = 0;
  /// Requests the router scattered across >= 2 shard lanes, and the total
  /// per-shard sub-requests those scatters enqueued. Always 0 when
  /// serving a plain Database (single implicit lane, identity routing).
  uint64_t scatter_requests = 0;
  uint64_t scatter_subtasks = 0;
  /// Sum of ExecStats::group_subtasks over completed requests: how many
  /// object-range subtasks the executor's intra-group batch scheduler
  /// split coalesced work into. A high ratio of group_subtasks to
  /// completed means large same-window groups are being spread across the
  /// pool rather than serialized on one worker.
  uint64_t group_subtasks = 0;
  /// Section V-C bound-pass totals over completed requests (see
  /// PruneStats): clusters whose interval bound pass ran, clusters whose
  /// objects were all dropped by it, and clusters that needed per-object
  /// refinement. clusters_pruned / clusters_bounded is the wholesale-prune
  /// rate of the serving mix. Shard co-location keeps every cluster's
  /// bound pass on one executor, so the sharded sums equal the unsharded
  /// ones.
  uint64_t clusters_bounded = 0;
  uint64_t clusters_pruned = 0;
  uint64_t clusters_refined = 0;
  /// Resilience counters. Partial/degraded requests are ALSO counted in
  /// `completed` (their tickets resolve OK, flagged on the QueryResult),
  /// so the snapshot invariant completed + failed + cancelled +
  /// deadline_expired + rejected <= submitted still holds.
  uint64_t shed_bulk = 0;         ///< bulk submissions shed by overload
  uint64_t shed_interactive = 0;  ///< interactive submissions shed
  uint64_t retries = 0;           ///< sub-request retry attempts scheduled
  uint64_t partial = 0;           ///< requests resolved with partial=true
  uint64_t degraded = 0;          ///< requests answered bounds-only
  uint64_t quarantines = 0;       ///< kHealthy/kDegraded -> kQuarantined
  uint64_t probes = 0;            ///< probe sub-requests admitted
  uint64_t watchdog_trips = 0;    ///< dispatcher-stall quarantines
  /// Continuous-query counters: observations applied through
  /// AppendObservation, appends rejected (validation or injected fault),
  /// refresh rounds that ran >= 1 standing query, and deltas delivered to
  /// subscription callbacks (empty deltas are counted too — a delivered
  /// sequence number is a delivery).
  uint64_t ingested = 0;
  uint64_t ingest_rejected = 0;
  uint64_t subscription_refreshes = 0;
  uint64_t subscription_deltas = 0;
  /// Registered, not-yet-cancelled subscriptions at the stats() call.
  size_t subscriptions_active = 0;
  size_t queue_depth = 0;  ///< queued entries across all lanes and shards
  size_t queue_peak = 0;   ///< high-water mark of queue_depth
  /// Completed-request latency percentiles, computed over the MERGED
  /// per-shard reservoirs — one pooled sample, never an average of
  /// per-shard percentiles (averaging would let one skewed shard's tail
  /// vanish into the others' medians).
  double latency_p50_ms = 0.0;  ///< median completed-request latency
  double latency_p99_ms = 0.0;  ///< tail completed-request latency
  /// Engine-cache counters summed over every shard executor (hits,
  /// misses, evictions, stale-epoch invalidations, shift-extension
  /// reuses), snapshotted after each shard's most recent dispatch.
  core::EngineCacheStats cache;
};

/// How a standing query's window advances and when it refreshes.
struct WindowPolicy {
  /// Timestamps the window slides forward per TickWindows(1) unit. The
  /// default 1 is the classic sliding window; 0 pins the window (the
  /// subscription then refreshes on ingest only).
  Timestamp slide = 1;
  /// Mark the subscription dirty when an appended observation can affect
  /// its answer (its object_filter contains the object, or it has no
  /// filter). With false only window ticks dirty it.
  bool refresh_on_ingest = true;
};

/// \brief One delivered update of a standing query: the difference
/// between this refresh's answer set and the previously delivered one.
/// `entered` lists objects newly in the answer (with their current
/// probabilities), `left` lists objects that dropped out, `changed`
/// lists objects that stayed but whose probability changed. The first
/// delivery of a subscription reports the full answer as `entered`.
struct SubscriptionDelta {
  uint64_t subscription_id = 0;
  /// Monotonic per subscription, starting at 1; a failed refresh round
  /// never consumes a sequence number, so callbacks can detect loss-free
  /// delivery by checking consecutiveness.
  uint64_t sequence = 0;
  /// Data epoch the answer reflects (QueryResult::epoch of the refresh).
  DataVersion epoch = 0;
  std::vector<core::ObjectProbability> entered;
  std::vector<core::ObjectProbability> changed;
  std::vector<ObjectId> left;
  /// The refresh resolved with a partial scatter-gather answer (some
  /// shards failed); the delta covers only the answering shards.
  bool partial = false;
};

/// Invoked on the RefreshSubscriptions() caller's thread, one delta per
/// refreshed subscription. Must not call back into the service.
using SubscriptionCallback = std::function<void(const SubscriptionDelta&)>;

/// \brief One retained record of the slow-query ring: the N slowest
/// requests that carried a QueryTrace (sampled or caller-attached),
/// with their full span breakdowns. Retrieved via
/// QueryService::slow_queries(); capacity set by
/// ObsOptions::slow_query_ring.
struct SlowQuery {
  double latency_ms = 0.0;  ///< end-to-end submit-to-resolve latency
  core::PredicateKind predicate = core::PredicateKind::kExists;
  Priority priority = Priority::kInteractive;
  /// Status code the ticket resolved with (kOk for answered requests;
  /// slow cancellations and deadline expiries are retained too — they
  /// are exactly the requests worth explaining).
  util::StatusCode code = util::StatusCode::kOk;
  /// The trace's spans, sorted by begin time (see obs::QueryTrace).
  std::vector<obs::TraceSpan> spans;
  /// Resilience annotations: sub-request retries this ticket consumed,
  /// whether it resolved with a subset of shards, and whether it was
  /// answered from interval bounds alone.
  uint32_t retries = 0;
  bool partial = false;
  bool degraded = false;
};

namespace internal {
struct TicketState;
struct GatherState;
struct SubscriptionState;

/// p50/p99 read off one pooled latency sample.
struct LatencyPercentiles {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// \brief Merges per-shard latency reservoirs into one pooled sample and
/// reads the percentiles off the sorted pool. This is the only correct
/// merge: percentiles do not compose, so averaging per-shard p50/p99
/// (the tempting shortcut) misreports any service whose shards see
/// skewed distributions — a slow shard's tail dilutes into the fast
/// shards' medians. Empty reservoirs contribute nothing; an all-empty
/// input yields zeros.
LatencyPercentiles MergeLatencyPercentiles(
    const std::vector<std::vector<double>>& reservoirs);
}  // namespace internal

/// \brief Caller-side handle for one submitted request: a one-shot future
/// for the Result plus the cancellation trigger. Cheap to move and copy
/// (copies share the same underlying request).
class QueryTicket {
 public:
  /// An invalid ticket; Get() fails with kFailedPrecondition.
  QueryTicket() = default;

  /// True when connected to a submitted request.
  bool valid() const { return state_ != nullptr; }

  /// \brief Requests cancellation. If the request is still queued it
  /// resolves with Status::Cancelled without executing; if it is
  /// mid-flight the executor's loop stops at its next cooperative check.
  /// On a scattered request the trigger reaches every shard's sub-run.
  /// Idempotent; a request that already finished is unaffected.
  void Cancel();

  /// True once the request has resolved (non-blocking).
  bool resolved() const;

  /// Blocks until resolved or `timeout` elapses; true when resolved.
  bool WaitFor(std::chrono::milliseconds timeout) const;

  /// \brief Blocks until the request resolves and moves the Result out.
  /// One-shot: a second Get() (from any copy of the ticket) fails with
  /// kFailedPrecondition.
  util::Result<core::QueryResult> Get();

 private:
  friend class QueryService;
  explicit QueryTicket(std::shared_ptr<internal::TicketState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::TicketState> state_;
};

/// \brief Caller-side handle for one standing query. Cheap to copy
/// (copies share the subscription). Cancel() is the only mutation:
/// idempotent, takes effect before the next delivery — a refresh round
/// already in flight skips a subscription cancelled mid-round.
class Subscription {
 public:
  /// An invalid handle; id() is 0 and Cancel() is a no-op.
  Subscription() = default;

  bool valid() const { return state_ != nullptr; }

  /// Stable id (1-based) naming this subscription in deltas and metrics.
  uint64_t id() const;

  /// Stops future deliveries and releases the registry slot at the next
  /// refresh sweep. Idempotent, callable from any thread.
  void Cancel();
  bool cancelled() const;

  /// Sequence number of the last delivered delta (0 before the first).
  uint64_t last_sequence() const;

 private:
  friend class QueryService;
  explicit Subscription(std::shared_ptr<internal::SubscriptionState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::SubscriptionState> state_;
};

/// \brief Asynchronous query admission in front of one executor per
/// shard.
///
/// Thread-safe: any number of threads may Submit()/Cancel()/stats()
/// concurrently. Exactly one dispatcher thread talks to each shard's
/// executor, so the executor's no-concurrent-Run contract holds by
/// construction. Every ticket resolves exactly once — including under
/// Shutdown(), which stops admitting, drains the queues through the
/// executors, and only then joins the dispatchers. The Database (or
/// ShardedDatabase) must outlive the service. Structural mutation
/// (AddChain/AddObject) while the service is running remains
/// unsupported; AppendObservation is the one serving-time mutation, and
/// only through the service's own ingest path (which serializes it
/// against the owning shard's dispatch) — it requires construction over
/// a mutable database pointer.
class QueryService {
 public:
  /// \brief Legacy single-executor service over a plain Database;
  /// identity routing, one dispatcher, bit-identical to the pre-sharding
  /// behavior.
  /// \param db the database to serve; must outlive the service.
  /// \param options queue, backpressure, coalescing, and executor knobs.
  explicit QueryService(const core::Database* db, ServiceOptions options = {});

  /// \brief Sharded service: one executor + dispatcher + two-lane queue
  /// per shard of `db`. Requests and results speak GLOBAL ids; the
  /// router translates to shard-local ids on the way in and back on the
  /// way out. Results are bit-identical to the unsharded pipeline: for
  /// kThresholdExists under kAuto the router makes the whole-request
  /// bounds-vs-per-chain decision once, globally, against
  /// db->routing_db(), and pins the outcome (kBoundsThenRefine or
  /// kAutoPerChain) on every sub-request, so no shard re-decides from a
  /// partial view.
  /// \param db the sharded database to serve; must outlive the service.
  /// \param options queue, backpressure, coalescing, and executor knobs.
  QueryService(const core::ShardedDatabase* db, ServiceOptions options = {});

  /// \brief Mutable-database overloads: identical serving behavior, plus
  /// the ingest path (AppendObservation) is enabled. The const overloads
  /// keep ingest disabled (kFailedPrecondition), preserving the frozen
  /// snapshot guarantee for callers that rely on it.
  explicit QueryService(core::Database* db, ServiceOptions options = {});
  QueryService(core::ShardedDatabase* db, ServiceOptions options = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Shuts down (draining queued requests) if Shutdown() was not called.
  ~QueryService();

  /// \brief Enqueues `request` and returns its ticket. The request's own
  /// cancel token (if any) is linked beneath the ticket's, so either can
  /// stop it. A request whose deadline has already passed resolves
  /// immediately with Status::DeadlineExceeded; a full lane either rejects
  /// (Status::Unavailable) or blocks, per BackpressurePolicy; after
  /// Shutdown() every submission resolves with Status::Unavailable. On a
  /// sharded service an object_filter referencing an id outside the
  /// database resolves with Status::InvalidArgument at submission (the
  /// router cannot translate it); the unsharded service reports the same
  /// error from the executor at dispatch.
  QueryTicket Submit(core::QueryRequest request,
                     Priority priority = Priority::kInteractive);

  /// \brief Enqueues a whole burst under one queue lock — the dispatchers
  /// observe all-or-nothing, so an idle (or paused) service coalesces the
  /// burst into the fewest possible RunBatch dispatches. To keep that
  /// atomicity (and to stay deadlock-free on a paused service), a burst
  /// never blocks: requests beyond a target lane's remaining capacity
  /// resolve with Status::Unavailable even under
  /// BackpressurePolicy::kBlock. Other per-request failure semantics
  /// match Submit().
  std::vector<QueryTicket> SubmitBurst(
      std::vector<core::QueryRequest> requests,
      Priority priority = Priority::kInteractive);

  /// \brief Appends an observation to object `id` (global id in sharded
  /// mode), returning the DataVersion the mutation was stamped with. The
  /// serving-time ingest path: validation and epoch bookkeeping happen in
  /// Database::AppendObservation under the owning shard's ingest lock —
  /// only that shard's dispatch serializes against the append, every
  /// other shard keeps serving untouched. On success the affected
  /// standing subscriptions (WindowPolicy::refresh_on_ingest) are marked
  /// dirty for the next refresh round. Fails with kFailedPrecondition on
  /// a service constructed over a const database, kNotFound for an
  /// unknown object, kInvalidArgument for an out-of-order or
  /// duplicate-timestamp observation (the history is never corrupted),
  /// and kUnavailable after Shutdown() or under an injected `ingest`
  /// fault. An optional trace records the kIngest span.
  util::Result<DataVersion> AppendObservation(
      ObjectId id, core::Observation obs,
      const std::shared_ptr<obs::QueryTrace>& trace = nullptr);

  /// \brief Registers a standing query. Every refresh re-evaluates
  /// `request` (with its current window) through the normal submit
  /// pipeline — answers are bit-identical to a one-shot Submit() at the
  /// same epoch — and delivers the answer-set delta to `callback`.
  /// kKTimes requests are rejected (kInvalidArgument): distribution
  /// answers have no set-delta form. The request's own trace/cancel
  /// fields are ignored; refresh sub-requests get service-sampled traces
  /// like any submission.
  util::Result<Subscription> Subscribe(core::QueryRequest request,
                                       WindowPolicy policy,
                                       SubscriptionCallback callback);

  /// \brief Advances every sliding subscription's window forward by
  /// `steps` x WindowPolicy::slide timestamps and marks it dirty. The
  /// caller owns the clock — the service runs no timer thread, so tests
  /// and replay drivers stay deterministic.
  void TickWindows(Timestamp steps = 1);

  /// \brief Runs one refresh round: flushes every dirty, live
  /// subscription through ONE SubmitBurst (coalescing into shared
  /// RunBatch groups), waits for the answers, and delivers deltas on the
  /// calling thread in subscription order. A subscription whose refresh
  /// fails transiently (backpressure rejection, quarantined shards with
  /// partial answers disabled) stays dirty and is retried next round; its
  /// sequence number does not advance. Returns the number of deltas
  /// delivered. Rounds are serialized — concurrent callers queue behind
  /// one another.
  size_t RefreshSubscriptions();

  /// Registered, not-yet-cancelled subscriptions.
  size_t num_subscriptions() const;

  /// \brief Stops admitting, drains every queued request through the
  /// executors (cancelled/expired ones resolve without executing), then
  /// joins the dispatchers. Idempotent and safe to call concurrently.
  void Shutdown();

  /// Holds every dispatcher after its current drain; queued and newly
  /// submitted requests wait until Resume(). Shutdown() overrides a pause.
  void Pause();
  /// Releases a Pause().
  void Resume();

  /// Current counters; see ServiceStats for sampling semantics.
  ServiceStats stats() const;

  /// \brief The N slowest traced requests so far (descending latency),
  /// each with its full span breakdown — N is
  /// ObsOptions::slow_query_ring. Only requests that carried a
  /// QueryTrace (every trace_sample_every-th submission, plus any with
  /// a caller-attached trace) are candidates. Empty when observability
  /// is disabled or the ring capacity is 0. Thread-safe.
  std::vector<SlowQuery> slow_queries() const;

  /// Queued entries across all lanes and shards right now.
  size_t queue_depth() const;

  /// The executor options actually in effect (after sanitization).
  const ServiceOptions& options() const { return options_; }

  /// Shard executors this service runs (1 for a plain Database).
  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }

  /// Current health of shard `shard`'s lane (see ShardHealth). Driven by
  /// dispatch outcomes: transient failures degrade then quarantine, any
  /// success recovers, a stalled dispatcher trips the watchdog straight
  /// to quarantine. Thread-safe, lock-free.
  ShardHealth shard_health(uint32_t shard) const;

 private:
  struct ShardTask;  // one queued sub-request (gather handle + index)
  struct ShardLane;  // executor + two-lane queue + dispatcher of a shard
  struct ObsHandles;  // resolved registry handles (service + per shard)

  /// Builds the gather (sub-requests, merge metadata, plan pinning) for
  /// one prepared parent. Returns non-OK — without touching any queue —
  /// when the request cannot be routed (invalid object_filter).
  util::Status BuildRoute(const std::shared_ptr<internal::TicketState>& state,
                          std::shared_ptr<internal::GatherState>* out) const;
  /// Appends every sub of `gather` to its target lane under `lock`,
  /// honoring capacity/backpressure all-or-nothing. Returns non-OK
  /// (enqueueing nothing) when the submission must be rejected. With
  /// `allow_block` (solo Submit under kBlock) it may release and
  /// reacquire `lock` while waiting for space on every target; bursts
  /// pass false so the whole burst stays under one uninterrupted hold.
  util::Status TryEnqueueLocked(
      const std::shared_ptr<internal::GatherState>& gather, Priority priority,
      std::unique_lock<std::mutex>* lock, bool allow_block);
  /// Wakes the dispatcher of every shard `gather` targets.
  void NotifyTargets(const internal::GatherState& gather);

  void DispatcherLoop(uint32_t shard);
  /// Executes one drained set on shard `shard`: resolves stale entries,
  /// runs the rest as a solo Run or one coalesced RunBatch, completes
  /// every sub.
  void Dispatch(uint32_t shard, std::vector<ShardTask> taken);
  /// Records sub `sub_index`'s outcome; the last sub to land merges and
  /// resolves the parent on its dispatcher thread.
  void CompleteSub(const std::shared_ptr<internal::GatherState>& gather,
                   size_t sub_index, util::Result<core::QueryResult> outcome,
                   uint32_t shard);
  /// Merges sub-results (translation, per-predicate merge, summed stats)
  /// into the parent outcome and resolves it.
  void MergeAndResolve(const std::shared_ptr<internal::GatherState>& gather,
                       uint32_t shard);
  /// Resolves `state` with `outcome`, classifying it into the stats
  /// counters and recording latency in shard `latency_shard`'s reservoir.
  /// Every ticket passes through here exactly once.
  void Resolve(const std::shared_ptr<internal::TicketState>& state,
               util::Result<core::QueryResult> outcome,
               uint32_t latency_shard);
  /// Builds the ticket state for one submission (links cancel tokens,
  /// stamps the clock, counts it submitted).
  std::shared_ptr<internal::TicketState> PrepareState(
      core::QueryRequest request, Priority priority);
  size_t QueueDepthLocked() const;

  /// Admission control. Returns non-OK (with a retry-after hint in the
  /// message) when `priority` traffic must be shed under the current
  /// queue depth / queue-wait p99; may instead downgrade a willing
  /// (degrade == kUnderPressure) threshold request to a bounds-only
  /// answer, setting `*degrade_instead`. Called under queue_mu_.
  util::Status MaybeShedLocked(const internal::GatherState& gather,
                               Priority priority, bool* degrade_instead);
  /// Drops sub-routes targeting quarantined shards (recording their
  /// objects as missing) and counts admitted probes. Returns non-OK when
  /// every target is quarantined with no probe due, or when the request
  /// cannot tolerate a partial answer.
  util::Status ApplyHealthGate(
      const std::shared_ptr<internal::GatherState>& gather);
  /// Schedules a retry of sub `sub_index` when `outcome` is a transient
  /// failure within the request's retry budget (deadline allowing, not
  /// shutting down). Returns true when the retry was enqueued — the sub
  /// is NOT complete and the caller must not record the outcome.
  bool MaybeScheduleRetry(
      const std::shared_ptr<internal::GatherState>& gather, size_t sub_index,
      const util::Result<core::QueryResult>& outcome, uint32_t shard);
  /// Feeds a sub outcome into shard `shard`'s health tracker, counting
  /// transitions (quarantines, recoveries) into stats and metrics.
  void RecordShardOutcome(uint32_t shard, const util::Status& status);
  /// Watchdog sweep over every shard from a submitting thread.
  void CheckWatchdogs(std::chrono::steady_clock::time_point now);
  /// Moves every retry entry of `lane` whose due time has passed `now`
  /// back into its priority lane. Called under queue_mu_.
  void PromoteRetriesLocked(ShardLane& lane,
                            std::chrono::steady_clock::time_point now);
  /// Marks dirty every live subscription whose answer the freshly
  /// ingested object `id` can affect (refresh_on_ingest, filter match).
  void MarkDirtyForIngest(ObjectId id);
  /// Computes one subscription's delta against its last delivered answer
  /// and advances the delivered state. Called only from the serialized
  /// refresh round.
  SubscriptionDelta BuildDelta(internal::SubscriptionState& sub,
                               const core::QueryResult& result);

  const core::Database* db_ = nullptr;            // legacy mode
  const core::ShardedDatabase* sharded_ = nullptr;  // sharded mode
  /// Ingest-capable aliases of db_/sharded_; null when constructed over a
  /// const database (ingest then fails with kFailedPrecondition).
  core::Database* mutable_db_ = nullptr;
  core::ShardedDatabase* mutable_sharded_ = nullptr;
  ServiceOptions options_;

  mutable std::mutex queue_mu_;
  std::condition_variable space_cv_;  // wakes blocked producers
  std::vector<std::unique_ptr<ShardLane>> shards_;
  size_t queue_peak_ = 0;  ///< high-water mark, all lanes and shards
  bool paused_ = false;
  bool stopping_ = false;

  std::mutex shutdown_mu_;  // serializes Shutdown() callers around join

  mutable std::mutex stats_mu_;  // guards stats_ + per-shard telemetry
  ServiceStats stats_;  // counter fields only; sampled fields set in stats()
  std::vector<SlowQuery> slow_ring_;  // descending latency; stats_mu_

  std::unique_ptr<ObsHandles> obs_;  // null when options_.obs.enabled=false
  std::atomic<uint64_t> submit_seq_{0};  // trace sampling counter

  /// Subscription registry. subs_mu_ guards the vector and each entry's
  /// dirty flag + request window (ingest marks dirty, ticks slide
  /// windows); refresh_mu_ serializes refresh rounds and alone guards the
  /// delivered state (last_answer, sequence advancement).
  mutable std::mutex subs_mu_;
  std::mutex refresh_mu_;
  std::vector<std::shared_ptr<internal::SubscriptionState>> subscriptions_;
  uint64_t next_subscription_id_ = 1;  // subs_mu_
};

}  // namespace service
}  // namespace ustdb

#endif  // USTDB_SERVICE_QUERY_SERVICE_H_
