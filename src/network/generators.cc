#include "network/generators.h"

#include <algorithm>
#include <set>

#include "util/rng.h"
#include "util/string_util.h"

namespace ustdb {
namespace network {

util::Result<RoadNetwork> GenerateRoadNetwork(const RoadGenConfig& config) {
  const uint32_t n = config.num_nodes;
  if (n < 2) {
    return util::Status::InvalidArgument("need at least two nodes");
  }
  if (config.num_edges < n - 1) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "%u edges cannot connect %u nodes", config.num_edges, n));
  }
  if (config.locality_window == 0) {
    return util::Status::InvalidArgument("locality window must be >= 1");
  }

  util::Rng rng(config.seed);
  std::set<std::pair<uint32_t, uint32_t>> used;
  std::vector<RoadEdge> edges;
  edges.reserve(config.num_edges);

  // Spanning tree: node i attaches to a parent within the locality window.
  for (uint32_t i = 1; i < n; ++i) {
    const uint32_t lo = i > config.locality_window ? i - config.locality_window
                                                   : 0;
    const uint32_t parent =
        static_cast<uint32_t>(rng.NextInRange(lo, i - 1));
    edges.push_back({parent, i});
    used.insert({parent, i});
  }

  // Chords: extra local edges until the target count is reached. Guard
  // against saturated neighbourhoods with a bounded retry budget.
  uint64_t attempts = 0;
  const uint64_t max_attempts = 64ULL * config.num_edges + 1024;
  while (edges.size() < config.num_edges) {
    if (++attempts > max_attempts) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "cannot place %u edges with locality window %u (graph saturated "
          "after %zu edges)",
          config.num_edges, config.locality_window, edges.size()));
    }
    const uint32_t a = static_cast<uint32_t>(rng.NextBounded(n - 1));
    const uint32_t span = static_cast<uint32_t>(
        rng.NextInRange(1, config.locality_window));
    const uint32_t b = std::min(a + span, n - 1);
    if (a == b) continue;
    if (!used.insert({a, b}).second) continue;
    edges.push_back({a, b});
  }
  return RoadNetwork::FromEdges(n, std::move(edges));
}

util::Result<RoadNetwork> GenerateContinentalNetwork(uint64_t seed) {
  RoadGenConfig config;
  config.num_nodes = 175'813;
  config.num_edges = 179'102;
  config.locality_window = 12;  // long corridors, few chords
  config.seed = seed;
  return GenerateRoadNetwork(config);
}

util::Result<RoadNetwork> GenerateUrbanNetwork(uint64_t seed) {
  RoadGenConfig config;
  config.num_nodes = 73'120;
  config.num_edges = 93'925;
  config.locality_window = 24;  // denser blocks, many cycles
  config.seed = seed;
  return GenerateRoadNetwork(config);
}

}  // namespace network
}  // namespace ustdb
