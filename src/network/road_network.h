// Copyright 2026 the ustdb authors.
//
// RoadNetwork — the graph substrate behind the paper's real-data
// experiments. The paper uses the North America road network (175,813
// nodes / 179,102 edges) and the Munich road network (73,120 nodes /
// 93,925 edges) and derives the Markov chain from the adjacency matrix:
// "each node is treated as a state and each edge corresponds to two
// non-zero entries in the transition matrix. The values of the non-zero
// entries of one line ... are set randomly and sum up to one."
//
// We do not have those datasets; generators.h builds synthetic graphs with
// matched node/edge counts and degree profile (see DESIGN.md substitutions).

#ifndef USTDB_NETWORK_ROAD_NETWORK_H_
#define USTDB_NETWORK_ROAD_NETWORK_H_

#include <span>
#include <utility>
#include <vector>

#include "markov/markov_chain.h"
#include "sparse/types.h"
#include "util/result.h"
#include "util/rng.h"

namespace ustdb {
namespace network {

/// Undirected edge between two nodes.
struct RoadEdge {
  uint32_t a = 0;
  uint32_t b = 0;

  bool operator==(const RoadEdge&) const = default;
};

/// \brief Immutable undirected road graph in adjacency (CSR-like) form.
class RoadNetwork {
 public:
  /// \brief Builds from an undirected edge list. Self-loops and duplicate
  /// edges are rejected; node ids must be < num_nodes.
  static util::Result<RoadNetwork> FromEdges(uint32_t num_nodes,
                                             std::vector<RoadEdge> edges);

  uint32_t num_nodes() const { return num_nodes_; }

  /// Number of *undirected* edges.
  uint32_t num_edges() const { return num_edges_; }

  /// Neighbours of node `n` (ascending).
  std::span<const uint32_t> Neighbors(uint32_t n) const {
    return {adj_.data() + offsets_[n], adj_.data() + offsets_[n + 1]};
  }

  uint32_t Degree(uint32_t n) const {
    return static_cast<uint32_t>(offsets_[n + 1] - offsets_[n]);
  }

  /// Mean degree 2|E| / |V|.
  double AverageDegree() const {
    return num_nodes_ == 0 ? 0.0
                           : 2.0 * num_edges_ / static_cast<double>(num_nodes_);
  }

  /// True iff the graph is connected (BFS from node 0).
  bool IsConnected() const;

  /// The undirected edge list (a < b, sorted).
  std::vector<RoadEdge> Edges() const;

  /// \brief Derives the motion model exactly as the paper does: for every
  /// node, assign each incident edge a random weight and normalize the row
  /// to one. Isolated nodes receive a self-loop.
  util::Result<markov::MarkovChain> ToMarkovChain(util::Rng* rng) const;

 private:
  RoadNetwork() = default;

  uint32_t num_nodes_ = 0;
  uint32_t num_edges_ = 0;
  std::vector<uint64_t> offsets_;  // size num_nodes_ + 1
  std::vector<uint32_t> adj_;      // concatenated neighbour lists
};

}  // namespace network
}  // namespace ustdb

#endif  // USTDB_NETWORK_ROAD_NETWORK_H_
