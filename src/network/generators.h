// Copyright 2026 the ustdb authors.
//
// Synthetic road-network generators standing in for the paper's two real
// datasets (see DESIGN.md §2). Both produce connected graphs whose nodes
// carry an implicit 1-D "corridor" embedding: a random spanning tree with
// bounded-window attachment plus extra local chords. The locality window
// controls how quickly the reachable frontier grows per transition — the
// property that differentiates the paper's Figure 9(b) (Munich, denser)
// from 9(c) (North America, sparser).

#ifndef USTDB_NETWORK_GENERATORS_H_
#define USTDB_NETWORK_GENERATORS_H_

#include "network/road_network.h"
#include "util/result.h"

namespace ustdb {
namespace network {

/// Parameters of the corridor generator.
struct RoadGenConfig {
  uint32_t num_nodes = 10'000;
  /// Total undirected edges; must be >= num_nodes - 1 (spanning tree) and
  /// small enough to fit the locality window.
  uint32_t num_edges = 11'000;
  /// Node i attaches to a parent in [i - locality_window, i - 1]; chords
  /// also span at most this window. Smaller window = longer corridors.
  uint32_t locality_window = 16;
  uint64_t seed = 42;
};

/// \brief Generates a connected corridor graph per `config`.
util::Result<RoadNetwork> GenerateRoadNetwork(const RoadGenConfig& config);

/// \brief North-America-like preset: 175,813 nodes, 179,102 edges
/// (average degree ≈ 2.04, tree-like with sparse chords).
util::Result<RoadNetwork> GenerateContinentalNetwork(uint64_t seed);

/// \brief Munich-like preset: 73,120 nodes, 93,925 edges (average degree
/// ≈ 2.57, markedly more cycles — urban blocks).
util::Result<RoadNetwork> GenerateUrbanNetwork(uint64_t seed);

}  // namespace network
}  // namespace ustdb

#endif  // USTDB_NETWORK_GENERATORS_H_
