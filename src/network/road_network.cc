#include "network/road_network.h"

#include <algorithm>

#include "util/string_util.h"

namespace ustdb {
namespace network {

util::Result<RoadNetwork> RoadNetwork::FromEdges(uint32_t num_nodes,
                                                 std::vector<RoadEdge> edges) {
  for (RoadEdge& e : edges) {
    if (e.a >= num_nodes || e.b >= num_nodes) {
      return util::Status::OutOfRange(util::StringPrintf(
          "edge (%u,%u) references a node >= %u", e.a, e.b, num_nodes));
    }
    if (e.a == e.b) {
      return util::Status::InvalidArgument(
          util::StringPrintf("self-loop at node %u", e.a));
    }
    if (e.a > e.b) std::swap(e.a, e.b);
  }
  std::sort(edges.begin(), edges.end(), [](const RoadEdge& x, const RoadEdge& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });
  auto dup = std::adjacent_find(edges.begin(), edges.end());
  if (dup != edges.end()) {
    return util::Status::InvalidArgument(
        util::StringPrintf("duplicate edge (%u,%u)", dup->a, dup->b));
  }

  RoadNetwork g;
  g.num_nodes_ = num_nodes;
  g.num_edges_ = static_cast<uint32_t>(edges.size());
  g.offsets_.assign(num_nodes + 1, 0);
  for (const RoadEdge& e : edges) {
    ++g.offsets_[e.a + 1];
    ++g.offsets_[e.b + 1];
  }
  for (uint32_t n = 0; n < num_nodes; ++n) g.offsets_[n + 1] += g.offsets_[n];
  g.adj_.resize(2 * edges.size());
  std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const RoadEdge& e : edges) {
    g.adj_[cursor[e.a]++] = e.b;
    g.adj_[cursor[e.b]++] = e.a;
  }
  for (uint32_t n = 0; n < num_nodes; ++n) {
    std::sort(g.adj_.begin() + static_cast<ptrdiff_t>(g.offsets_[n]),
              g.adj_.begin() + static_cast<ptrdiff_t>(g.offsets_[n + 1]));
  }
  return g;
}

bool RoadNetwork::IsConnected() const {
  if (num_nodes_ == 0) return true;
  std::vector<uint8_t> seen(num_nodes_, 0);
  std::vector<uint32_t> stack = {0};
  seen[0] = 1;
  uint32_t visited = 1;
  while (!stack.empty()) {
    const uint32_t n = stack.back();
    stack.pop_back();
    for (uint32_t m : Neighbors(n)) {
      if (!seen[m]) {
        seen[m] = 1;
        ++visited;
        stack.push_back(m);
      }
    }
  }
  return visited == num_nodes_;
}

std::vector<RoadEdge> RoadNetwork::Edges() const {
  std::vector<RoadEdge> out;
  out.reserve(num_edges_);
  for (uint32_t n = 0; n < num_nodes_; ++n) {
    for (uint32_t m : Neighbors(n)) {
      if (n < m) out.push_back({n, m});
    }
  }
  return out;
}

util::Result<markov::MarkovChain> RoadNetwork::ToMarkovChain(
    util::Rng* rng) const {
  std::vector<sparse::Triplet> triplets;
  triplets.reserve(adj_.size() + num_nodes_);
  for (uint32_t n = 0; n < num_nodes_; ++n) {
    auto nbrs = Neighbors(n);
    if (nbrs.empty()) {
      triplets.push_back({n, n, 1.0});
      continue;
    }
    double total = 0.0;
    std::vector<double> w(nbrs.size());
    for (double& x : w) {
      // Strictly positive weight so the support equals the adjacency.
      x = rng->NextDouble() + 1e-3;
      total += x;
    }
    for (size_t k = 0; k < nbrs.size(); ++k) {
      triplets.push_back({n, nbrs[k], w[k] / total});
    }
  }
  return markov::MarkovChain::FromTriplets(num_nodes_, std::move(triplets));
}

}  // namespace network
}  // namespace ustdb
