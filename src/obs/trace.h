// Copyright 2026 the ustdb authors.
//
// obs::QueryTrace — a per-query span record capturing where one request's
// time actually went: queue wait, dispatch/coalesce, plan decision, bound
// pass, engine build (cache hit/miss), evaluate/refine, scatter-gather
// merge. Every span is a steady_clock-stamped [begin, end) interval
// relative to the trace's epoch (the submission instant), so per-stage
// durations sum — within clock-read tolerance — to the ticket's
// end-to-end latency on a serial path, and overlap visibly on a sharded
// scatter.
//
// Traces are rate-sampled by the QueryService (ObsOptions::
// trace_sample_every) or attached explicitly by a caller on
// QueryRequest::trace; the executor and service record spans only when a
// trace is present, so untraced requests pay nothing beyond a null check.

#ifndef USTDB_OBS_TRACE_H_
#define USTDB_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ustdb {
namespace obs {

/// Pipeline stage a span covers. Service-side stages (kQueue, kDispatch,
/// kMerge) and executor-side stages (kPlan, kBound, kEngineBuild,
/// kEvaluate) interleave in one trace; on a scattered request the
/// executor stages appear once per sub-request, labeled by shard.
enum class Stage : uint8_t {
  kQueue,        ///< submit -> dequeued by a shard dispatcher
  kDispatch,     ///< dispatcher handoff through the executor run
  kPlan,         ///< census + plan decision (incl. batch grouping)
  kBound,        ///< Section V-C cluster bound pass
  kEngineBuild,  ///< engine construction / cache lookups
  kEvaluate,     ///< per-object evaluation (refine included)
  kMerge,        ///< scatter-gather merge + resolve
  kIngest,       ///< AppendObservation apply + invalidation bookkeeping
  kNotify,       ///< subscription delta computation + callback delivery
};

/// Stable lowercase stage name for exports and logs.
const char* StageName(Stage stage);

/// One recorded interval of a trace.
struct TraceSpan {
  Stage stage = Stage::kQueue;
  /// Shard whose lane/executor recorded the span; -1 when not shard-bound
  /// (submit-side and merge-side spans of an unsharded service).
  int32_t shard = -1;
  /// Optional annotation ("batch=8", "cache_misses=3").
  std::string detail;
  std::chrono::steady_clock::time_point begin;
  std::chrono::steady_clock::time_point end;

  double seconds() const {
    return std::chrono::duration<double>(end - begin).count();
  }
};

/// \brief Span record of one query, shared between the service and every
/// executor its sub-requests touch. Thread-safe: shard dispatchers append
/// concurrently under an internal mutex (traced requests are the sampled
/// few, so the lock is uncontended in steady state).
class QueryTrace {
 public:
  /// \param epoch the submission instant spans are reported relative to.
  explicit QueryTrace(std::chrono::steady_clock::time_point epoch =
                          std::chrono::steady_clock::now())
      : epoch_(epoch) {}

  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

  /// Appends one span; callable from any thread.
  void Record(Stage stage, std::chrono::steady_clock::time_point begin,
              std::chrono::steady_clock::time_point end, int32_t shard = -1,
              std::string detail = {});

  /// Copy of the recorded spans, sorted by begin time (ties by stage).
  std::vector<TraceSpan> spans() const;

  /// Total seconds recorded for `stage` across all its spans.
  double StageSeconds(Stage stage) const;

  /// Human-readable breakdown: one line per span with offset from epoch,
  /// duration, shard, and detail. For examples and slow-query logs.
  std::string Format() const;

 private:
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
};

}  // namespace obs
}  // namespace ustdb

#endif  // USTDB_OBS_TRACE_H_
