#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <utility>

#include "kernels/isa.h"

#ifndef _WIN32
#include <unistd.h>
#endif

#ifndef USTDB_GIT_SHA
#define USTDB_GIT_SHA "unknown"
#endif

namespace ustdb {
namespace obs {

namespace {

/// First finite bucket bound (1 microsecond when observing seconds) and
/// the number of doubling steps. 36 bounds reach ~9.5 hours.
constexpr double kFirstBound = 1e-6;
constexpr size_t kNumBounds = 36;

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string FormatBound(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// Minimal JSON string escaper (quotes, backslashes, control bytes); the
/// values this system exports are names and numbers, nothing exotic.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Prometheus label-value escaper (backslash, quote, newline).
std::string PromEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

std::string RenderLabels(const Labels& labels, const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + PromEscape(v) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "counter";
}

}  // namespace

const std::vector<double>& HistogramBucketBounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    b.reserve(kNumBounds);
    double bound = kFirstBound;
    for (size_t i = 0; i < kNumBounds; ++i) {
      b.push_back(bound);
      bound *= 2.0;
    }
    return b;
  }();
  return bounds;
}

double PercentileFromBuckets(const HistogramData& h, double q) {
  if (h.count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(
                                q * static_cast<double>(h.count))));
  const std::vector<double>& bounds = HistogramBucketBounds();
  uint64_t cum = 0;
  for (size_t i = 0; i < h.buckets.size(); ++i) {
    cum += h.buckets[i];
    if (cum >= target) {
      return i < bounds.size() ? bounds[i] : bounds.back();
    }
  }
  return bounds.back();
}

HistogramData MergeHistograms(const std::vector<HistogramData>& parts) {
  HistogramData out;
  out.buckets.assign(HistogramBucketBounds().size() + 1, 0);
  for (const HistogramData& part : parts) {
    for (size_t i = 0; i < part.buckets.size() && i < out.buckets.size();
         ++i) {
      out.buckets[i] += part.buckets[i];
    }
    out.count += part.count;
    out.sum += part.sum;
  }
  return out;
}

Histogram::Histogram() {
  const size_t n = HistogramBucketBounds().size() + 1;  // + overflow
  for (size_t i = 0; i < n; ++i) buckets_.emplace_back(0);
}

void Histogram::Observe(double v) {
  const std::vector<double>& bounds = HistogramBucketBounds();
  // Branch-free-ish bucket search is overkill: 36 bounds, the loop exits
  // after a handful of iterations for realistic latencies. Values below
  // the first bound land in bucket 0, values beyond the last in overflow.
  size_t i = 0;
  while (i < bounds.size() && v > bounds[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

HistogramData Histogram::Snapshot() const {
  HistogramData out;
  out.buckets.reserve(buckets_.size());
  for (const std::atomic<uint64_t>& b : buckets_) {
    out.buckets.push_back(b.load(std::memory_order_relaxed));
  }
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  return out;
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never freed
  return instance;
}

template <typename T>
T* MetricsRegistry::Resolve(std::deque<T>* store, MetricKind kind,
                            const std::string& name, const Labels& labels,
                            const std::string& help,
                            const std::string& unit) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [fit, inserted] = families_.try_emplace(name);
  Family& family = fit->second;
  if (inserted) {
    family.kind = kind;
    family.help = help;
    family.unit = unit;
  } else if (family.kind != kind) {
    // Kind mismatch: hand back a detached sink so the call site works
    // without a null check; nothing it records is exported.
    static T sink;
    return &sink;
  }
  auto [pit, fresh] = family.points.try_emplace(labels, store->size());
  if (fresh) store->emplace_back();
  return &(*store)[pit->second];
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels,
                                     const std::string& help,
                                     const std::string& unit) {
  return Resolve(&counters_, MetricKind::kCounter, name, labels, help, unit);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels,
                                 const std::string& help,
                                 const std::string& unit) {
  return Resolve(&gauges_, MetricKind::kGauge, name, labels, help, unit);
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels,
                                         const std::string& help,
                                         const std::string& unit) {
  return Resolve(&histograms_, MetricKind::kHistogram, name, labels, help,
                 unit);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  out.meta = CommonMeta();
  std::lock_guard<std::mutex> lock(mu_);
  out.families.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    MetricFamily f;
    f.name = name;
    f.help = family.help;
    f.unit = family.unit;
    f.kind = family.kind;
    f.points.reserve(family.points.size());
    for (const auto& [labels, index] : family.points) {
      MetricPoint p;
      p.labels = labels;
      switch (family.kind) {
        case MetricKind::kCounter:
          p.value = static_cast<double>(counters_[index].Value());
          break;
        case MetricKind::kGauge:
          p.value = gauges_[index].Value();
          break;
        case MetricKind::kHistogram:
          p.histogram = histograms_[index].Snapshot();
          break;
      }
      f.points.push_back(std::move(p));
    }
    out.families.push_back(std::move(f));
  }
  return out;
}

std::map<std::string, std::string> CommonMeta() {
  std::map<std::string, std::string> meta;
  char host[256] = "unknown";
#ifndef _WIN32
  if (gethostname(host, sizeof(host) - 1) != 0) {
    std::snprintf(host, sizeof(host), "unknown");
  }
#endif
  meta["host"] = host;
  meta["nproc"] = std::to_string(std::thread::hardware_concurrency());
  meta["isa"] = kernels::IsaName(kernels::ActiveIsa());
  const char* shards = std::getenv("USTDB_SHARDS");
  meta["ustdb_shards"] = shards != nullptr ? shards : "";
  meta["git_sha"] = USTDB_GIT_SHA;
  std::time_t now = std::time(nullptr);
  std::tm utc{};
#ifndef _WIN32
  gmtime_r(&now, &utc);
#else
  gmtime_s(&utc, &now);
#endif
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
  meta["timestamp_utc"] = stamp;
  return meta;
}

std::string WriteJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"name\": \"ustdb_metrics\",\n  \"meta\": {";
  bool first = true;
  for (const auto& [k, v] : snapshot.meta) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(k) + "\": \"" + JsonEscape(v) + "\"";
  }
  out += "\n  },\n  \"families\": [";
  const std::vector<double>& bounds = HistogramBucketBounds();
  bool first_family = true;
  for (const MetricFamily& f : snapshot.families) {
    out += first_family ? "\n" : ",\n";
    first_family = false;
    out += "    {\"name\": \"" + JsonEscape(f.name) + "\", \"kind\": \"";
    out += KindName(f.kind);
    out += "\", \"unit\": \"" + JsonEscape(f.unit) + "\", \"help\": \"" +
           JsonEscape(f.help) + "\",\n     \"points\": [";
    bool first_point = true;
    for (const MetricPoint& p : f.points) {
      out += first_point ? "\n" : ",\n";
      first_point = false;
      out += "      {\"labels\": {";
      bool first_label = true;
      for (const auto& [k, v] : p.labels) {
        if (!first_label) out += ", ";
        first_label = false;
        out += '"';
        out += JsonEscape(k);
        out += "\": \"";
        out += JsonEscape(v);
        out += '"';
      }
      out += "}";
      if (f.kind == MetricKind::kHistogram) {
        out += ", \"count\": " + std::to_string(p.histogram.count);
        out += ", \"sum\": " + FormatDouble(p.histogram.sum);
        out += ", \"buckets\": [";
        bool first_bucket = true;
        for (size_t i = 0; i < p.histogram.buckets.size(); ++i) {
          if (p.histogram.buckets[i] == 0) continue;  // sparse output
          if (!first_bucket) out += ", ";
          first_bucket = false;
          const std::string le =
              i < bounds.size() ? FormatBound(bounds[i]) : "+Inf";
          out += "[\"" + le + "\", " +
                 std::to_string(p.histogram.buckets[i]) + "]";
        }
        out += "]";
      } else {
        out += ", \"value\": " + FormatDouble(p.value);
      }
      out += "}";
    }
    out += "\n     ]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string WritePrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [k, v] : snapshot.meta) {
    out += "# meta " + k + "=" + v + "\n";
  }
  const std::vector<double>& bounds = HistogramBucketBounds();
  for (const MetricFamily& f : snapshot.families) {
    if (!f.help.empty()) {
      out += "# HELP " + f.name + " " + f.help + "\n";
    }
    out += "# TYPE " + f.name + " ";
    out += KindName(f.kind);
    out += "\n";
    for (const MetricPoint& p : f.points) {
      if (f.kind == MetricKind::kHistogram) {
        uint64_t cum = 0;
        for (size_t i = 0; i < p.histogram.buckets.size(); ++i) {
          cum += p.histogram.buckets[i];
          const std::string le =
              i < bounds.size() ? FormatBound(bounds[i]) : "+Inf";
          out += f.name + "_bucket" +
                 RenderLabels(p.labels, "le=\"" + le + "\"") + " " +
                 std::to_string(cum) + "\n";
        }
        out += f.name + "_sum" + RenderLabels(p.labels) + " " +
               FormatDouble(p.histogram.sum) + "\n";
        out += f.name + "_count" + RenderLabels(p.labels) + " " +
               std::to_string(p.histogram.count) + "\n";
      } else {
        out += f.name + RenderLabels(p.labels) + " " + FormatDouble(p.value) +
               "\n";
      }
    }
  }
  return out;
}

PeriodicLogger::PeriodicLogger(
    const MetricsRegistry* registry, std::chrono::milliseconds period,
    std::function<void(const MetricsSnapshot&)> callback)
    : registry_(registry), period_(period), callback_(std::move(callback)) {
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (cv_.wait_for(lock, period_, [this] { return stop_; })) return;
      // Snapshot + callback outside the wait lock so Stop() never blocks
      // behind a slow callback.
      lock.unlock();
      callback_(registry_->Snapshot());
      lock.lock();
    }
  });
}

PeriodicLogger::~PeriodicLogger() { Stop(); }

void PeriodicLogger::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      if (!thread_.joinable()) return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

}  // namespace obs
}  // namespace ustdb
