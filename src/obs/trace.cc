#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace ustdb {
namespace obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kQueue:
      return "queue";
    case Stage::kDispatch:
      return "dispatch";
    case Stage::kPlan:
      return "plan";
    case Stage::kBound:
      return "bound";
    case Stage::kEngineBuild:
      return "engine_build";
    case Stage::kEvaluate:
      return "evaluate";
    case Stage::kMerge:
      return "merge";
    case Stage::kIngest:
      return "ingest";
    case Stage::kNotify:
      return "notify";
  }
  return "unknown";
}

void QueryTrace::Record(Stage stage,
                        std::chrono::steady_clock::time_point begin,
                        std::chrono::steady_clock::time_point end,
                        int32_t shard, std::string detail) {
  TraceSpan span;
  span.stage = stage;
  span.shard = shard;
  span.detail = std::move(detail);
  span.begin = begin;
  span.end = end;
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(span));
}

std::vector<TraceSpan> QueryTrace::spans() const {
  std::vector<TraceSpan> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = spans_;
  }
  std::sort(out.begin(), out.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              return static_cast<int>(a.stage) < static_cast<int>(b.stage);
            });
  return out;
}

double QueryTrace::StageSeconds(Stage stage) const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  for (const TraceSpan& span : spans_) {
    if (span.stage == stage) total += span.seconds();
  }
  return total;
}

std::string QueryTrace::Format() const {
  const std::vector<TraceSpan> sorted = spans();
  std::string out;
  char line[256];
  for (const TraceSpan& span : sorted) {
    const double offset_ms =
        std::chrono::duration<double, std::milli>(span.begin - epoch_)
            .count();
    const double dur_ms = span.seconds() * 1e3;
    if (span.shard >= 0) {
      std::snprintf(line, sizeof(line),
                    "  +%8.3f ms %-12s %8.3f ms  shard=%d%s%s\n", offset_ms,
                    StageName(span.stage), dur_ms, span.shard,
                    span.detail.empty() ? "" : "  ", span.detail.c_str());
    } else {
      std::snprintf(line, sizeof(line),
                    "  +%8.3f ms %-12s %8.3f ms%s%s\n", offset_ms,
                    StageName(span.stage), dur_ms,
                    span.detail.empty() ? "" : "  ", span.detail.c_str());
    }
    out += line;
  }
  return out;
}

}  // namespace obs
}  // namespace ustdb
