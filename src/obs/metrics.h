// Copyright 2026 the ustdb authors.
//
// obs::MetricsRegistry — process-wide named counters, gauges, and
// log-bucketed histograms with labels, built for serving hot paths:
//
//   * Handle resolution (GetCounter/GetGauge/GetHistogram) is the only
//     operation that takes the registry lock; call sites resolve their
//     handles once (constructor, function-local static) and then update
//     through them lock-free.
//   * Counter::Add is a relaxed fetch_add on one of several cache-line-
//     aligned stripes selected per thread, so concurrent writers — the
//     per-shard dispatcher threads, the executor pool workers, the SpMV
//     kernel dispatch site — never contend on one line.
//   * Histogram::Observe is a relaxed fetch_add on a log2 bucket; no
//     lock, no allocation, no floating-point accumulation race (the sum
//     is a CAS loop on an atomic double).
//
// Snapshot consistency model: Snapshot() reads every atomic individually
// with relaxed ordering. Each read value is itself never torn, and every
// counter is monotone, but values read across metrics (or across stripes
// of one counter) need not correspond to a single instant — a snapshot
// taken during a burst can show a histogram count slightly ahead of a
// related counter. This is the standard contract of scrape-based metrics
// and is documented once here instead of per call site.
//
// The exporters (WriteJson, WritePrometheusText) render one snapshot;
// benches attach the same CommonMeta() block to their Recorder output so
// bench JSON and service metrics snapshots share one meta schema.

#ifndef USTDB_OBS_METRICS_H_
#define USTDB_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ustdb {
namespace obs {

/// Label set of one metric point ("shard" -> "2", "plan" -> "qb", ...).
/// Ordered so exposition output is deterministic.
using Labels = std::map<std::string, std::string>;

/// What a metric family measures.
enum class MetricKind {
  kCounter,    ///< monotone event count
  kGauge,      ///< instantaneous value, set or adjusted
  kHistogram,  ///< log-bucketed value distribution
};

/// Stripes per counter: enough that a handful of dispatcher/worker
/// threads rarely share one, small enough that a registry full of labeled
/// counters stays compact.
inline constexpr size_t kCounterStripes = 8;

/// \brief Monotone event counter. Add() is wait-free: one relaxed
/// fetch_add on this thread's stripe. Value() sums the stripes (relaxed;
/// see the snapshot consistency model above).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    stripes_[ThreadStripe()].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Stripe& s : stripes_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> v{0};
  };

  static size_t ThreadStripe() {
    // Hash of the thread id, computed once per thread: stable for the
    // thread's lifetime, spreads the fixed dispatcher/worker threads of a
    // service across stripes.
    thread_local const size_t stripe =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) %
        kCounterStripes;
    return stripe;
  }

  Stripe stripes_[kCounterStripes];
};

/// \brief Instantaneous value (queue depth, active shards). Set/Add are
/// lock-free; Add is a CAS loop (uncontended: one iteration).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }

  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Upper bounds of the log2 histogram buckets, ascending. Bucket i counts
/// observations v with v <= bounds[i] (and > bounds[i-1]); one overflow
/// bucket beyond the last bound completes the partition. The geometric
/// grid spans 1 microsecond to ~9.5 hours when observations are seconds —
/// every latency this system can produce lands in a finite bucket.
const std::vector<double>& HistogramBucketBounds();

/// Point-in-time contents of one histogram: per-bucket counts (one entry
/// per bound plus the overflow bucket), total count, and value sum.
struct HistogramData {
  std::vector<uint64_t> buckets;
  uint64_t count = 0;
  double sum = 0.0;
};

/// \brief Reads the q-quantile (q in [0, 1]) off bucketed counts: the
/// upper bound of the first bucket whose cumulative count reaches
/// ceil(q * count). Conservative by at most one bucket width (a factor of
/// 2); exact enough for dashboards, and — because it is a pure function
/// of the bucket counts — identical whether the counts were observed by
/// one histogram or merged from several (see MergeHistograms).
double PercentileFromBuckets(const HistogramData& h, double q);

/// \brief Bucket-wise sum of several histograms (same fixed bucket grid).
/// The merge is exact: the result equals the histogram that would have
/// observed the pooled samples, so merged percentiles never average
/// per-source percentiles.
HistogramData MergeHistograms(const std::vector<HistogramData>& parts);

/// \brief Log-bucketed value distribution. Observe() is lock-free: one
/// relaxed fetch_add on the value's bucket and count, one CAS on the sum.
class Histogram {
 public:
  Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v);

  /// Relaxed read of all buckets; see the snapshot consistency model.
  HistogramData Snapshot() const;

  /// PercentileFromBuckets over a live snapshot.
  double Percentile(double q) const { return PercentileFromBuckets(Snapshot(), q); }

 private:
  std::deque<std::atomic<uint64_t>> buckets_;  // bounds + overflow
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One exported metric point: its labels and either a scalar value
/// (counter, gauge) or bucketed data (histogram).
struct MetricPoint {
  Labels labels;
  double value = 0.0;
  HistogramData histogram;
};

/// One exported metric family: every point sharing a name.
struct MetricFamily {
  std::string name;
  std::string help;
  std::string unit;
  MetricKind kind = MetricKind::kCounter;
  std::vector<MetricPoint> points;
};

/// One consistent-enough view of a registry (see the header comment for
/// the exact consistency contract) plus the common meta block.
struct MetricsSnapshot {
  std::map<std::string, std::string> meta;
  std::vector<MetricFamily> families;
};

/// \brief Process-wide metric registry. Get* resolves (or registers) a
/// metric and returns a handle that stays valid for the registry's
/// lifetime; only resolution locks. Asking for an existing name with a
/// different kind returns a detached sink metric (updates are absorbed,
/// nothing is exported) so instrumentation sites never need a null check.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The default registry every subsystem feeds unless an ObsOptions
  /// points elsewhere (tests isolate by constructing their own).
  static MetricsRegistry* Global();

  Counter* GetCounter(const std::string& name, const Labels& labels = {},
                      const std::string& help = "",
                      const std::string& unit = "");
  Gauge* GetGauge(const std::string& name, const Labels& labels = {},
                  const std::string& help = "", const std::string& unit = "");
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {},
                          const std::string& help = "",
                          const std::string& unit = "");

  /// Reads every registered metric; families and points come out in
  /// deterministic (name, label) order. meta is filled with CommonMeta().
  MetricsSnapshot Snapshot() const;

 private:
  struct Family {
    MetricKind kind = MetricKind::kCounter;
    std::string help;
    std::string unit;
    std::map<Labels, size_t> points;  // label set -> index into kind deque
  };

  template <typename T>
  T* Resolve(std::deque<T>* store, MetricKind kind, const std::string& name,
             const Labels& labels, const std::string& help,
             const std::string& unit);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
  std::deque<Counter> counters_;      // deque: stable addresses
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

/// \brief The shared run/process annotations every exporter and bench
/// attaches: host, nproc, active kernel ISA, USTDB_SHARDS, git sha (baked
/// at configure time, "unknown" outside a git checkout), and a UTC
/// timestamp. One schema for bench JSON and metrics snapshots.
std::map<std::string, std::string> CommonMeta();

/// Renders `snapshot` as a JSON document (families with labeled points;
/// histograms as [bound, count] pairs plus count/sum). Schema documented
/// in docs/OBSERVABILITY.md.
std::string WriteJson(const MetricsSnapshot& snapshot);

/// Renders `snapshot` in Prometheus text exposition format: # HELP/# TYPE
/// headers, cumulative le-labeled histogram buckets with +Inf, _sum and
/// _count series. meta is emitted as a comment header.
std::string WritePrometheusText(const MetricsSnapshot& snapshot);

/// \brief Background thread invoking a callback with a fresh snapshot at
/// a fixed period — the "periodic stats logger" hook: pass a callback
/// that logs, pushes, or files the snapshot. Stops on destruction.
class PeriodicLogger {
 public:
  /// \param registry registry to snapshot; must outlive the logger.
  /// \param period time between callback invocations.
  /// \param callback invoked on the logger thread with each snapshot.
  PeriodicLogger(const MetricsRegistry* registry,
                 std::chrono::milliseconds period,
                 std::function<void(const MetricsSnapshot&)> callback);
  PeriodicLogger(const PeriodicLogger&) = delete;
  PeriodicLogger& operator=(const PeriodicLogger&) = delete;
  ~PeriodicLogger();

  /// Stops the logger thread (idempotent). No callback runs after Stop()
  /// returns.
  void Stop();

 private:
  const MetricsRegistry* registry_;
  std::chrono::milliseconds period_;
  std::function<void(const MetricsSnapshot&)> callback_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// \brief Observability wiring carried by ServiceOptions/ExecutorOptions.
/// With enabled == false no registry handle is resolved, no extra clock
/// is read, and no trace is sampled — the overhead contract's "off" side.
struct ObsOptions {
  /// Registry to feed; nullptr means MetricsRegistry::Global().
  MetricsRegistry* registry = nullptr;
  /// Master switch for aggregate metrics AND trace sampling.
  bool enabled = true;
  /// Extra labels merged into every metric the holder registers (the
  /// service stamps {"shard": "<s>"} on each shard executor's options).
  Labels labels;
  /// Sample a full QueryTrace on every Nth submission (service only);
  /// 0 disables sampling. Caller-attached traces are always honored.
  uint32_t trace_sample_every = 64;
  /// Capacity of the slow-query ring (service only); 0 disables it.
  size_t slow_query_ring = 16;

  /// The registry in effect (resolves the nullptr default).
  MetricsRegistry* ResolvedRegistry() const {
    return registry != nullptr ? registry : MetricsRegistry::Global();
  }
};

}  // namespace obs
}  // namespace ustdb

#endif  // USTDB_OBS_METRICS_H_
