// Copyright 2026 the ustdb authors.
//
// Synthetic workload generator — Section VIII-A / Table I:
//
//   parameter       value range        default
//   |D|             1,000 - 100,000    10,000
//   |S|             2,000 - 100,000    100,000
//   object spread   5                  5
//   state spread    1 - 20             5
//   max step        10 - 100           40
//
// "From each state it is possible to transition into state_spread states.
//  ... An object in state s_i can only transition into states
//  s_j ∈ [s_i − max_step/2, s_i + max_step/2]."

#ifndef USTDB_WORKLOAD_SYNTHETIC_H_
#define USTDB_WORKLOAD_SYNTHETIC_H_

#include "core/database.h"
#include "core/query_window.h"
#include "markov/markov_chain.h"
#include "sparse/prob_vector.h"
#include "util/result.h"
#include "util/rng.h"

namespace ustdb {
namespace workload {

/// Table I parameters (defaults are the paper's defaults).
struct SyntheticConfig {
  uint32_t num_objects = 10'000;   ///< |D|
  uint32_t num_states = 100'000;   ///< |S|
  uint32_t object_spread = 5;      ///< support of each initial pdf
  uint32_t state_spread = 5;       ///< non-zeros per transition row
  uint32_t max_step = 40;          ///< transition band width
  uint64_t seed = 7;
};

/// \brief Generates one Table-I transition matrix: each row has
/// `state_spread` strictly positive entries confined to the band
/// [i − max_step/2, i + max_step/2] (clamped at the domain borders) and
/// sums to one.
util::Result<markov::MarkovChain> GenerateChain(const SyntheticConfig& config,
                                                util::Rng* rng);

/// \brief A perturbed copy of `base`: same support, weights jittered by a
/// relative factor up to `jitter`, rows renormalized. Used to build the
/// per-class chain populations of Section V-C (buses/trucks/cars).
util::Result<markov::MarkovChain> PerturbChain(const markov::MarkovChain& base,
                                               double jitter, util::Rng* rng);

/// \brief One object's initial pdf: `object_spread` consecutive states
/// anchored uniformly at random, with random normalized weights ("objects
/// randomly distributed across the state space").
sparse::ProbVector GenerateObjectPdf(const SyntheticConfig& config,
                                     util::Rng* rng);

/// \brief Full database: one shared chain (the paper's default — "all
/// objects follow the same model") plus |D| objects observed at t = 0.
util::Result<core::Database> GenerateDatabase(const SyntheticConfig& config);

/// \brief Multi-class database: `num_chains` perturbations of one base
/// chain, objects assigned round-robin. Exercises the per-class QB plan and
/// the interval-chain cluster pruning.
util::Result<core::Database> GenerateMultiChainDatabase(
    const SyntheticConfig& config, uint32_t num_chains, double jitter);

/// \brief The paper's default query window — states [100, 120], times
/// [20, 25] — clamped to the configured state count.
util::Result<core::QueryWindow> DefaultWindow(const SyntheticConfig& config);

}  // namespace workload
}  // namespace ustdb

#endif  // USTDB_WORKLOAD_SYNTHETIC_H_
