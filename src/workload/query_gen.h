// Copyright 2026 the ustdb authors.
//
// Query-workload generator: random spatio-temporal windows with controlled
// selectivity, used by the cache/pruning benchmarks and the stress tests.
// The paper evaluates a single fixed window ([100,120] × [20,25]); real
// monitoring workloads issue many windows with repetition, which is what
// this generator models (a Zipf-ish repeat pattern over a pool of windows).

#ifndef USTDB_WORKLOAD_QUERY_GEN_H_
#define USTDB_WORKLOAD_QUERY_GEN_H_

#include <vector>

#include "core/query_request.h"
#include "core/query_window.h"
#include "util/result.h"
#include "util/rng.h"

namespace ustdb {
namespace workload {

/// Parameters of the window generator.
struct QueryGenConfig {
  uint32_t num_states = 100'000;  ///< spatial domain size
  uint32_t region_extent = 21;    ///< states per window (contiguous)
  uint32_t window_length = 6;     ///< timestamps per window (contiguous)
  Timestamp t_min = 5;            ///< earliest window start
  Timestamp t_max = 50;           ///< latest window start
  uint64_t seed = 77;
};

/// \brief One random contiguous window: region anchor and start time drawn
/// uniformly from the configured ranges.
util::Result<core::QueryWindow> RandomWindow(const QueryGenConfig& config,
                                             util::Rng* rng);

/// \brief A stream of `count` queries drawn from a pool of
/// `distinct_windows` windows, with earlier pool entries repeated more
/// often (rank r is drawn with weight 1/(r+1) — a Zipf-like skew). Models
/// monitoring dashboards that refresh a fixed set of watches.
util::Result<std::vector<core::QueryWindow>> RepeatingWorkload(
    const QueryGenConfig& config, uint32_t distinct_windows, uint32_t count);

/// Predicate mix of a mixed request stream, in relative weights.
struct PredicateMix {
  uint32_t exists = 4;     ///< dashboards refreshing P∃ watches
  uint32_t forall = 1;     ///< containment monitors (PST∀Q)
  uint32_t k_times = 1;    ///< dwell-time panels (PSTkQ)
  uint32_t threshold = 3;  ///< alerting rules (P∃ >= τ)
  uint32_t top_k = 1;      ///< "worst offenders" widgets
};

/// \brief A stream of `count` fully formed QueryRequests for the
/// planner/executor pipeline: windows drawn from a Zipf-like repeating
/// pool (see RepeatingWorkload) and predicates drawn from `mix`. Models a
/// monitoring deployment where the same watch windows serve dashboards,
/// alerts, and rankings at once — the workload the engine cache and plan
/// auto-selection are built for.
util::Result<std::vector<core::QueryRequest>> MixedRequestWorkload(
    const QueryGenConfig& config, uint32_t distinct_windows, uint32_t count,
    const PredicateMix& mix = {}, double tau = 0.3, uint32_t top_k = 10);

/// \brief `num_batches` dashboard refreshes of `batch_size` requests each,
/// drawn from one MixedRequestWorkload stream: every refresh submits its
/// requests together (the QueryExecutor::RunBatch shape), windows repeat
/// Zipf-like across and within refreshes, and predicates follow `mix`.
/// Models a dashboard tick: many widgets over few watch windows, issued as
/// one batch so shared backward passes amortize within the refresh and the
/// engine cache carries them across refreshes.
util::Result<std::vector<std::vector<core::QueryRequest>>> RefreshBatches(
    const QueryGenConfig& config, uint32_t distinct_windows,
    uint32_t batch_size, uint32_t num_batches, const PredicateMix& mix = {},
    double tau = 0.3, uint32_t top_k = 10);

/// Parameters of the arrival-time generator.
struct ArrivalConfig {
  /// The two traffic shapes service benchmarks need: memoryless steady
  /// load, and bursts (on phases at full rate separated by silences).
  enum class Kind {
    kPoisson,  ///< exponential inter-arrival gaps at rate_qps
    kOnOff,    ///< Poisson at rate_qps during "on" phases, silent between
  };
  Kind kind = Kind::kPoisson;
  /// Mean arrival rate while arrivals flow (the overall rate for kPoisson;
  /// the in-burst rate for kOnOff). Must be > 0.
  double rate_qps = 1000.0;
  /// kOnOff only: mean duration of the bursting / silent phases, seconds
  /// (both exponentially distributed; must be > 0).
  double on_mean_s = 0.05;
  double off_mean_s = 0.20;
  uint64_t seed = 99;
};

/// \brief Open-loop arrival-time generator for service benchmarks: where
/// RepeatingWorkload decides *what* is asked, ArrivalProcess decides
/// *when* — closed-loop (submit, wait, repeat) benchmarks can never build
/// a queue, so they measure an idle service. Deterministic per seed.
class ArrivalProcess {
 public:
  /// \param config validated shape parameters.
  static util::Result<ArrivalProcess> Create(const ArrivalConfig& config);

  /// Seconds until the next arrival (>= 0; includes any silent phases the
  /// gap spans under kOnOff).
  double NextGap();

  /// The next `count` absolute arrival times, seconds from now.
  std::vector<double> Times(uint32_t count);

 private:
  explicit ArrivalProcess(const ArrivalConfig& config);

  double NextExponential(double mean);

  ArrivalConfig config_;
  util::Rng rng_;
  double on_remaining_s_ = 0.0;  ///< time left in the current on phase
};

}  // namespace workload
}  // namespace ustdb

#endif  // USTDB_WORKLOAD_QUERY_GEN_H_
