#include "workload/synthetic.h"

#include <algorithm>

#include "util/string_util.h"

namespace ustdb {
namespace workload {

util::Result<markov::MarkovChain> GenerateChain(const SyntheticConfig& config,
                                                util::Rng* rng) {
  const uint32_t n = config.num_states;
  if (n < 2) {
    return util::Status::InvalidArgument("need at least two states");
  }
  if (config.state_spread == 0) {
    return util::Status::InvalidArgument("state spread must be >= 1");
  }
  if (config.max_step == 0) {
    return util::Status::InvalidArgument("max step must be >= 1");
  }

  const uint32_t half = config.max_step / 2;
  std::vector<sparse::Triplet> triplets;
  triplets.reserve(static_cast<size_t>(n) * config.state_spread);
  std::vector<uint32_t> band;
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t lo = i > half ? i - half : 0;
    const uint32_t hi = std::min(i + half, n - 1);
    const uint32_t band_size = hi - lo + 1;
    const uint32_t spread = std::min(config.state_spread, band_size);

    // Distinct targets inside the band.
    const std::vector<uint32_t> offsets =
        rng->SampleWithoutReplacement(band_size, spread);
    band.clear();
    for (uint32_t off : offsets) band.push_back(lo + off);

    double total = 0.0;
    std::vector<double> w(band.size());
    for (double& x : w) {
      x = rng->NextDouble() + 1e-3;  // strictly positive
      total += x;
    }
    for (size_t k = 0; k < band.size(); ++k) {
      triplets.push_back({i, band[k], w[k] / total});
    }
  }
  return markov::MarkovChain::FromTriplets(n, std::move(triplets));
}

util::Result<markov::MarkovChain> PerturbChain(const markov::MarkovChain& base,
                                               double jitter,
                                               util::Rng* rng) {
  if (jitter < 0.0 || jitter >= 1.0) {
    return util::Status::InvalidArgument("jitter must be in [0, 1)");
  }
  std::vector<sparse::Triplet> triplets;
  triplets.reserve(base.matrix().nnz());
  const uint32_t n = base.num_states();
  for (uint32_t r = 0; r < n; ++r) {
    auto idx = base.matrix().RowIndices(r);
    auto val = base.matrix().RowValues(r);
    double total = 0.0;
    std::vector<double> w(idx.size());
    for (size_t k = 0; k < idx.size(); ++k) {
      const double factor = 1.0 + jitter * (2.0 * rng->NextDouble() - 1.0);
      w[k] = val[k] * factor;
      total += w[k];
    }
    for (size_t k = 0; k < idx.size(); ++k) {
      triplets.push_back({r, idx[k], w[k] / total});
    }
  }
  return markov::MarkovChain::FromTriplets(n, std::move(triplets));
}

sparse::ProbVector GenerateObjectPdf(const SyntheticConfig& config,
                                     util::Rng* rng) {
  const uint32_t n = config.num_states;
  const uint32_t spread = std::min(config.object_spread, n);
  const uint32_t anchor =
      static_cast<uint32_t>(rng->NextBounded(n - spread + 1));
  std::vector<std::pair<uint32_t, double>> pairs;
  pairs.reserve(spread);
  for (uint32_t k = 0; k < spread; ++k) {
    pairs.emplace_back(anchor + k, rng->NextDouble() + 1e-3);
  }
  return sparse::ProbVector::FromPairs(n, std::move(pairs),
                                       /*normalize=*/true)
      .ValueOrDie();
}

util::Result<core::Database> GenerateDatabase(const SyntheticConfig& config) {
  util::Rng rng(config.seed);
  USTDB_ASSIGN_OR_RETURN(markov::MarkovChain chain,
                         GenerateChain(config, &rng));
  core::Database db;
  const ChainId cid = db.AddChain(std::move(chain));
  for (uint32_t i = 0; i < config.num_objects; ++i) {
    USTDB_ASSIGN_OR_RETURN(
        ObjectId id, db.AddObjectAt(cid, GenerateObjectPdf(config, &rng)));
    (void)id;
  }
  return db;
}

util::Result<core::Database> GenerateMultiChainDatabase(
    const SyntheticConfig& config, uint32_t num_chains, double jitter) {
  if (num_chains == 0) {
    return util::Status::InvalidArgument("need at least one chain");
  }
  util::Rng rng(config.seed);
  USTDB_ASSIGN_OR_RETURN(markov::MarkovChain base,
                         GenerateChain(config, &rng));
  core::Database db;
  std::vector<ChainId> chain_ids;
  chain_ids.push_back(db.AddChain(std::move(base)));
  for (uint32_t c = 1; c < num_chains; ++c) {
    USTDB_ASSIGN_OR_RETURN(
        markov::MarkovChain perturbed,
        PerturbChain(db.chain(chain_ids[0]), jitter, &rng));
    chain_ids.push_back(db.AddChain(std::move(perturbed)));
  }
  for (uint32_t i = 0; i < config.num_objects; ++i) {
    USTDB_ASSIGN_OR_RETURN(
        ObjectId id, db.AddObjectAt(chain_ids[i % num_chains],
                                    GenerateObjectPdf(config, &rng)));
    (void)id;
  }
  return db;
}

util::Result<core::QueryWindow> DefaultWindow(const SyntheticConfig& config) {
  const uint32_t s_lo = std::min(100u, config.num_states - 1);
  const uint32_t s_hi = std::min(120u, config.num_states - 1);
  return core::QueryWindow::FromRanges(config.num_states, s_lo, s_hi, 20, 25);
}

}  // namespace workload
}  // namespace ustdb
