#include "workload/query_gen.h"

#include <cmath>
#include <iterator>
#include <limits>

#include "util/string_util.h"

namespace ustdb {
namespace workload {

util::Result<core::QueryWindow> RandomWindow(const QueryGenConfig& config,
                                             util::Rng* rng) {
  if (config.region_extent == 0 || config.region_extent > config.num_states) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "region extent %u invalid for %u states", config.region_extent,
        config.num_states));
  }
  if (config.window_length == 0) {
    return util::Status::InvalidArgument("window length must be >= 1");
  }
  if (config.t_min > config.t_max) {
    return util::Status::InvalidArgument("t_min > t_max");
  }
  const uint32_t anchor = static_cast<uint32_t>(
      rng->NextBounded(config.num_states - config.region_extent + 1));
  const Timestamp start = static_cast<Timestamp>(
      rng->NextInRange(config.t_min, config.t_max));
  return core::QueryWindow::FromRanges(
      config.num_states, anchor, anchor + config.region_extent - 1, start,
      start + config.window_length - 1);
}

util::Result<std::vector<core::QueryWindow>> RepeatingWorkload(
    const QueryGenConfig& config, uint32_t distinct_windows, uint32_t count) {
  if (distinct_windows == 0) {
    return util::Status::InvalidArgument("need at least one distinct window");
  }
  util::Rng rng(config.seed);
  std::vector<core::QueryWindow> pool;
  pool.reserve(distinct_windows);
  for (uint32_t i = 0; i < distinct_windows; ++i) {
    USTDB_ASSIGN_OR_RETURN(core::QueryWindow w, RandomWindow(config, &rng));
    pool.push_back(std::move(w));
  }

  // Harmonic weights: rank r drawn with probability ∝ 1/(r+1).
  std::vector<double> cumulative(distinct_windows);
  double total = 0.0;
  for (uint32_t r = 0; r < distinct_windows; ++r) {
    total += 1.0 / (r + 1);
    cumulative[r] = total;
  }

  std::vector<core::QueryWindow> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const double x = rng.NextDouble() * total;
    uint32_t rank = 0;
    while (rank + 1 < distinct_windows && cumulative[rank] < x) ++rank;
    out.push_back(pool[rank]);
  }
  return out;
}

util::Result<std::vector<core::QueryRequest>> MixedRequestWorkload(
    const QueryGenConfig& config, uint32_t distinct_windows, uint32_t count,
    const PredicateMix& mix, double tau, uint32_t top_k) {
  const uint32_t total_weight =
      mix.exists + mix.forall + mix.k_times + mix.threshold + mix.top_k;
  if (total_weight == 0) {
    return util::Status::InvalidArgument(
        "predicate mix needs at least one non-zero weight");
  }
  USTDB_ASSIGN_OR_RETURN(
      std::vector<core::QueryWindow> windows,
      RepeatingWorkload(config, distinct_windows, count));

  // A separate stream so predicate draws do not perturb window repetition.
  util::Rng rng(config.seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<core::QueryRequest> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    core::QueryRequest request;
    request.window = std::move(windows[i]);
    uint64_t draw = rng.NextBounded(total_weight);
    if (draw < mix.exists) {
      request.predicate = core::PredicateKind::kExists;
    } else if ((draw -= mix.exists) < mix.forall) {
      request.predicate = core::PredicateKind::kForAll;
    } else if ((draw -= mix.forall) < mix.k_times) {
      request.predicate = core::PredicateKind::kKTimes;
    } else if ((draw -= mix.k_times) < mix.threshold) {
      request.predicate = core::PredicateKind::kThresholdExists;
      request.tau = tau;
    } else {
      request.predicate = core::PredicateKind::kTopKExists;
      request.k = top_k;
    }
    out.push_back(std::move(request));
  }
  return out;
}

util::Result<std::vector<std::vector<core::QueryRequest>>> RefreshBatches(
    const QueryGenConfig& config, uint32_t distinct_windows,
    uint32_t batch_size, uint32_t num_batches, const PredicateMix& mix,
    double tau, uint32_t top_k) {
  if (batch_size == 0) {
    return util::Status::InvalidArgument("batch size must be >= 1");
  }
  const uint64_t total =
      static_cast<uint64_t>(batch_size) * static_cast<uint64_t>(num_batches);
  if (total > std::numeric_limits<uint32_t>::max()) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "batch_size %u x num_batches %u overflows the request stream",
        batch_size, num_batches));
  }
  USTDB_ASSIGN_OR_RETURN(
      std::vector<core::QueryRequest> stream,
      MixedRequestWorkload(config, distinct_windows,
                           static_cast<uint32_t>(total), mix, tau, top_k));

  std::vector<std::vector<core::QueryRequest>> batches;
  batches.reserve(num_batches);
  auto it = std::make_move_iterator(stream.begin());
  for (uint32_t b = 0; b < num_batches; ++b) {
    batches.emplace_back(it, it + batch_size);
    it += batch_size;
  }
  return batches;
}

util::Result<ArrivalProcess> ArrivalProcess::Create(
    const ArrivalConfig& config) {
  if (!(config.rate_qps > 0.0)) {
    return util::Status::InvalidArgument("arrival rate must be > 0 qps");
  }
  if (config.kind == ArrivalConfig::Kind::kOnOff &&
      (!(config.on_mean_s > 0.0) || !(config.off_mean_s > 0.0))) {
    return util::Status::InvalidArgument(
        "on/off phase means must be > 0 seconds");
  }
  return ArrivalProcess(config);
}

ArrivalProcess::ArrivalProcess(const ArrivalConfig& config)
    : config_(config), rng_(config.seed) {
  if (config_.kind == ArrivalConfig::Kind::kOnOff) {
    on_remaining_s_ = NextExponential(config_.on_mean_s);
  }
}

double ArrivalProcess::NextExponential(double mean) {
  // 1 - NextDouble() is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - rng_.NextDouble());
}

double ArrivalProcess::NextGap() {
  const double mean_gap = 1.0 / config_.rate_qps;
  if (config_.kind == ArrivalConfig::Kind::kPoisson) {
    return NextExponential(mean_gap);
  }
  // On/off: arrivals are Poisson inside an on phase; a candidate gap that
  // outlives the phase is discarded (memorylessness makes the redraw
  // exact) and the silent phase is added to the elapsed gap.
  double gap = 0.0;
  for (;;) {
    const double candidate = NextExponential(mean_gap);
    if (candidate <= on_remaining_s_) {
      on_remaining_s_ -= candidate;
      return gap + candidate;
    }
    gap += on_remaining_s_ + NextExponential(config_.off_mean_s);
    on_remaining_s_ = NextExponential(config_.on_mean_s);
  }
}

std::vector<double> ArrivalProcess::Times(uint32_t count) {
  std::vector<double> times;
  times.reserve(count);
  double t = 0.0;
  for (uint32_t i = 0; i < count; ++i) {
    t += NextGap();
    times.push_back(t);
  }
  return times;
}

}  // namespace workload
}  // namespace ustdb
