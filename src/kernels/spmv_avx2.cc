// AVX2/FMA kernel variants. This is the only translation unit compiled
// with -mavx2 -mfma (set per-source in CMakeLists.txt, so no VEX code
// leaks into TUs that run before the CPUID check), and it compiles to a
// stub returning no table on non-x86-64 targets.
//
// Shapes were chosen by measurement on server Xeons rather than on paper:
// the hardware vpgatherdd path is *slower* than scalar loads on the
// deployment CPUs, so the gather kernel builds its vectors with scalar
// lane loads, detects contiguous column runs (banded transition matrices
// make entire rows contiguous) to degrade into a pure dense dot product,
// and reads column indices as packed 64-bit pairs to halve index-load
// traffic. The scatter keeps strict per-slot mul+add so it stays
// bit-identical to the baseline kernel.

#include "kernels/kernel_tables.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cstring>

namespace ustdb {
namespace kernels {
namespace {

using sparse::NnzIndex;

// Unpacks a 64-bit load of two adjacent uint32 column indices.
inline void LoadIndexPair(const uint32_t* ci, uint32_t* c0, uint32_t* c1) {
  uint64_t w;
  std::memcpy(&w, ci, sizeof(w));
  *c0 = static_cast<uint32_t>(w);
  *c1 = static_cast<uint32_t>(w >> 32);
}

inline double HorizontalSum(__m256d v) {
  const __m128d lo128 = _mm256_castpd256_pd128(v);
  const __m128d hi128 = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo128, hi128);
  return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
}

void GatherAvx2(const NnzIndex* rp, const uint32_t* ci, const double* va,
                const double* x, uint32_t n, double* out) {
  for (uint32_t c = 0; c < n; ++c) {
    NnzIndex k = rp[c];
    const NnzIndex e = rp[c + 1];
    const NnzIndex len = e - k;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    double tail = 0.0;
    if (len >= 4 && ci[e - 1] - ci[k] == len - 1) {
      // Whole row is one contiguous column run: a dense dot product with
      // no index loads at all. Banded models hit this on ~every row.
      const double* __restrict xp = x + ci[k];
      const double* __restrict vp = va + k;
      NnzIndex i = 0;
      for (; i + 7 < len; i += 8) {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(xp + i),
                               _mm256_loadu_pd(vp + i), acc0);
        acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(xp + i + 4),
                               _mm256_loadu_pd(vp + i + 4), acc1);
      }
      for (; i + 3 < len; i += 4) {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(xp + i),
                               _mm256_loadu_pd(vp + i), acc0);
      }
      for (; i < len; ++i) tail += xp[i] * vp[i];
    } else {
      // Scattered columns: build x-vectors with scalar lane loads
      // (measured faster than vpgatherdd on the target parts), reading
      // indices as 64-bit pairs; 4-entry groups that happen to be
      // contiguous take one vector load instead.
      for (; k + 7 < e; k += 8) {
        uint32_t c0, c1, c2, c3, c4, c5, c6, c7;
        LoadIndexPair(ci + k, &c0, &c1);
        LoadIndexPair(ci + k + 2, &c2, &c3);
        LoadIndexPair(ci + k + 4, &c4, &c5);
        LoadIndexPair(ci + k + 6, &c6, &c7);
        const __m256d xv0 = (c3 - c0 == 3)
                                ? _mm256_loadu_pd(x + c0)
                                : _mm256_setr_pd(x[c0], x[c1], x[c2], x[c3]);
        const __m256d xv1 = (c7 - c4 == 3)
                                ? _mm256_loadu_pd(x + c4)
                                : _mm256_setr_pd(x[c4], x[c5], x[c6], x[c7]);
        acc0 = _mm256_fmadd_pd(xv0, _mm256_loadu_pd(va + k), acc0);
        acc1 = _mm256_fmadd_pd(xv1, _mm256_loadu_pd(va + k + 4), acc1);
      }
      for (; k + 3 < e; k += 4) {
        uint32_t c0, c1, c2, c3;
        LoadIndexPair(ci + k, &c0, &c1);
        LoadIndexPair(ci + k + 2, &c2, &c3);
        const __m256d xv = (c3 - c0 == 3)
                               ? _mm256_loadu_pd(x + c0)
                               : _mm256_setr_pd(x[c0], x[c1], x[c2], x[c3]);
        acc0 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(va + k), acc0);
      }
      for (; k < e; ++k) tail += x[ci[k]] * va[k];
    }
    out[c] = tail + HorizontalSum(_mm256_add_pd(acc0, acc1));
  }
}

inline void ScatterRowImpl(const uint32_t* ci, const double* va,
                           NnzIndex begin, NnzIndex end, double xi,
                           double* __restrict acc) {
  const __m256d xiv = _mm256_set1_pd(xi);
  NnzIndex k = begin;
  for (; k + 3 < end; k += 4) {
    uint32_t c0, c1, c2, c3;
    LoadIndexPair(ci + k, &c0, &c1);
    LoadIndexPair(ci + k + 2, &c2, &c3);
    // mul then add, never FMA: each slot must round exactly like the
    // scalar acc[c] += xi * va[k], so both ISAs stay bit-identical.
    const __m256d prod = _mm256_mul_pd(xiv, _mm256_loadu_pd(va + k));
    if (c3 - c0 == 3) {
      _mm256_storeu_pd(
          acc + c0, _mm256_add_pd(_mm256_loadu_pd(acc + c0), prod));
    } else {
      alignas(32) double tmp[4];
      _mm256_store_pd(tmp, prod);
      acc[c0] += tmp[0];
      acc[c1] += tmp[1];
      acc[c2] += tmp[2];
      acc[c3] += tmp[3];
    }
  }
  for (; k < end; ++k) acc[ci[k]] += xi * va[k];
}

void ScatterRowAvx2(const uint32_t* ci, const double* va, NnzIndex begin,
                    NnzIndex end, double xi, double* acc) {
  ScatterRowImpl(ci, va, begin, end, xi, acc);
}

void ScatterDenseAvx2(const NnzIndex* rp, const uint32_t* ci,
                      const double* va, const double* x, uint32_t rows,
                      double* acc) {
  for (uint32_t i = 0; i < rows; ++i) {
    const double xi = x[i];
    if (xi != 0.0) ScatterRowImpl(ci, va, rp[i], rp[i + 1], xi, acc);
  }
}

uint32_t FilterPositiveAvx2(double* v, uint32_t n, double eps) {
  const __m256d epsv = _mm256_set1_pd(eps);
  uint32_t kept = 0;
  uint32_t c = 0;
  for (; c + 3 < n; c += 4) {
    const __m256d vals = _mm256_loadu_pd(v + c);
    // keep-mask lanes are all-ones where vals > eps; AND-ing zeroes the
    // losers without a branch (values are exact sums of non-negative
    // products, so there are no NaNs and no negative zeros to preserve).
    const __m256d keep = _mm256_cmp_pd(vals, epsv, _CMP_GT_OQ);
    _mm256_storeu_pd(v + c, _mm256_and_pd(vals, keep));
    kept += static_cast<uint32_t>(
        __builtin_popcount(_mm256_movemask_pd(keep)));
  }
  for (; c < n; ++c) {  // masked-equivalent scalar tail (< 4 lanes)
    if (v[c] > eps) {
      ++kept;
    } else {
      v[c] = 0.0;
    }
  }
  return kept;
}

uint32_t EnvelopeRowSweepAvx2(const double* env2, const uint32_t* ci,
                              NnzIndex begin, NnzIndex end, const double* f2,
                              double* vals2, double* slack, double* base2,
                              double* lo_sum) {
  // One envelope entry per iteration, both lanes of its {flo, fhi} pair
  // in a single 128-bit op. Entries MUST accumulate sequentially with
  // mul+add: each xmm lane then performs exactly the baseline's scalar
  // sequence, keeping the bounds bit-identical across dispatch modes —
  // and, for slack-free rows, bit-identical to the exact engines' row
  // recursion, which τ values pinned to exact probabilities rely on. A
  // wider two-entry lane layout reorders the sums and is unsound there.
  __m128d acc = _mm_setzero_pd();
  __m128d nonzero = _mm_setzero_pd();
  const __m128d zero = _mm_setzero_pd();
  double sum_lo = 0.0;
  NnzIndex j = 0;
  for (NnzIndex k = begin; k < end; ++k, ++j) {
    const uint32_t c = ci[k];
    const double lo = env2[2 * k];
    const __m128d lov = _mm_set1_pd(lo);
    const __m128d fv = _mm_loadu_pd(f2 + 2 * c);  // {flo, fhi}
    acc = _mm_add_pd(acc, _mm_mul_pd(lov, fv));
    sum_lo += lo;
    nonzero = _mm_or_pd(nonzero, _mm_cmpneq_pd(fv, zero));
    _mm_storeu_pd(vals2 + 2 * j, fv);
    slack[j] = env2[2 * k + 1] - lo;
  }
  _mm_storeu_pd(base2, acc);
  *lo_sum = sum_lo;
  // movemask bit 0 is the flo lane, bit 1 the fhi lane — the return
  // encoding (bit 0 = any_lo, bit 1 = any_hi) verbatim.
  return static_cast<uint32_t>(_mm_movemask_pd(nonzero)) & 3u;
}

const KernelTable kAvx2Table = {
    Isa::kAvx2,     GatherAvx2,         ScatterDenseAvx2,
    ScatterRowAvx2, FilterPositiveAvx2, EnvelopeRowSweepAvx2,
};

}  // namespace

namespace internal {

const KernelTable* Avx2Table() { return &kAvx2Table; }

}  // namespace internal
}  // namespace kernels
}  // namespace ustdb

#else  // !x86-64

namespace ustdb {
namespace kernels {
namespace internal {

const KernelTable* Avx2Table() { return nullptr; }

}  // namespace internal
}  // namespace kernels
}  // namespace ustdb

#endif  // x86-64
