// Copyright 2026 the ustdb authors.
//
// Internal linkage point between the ISA dispatcher (isa.cc) and the
// per-ISA kernel translation units. Not part of the public API.

#ifndef USTDB_KERNELS_KERNEL_TABLES_H_
#define USTDB_KERNELS_KERNEL_TABLES_H_

#include "kernels/isa.h"

namespace ustdb {
namespace kernels {
namespace internal {

/// Scalar table; available on every build.
const KernelTable* BaselineTable();

/// AVX2/FMA table, or nullptr when this build targets a non-x86-64
/// architecture. Callers must additionally CPUID-check before executing
/// the returned kernels (see IsaSupported).
const KernelTable* Avx2Table();

}  // namespace internal
}  // namespace kernels
}  // namespace ustdb

#endif  // USTDB_KERNELS_KERNEL_TABLES_H_
