// Scalar baseline kernels — the portable implementations every build
// carries and every other ISA variant is parity-tested against. The
// gather and scatter bodies are the PR 4 loops of VecMatWorkspace moved
// behind the dispatch table verbatim; the envelope sweep uses the same
// canonical even/odd two-lane accumulation as the AVX2 variant so bound
// values are bit-identical across ISAs (see kernels/isa.h).

#include "kernels/kernel_tables.h"

namespace ustdb {
namespace kernels {
namespace {

using sparse::NnzIndex;

void GatherBaseline(const NnzIndex* rp, const uint32_t* ci, const double* va,
                    const double* x, uint32_t n, double* out) {
  const double* __restrict xr = x;
  for (uint32_t c = 0; c < n; ++c) {
    const NnzIndex e = rp[c + 1];
    NnzIndex k = rp[c];
    // Four interleaved accumulators hide the add latency of the
    // reduction chain; the final regrouping is why the gather's parity
    // contract is 1e-12 rather than bit-equality.
    double acc0 = 0.0;
    double acc1 = 0.0;
    double acc2 = 0.0;
    double acc3 = 0.0;
    for (; k + 3 < e; k += 4) {
      acc0 += xr[ci[k]] * va[k];
      acc1 += xr[ci[k + 1]] * va[k + 1];
      acc2 += xr[ci[k + 2]] * va[k + 2];
      acc3 += xr[ci[k + 3]] * va[k + 3];
    }
    for (; k < e; ++k) acc0 += xr[ci[k]] * va[k];
    out[c] = (acc0 + acc1) + (acc2 + acc3);
  }
}

void ScatterRowBaseline(const uint32_t* ci, const double* va, NnzIndex begin,
                        NnzIndex end, double xi, double* acc) {
  double* __restrict a = acc;
  for (NnzIndex k = begin; k < end; ++k) a[ci[k]] += xi * va[k];
}

void ScatterDenseBaseline(const NnzIndex* rp, const uint32_t* ci,
                          const double* va, const double* x, uint32_t rows,
                          double* acc) {
  for (uint32_t i = 0; i < rows; ++i) {
    const double xi = x[i];
    if (xi != 0.0) ScatterRowBaseline(ci, va, rp[i], rp[i + 1], xi, acc);
  }
}

uint32_t FilterPositiveBaseline(double* v, uint32_t n, double eps) {
  uint32_t kept = 0;
  for (uint32_t c = 0; c < n; ++c) {
    if (v[c] > eps) {
      ++kept;
    } else {
      v[c] = 0.0;
    }
  }
  return kept;
}

uint32_t EnvelopeRowSweepBaseline(const double* env2, const uint32_t* ci,
                                  NnzIndex begin, NnzIndex end,
                                  const double* f2, double* vals2,
                                  double* slack, double* base2,
                                  double* lo_sum) {
  // Strictly sequential per-entry mul+add in each lane. This order is
  // load-bearing twice over: the AVX2 variant keeps both lanes in one
  // 128-bit register with the same sequence (so bounds are bit-identical
  // across dispatch modes), and for a slack-free envelope (singleton
  // cluster) the base sum IS the exact engines' row recursion — a
  // reordered sum could land one ulp below an object's true probability
  // and unsoundly drop it at a τ pinned to that exact value.
  double base_lo = 0.0;
  double base_hi = 0.0;
  double sum_lo = 0.0;
  bool any_lo = false;
  bool any_hi = false;
  NnzIndex j = 0;
  for (NnzIndex k = begin; k < end; ++k, ++j) {
    const uint32_t c = ci[k];
    const double lo = env2[2 * k];
    const double hi = env2[2 * k + 1];
    const double flo = f2[2 * c];
    const double fhi = f2[2 * c + 1];
    any_lo |= flo != 0.0;
    any_hi |= fhi != 0.0;
    base_lo += lo * flo;
    base_hi += lo * fhi;
    sum_lo += lo;
    vals2[2 * j] = flo;
    vals2[2 * j + 1] = fhi;
    slack[j] = hi - lo;
  }
  base2[0] = base_lo;
  base2[1] = base_hi;
  *lo_sum = sum_lo;
  return (any_lo ? 1u : 0u) | (any_hi ? 2u : 0u);
}

const KernelTable kBaselineTable = {
    Isa::kBaseline,       GatherBaseline,         ScatterDenseBaseline,
    ScatterRowBaseline,   FilterPositiveBaseline, EnvelopeRowSweepBaseline,
};

}  // namespace

namespace internal {

const KernelTable* BaselineTable() { return &kBaselineTable; }

}  // namespace internal
}  // namespace kernels
}  // namespace ustdb
