// Copyright 2026 the ustdb authors.
//
// kernels::Isa — runtime-dispatched CPU kernels for the hot SpMV sweeps.
//
// The library ships one scalar baseline implementation of each kernel plus
// an AVX2/FMA variant compiled in its own translation unit with -mavx2
// -mfma (no global -march leakage: only the variant TU may emit VEX
// instructions, and it is only entered after a CPUID check). The active
// table is chosen once at startup — the best ISA the CPU supports, or the
// one forced through the USTDB_KERNEL_ISA environment variable — and can
// be flipped at runtime by tests and benches that compare ISAs in one
// process.
//
// Numeric contracts, per kernel (see docs/PERFORMANCE.md):
//   * scatter kernels are bit-identical across ISAs (mul+add, per-slot
//     order preserved),
//   * the gather kernel may regroup its reduction (FMA allowed); parity
//     vs the scalar path is 1e-12, like the scalar gather's own contract,
//   * the envelope sweep uses a canonical even/odd two-lane accumulation
//     with mul+add in *both* ISAs, so interval bounds — which feed prune
//     decisions — are bit-identical regardless of dispatch.

#ifndef USTDB_KERNELS_ISA_H_
#define USTDB_KERNELS_ISA_H_

#include <cstdint>

#include "sparse/types.h"

namespace ustdb {
namespace kernels {

/// Instruction-set variants a kernel table can be compiled for.
enum class Isa : uint8_t {
  kBaseline = 0,  ///< portable scalar kernels (every CPU)
  kAvx2 = 1,      ///< AVX2 + FMA variants (x86-64 with both CPUID bits)
};

/// Stable lowercase name ("baseline", "avx2") for logs, benches, and the
/// USTDB_KERNEL_ISA environment knob.
const char* IsaName(Isa isa);

/// \brief One resolved set of kernel entry points. All pointers are
/// non-null in every registered table.
///
/// Buffer contracts: `x`, `acc`, `out`, and `f2` point at dense arrays
/// allocated through util::AlignedVector (64-byte-aligned heads); column
/// indices are in-range for the arrays they index; CSR columns are
/// strictly ascending within a row.
struct KernelTable {
  /// ISA this table was compiled for.
  Isa isa;

  /// \brief Sequential gather: for each output column c in [0, n),
  /// out[c] = Σ_k x[ci[k]] · va[k] over the CSR row c of the *transposed*
  /// matrix given by (rp, ci, va). Rows whose columns form one contiguous
  /// run degrade to a pure dense dot product (the banded-model fast
  /// path). Reduction order may regroup; parity contract is 1e-12.
  void (*gather)(const sparse::NnzIndex* rp, const uint32_t* ci,
                 const double* va, const double* x, uint32_t n, double* out);

  /// \brief Dense-regime scatter over all rows: for each row i with
  /// x[i] != 0, acc[ci[k]] += x[i] · va[k] for the row's entries.
  /// Bit-identical across ISAs (mul+add, ascending per-slot order).
  void (*scatter_dense)(const sparse::NnzIndex* rp, const uint32_t* ci,
                        const double* va, const double* x, uint32_t rows,
                        double* acc);

  /// \brief Scatter of one row: acc[ci[k]] += xi · va[k] for
  /// k in [begin, end). Bit-identical across ISAs.
  void (*scatter_row)(const uint32_t* ci, const double* va,
                      sparse::NnzIndex begin, sparse::NnzIndex end, double xi,
                      double* acc);

  /// \brief Positive-threshold filter: zeroes every v[c] not strictly
  /// above eps and returns the number of surviving entries. Values are
  /// only compared and zeroed, never recomputed, so the pass is exact.
  uint32_t (*filter_positive)(double* v, uint32_t n, double eps);

  /// \brief Paired interval-envelope row sweep for BoundExists. `env2`
  /// holds interleaved {lo, hi} pairs (entry k at env2[2k]) and `f2`
  /// interleaved {flo, fhi} working values (state c at f2[2c]). For row
  /// entries k in [begin, end) with column c = ci[k], computes
  ///   base2[0] = Σ lo_k · flo_c,  base2[1] = Σ lo_k · fhi_c,
  ///   *lo_sum  = Σ lo_k,
  /// copies vals2[2j] = {flo_c, fhi_c} and slack[j] = hi_k − lo_k for the
  /// caller's greedy pass (j = k − begin), and returns bit 0 set when any
  /// flo_c was non-zero and bit 1 when any fhi_c was. Every implementation
  /// accumulates strictly sequentially over k with mul+add (no FMA, no
  /// reordering): results are bit-identical regardless of dispatch, and on
  /// slack-free rows the base sums reproduce the exact engines' row
  /// recursion bit for bit — thresholds pinned to exact probabilities
  /// depend on that.
  uint32_t (*envelope_row_sweep)(const double* env2, const uint32_t* ci,
                                 sparse::NnzIndex begin, sparse::NnzIndex end,
                                 const double* f2, double* vals2,
                                 double* slack, double* base2,
                                 double* lo_sum);
};

/// Active kernel table (one relaxed atomic load; safe to call
/// concurrently with SetActiveIsa, which tests use between runs).
const KernelTable& Active();

/// ISA of the active table.
Isa ActiveIsa();

/// Best ISA this CPU supports (what the startup default resolves to when
/// USTDB_KERNEL_ISA is unset).
Isa BestSupportedIsa();

/// True when this build and CPU can run `isa`.
bool IsaSupported(Isa isa);

/// \brief Switches the active table; returns false (leaving the table
/// unchanged) when the ISA is not supported on this CPU or build. Used by
/// tests and benches; engines never call this.
bool SetActiveIsa(Isa isa);

}  // namespace kernels
}  // namespace ustdb

#endif  // USTDB_KERNELS_ISA_H_
