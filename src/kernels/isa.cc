#include "kernels/isa.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "kernels/kernel_tables.h"

namespace ustdb {
namespace kernels {
namespace {

bool CpuHasAvx2Fma() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const KernelTable* TableFor(Isa isa) {
  switch (isa) {
    case Isa::kBaseline:
      return internal::BaselineTable();
    case Isa::kAvx2:
      return internal::Avx2Table();
  }
  return nullptr;
}

/// Resolves the startup table: USTDB_KERNEL_ISA when set and usable,
/// otherwise the best ISA the CPU supports. An unusable or unknown value
/// warns once on stderr and falls back — a forced-AVX2 run on a machine
/// without AVX2 must degrade, not crash.
const KernelTable* ResolveStartupTable() {
  const char* forced = std::getenv("USTDB_KERNEL_ISA");
  if (forced != nullptr && forced[0] != '\0') {
    if (std::strcmp(forced, "baseline") == 0) {
      return internal::BaselineTable();
    }
    if (std::strcmp(forced, "avx2") == 0) {
      if (IsaSupported(Isa::kAvx2)) return internal::Avx2Table();
      std::fprintf(stderr,
                   "ustdb: USTDB_KERNEL_ISA=avx2 but this CPU/build lacks "
                   "AVX2+FMA; using baseline kernels\n");
      return internal::BaselineTable();
    }
    std::fprintf(stderr,
                 "ustdb: unknown USTDB_KERNEL_ISA value \"%s\" "
                 "(expected \"baseline\" or \"avx2\"); auto-selecting\n",
                 forced);
  }
  return TableFor(BestSupportedIsa());
}

std::atomic<const KernelTable*>& ActiveSlot() {
  static std::atomic<const KernelTable*> slot{ResolveStartupTable()};
  return slot;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kBaseline:
      return "baseline";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

const KernelTable& Active() {
  return *ActiveSlot().load(std::memory_order_relaxed);
}

Isa ActiveIsa() { return Active().isa; }

Isa BestSupportedIsa() {
  return IsaSupported(Isa::kAvx2) ? Isa::kAvx2 : Isa::kBaseline;
}

bool IsaSupported(Isa isa) {
  switch (isa) {
    case Isa::kBaseline:
      return true;
    case Isa::kAvx2:
      return internal::Avx2Table() != nullptr && CpuHasAvx2Fma();
  }
  return false;
}

bool SetActiveIsa(Isa isa) {
  if (!IsaSupported(isa)) return false;
  ActiveSlot().store(TableFor(isa), std::memory_order_relaxed);
  return true;
}

}  // namespace kernels
}  // namespace ustdb
