// Copyright 2026 the ustdb authors.
//
// MarkovChain — a validated homogeneous first-order Markov chain over the
// discrete state space S (Definitions 5-6 of the paper), plus distribution
// propagation (Corollaries 1-2) and reachability analysis used for pruning.

#ifndef USTDB_MARKOV_MARKOV_CHAIN_H_
#define USTDB_MARKOV_MARKOV_CHAIN_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "sparse/csr_matrix.h"
#include "sparse/index_set.h"
#include "sparse/prob_vector.h"
#include "sparse/types.h"
#include "util/result.h"

namespace ustdb {
namespace markov {

/// \brief Homogeneous first-order Markov chain: P(o(t+1)=s_j | o(t)=s_i) =
/// M[i][j] for all t (Definition 6).
///
/// Construction validates stochasticity (every row sums to one, entries
/// non-negative); downstream query engines may therefore assume a valid
/// chain and run Status-free.
class MarkovChain {
 public:
  /// \brief Wraps a square stochastic matrix. Fails if `m` is not
  /// row-stochastic within sparse::kStochasticTolerance.
  static util::Result<MarkovChain> FromMatrix(sparse::CsrMatrix m);

  /// Convenience: build and validate from triplets.
  static util::Result<MarkovChain> FromTriplets(
      uint32_t num_states, std::vector<sparse::Triplet> triplets);

  /// Convenience: build from a dense row-major matrix (tests, examples).
  static util::Result<MarkovChain> FromDense(
      const std::vector<std::vector<double>>& rows);

  MarkovChain() = default;

  /// Copyable (the lazily built transpose cache is dropped, not copied;
  /// it rebuilds on demand) and movable (the cache moves along — growing
  /// a Database must not silently re-pay every chain's transposition).
  /// Copies/moves themselves are not thread-safe — only transposed()
  /// below is.
  MarkovChain(const MarkovChain& other) : matrix_(other.matrix_) {}
  MarkovChain& operator=(const MarkovChain& other) {
    matrix_ = other.matrix_;
    transposed_.reset();
    transposed_pub_.store(nullptr, std::memory_order_relaxed);
    return *this;
  }
  MarkovChain(MarkovChain&& other) noexcept
      : matrix_(std::move(other.matrix_)),
        transposed_(std::move(other.transposed_)) {
    transposed_pub_.store(transposed_.get(), std::memory_order_release);
    other.transposed_pub_.store(nullptr, std::memory_order_relaxed);
  }
  MarkovChain& operator=(MarkovChain&& other) noexcept {
    if (this != &other) {
      matrix_ = std::move(other.matrix_);
      transposed_ = std::move(other.transposed_);
      transposed_pub_.store(transposed_.get(), std::memory_order_release);
      other.transposed_pub_.store(nullptr, std::memory_order_relaxed);
    }
    return *this;
  }

  /// |S| — the number of states.
  uint32_t num_states() const { return matrix_.rows(); }

  /// The single-step transition matrix M.
  const sparse::CsrMatrix& matrix() const { return matrix_; }

  /// \brief M transposed, built lazily and cached. The query-based engine
  /// (Section V-B) walks backward in time with (M±)ᵀ, and the dense-regime
  /// gather kernel reads Mᵀ on the forward paths too; sharing one
  /// transpose per chain is what makes both cheap across queries.
  /// Thread-safe, including the first (building) call: concurrent callers
  /// serialize on an internal mutex and later calls are a single acquire
  /// atomic load (paired with the builder's release store — do not
  /// weaken it).
  const sparse::CsrMatrix& transposed() const;

  /// \brief One state transition: dist ← dist · M (Corollary 1).
  /// \param ws reusable multiply workspace (one per thread).
  void Propagate(sparse::ProbVector* dist, sparse::VecMatWorkspace* ws) const;

  /// \brief Distribution after `steps` transitions from `initial`
  /// (Corollary 2: P(o, t+m) = P(o, t) · M^m, evaluated iteratively).
  sparse::ProbVector Distribution(const sparse::ProbVector& initial,
                                  uint32_t steps) const;

  /// \brief The m-step transition matrix M^m (Chapman–Kolmogorov). Intended
  /// for tests and small models; cost grows with fill-in.
  util::Result<sparse::CsrMatrix> MStepMatrix(uint32_t m) const;

  /// \brief States reachable from `from` within at most `steps` transitions
  /// (including the start states). Drives the |S_reach| pruning discussed in
  /// Section V-C's complexity analysis.
  sparse::IndexSet ReachableWithin(const sparse::IndexSet& from,
                                   uint32_t steps) const;

  /// Approximate heap footprint in bytes (transpose counted if built).
  size_t MemoryBytes() const;

 private:
  explicit MarkovChain(sparse::CsrMatrix m) : matrix_(std::move(m)) {}

  sparse::CsrMatrix matrix_;
  // Lazy transpose cache: transposed_ owns the matrix, transposed_pub_
  // publishes it (acquire/release) once fully built, transpose_mu_
  // serializes the one-time build.
  mutable std::unique_ptr<sparse::CsrMatrix> transposed_;
  mutable std::atomic<const sparse::CsrMatrix*> transposed_pub_{nullptr};
  mutable std::mutex transpose_mu_;
};

}  // namespace markov
}  // namespace ustdb

#endif  // USTDB_MARKOV_MARKOV_CHAIN_H_
