#include "markov/stationary.h"

#include <cmath>

#include "util/string_util.h"

namespace ustdb {
namespace markov {

namespace {

double L1Distance(const sparse::ProbVector& a, const sparse::ProbVector& b) {
  // Both vectors share a dimension; iterate the union of supports via the
  // dense getter on the sparser side.
  double total = 0.0;
  for (uint32_t i = 0; i < a.size(); ++i) {
    total += std::abs(a.Get(i) - b.Get(i));
  }
  return total;
}

}  // namespace

util::Result<sparse::ProbVector> StationaryDistribution(
    const MarkovChain& chain, const StationaryOptions& options) {
  if (options.damping <= 0.0 || options.damping > 1.0) {
    return util::Status::InvalidArgument("damping must be in (0, 1]");
  }
  if (options.tolerance <= 0.0) {
    return util::Status::InvalidArgument("tolerance must be positive");
  }
  const uint32_t n = chain.num_states();
  sparse::ProbVector pi =
      sparse::ProbVector::UniformOver(sparse::IndexSet::All(n)).ValueOrDie();
  sparse::ProbVector next;
  sparse::VecMatWorkspace ws;

  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    ws.Multiply(pi, chain.matrix(), &next);
    if (options.damping < 1.0) {
      // next <- (1-d)*pi + d*next.
      next.Scale(options.damping);
      std::vector<std::pair<uint32_t, double>> lazy;
      pi.ForEachNonZero([&](uint32_t i, double x) {
        lazy.emplace_back(i, (1.0 - options.damping) * x);
      });
      next.AddEntries(lazy);
    }
    const double dist = L1Distance(pi, next);
    pi = std::move(next);
    if (dist < options.tolerance) {
      // Renormalize residual drift before returning.
      USTDB_RETURN_NOT_OK(pi.Normalize());
      return pi;
    }
  }
  return util::Status::FailedPrecondition(util::StringPrintf(
      "power iteration did not converge within %u iterations (periodic or "
      "slowly mixing chain; try damping < 1)",
      options.max_iterations));
}

double StationarityResidual(const MarkovChain& chain,
                            const sparse::ProbVector& pi) {
  sparse::ProbVector stepped;
  sparse::VecMatWorkspace ws;
  ws.Multiply(pi, chain.matrix(), &stepped);
  return L1Distance(pi, stepped);
}

}  // namespace markov
}  // namespace ustdb
