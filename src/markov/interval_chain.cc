#include "markov/interval_chain.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "util/string_util.h"

namespace ustdb {
namespace markov {

util::Result<IntervalMarkovChain> IntervalMarkovChain::FromChains(
    const std::vector<const MarkovChain*>& members) {
  if (members.empty()) {
    return util::Status::InvalidArgument(
        "interval chain needs at least one member chain");
  }
  const uint32_t n = members[0]->num_states();
  for (const MarkovChain* c : members) {
    if (c->num_states() != n) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "member chain has %u states, expected %u", c->num_states(), n));
    }
  }

  IntervalMarkovChain out;
  out.num_states_ = n;
  out.row_ptr_.assign(n + 1, 0);

  // Per-row envelope: union support; lo = min over members (0 if absent
  // from any member), hi = max over members.
  std::map<uint32_t, ProbBound> row_env;
  for (uint32_t r = 0; r < n; ++r) {
    row_env.clear();
    for (const MarkovChain* c : members) {
      auto idx = c->matrix().RowIndices(r);
      auto val = c->matrix().RowValues(r);
      for (size_t k = 0; k < idx.size(); ++k) {
        auto [it, inserted] = row_env.try_emplace(
            idx[k], ProbBound{val[k], val[k]});
        if (!inserted) {
          it->second.lo = std::min(it->second.lo, val[k]);
          it->second.hi = std::max(it->second.hi, val[k]);
        }
      }
    }
    // Any entry not present in *all* members has lo = 0.
    for (auto& [col, bound] : row_env) {
      size_t present = 0;
      for (const MarkovChain* c : members) {
        if (c->matrix().Get(r, col) > 0.0) ++present;
      }
      if (present < members.size()) bound.lo = 0.0;
      out.col_idx_.push_back(col);
      out.lo_.push_back(bound.lo);
      out.hi_.push_back(bound.hi);
    }
    out.row_ptr_[r + 1] = static_cast<sparse::NnzIndex>(out.col_idx_.size());
  }
  return out;
}

ProbBound IntervalMarkovChain::Bound(uint32_t i, uint32_t j) const {
  assert(i < num_states_ && j < num_states_);
  const auto begin = col_idx_.begin() + static_cast<ptrdiff_t>(row_ptr_[i]);
  const auto end = col_idx_.begin() + static_cast<ptrdiff_t>(row_ptr_[i + 1]);
  auto it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return {0.0, 0.0};
  const size_t k = static_cast<size_t>(it - col_idx_.begin());
  return {lo_[k], hi_[k]};
}

double IntervalMarkovChain::ExtremalRowValue(uint32_t row,
                                             const std::vector<double>& v,
                                             bool want_max) const {
  const sparse::NnzIndex begin = row_ptr_[row];
  const sparse::NnzIndex end = row_ptr_[row + 1];
  const size_t m = static_cast<size_t>(end - begin);
  if (m == 0) return 0.0;

  // Greedy: start every entry at lo, then spend the residual budget
  // (1 - Σ lo) on the most favourable v-values first, capped at hi - lo.
  double base = 0.0;
  double budget = 1.0;
  // (value, slack) pairs sorted by v; ascending for min, descending for max.
  std::vector<std::pair<double, double>> order;
  order.reserve(m);
  for (sparse::NnzIndex k = begin; k < end; ++k) {
    const uint32_t c = col_idx_[k];
    base += lo_[k] * v[c];
    budget -= lo_[k];
    order.emplace_back(v[c], hi_[k] - lo_[k]);
  }
  std::sort(order.begin(), order.end(),
            [want_max](const auto& a, const auto& b) {
              return want_max ? a.first > b.first : a.first < b.first;
            });
  double extra = 0.0;
  for (const auto& [value, slack] : order) {
    if (budget <= 0.0) break;
    const double take = std::min(slack, budget);
    extra += take * value;
    budget -= take;
  }
  return base + extra;
}

std::vector<ProbBound> IntervalMarkovChain::BoundExists(
    const sparse::IndexSet& region, Timestamp t_lo, Timestamp t_hi) const {
  assert(region.domain_size() == num_states_);
  assert(t_lo <= t_hi);

  // f(t)[s] = P(trajectory from s at time t hits region during
  // [max(t, t_lo), t_hi]); propagated backward from t_hi to 0.
  std::vector<double> flo(num_states_, 0.0);
  std::vector<double> fhi(num_states_, 0.0);
  for (uint32_t s : region) {
    flo[s] = 1.0;
    fhi[s] = 1.0;
  }

  std::vector<double> next_lo(num_states_);
  std::vector<double> next_hi(num_states_);
  for (Timestamp t = t_hi; t > 0; --t) {
    // Step backward from t to t-1.
    for (uint32_t s = 0; s < num_states_; ++s) {
      next_lo[s] = ExtremalRowValue(s, flo, /*want_max=*/false);
      next_hi[s] = ExtremalRowValue(s, fhi, /*want_max=*/true);
    }
    const Timestamp t_prev = t - 1;
    if (t_prev >= t_lo) {
      // Being inside the region at t_prev is itself a hit.
      for (uint32_t s : region) {
        next_lo[s] = 1.0;
        next_hi[s] = 1.0;
      }
    }
    flo.swap(next_lo);
    fhi.swap(next_hi);
  }
  if (t_lo > 0) {
    // Start time 0 is outside the window; nothing more to fold in.
  }
  std::vector<ProbBound> out(num_states_);
  for (uint32_t s = 0; s < num_states_; ++s) {
    out[s] = {std::clamp(flo[s], 0.0, 1.0), std::clamp(fhi[s], 0.0, 1.0)};
  }
  return out;
}

}  // namespace markov
}  // namespace ustdb
