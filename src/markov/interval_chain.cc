#include "markov/interval_chain.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

#include "kernels/isa.h"
#include "util/string_util.h"

namespace ustdb {
namespace markov {
namespace {

/// \brief Greedy finish of one extremal-row LP: spends the residual
/// budget (1 − Σ lo) on the most favourable working values first, capped
/// at each entry's slack (hi − lo); returns the extra value on top of the
/// base Σ lo·v. `vals2` is the sweep kernel's interleaved per-entry
/// working values — `lane` 0 reads the lower vector, 1 the upper — and
/// `slack` its hi − lo array, both of length `m`.
double GreedySpend(const double* vals2, int lane, const double* slack,
                   size_t m, bool want_max, double budget,
                   std::vector<std::pair<double, double>>* scratch) {
  auto& order = *scratch;
  order.clear();
  for (size_t j = 0; j < m; ++j) {
    order.emplace_back(vals2[2 * j + lane], slack[j]);
  }
  // (value, slack) pairs sorted by v — ascending for min, descending for
  // max. Rows are small (a few entries), so an insertion sort into the
  // reused scratch buffer beats std::sort with its allocation-heavy
  // call pattern in this innermost loop.
  for (size_t i = 1; i < m; ++i) {
    const std::pair<double, double> key = order[i];
    size_t j = i;
    while (j > 0 && (want_max ? order[j - 1].first < key.first
                              : order[j - 1].first > key.first)) {
      order[j] = order[j - 1];
      --j;
    }
    order[j] = key;
  }
  double extra = 0.0;
  for (const auto& [value, entry_slack] : order) {
    if (budget <= 0.0) break;
    const double take = std::min(entry_slack, budget);
    extra += take * value;
    budget -= take;
  }
  return extra;
}

}  // namespace

util::Result<IntervalMarkovChain> IntervalMarkovChain::FromChains(
    const std::vector<const MarkovChain*>& members) {
  if (members.empty()) {
    return util::Status::InvalidArgument(
        "interval chain needs at least one member chain");
  }
  const uint32_t n = members[0]->num_states();
  for (const MarkovChain* c : members) {
    if (c->num_states() != n) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "member chain has %u states, expected %u", c->num_states(), n));
    }
  }

  IntervalMarkovChain out;
  out.num_states_ = n;

  // The envelope is folded in one pairwise CSR merge per member, so every
  // member matrix is streamed sequentially exactly once (interleaving all
  // members row by row thrashes the cache once clusters grow to dozens of
  // members). Each accumulator entry tracks how many members carry it: lo
  // survives as the min over members only when every member has the entry
  // — an entry absent from any member counts as zero there, so its lower
  // bound must be 0 regardless of which member (first or later) lacks it.
  // Counting presence across the merges enforces that contract
  // structurally instead of relying on a repair pass.
  struct Accumulator {
    std::vector<sparse::NnzIndex> row_ptr;
    std::vector<uint32_t> col;
    std::vector<double> lo;
    std::vector<double> hi;
    std::vector<uint32_t> present;
  };
  Accumulator acc;
  Accumulator next;
  acc.row_ptr.assign(n + 1, 0);
  {
    const sparse::CsrMatrix& first = members[0]->matrix();
    for (uint32_t r = 0; r < n; ++r) {
      auto idx = first.RowIndices(r);
      auto val = first.RowValues(r);
      acc.col.insert(acc.col.end(), idx.begin(), idx.end());
      acc.lo.insert(acc.lo.end(), val.begin(), val.end());
      acc.hi.insert(acc.hi.end(), val.begin(), val.end());
      acc.row_ptr[r + 1] = static_cast<sparse::NnzIndex>(acc.col.size());
    }
    acc.present.assign(acc.col.size(), 1);
  }
  for (size_t m = 1; m < members.size(); ++m) {
    const sparse::CsrMatrix& matrix = members[m]->matrix();
    // Fast path — member support identical to the accumulator's. Chains
    // land in one cluster because they are close variants of one model,
    // which in practice means jittered weights on a shared support, so
    // this avoids the structural merge for the overwhelmingly common
    // case: one sequential min/max fold over the values.
    bool same_support =
        static_cast<size_t>(matrix.nnz()) == acc.col.size();
    for (uint32_t r = 0; same_support && r < n; ++r) {
      auto idx = matrix.RowIndices(r);
      const sparse::NnzIndex a = acc.row_ptr[r];
      same_support =
          static_cast<sparse::NnzIndex>(idx.size()) ==
              acc.row_ptr[r + 1] - a &&
          std::equal(idx.begin(), idx.end(), acc.col.begin() + a);
    }
    if (same_support) {
      size_t k = 0;
      for (uint32_t r = 0; r < n; ++r) {
        for (const double v : matrix.RowValues(r)) {
          acc.lo[k] = std::min(acc.lo[k], v);
          acc.hi[k] = std::max(acc.hi[k], v);
          ++acc.present[k];
          ++k;
        }
      }
      continue;
    }
    // Preallocate for the worst-case union and write through raw indices:
    // this loop runs members × nnz times and per-entry push_back
    // bookkeeping would dominate it.
    const size_t cap = acc.col.size() + static_cast<size_t>(matrix.nnz());
    next.row_ptr.assign(n + 1, 0);
    next.col.resize(cap);
    next.lo.resize(cap);
    next.hi.resize(cap);
    next.present.resize(cap);
    size_t w = 0;
    for (uint32_t r = 0; r < n; ++r) {
      sparse::NnzIndex a = acc.row_ptr[r];
      const sparse::NnzIndex a_end = acc.row_ptr[r + 1];
      auto idx = matrix.RowIndices(r);
      auto val = matrix.RowValues(r);
      size_t b = 0;
      // Two-pointer union over ascending columns.
      while (a < a_end && b < idx.size()) {
        if (acc.col[a] < idx[b]) {
          next.col[w] = acc.col[a];
          next.lo[w] = acc.lo[a];
          next.hi[w] = acc.hi[a];
          next.present[w] = acc.present[a];
          ++a;
        } else if (idx[b] < acc.col[a]) {
          next.col[w] = idx[b];
          next.lo[w] = val[b];
          next.hi[w] = val[b];
          next.present[w] = 1;
          ++b;
        } else {
          next.col[w] = acc.col[a];
          next.lo[w] = std::min(acc.lo[a], val[b]);
          next.hi[w] = std::max(acc.hi[a], val[b]);
          next.present[w] = acc.present[a] + 1;
          ++a;
          ++b;
        }
        ++w;
      }
      for (; a < a_end; ++a, ++w) {
        next.col[w] = acc.col[a];
        next.lo[w] = acc.lo[a];
        next.hi[w] = acc.hi[a];
        next.present[w] = acc.present[a];
      }
      for (; b < idx.size(); ++b, ++w) {
        next.col[w] = idx[b];
        next.lo[w] = val[b];
        next.hi[w] = val[b];
        next.present[w] = 1;
      }
      next.row_ptr[r + 1] = static_cast<sparse::NnzIndex>(w);
    }
    next.col.resize(w);
    next.lo.resize(w);
    next.hi.resize(w);
    next.present.resize(w);
    std::swap(acc, next);
  }

  out.row_ptr_ = std::move(acc.row_ptr);
  // Interleave the merged lo/hi arrays into the {lo, hi}-pair layout the
  // dispatched bound sweep consumes (see the env2_ member comment).
  out.env2_.resize(2 * acc.lo.size());
  for (size_t k = 0; k < acc.lo.size(); ++k) {
    out.env2_[2 * k] = acc.present[k] == members.size() ? acc.lo[k] : 0.0;
    out.env2_[2 * k + 1] = acc.hi[k];
  }
  out.col_idx_ = std::move(acc.col);
  return out;
}

ProbBound IntervalMarkovChain::Bound(uint32_t i, uint32_t j) const {
  assert(i < num_states_ && j < num_states_);
  const auto begin = col_idx_.begin() + static_cast<ptrdiff_t>(row_ptr_[i]);
  const auto end = col_idx_.begin() + static_cast<ptrdiff_t>(row_ptr_[i + 1]);
  auto it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return {0.0, 0.0};
  const size_t k = static_cast<size_t>(it - col_idx_.begin());
  return {env2_[2 * k], env2_[2 * k + 1]};
}

std::vector<ProbBound> IntervalMarkovChain::BoundExists(
    const sparse::IndexSet& region, Timestamp t_lo, Timestamp t_hi,
    bool with_lower) const {
  assert(region.domain_size() == num_states_);
  assert(t_lo <= t_hi);

  // f(t)[s] = P(trajectory from s at time t hits region during
  // [max(t, t_lo), t_hi]); propagated backward from t_hi to 0. The two
  // working vectors live interleaved — f2[2s] the lower, f2[2s+1] the
  // upper — matching the envelope's {lo, hi}-pair layout, so the
  // dispatched sweep bounds both lanes of a state with the same vector
  // op. Bound arithmetic is bit-identical across ISAs by the kernel's
  // contract: prune decisions cannot depend on the dispatch mode.
  util::AlignedVector<double> f2(2 * size_t{num_states_}, 0.0);
  for (uint32_t s : region) {
    f2[2 * s] = 1.0;
    f2[2 * s + 1] = 1.0;
  }

  util::AlignedVector<double> next2(2 * size_t{num_states_});
  // Kernel per-row outputs, sized once to the widest row.
  sparse::NnzIndex max_row = 0;
  for (uint32_t s = 0; s < num_states_; ++s) {
    max_row = std::max(max_row, row_ptr_[s + 1] - row_ptr_[s]);
  }
  util::AlignedVector<double> vals2(2 * max_row);
  util::AlignedVector<double> slack(max_row);
  std::vector<std::pair<double, double>> scratch;
  const kernels::KernelTable& kt = kernels::Active();
  // Active interval: every non-zero of flo/fhi lies inside [a_lo, a_hi].
  // The backward reach grows by one matrix band per step, so on the
  // paper's banded models almost all rows are provably zero and skip both
  // the gather and the greedy. Rows store ascending columns, so the
  // intersection test is two O(1) loads per row.
  uint32_t a_lo = region.empty() ? 0 : region.min();
  uint32_t a_hi = region.empty() ? 0 : region.max();
  for (Timestamp t = t_hi; t > 0; --t) {
    // Step backward from t to t-1.
    uint32_t next_a_lo = std::numeric_limits<uint32_t>::max();
    uint32_t next_a_hi = 0;
    for (uint32_t s = 0; s < num_states_; ++s) {
      const sparse::NnzIndex row_begin = row_ptr_[s];
      const sparse::NnzIndex row_end = row_ptr_[s + 1];
      if (row_begin == row_end || col_idx_[row_end - 1] < a_lo ||
          col_idx_[row_begin] > a_hi) {
        next2[2 * s] = 0.0;
        next2[2 * s + 1] = 0.0;
        continue;
      }
      // One interleaved sweep gathers both lanes' base sums Σ lo·v, the
      // row's Σ lo, the per-entry working values and slacks, and whether
      // either lane saw a non-zero (bit 0 lower, bit 1 upper).
      double base2[2];
      double lo_sum;
      const uint32_t any =
          kt.envelope_row_sweep(env2_.data(), col_idx_.data(), row_begin,
                                row_end, f2.data(), vals2.data(),
                                slack.data(), base2, &lo_sum);
      const size_t m = static_cast<size_t>(row_end - row_begin);
      const double budget = 1.0 - lo_sum;
      double nlo = 0.0;
      double nhi = 0.0;
      if ((any & 1u) != 0 && with_lower) {
        nlo = budget <= 0.0
                  ? base2[0]
                  : base2[0] + GreedySpend(vals2.data(), 0, slack.data(), m,
                                           /*want_max=*/false, budget,
                                           &scratch);
      }
      if ((any & 2u) != 0) {
        nhi = budget <= 0.0
                  ? base2[1]
                  : base2[1] + GreedySpend(vals2.data(), 1, slack.data(), m,
                                           /*want_max=*/true, budget,
                                           &scratch);
      }
      next2[2 * s] = nlo;
      next2[2 * s + 1] = nhi;
      if (nlo != 0.0 || nhi != 0.0) {
        next_a_lo = std::min(next_a_lo, s);
        next_a_hi = std::max(next_a_hi, s);
      }
    }
    const Timestamp t_prev = t - 1;
    if (t_prev >= t_lo && !region.empty()) {
      // Being inside the region at t_prev is itself a hit.
      for (uint32_t s : region) {
        next2[2 * s] = 1.0;
        next2[2 * s + 1] = 1.0;
      }
      next_a_lo = std::min(next_a_lo, region.min());
      next_a_hi = std::max(next_a_hi, region.max());
    }
    if (next_a_lo > next_a_hi) {
      // Everything is zero; the remaining steps cannot change that.
      std::fill(next2.begin(), next2.end(), 0.0);
      f2.swap(next2);
      break;
    }
    a_lo = next_a_lo;
    a_hi = next_a_hi;
    f2.swap(next2);
  }
  if (t_lo > 0) {
    // Start time 0 is outside the window; nothing more to fold in.
  }
  std::vector<ProbBound> out(num_states_);
  for (uint32_t s = 0; s < num_states_; ++s) {
    out[s] = {with_lower ? std::clamp(f2[2 * s], 0.0, 1.0) : 0.0,
              std::clamp(f2[2 * s + 1], 0.0, 1.0)};
  }
  return out;
}

}  // namespace markov
}  // namespace ustdb
