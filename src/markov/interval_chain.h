// Copyright 2026 the ustdb authors.
//
// IntervalMarkovChain — Section V-C's cluster representative: a chain whose
// entries are probability intervals [lo, hi] covering every member chain of
// a cluster. Used to bound the exists-probability of all objects in a
// cluster at once; only clusters whose bound straddles the decision
// threshold are refined object-by-object.

#ifndef USTDB_MARKOV_INTERVAL_CHAIN_H_
#define USTDB_MARKOV_INTERVAL_CHAIN_H_

#include <utility>
#include <vector>

#include "markov/markov_chain.h"
#include "sparse/csr_matrix.h"
#include "sparse/index_set.h"
#include "util/aligned_alloc.h"
#include "util/result.h"

namespace ustdb {
namespace markov {

/// Per-state or per-entry probability bound [lo, hi].
struct ProbBound {
  double lo = 0.0;
  double hi = 0.0;
};

/// \brief Markov chain with interval-valued transition probabilities.
///
/// The backward bound propagation solves, per state and step, the pair of
/// linear programs  min/max Σ_j m_j·v_j  s.t.  lo_j ≤ m_j ≤ hi_j, Σ_j m_j = 1
/// by the classic fractional-greedy argument. Bounds are sound (they contain
/// the value of every member chain) but compose conservatively across steps.
class IntervalMarkovChain {
 public:
  /// \brief Builds the entrywise envelope of `members`. All members must
  /// share the same number of states; the list must be non-empty. An entry
  /// absent from a member chain counts as zero, so lo is 0 wherever member
  /// supports differ.
  static util::Result<IntervalMarkovChain> FromChains(
      const std::vector<const MarkovChain*>& members);

  uint32_t num_states() const { return num_states_; }

  /// Bound of entry (i, j); {0, 0} for entries outside the union support.
  ProbBound Bound(uint32_t i, uint32_t j) const;

  /// Structural non-zeros of the envelope (union of member supports).
  sparse::NnzIndex nnz() const {
    return static_cast<sparse::NnzIndex>(col_idx_.size());
  }

  /// \brief Bounds, for every start state s, the probability that an object
  /// starting at s at time 0 intersects the window (region at some time in
  /// [t_lo, t_hi]) under *any* member chain. Backward recursion in the style
  /// of the query-based engine with interval arithmetic at each step.
  /// \pre region.domain_size() == num_states() and t_lo <= t_hi.
  /// \param region the query region S□.
  /// \param t_lo first window timestamp (inclusive).
  /// \param t_hi last window timestamp (inclusive).
  /// \param with_lower when false, only the upper bounds are propagated
  ///        and every returned lo is 0 (still sound, half the work) — the
  ///        executor's drop test reads hi alone.
  std::vector<ProbBound> BoundExists(const sparse::IndexSet& region,
                                     Timestamp t_lo, Timestamp t_hi,
                                     bool with_lower = true) const;

 private:
  IntervalMarkovChain() : num_states_(0) {}

  uint32_t num_states_;
  // CSR-like envelope storage. Bounds live as interleaved {lo, hi} pairs
  // — entry k's pair at env2_[2k] — so the dispatched envelope sweep
  // (kernels::KernelTable::envelope_row_sweep) bounds the lower and the
  // upper working vector of BoundExists with the same vector op instead
  // of two strided passes over parallel arrays.
  std::vector<sparse::NnzIndex> row_ptr_;
  std::vector<uint32_t> col_idx_;
  util::AlignedVector<double> env2_;
};

}  // namespace markov
}  // namespace ustdb

#endif  // USTDB_MARKOV_INTERVAL_CHAIN_H_
