// Copyright 2026 the ustdb authors.
//
// Stationary-distribution analysis. Useful both as a modeling diagnostic
// (where does the drift model concentrate icebergs in the long run?) and
// for workload generation (sampling initial positions from the chain's
// long-run behaviour instead of uniformly).

#ifndef USTDB_MARKOV_STATIONARY_H_
#define USTDB_MARKOV_STATIONARY_H_

#include "markov/markov_chain.h"
#include "sparse/prob_vector.h"
#include "util/result.h"

namespace ustdb {
namespace markov {

/// Options for the power iteration.
struct StationaryOptions {
  /// Convergence threshold on the L1 distance between iterates.
  double tolerance = 1e-12;
  /// Hard iteration cap; exceeded => kFailedPrecondition (the chain is
  /// periodic or mixes too slowly for the budget).
  uint32_t max_iterations = 100'000;
  /// Damping in (0, 1]: iterate pi <- (1-d)*pi + d*(pi*M). Values < 1 make
  /// the iteration converge on periodic chains (same trick as PageRank's
  /// lazy walk) without changing the fixed point.
  double damping = 1.0;
};

/// \brief Computes a stationary distribution pi with pi = pi·M by damped
/// power iteration from the uniform vector. For irreducible chains this is
/// *the* stationary distribution; for reducible chains it is one of them
/// (determined by the uniform start).
util::Result<sparse::ProbVector> StationaryDistribution(
    const MarkovChain& chain, const StationaryOptions& options = {});

/// \brief L1 distance ||pi - pi·M||_1 — a residual diagnostic for how close
/// `pi` is to stationarity under `chain`.
double StationarityResidual(const MarkovChain& chain,
                            const sparse::ProbVector& pi);

}  // namespace markov
}  // namespace ustdb

#endif  // USTDB_MARKOV_STATIONARY_H_
