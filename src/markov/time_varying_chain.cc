#include "markov/time_varying_chain.h"

#include "util/string_util.h"

namespace ustdb {
namespace markov {

util::Result<TimeVaryingChain> TimeVaryingChain::FromPhases(
    std::vector<MarkovChain> phases) {
  if (phases.empty()) {
    return util::Status::InvalidArgument(
        "a time-varying chain needs at least one phase");
  }
  const uint32_t n = phases.front().num_states();
  for (size_t i = 1; i < phases.size(); ++i) {
    if (phases[i].num_states() != n) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "phase %zu has %u states, expected %u", i,
          phases[i].num_states(), n));
    }
  }
  return TimeVaryingChain(std::move(phases));
}

TimeVaryingChain TimeVaryingChain::FromHomogeneous(MarkovChain chain) {
  std::vector<MarkovChain> phases;
  phases.push_back(std::move(chain));
  return TimeVaryingChain(std::move(phases));
}

sparse::ProbVector TimeVaryingChain::Distribution(
    const sparse::ProbVector& initial, Timestamp t_start,
    uint32_t steps) const {
  sparse::ProbVector dist = initial;
  sparse::VecMatWorkspace ws;
  for (uint32_t i = 0; i < steps; ++i) {
    Propagate(t_start + i, &dist, &ws);
  }
  return dist;
}

}  // namespace markov
}  // namespace ustdb
