// Copyright 2026 the ustdb authors.
//
// TimeVaryingChain — an inhomogeneous Markov chain (Definition 5 with
// time-dependent transition probabilities P_ij(t)). The paper restricts its
// engines to the homogeneous case (Definition 6) but explicitly defines the
// general model, and its traffic scenario begs for it: turning behaviour at
// rush hour differs from 3am. A TimeVaryingChain is a periodic schedule of
// validated homogeneous chains; period 1 degenerates to the paper's model
// (tested), so all time-varying engines strictly generalize the standard
// ones.

#ifndef USTDB_MARKOV_TIME_VARYING_CHAIN_H_
#define USTDB_MARKOV_TIME_VARYING_CHAIN_H_

#include <memory>
#include <vector>

#include "markov/markov_chain.h"
#include "util/result.h"

namespace ustdb {
namespace markov {

/// \brief Periodic inhomogeneous Markov chain: the transition matrix used
/// for the step t -> t+1 is phases[t mod period].
///
/// Owns its phase chains. All phases must share one state count.
class TimeVaryingChain {
 public:
  /// \brief Builds from a non-empty list of phase chains (ownership taken).
  /// Fails if phases disagree on the number of states.
  static util::Result<TimeVaryingChain> FromPhases(
      std::vector<MarkovChain> phases);

  /// Wraps a single homogeneous chain (period 1).
  static TimeVaryingChain FromHomogeneous(MarkovChain chain);

  uint32_t num_states() const { return phases_.front().num_states(); }
  uint32_t period() const { return static_cast<uint32_t>(phases_.size()); }

  /// The chain governing the transition from time t to t+1.
  const MarkovChain& PhaseAt(Timestamp t) const {
    return phases_[t % phases_.size()];
  }

  /// All phases, in schedule order.
  const std::vector<MarkovChain>& phases() const { return phases_; }

  /// \brief One transition from time t: dist ← dist · M(t) (the
  /// inhomogeneous Corollary 1).
  void Propagate(Timestamp t, sparse::ProbVector* dist,
                 sparse::VecMatWorkspace* ws) const {
    ws->Multiply(*dist, PhaseAt(t).matrix(), dist);
  }

  /// \brief Distribution at time t_start + steps from `initial` at t_start
  /// (the inhomogeneous Chapman–Kolmogorov product, evaluated iteratively).
  sparse::ProbVector Distribution(const sparse::ProbVector& initial,
                                  Timestamp t_start, uint32_t steps) const;

 private:
  explicit TimeVaryingChain(std::vector<MarkovChain> phases)
      : phases_(std::move(phases)) {}

  std::vector<MarkovChain> phases_;
};

}  // namespace markov
}  // namespace ustdb

#endif  // USTDB_MARKOV_TIME_VARYING_CHAIN_H_
