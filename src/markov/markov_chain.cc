#include "markov/markov_chain.h"

#include <cmath>

#include "util/string_util.h"

namespace ustdb {
namespace markov {

util::Result<MarkovChain> MarkovChain::FromMatrix(sparse::CsrMatrix m) {
  if (m.rows() != m.cols()) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "transition matrix must be square, got %ux%u", m.rows(), m.cols()));
  }
  for (uint32_t r = 0; r < m.rows(); ++r) {
    for (double v : m.RowValues(r)) {
      if (v < 0.0) {
        return util::Status::Inconsistent(util::StringPrintf(
            "negative transition probability in row %u", r));
      }
    }
    const double sum = m.RowSum(r);
    if (std::abs(sum - 1.0) > sparse::kStochasticTolerance) {
      return util::Status::Inconsistent(util::StringPrintf(
          "row %u sums to %.12f, expected 1 (not a stochastic matrix)", r,
          sum));
    }
  }
  // Both multiply operands reach the dense gather kernel — Mᵀ on forward
  // passes and M itself on the backward pass (the "transpose of Mᵀ") — so
  // block the forward matrix at construction, while it is still private to
  // this thread; Transposed() blocks the other side. Building lazily at
  // first use would mutate matrix_ under concurrent readers.
  m.BuildGatherBlocks();
  return MarkovChain(std::move(m));
}

util::Result<MarkovChain> MarkovChain::FromTriplets(
    uint32_t num_states, std::vector<sparse::Triplet> triplets) {
  USTDB_ASSIGN_OR_RETURN(sparse::CsrMatrix m,
                         sparse::CsrMatrix::FromTriplets(
                             num_states, num_states, std::move(triplets)));
  return FromMatrix(std::move(m));
}

util::Result<MarkovChain> MarkovChain::FromDense(
    const std::vector<std::vector<double>>& rows) {
  std::vector<sparse::Triplet> t;
  const uint32_t n = static_cast<uint32_t>(rows.size());
  for (uint32_t r = 0; r < n; ++r) {
    if (rows[r].size() != n) {
      return util::Status::InvalidArgument("dense matrix is not square");
    }
    for (uint32_t c = 0; c < n; ++c) {
      if (rows[r][c] != 0.0) t.push_back({r, c, rows[r][c]});
    }
  }
  return FromTriplets(n, std::move(t));
}

const sparse::CsrMatrix& MarkovChain::transposed() const {
  const sparse::CsrMatrix* t =
      transposed_pub_.load(std::memory_order_acquire);
  if (t != nullptr) return *t;
  std::lock_guard<std::mutex> lock(transpose_mu_);
  if (!transposed_) {
    transposed_ = std::make_unique<sparse::CsrMatrix>(matrix_.Transposed());
    transposed_pub_.store(transposed_.get(), std::memory_order_release);
  }
  return *transposed_;
}

void MarkovChain::Propagate(sparse::ProbVector* dist,
                            sparse::VecMatWorkspace* ws) const {
  ws->Multiply(*dist, matrix_, dist);
}

sparse::ProbVector MarkovChain::Distribution(
    const sparse::ProbVector& initial, uint32_t steps) const {
  sparse::ProbVector dist = initial;
  sparse::VecMatWorkspace ws;
  for (uint32_t i = 0; i < steps; ++i) Propagate(&dist, &ws);
  return dist;
}

util::Result<sparse::CsrMatrix> MarkovChain::MStepMatrix(uint32_t m) const {
  return matrix_.Power(m);
}

sparse::IndexSet MarkovChain::ReachableWithin(const sparse::IndexSet& from,
                                              uint32_t steps) const {
  std::vector<uint8_t> seen(num_states(), 0);
  std::vector<uint32_t> frontier(from.begin(), from.end());
  std::vector<uint32_t> all(frontier);
  for (uint32_t s : frontier) seen[s] = 1;

  std::vector<uint32_t> next;
  for (uint32_t step = 0; step < steps && !frontier.empty(); ++step) {
    next.clear();
    for (uint32_t s : frontier) {
      for (uint32_t c : matrix_.RowIndices(s)) {
        if (!seen[c]) {
          seen[c] = 1;
          next.push_back(c);
          all.push_back(c);
        }
      }
    }
    frontier.swap(next);
  }
  // Indices validated by construction; FromIndices cannot fail here.
  return sparse::IndexSet::FromIndices(num_states(), std::move(all))
      .ValueOrDie();
}

size_t MarkovChain::MemoryBytes() const {
  const sparse::CsrMatrix* t =
      transposed_pub_.load(std::memory_order_acquire);
  return matrix_.MemoryBytes() + (t != nullptr ? t->MemoryBytes() : 0);
}

}  // namespace markov
}  // namespace ustdb
