// Copyright 2026 the ustdb authors.
//
// Fundamental scalar types shared across ustdb.

#ifndef USTDB_SPARSE_TYPES_H_
#define USTDB_SPARSE_TYPES_H_

#include <cstdint>

namespace ustdb {

/// Index of a state in the discrete spatial domain S = {s_0, ..., s_{|S|-1}}.
/// The paper indexes states from 1; we use 0-based indices throughout.
using StateIndex = uint32_t;

/// Discrete timestamp t in T = {0, 1, 2, ...}.
using Timestamp = uint32_t;

/// Identifier of an uncertain object in the database D.
using ObjectId = uint32_t;

/// Identifier of a Markov-chain "class" (Section V-C: buses/trucks/cars may
/// follow different chains; objects referencing the same chain share
/// query-based computations).
using ChainId = uint32_t;

/// Monotonically increasing epoch of a mutable Database. 0 is the frozen
/// build state; every AppendObservation allocates the next version and
/// stamps it on the mutated object and its chain, so caches can detect
/// staleness per chain without a flush and query results can name the
/// exact data state they answered against.
using DataVersion = uint64_t;

namespace sparse {

/// Offset into the non-zero arrays of a CSR matrix.
using NnzIndex = uint64_t;

/// Tolerance used when validating that transition-matrix rows sum to one.
inline constexpr double kStochasticTolerance = 1e-9;

/// Entries with |value| below this threshold are dropped when compacting
/// probability vectors; keeps support sizes honest after long propagations.
inline constexpr double kProbEpsilon = 1e-15;

}  // namespace sparse
}  // namespace ustdb

#endif  // USTDB_SPARSE_TYPES_H_
